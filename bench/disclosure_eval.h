// Shared effectiveness-measurement logic for the Fig. 9/10/11 harnesses:
// given a base document version and a later revision, compute the fraction
// of base paragraphs that (a) BrowserFlow reports as disclosed by the
// revision and (b) the lineage ground truth says are disclosed.
#pragma once

#include <string>
#include <unordered_set>

#include "corpus/revision_model.h"
#include "flow/tracker.h"
#include "util/clock.h"

namespace bf::bench {

struct DisclosureEvalResult {
  std::size_t baseParagraphs = 0;       ///< denominator (see skipEmpty)
  std::size_t detectedByBrowserFlow = 0;
  std::size_t detectedByGroundTruth = 0;

  [[nodiscard]] double browserFlowFraction() const {
    return baseParagraphs == 0
               ? 0.0
               : static_cast<double>(detectedByBrowserFlow) /
                     static_cast<double>(baseParagraphs);
  }
  [[nodiscard]] double groundTruthFraction() const {
    return baseParagraphs == 0
               ? 0.0
               : static_cast<double>(detectedByGroundTruth) /
                     static_cast<double>(baseParagraphs);
  }
};

/// Replays the paper's measurement: the base version's paragraphs are the
/// tracked sources; the revision's full text is the disclosing document.
/// `tpar` is the paragraph disclosure threshold; `skipEmptyFingerprints`
/// removes paragraphs too short to fingerprint from the denominator (the
/// paper does this for the Fig. 11 threshold study).
inline DisclosureEvalResult evaluateDisclosure(
    const corpus::VersionedDoc& base, const corpus::VersionedDoc& revision,
    const flow::TrackerConfig& trackerConfig, double tpar,
    bool skipEmptyFingerprints = false) {
  util::LogicalClock clock;
  flow::TrackerConfig config = trackerConfig;
  config.defaultParagraphThreshold = tpar;
  flow::FlowTracker tracker(config, &clock);

  DisclosureEvalResult result;

  // Observe base paragraphs as the sensitive sources.
  std::vector<std::string> names;
  std::vector<const corpus::Paragraph*> counted;
  for (std::size_t i = 0; i < base.paragraphs.size(); ++i) {
    const std::string name = "base#p" + std::to_string(i);
    const flow::SegmentId id = tracker.observeSegment(
        flow::SegmentKind::kParagraph, name, "base", "src",
        base.paragraphs[i].render());
    if (skipEmptyFingerprints && tracker.segment(id)->fingerprint.empty()) {
      continue;
    }
    names.push_back(name);
    counted.push_back(&base.paragraphs[i]);
  }
  result.baseParagraphs = names.size();

  // BrowserFlow: which base paragraphs does the revision disclose?
  const text::Fingerprint revisionFp =
      tracker.fingerprintOf(revision.render());
  std::unordered_set<std::string> detected;
  for (const auto& hit :
       tracker.disclosedSources(revisionFp, flow::SegmentKind::kParagraph,
                                flow::kInvalidSegment, "revision")) {
    detected.insert(hit.sourceName);
  }
  for (const auto& name : names) {
    if (detected.count(name) != 0) ++result.detectedByBrowserFlow;
  }

  // Ground truth: concept lineage (the mechanised human expert).
  for (const corpus::Paragraph* p : counted) {
    if (corpus::groundTruthDiscloses(*p, revision, 0.5)) {
      ++result.detectedByGroundTruth;
    }
  }
  return result;
}

}  // namespace bf::bench
