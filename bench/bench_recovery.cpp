// Recovery bench: durability cost and crash-recovery time for the
// WAL/checkpoint subsystem (DESIGN.md §11).
//
// Phases:
//   1. WAL append path: observe N segments with the log attached and
//      checkpointing disabled — the whole history lands in one WAL tail.
//   2. Crash recovery: a fresh tracker recovers from the bootstrap
//      checkpoint plus that N-record tail (the acceptance scenario: replay
//      time for a 10k-segment log at paper scale).
//   3. Checkpoint: explicit checkpoint cost, then recovery again — now
//      served from the checkpoint alone with zero records replayed.
//   4. syncEachAppend: per-append fsync cost against the default
//      sync-at-checkpoint policy, on a reduced record count.
//
// BF_RECOVERY_SEGMENTS overrides the segment count (default: 2000 quick,
// 10000 paper). RESULT lines feed scripts/bench_report.py.

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "corpus/text_generator.h"
#include "flow/snapshot.h"
#include "flow/tracker.h"
#include "flow/wal.h"
#include "io/fault_vfs.h"
#include "io/vfs.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace bf;

flow::DurabilityConfig configFor(const std::string& dir,
                                 bool syncEachAppend = false) {
  flow::DurabilityConfig cfg;
  cfg.directory = dir;
  cfg.checkpointEveryRecords = 1ull << 30;  // benches checkpoint explicitly
  cfg.syncEachAppend = syncEachAppend;
  return cfg;
}

/// Observes `texts` into a fresh tracker attached to a fresh log in `dir`.
/// Returns observes/second. The manager is handed back so the caller can
/// crash (destroy) or checkpoint it.
double runAppendPhase(const std::string& dir,
                      const std::vector<std::string>& texts,
                      bool syncEachAppend,
                      std::unique_ptr<util::LogicalClock>& clockOut,
                      std::unique_ptr<flow::FlowTracker>& trackerOut,
                      std::unique_ptr<flow::DurabilityManager>& mgrOut) {
  (void)std::system(("rm -rf '" + dir + "'").c_str());
  clockOut = std::make_unique<util::LogicalClock>();
  trackerOut = std::make_unique<flow::FlowTracker>(flow::TrackerConfig{},
                                                   clockOut.get());
  mgrOut = std::make_unique<flow::DurabilityManager>(
      configFor(dir, syncEachAppend));
  if (!mgrOut->recoverAndAttach(*trackerOut).ok()) std::abort();

  util::Stopwatch watch;
  for (std::size_t i = 0; i < texts.size(); ++i) {
    trackerOut->observeSegment(flow::SegmentKind::kParagraph,
                               "doc" + std::to_string(i) + "#p0",
                               "doc" + std::to_string(i), "internal",
                               texts[i]);
  }
  const double seconds = watch.elapsedMillis() / 1000.0;
  return static_cast<double>(texts.size()) / (seconds > 0 ? seconds : 1e-9);
}

}  // namespace

int main() {
  bench::printHeader("Recovery", "WAL replay and checkpoint load time");

  std::size_t segments = bench::paperScale() ? 10000 : 2000;
  if (const char* env = std::getenv("BF_RECOVERY_SEGMENTS"); env != nullptr) {
    segments = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  const std::string dir =
      "/tmp/bf_bench_recovery_" + std::to_string(static_cast<long>(getpid()));

  // Pre-generate the corpus so fingerprinting input is identical across
  // phases and text generation stays outside every timed region.
  util::Rng rng(1234);
  corpus::TextGenerator gen(&rng, /*vocabSize=*/4000);
  std::vector<std::string> texts;
  texts.reserve(segments);
  std::size_t corpusBytes = 0;
  for (std::size_t i = 0; i < segments; ++i) {
    texts.push_back(gen.paragraph(2, 4));
    corpusBytes += texts.back().size();
  }

  // ---- Phase 1: append path ----------------------------------------------
  std::unique_ptr<util::LogicalClock> clock;
  std::unique_ptr<flow::FlowTracker> tracker;
  std::unique_ptr<flow::DurabilityManager> mgr;
  const double observesPerS =
      runAppendPhase(dir, texts, /*syncEachAppend=*/false, clock, tracker,
                     mgr);
  std::printf("segments: %zu (%.1f MiB text), observe+log: %.0f segments/s\n",
              segments, corpusBytes / (1024.0 * 1024.0), observesPerS);

  // ---- Phase 2: crash, recover from the WAL tail -------------------------
  const std::string liveState = flow::exportState(*tracker);
  tracker->attachWal(nullptr);
  mgr.reset();  // crash: the log fd closes, no checkpoint of this state

  auto clock2 = std::make_unique<util::LogicalClock>();
  auto recovered =
      std::make_unique<flow::FlowTracker>(flow::TrackerConfig{}, clock2.get());
  auto mgr2 = std::make_unique<flow::DurabilityManager>(configFor(dir));
  auto stats = mgr2->recoverAndAttach(*recovered);
  if (!stats.ok()) {
    std::printf("recovery FAILED: %s\n", stats.errorMessage().c_str());
    return 1;
  }
  clock2->advanceTo(stats.value().maxTimestamp + 1);
  const bool walStateMatches = flow::exportState(*recovered) == liveState;
  const double walReplayMs = stats.value().replayMillis;
  std::printf("WAL replay: %llu records in %.1f ms (%.0f records/s), "
              "state match: %s\n",
              static_cast<unsigned long long>(stats.value().replayedRecords),
              walReplayMs,
              stats.value().replayedRecords / (walReplayMs / 1000.0),
              walStateMatches ? "yes" : "NO");

  // ---- Phase 3: checkpoint save, then recovery from checkpoint only ------
  util::Stopwatch ckWatch;
  if (!mgr2->checkpoint(*recovered).ok()) {
    std::printf("checkpoint FAILED\n");
    return 1;
  }
  const double checkpointSaveMs = ckWatch.elapsedMillis();
  recovered->attachWal(nullptr);
  mgr2.reset();

  auto clock3 = std::make_unique<util::LogicalClock>();
  auto fromCheckpoint =
      std::make_unique<flow::FlowTracker>(flow::TrackerConfig{}, clock3.get());
  auto mgr3 = std::make_unique<flow::DurabilityManager>(configFor(dir));
  auto stats3 = mgr3->recoverAndAttach(*fromCheckpoint);
  if (!stats3.ok()) {
    std::printf("checkpoint recovery FAILED: %s\n",
                stats3.errorMessage().c_str());
    return 1;
  }
  clock3->advanceTo(stats3.value().maxTimestamp + 1);
  const bool ckStateMatches = flow::exportState(*fromCheckpoint) == liveState;
  const double checkpointLoadMs = stats3.value().replayMillis;
  std::printf("checkpoint: save %.1f ms, load %.1f ms (replayed %llu), "
              "state match: %s\n",
              checkpointSaveMs, checkpointLoadMs,
              static_cast<unsigned long long>(stats3.value().replayedRecords),
              ckStateMatches ? "yes" : "NO");
  fromCheckpoint->attachWal(nullptr);
  mgr3.reset();

  bench::result(
      "{\"bench\":\"recovery\",\"segments\":" + std::to_string(segments) +
      ",\"observes_per_s\":" + std::to_string(observesPerS) +
      ",\"wal_replay_ms\":" + std::to_string(walReplayMs) +
      ",\"checkpoint_save_ms\":" + std::to_string(checkpointSaveMs) +
      ",\"checkpoint_load_ms\":" + std::to_string(checkpointLoadMs) + "}");

  // ---- Phase 4: per-append fsync cost ------------------------------------
  bench::printHeader("Sync", "syncEachAppend vs sync-at-checkpoint");
  const std::size_t syncSegments =
      std::max<std::size_t>(segments / 10, 100);
  const std::vector<std::string> syncTexts(texts.begin(),
                                           texts.begin() + syncSegments);
  double perMode[2] = {0, 0};
  for (const bool sync : {false, true}) {
    std::unique_ptr<util::LogicalClock> c;
    std::unique_ptr<flow::FlowTracker> t;
    std::unique_ptr<flow::DurabilityManager> m;
    perMode[sync ? 1 : 0] =
        runAppendPhase(dir + "_sync", syncTexts, sync, c, t, m);
    t->attachWal(nullptr);
    std::printf("syncEachAppend=%d: %.0f segments/s\n", sync ? 1 : 0,
                perMode[sync ? 1 : 0]);
  }
  bench::result("{\"bench\":\"wal_sync\",\"segments\":" +
                std::to_string(syncSegments) + ",\"batched_per_s\":" +
                std::to_string(perMode[0]) + ",\"fsync_per_s\":" +
                std::to_string(perMode[1]) + "}");

  // ---- Phase 5: durability-fault sweep -----------------------------------
  // Goodput while FaultVfs injects storage faults at a fixed per-op rate,
  // with the repair state machine healing inline (zero backoff, so the
  // sweep measures repair work, not sleeping). rate=0 is the control: the
  // FaultVfs decorator is on the path but inert, so its interposition cost
  // is visible as the delta against the plain Phase-4 fsync number.
  bench::printHeader("Durability faults",
                     "goodput and self-healing under injected faults");
  const std::size_t faultSegments = std::max<std::size_t>(segments / 10, 200);
  const std::vector<std::string> faultTexts(texts.begin(),
                                            texts.begin() + faultSegments);
  bool faultSweepOk = true;
  for (const double rate : {0.0, 0.001, 0.01, 0.05}) {
    const std::string fdir = dir + "_fault";
    (void)std::system(("rm -rf '" + fdir + "'").c_str());
    io::FaultVfs fault(&io::defaultVfs(), /*seed=*/0xb0ffa117ull);
    auto fc = std::make_unique<util::LogicalClock>();
    auto ft = std::make_unique<flow::FlowTracker>(flow::TrackerConfig{},
                                                  fc.get());
    flow::DurabilityConfig cfg;
    cfg.directory = fdir;
    cfg.checkpointEveryRecords = 1ull << 30;
    cfg.syncEachAppend = true;  // every append touches storage: faults fire
    cfg.vfs = &fault;
    cfg.repairBaseDelayMs = 0.0;
    cfg.repairMaxDelayMs = 0.0;
    auto fm = std::make_unique<flow::DurabilityManager>(cfg);
    if (!fm->recoverAndAttach(*ft).ok()) {
      std::printf("fault-sweep attach FAILED (rate %.3f)\n", rate);
      return 1;
    }
    // Arm faults only after the bootstrap checkpoint/WAL exist.
    fault.setDefaults(io::StorageFaultConfig::uniformRate(rate));

    const auto before = obs::registry().snapshot();
    util::Stopwatch watch;
    double repairMs = 0.0;
    for (std::size_t i = 0; i < faultTexts.size(); ++i) {
      ft->observeSegment(flow::SegmentKind::kParagraph,
                         "f" + std::to_string(i) + "#p0",
                         "f" + std::to_string(i), "internal", faultTexts[i]);
      util::Stopwatch repairWatch;
      (void)fm->maintain(*ft);
      repairMs += repairWatch.elapsedMillis();
    }
    const double seconds = watch.elapsedMillis() / 1000.0;
    // Disarm and let the state machine close any open degraded window so
    // the sweep always ends (and reports) from a healed store.
    fault.setDefaults(io::StorageFaultConfig{});
    for (int spin = 0; spin < 64 && !fm->healthy(); ++spin) {
      (void)fm->maintain(*ft);
    }
    if (!fm->healthy()) faultSweepOk = false;
    const auto delta = obs::registry().snapshot().diff(before);
    const std::uint64_t lost = delta.counterValue("bf_wal_records_lost_total");
    const std::uint64_t repairs = delta.counterValue("bf_wal_repairs_total");
    const double goodput =
        static_cast<double>(faultTexts.size() - lost) /
        (seconds > 0 ? seconds : 1e-9);
    std::printf("rate %.3f: %.0f durable segments/s, lost %llu, "
                "repairs %llu, repair time %.1f ms, healed: %s\n",
                rate, goodput, static_cast<unsigned long long>(lost),
                static_cast<unsigned long long>(repairs), repairMs,
                fm->healthy() ? "yes" : "NO");
    bench::result("{\"bench\":\"durability_faults\",\"rate\":" +
                  std::to_string(rate) + ",\"segments\":" +
                  std::to_string(faultTexts.size()) + ",\"goodput_per_s\":" +
                  std::to_string(goodput) + ",\"records_lost\":" +
                  std::to_string(lost) + ",\"repairs\":" +
                  std::to_string(repairs) + ",\"repair_ms\":" +
                  std::to_string(repairMs) + "}");
    ft->attachWal(nullptr);
    fm.reset();
    (void)std::system(("rm -rf '" + fdir + "'").c_str());
  }

  (void)std::system(("rm -rf '" + dir + "' '" + dir + "_sync'").c_str());
  bench::dumpMetrics();
  return (walStateMatches && ckStateMatches && faultSweepOk) ? 0 : 1;
}
