// Baseline comparison: browser-level imprecise tracking vs network-level
// DLP (paper S2.2).
//
// The paper argues qualitatively that network DLP appliances — exact
// content matching (application firewalls) or similarity matching on
// network streams (MyDLP-style) — fall short of browser-level tracking.
// This bench quantifies that on a shared workload: N sensitive paragraphs
// leaked under increasing modification, plus the structural case the paper
// calls out in S5.2: the appliance sits outside the browser, so encrypted
// (TLS) traffic is opaque to it while BrowserFlow intercepts pre-encryption.
//
// Expected shape: exact-chunk DLP collapses at the first light edit;
// fingerprint DLP tracks BrowserFlow on plaintext but reports 0% under
// TLS; every content-based detector (BrowserFlow included) misses full
// rephrasings — the paper's own stated limitation (S4.4).

#include <string>
#include <vector>

#include "bench_util.h"
#include "cloud/dlp_appliance.h"
#include "corpus/text_generator.h"
#include "flow/tracker.h"
#include "util/clock.h"
#include "util/strings.h"

namespace {

using namespace bf;

/// A variant of `text` with roughly `fraction` of its words replaced.
std::string editWords(const std::string& text, double fraction,
                      corpus::TextGenerator& gen, util::Rng& rng) {
  std::string out;
  for (const auto word : util::splitWords(text)) {
    if (!out.empty()) out += ' ';
    out += rng.chance(fraction) ? gen.word() : std::string(word);
  }
  return out;
}

struct Scenario {
  std::string name;
  std::vector<std::string> leaks;  // one per sensitive paragraph
  bool tls = false;
};

}  // namespace

int main() {
  bench::printHeader("Baseline", "browser-level tracking vs network DLP");

  const std::size_t n = bench::paperScale() ? 200 : 60;
  util::Rng rng(2024);
  corpus::TextGenerator gen(&rng);

  // The sensitive corpus. Every document carries the organisation's
  // standard boilerplate (header/disclaimer) — as real internal documents
  // do — which is exactly what trips chunk-matching appliances.
  const std::string boilerplate = gen.sentence(14, 16);
  std::vector<std::string> sensitive;
  for (std::size_t i = 0; i < n; ++i) {
    sensitive.push_back(boilerplate + " " + gen.paragraph(6, 9));
  }

  // Detectors, all registered with the same corpus.
  cloud::DlpAppliance::Config exactCfg;
  exactCfg.mode = cloud::DlpAppliance::Mode::kExactChunks;
  cloud::DlpAppliance exactDlp(nullptr, exactCfg);

  cloud::DlpAppliance::Config fpCfg;
  fpCfg.mode = cloud::DlpAppliance::Mode::kFingerprint;
  cloud::DlpAppliance fingerprintDlp(nullptr, fpCfg);

  util::LogicalClock clock;
  flow::FlowTracker tracker(flow::TrackerConfig{}, &clock);

  for (std::size_t i = 0; i < n; ++i) {
    exactDlp.registerSensitiveDocument(sensitive[i]);
    fingerprintDlp.registerSensitiveDocument(sensitive[i]);
    tracker.observeSegment(flow::SegmentKind::kParagraph,
                           "s" + std::to_string(i) + "#p0",
                           "s" + std::to_string(i), "internal", sensitive[i]);
  }

  // Scenarios: each leaks every sensitive paragraph once.
  std::vector<Scenario> scenarios;
  auto makeLeaks = [&](double editFraction) {
    std::vector<std::string> leaks;
    for (const auto& s : sensitive) {
      leaks.push_back(editWords(s, editFraction, gen, rng));
    }
    return leaks;
  };
  scenarios.push_back({"verbatim copy", makeLeaks(0.0), false});
  scenarios.push_back({"light edit (5% words)", makeLeaks(0.05), false});
  scenarios.push_back({"moderate edit (15% words)", makeLeaks(0.15), false});
  scenarios.push_back({"heavy edit (40% words)", makeLeaks(0.40), false});
  {
    // Full rephrase: same ideas, none of the words (fresh text stands in).
    std::vector<std::string> leaks;
    for (std::size_t i = 0; i < n; ++i) leaks.push_back(gen.paragraph(6, 9));
    scenarios.push_back({"full rephrase", std::move(leaks), false});
  }
  {
    // Benign text that merely carries the org-wide boilerplate: flagging
    // it is a FALSE POSITIVE (the paper's "decreased information
    // disclosure" requirement, S1 challenge (ii)).
    std::vector<std::string> leaks;
    for (std::size_t i = 0; i < n; ++i) {
      leaks.push_back(boilerplate + " " + gen.paragraph(6, 9));
    }
    scenarios.push_back(
        {"benign + boilerplate (FP!)", std::move(leaks), false});
  }
  scenarios.push_back({"verbatim copy over TLS", makeLeaks(0.0), true});

  std::printf("\nsensitive paragraphs: %zu — detection rate (%%)\n\n", n);
  std::printf("%-28s %14s %16s %13s\n", "scenario", "exact-chunk",
              "fingerprint", "BrowserFlow");
  for (const auto& scenario : scenarios) {
    std::size_t exactHits = 0, fpHits = 0, bfHits = 0;
    for (const auto& leak : scenario.leaks) {
      if (scenario.tls) {
        // The appliance sees ciphertext: nothing to inspect. BrowserFlow
        // runs inside the browser, before encryption (paper S5.2).
        if (!tracker.checkText(leak, "leak-doc").empty()) ++bfHits;
        continue;
      }
      if (exactDlp.inspectText(leak)) ++exactHits;
      if (fingerprintDlp.inspectText(leak)) ++fpHits;
      if (!tracker.checkText(leak, "leak-doc").empty()) ++bfHits;
    }
    const double total = static_cast<double>(scenario.leaks.size());
    std::printf("%-28s %14.1f %16.1f %13.1f\n", scenario.name.c_str(),
                100.0 * static_cast<double>(exactHits) / total,
                100.0 * static_cast<double>(fpHits) / total,
                100.0 * static_cast<double>(bfHits) / total);
  }

  std::printf(
      "\nreadings: any-chunk exact matching is edit-robust but fires on "
      "every document sharing org boilerplate (false positives: it has no "
      "disclosure threshold, no authoritative source, no declassification); "
      "stream-level similarity tracks BrowserFlow on plaintext but both "
      "appliances are blind to encrypted traffic, which BrowserFlow "
      "intercepts inside the browser (paper S5.2); nothing content-based "
      "survives a full rephrase (paper S4.4). BrowserFlow trades a little "
      "edited-copy recall for that FP immunity: authoritative fingerprints "
      "discount the boilerplate every document shares, so only the "
      "document-specific remainder counts toward its threshold.\n");
  bench::dumpMetrics();
  return 0;
}
