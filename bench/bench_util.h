// Shared helpers for the bench harnesses that regenerate the paper's
// tables and figures.
//
// Every bench supports two scales selected by the BF_SCALE environment
// variable:
//   BF_SCALE=quick (default)  reduced datasets, minutes of total runtime
//   BF_SCALE=paper            the paper's dataset sizes (Table 1)
// Output is plain text: one block per figure/table, with the series the
// paper plots, so results can be diffed against EXPERIMENTS.md.
// Set BF_METRICS=1 (Prometheus text) or BF_METRICS=json to append a dump
// of the process-wide obs registry after each figure, so BENCH_*.json
// result files can carry registry snapshots alongside the series.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"

namespace bf::bench {

inline bool paperScale() {
  const char* env = std::getenv("BF_SCALE");
  return env != nullptr && std::string(env) == "paper";
}

inline void printHeader(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s  [scale: %s]\n", id, title,
              paperScale() ? "paper" : "quick");
  std::printf("================================================================\n");
}

/// Prints a (x, y) series in a gnuplot-friendly two-column block.
inline void printSeries(const char* name,
                        const std::vector<std::pair<double, double>>& points,
                        const char* xLabel, const char* yLabel) {
  std::printf("\n# series: %s  (%s vs %s)\n", name, yLabel, xLabel);
  for (const auto& [x, y] : points) {
    std::printf("%12.4f  %12.4f\n", x, y);
  }
}

/// Emits one machine-readable result line. scripts/bench_report.py greps
/// stdout for the "RESULT " prefix and parses the rest as a JSON object,
/// so benches can publish named series without a structured-output mode.
/// `json` must be a complete JSON object (the caller formats it).
inline void result(const std::string& json) {
  std::printf("RESULT %s\n", json.c_str());
}

/// When BF_METRICS is set, prints the whole obs registry after the figure:
/// BF_METRICS=json emits the JSON exposition, any other non-empty value
/// the Prometheus text format. Call at the end of each bench main().
inline void dumpMetrics() {
  const char* env = std::getenv("BF_METRICS");
  if (env == nullptr || *env == '\0' || std::string(env) == "0") return;
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  if (std::string(env) == "json") {
    std::printf("\n# metrics (json)\n%s\n", obs::toJson(snap).c_str());
  } else {
    std::printf("\n# metrics (prometheus)\n%s", obs::toPrometheusText(snap).c_str());
  }
}

}  // namespace bf::bench
