// Concurrency stress: N simulated users hammer one decision engine with
// async per-keystroke decisions while a main thread runs synchronous
// upload checks. Reports sustained decision throughput and verifies the
// engine's serialisation kept the stores coherent.
//
// A second phase measures multi-reader QUERY throughput against a loaded
// tracker, comparing the lock-free left-right read path (no shared mutex
// per query; see flow/tracker.h and DESIGN.md section 15) against an emulation
// of the pre-PR exclusive mutex (every query gated through one bench-side
// mutex). Run with --multi-reader to execute only this sweep. RESULT
// lines feed scripts/bench_report.py.
//
// (Beyond the paper: its prototype serves one user per browser; an
// enterprise proxy deployment would multiplex users over one store.)

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/decision_engine.h"
#include "corpus/text_generator.h"
#include "flow/wal.h"
#include "obs/stage.h"
#include "text/winnower.h"
#include "util/mutex.h"
#include "util/stopwatch.h"

namespace {

/// Multi-reader query phase: `readers` threads issue `queriesEach`
/// disclosure queries with precomputed fingerprints. With serialise=true,
/// every query first takes one bench-side mutex, emulating the pre-PR
/// tracker whose single exclusive mutex serialised all readers; with
/// serialise=false the queries go straight to the tracker's lock-free
/// left-right read path. Returns sustained queries/second.
double runReaderPhase(bf::flow::FlowTracker& tracker,
                      const std::vector<bf::text::Fingerprint>& queries,
                      std::size_t readers, std::size_t queriesEach,
                      bool serialise) {
  using namespace bf;
  util::Mutex gate;  // unranked: a bench fixture, not part of the hierarchy
  util::Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (std::size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      for (std::size_t i = 0; i < queriesEach; ++i) {
        const text::Fingerprint& fp = queries[(r * 31 + i) % queries.size()];
        if (serialise) {
          util::MutexLock lock(gate);
          auto hits = tracker.disclosedSources(
              fp, flow::SegmentKind::kParagraph, flow::kInvalidSegment,
              "probe");
          if (hits.size() > queries.size()) std::abort();  // keep hits live
        } else {
          auto hits = tracker.disclosedSources(
              fp, flow::SegmentKind::kParagraph, flow::kInvalidSegment,
              "probe");
          if (hits.size() > queries.size()) std::abort();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = watch.elapsedMillis() / 1000.0;
  return static_cast<double>(readers * queriesEach) /
         (seconds > 0 ? seconds : 1e-9);
}

/// The multi-reader query sweep: precomputed fingerprints, pure
/// Algorithm-1 queries — this isolates the tracker's read-path
/// synchronisation from fingerprinting cost. "exclusive" gates every
/// query through one bench-side mutex (the pre-PR behaviour: a single
/// exclusive tracker mutex serialised all readers); "shared" exercises
/// the left-right lock-free read path. Reports per-width speedup vs r1 so
/// the scaling claim is machine-checkable (bench_gate.py asserts
/// shared_r8 >= 2x shared_r1 on >= 8-core hosts).
void runMultiReaderSweep(bf::flow::FlowTracker& tracker,
                         const std::vector<std::string>& secrets) {
  using namespace bf;
  bench::printHeader("Readers", "multi-reader query throughput");
  std::vector<text::Fingerprint> queries;
  queries.reserve(secrets.size());
  for (const std::string& s : secrets) {
    queries.push_back(tracker.fingerprintOf(s));
  }
  const std::size_t queriesEach = bench::paperScale() ? 2000 : 500;
  const unsigned cores = std::thread::hardware_concurrency();
  for (const bool serialise : {true, false}) {
    double r1Qps = 0.0;
    for (const std::size_t readers : {1u, 2u, 4u, 8u}) {
      const double qps =
          runReaderPhase(tracker, queries, readers, queriesEach, serialise);
      const char* mode = serialise ? "exclusive" : "shared";
      if (readers == 1) r1Qps = qps;
      const double speedup = r1Qps > 0 ? qps / r1Qps : 0.0;
      std::printf(
          "mode: %-9s readers: %zu  queries/s: %10.0f  speedup vs r1: "
          "%.2fx\n",
          mode, readers, qps, speedup);
      bench::result("{\"bench\":\"multi_reader\",\"mode\":\"" +
                    std::string(mode) +
                    "\",\"readers\":" + std::to_string(readers) +
                    ",\"queries_per_s\":" + std::to_string(qps) +
                    ",\"speedup_vs_r1\":" + std::to_string(speedup) +
                    ",\"hw_cores\":" + std::to_string(cores) + "}");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bf;

  // --multi-reader: run ONLY the reader-count sweep against a freshly
  // seeded tracker — the fast feedback loop for read-path work (and the
  // mode bench_gate.py's scaling check documents).
  const bool multiReaderOnly =
      argc > 1 && std::string(argv[1]) == "--multi-reader";
  if (multiReaderOnly) {
    util::LogicalClock mrClock;
    flow::FlowTracker mrTracker(flow::TrackerConfig{}, &mrClock);
    util::Rng mrRng(99);
    corpus::TextGenerator mrGen(&mrRng);
    std::vector<std::string> mrSecrets;
    for (int i = 0; i < 50; ++i) {
      mrSecrets.push_back(mrGen.paragraph(6, 8));
      mrTracker.observeSegment(flow::SegmentKind::kParagraph,
                               "secret" + std::to_string(i) + "#p0",
                               "secret" + std::to_string(i), "internal",
                               mrSecrets.back());
    }
    runMultiReaderSweep(mrTracker, mrSecrets);
    bench::dumpMetrics();
    return 0;
  }

  bench::printHeader("Stress", "concurrent async decisions");

  // BF_STRESS_USERS / BF_STRESS_DECISIONS override the scale: the tsan
  // check (scripts/check.sh) runs a short configuration, since TSan slows
  // the pipeline by an order of magnitude.
  std::size_t users = bench::paperScale() ? 8 : 4;
  std::size_t decisionsPerUser = bench::paperScale() ? 4000 : 1500;
  if (const char* env = std::getenv("BF_STRESS_USERS"); env != nullptr) {
    users = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  if (const char* env = std::getenv("BF_STRESS_DECISIONS"); env != nullptr) {
    decisionsPerUser =
        static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }

  util::LogicalClock clock;
  flow::FlowTracker tracker(flow::TrackerConfig{}, &clock);
  tdm::TdmPolicy policy(&clock);
  policy.services().upsert(
      {"internal", "Internal", tdm::TagSet{"in"}, tdm::TagSet{"in"}});
  core::BrowserFlowConfig config;
  core::DecisionEngine engine(config, &tracker, &policy);

  // A shared sensitive corpus all users keep leaking.
  util::Rng seedRng(99);
  corpus::TextGenerator seedGen(&seedRng);
  std::vector<std::string> secrets;
  for (int i = 0; i < 50; ++i) {
    secrets.push_back(seedGen.paragraph(6, 8));
    tracker.observeSegment(flow::SegmentKind::kParagraph,
                           "secret" + std::to_string(i) + "#p0",
                           "secret" + std::to_string(i), "internal",
                           secrets.back());
    policy.onSegmentObserved("secret" + std::to_string(i) + "#p0",
                             "internal");
  }

  engine.resetLatencyStats();
  std::atomic<std::size_t> enqueued{0};
  util::Stopwatch watch;
  std::vector<std::thread> threads;
  for (std::size_t u = 0; u < users; ++u) {
    threads.emplace_back([&, u] {
      util::Rng rng(u * 7 + 1);
      corpus::TextGenerator gen(&rng);
      std::string text;
      for (std::size_t i = 0; i < decisionsPerUser; ++i) {
        // Alternate between typing fresh text and pasting a secret.
        if (i % 50 == 0) {
          text = (i % 100 == 0) ? gen.paragraph(4, 6)
                                : secrets[(u * 13 + i) % secrets.size()];
        } else {
          text += static_cast<char>('a' + (i % 26));
        }
        core::DecisionRequest req;
        req.segmentName =
            "u" + std::to_string(u) + "/d" + std::to_string(i / 50) + "#p0";
        req.documentName = "u" + std::to_string(u) + "/d" +
                           std::to_string(i / 50);
        req.serviceId = "https://ext.example";
        req.text = text;
        (void)engine.decideAsync(std::move(req));
        enqueued.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  engine.drain();
  const double seconds = watch.elapsedMillis() / 1000.0;

  const auto latency = engine.latencySummary();
  std::printf("users: %zu, decisions: %llu (%zu enqueued), wall: %.2fs, "
              "throughput: %.0f decisions/s, p50: %.3fms p99: %.3fms\n",
              users, static_cast<unsigned long long>(latency.count),
              enqueued.load(), seconds,
              static_cast<double>(latency.count) / seconds, latency.p50Ms,
              latency.p99Ms);

  // Coherence check: every secret still attributes to its original source.
  std::size_t misattributed = 0;
  for (std::size_t i = 0; i < secrets.size(); ++i) {
    const auto hits = tracker.checkText(secrets[i], "probe");
    if (hits.empty() ||
        hits[0].sourceName != "secret" + std::to_string(i) + "#p0") {
      ++misattributed;
    }
  }
  std::printf("post-stress source attribution intact: %zu/%zu\n",
              secrets.size() - misattributed, secrets.size());
  bench::result("{\"bench\":\"stress\",\"users\":" + std::to_string(users) +
                ",\"decisions_per_s\":" +
                std::to_string(static_cast<double>(latency.count) / seconds) +
                ",\"p50_ms\":" + std::to_string(latency.p50Ms) +
                ",\"p99_ms\":" + std::to_string(latency.p99Ms) + "}");

  // ---- Multi-reader query scaling ------------------------------------------
  runMultiReaderSweep(tracker, secrets);

  // ---- WAL append overhead -------------------------------------------------
  // The stress workload's decision loop (keystroke edits + periodic secret
  // pastes, synchronous decide so worker scheduling adds no noise), run
  // with and without a write-ahead log attached. Checkpointing is disabled
  // so the delta is pure per-mutation framing + write(); checkpoint and
  // fsync costs are bench_recovery's subject. Acceptance target: < 5% —
  // fingerprint + disclosure query + policy work per decision dwarfs one
  // log append.
  bench::printHeader("WAL", "append overhead on the decision path");
  const std::size_t walDecisions = bench::paperScale() ? 8000 : 2000;
  std::vector<std::string> walPastes;
  {
    util::Rng walRng(17);
    corpus::TextGenerator walGen(&walRng);
    for (int i = 0; i < 20; ++i) walPastes.push_back(walGen.paragraph(4, 6));
  }
  const std::string walDir =
      "/tmp/bf_stress_wal_" + std::to_string(static_cast<long>(getpid()));
  auto runDecisionLoop = [&](bool withWal) -> double {
    util::LogicalClock walClock;
    flow::FlowTracker walTracker(flow::TrackerConfig{}, &walClock);
    tdm::TdmPolicy walPolicy(&walClock);
    walPolicy.services().upsert(
        {"internal", "Internal", tdm::TagSet{"in"}, tdm::TagSet{"in"}});
    core::DecisionEngine walEngine(config, &walTracker, &walPolicy);
    std::unique_ptr<flow::DurabilityManager> walMgr;
    if (withWal) {
      (void)std::system(("rm -rf '" + walDir + "'").c_str());
      flow::DurabilityConfig walCfg;
      walCfg.directory = walDir;
      walCfg.checkpointEveryRecords = 1ull << 30;
      walMgr = std::make_unique<flow::DurabilityManager>(walCfg);
      if (!walMgr->recoverAndAttach(walTracker).ok()) std::abort();
      walEngine.setDurability(walMgr.get());
    }
    util::Stopwatch walWatch;
    std::string text;
    for (std::size_t i = 0; i < walDecisions; ++i) {
      if (i % 50 == 0) {
        text = (i % 100 == 0) ? walPastes[(i / 100) % walPastes.size()]
                              : walPastes[(i / 50) % walPastes.size()];
      } else {
        text += static_cast<char>('a' + (i % 26));
      }
      core::DecisionRequest req;
      req.segmentName = "wal/d" + std::to_string(i / 50) + "#p0";
      req.documentName = "wal/d" + std::to_string(i / 50);
      req.serviceId = "https://ext.example";
      req.text = text;
      (void)walEngine.decide(std::move(req));
    }
    const double elapsed = walWatch.elapsedMillis();
    walEngine.setDurability(nullptr);
    walTracker.attachWal(nullptr);
    return elapsed;
  };
  // Warm-up (page cache, lazy tables), then interleaved min-of-3: the
  // minimum discards scheduler spikes, which on a small container are far
  // larger than the effect being measured.
  (void)runDecisionLoop(false);
  double baseMs = 1e100;
  double walMs = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    baseMs = std::min(baseMs, runDecisionLoop(false));
    walMs = std::min(walMs, runDecisionLoop(true));
  }
  const double overheadPct =
      baseMs > 0 ? (walMs - baseMs) / baseMs * 100.0 : 0.0;
  std::printf(
      "decisions: %zu  base: %.1f ms  wal: %.1f ms  overhead: %+.2f%%\n",
      walDecisions, baseMs, walMs, overheadPct);
  bench::result("{\"bench\":\"wal_overhead\",\"decisions\":" +
                std::to_string(walDecisions) + ",\"base_ms\":" +
                std::to_string(baseMs) + ",\"wal_ms\":" +
                std::to_string(walMs) + ",\"overhead_pct\":" +
                std::to_string(overheadPct) + "}");
  (void)std::system(("rm -rf '" + walDir + "'").c_str());

  // ---- Provenance overhead -------------------------------------------------
  // The same synchronous decision loop with provenance (trace contexts,
  // stage timers, flight-recorder ids) on vs off. Acceptance target: < 3%
  // on the decision path — the per-decision cost is a handful of TSC reads
  // and one atomic id, which real work (fingerprint + query + policy)
  // should dwarf. scripts/bench_gate.py enforces the budget.
  bench::printHeader("Provenance", "trace/stage attribution overhead");
  auto runProvenanceLoop = [&](bool enabled) -> double {
    obs::setProvenanceEnabled(enabled);
    const double ms = runDecisionLoop(false);
    obs::setProvenanceEnabled(true);
    return ms;
  };
  (void)runProvenanceLoop(true);  // warm-up
  // Interleaved min-of-N with early exit: scheduler noise only inflates
  // the min-based estimate, so stop once it is comfortably under budget.
  double provOffMs = 1e100;
  double provOnMs = 1e100;
  double provOverheadPct = 1e100;
  for (int rep = 0; rep < 7; ++rep) {
    provOffMs = std::min(provOffMs, runProvenanceLoop(false));
    provOnMs = std::min(provOnMs, runProvenanceLoop(true));
    provOverheadPct =
        provOffMs > 0 ? (provOnMs - provOffMs) / provOffMs * 100.0 : 0.0;
    if (rep >= 2 && provOverheadPct < 2.0) break;
  }
  std::printf(
      "decisions: %zu  off: %.1f ms  on: %.1f ms  overhead: %+.2f%%\n",
      walDecisions, provOffMs, provOnMs, provOverheadPct);
  bench::result("{\"bench\":\"provenance_overhead\",\"decisions\":" +
                std::to_string(walDecisions) + ",\"base_ms\":" +
                std::to_string(provOffMs) + ",\"provenance_ms\":" +
                std::to_string(provOnMs) + ",\"overhead_pct\":" +
                std::to_string(provOverheadPct) + "}");

  bench::dumpMetrics();
  return misattributed == 0 ? 0 : 1;
}
