// Figures 10a-10d: "Paragraph disclosure (Manuals dataset)" —
// BrowserFlow's disclosure decisions against ground truth for four manual
// chapters across four versions each.
//
// Paper shapes: both iPhone chapters decay steeply (iOS7 discloses almost
// nothing from iOS3); "MySQL New Features" shows reduced disclosure after
// 4.1; "What's MySQL" stays ~100%. BrowserFlow should track ground truth
// closely, with a small systematic false-negative gap from extensively
// rephrased paragraphs (concepts survive, words do not).

#include "bench_util.h"
#include "corpus/datasets.h"
#include "disclosure_eval.h"

int main() {
  using namespace bf;
  bench::printHeader("Figure 10", "paragraph disclosure vs ground truth "
                                  "(manuals)");

  const auto ds = corpus::buildManuals();
  const flow::TrackerConfig trackerCfg;  // T_par = 0.5

  const char* figs[] = {"10a", "10b", "10c", "10d"};
  double worstGap = 0.0;
  for (std::size_t c = 0; c < ds.chapters.size(); ++c) {
    const auto& ch = ds.chapters[c];
    std::printf("\n--- Fig. %s: %s ---\n", figs[c], ch.name.c_str());
    std::printf("%-8s %28s %15s\n", "Version", "Ground truth (%)",
                "BrowserFlow (%)");
    for (std::size_t v = 0; v < ch.versions.size(); ++v) {
      const auto eval = bench::evaluateDisclosure(
          ch.versions.front(), ch.versions[v], trackerCfg, 0.5);
      const double gt = eval.groundTruthFraction() * 100.0;
      const double bf = eval.browserFlowFraction() * 100.0;
      std::printf("%-8s %28.1f %15.1f\n", ch.versionNames[v].c_str(), gt, bf);
      worstGap = std::max(worstGap, std::abs(gt - bf));
    }
  }

  std::printf("\nlargest |ground truth - BrowserFlow| gap: %.1f%%\n",
              worstGap);
  std::printf(
      "expected shape (paper Fig. 10): BrowserFlow matches the expert for "
      "each version; where they differ, BrowserFlow under-reports "
      "(rephrased paragraphs keep the concept but lose the words).\n");
  bench::dumpMetrics();
  return 0;
}
