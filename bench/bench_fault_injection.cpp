// Fault-injection bench: decision latency and upload goodput as the
// simulated network degrades.
//
// For each fault rate the harness drives the full upload path — browser tab,
// plug-in interception, notes client with retries, FaultInjector, SimNetwork
// — through a fixed editing workload, and reports:
//
//   goodput        fraction of allowed uploads that eventually landed
//   attempts/save  mean transport attempts per logical save
//   backoff ms     mean simulated backoff absorbed per save
//   decision p50/p95/p99
//
// Fault rates default to {0, 0.1, 0.2, 0.3}; BF_FAULT_RATE=<r> pins a
// single rate instead. Set BF_METRICS=1 for a registry dump (bf_retry_*,
// bf_fault_*, bf_decision_* appear once the corresponding paths fire).

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "browser/browser.h"
#include "cloud/fault_injector.h"
#include "cloud/network.h"
#include "cloud/notes_client.h"
#include "cloud/transport.h"
#include "core/plugin.h"
#include "corpus/text_generator.h"
#include "util/stopwatch.h"

namespace {

using namespace bf;

struct RateResult {
  double rate = 0.0;
  int saves = 0;
  int landed = 0;
  double meanAttempts = 0.0;
  double meanBackoffMs = 0.0;
  std::uint64_t faults = 0;
  core::DecisionEngine::LatencySummary latency;
  double wallMs = 0.0;
};

RateResult runAtRate(double rate, int editCount) {
  RateResult out;
  out.rate = rate;

  util::LogicalClock clock;
  util::Rng netRng(17);
  cloud::SimNetwork network(&netRng);
  cloud::FaultInjector faults(&network, /*seed=*/9000 + int(rate * 100),
                              cloud::FaultConfig::uniformRate(rate));
  cloud::NotesBackend backend;
  network.registerService("https://notes.corp", &backend);

  core::BrowserFlowConfig config;
  core::BrowserFlowPlugin plugin(config, &clock);
  browser::Browser browser(&faults);
  browser.addExtension(&plugin);

  browser::Page& tab = browser.openTab("https://notes.corp/n/bench");
  cloud::NotesClient notes(tab, "bench");
  notes.openNote();
  util::RetryPolicy retry;
  retry.maxAttempts = 8;
  retry.deadlineMs = 0.0;
  notes.enableRetries(retry, /*seed=*/31, /*budgetCapacity=*/1e9);

  const std::uint64_t attemptsBefore =
      obs::registry().counter("bf_retry_attempts_total").value();
  const obs::HistogramData backoffBefore =
      obs::registry().histogram("bf_retry_backoff_ms").data();
  plugin.engine().resetLatencyStats();

  util::Rng rng(4242);
  corpus::TextGenerator gen(&rng);
  util::Stopwatch wall;
  for (int i = 0; i < editCount; ++i) {
    // Alternate between appending and rewriting a paragraph — each edit
    // auto-saves the whole note through the faulty network.
    int status;
    if (i % 3 == 2 && notes.paragraphCount() > 0) {
      status = notes.setParagraph(i % notes.paragraphCount(),
                                  gen.paragraph(3, 5));
    } else {
      status = notes.appendParagraph(gen.paragraph(3, 5));
    }
    ++out.saves;
    if (status == 200) ++out.landed;
  }
  out.wallMs = wall.elapsedMillis();

  const std::uint64_t attempts =
      obs::registry().counter("bf_retry_attempts_total").value() -
      attemptsBefore;
  const obs::HistogramData backoffAfter =
      obs::registry().histogram("bf_retry_backoff_ms").data();
  out.meanAttempts =
      out.saves == 0 ? 0.0
                     : static_cast<double>(attempts) / out.saves;
  out.meanBackoffMs =
      out.saves == 0
          ? 0.0
          : (backoffAfter.sum - backoffBefore.sum) / out.saves;
  out.faults = faults.faultCount();
  out.latency = plugin.engine().latencySummary();
  return out;
}

}  // namespace

int main() {
  bench::printHeader("Fault injection",
                     "upload goodput and decision latency vs fault rate");

  std::vector<double> rates = {0.0, 0.1, 0.2, 0.3};
  if (const char* env = std::getenv("BF_FAULT_RATE");
      env != nullptr && *env != '\0') {
    rates = {std::atof(env)};
  }
  const int editCount = bench::paperScale() ? 600 : 120;

  std::vector<std::pair<double, double>> goodput, attempts, p95;
  std::printf(
      "\n%8s %7s %7s %9s %11s %11s %9s %9s %9s %10s\n", "rate", "saves",
      "landed", "goodput", "attempts", "backoff ms", "p50 ms", "p95 ms",
      "p99 ms", "faults");
  for (double rate : rates) {
    const RateResult r = runAtRate(rate, editCount);
    const double g = r.saves == 0 ? 0.0
                                  : static_cast<double>(r.landed) / r.saves;
    std::printf(
        "%8.2f %7d %7d %8.1f%% %11.2f %11.2f %9.3f %9.3f %9.3f %10llu\n",
        r.rate, r.saves, r.landed, 100.0 * g, r.meanAttempts, r.meanBackoffMs,
        r.latency.p50Ms, r.latency.p95Ms, r.latency.p99Ms,
        static_cast<unsigned long long>(r.faults));
    goodput.emplace_back(rate, g);
    attempts.emplace_back(rate, r.meanAttempts);
    p95.emplace_back(rate, r.latency.p95Ms);
  }

  bench::printSeries("goodput", goodput, "fault rate", "landed fraction");
  bench::printSeries("attempts per save", attempts, "fault rate",
                     "mean transport attempts");
  bench::printSeries("decision p95", p95, "fault rate", "latency (ms)");
  std::printf(
      "\nexpected shape: goodput stays ~1.0 well past 20%% faults (retries "
      "absorb them at the cost of extra attempts/backoff); decision latency "
      "is fault-independent — the engine never blocks on the network.\n");
  bench::dumpMetrics();
  return 0;
}
