// Figure 13: "Response time when varying the size of the hashes database".
//
// Loads e-books into the tracker in steps, and at each database size pastes
// a 500-character excerpt from a loaded book into a fresh document,
// measuring the 95th-percentile disclosure-decision time. The paper's
// claim to reproduce: response time grows SUB-LINEARLY with the number of
// distinct hashes (hash-indexed candidate discovery), staying bounded.

#include <string>

#include "bench_util.h"
#include "core/decision_engine.h"
#include "sec/sensitive.h"
#include "corpus/text_generator.h"
#include "corpus/revision_model.h"
#include "util/stats.h"
#include "util/stopwatch.h"

int main() {
  using namespace bf;
  bench::printHeader("Figure 13", "p95 response time vs hash-database size");

  // Paper: 1M..10M hashes (90 MB of text). Quick: 100k..1M.
  const std::size_t stepHashes = bench::paperScale() ? 1'000'000 : 100'000;
  const std::size_t steps = 10;
  const std::size_t probes = 30;

  util::LogicalClock clock;
  flow::FlowTracker tracker(flow::TrackerConfig{}, &clock);
  tdm::TdmPolicy policy(&clock);
  core::BrowserFlowConfig config;
  core::DecisionEngine engine(config, &tracker, &policy);

  util::Rng rng(1313);
  corpus::TextGenerator gen(&rng);
  corpus::RevisionModel model(&gen, &rng);

  std::vector<std::string> excerpts;  // 500-char paste sources
  std::size_t bookIndex = 0;

  std::vector<std::pair<double, double>> series;
  for (std::size_t step = 1; step <= steps; ++step) {
    const std::size_t target = step * stepHashes;
    // Grow the database to the target by loading more books.
    while (tracker.hashDb().distinctHashCount() < target) {
      corpus::VersionedDoc book =
          model.createDocument("book-" + std::to_string(bookIndex++), 200);
      tracker.observeDocument(book.id, "https://books.corp", book.render());
      // Collect ~500-character paragraphs as paste sources (the paper
      // pastes "a 500-character long paragraph from an existing book").
      if (excerpts.size() < 400) {
        for (const auto& para : book.paragraphs) {
          const std::string text = sec::declassifyForTest(para.render());
          if (text.size() >= 450 && text.size() <= 560) {
            excerpts.push_back(text);
            if (excerpts.size() >= 400) break;
          }
        }
      }
    }

    // Paste probes: a 500-char excerpt into a new empty document.
    std::vector<double> timesMs;
    std::size_t missedSources = 0;
    for (std::size_t i = 0; i < probes; ++i) {
      const std::string& excerpt = excerpts[(step * probes + i) %
                                            excerpts.size()];
      const std::string segment =
          "probe-" + std::to_string(step) + "-" + std::to_string(i) + "#p0";
      util::Stopwatch watch;
      const core::Decision d = engine.decide(
          {segment, "probe-doc", "https://docs.google.com", excerpt,
           flow::SegmentKind::kParagraph});
      timesMs.push_back(watch.elapsedMillis());
      // A paragraph made mostly of popular passages can have its hashes
      // owned by older paragraphs, leaving the true source undetected —
      // an inherent (and rare) authoritative-fingerprint miss.
      if (d.hits.empty()) ++missedSources;
      tracker.removeSegmentByName(segment);  // keep probes out of the DB
    }
    const double p95 = util::percentile(timesMs, 95);
    series.emplace_back(static_cast<double>(
                            tracker.hashDb().distinctHashCount()) / 1e6,
                        p95);
    std::printf("hashes: %8.2fM   p95: %8.3f ms   median: %8.3f ms   "
                "source found: %zu/%zu\n",
                series.back().first, p95, util::percentile(timesMs, 50),
                probes - missedSources, probes);
    bench::result(
        "{\"bench\":\"fig13\",\"hashes_millions\":" +
        std::to_string(series.back().first) +
        ",\"p95_ms\":" + std::to_string(p95) +
        ",\"median_ms\":" + std::to_string(util::percentile(timesMs, 50)) +
        "}");
  }

  bench::printSeries("p95-response-time", series,
                     "distinct hashes (millions)", "response time (ms)");

  // Sub-linearity check: 10x the hashes must cost far less than 10x time.
  const double first = series.front().second;
  const double last = series.back().second;
  std::printf("\np95 at %zux database size: %.2fx the initial p95 "
              "(sub-linear if << 10x)\n",
              steps, last / (first > 0 ? first : 1e-9));
  bench::result("{\"bench\":\"fig13\",\"p95_growth_at_10x\":" +
                std::to_string(last / (first > 0 ? first : 1e-9)) + "}");
  bench::dumpMetrics();
  return 0;
}
