// Microbenchmarks (google-benchmark): the primitives behind every
// disclosure decision — normalization, n-gram hashing, winnowing, HashDb
// lookups and full Algorithm 1 queries.

#include <benchmark/benchmark.h>

#include "corpus/text_generator.h"
#include "flow/snapshot.h"
#include "flow/tracker.h"
#include "text/aho_corasick.h"
#include "text/fingerprint_kernel.h"
#include "text/winnower.h"
#include "util/clock.h"

namespace {

using namespace bf;

std::string makeText(std::size_t bytes) {
  util::Rng rng(1);
  corpus::TextGenerator gen(&rng);
  std::string out;
  while (out.size() < bytes) {
    out += gen.paragraph(5, 8);
    out += "\n\n";
  }
  out.resize(bytes);
  return out;
}

void BM_Normalize(benchmark::State& state) {
  const std::string text = makeText(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::normalize(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Normalize)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_FingerprintText(benchmark::State& state) {
  const std::string text = makeText(static_cast<std::size_t>(state.range(0)));
  const text::FingerprintConfig config;  // paper defaults
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::fingerprintText(text, config));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FingerprintText)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_FingerprintTextReference(benchmark::State& state) {
  // The staged pipeline (normalize → hashNgrams → winnow) kept as the
  // differential-testing reference — and as the pre-fusion baseline this
  // PR's BENCH_PR4.json compares the fused kernel against.
  const std::string text = makeText(static_cast<std::size_t>(state.range(0)));
  const text::FingerprintConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::fingerprintTextReference(text, config));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FingerprintTextReference)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18);

void BM_FingerprintTextFusedWorkspace(benchmark::State& state) {
  // The fused kernel against an explicitly reused workspace: the
  // zero-allocation steady state (fingerprintText's thread-local path adds
  // only the TLS lookup on top of this).
  const std::string text = makeText(static_cast<std::size_t>(state.range(0)));
  const text::FingerprintConfig config;
  text::FingerprintWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::fingerprintTextFused(text, config, ws));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FingerprintTextFusedWorkspace)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18);

void BM_FingerprintIntersection(benchmark::State& state) {
  const text::FingerprintConfig config;
  const auto a = text::fingerprintText(makeText(1 << 16), config);
  const auto b = text::fingerprintText(makeText(1 << 16), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::Fingerprint::intersectionSize(a, b));
  }
}
BENCHMARK(BM_FingerprintIntersection);

void BM_HashDbLookup(benchmark::State& state) {
  flow::HashDb db;
  util::Rng rng(2);
  const std::size_t hashes = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < hashes; ++i) {
    db.recordObservation(rng.next() & 0xffffffff, (i % 512) + 1, i);
  }
  std::uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.oldestSegmentWith(probe++ & 0xffffffff));
  }
}
BENCHMARK(BM_HashDbLookup)->Arg(100000)->Arg(1000000);

void BM_DisclosureQuery(benchmark::State& state) {
  // Full Algorithm 1 query against a DB of `range(0)` paragraphs, where the
  // probe overlaps one of them.
  util::LogicalClock clock;
  flow::FlowTracker tracker(flow::TrackerConfig{}, &clock);
  util::Rng rng(3);
  corpus::TextGenerator gen(&rng);
  std::string probe;
  const std::size_t paragraphs = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < paragraphs; ++i) {
    const std::string text = gen.paragraph(5, 8);
    if (i == paragraphs / 2) probe = text;
    tracker.observeSegment(flow::SegmentKind::kParagraph,
                           "d" + std::to_string(i) + "#p0",
                           "d" + std::to_string(i), "svc", text);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.checkText(probe, "probe-doc"));
  }
}
BENCHMARK(BM_DisclosureQuery)->Arg(100)->Arg(1000)->Arg(10000);

void BM_KeystrokeCachedDecision(benchmark::State& state) {
  // The hot path of S6.2: re-querying a segment whose fingerprint did not
  // change.
  util::LogicalClock clock;
  flow::FlowTracker tracker(flow::TrackerConfig{}, &clock);
  util::Rng rng(4);
  corpus::TextGenerator gen(&rng);
  const flow::SegmentId id = tracker.observeSegment(
      flow::SegmentKind::kParagraph, "t#p0", "t", "svc", gen.paragraph(8, 8));
  (void)tracker.sourcesForSegment(id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.sourcesForSegment(id));
  }
}
BENCHMARK(BM_KeystrokeCachedDecision);

void BM_SnapshotExport(benchmark::State& state) {
  util::LogicalClock clock;
  flow::FlowTracker tracker(flow::TrackerConfig{}, &clock);
  util::Rng rng(5);
  corpus::TextGenerator gen(&rng);
  for (int i = 0; i < 200; ++i) {
    tracker.observeSegment(flow::SegmentKind::kParagraph,
                           "d" + std::to_string(i) + "#p0",
                           "d" + std::to_string(i), "svc",
                           gen.paragraph(5, 8));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::exportState(tracker));
  }
}
BENCHMARK(BM_SnapshotExport);

void BM_SnapshotImport(benchmark::State& state) {
  util::LogicalClock clock;
  flow::FlowTracker tracker(flow::TrackerConfig{}, &clock);
  util::Rng rng(6);
  corpus::TextGenerator gen(&rng);
  for (int i = 0; i < 200; ++i) {
    tracker.observeSegment(flow::SegmentKind::kParagraph,
                           "d" + std::to_string(i) + "#p0",
                           "d" + std::to_string(i), "svc",
                           gen.paragraph(5, 8));
  }
  const std::string blob = flow::exportState(tracker);
  for (auto _ : state) {
    util::LogicalClock clock2;
    flow::FlowTracker restored(flow::TrackerConfig{}, &clock2);
    benchmark::DoNotOptimize(flow::importState(restored, blob));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_SnapshotImport);

void BM_SecretScanAhoCorasick(benchmark::State& state) {
  text::AhoCorasick ac;
  util::Rng rng(7);
  corpus::TextGenerator gen(&rng);
  for (std::uint64_t i = 0; i < 500; ++i) {
    ac.addPattern(gen.word() + gen.word() + gen.word(), i);
  }
  ac.build();
  const std::string hay = makeText(1 << 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ac.containsAny(hay));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_SecretScanAhoCorasick);

}  // namespace

BENCHMARK_MAIN();
