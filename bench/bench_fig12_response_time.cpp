// Figure 12: "Distribution of response times for disclosure decisions".
//
// Preloads the e-books corpus into the tracker, then measures the time per
// disclosure decision while a user edits a Google-Docs-style document under
// the paper's three workflows:
//   W1 Creation-with-overlap    — typing a page from an existing e-book
//   W2 Creation-without-overlap — typing fresh text
//   W3 Modification             — editing a modified e-book page back
//                                 towards the original
//
// Expected shape (paper S6.2): a bimodal distribution — most keystrokes are
// answered from the fingerprint cache (fast mode), fingerprint-changing
// keystrokes trigger a real disclosure calculation (slow mode); overlap-
// heavy workflows (W1/W3) sit above the no-overlap workflow (W2).

// Latencies come from the bf_decision_latency_ms histogram in the obs
// registry (per-workflow snapshots via DecisionEngine::latencyData), so the
// CDF points are histogram quantile estimates rather than raw samples.

#include <string>

#include "bench_util.h"
#include "core/decision_engine.h"
#include "sec/sensitive.h"
#include "corpus/datasets.h"
#include "obs/metrics.h"
#include "text/segmenter.h"

namespace {

using namespace bf;

/// Types `text` into `segment` one keystroke at a time, running the full
/// decision pipeline per keystroke (the paper's trigger model).
void typeText(core::DecisionEngine& engine, const std::string& segment,
              const std::string& doc, const std::string& text) {
  std::string typed;
  typed.reserve(text.size());
  for (char c : text) {
    typed += c;
    core::DecisionRequest req;
    req.segmentName = segment;
    req.documentName = doc;
    req.serviceId = "https://docs.google.com";
    req.text = typed;
    engine.decide(req);
  }
}

void printCdf(const char* name, const obs::HistogramData& latency) {
  std::vector<std::pair<double, double>> series;
  for (double p : {1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 85.0, 90.0, 95.0, 99.0,
                   99.9}) {
    series.emplace_back(latency.percentile(p), p / 100.0);
  }
  bench::printSeries(name, series, "response time (ms)",
                     "fraction of samples");
  std::printf("samples: %llu, <30ms: %.1f%%, <200ms: %.1f%%\n",
              static_cast<unsigned long long>(latency.count),
              100.0 * latency.fractionBelow(30.0),
              100.0 * latency.fractionBelow(200.0));
}

}  // namespace

int main() {
  bench::printHeader("Figure 12", "response-time distribution per workflow");

  util::LogicalClock clock;
  flow::FlowTracker tracker(flow::TrackerConfig{}, &clock);
  tdm::TdmPolicy policy(&clock);
  core::BrowserFlowConfig config;
  core::DecisionEngine engine(config, &tracker, &policy);

  // Preload the e-books corpus (paper: 90 MB / 10 M distinct hashes).
  const auto ebookCfg = bench::paperScale()
                            ? corpus::EbooksConfig::paperScale()
                            : corpus::EbooksConfig::quickScale();
  const auto ebooks = corpus::buildEbooks(ebookCfg);
  for (const auto& book : ebooks.books) {
    tracker.observeDocument(book.id, "https://books.corp", book.render());
  }
  std::printf("preloaded %zu books, %.1f MB, %zu distinct paragraph "
              "hashes\n",
              ebooks.books.size(),
              static_cast<double>(ebooks.totalBytes) / (1024.0 * 1024.0),
              tracker.hashDb().distinctHashCount());

  // A "page": a few consecutive paragraphs of a book.
  auto pageOf = [](const corpus::VersionedDoc& book, std::size_t start,
                   std::size_t count) {
    std::string out;
    for (std::size_t i = start; i < start + count && i < book.paragraphs.size();
         ++i) {
      if (!out.empty()) out += "\n\n";
      out += sec::declassifyForTest(book.paragraphs[i].render());
    }
    return out;
  };
  const std::size_t pageParagraphs = 3;

  // W1: creation with overlap — type a page from book 0.
  engine.resetLatencyStats();
  {
    const std::string page = pageOf(ebooks.books[0], 10, pageParagraphs);
    std::size_t p = 0;
    for (const auto& para : text::segmentParagraphs(page)) {
      typeText(engine, "w1doc#p" + std::to_string(p++), "w1doc", para.text);
    }
  }
  const auto w1 = engine.latencyData();

  // W2: creation without overlap — type fresh text of the same length.
  engine.resetLatencyStats();
  {
    util::Rng rng(4242);
    corpus::TextGenerator gen(&rng);
    for (std::size_t p = 0; p < pageParagraphs; ++p) {
      typeText(engine, "w2doc#p" + std::to_string(p), "w2doc",
               gen.paragraph(5, 7));
    }
  }
  const auto w2 = engine.latencyData();

  // W3: modification — a previously-modified page is edited back to match
  // the original (growing-prefix morph, one keystroke per step).
  engine.resetLatencyStats();
  {
    util::Rng rng(77);
    corpus::TextGenerator gen(&rng);
    corpus::RevisionModel model(&gen, &rng);
    corpus::VersionedDoc modified = ebooks.books[1];
    model.evolve(modified, corpus::volatileProfile(), 150);
    // Morph a paragraph that actually changed between the versions.
    std::size_t paraIdx = 0;
    while (paraIdx + 1 < modified.paragraphs.size() &&
           (paraIdx >= ebooks.books[1].paragraphs.size() ||
            modified.paragraphs[paraIdx].render() ==
                ebooks.books[1].paragraphs[paraIdx].render())) {
      ++paraIdx;
    }
    const std::string original = pageOf(ebooks.books[1], paraIdx, 1);
    const std::string edited = pageOf(modified, paraIdx, 1);
    for (std::size_t k = 1; k <= original.size(); k += 1) {
      const std::string text =
          original.substr(0, k) +
          (k < edited.size() ? edited.substr(k) : std::string{});
      core::DecisionRequest req;
      req.segmentName = "w3doc#p0";
      req.documentName = "w3doc";
      req.serviceId = "https://docs.google.com";
      req.text = text;
      engine.decide(req);
    }
  }
  const auto w3 = engine.latencyData();

  printCdf("W1 Creation-with-overlap", w1);
  printCdf("W2 Creation-without-overlap", w2);
  printCdf("W3 Modification", w3);

  std::printf(
      "\nexpected shape (paper Fig. 12): bimodal — cache-served keystrokes "
      "fast, recomputations slower; W1/W3 (overlapping text) slower than "
      "W2. Absolute numbers differ from the paper's browser setup.\n");
  bench::dumpMetrics();
  return 0;
}
