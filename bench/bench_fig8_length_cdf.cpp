// Figure 8: "Changes in article length" — the cumulative distribution of
// the relative difference in content size between the oldest and the most
// recent revision of each Wikipedia-like article.
//
// The paper uses this as a heuristic for ground truth: articles with
// stable lengths are assumed largely unchanged; articles with large length
// deltas changed substantially. The synthetic corpus must reproduce the
// same spread for Fig. 9's article selection to be meaningful.

#include <cmath>

#include "bench_util.h"
#include "corpus/datasets.h"
#include "util/stats.h"

int main() {
  using namespace bf;
  bench::printHeader("Figure 8", "changes in article length (CDF)");

  const auto cfg = bench::paperScale()
                       ? corpus::WikipediaConfig::paperScale()
                       : corpus::WikipediaConfig::quickScale();
  const auto ds = corpus::buildWikipedia(cfg);
  std::printf("articles: %zu, revisions per article: %zu, seed: %llu\n",
              ds.articles.size(), cfg.revisions,
              static_cast<unsigned long long>(cfg.seed));

  std::vector<double> relativeDiffPct;
  for (const auto& art : ds.articles) {
    const double base =
        static_cast<double>(art.checkpoints.front().renderedSize());
    const double last =
        static_cast<double>(art.checkpoints.back().renderedSize());
    relativeDiffPct.push_back(std::abs(last - base) / base * 100.0);
  }

  std::vector<std::pair<double, double>> series;
  for (const auto& [value, frac] : util::empiricalCdf(relativeDiffPct)) {
    series.emplace_back(value, frac);
  }
  bench::printSeries("article-length-change", series,
                     "relative difference of content sizes (%)",
                     "fraction of articles");

  std::printf("\nmedian length change: %.1f%%, p90: %.1f%%\n",
              util::percentile(relativeDiffPct, 50),
              util::percentile(relativeDiffPct, 90));
  std::printf("expected shape: wide spread — a stable mass near 0%% and a "
              "volatile tail beyond ~30%% (paper Fig. 8 spans ~10%%-100%%)\n");
  bench::dumpMetrics();
  return 0;
}
