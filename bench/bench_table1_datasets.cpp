// Table 1: "Datasets used for information disclosure evaluation".
//
// Regenerates the dataset inventory — documents, versions, average
// paragraph counts and sizes — for the synthetic stand-ins of the paper's
// Wikipedia, Manuals, News and Ebooks corpora.

#include "bench_util.h"
#include "corpus/datasets.h"

int main() {
  using namespace bf;
  bench::printHeader("Table 1", "datasets used for disclosure evaluation");

  const auto wikiCfg = bench::paperScale()
                           ? corpus::WikipediaConfig::paperScale()
                           : corpus::WikipediaConfig::quickScale();
  const auto ebookCfg = bench::paperScale()
                            ? corpus::EbooksConfig::paperScale()
                            : corpus::EbooksConfig::quickScale();

  std::printf("\n%-24s %10s %9s %11s %9s\n", "Dataset", "Documents",
              "Versions", "Paragraphs", "Size(KB)");
  auto printRow = [](const corpus::DatasetStats& s) {
    std::printf("%-24s %10zu %9zu %11.1f %9.1f\n", s.name.c_str(),
                s.documents, s.versions, s.avgParagraphs, s.avgSizeKb);
  };

  printRow(statsOf(corpus::buildWikipedia(wikiCfg)));
  for (const auto& row : statsOf(corpus::buildManuals())) printRow(row);
  printRow(statsOf(corpus::buildNews()));

  const auto ebooks = corpus::buildEbooks(ebookCfg);
  printRow(statsOf(ebooks));
  std::printf("\nEbooks total size: %.1f MB (paper: 90 MB)\n",
              static_cast<double>(ebooks.totalBytes) / (1024.0 * 1024.0));
  bench::dumpMetrics();
  return 0;
}
