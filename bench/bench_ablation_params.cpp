// Ablations for the design choices DESIGN.md calls out:
//  A1  winnowing parameters (n-gram / window length) vs detection accuracy
//  A2  authoritative fingerprints on/off vs false positives on overlapping
//      documents (the paper's Fig. 7 problem)
//  A3  the per-segment decision cache on/off vs keystroke latency

#include <cmath>

#include "bench_util.h"
#include "corpus/datasets.h"
#include "disclosure_eval.h"
#include "util/stats.h"
#include "util/stopwatch.h"

namespace {

using namespace bf;

// ---- A1 -----------------------------------------------------------------

void ablationWinnowingParams(const corpus::ManualsDataset& manuals) {
  std::printf("\n--- A1: winnowing parameters vs accuracy (manuals, "
              "T_par = 0.5) ---\n");
  std::printf("%8s %8s | %22s %22s\n", "n-gram", "window", "detected/truth",
              "avg fingerprint size");
  struct Param {
    std::size_t ngram, window;
  };
  const Param params[] = {{5, 10},  {8, 16},  {15, 30},
                          {15, 60}, {25, 50}, {40, 80}};
  for (const auto& p : params) {
    flow::TrackerConfig cfg;
    cfg.fingerprint.ngramChars = p.ngram;
    cfg.fingerprint.windowChars = p.window;

    std::size_t detected = 0, truth = 0;
    double fpSizeSum = 0;
    std::size_t fpCount = 0;
    for (const auto& ch : manuals.chapters) {
      for (std::size_t v = 1; v < ch.versions.size(); ++v) {
        const auto eval = bench::evaluateDisclosure(
            ch.versions.front(), ch.versions[v], cfg, 0.5, true);
        detected += eval.detectedByBrowserFlow;
        truth += eval.detectedByGroundTruth;
      }
      for (const auto& para : ch.versions.front().paragraphs) {
        fpSizeSum += static_cast<double>(
            text::fingerprintText(para.render(), cfg.fingerprint).size());
        ++fpCount;
      }
    }
    std::printf("%8zu %8zu | %22.3f %22.1f\n", p.ngram, p.window,
                truth > 0 ? static_cast<double>(detected) /
                                static_cast<double>(truth)
                          : 0.0,
                fpSizeSum / static_cast<double>(fpCount));
  }
  std::printf(
      "(too-small n-grams collide across unrelated text, so under "
      "authoritative tracking older paragraphs claim the hashes and true "
      "sources are under-scored; larger windows thin the fingerprint, "
      "trading recall on partial copies for memory)\n");
}

// ---- A2 -------------------------------------------------------------------

void ablationAuthoritative() {
  std::printf("\n--- A2: authoritative fingerprints vs overlap false "
              "positives ---\n");
  // Fig. 7 setup, scaled up: N originals; each also exists inside a larger
  // "superset" paragraph; every original is then pasted to a new document.
  // Without authoritative fingerprints, each paste blames BOTH copies.
  const std::size_t n = 40;
  for (bool useAuth : {true, false}) {
    util::LogicalClock clock;
    flow::TrackerConfig cfg;
    cfg.useAuthoritative = useAuth;
    flow::FlowTracker tracker(cfg, &clock);
    util::Rng rng(5);
    corpus::TextGenerator gen(&rng);

    std::vector<std::string> originals;
    for (std::size_t i = 0; i < n; ++i) {
      originals.push_back(gen.paragraph(6, 8));
      tracker.observeSegment(flow::SegmentKind::kParagraph,
                             "orig" + std::to_string(i) + "#p0",
                             "orig" + std::to_string(i), "svc", originals[i]);
      tracker.observeSegment(
          flow::SegmentKind::kParagraph, "super" + std::to_string(i) + "#p0",
          "super" + std::to_string(i), "svc",
          originals[i] + " " + gen.paragraph(6, 8));
    }
    std::size_t truePositives = 0, falsePositives = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (const auto& hit : tracker.checkText(originals[i], "probe")) {
        if (hit.sourceName == "orig" + std::to_string(i) + "#p0") {
          ++truePositives;
        } else {
          ++falsePositives;
        }
      }
    }
    std::printf("authoritative=%-5s  true positives: %zu/%zu, "
                "false positives: %zu\n",
                useAuth ? "on" : "off", truePositives, n, falsePositives);
  }
  std::printf("(paper S4.3: the authoritative fingerprint confines each "
              "report to the true origin)\n");
}

// ---- A3 ----------------------------------------------------------------------

void ablationCache() {
  std::printf("\n--- A3: decision cache vs keystroke latency ---\n");
  for (bool useCache : {true, false}) {
    util::LogicalClock clock;
    flow::TrackerConfig cfg;
    cfg.enableCache = useCache;
    flow::FlowTracker tracker(cfg, &clock);
    util::Rng rng(6);
    corpus::TextGenerator gen(&rng);

    // A corpus of paragraphs sharing text with what the user types.
    const std::string source = gen.paragraph(8, 10);
    for (int i = 0; i < 50; ++i) {
      tracker.observeSegment(flow::SegmentKind::kParagraph,
                             "doc" + std::to_string(i) + "#p0",
                             "doc" + std::to_string(i), "svc",
                             source + " " + gen.paragraph(4, 6));
    }

    const flow::SegmentId typing = tracker.observeSegment(
        flow::SegmentKind::kParagraph, "typing#p0", "typing", "svc", source);
    std::vector<double> timesUs;
    std::string text = source;
    for (int k = 0; k < 200; ++k) {
      text += static_cast<char>('a' + (k % 26));
      tracker.observeSegment(flow::SegmentKind::kParagraph, "typing#p0",
                             "typing", "svc", text);
      util::Stopwatch watch;
      (void)tracker.sourcesForSegment(typing);
      timesUs.push_back(watch.elapsedMicros());
    }
    std::printf("cache=%-4s  median: %8.1f us   p95: %8.1f us   "
                "cache hits: %llu/200\n",
                useCache ? "on" : "off", util::percentile(timesUs, 50),
                util::percentile(timesUs, 95),
                static_cast<unsigned long long>(tracker.stats().cacheHits));
  }
  std::printf("(paper S6.2: unchanged fingerprints are served from the "
              "previous response)\n");
}

}  // namespace

int main() {
  bench::printHeader("Ablations", "winnowing params / authoritative "
                                  "fingerprints / decision cache");
  const auto manuals = corpus::buildManuals();
  ablationWinnowingParams(manuals);
  ablationAuthoritative();
  ablationCache();
  bench::dumpMetrics();
  return 0;
}
