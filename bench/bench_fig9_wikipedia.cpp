// Figures 9a/9b: "Paragraph disclosure (Wikipedia dataset)".
//
// For articles with LOW length variation (9a) the percentage of base-
// version paragraphs still disclosed should stay near 100% across hundreds
// of revisions; for HIGH-variation articles (9b) it should decay. The
// harness picks the four lowest- and four highest-variation articles (as
// the paper picks "Chicago"/"C++"/... vs "Dow Jones"/"Dementia"/...).

#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "corpus/datasets.h"
#include "disclosure_eval.h"

int main() {
  using namespace bf;
  bench::printHeader("Figure 9", "paragraph disclosure across revisions");

  const auto cfg = bench::paperScale()
                       ? corpus::WikipediaConfig::paperScale()
                       : corpus::WikipediaConfig::quickScale();
  const auto ds = corpus::buildWikipedia(cfg);
  const flow::TrackerConfig trackerCfg;  // paper defaults, T_par = 0.5
  std::printf("T_par = %.2f, n-gram = %zu chars, window = %zu chars\n",
              trackerCfg.defaultParagraphThreshold,
              trackerCfg.fingerprint.ngramChars,
              trackerCfg.fingerprint.windowChars);

  // Rank articles by relative length change (the Fig. 8 heuristic).
  std::vector<std::pair<double, const corpus::WikipediaArticle*>> ranked;
  for (const auto& art : ds.articles) {
    const double base =
        static_cast<double>(art.checkpoints.front().renderedSize());
    const double last =
        static_cast<double>(art.checkpoints.back().renderedSize());
    ranked.emplace_back(std::abs(last - base) / base, &art);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  const std::size_t picks = std::min<std::size_t>(4, ranked.size() / 2);
  auto runSeries = [&](const corpus::WikipediaArticle& art) {
    std::vector<std::pair<double, double>> series;
    for (std::size_t c = 0; c < art.checkpoints.size(); ++c) {
      const auto eval =
          bench::evaluateDisclosure(art.checkpoints.front(),
                                    art.checkpoints[c], trackerCfg, 0.5);
      series.emplace_back(static_cast<double>(art.checkpointRevision[c]),
                          eval.browserFlowFraction() * 100.0);
    }
    return series;
  };

  std::printf("\n--- Fig. 9a: articles with LOW length variation ---\n");
  for (std::size_t i = 0; i < picks; ++i) {
    const auto& art = *ranked[i].second;
    bench::printSeries(
        (art.title + (art.isVolatile ? " (volatile)" : " (stable)")).c_str(),
        runSeries(art), "revisions away from base version",
        "disclosing paragraphs (%)");
  }

  std::printf("\n--- Fig. 9b: articles with HIGH length variation ---\n");
  for (std::size_t i = 0; i < picks; ++i) {
    const auto& art = *ranked[ranked.size() - 1 - i].second;
    bench::printSeries(
        (art.title + (art.isVolatile ? " (volatile)" : " (stable)")).c_str(),
        runSeries(art), "revisions away from base version",
        "disclosing paragraphs (%)");
  }

  std::printf(
      "\nexpected shape (paper Fig. 9): low-variation articles report "
      "disclosure for almost all paragraphs across revisions; "
      "high-variation articles decay towards a small residue.\n");
  bench::dumpMetrics();
  return 0;
}
