// Figure 11: "Impact of paragraph disclosure threshold" — the ratio of
// paragraphs BrowserFlow reports as disclosed (summed over all manual
// chapters and versions) over the ground-truth count, as T_par sweeps 0..1.
//
// Paper result: the ratio stays within ~10% of 1 for T_par in [0.2, 0.8];
// below that range false positives push it above 1, above it false
// negatives pull it below. Short paragraphs with empty fingerprints are
// excluded, as in the paper.

#include "bench_util.h"
#include "corpus/datasets.h"
#include "disclosure_eval.h"

int main() {
  using namespace bf;
  bench::printHeader("Figure 11", "detected/ground-truth ratio vs T_par");

  const auto ds = corpus::buildManuals();
  const flow::TrackerConfig trackerCfg;

  std::vector<std::pair<double, double>> series;
  for (double tpar = 0.0; tpar <= 1.0001; tpar += 0.1) {
    std::size_t detected = 0, truth = 0;
    for (const auto& ch : ds.chapters) {
      for (std::size_t v = 1; v < ch.versions.size(); ++v) {
        const auto eval = bench::evaluateDisclosure(
            ch.versions.front(), ch.versions[v], trackerCfg, tpar,
            /*skipEmptyFingerprints=*/true);
        detected += eval.detectedByBrowserFlow;
        truth += eval.detectedByGroundTruth;
      }
    }
    const double ratio =
        truth == 0 ? 0.0
                   : static_cast<double>(detected) / static_cast<double>(truth);
    series.emplace_back(tpar, ratio);
  }
  bench::printSeries("detected-over-truth", series,
                     "paragraph disclosure threshold T_par",
                     "ratio of detected disclosure over ground truth");

  // Sanity summary matching the paper's claim.
  double worstMidRange = 0.0;
  for (const auto& [t, r] : series) {
    if (t >= 0.2 - 1e-9 && t <= 0.8 + 1e-9) {
      worstMidRange = std::max(worstMidRange, std::abs(r - 1.0));
    }
  }
  std::printf("\nmax |ratio - 1| for T_par in [0.2, 0.8]: %.3f "
              "(paper: agreement for >90%% of paragraphs)\n",
              worstMidRange);
  std::printf("adopted default: T_par = 0.5\n");
  bench::dumpMetrics();
  return 0;
}
