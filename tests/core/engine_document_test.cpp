// Decision-engine tests at the document granularity, plus concurrency
// stress on the async worker.
#include <gtest/gtest.h>

#include <thread>

#include "core/decision_engine.h"
#include "corpus/text_generator.h"
#include "util/clock.h"

namespace bf::core {
namespace {

class EngineDocumentTest : public ::testing::Test {
 protected:
  EngineDocumentTest()
      : rng_(31),
        gen_(&rng_),
        tracker_(flow::TrackerConfig{}, &clock_),
        policy_(&clock_),
        engine_(config_, &tracker_, &policy_) {
    policy_.services().upsert(
        {"wiki", "Wiki", tdm::TagSet{"tw"}, tdm::TagSet{"tw"}});
    policy_.services().upsert(
        {"gdocs", "Google Docs", tdm::TagSet{}, tdm::TagSet{}});
  }

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  BrowserFlowConfig config_;
  flow::FlowTracker tracker_;
  tdm::TdmPolicy policy_;
  DecisionEngine engine_;
};

TEST_F(EngineDocumentTest, DocumentKindRequestChecksDocumentSources) {
  // A wiki page with a low document threshold: sampling one sentence per
  // paragraph violates at document granularity.
  std::vector<std::string> leads;
  std::string doc;
  for (int i = 0; i < 6; ++i) {
    leads.push_back(gen_.sentence(12, 14));
    if (!doc.empty()) doc += "\n\n";
    doc += leads.back() + " " + gen_.paragraph(6, 6);
  }
  tracker_.observeDocument("wiki/page", "wiki", doc, 0.6, 0.08);
  policy_.onSegmentObserved("wiki/page", "wiki");

  std::string leak;
  for (const auto& s : leads) leak += s + " ";

  DecisionRequest req;
  req.segmentName = "gdocs/doc";
  req.documentName = "gdocs/doc";
  req.serviceId = "gdocs";
  req.text = leak;
  req.kind = flow::SegmentKind::kDocument;
  const Decision d = engine_.decide(req);
  EXPECT_TRUE(d.violation());
  ASSERT_FALSE(d.hits.empty());
  EXPECT_EQ(d.hits[0].kind, flow::SegmentKind::kDocument);
  EXPECT_EQ(d.hits[0].sourceName, "wiki/page");
}

TEST_F(EngineDocumentTest, DocumentDecisionDoesNotPolluteParagraphQueries) {
  const std::string doc = gen_.paragraph(6, 8) + "\n\n" + gen_.paragraph(6, 8);
  DecisionRequest req;
  req.segmentName = "gdocs/d";
  req.documentName = "gdocs/d";
  req.serviceId = "gdocs";
  req.text = doc;
  req.kind = flow::SegmentKind::kDocument;
  engine_.decide(req);
  // No paragraph-kind segment named gdocs/d exists.
  const flow::SegmentRecord* rec = tracker_.segmentByName("gdocs/d");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->kind, flow::SegmentKind::kDocument);
}

TEST_F(EngineDocumentTest, ConcurrentAsyncProducersAreSerialised) {
  // Two caller threads enqueue async decisions while the main thread runs
  // sync ones: the engine's mutex must keep the stores coherent.
  const std::string base = gen_.paragraph(6, 8);
  tracker_.observeSegment(flow::SegmentKind::kParagraph, "src#p0", "src",
                          "wiki", base);
  policy_.onSegmentObserved("src#p0", "wiki");

  auto worker = [&](int id) {
    // Thread-local generator: the fixture's rng is not thread-safe.
    util::Rng rng(static_cast<std::uint64_t>(id) * 101);
    corpus::TextGenerator gen(&rng);
    for (int i = 0; i < 25; ++i) {
      DecisionRequest req;
      req.segmentName =
          "t" + std::to_string(id) + "-" + std::to_string(i) + "#p0";
      req.documentName = "t" + std::to_string(id) + "-" + std::to_string(i);
      req.serviceId = "gdocs";
      req.text = (i % 2 == 0) ? base : gen.paragraph(5, 7);
      (void)engine_.decideAsync(req);
    }
  };
  std::thread a(worker, 1);
  std::thread b(worker, 2);
  for (int i = 0; i < 25; ++i) {
    DecisionRequest req;
    req.segmentName = "main-" + std::to_string(i) + "#p0";
    req.documentName = "main-" + std::to_string(i);
    req.serviceId = "gdocs";
    req.text = base;
    (void)engine_.decide(req);
  }
  a.join();
  b.join();
  engine_.drain();
  // Every even-numbered async segment disclosed the source.
  const auto hits = tracker_.checkText(base, "probe");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].sourceName, "src#p0");
  EXPECT_GE(engine_.latencySummary().count, 75u);
}

}  // namespace
}  // namespace bf::core
