// Concurrency regression tests for the DecisionEngine.
//
// EnforcementModeFlips... is the regression test for a real data race the
// thread-safety migration surfaced: setMode() used to write config_.mode
// unlocked while the worker thread read it inside decideLocked(), a torn
// read under TSan. The mode now lives in a std::atomic mirror; this test
// fails under the tsan preset against the old code.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "core/decision_engine.h"
#include "corpus/text_generator.h"
#include "util/clock.h"

namespace bf::core {
namespace {

class EngineConcurrencyTest : public ::testing::Test {
 protected:
  EngineConcurrencyTest()
      : rng_(21),
        gen_(&rng_),
        tracker_(flow::TrackerConfig{}, &clock_),
        policy_(&clock_),
        engine_(config_, &tracker_, &policy_) {
    policy_.services().upsert({"internal", "Internal", tdm::TagSet{"in"},
                               tdm::TagSet{"in"}});
    policy_.services().upsert(
        {"external", "External", tdm::TagSet{}, tdm::TagSet{}});
    // A sensitive paragraph whose re-upload to "external" violates policy,
    // so the enforcement mode actually matters for every decision below.
    sensitive_ = gen_.paragraph(6, 9);
    tracker_.observeSegment(flow::SegmentKind::kParagraph, "internal/doc#p0",
                            "internal/doc", "internal", sensitive_);
    policy_.onSegmentObserved("internal/doc#p0", "internal");
  }

  DecisionRequest leakRequest(int i) const {
    DecisionRequest req;
    req.segmentName = "external/d" + std::to_string(i) + "#p0";
    req.documentName = "external/d" + std::to_string(i);
    req.serviceId = "external";
    req.text = sensitive_;
    return req;
  }

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  BrowserFlowConfig config_;
  flow::FlowTracker tracker_;
  tdm::TdmPolicy policy_;
  DecisionEngine engine_;
  std::string sensitive_;
};

TEST_F(EngineConcurrencyTest, EnforcementModeFlipsDuringAsyncLoadStayAtomic) {
  constexpr int kDecisions = 300;
  std::vector<std::future<Decision>> futures;
  futures.reserve(kDecisions);

  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    // Hammer the mode while the worker decides; each decision must see
    // exactly warn or block, never a torn in-between value.
    bool warn = false;
    while (!stop.load(std::memory_order_relaxed)) {
      engine_.setMode(warn ? EnforcementMode::kWarn : EnforcementMode::kBlock);
      warn = !warn;
    }
  });

  for (int i = 0; i < kDecisions; ++i) {
    futures.push_back(engine_.decideAsync(leakRequest(i)));
  }
  engine_.drain();
  stop.store(true, std::memory_order_relaxed);
  flipper.join();

  int violations = 0;
  for (auto& f : futures) {
    const Decision d = f.get();
    if (d.degraded) continue;  // shed under load: action follows degradedMode
    ASSERT_TRUE(d.action == Decision::Action::kWarn ||
                d.action == Decision::Action::kBlock)
        << "decision saw a torn enforcement mode";
    ++violations;
  }
  EXPECT_GT(violations, 0);
  const EnforcementMode final = engine_.mode();
  EXPECT_TRUE(final == EnforcementMode::kWarn ||
              final == EnforcementMode::kBlock);
}

TEST_F(EngineConcurrencyTest, ResilienceRetuneAndBreakerPollDuringLoad) {
  constexpr int kDecisions = 200;
  std::atomic<bool> stop{false};

  std::thread tuner([&] {
    ResilienceConfig tight = config_.resilience;
    ResilienceConfig loose = config_.resilience;
    tight.maxQueueDepth = 4;
    tight.decisionDeadlineMs = 1.0;
    bool flip = false;
    while (!stop.load(std::memory_order_relaxed)) {
      engine_.setResilience(flip ? tight : loose);
      flip = !flip;
    }
  });
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)engine_.breakerOpen();
      (void)engine_.latencySummary();
    }
  });

  std::vector<std::future<Decision>> futures;
  futures.reserve(kDecisions);
  for (int i = 0; i < kDecisions; ++i) {
    futures.push_back(engine_.decideAsync(leakRequest(i)));
  }
  engine_.drain();
  stop.store(true, std::memory_order_relaxed);
  tuner.join();
  poller.join();

  // Every future resolves: shed / deadline-expired decisions come back
  // degraded (and audited), the rest ran the full pipeline.
  std::size_t resolved = 0;
  for (auto& f : futures) {
    const Decision d = f.get();
    if (d.degraded) EXPECT_FALSE(d.degradedReason.empty());
    ++resolved;
  }
  EXPECT_EQ(resolved, futures.size());
}

TEST_F(EngineConcurrencyTest, SyncAndAsyncDecisionsInterleaveSafely) {
  constexpr int kPerSide = 100;
  std::vector<std::future<Decision>> futures;
  futures.reserve(kPerSide);
  std::thread asyncSide([&] {
    for (int i = 0; i < kPerSide; ++i) {
      futures.push_back(engine_.decideAsync(leakRequest(i)));
    }
  });
  for (int i = 0; i < kPerSide; ++i) {
    const Decision d = engine_.decide(leakRequest(kPerSide + i));
    if (!d.degraded) EXPECT_TRUE(d.violation());
  }
  asyncSide.join();
  engine_.drain();
  for (auto& f : futures) (void)f.get();
}

}  // namespace
}  // namespace bf::core
