// Tests for SecretGuard and its integration with the decision pipeline
// (paper S4.4's data-equality protection for short secrets).
#include <gtest/gtest.h>

#include "cloud/docs_backend.h"
#include "cloud/docs_client.h"
#include "cloud/network.h"
#include "core/plugin.h"
#include "corpus/text_generator.h"

namespace bf::core {
namespace {

TEST(SecretGuard, NormalizedMatching) {
  SecretGuard guard;
  ASSERT_TRUE(guard.addSecret("db-password", "Hunter-2 42!", "secret"));
  // Case, punctuation and spacing differences do not hide the secret.
  EXPECT_TRUE(guard.containsSecret("the password is hunter242, don't share"));
  EXPECT_TRUE(guard.containsSecret("HUNTER242"));
  EXPECT_FALSE(guard.containsSecret("hunter2 is not the whole secret"));
}

TEST(SecretGuard, RejectsTrivialSecrets) {
  SecretGuard guard;
  EXPECT_FALSE(guard.addSecret("too-short", "ab1", "t"));
  EXPECT_FALSE(guard.addSecret("punct-only", "!!!---", "t"));
  EXPECT_EQ(guard.size(), 0u);
}

TEST(SecretGuard, ScanReportsEachSecretOnce) {
  SecretGuard guard;
  ASSERT_TRUE(guard.addSecret("alpha", "alphasecret", "ta"));
  ASSERT_TRUE(guard.addSecret("beta", "betasecret", "tb"));
  const auto hits = guard.scan(
      "alphasecret here, alphasecret again, and betasecret too");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].name, "alpha");
  EXPECT_EQ(hits[1].name, "beta");
}

TEST(SecretGuard, EmptyGuardScansNothing) {
  SecretGuard guard;
  EXPECT_TRUE(guard.scan("any text").empty());
  EXPECT_FALSE(guard.containsSecret("any text"));
}

// ---- Integration with the plug-in ---------------------------------------------

class SecretGuardPluginTest : public ::testing::Test {
 protected:
  SecretGuardPluginTest()
      : rng_(77),
        gen_(&rng_),
        network_(&rng_),
        plugin_(blockConfig(), &clock_),
        browser_(&network_) {
    network_.registerService("https://docs.google.com", &docsBackend_);
    // The vault service is trusted with the api-key tag.
    plugin_.policy().services().upsert({"https://vault.corp", "Vault",
                                        tdm::TagSet{"api-key"},
                                        tdm::TagSet{}});
    network_.registerService("https://vault.corp", &vaultBackend_);
    plugin_.secretGuard().addSecret(
        "prod-api-key", "sk-live-9A7xQ2Lm44", "api-key");
    browser_.addExtension(&plugin_);
  }

  static BrowserFlowConfig blockConfig() {
    BrowserFlowConfig c;
    c.mode = EnforcementMode::kBlock;
    return c;
  }

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  cloud::SimNetwork network_;
  cloud::DocsBackend docsBackend_;
  cloud::DocsBackend vaultBackend_;
  BrowserFlowPlugin plugin_;
  browser::Browser browser_;
};

TEST_F(SecretGuardPluginTest, SecretInDocsUploadBlocked) {
  browser::Page& page = browser_.openTab("https://docs.google.com/d/k1");
  cloud::DocsClient docs(page, "k1");
  docs.openDocument();
  // A fingerprint could never catch this: the paragraph is fresh prose
  // with the key embedded mid-sentence.
  const int status = docs.insertParagraph(
      0, "Deployment checklist for Friday: rotate certificates, set "
         "SK-LIVE-9a7xq2lm44 in the environment, and restart the workers.");
  EXPECT_EQ(status, 403);
  EXPECT_TRUE(docsBackend_.paragraphsOf("k1").empty());
  // The paragraph is highlighted and the hit is named in the warning.
  EXPECT_EQ(docs.paragraphNode(0)->attribute(BrowserFlowPlugin::kStateAttr),
            BrowserFlowPlugin::kViolation);
  ASSERT_FALSE(plugin_.warnings().empty());
  const auto& d = plugin_.warnings().front().decision;
  ASSERT_FALSE(d.secretHits.empty());
  EXPECT_EQ(d.secretHits[0], "prod-api-key");
}

TEST_F(SecretGuardPluginTest, SecretAllowedIntoPrivilegedService) {
  browser::Page& page = browser_.openTab("https://vault.corp/d/store");
  cloud::DocsClient vault(page, "store");
  vault.openDocument();
  const int status =
      vault.insertParagraph(0, "rotating key sk-live-9A7xQ2Lm44 tonight");
  EXPECT_EQ(status, 200) << "Lp(vault) includes api-key";
}

TEST_F(SecretGuardPluginTest, DeletingSecretClearsViolationOnNextEdit) {
  browser::Page& page = browser_.openTab("https://docs.google.com/d/k2");
  cloud::DocsClient docs(page, "k2");
  docs.openDocument();
  docs.insertParagraph(0, "note with sk-live-9A7xQ2Lm44 inside it somewhere");
  ASSERT_EQ(docs.paragraphNode(0)->attribute(BrowserFlowPlugin::kStateAttr),
            BrowserFlowPlugin::kViolation);
  // The user removes the key: the implicit tag refreshes away.
  EXPECT_EQ(docs.setParagraph(0, "note with the key removed from it"), 200);
  EXPECT_EQ(docs.paragraphNode(0)->attribute(BrowserFlowPlugin::kStateAttr),
            BrowserFlowPlugin::kClean);
}

TEST_F(SecretGuardPluginTest, FreshProseUnaffected) {
  browser::Page& page = browser_.openTab("https://docs.google.com/d/k3");
  cloud::DocsClient docs(page, "k3");
  docs.openDocument();
  EXPECT_EQ(docs.insertParagraph(0, gen_.paragraph(6, 9)), 200);
}

}  // namespace
}  // namespace bf::core
