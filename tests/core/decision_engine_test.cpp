// Tests for the DecisionEngine: the lookup + enforcement pipeline, the
// async worker, and response-time instrumentation.
#include <gtest/gtest.h>

#include "core/decision_engine.h"
#include "corpus/text_generator.h"
#include "util/clock.h"

namespace bf::core {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : rng_(7),
        gen_(&rng_),
        tracker_(flow::TrackerConfig{}, &clock_),
        policy_(&clock_),
        engine_(config_, &tracker_, &policy_) {
    policy_.services().upsert({"itool", "Interview Tool",
                               tdm::TagSet{"ti"}, tdm::TagSet{"ti"}});
    policy_.services().upsert(
        {"wiki", "Wiki", tdm::TagSet{"tw"}, tdm::TagSet{"tw"}});
    policy_.services().upsert(
        {"gdocs", "Google Docs", tdm::TagSet{}, tdm::TagSet{}});
  }

  /// Seeds a sensitive paragraph into the Interview Tool.
  std::string seedSensitive() {
    const std::string text = gen_.paragraph(6, 9);
    tracker_.observeSegment(flow::SegmentKind::kParagraph, "itool/eval#p0",
                            "itool/eval", "itool", text);
    policy_.onSegmentObserved("itool/eval#p0", "itool");
    return text;
  }

  DecisionRequest requestFor(const std::string& text,
                             const std::string& service = "gdocs") {
    DecisionRequest req;
    req.segmentName = service + "/target#p0";
    req.documentName = service + "/target";
    req.serviceId = service;
    req.text = text;
    return req;
  }

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  BrowserFlowConfig config_;
  flow::FlowTracker tracker_;
  tdm::TdmPolicy policy_;
  DecisionEngine engine_;
};

TEST_F(EngineTest, CleanTextIsAllowed) {
  seedSensitive();
  const Decision d = engine_.decide(requestFor(gen_.paragraph(6, 9)));
  EXPECT_EQ(d.action, Decision::Action::kAllow);
  EXPECT_FALSE(d.violation());
  EXPECT_TRUE(d.hits.empty());
  EXPECT_TRUE(d.violatingTags.empty());
}

TEST_F(EngineTest, CopiedSensitiveTextWarns) {
  const std::string secret = seedSensitive();
  const Decision d = engine_.decide(requestFor(secret));
  EXPECT_EQ(d.action, Decision::Action::kWarn);  // default advisory mode
  ASSERT_EQ(d.hits.size(), 1u);
  EXPECT_EQ(d.hits[0].sourceName, "itool/eval#p0");
  ASSERT_EQ(d.violatingTags.size(), 1u);
  EXPECT_EQ(d.violatingTags[0], "ti");
}

TEST_F(EngineTest, DisclosurePropagatesImplicitTags) {
  const std::string secret = seedSensitive();
  engine_.decide(requestFor(secret));
  const tdm::Label* label = policy_.labelOf("gdocs/target#p0");
  ASSERT_NE(label, nullptr);
  EXPECT_TRUE(label->implicitTags().contains("ti"));
}

TEST_F(EngineTest, CopyToPrivilegedServiceIsAllowed) {
  // itool -> itool flows are fine: {ti} ⊆ Lp(itool).
  const std::string secret = seedSensitive();
  DecisionRequest req = requestFor(secret, "itool");
  req.documentName = "itool/other";  // different document, same service
  req.segmentName = "itool/other#p0";
  const Decision d = engine_.decide(req);
  EXPECT_EQ(d.action, Decision::Action::kAllow);
  EXPECT_FALSE(d.hits.empty()) << "flow is detected, just permitted";
}

TEST_F(EngineTest, BlockModeBlocks) {
  config_.mode = EnforcementMode::kBlock;
  DecisionEngine engine(config_, &tracker_, &policy_);
  const std::string secret = seedSensitive();
  EXPECT_EQ(engine.decide(requestFor(secret)).action,
            Decision::Action::kBlock);
}

TEST_F(EngineTest, EncryptModeEncrypts) {
  config_.mode = EnforcementMode::kEncrypt;
  DecisionEngine engine(config_, &tracker_, &policy_);
  const std::string secret = seedSensitive();
  EXPECT_EQ(engine.decide(requestFor(secret)).action,
            Decision::Action::kEncrypt);
}

TEST_F(EngineTest, SuppressionLiftsViolationOnReDecision) {
  const std::string secret = seedSensitive();
  ASSERT_TRUE(engine_.decide(requestFor(secret)).violation());
  ASSERT_TRUE(policy_
                  .suppressTag("alice", "gdocs/target#p0", "ti",
                               "approved by legal")
                  .ok());
  EXPECT_FALSE(engine_.decide(requestFor(secret)).violation());
}

TEST_F(EngineTest, ResponseTimesRecorded) {
  seedSensitive();
  engine_.resetLatencyStats();
  engine_.decide(requestFor(gen_.paragraph(6, 9)));
  engine_.decide(requestFor(gen_.paragraph(6, 9)));
  const auto latency = engine_.latencySummary();
  ASSERT_EQ(latency.count, 2u);
  EXPECT_GE(latency.minMs, 0.0);
  EXPECT_LT(latency.maxMs, 1000.0);
  EXPECT_LE(latency.minMs, latency.maxMs);
  EXPECT_GE(latency.meanMs, latency.minMs);
  EXPECT_LE(latency.meanMs, latency.maxMs);
}

TEST_F(EngineTest, AsyncDecisionMatchesSync) {
  const std::string secret = seedSensitive();
  auto future = engine_.decideAsync(requestFor(secret));
  const Decision d = future.get();
  EXPECT_TRUE(d.violation());
  ASSERT_EQ(d.hits.size(), 1u);
  EXPECT_EQ(d.hits[0].sourceName, "itool/eval#p0");
}

TEST_F(EngineTest, AsyncQueueProcessesInOrderAndDrains) {
  seedSensitive();
  std::vector<std::future<Decision>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(engine_.decideAsync(requestFor(gen_.paragraph(4, 6))));
  }
  engine_.drain();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().action, Decision::Action::kAllow);
  }
}

TEST_F(EngineTest, PerKeystrokeDecisionsHitTrackerCache) {
  // The per-keystroke path: same segment, text growing one char at a time.
  seedSensitive();
  const std::string base = gen_.paragraph(8, 8);
  DecisionRequest req = requestFor(base);
  engine_.decide(req);
  tracker_.resetStats();
  for (char c : std::string(" extra typed text here")) {
    req.text += c;
    engine_.decide(req);
  }
  EXPECT_GT(tracker_.stats().cacheHits, 5u);
}

TEST_F(EngineTest, LookupLabelForTextSynthesisesImplicitTags) {
  const std::string secret = seedSensitive();
  const tdm::Label label = engine_.lookupLabelForText(secret);
  EXPECT_TRUE(label.implicitTags().contains("ti"));
  const tdm::Label clean = engine_.lookupLabelForText(gen_.paragraph(6, 9));
  EXPECT_TRUE(clean.effectiveTags().empty());
}

TEST_F(EngineTest, LookupLabelExcludesOwnDocument) {
  const std::string secret = seedSensitive();
  const tdm::Label label = engine_.lookupLabelForText(secret, "itool/eval");
  EXPECT_TRUE(label.effectiveTags().empty());
}

}  // namespace
}  // namespace bf::core
