// DecisionEngine + DurabilityManager wiring: the engine drives periodic
// checkpointing from the decision path, and durability failures never
// degrade decisions (DESIGN.md §11).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "core/decision_engine.h"
#include "corpus/text_generator.h"
#include "flow/snapshot.h"
#include "flow/wal.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "util/clock.h"

namespace bf::core {
namespace {

class EngineDurabilityTest : public ::testing::Test {
 protected:
  EngineDurabilityTest()
      : rng_(11),
        gen_(&rng_),
        tracker_(flow::TrackerConfig{}, &clock_),
        policy_(&clock_),
        engine_(config_, &tracker_, &policy_) {
    dir_ = "/tmp/bf_engine_durability_" +
           std::to_string(static_cast<long>(::getpid())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    (void)std::system(("rm -rf '" + dir_ + "'").c_str());
    policy_.services().upsert({"itool", "Interview Tool",
                               tdm::TagSet{"ti"}, tdm::TagSet{"ti"}});
    policy_.services().upsert(
        {"gdocs", "Google Docs", tdm::TagSet{}, tdm::TagSet{}});
  }

  ~EngineDurabilityTest() override {
    (void)std::system(("rm -rf '" + dir_ + "'").c_str());
  }

  flow::DurabilityConfig configFor(std::uint64_t checkpointEvery) {
    flow::DurabilityConfig cfg;
    cfg.directory = dir_;
    cfg.checkpointEveryRecords = checkpointEvery;
    return cfg;
  }

  DecisionRequest requestFor(const std::string& name,
                             const std::string& text) {
    DecisionRequest req;
    req.segmentName = "gdocs/" + name + "#p0";
    req.documentName = "gdocs/" + name;
    req.serviceId = "gdocs";
    req.text = text;
    return req;
  }

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  BrowserFlowConfig config_;
  flow::FlowTracker tracker_;
  tdm::TdmPolicy policy_;
  DecisionEngine engine_;
  std::string dir_;
};

TEST_F(EngineDurabilityTest, HealthyWithoutAManagerAttached) {
  EXPECT_TRUE(engine_.durabilityHealthy());
}

TEST_F(EngineDurabilityTest, DecisionPathDrivesPeriodicCheckpoints) {
  flow::DurabilityManager mgr(configFor(/*checkpointEvery=*/3));
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  engine_.setDurability(&mgr);
  EXPECT_TRUE(engine_.durabilityHealthy());

  const auto before = obs::registry().snapshot();
  // Each decision observes one new segment => one WAL record; at three
  // records the post-decision checkpointIfDue must roll a checkpoint
  // while still holding the engine's state mutex.
  for (int i = 0; i < 7; ++i) {
    const Decision d = engine_.decide(
        requestFor("doc" + std::to_string(i), gen_.paragraph(4, 6)));
    EXPECT_FALSE(d.degraded);
  }
  const auto delta = obs::registry().snapshot().diff(before);
  EXPECT_GE(delta.counterValue("bf_checkpoints_total"), 2u);
  EXPECT_TRUE(engine_.durabilityHealthy());
}

TEST_F(EngineDurabilityTest, StateSurvivesCrashAndAnswersSameDecisions) {
  const std::string secret = gen_.paragraph(6, 9);
  {
    flow::DurabilityManager mgr(configFor(1u << 30));
    ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
    engine_.setDurability(&mgr);
    tracker_.observeSegment(flow::SegmentKind::kParagraph, "itool/eval#p0",
                            "itool/eval", "itool", secret);
    policy_.onSegmentObserved("itool/eval#p0", "itool");
    const Decision live = engine_.decide(requestFor("leak", secret));
    EXPECT_EQ(live.action, Decision::Action::kWarn);
    engine_.setDurability(nullptr);
    tracker_.attachWal(nullptr);
  }  // "crash": the manager (and its WAL fd) is gone

  // A new process: fresh tracker, policy, engine — recovered from disk.
  util::LogicalClock clock2;
  flow::FlowTracker restored(flow::TrackerConfig{}, &clock2);
  flow::DurabilityManager mgr2(configFor(1u << 30));
  auto stats = mgr2.recoverAndAttach(restored);
  ASSERT_TRUE(stats.ok()) << stats.errorMessage();
  clock2.advanceTo(stats.value().maxTimestamp + 1);

  tdm::TdmPolicy policy2(&clock2);
  policy2.services().upsert({"itool", "Interview Tool",
                             tdm::TagSet{"ti"}, tdm::TagSet{"ti"}});
  policy2.services().upsert(
      {"gdocs", "Google Docs", tdm::TagSet{}, tdm::TagSet{}});
  policy2.onSegmentObserved("itool/eval#p0", "itool");
  DecisionEngine engine2(config_, &restored, &policy2);
  engine2.setDurability(&mgr2);

  const Decision d = engine2.decide(requestFor("leak2", secret));
  EXPECT_EQ(d.action, Decision::Action::kWarn);
  ASSERT_FALSE(d.hits.empty());
  EXPECT_EQ(d.hits[0].sourceName, "itool/eval#p0");
}

TEST_F(EngineDurabilityTest, WalFailureTurnsUnhealthyButDecisionsContinue) {
  flow::DurabilityManager mgr(configFor(1u << 30));
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  engine_.setDurability(&mgr);
  ASSERT_TRUE(engine_.durabilityHealthy());

  mgr.wal().failNextAppends(1);
  const Decision d =
      engine_.decide(requestFor("doc", gen_.paragraph(4, 6)));
  EXPECT_FALSE(d.degraded);  // durability loss never degrades decisions
  EXPECT_EQ(d.action, Decision::Action::kAllow);
  EXPECT_FALSE(engine_.durabilityHealthy());

  // Detaching restores the no-manager default.
  engine_.setDurability(nullptr);
  EXPECT_TRUE(engine_.durabilityHealthy());
  tracker_.attachWal(nullptr);
}

TEST_F(EngineDurabilityTest, CheckpointDurationHistogramStaysBounded) {
  flow::DurabilityManager mgr(configFor(/*checkpointEvery=*/3));
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  engine_.setDurability(&mgr);
  const auto before = obs::registry().snapshot();
  for (int i = 0; i < 10; ++i) {
    (void)engine_.decide(
        requestFor("hist" + std::to_string(i), gen_.paragraph(4, 6)));
  }
  const auto delta = obs::registry().snapshot().diff(before);
  const obs::MetricValue* m = delta.find("bf_checkpoint_duration_us");
  ASSERT_NE(m, nullptr);
  EXPECT_GE(m->histogram.count, 3u);
  // The checkpoint runs on the decision path under stateMutex_: its cost
  // for this small state must stay bounded (worst observation < 250 ms).
  EXPECT_LT(m->histogram.max, 250000.0);
  engine_.setDurability(nullptr);
  tracker_.attachWal(nullptr);
}

TEST_F(EngineDurabilityTest, DurabilityDegradedFlagAndAuditOnHealthFlips) {
  flow::DurabilityConfig cfg = configFor(1u << 30);
  cfg.repairBaseDelayMs = 0.0;  // repair on the next decision
  cfg.repairMaxDelayMs = 0.0;
  flow::DurabilityManager mgr(cfg);
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  engine_.setDurability(&mgr);

  mgr.wal().failNextAppends(1);
  const Decision hit = engine_.decide(requestFor("d1", gen_.paragraph(4, 6)));
  EXPECT_FALSE(hit.degraded);  // the pipeline ran fully
  EXPECT_TRUE(hit.durabilityDegraded);
  EXPECT_FALSE(engine_.durabilityHealthy());

  // The next decision's maintenance pass repairs (backoff 0) and flips
  // health back; the decision itself reports the restored state.
  const Decision healed =
      engine_.decide(requestFor("d2", gen_.paragraph(4, 6)));
  EXPECT_FALSE(healed.durabilityDegraded);
  EXPECT_TRUE(engine_.durabilityHealthy());

  // Exactly one audit record per flip, not one per degraded decision.
  const auto degradedAudits =
      policy_.audit().byKind(tdm::AuditRecord::Kind::kDecisionDegraded);
  ASSERT_EQ(degradedAudits.size(), 2u);
  EXPECT_EQ(degradedAudits[0].justification, kDurabilityDegraded);
  EXPECT_EQ(degradedAudits[1].justification, kDurabilityRestored);
  engine_.setDurability(nullptr);
  tracker_.attachWal(nullptr);
}

TEST_F(EngineDurabilityTest, FlightRecorderRetainsDurabilityDegradedWindow) {
  obs::setTraceSampleEvery(1u << 30);  // head sampling off: keep rule only
  flow::DurabilityConfig cfg = configFor(1u << 30);
  cfg.repairBaseDelayMs = 3600000.0;  // stay degraded for the whole test
  cfg.repairMaxDelayMs = 3600000.0;
  flow::DurabilityManager mgr(cfg);
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  engine_.setDurability(&mgr);

  const Decision ok = engine_.decide(requestFor("ok", gen_.paragraph(4, 6)));
  EXPECT_FALSE(
      obs::FlightRecorder::instance().explain(ok.decisionId).has_value());

  mgr.wal().failNextAppends(1);
  const Decision bad = engine_.decide(requestFor("bad", gen_.paragraph(4, 6)));
  ASSERT_TRUE(bad.durabilityDegraded);
  const auto record = obs::FlightRecorder::instance().explain(bad.decisionId);
  ASSERT_TRUE(record.has_value())
      << "durability-degraded decisions are always-keep";
  EXPECT_TRUE(record->durabilityDegraded);
  EXPECT_FALSE(record->degraded);
  EXPECT_EQ(record->action, "allow");

  obs::setTraceSampleEvery(16);  // restore the default for other tests
  engine_.setDurability(nullptr);
  tracker_.attachWal(nullptr);
}

}  // namespace
}  // namespace bf::core
