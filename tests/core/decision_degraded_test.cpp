// Tests for the DecisionEngine's graceful-degradation features: bounded
// queue with load shedding, per-decision deadlines, the circuit breaker
// around the disclosure lookup, and the audit trail every degraded decision
// leaves behind.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/decision_engine.h"
#include "corpus/text_generator.h"
#include "obs/flight_recorder.h"
#include "obs/stage.h"
#include "obs/trace_context.h"
#include "tdm/audit.h"
#include "util/clock.h"

namespace bf::core {
namespace {

class DegradedTest : public ::testing::Test {
 protected:
  DegradedTest()
      : rng_(7),
        gen_(&rng_),
        tracker_(flow::TrackerConfig{}, &clock_),
        policy_(&clock_) {
    policy_.services().upsert(
        {"gdocs", "Google Docs", tdm::TagSet{}, tdm::TagSet{}});
    // Sample every trace so the degraded-path assertions below can demand
    // full stage breakdowns, not just the always-keep skeleton.
    savedSampleEvery_ = obs::traceSampleEvery();
    obs::setTraceSampleEvery(1);
  }

  ~DegradedTest() override { obs::setTraceSampleEvery(savedSampleEvery_); }

  DecisionRequest requestFor(const std::string& text, int index = 0) {
    DecisionRequest req;
    req.segmentName = "gdocs/target#p" + std::to_string(index);
    req.documentName = "gdocs/target";
    req.serviceId = "gdocs";
    req.text = text;
    return req;
  }

  std::size_t degradedAuditCount() const {
    return policy_.audit()
        .byKind(tdm::AuditRecord::Kind::kDecisionDegraded)
        .size();
  }

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  BrowserFlowConfig config_;
  flow::FlowTracker tracker_;
  tdm::TdmPolicy policy_;
  std::uint32_t savedSampleEvery_ = 16;
};

TEST_F(DegradedTest, QueueOverflowShedsWithAuditRecords) {
  config_.resilience.maxQueueDepth = 1;
  DecisionEngine engine(config_, &tracker_, &policy_);

  std::vector<std::future<Decision>> futures;
  {
    // Stall the worker: it can pop at most one item and then blocks on the
    // state mutex, so the queue (capacity 1) fills and later submissions
    // are shed synchronously.
    auto stall = engine.lockState();
    for (int i = 0; i < 5; ++i) {
      futures.push_back(engine.decideAsync(requestFor(gen_.paragraph(3, 5), i)));
    }
  }
  engine.drain();

  int shed = 0;
  for (auto& f : futures) {
    const Decision d = f.get();
    if (d.degraded) {
      ++shed;
      EXPECT_NE(d.degradedReason.find("shed"), std::string::npos);
      EXPECT_EQ(d.action, Decision::Action::kAllow) << "default is fail-open";
    }
  }
  // 5 submissions against capacity 1: one may be in the worker's hands and
  // one queued, everything else is shed.
  EXPECT_GE(shed, 3);
  EXPECT_LE(shed, 4);
  EXPECT_EQ(degradedAuditCount(), static_cast<std::size_t>(shed))
      << "every degraded decision leaves an audit record";
}

TEST_F(DegradedTest, FailClosedShedsAsBlock) {
  config_.resilience.maxQueueDepth = 1;
  config_.resilience.degradedMode = DegradedMode::kFailClosed;
  DecisionEngine engine(config_, &tracker_, &policy_);

  std::vector<std::future<Decision>> futures;
  {
    auto stall = engine.lockState();
    for (int i = 0; i < 5; ++i) {
      futures.push_back(engine.decideAsync(requestFor(gen_.paragraph(3, 5), i)));
    }
  }
  engine.drain();

  bool sawDegraded = false;
  for (auto& f : futures) {
    const Decision d = f.get();
    if (d.degraded) {
      sawDegraded = true;
      EXPECT_EQ(d.action, Decision::Action::kBlock);
    }
  }
  EXPECT_TRUE(sawDegraded);
}

TEST_F(DegradedTest, QueuedPastDeadlineAnsweredDegraded) {
  config_.resilience.decisionDeadlineMs = 5.0;
  DecisionEngine engine(config_, &tracker_, &policy_);

  std::future<Decision> first, second;
  {
    // First request: popped immediately, then the worker blocks on the
    // state mutex while the second request ages in the queue.
    auto stall = engine.lockState();
    first = engine.decideAsync(requestFor(gen_.paragraph(3, 5), 0));
    second = engine.decideAsync(requestFor(gen_.paragraph(3, 5), 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  engine.drain();

  // The second request waited >= 50ms behind the stalled worker — far past
  // its 5ms budget — so it must degrade whatever happened to the first.
  const Decision d = second.get();
  EXPECT_TRUE(d.degraded);
  EXPECT_NE(d.degradedReason.find("deadline"), std::string::npos);
  EXPECT_EQ(d.action, Decision::Action::kAllow);
  EXPECT_GE(degradedAuditCount(), 1u);
}

TEST_F(DegradedTest, BreakerTripsSkipsAndProbes) {
  // A budget of ~0 makes every disclosure lookup count as slow.
  config_.resilience.breakerLatencyBudgetMs = 1e-12;
  config_.resilience.breakerTripThreshold = 3;
  config_.resilience.breakerOpenDecisions = 2;
  DecisionEngine engine(config_, &tracker_, &policy_);

  // Three slow lookups trip the breaker.
  for (int i = 0; i < 3; ++i) {
    const Decision d = engine.decide(requestFor(gen_.paragraph(3, 5), i));
    EXPECT_FALSE(d.degraded) << "pipeline still runs while counting";
  }
  EXPECT_TRUE(engine.breakerOpen());

  // While open, decisions skip the lookup and answer degraded.
  for (int i = 3; i < 5; ++i) {
    const Decision d = engine.decide(requestFor(gen_.paragraph(3, 5), i));
    EXPECT_TRUE(d.degraded);
    EXPECT_NE(d.degradedReason.find("breaker"), std::string::npos);
  }

  // Skip allowance spent: the next decision is a half-open probe that runs
  // the real pipeline; the lookup is still "slow", so the breaker re-arms.
  const Decision probe = engine.decide(requestFor(gen_.paragraph(3, 5), 5));
  EXPECT_FALSE(probe.degraded);
  EXPECT_TRUE(engine.breakerOpen());
  EXPECT_TRUE(engine.decide(requestFor(gen_.paragraph(3, 5), 6)).degraded);

  EXPECT_EQ(degradedAuditCount(), 3u);
}

TEST_F(DegradedTest, HealthyProbeClosesBreaker) {
  config_.resilience.breakerLatencyBudgetMs = 1e-12;
  config_.resilience.breakerTripThreshold = 1;
  config_.resilience.breakerOpenDecisions = 1;
  DecisionEngine engine(config_, &tracker_, &policy_);

  engine.decide(requestFor(gen_.paragraph(3, 5), 0));  // trips
  ASSERT_TRUE(engine.breakerOpen());
  EXPECT_TRUE(engine.decide(requestFor(gen_.paragraph(3, 5), 1)).degraded);

  // Raise the latency budget so the half-open probe finds a healthy lookup.
  ResilienceConfig relaxed = config_.resilience;
  relaxed.breakerLatencyBudgetMs = 1e9;
  engine.setResilience(relaxed);
  const Decision probe = engine.decide(requestFor(gen_.paragraph(3, 5), 2));
  EXPECT_FALSE(probe.degraded);
  EXPECT_FALSE(engine.breakerOpen());
  EXPECT_FALSE(engine.decide(requestFor(gen_.paragraph(3, 5), 3)).degraded);
}

TEST_F(DegradedTest, BreakerFailClosedBlocksWhileOpen) {
  config_.resilience.breakerLatencyBudgetMs = 1e-12;
  config_.resilience.breakerTripThreshold = 1;
  config_.resilience.breakerOpenDecisions = 5;
  config_.resilience.degradedMode = DegradedMode::kFailClosed;
  DecisionEngine engine(config_, &tracker_, &policy_);

  engine.decide(requestFor(gen_.paragraph(3, 5), 0));
  ASSERT_TRUE(engine.breakerOpen());
  const Decision d = engine.decide(requestFor(gen_.paragraph(3, 5), 1));
  EXPECT_TRUE(d.degraded);
  EXPECT_EQ(d.action, Decision::Action::kBlock);
  EXPECT_TRUE(d.violation());
}

TEST_F(DegradedTest, DegradedMetricTracksAuditLog) {
  config_.resilience.breakerLatencyBudgetMs = 1e-12;
  config_.resilience.breakerTripThreshold = 1;
  config_.resilience.breakerOpenDecisions = 3;
  DecisionEngine engine(config_, &tracker_, &policy_);
  const std::uint64_t before =
      obs::registry().counter("bf_decision_degraded_total").value();

  engine.decide(requestFor(gen_.paragraph(3, 5), 0));  // trips
  for (int i = 1; i <= 3; ++i) {
    engine.decide(requestFor(gen_.paragraph(3, 5), i));  // degraded x3
  }
  const std::uint64_t after =
      obs::registry().counter("bf_decision_degraded_total").value();
  EXPECT_EQ(after - before, 3u);
  EXPECT_EQ(degradedAuditCount(), 3u);
}

TEST_F(DegradedTest, ShedDecisionsResolveInFlightRecorder) {
  config_.resilience.maxQueueDepth = 1;
  DecisionEngine engine(config_, &tracker_, &policy_);

  std::vector<std::future<Decision>> futures;
  {
    auto stall = engine.lockState();
    for (int i = 0; i < 5; ++i) {
      futures.push_back(engine.decideAsync(requestFor(gen_.paragraph(3, 5), i)));
    }
  }
  engine.drain();

  int shed = 0;
  for (auto& f : futures) {
    const Decision d = f.get();
    if (!d.degraded) continue;
    ++shed;
    // Every degraded decision must carry provenance ids...
    EXPECT_NE(d.decisionId, 0u);
    EXPECT_NE(d.traceId, 0u);
    // ...that resolve to a complete flight-recorder record.
    const auto record = obs::FlightRecorder::instance().explain(d.decisionId);
    ASSERT_TRUE(record.has_value()) << "shed decision " << d.decisionId
                                    << " missing from the flight recorder";
    EXPECT_TRUE(record->degraded);
    EXPECT_EQ(record->degradedReason, d.degradedReason);
    EXPECT_EQ(record->traceId, d.traceId);
    EXPECT_FALSE(record->ingress.empty());
  }
  EXPECT_GE(shed, 3);
}

TEST_F(DegradedTest, DeadlineDecisionRecordsQueueWaitStage) {
  config_.resilience.decisionDeadlineMs = 5.0;
  DecisionEngine engine(config_, &tracker_, &policy_);

  std::future<Decision> first, second;
  {
    auto stall = engine.lockState();
    first = engine.decideAsync(requestFor(gen_.paragraph(3, 5), 0));
    second = engine.decideAsync(requestFor(gen_.paragraph(3, 5), 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  engine.drain();
  (void)first.get();

  const Decision d = second.get();
  ASSERT_TRUE(d.degraded);
  const auto record = obs::FlightRecorder::instance().explain(d.decisionId);
  ASSERT_TRUE(record.has_value());
  EXPECT_TRUE(record->degraded);
  EXPECT_NE(record->degradedReason.find("deadline"), std::string::npos);
  // The record must attribute where the time went: this decision aged in
  // the queue, so queue-wait dominates its breakdown.
  EXPECT_GT(record->stages.nanos[static_cast<std::size_t>(
                obs::Stage::kQueueWait)],
            0u);
  EXPECT_EQ(obs::FlightRecorder::instance().explainByTrace(d.traceId)
                ->decisionId,
            d.decisionId);
}

TEST_F(DegradedTest, BreakerDecisionsResolveInFlightRecorder) {
  config_.resilience.breakerLatencyBudgetMs = 1e-12;
  config_.resilience.breakerTripThreshold = 1;
  config_.resilience.breakerOpenDecisions = 2;
  DecisionEngine engine(config_, &tracker_, &policy_);

  engine.decide(requestFor(gen_.paragraph(3, 5), 0));  // trips
  ASSERT_TRUE(engine.breakerOpen());
  for (int i = 1; i <= 2; ++i) {
    const Decision d = engine.decide(requestFor(gen_.paragraph(3, 5), i));
    ASSERT_TRUE(d.degraded);
    const auto record = obs::FlightRecorder::instance().explain(d.decisionId);
    ASSERT_TRUE(record.has_value());
    EXPECT_TRUE(record->degraded);
    EXPECT_NE(record->degradedReason.find("breaker"), std::string::npos);
    EXPECT_EQ(record->traceId, d.traceId);
    EXPECT_EQ(record->serviceId, "gdocs");
  }
}

}  // namespace
}  // namespace bf::core
