// Tests for BrowserFlowPlugin: interception through real browser/cloud
// machinery — mutation observers, form listeners, the XHR prototype patch,
// highlights and enforcement modes.
#include <gtest/gtest.h>

#include "cloud/docs_backend.h"
#include "cloud/docs_client.h"
#include "cloud/form_backend.h"
#include "cloud/network.h"
#include "cloud/wiki_client.h"
#include "core/plugin.h"
#include "corpus/text_generator.h"
#include "crypto/sealer.h"

namespace bf::core {
namespace {

class PluginTest : public ::testing::Test {
 protected:
  explicit PluginTest(BrowserFlowConfig config = BrowserFlowConfig{})
      : rng_(21),
        gen_(&rng_),
        network_(&rng_),
        plugin_(config, &clock_),
        browser_(&network_) {
    network_.registerService("https://docs.google.com", &docsBackend_);
    network_.registerService("https://wiki.corp", &wikiBackend_);
    network_.registerService("https://itool.corp", &itoolBackend_);

    plugin_.policy().services().upsert({"https://itool.corp",
                                        "Interview Tool", tdm::TagSet{"ti"},
                                        tdm::TagSet{"ti"}});
    plugin_.policy().services().upsert({"https://wiki.corp", "Internal Wiki",
                                        tdm::TagSet{"tw"},
                                        tdm::TagSet{"tw"}});
    // Google Docs is external: unregistered, so Lp = Lc = {}.
    browser_.addExtension(&plugin_);
  }

  static BrowserFlowConfig configWithMode(EnforcementMode mode) {
    BrowserFlowConfig c;
    c.mode = mode;
    return c;
  }

  /// Seeds a sensitive Interview Tool paragraph the tests leak.
  std::string seedInterviewData() {
    const std::string text = gen_.paragraph(6, 9);
    plugin_.observeServiceDocument("https://itool.corp",
                                   "https://itool.corp/eval/42", text);
    return text;
  }

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  cloud::SimNetwork network_;
  cloud::DocsBackend docsBackend_;
  cloud::FormBackend wikiBackend_;
  cloud::FormBackend itoolBackend_;
  BrowserFlowPlugin plugin_;
  browser::Browser browser_;
};

TEST_F(PluginTest, ObserveServiceDocumentRegistersSegmentsAndLabels) {
  const std::string text = gen_.paragraph(5, 7) + "\n\n" + gen_.paragraph(5, 7);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/eval/1", text);
  const auto* seg = plugin_.tracker().segmentByName(
      "https://itool.corp/eval/1#p0");
  ASSERT_NE(seg, nullptr);
  const tdm::Label* label =
      plugin_.policy().labelOf("https://itool.corp/eval/1#p0");
  ASSERT_NE(label, nullptr);
  EXPECT_TRUE(label->explicitTags().contains("ti"));
}

TEST_F(PluginTest, DocsEditingHighlightsLeakedParagraph) {
  const std::string secret = seedInterviewData();
  browser::Page& page = browser_.openTab("https://docs.google.com/d/doc1");
  cloud::DocsClient docs(page, "doc1");
  docs.openDocument();

  // Pasting the secret into Google Docs: paragraph marked as violating.
  docs.insertParagraph(0, secret);
  browser::Node* para = docs.paragraphNode(0);
  ASSERT_NE(para, nullptr);
  EXPECT_EQ(para->attribute(BrowserFlowPlugin::kStateAttr),
            BrowserFlowPlugin::kViolation);
  EXPECT_NE(para->attribute("style").find("background"), std::string::npos);
  EXPECT_FALSE(plugin_.warnings().empty());

  // Fresh text in another paragraph stays clean.
  docs.insertParagraph(1, gen_.paragraph(6, 9));
  EXPECT_EQ(docs.paragraphNode(1)->attribute(BrowserFlowPlugin::kStateAttr),
            BrowserFlowPlugin::kClean);
}

TEST_F(PluginTest, RewritingParagraphClearsHighlight) {
  const std::string secret = seedInterviewData();
  browser::Page& page = browser_.openTab("https://docs.google.com/d/doc2");
  cloud::DocsClient docs(page, "doc2");
  docs.openDocument();
  docs.insertParagraph(0, secret);
  ASSERT_EQ(docs.paragraphNode(0)->attribute(BrowserFlowPlugin::kStateAttr),
            BrowserFlowPlugin::kViolation);
  // Rewrite it from scratch: no more resemblance, no more violation.
  docs.setParagraph(0, gen_.paragraph(7, 9));
  EXPECT_EQ(docs.paragraphNode(0)->attribute(BrowserFlowPlugin::kStateAttr),
            BrowserFlowPlugin::kClean);
}

TEST_F(PluginTest, WarnModeLetsUploadThrough) {
  const std::string secret = seedInterviewData();
  browser::Page& page = browser_.openTab("https://docs.google.com/d/doc3");
  cloud::DocsClient docs(page, "doc3");
  docs.openDocument();
  EXPECT_EQ(docs.insertParagraph(0, secret), 200);
  // Advisory mode: the backend received the plaintext.
  EXPECT_EQ(docsBackend_.paragraphsOf("doc3").size(), 1u);
  EXPECT_FALSE(plugin_.warnings().empty());
}

TEST_F(PluginTest, SegmentNameAssignedToTrackedParagraph) {
  seedInterviewData();
  browser::Page& page = browser_.openTab("https://docs.google.com/d/doc4");
  cloud::DocsClient docs(page, "doc4");
  docs.openDocument();
  docs.insertParagraph(0, gen_.paragraph(5, 7));
  const std::string name = plugin_.segmentNameOf(docs.paragraphNode(0));
  EXPECT_FALSE(name.empty());
  EXPECT_NE(plugin_.tracker().segmentByName(name), nullptr);
}

TEST_F(PluginTest, DeletedParagraphForgotten) {
  seedInterviewData();
  browser::Page& page = browser_.openTab("https://docs.google.com/d/doc5");
  cloud::DocsClient docs(page, "doc5");
  docs.openDocument();
  docs.insertParagraph(0, gen_.paragraph(5, 7));
  const std::string name = plugin_.segmentNameOf(docs.paragraphNode(0));
  ASSERT_NE(plugin_.tracker().segmentByName(name), nullptr);
  docs.deleteParagraph(0);
  EXPECT_EQ(plugin_.tracker().segmentByName(name), nullptr);
}

TEST_F(PluginTest, WikiFormSubmissionCleanTextPasses) {
  browser::Page& page = browser_.openTab("https://wiki.corp/edit/notes");
  cloud::WikiClient wiki(page, "notes");
  wiki.openEditor();
  wiki.setContent(gen_.paragraph(6, 9));
  EXPECT_EQ(wiki.save(), 200);
  EXPECT_EQ(wikiBackend_.postCount(), 1u);
}

TEST_F(PluginTest, WikiFormWarnsOnLeakButProceedsInWarnMode) {
  const std::string secret = seedInterviewData();
  browser::Page& page = browser_.openTab("https://wiki.corp/edit/notes");
  cloud::WikiClient wiki(page, "notes");
  wiki.openEditor();
  wiki.setContent(secret);
  EXPECT_EQ(wiki.save(), 200);  // advisory: proceeds
  EXPECT_FALSE(plugin_.warnings().empty());
  EXPECT_EQ(plugin_.warnings().back().serviceId, "https://wiki.corp");
}

TEST_F(PluginTest, ScanPageSeedsTrackerFromStaticHtml) {
  browser::Page& page = browser_.openTab("https://itool.corp/eval/7");
  page.loadHtml(R"(
    <div id="nav"><a href="/">Home</a></div>
    <div id="content">
      <p>The candidate demonstrated excellent distributed systems design
      skills, with deep knowledge of consensus protocols, and replication.</p>
      <p>We recommend proceeding to the next interview round, with focus on
      coding, communication, and architectural judgement.</p>
    </div>)");
  plugin_.scanPage(page);
  // Both paragraphs are now tracked as itool content.
  const auto hits = plugin_.tracker().checkText(
      "The candidate demonstrated excellent distributed systems design "
      "skills, with deep knowledge of consensus protocols, and replication.",
      "elsewhere");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].sourceService, "https://itool.corp");
}

TEST_F(PluginTest, SuppressTagDelegatesToPolicy) {
  const std::string secret = seedInterviewData();
  browser::Page& page = browser_.openTab("https://docs.google.com/d/doc6");
  cloud::DocsClient docs(page, "doc6");
  docs.openDocument();
  docs.insertParagraph(0, secret);
  const std::string name = plugin_.segmentNameOf(docs.paragraphNode(0));
  ASSERT_TRUE(
      plugin_.suppressTag("alice", name, "ti", "cleared with manager").ok());
  // Editing re-decides: now clean.
  docs.typeChar(0, '!');
  EXPECT_EQ(docs.paragraphNode(0)->attribute(BrowserFlowPlugin::kStateAttr),
            BrowserFlowPlugin::kClean);
  // Two records: the paragraph plus its containing document segment
  // (suppression extends to both granularities).
  EXPECT_EQ(plugin_.policy()
                .audit()
                .byKind(tdm::AuditRecord::Kind::kTagSuppressed)
                .size(),
            2u);
}

TEST_F(PluginTest, RuntimeModeSwitchWarnToBlock) {
  // Advisory rollout: start warning, flip to blocking without restart.
  const std::string secret = seedInterviewData();
  browser::Page& page = browser_.openTab("https://docs.google.com/d/mode");
  cloud::DocsClient docs(page, "mode");
  docs.openDocument();
  EXPECT_EQ(docs.insertParagraph(0, secret), 200);  // warn: flows through
  docs.deleteParagraph(0);

  plugin_.setEnforcementMode(EnforcementMode::kBlock);
  EXPECT_EQ(docs.insertParagraph(0, secret), 403);  // now blocked
  docs.deleteParagraph(0);

  plugin_.setEnforcementMode(EnforcementMode::kWarn);
  EXPECT_EQ(docs.insertParagraph(0, secret), 200);  // advisory again
}

// ---- Async mode ---------------------------------------------------------------

class AsyncModeTest : public PluginTest {
 protected:
  AsyncModeTest()
      : PluginTest([] {
          BrowserFlowConfig c;
          c.asyncParagraphChecks = true;
          return c;
        }()) {}
};

TEST_F(AsyncModeTest, HighlightsArriveAtNextIdlePoint) {
  const std::string secret = seedInterviewData();
  browser::Page& page = browser_.openTab("https://docs.google.com/d/async1");
  cloud::DocsClient docs(page, "async1");
  docs.openDocument();
  docs.insertParagraph(0, secret);
  docs.insertParagraph(1, gen_.paragraph(6, 9));
  // Decisions are in flight; the DOM is not yet annotated.
  plugin_.drainPendingDecisions();
  EXPECT_EQ(docs.paragraphNode(0)->attribute(BrowserFlowPlugin::kStateAttr),
            BrowserFlowPlugin::kViolation);
  EXPECT_EQ(docs.paragraphNode(1)->attribute(BrowserFlowPlugin::kStateAttr),
            BrowserFlowPlugin::kClean);
  EXPECT_FALSE(plugin_.warnings().empty());
}

TEST_F(AsyncModeTest, DeletedParagraphPendingDecisionIsDiscarded) {
  seedInterviewData();
  browser::Page& page = browser_.openTab("https://docs.google.com/d/async2");
  cloud::DocsClient docs(page, "async2");
  docs.openDocument();
  docs.insertParagraph(0, gen_.paragraph(6, 9));
  docs.deleteParagraph(0);  // decision for the node is still queued
  plugin_.drainPendingDecisions();  // must not crash or mis-apply
  EXPECT_EQ(docs.paragraphCount(), 0u);
}

TEST_F(AsyncModeTest, DrainIsIdempotent) {
  seedInterviewData();
  browser::Page& page = browser_.openTab("https://docs.google.com/d/async3");
  cloud::DocsClient docs(page, "async3");
  docs.openDocument();
  docs.insertParagraph(0, gen_.paragraph(6, 9));
  plugin_.drainPendingDecisions();
  plugin_.drainPendingDecisions();
  EXPECT_EQ(docs.paragraphNode(0)->attribute(BrowserFlowPlugin::kStateAttr),
            BrowserFlowPlugin::kClean);
}

// ---- Block mode ---------------------------------------------------------------

class BlockModeTest : public PluginTest {
 protected:
  BlockModeTest() : PluginTest(configWithMode(EnforcementMode::kBlock)) {}
};

TEST_F(BlockModeTest, XhrUploadBlocked) {
  const std::string secret = seedInterviewData();
  browser::Page& page = browser_.openTab("https://docs.google.com/d/doc7");
  cloud::DocsClient docs(page, "doc7");
  docs.openDocument();
  const int status = docs.insertParagraph(0, secret);
  EXPECT_EQ(status, 403);
  // The paragraph never reached the backend.
  EXPECT_TRUE(docsBackend_.paragraphsOf("doc7").empty());
  // And an audit record exists.
  EXPECT_EQ(plugin_.policy()
                .audit()
                .byKind(tdm::AuditRecord::Kind::kUploadBlocked)
                .size(),
            1u);
}

TEST_F(BlockModeTest, CleanUploadStillPasses) {
  seedInterviewData();
  browser::Page& page = browser_.openTab("https://docs.google.com/d/doc8");
  cloud::DocsClient docs(page, "doc8");
  docs.openDocument();
  EXPECT_EQ(docs.insertParagraph(0, gen_.paragraph(6, 9)), 200);
  EXPECT_EQ(docsBackend_.paragraphsOf("doc8").size(), 1u);
}

TEST_F(BlockModeTest, FormSubmissionBlocked) {
  const std::string secret = seedInterviewData();
  browser::Page& page = browser_.openTab("https://wiki.corp/edit/leak");
  cloud::WikiClient wiki(page, "leak");
  wiki.openEditor();
  wiki.setContent(secret);
  EXPECT_EQ(wiki.save(), 0);  // suppressed
  EXPECT_EQ(wikiBackend_.postCount(), 0u);
}

// ---- Encrypt mode ----------------------------------------------------------------

class EncryptModeTest : public PluginTest {
 protected:
  EncryptModeTest() : PluginTest(configWithMode(EnforcementMode::kEncrypt)) {}
};

TEST_F(EncryptModeTest, XhrPayloadSealedBeforeUpload) {
  const std::string secret = seedInterviewData();
  browser::Page& page = browser_.openTab("https://docs.google.com/d/doc9");
  cloud::DocsClient docs(page, "doc9");
  docs.openDocument();
  EXPECT_EQ(docs.insertParagraph(0, secret), 200);
  const auto stored = docsBackend_.paragraphsOf("doc9");
  ASSERT_EQ(stored.size(), 1u);
  EXPECT_TRUE(crypto::Sealer::isSealed(stored[0]))
      << "backend must only see ciphertext";
  // The organisation can decrypt.
  const auto plain = plugin_.sealer().unseal(stored[0]);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, secret);
}

TEST_F(EncryptModeTest, FormValuesSealedBeforeSubmission) {
  const std::string secret = seedInterviewData();
  browser::Page& page = browser_.openTab("https://wiki.corp/edit/enc");
  cloud::WikiClient wiki(page, "enc");
  wiki.openEditor();
  wiki.setContent(secret);
  EXPECT_EQ(wiki.save(), 200);
  EXPECT_EQ(wikiBackend_.postCount(), 1u);
  // Every stored field value is sealed; the title too (it is non-hidden).
  bool sawSealedContent = false;
  for (const auto& [key, value] : wikiBackend_.documents()) {
    if (crypto::Sealer::isSealed(value)) sawSealedContent = true;
    EXPECT_EQ(value.find(secret), std::string::npos);
  }
  EXPECT_TRUE(sawSealedContent);
}

}  // namespace
}  // namespace bf::core
