// Tests for the policy configuration loader.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cloud/network.h"
#include "core/policy_config.h"
#include "corpus/text_generator.h"

namespace bf::core {
namespace {

constexpr const char* kFullConfig = R"(
# Acme Corp data disclosure policy, v3
[defaults]
mode = block

[service https://itool.corp]
name = Interview Tool
privilege = ti, tw
confidentiality = ti

[service https://wiki.corp]
name = Internal Wiki
privilege = tw
confidentiality = tw

[service https://notes.example]
name = Notes SaaS
adapter = json: note_text, subject

[secret prod-api-key]
tag = api-key
value = sk-live-9A7xQ2Lm44
)";

class PolicyConfigTest : public ::testing::Test {
 protected:
  PolicyConfigTest() : plugin_(BrowserFlowConfig{}, &clock_) {}
  util::LogicalClock clock_;
  BrowserFlowPlugin plugin_;
};

TEST_F(PolicyConfigTest, FullConfigApplies) {
  const auto result = loadPolicyConfig(plugin_, kFullConfig);
  ASSERT_TRUE(result.ok()) << result.errorMessage();
  EXPECT_EQ(result.value().services, 3u);
  EXPECT_EQ(result.value().secrets, 1u);
  EXPECT_TRUE(result.value().modeSet);
  EXPECT_TRUE(result.value().warnings.empty());

  EXPECT_EQ(plugin_.config().mode, EnforcementMode::kBlock);
  const tdm::ServiceInfo* itool =
      plugin_.policy().services().find("https://itool.corp");
  ASSERT_NE(itool, nullptr);
  EXPECT_EQ(itool->displayName, "Interview Tool");
  EXPECT_TRUE(itool->privilege.contains("ti"));
  EXPECT_TRUE(itool->privilege.contains("tw"));
  EXPECT_TRUE(itool->confidentiality.contains("ti"));
  EXPECT_FALSE(itool->confidentiality.contains("tw"));
  EXPECT_TRUE(plugin_.secretGuard().containsSecret(
      "deploying with sk-live-9A7xQ2Lm44 tonight"));
}

TEST_F(PolicyConfigTest, LoadedPolicyEnforces) {
  ASSERT_TRUE(loadPolicyConfig(plugin_, kFullConfig).ok());
  util::Rng rng(5);
  corpus::TextGenerator gen(&rng);
  const std::string secret = gen.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/doc", secret);
  DecisionRequest req;
  req.segmentName = "https://ext.example/x#p0";
  req.documentName = "https://ext.example/x";
  req.serviceId = "https://ext.example";
  req.text = secret;
  const Decision d = plugin_.engine().decide(req);
  EXPECT_EQ(d.action, Decision::Action::kBlock) << "mode=block must apply";
}

TEST_F(PolicyConfigTest, UnknownKeysAndSectionsWarnNotFail) {
  const auto result = loadPolicyConfig(plugin_, R"(
[defaults]
colour = mauve
[gadget frobnicator]
speed = 9
[service https://x.example]
privilege = a
shape = round
)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().services, 1u);
  // colour (defaults), [gadget] section, speed (outside section), shape.
  EXPECT_EQ(result.value().warnings.size(), 4u);
}

TEST_F(PolicyConfigTest, StructuralErrorsFail) {
  EXPECT_FALSE(loadPolicyConfig(plugin_, "[defaults\nmode = warn").ok());
  EXPECT_FALSE(loadPolicyConfig(plugin_, "[service]\n").ok());
  EXPECT_FALSE(loadPolicyConfig(plugin_, "[secret]\n").ok());
  EXPECT_FALSE(
      loadPolicyConfig(plugin_, "[defaults]\nmode = shout").ok());
}

TEST_F(PolicyConfigTest, IncompleteSecretWarnsAndSkips) {
  const auto result = loadPolicyConfig(plugin_, R"(
[secret half-done]
tag = t
)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().secrets, 0u);
  ASSERT_EQ(result.value().warnings.size(), 1u);
  EXPECT_NE(result.value().warnings[0].find("half-done"), std::string::npos);
}

TEST_F(PolicyConfigTest, TooShortSecretWarns) {
  const auto result = loadPolicyConfig(plugin_, R"(
[secret tiny]
tag = t
value = ab
)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().secrets, 0u);
  EXPECT_EQ(result.value().warnings.size(), 1u);
}

TEST_F(PolicyConfigTest, EmptyConfigIsFine) {
  const auto result = loadPolicyConfig(plugin_, "\n# nothing here\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().services, 0u);
  EXPECT_FALSE(result.value().modeSet);
}

TEST_F(PolicyConfigTest, FileVariant) {
  const std::string path = "/tmp/bf_policy_config_test.ini";
  std::ofstream(path) << kFullConfig;
  const auto result = loadPolicyConfigFile(plugin_, path);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.value().services, 3u);
  std::remove(path.c_str());
  EXPECT_FALSE(loadPolicyConfigFile(plugin_, "/tmp/definitely-missing").ok());
}

TEST_F(PolicyConfigTest, JsonAdapterFromConfigIntercepts) {
  ASSERT_TRUE(loadPolicyConfig(plugin_, kFullConfig).ok());
  util::Rng rng(6);
  corpus::TextGenerator gen(&rng);
  cloud::SimNetwork network(&rng);
  browser::Browser browser(&network);
  browser.addExtension(&plugin_);

  const std::string secret = gen.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/d2", secret);
  browser::Page& page = browser.openTab("https://notes.example/app");
  browser::Xhr xhr = page.newXhr();
  xhr.open("POST", "https://notes.example/api/notes");
  // The configured adapter watches "note_text".
  EXPECT_EQ(xhr.send(std::string(R"({"note_text": ")") + secret + "\"}")
                .status,
            403);
}

}  // namespace
}  // namespace bf::core
