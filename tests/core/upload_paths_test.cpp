// Tests for the upload decision paths added on top of the basic plug-in:
// form-draft registration with declassification, stale draft pruning, and
// document-granularity aggregation-leak detection (paper S4.1).
#include <gtest/gtest.h>

#include "cloud/docs_backend.h"
#include "cloud/docs_client.h"
#include "cloud/form_backend.h"
#include "cloud/network.h"
#include "cloud/wiki_client.h"
#include "core/plugin.h"
#include "corpus/text_generator.h"

namespace bf::core {
namespace {

class UploadPathsTest : public ::testing::Test {
 protected:
  explicit UploadPathsTest(EnforcementMode mode = EnforcementMode::kBlock)
      : rng_(55),
        gen_(&rng_),
        network_(&rng_),
        plugin_(makeConfig(mode), &clock_),
        browser_(&network_) {
    network_.registerService("https://wiki.corp", &wikiBackend_);
    network_.registerService("https://itool.corp", &itoolBackend_);
    plugin_.policy().services().upsert({"https://itool.corp",
                                        "Interview Tool", tdm::TagSet{"ti"},
                                        tdm::TagSet{"ti"}});
    plugin_.policy().services().upsert({"https://wiki.corp", "Internal Wiki",
                                        tdm::TagSet{"tw"},
                                        tdm::TagSet{"tw"}});
    browser_.addExtension(&plugin_);
  }

  static BrowserFlowConfig makeConfig(EnforcementMode mode) {
    BrowserFlowConfig c;
    c.mode = mode;
    return c;
  }

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  cloud::SimNetwork network_;
  cloud::FormBackend wikiBackend_;
  cloud::FormBackend itoolBackend_;
  cloud::DocsBackend docsBackend_;
  BrowserFlowPlugin plugin_;
  browser::Browser browser_;
};

TEST_F(UploadPathsTest, FormDraftSuppressionUnblocksResubmit) {
  const std::string secret = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/eval", secret);

  browser::Page& page = browser_.openTab("https://wiki.corp/edit/notes");
  cloud::WikiClient wiki(page, "notes");
  wiki.openEditor();
  wiki.setContent(secret);
  ASSERT_EQ(wiki.save(), 0) << "first submit must be blocked";
  EXPECT_EQ(wikiBackend_.postCount(), 0u);

  // The draft is now a tracked, labelled segment the user can declassify.
  // (#p0 is the form's title field; the content textarea is #p1.)
  const std::string draftSegment =
      "https://wiki.corp/edit/notes/draft#p1";
  ASSERT_NE(plugin_.tracker().segmentByName(draftSegment), nullptr);
  const tdm::Label* label = plugin_.policy().labelOf(draftSegment);
  ASSERT_NE(label, nullptr);
  EXPECT_TRUE(label->implicitTags().contains("ti"));

  ASSERT_TRUE(plugin_
                  .suppressTag("alice", draftSegment, "ti",
                               "summary approved for the wiki")
                  .ok());
  EXPECT_EQ(wiki.save(), 200) << "post-suppression submit must pass";
  EXPECT_EQ(wikiBackend_.postCount(), 1u);
  // One audit record per granularity: the paragraph the user declassified
  // and the containing document segment.
  const auto records =
      plugin_.policy().audit().byKind(tdm::AuditRecord::Kind::kTagSuppressed);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].segment, draftSegment);
  EXPECT_EQ(records[1].segment, "https://wiki.corp/edit/notes/draft");
}

TEST_F(UploadPathsTest, StaleDraftParagraphsPruned) {
  browser::Page& page = browser_.openTab("https://wiki.corp/edit/p");
  page.loadHtml(R"(<form id="f" action="/post">
                     <textarea name="content" value=""></textarea></form>)");
  browser::Node* form = page.document().root()->byId("f");
  browser::Node* area = form->elementsByTag("textarea")[0];

  area->setAttribute("value", gen_.paragraph(5, 6) + "\n\n" +
                                  gen_.paragraph(5, 6) + "\n\n" +
                                  gen_.paragraph(5, 6));
  ASSERT_EQ(page.submitForm(form).status, 200);
  const std::string base = "https://wiki.corp/edit/p/draft#p";
  EXPECT_NE(plugin_.tracker().segmentByName(base + "2"), nullptr);

  // Shorter draft: paragraphs 1 and 2 must disappear from the tracker.
  area->setAttribute("value", gen_.paragraph(5, 6));
  ASSERT_EQ(page.submitForm(form).status, 200);
  EXPECT_NE(plugin_.tracker().segmentByName(base + "0"), nullptr);
  EXPECT_EQ(plugin_.tracker().segmentByName(base + "1"), nullptr);
  EXPECT_EQ(plugin_.tracker().segmentByName(base + "2"), nullptr);
}

TEST_F(UploadPathsTest, DocumentGranularityCatchesAggregationLeak) {
  // A sensitive document whose author set a low document threshold: any
  // broad sampling is sensitive even when no single paragraph passes T_par
  // (the paper's "one sentence from each paragraph" scenario, S4.1).
  std::vector<std::string> sentences;
  std::string doc;
  for (int i = 0; i < 6; ++i) {
    const std::string lead = gen_.sentence(12, 14);
    sentences.push_back(lead);
    if (!doc.empty()) doc += "\n\n";
    doc += lead + " " + gen_.paragraph(6, 6);
  }
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/playbook", doc,
                                 /*paragraphThreshold=*/0.6,
                                 /*documentThreshold=*/0.08);

  // Leak one sentence per paragraph, split across two form paragraphs.
  std::string leak;
  for (std::size_t i = 0; i < sentences.size(); ++i) {
    if (i == 3) leak += "\n\n";
    leak += sentences[i] + " ";
  }

  browser::Page& page = browser_.openTab("https://wiki.corp/edit/digest");
  cloud::WikiClient wiki(page, "digest");
  wiki.openEditor();
  wiki.setContent(leak);
  EXPECT_EQ(wiki.save(), 0) << "document-level disclosure must block";
  EXPECT_EQ(wikiBackend_.postCount(), 0u);

  // Sanity: no individual paragraph crossed its own 0.6 threshold.
  bool paragraphLevelHit = false;
  for (const auto& w : plugin_.warnings()) {
    for (const auto& h : w.decision.hits) {
      if (h.kind == flow::SegmentKind::kParagraph) paragraphLevelHit = true;
    }
  }
  EXPECT_FALSE(paragraphLevelHit);
}

TEST_F(UploadPathsTest, DocsCumulativeLeakGatedAtDocumentLevel) {
  // The Docs per-keystroke channel uploads one paragraph at a time; no
  // single paragraph crosses T_par, but together they disclose the source
  // document. The page-level document segment (refreshed by the mutation
  // path) must gate the upload (paper S4.1's aggregation case).
  network_.registerService("https://docs.google.com", &docsBackend_);
  std::vector<std::string> leads;
  std::string doc;
  for (int i = 0; i < 6; ++i) {
    leads.push_back(gen_.sentence(12, 14));
    if (!doc.empty()) doc += "\n\n";
    doc += leads.back() + " " + gen_.paragraph(6, 6);
  }
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/playbook2", doc,
                                 /*paragraphThreshold=*/0.6,
                                 /*documentThreshold=*/0.08);

  browser::Page& page = browser_.openTab("https://docs.google.com/d/agg");
  cloud::DocsClient docs(page, "agg");
  docs.openDocument();
  // Early sentences pass — not enough aggregated yet.
  ASSERT_EQ(docs.insertParagraph(0, leads[0]), 200);
  // Keep inserting; by the last lead the document-level gate must close.
  int lastStatus = 200;
  for (std::size_t i = 1; i < leads.size(); ++i) {
    lastStatus = docs.insertParagraph(i, leads[i]);
  }
  EXPECT_EQ(lastStatus, 403) << "cumulative document leak not gated";
  // The leak was recorded at document granularity.
  bool docWarning = false;
  for (const auto& w : plugin_.warnings()) {
    if (w.segmentName.find("(document)") != std::string::npos ||
        w.segmentName == "https://docs.google.com/d/agg") {
      docWarning = true;
    }
  }
  EXPECT_TRUE(docWarning);
}

TEST_F(UploadPathsTest, SingleParagraphFormSkipsDocumentCheck) {
  // One-paragraph drafts must not create a document-kind segment.
  browser::Page& page = browser_.openTab("https://wiki.corp/edit/one");
  page.loadHtml(R"(<form id="f" action="/post">
                     <textarea name="content" value=""></textarea></form>)");
  browser::Node* form = page.document().root()->byId("f");
  form->elementsByTag("textarea")[0]->setAttribute("value",
                                                   gen_.paragraph(5, 6));
  ASSERT_EQ(page.submitForm(form).status, 200);
  const auto* doc =
      plugin_.tracker().segmentByName("https://wiki.corp/edit/one/draft");
  EXPECT_EQ(doc, nullptr);
}

TEST_F(UploadPathsTest, DraftReSubmitUsesRefreshedLabel) {
  // A draft that disclosed sensitive text, then was rewritten, must lose
  // its implicit taint and submit cleanly.
  const std::string secret = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/eval2", secret);
  browser::Page& page = browser_.openTab("https://wiki.corp/edit/retry");
  cloud::WikiClient wiki(page, "retry");
  wiki.openEditor();
  wiki.setContent(secret);
  ASSERT_EQ(wiki.save(), 0);
  wiki.setContent(gen_.paragraph(7, 9));  // complete rewrite
  EXPECT_EQ(wiki.save(), 200);
}

TEST_F(UploadPathsTest, MultiFieldFormsCheckAllFields) {
  const std::string secret = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/eval3", secret);
  browser::Page& page = browser_.openTab("https://wiki.corp/compose");
  page.loadHtml(R"(
    <form id="f" action="/post">
      <input type="text" name="subject" value="">
      <textarea name="content" value=""></textarea>
    </form>)");
  browser::Node* form = page.document().root()->byId("f");
  // The sensitive text hides in the SECOND field.
  form->elementsByTag("input")[0]->setAttribute("value", "innocuous subject");
  form->elementsByTag("textarea")[0]->setAttribute("value", secret);
  EXPECT_EQ(page.submitForm(form).status, 0);
}

}  // namespace
}  // namespace bf::core
