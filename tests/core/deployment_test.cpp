// Tests for full-deployment persistence: tracker + policy in one encrypted
// file, restored into a fresh plug-in that keeps enforcing — including
// previously granted suppressions.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/deployment.h"
#include "corpus/text_generator.h"

namespace bf::core {
namespace {

class DeploymentTest : public ::testing::Test {
 protected:
  DeploymentTest() : rng_(13), gen_(&rng_) {}
  ~DeploymentTest() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::string tempPath(const char* name) {
    path_ = std::string("/tmp/bf_deployment_test_") + name;
    return path_;
  }

  static BrowserFlowConfig blockConfig() {
    BrowserFlowConfig c;
    c.mode = EnforcementMode::kBlock;
    return c;
  }

  util::Rng rng_;
  corpus::TextGenerator gen_;
  std::string path_;
};

TEST_F(DeploymentTest, FullRoundTripKeepsEnforcementAndSuppression) {
  const std::string path = tempPath("full");
  const std::string secret = gen_.paragraph(7, 9);
  const std::string suppressedCopy = gen_.paragraph(7, 9);

  {
    util::LogicalClock clock;
    BrowserFlowPlugin plugin(blockConfig(), &clock);
    plugin.policy().services().upsert({"itool", "Interview Tool",
                                       tdm::TagSet{"ti"}, tdm::TagSet{"ti"}});
    plugin.observeServiceDocument("itool", "itool/eval", secret);
    // A declassified copy lives in gdocs.
    plugin.observeServiceDocument("gdocs", "gdocs/copy", suppressedCopy);
    DecisionRequest copyReq;
    copyReq.segmentName = "gdocs/copy2#p0";
    copyReq.documentName = "gdocs/copy2";
    copyReq.serviceId = "gdocs";
    copyReq.text = secret;
    plugin.engine().decide(copyReq);
    ASSERT_TRUE(plugin.suppressTag("alice", "gdocs/copy2#p0", "ti", "ok").ok());
    ASSERT_TRUE(saveDeployment(plugin, path, "org-secret").ok());
  }

  util::LogicalClock clock2;
  BrowserFlowPlugin plugin(blockConfig(), &clock2);
  const auto maxTs = loadDeployment(plugin, path, "org-secret");
  ASSERT_TRUE(maxTs.ok()) << maxTs.errorMessage();
  clock2.advanceTo(maxTs.value() + 1);

  // Enforcement still works from restored fingerprints + labels.
  DecisionRequest newReq;
  newReq.segmentName = "gdocs/new#p0";
  newReq.documentName = "gdocs/new";
  newReq.serviceId = "gdocs";
  newReq.text = secret;
  const Decision blocked = plugin.engine().decide(newReq);
  EXPECT_TRUE(blocked.violation());

  // The restored suppression still holds for the declassified copy.
  DecisionRequest restoredReq;
  restoredReq.segmentName = "gdocs/copy2#p0";
  restoredReq.documentName = "gdocs/copy2";
  restoredReq.serviceId = "gdocs";
  restoredReq.text = secret;
  const Decision allowed = plugin.engine().decide(restoredReq);
  EXPECT_FALSE(allowed.violation());

  // Audit trail restored.
  EXPECT_EQ(plugin.policy()
                .audit()
                .byKind(tdm::AuditRecord::Kind::kTagSuppressed)
                .size(),
            1u);
}

TEST_F(DeploymentTest, EncryptedFileHidesContent) {
  const std::string path = tempPath("enc");
  util::LogicalClock clock;
  BrowserFlowPlugin plugin(blockConfig(), &clock);
  plugin.policy().services().upsert({"itool", "Interview Tool",
                                     tdm::TagSet{"ti"}, tdm::TagSet{"ti"}});
  plugin.observeServiceDocument("itool", "itool/eval", gen_.paragraph(6, 8));
  ASSERT_TRUE(saveDeployment(plugin, path, "s3cret").ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(data.find("itool"), std::string::npos);

  util::LogicalClock clock2;
  BrowserFlowPlugin wrongKey(blockConfig(), &clock2);
  EXPECT_FALSE(loadDeployment(wrongKey, path, "wrong").ok());
  util::LogicalClock clock3;
  BrowserFlowPlugin noKey(blockConfig(), &clock3);
  EXPECT_FALSE(loadDeployment(noKey, path, "").ok());
}

TEST_F(DeploymentTest, PlaintextModeWorks) {
  const std::string path = tempPath("plain");
  util::LogicalClock clock;
  BrowserFlowPlugin plugin(blockConfig(), &clock);
  plugin.observeServiceDocument("svc", "svc/doc", gen_.paragraph(6, 8));
  ASSERT_TRUE(saveDeployment(plugin, path, "").ok());
  util::LogicalClock clock2;
  BrowserFlowPlugin restored(blockConfig(), &clock2);
  EXPECT_TRUE(loadDeployment(restored, path, "").ok());
  EXPECT_EQ(restored.tracker().segmentDb().size(),
            plugin.tracker().segmentDb().size());
}

TEST_F(DeploymentTest, MissingFileAndGarbageRejected) {
  util::LogicalClock clock;
  BrowserFlowPlugin plugin(blockConfig(), &clock);
  EXPECT_FALSE(loadDeployment(plugin, "/tmp/definitely-not-here-bf", "").ok());
  const std::string path = tempPath("garbage");
  std::ofstream(path) << "this is not a deployment file";
  EXPECT_FALSE(loadDeployment(plugin, path, "").ok());
}

}  // namespace
}  // namespace bf::core
