// Tests for the service-adapter layer (paper S4.4) — generic form/JSON
// adapters and an end-to-end JSON service interception.
#include <gtest/gtest.h>

#include "cloud/form_backend.h"
#include "cloud/network.h"
#include "core/plugin.h"
#include "corpus/text_generator.h"

namespace bf::core {
namespace {

// ---- Adapter units -----------------------------------------------------------

TEST(FormEncodedAdapter, ExtractAndRebuild) {
  FormEncodedAdapter adapter;
  browser::HttpRequest req;
  req.body = "csrf=tok&content=hello+world&title=My+Note";
  auto fields = adapter.extractUploadText(req);
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].key, "content");
  EXPECT_EQ(fields[0].text, "hello world");

  fields[0].text = "SEALED";
  const std::string body = adapter.rebuildBody(req, fields);
  const auto parsed = browser::parseFormBody(body);
  EXPECT_EQ(parsed.at("content"), "SEALED");
  EXPECT_EQ(parsed.at("csrf"), "tok");
  EXPECT_EQ(parsed.at("title"), "My Note");
}

TEST(FormEncodedAdapter, NoTextFields) {
  FormEncodedAdapter adapter;
  browser::HttpRequest req;
  req.body = "action=delete&id=5";
  EXPECT_TRUE(adapter.extractUploadText(req).empty());
}

TEST(JsonFieldAdapter, DefaultKeysExtract) {
  JsonFieldAdapter adapter;
  browser::HttpRequest req;
  req.body = R"({"id": 7, "text": "user words", "author": "bob"})";
  auto fields = adapter.extractUploadText(req);
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].key, "text");
  EXPECT_EQ(fields[0].text, "user words");
}

TEST(JsonFieldAdapter, CustomKeys) {
  JsonFieldAdapter adapter({"note_body", "subject"});
  browser::HttpRequest req;
  req.body =
      R"({"subject": "hi", "note_body": "the content", "text": "ignored"})";
  auto fields = adapter.extractUploadText(req);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0].key, "subject");
  EXPECT_EQ(fields[1].key, "note_body");
}

TEST(JsonFieldAdapter, RebuildPreservesNonTextContent) {
  JsonFieldAdapter adapter;
  browser::HttpRequest req;
  req.body = R"({"id": 7, "text": "secret stuff", "flag": true})";
  auto fields = adapter.extractUploadText(req);
  ASSERT_EQ(fields.size(), 1u);
  fields[0].text = "XXX";
  EXPECT_EQ(adapter.rebuildBody(req, fields),
            R"({"id": 7, "text": "XXX", "flag": true})");
}

TEST(JsonFieldAdapter, NonJsonBodyIgnored) {
  JsonFieldAdapter adapter;
  browser::HttpRequest req;
  req.body = "text=looks+like+form";
  EXPECT_TRUE(adapter.extractUploadText(req).empty());
}

// ---- End-to-end through the plug-in --------------------------------------------

class JsonServiceTest : public ::testing::Test {
 protected:
  JsonServiceTest()
      : rng_(66),
        gen_(&rng_),
        network_(&rng_),
        plugin_(blockConfig(), &clock_),
        browser_(&network_) {
    network_.registerService("https://notes.example", &backend_);
    plugin_.policy().services().upsert({"https://hr.corp", "HR",
                                        tdm::TagSet{"hr"}, tdm::TagSet{"hr"}});
    browser_.addExtension(&plugin_);
  }

  static BrowserFlowConfig blockConfig() {
    BrowserFlowConfig c;
    c.mode = EnforcementMode::kBlock;
    return c;
  }

  int postNote(browser::Page& page, const std::string& body) {
    browser::Xhr xhr = page.newXhr();
    xhr.open("POST", "https://notes.example/api/notes");
    xhr.setRequestHeader("content-type", "application/json");
    return xhr.send(body).status;
  }

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  cloud::SimNetwork network_;
  cloud::FormBackend backend_;
  BrowserFlowPlugin plugin_;
  browser::Browser browser_;
};

TEST_F(JsonServiceTest, JsonBodySniffedAndBlocked) {
  const std::string secret = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://hr.corp", "https://hr.corp/comp",
                                 secret);
  browser::Page& page = browser_.openTab("https://notes.example/app");
  const int status = postNote(
      page, std::string(R"({"title": "x", "text": ")") + secret + "\"}");
  EXPECT_EQ(status, 403);
  EXPECT_TRUE(network_.requestsTo("https://notes.example").empty());
}

TEST_F(JsonServiceTest, CleanJsonPasses) {
  plugin_.observeServiceDocument("https://hr.corp", "https://hr.corp/comp",
                                 gen_.paragraph(7, 9));
  browser::Page& page = browser_.openTab("https://notes.example/app");
  const int status = postNote(
      page,
      std::string(R"({"text": ")") + gen_.paragraph(7, 9) + "\"}");
  EXPECT_EQ(status, 200);
  EXPECT_EQ(network_.requestsTo("https://notes.example").size(), 1u);
}

TEST_F(JsonServiceTest, RegisteredAdapterWithCustomKeysWins) {
  plugin_.registerServiceAdapter(
      "https://notes.example",
      std::make_unique<JsonFieldAdapter>(
          std::vector<std::string>{"note_body"}));
  const std::string secret = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://hr.corp", "https://hr.corp/comp2",
                                 secret);
  browser::Page& page = browser_.openTab("https://notes.example/app");
  // Sensitive text in the custom key: blocked.
  EXPECT_EQ(postNote(page, std::string(R"({"note_body": ")") + secret +
                               "\"}"),
            403);
  // Same text under a key the adapter does not treat as user text: the
  // adapter extracts nothing, so the request passes (the admin's key list
  // is the contract).
  EXPECT_EQ(postNote(page, std::string(R"({"debug_blob": ")") + secret +
                               "\"}"),
            200);
}

TEST_F(JsonServiceTest, EncryptModeSealsOnlyViolatingJsonField) {
  BrowserFlowConfig config;
  config.mode = EnforcementMode::kEncrypt;
  BrowserFlowPlugin plugin(config, &clock_);
  plugin.policy().services().upsert({"https://hr.corp", "HR",
                                     tdm::TagSet{"hr"}, tdm::TagSet{"hr"}});
  browser::Browser browser(&network_);
  browser.addExtension(&plugin);

  const std::string secret = gen_.paragraph(7, 9);
  plugin.observeServiceDocument("https://hr.corp", "https://hr.corp/comp3",
                                secret);
  const std::string clean = gen_.paragraph(7, 9);
  browser::Page& page = browser.openTab("https://notes.example/app");
  browser::Xhr xhr = page.newXhr();
  xhr.open("POST", "https://notes.example/api/notes");
  network_.clearLog();
  const int status =
      xhr.send(std::string(R"({"text": ")") + secret +
               R"(", "comment": ")" + clean + "\"}").status;
  EXPECT_EQ(status, 200);

  const auto sent = network_.requestsTo("https://notes.example");
  ASSERT_EQ(sent.size(), 1u);
  const std::string& body = sent[0]->request.body;
  EXPECT_EQ(body.find(secret), std::string::npos) << "secret left in clear";
  EXPECT_NE(body.find(clean), std::string::npos)
      << "clean field must stay readable";
  EXPECT_NE(body.find("BFENC1:"), std::string::npos);
}

}  // namespace
}  // namespace bf::core
