// Tests for ChaCha20 (against RFC 8439 vectors) and the Sealer envelope.
#include <gtest/gtest.h>

#include <set>

#include "crypto/chacha20.h"
#include "crypto/mac.h"
#include "crypto/sealer.h"

namespace bf::crypto {
namespace {

Key256 rfcKey() {
  Key256 key{};
  for (std::size_t i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  return key;
}

TEST(ChaCha20, Rfc8439BlockVector) {
  // RFC 8439 section 2.3.2 test vector.
  const Key256 key = rfcKey();
  Nonce96 nonce{};
  nonce[3] = 0x09;
  nonce[7] = 0x4a;
  const auto block = chacha20Block(key, nonce, 1);
  const std::uint8_t expected[64] = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd,
      0x1f, 0xa3, 0x20, 0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0,
      0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e, 0xd2,
      0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05,
      0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e,
      0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e};
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(block[i], expected[i]) << "byte " << i;
  }
}

TEST(ChaCha20, Rfc8439EncryptionVector) {
  // RFC 8439 section 2.4.2: the "sunscreen" plaintext.
  const Key256 key = rfcKey();
  Nonce96 nonce{};
  nonce[7] = 0x4a;
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  const std::string ct = chacha20Xor(plaintext, key, nonce, 1);
  const std::uint8_t expectedPrefix[16] = {0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68,
                                           0xf9, 0x80, 0x41, 0xba, 0x07, 0x28,
                                           0xdd, 0x0d, 0x69, 0x81};
  ASSERT_GE(ct.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(static_cast<std::uint8_t>(ct[i]), expectedPrefix[i])
        << "byte " << i;
  }
}

TEST(ChaCha20, XorIsItsOwnInverse) {
  const Key256 key = rfcKey();
  Nonce96 nonce{};
  const std::string msg = "attack at dawn";
  EXPECT_EQ(chacha20Xor(chacha20Xor(msg, key, nonce), key, nonce), msg);
}

TEST(ChaCha20, EmptyInput) {
  EXPECT_EQ(chacha20Xor("", rfcKey(), Nonce96{}), "");
}

TEST(ChaCha20, MultiBlockMessage) {
  const Key256 key = rfcKey();
  Nonce96 nonce{};
  const std::string msg(300, 'q');  // spans 5 blocks
  const std::string ct = chacha20Xor(msg, key, nonce);
  EXPECT_EQ(ct.size(), msg.size());
  EXPECT_NE(ct, msg);
  EXPECT_EQ(chacha20Xor(ct, key, nonce), msg);
}

TEST(Sealer, RoundTrip) {
  Sealer sealer("org-secret");
  const std::string secret = "candidate evaluation: strong hire";
  const std::string envelope = sealer.seal(secret);
  EXPECT_TRUE(Sealer::isSealed(envelope));
  EXPECT_EQ(envelope.find(secret), std::string::npos);
  const auto back = sealer.unseal(envelope);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, secret);
}

TEST(Sealer, FreshNoncePerSeal) {
  Sealer sealer("org-secret");
  EXPECT_NE(sealer.seal("same text"), sealer.seal("same text"));
}

TEST(Sealer, DifferentSecretsCannotUnseal) {
  Sealer a("secret-a");
  Sealer b("secret-b");
  const std::string env = a.seal("payload");
  const auto wrong = b.unseal(env);
  // Stream cipher: unseal "succeeds" but yields garbage, never the
  // plaintext.
  ASSERT_TRUE(wrong.has_value());
  EXPECT_NE(*wrong, "payload");
}

TEST(Sealer, RejectsMalformedEnvelopes) {
  Sealer sealer("s");
  EXPECT_FALSE(sealer.unseal("not an envelope").has_value());
  EXPECT_FALSE(sealer.unseal("BFENC1:zz").has_value());
  EXPECT_FALSE(sealer.unseal("BFENC1:abcd:xyz!").has_value());
  EXPECT_FALSE(sealer.unseal("BFENC1:ab:cd").has_value());  // short nonce
}

TEST(Sealer, EnvelopeIsPrintable) {
  Sealer sealer("s");
  const std::string env = sealer.seal(std::string("\x00\x01\xff binary", 10));
  for (char c : env) {
    EXPECT_TRUE(std::isprint(static_cast<unsigned char>(c))) << env;
  }
}

TEST(Sealer, IsSealedPrefixOnly) {
  EXPECT_TRUE(Sealer::isSealed("BFENC1:whatever"));
  EXPECT_FALSE(Sealer::isSealed("BFENC2:whatever"));
  EXPECT_FALSE(Sealer::isSealed(""));
}

TEST(ChaCha20, CounterAdvancesPerBlock) {
  // Block 2 of a long message equals a direct encryption starting at
  // counter 2 (the keystream is deterministic per (key, nonce, counter)).
  const Key256 key = rfcKey();
  Nonce96 nonce{};
  const std::string msg(128, 'z');
  const std::string whole = chacha20Xor(msg, key, nonce, 1);
  const std::string tail =
      chacha20Xor(std::string(64, 'z'), key, nonce, 2);
  EXPECT_EQ(whole.substr(64), tail);
}

TEST(ChaCha20, DifferentNoncesProduceUnrelatedKeystreams) {
  const Key256 key = rfcKey();
  Nonce96 a{}, b{};
  b[0] = 1;
  const std::string msg(64, 'q');
  EXPECT_NE(chacha20Xor(msg, key, a), chacha20Xor(msg, key, b));
}

TEST(ChaCha20, DifferentKeysProduceUnrelatedKeystreams) {
  Key256 a = rfcKey();
  Key256 b = rfcKey();
  b[31] ^= 1;
  const std::string msg(64, 'q');
  EXPECT_NE(chacha20Xor(msg, a, Nonce96{}), chacha20Xor(msg, b, Nonce96{}));
}

TEST(Sealer, EmptyPlaintextRoundTrips) {
  Sealer sealer("s");
  const auto back = sealer.unseal(sealer.seal(""));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "");
}

TEST(Sealer, LargePlaintextRoundTrips) {
  Sealer sealer("s");
  std::string big;
  for (int i = 0; i < 5000; ++i) big += "paragraph of content ";
  const auto back = sealer.unseal(sealer.seal(big));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, big);
}

TEST(Sealer, ManySealsUseDistinctNonces) {
  Sealer sealer("s");
  std::set<std::string> envelopes;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(envelopes.insert(sealer.seal("same")).second)
        << "nonce reuse at seal " << i;
  }
}

TEST(Sealer, SameSecretDifferentInstancesInteroperate) {
  Sealer a("shared-secret");
  Sealer b("shared-secret");
  const auto back = b.unseal(a.seal("cross-instance payload"));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "cross-instance payload");
}

namespace {
Key256 macTestKey(std::uint8_t fill) {
  Key256 key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(fill + i);
  }
  return key;
}
}  // namespace

TEST(KeyedTag, DeterministicForSameKeyAndData) {
  const Key256 key = macTestKey(0x10);
  const Tag128 a = keyedTag(key, "snapshot ciphertext");
  const Tag128 b = keyedTag(key, "snapshot ciphertext");
  EXPECT_TRUE(tagEquals(a, b));
}

TEST(KeyedTag, DifferentKeysProduceDifferentTags) {
  const Tag128 a = keyedTag(macTestKey(0x10), "snapshot ciphertext");
  const Tag128 b = keyedTag(macTestKey(0x11), "snapshot ciphertext");
  EXPECT_FALSE(tagEquals(a, b));
}

TEST(KeyedTag, AnySingleBitFlipChangesTheTag) {
  // The tag defends encrypted snapshots against ChaCha20 malleability:
  // every 1-bit ciphertext change must be visible in the tag.
  const Key256 key = macTestKey(0x42);
  const std::string data = "BFSNAPE2 envelope bytes under test 0123456789";
  const Tag128 clean = keyedTag(key, data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(
          static_cast<unsigned char>(flipped[byte]) ^ (1u << bit));
      EXPECT_FALSE(tagEquals(keyedTag(key, flipped), clean))
          << "tag blind to flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(KeyedTag, LengthAndPositionBound) {
  const Key256 key = macTestKey(0x07);
  // Moving a boundary byte between "prefix" and "suffix" must not collide.
  EXPECT_FALSE(tagEquals(keyedTag(key, "ab"),
                         keyedTag(key, std::string("a\0b", 3))));
  EXPECT_FALSE(tagEquals(keyedTag(key, "abc"), keyedTag(key, "ab")));
  EXPECT_FALSE(tagEquals(keyedTag(key, ""), keyedTag(key, std::string(1, 0))));
}

TEST(KeyedTag, EmptyMessageHasAStableKeyedValue) {
  const Tag128 a = keyedTag(macTestKey(0x00), "");
  const Tag128 b = keyedTag(macTestKey(0x00), "");
  const Tag128 c = keyedTag(macTestKey(0x01), "");
  EXPECT_TRUE(tagEquals(a, b));
  EXPECT_FALSE(tagEquals(a, c));
}

}  // namespace
}  // namespace bf::crypto
