// Tests for the Evernote-like notes service, standalone and under the
// plug-in — proving the generic paths (paragraph <p> observation + JSON
// body interception) cover a second dynamic service with zero
// service-specific plug-in code (paper S5.2).
#include <gtest/gtest.h>

#include "cloud/notes_client.h"
#include "core/plugin.h"
#include "corpus/text_generator.h"

namespace bf::cloud {
namespace {

class NotesTest : public ::testing::Test {
 protected:
  NotesTest() : rng_(3), gen_(&rng_), network_(&rng_) {
    network_.registerService("https://notes.example", &backend_);
  }

  util::Rng rng_;
  corpus::TextGenerator gen_;
  SimNetwork network_;
  NotesBackend backend_;
};

TEST_F(NotesTest, EditAndAutoSave) {
  browser::Page page("https://notes.example/n/1", &network_);
  NotesClient notes(page, "n1");
  notes.openNote();
  EXPECT_EQ(notes.appendParagraph("first paragraph"), 200);
  EXPECT_EQ(notes.appendParagraph("second paragraph"), 200);
  EXPECT_EQ(backend_.noteText("n1"), "first paragraph\n\nsecond paragraph");
  EXPECT_EQ(notes.setParagraph(0, "rewritten"), 200);
  EXPECT_EQ(backend_.noteText("n1"), "rewritten\n\nsecond paragraph");
  EXPECT_EQ(notes.deleteParagraph(1), 200);
  EXPECT_EQ(backend_.noteText("n1"), "rewritten");
  EXPECT_EQ(backend_.saveCount(), 4u);
}

TEST_F(NotesTest, JsonEscapingSurvivesRoundTrip) {
  browser::Page page("https://notes.example/n/2", &network_);
  NotesClient notes(page, "n2");
  notes.openNote();
  const std::string nasty = "quotes \" and \\ backslashes";
  EXPECT_EQ(notes.appendParagraph(nasty), 200);
  EXPECT_EQ(backend_.noteText("n2"), nasty);
}

TEST_F(NotesTest, BackendRejectsMalformedPosts) {
  browser::HttpRequest req;
  req.url = "https://notes.example/api/notes";
  req.body = R"({"note_id": "x"})";  // no text
  EXPECT_EQ(backend_.handle(req).status, 400);
  req.body = "not json";
  EXPECT_EQ(backend_.handle(req).status, 400);
}

class NotesPluginTest : public NotesTest {
 protected:
  NotesPluginTest()
      : plugin_(
            [] {
              core::BrowserFlowConfig c;
              c.mode = core::EnforcementMode::kBlock;
              return c;
            }(),
            &clock_),
        browser_(&network_) {
    plugin_.policy().services().upsert({"https://itool.corp",
                                        "Interview Tool", tdm::TagSet{"ti"},
                                        tdm::TagSet{"ti"}});
    browser_.addExtension(&plugin_);
  }

  util::LogicalClock clock_;
  core::BrowserFlowPlugin plugin_;
  browser::Browser browser_;
};

TEST_F(NotesPluginTest, ParagraphElementsAreObservedAndHighlighted) {
  const std::string secret = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/eval", secret);
  browser::Page& page = browser_.openTab("https://notes.example/n/3");
  NotesClient notes(page, "n3");
  notes.openNote();

  // Pasting the secret into a plain <p>: blocked at the JSON upload, and
  // the paragraph is highlighted by the mutation path.
  EXPECT_EQ(notes.appendParagraph(secret), 403);
  EXPECT_TRUE(backend_.noteText("n3").empty());
  EXPECT_EQ(notes.paragraphNode(0)->attribute(
                core::BrowserFlowPlugin::kStateAttr),
            core::BrowserFlowPlugin::kViolation);

  // Fresh prose flows.
  EXPECT_EQ(notes.setParagraph(0, gen_.paragraph(7, 9)), 200);
  EXPECT_FALSE(backend_.noteText("n3").empty());
}

TEST_F(NotesPluginTest, WholeNoteUploadCheckedPerParagraph) {
  const std::string secret = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/eval2", secret);
  browser::Page& page = browser_.openTab("https://notes.example/n/4");
  NotesClient notes(page, "n4");
  notes.openNote();
  ASSERT_EQ(notes.appendParagraph(gen_.paragraph(7, 9)), 200);
  // The secret arrives as the SECOND paragraph of a multi-paragraph JSON
  // body; the per-paragraph upload check must still find it.
  EXPECT_EQ(notes.appendParagraph(secret), 403);
}

TEST_F(NotesPluginTest, SuppressionWorksThroughNoteSegments) {
  const std::string secret = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/eval3", secret);
  browser::Page& page = browser_.openTab("https://notes.example/n/5");
  NotesClient notes(page, "n5");
  notes.openNote();
  ASSERT_EQ(notes.appendParagraph(secret), 403);
  const std::string segment = plugin_.segmentNameOf(notes.paragraphNode(0));
  ASSERT_FALSE(segment.empty());
  ASSERT_TRUE(plugin_.suppressTag("alice", segment, "ti", "approved").ok());
  EXPECT_EQ(notes.save(), 200);
  EXPECT_FALSE(backend_.noteText("n5").empty());
}

}  // namespace
}  // namespace bf::cloud
