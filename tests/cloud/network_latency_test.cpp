// Tests for SimNetwork's latency model and logging behaviour.
#include <gtest/gtest.h>

#include "cloud/form_backend.h"
#include "cloud/network.h"
#include "obs/metrics.h"
#include "util/stats.h"

namespace bf::cloud {
namespace {

TEST(SimNetworkLatency, GaussianModelStaysPlausible) {
  util::Rng rng(9);
  SimNetwork network(&rng, /*baseLatencyMs=*/20.0, /*jitterMs=*/6.0);
  FormBackend backend;
  network.registerService("https://x.example", &backend);

  browser::HttpRequest req;
  req.url = "https://x.example/post";
  req.body = "content=hello";
  for (int i = 0; i < 500; ++i) network.handle(req);

  std::vector<double> latencies;
  for (const auto& e : network.log()) {
    latencies.push_back(e.simulatedLatencyMs);
    ASSERT_GE(e.simulatedLatencyMs, 0.0);
  }
  EXPECT_NEAR(util::mean(latencies), 20.0, 1.5);
  EXPECT_GT(util::percentile(latencies, 95), 25.0);
  EXPECT_LT(util::percentile(latencies, 95), 45.0);
}

TEST(SimNetworkLatency, LatencyNeverNegativeEvenWithHugeJitter) {
  util::Rng rng(10);
  SimNetwork network(&rng, 1.0, 50.0);
  FormBackend backend;
  network.registerService("https://x.example", &backend);
  browser::HttpRequest req;
  req.url = "https://x.example/p";
  for (int i = 0; i < 200; ++i) {
    network.handle(req);
  }
  for (const auto& e : network.log()) {
    EXPECT_GE(e.simulatedLatencyMs, 0.0);
  }
}

TEST(SimNetworkLatency, DeterministicForSeed) {
  FormBackend backend;
  auto run = [&backend]() {
    util::Rng rng(11);
    SimNetwork network(&rng);
    network.registerService("https://x.example", &backend);
    browser::HttpRequest req;
    req.url = "https://x.example/p";
    std::vector<double> out;
    for (int i = 0; i < 20; ++i) {
      network.handle(req);
    }
    for (const auto& e : network.log()) out.push_back(e.simulatedLatencyMs);
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimNetworkLatency, RequestsToMatchesExactOrigin) {
  util::Rng rng(12);
  SimNetwork network(&rng);
  FormBackend a, b;
  network.registerService("https://a.example", &a);
  network.registerService("https://a.example.evil", &b);
  browser::HttpRequest req;
  req.url = "https://a.example/x";
  network.handle(req);
  req.url = "https://a.example.evil/x";
  network.handle(req);
  // "https://a.example" is a raw prefix of "https://a.example.evil/..." but
  // a different origin; the log filter must not conflate them.
  EXPECT_EQ(network.requestsTo("https://a.example").size(), 1u);
  EXPECT_EQ(network.requestsTo("https://a.example.evil").size(), 1u);
  EXPECT_TRUE(network.requestsTo("https://b.example").empty());
}

TEST(SimNetworkLatency, FailedRoutesAreLoggedTooWithoutLatency) {
  util::Rng rng(13);
  SimNetwork network(&rng);
  const auto before = obs::registry()
                          .histogram("bf_network_rtt_ms")
                          .count();
  browser::HttpRequest req;
  req.url = "https://ghost.example/x";
  EXPECT_EQ(network.handle(req).status, 502);
  ASSERT_EQ(network.log().size(), 1u);
  EXPECT_EQ(network.log()[0].response.status, 502);
  // An unrouted request never crossed the network: no simulated RTT may be
  // charged, in the log or in the histogram.
  EXPECT_EQ(network.log()[0].simulatedLatencyMs, 0.0);
  EXPECT_EQ(obs::registry().histogram("bf_network_rtt_ms").count(), before);
}

}  // namespace
}  // namespace bf::cloud
