// Tests for the simulated cloud: network routing, backends, clients.
#include <gtest/gtest.h>

#include "cloud/docs_backend.h"
#include "cloud/docs_client.h"
#include "cloud/form_backend.h"
#include "cloud/network.h"
#include "cloud/wiki_client.h"

namespace bf::cloud {
namespace {

class CloudTest : public ::testing::Test {
 protected:
  CloudTest() : rng_(1), network_(&rng_) {
    network_.registerService("https://docs.google.com", &docs_);
    network_.registerService("https://wiki.corp", &wiki_);
  }

  util::Rng rng_;
  SimNetwork network_;
  DocsBackend docs_;
  FormBackend wiki_;
};

TEST_F(CloudTest, RoutesByOrigin) {
  browser::HttpRequest req;
  req.url = "https://docs.google.com/mutate";
  req.body = "doc=d1&op=set&para=0&text=hello";
  EXPECT_EQ(network_.handle(req).status, 200);
  EXPECT_EQ(docs_.mutationCount(), 1u);
  EXPECT_EQ(wiki_.postCount(), 0u);
}

TEST_F(CloudTest, UnknownOriginIs502) {
  browser::HttpRequest req;
  req.url = "https://nowhere.example/x";
  EXPECT_EQ(network_.handle(req).status, 502);
}

TEST_F(CloudTest, LogRecordsLatencyAndRequests) {
  browser::HttpRequest req;
  req.url = "https://docs.google.com/mutate";
  req.body = "doc=d&op=set&para=0&text=x";
  network_.handle(req);
  network_.handle(req);
  ASSERT_EQ(network_.log().size(), 2u);
  for (const auto& e : network_.log()) {
    EXPECT_GE(e.simulatedLatencyMs, 0.0);
    EXPECT_LT(e.simulatedLatencyMs, 100.0);
  }
  EXPECT_EQ(network_.requestsTo("https://docs.google.com").size(), 2u);
  EXPECT_TRUE(network_.requestsTo("https://wiki.corp").empty());
  network_.clearLog();
  EXPECT_TRUE(network_.log().empty());
}

TEST_F(CloudTest, DocsBackendOps) {
  auto post = [&](const std::string& body) {
    browser::HttpRequest req;
    req.url = "https://docs.google.com/mutate";
    req.body = body;
    return network_.handle(req).status;
  };
  EXPECT_EQ(post("doc=d&op=set&para=0&text=first"), 200);
  EXPECT_EQ(post("doc=d&op=insert&para=1&text=second"), 200);
  EXPECT_EQ(post("doc=d&op=set&para=0&text=FIRST"), 200);
  ASSERT_EQ(docs_.paragraphsOf("d").size(), 2u);
  EXPECT_EQ(docs_.paragraphsOf("d")[0], "FIRST");
  EXPECT_EQ(post("doc=d&op=delete&para=0"), 200);
  ASSERT_EQ(docs_.paragraphsOf("d").size(), 1u);
  EXPECT_EQ(docs_.textOf("d"), "second");
  EXPECT_EQ(post("doc=d&op=delete&para=9"), 400);
  EXPECT_EQ(post("doc=d&op=wat&para=0"), 400);
  EXPECT_EQ(post("op=set&para=0&text=x"), 400);  // missing doc id
}

TEST_F(CloudTest, DocsBackendSetBeyondEndExtends) {
  browser::HttpRequest req;
  req.url = "https://docs.google.com/mutate";
  req.body = "doc=d&op=set&para=2&text=third";
  network_.handle(req);
  EXPECT_EQ(docs_.paragraphsOf("d").size(), 3u);
}

TEST_F(CloudTest, FormBackendStoresByTitle) {
  browser::HttpRequest req;
  req.url = "https://wiki.corp/wiki/save";
  req.method = "POST";
  req.body = "title=Page+One&content=the+body+text&csrf=tok";
  EXPECT_EQ(network_.handle(req).status, 200);
  EXPECT_EQ(wiki_.contentOf("wiki/save/Page One"), "the body text");
  EXPECT_EQ(wiki_.postCount(), 1u);
}

TEST_F(CloudTest, FormBackendGetReturnsContent) {
  browser::HttpRequest post;
  post.url = "https://wiki.corp/pages";
  post.method = "POST";
  post.body = "title=X&content=hello";
  network_.handle(post);
  browser::HttpRequest get;
  get.method = "GET";
  get.url = "https://wiki.corp/pages/X";
  EXPECT_EQ(network_.handle(get).body, "hello");
}

// ---- Clients driving a real Page --------------------------------------------

TEST_F(CloudTest, DocsClientEditsDomAndUploads) {
  browser::Page page("https://docs.google.com/d/doc1", &network_);
  DocsClient client(page, "doc1");
  client.openDocument();
  ASSERT_NE(client.editorRoot(), nullptr);

  EXPECT_EQ(client.insertParagraph(0, "hello world"), 200);
  EXPECT_EQ(client.paragraphCount(), 1u);
  EXPECT_EQ(client.paragraphText(0), "hello world");
  EXPECT_EQ(docs_.paragraphsOf("doc1").size(), 1u);
  EXPECT_EQ(docs_.paragraphsOf("doc1")[0], "hello world");

  EXPECT_EQ(client.setParagraph(0, "rewritten"), 200);
  EXPECT_EQ(docs_.paragraphsOf("doc1")[0], "rewritten");

  EXPECT_EQ(client.typeChar(0, '!'), 200);
  EXPECT_EQ(docs_.paragraphsOf("doc1")[0], "rewritten!");

  EXPECT_EQ(client.deleteParagraph(0), 200);
  EXPECT_EQ(client.paragraphCount(), 0u);
  EXPECT_TRUE(docs_.paragraphsOf("doc1").empty());
}

TEST_F(CloudTest, DocsClientTypeTextIsPerKeystroke) {
  browser::Page page("https://docs.google.com/d/doc2", &network_);
  DocsClient client(page, "doc2");
  client.openDocument();
  client.insertParagraph(0, "");
  network_.clearLog();
  client.typeText(0, "abc");
  // One mutation upload per keystroke (paper S5.2).
  EXPECT_EQ(network_.log().size(), 3u);
  EXPECT_EQ(docs_.paragraphsOf("doc2")[0], "abc");
}

TEST_F(CloudTest, DocsClientPasteDocument) {
  browser::Page page("https://docs.google.com/d/doc3", &network_);
  DocsClient client(page, "doc3");
  client.openDocument();
  client.pasteDocument("para one\n\npara two\n\npara three");
  EXPECT_EQ(client.paragraphCount(), 3u);
  EXPECT_EQ(docs_.paragraphsOf("doc3").size(), 3u);
}

TEST_F(CloudTest, WikiClientSavesThroughForm) {
  browser::Page page("https://wiki.corp/edit/guidelines", &network_);
  WikiClient client(page, "guidelines");
  client.openEditor("initial content goes here");
  EXPECT_EQ(client.content(), "initial content goes here");
  client.setContent("updated content");
  EXPECT_EQ(client.save(), 200);
  EXPECT_EQ(wiki_.contentOf("wiki/save/guidelines"), "updated content");
}

TEST_F(CloudTest, WikiClientFormHasHiddenToken) {
  browser::Page page("https://wiki.corp/edit/p", &network_);
  WikiClient client(page, "p");
  client.openEditor();
  const auto hidden = browser::formInputs(client.form());
  bool foundHidden = false;
  for (auto* n : hidden) {
    if (n->attribute("type") == "hidden") foundHidden = true;
  }
  EXPECT_TRUE(foundHidden);
}

}  // namespace
}  // namespace bf::cloud
