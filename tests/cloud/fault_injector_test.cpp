// Tests for the FaultInjector decorator and the transport retry loop it is
// designed to exercise: response classification, scheduled/burst/probabilistic
// faults, and the interaction with sendWithRetry's idempotency rules.
#include <gtest/gtest.h>

#include <vector>

#include "cloud/fault_injector.h"
#include "cloud/transport.h"
#include "obs/metrics.h"

namespace bf::cloud {
namespace {

/// Inner sink that records every request it actually receives and answers
/// 200 with a fixed body — the "healthy backend" under the injector.
class RecordingSink final : public browser::RequestSink {
 public:
  browser::HttpResponse handle(const browser::HttpRequest& req) override {
    received.push_back(req);
    return {200, body};
  }
  std::vector<browser::HttpRequest> received;
  std::string body = "saved: 8 paragraphs";
};

browser::HttpRequest requestTo(const std::string& origin) {
  browser::HttpRequest req;
  req.url = origin + "/api/save";
  req.body = "payload";
  return req;
}

// ---- classification ----------------------------------------------------------

TEST(ClassifyResponse, TaxonomyTable) {
  EXPECT_EQ(classifyResponse(200, "ok"), SendOutcome::kSuccess);
  EXPECT_EQ(classifyResponse(204, ""), SendOutcome::kSuccess);
  EXPECT_EQ(classifyResponse(503, "bf-fault: 503 upstream unavailable"),
            SendOutcome::kRetryable);
  EXPECT_EQ(classifyResponse(500, "oops"), SendOutcome::kRetryable);
  EXPECT_EQ(classifyResponse(0, std::string(kFaultRefusedBody)),
            SendOutcome::kRetryable);
  EXPECT_EQ(classifyResponse(0, std::string(kFaultResetBody)),
            SendOutcome::kRetryIfIdempotent);
  EXPECT_EQ(classifyResponse(0, std::string(kFaultTimeoutBody)),
            SendOutcome::kRetryIfIdempotent);
  // A plain status 0 is the plug-in suppressing a form submission — a
  // policy decision, never retried.
  EXPECT_EQ(classifyResponse(0, ""), SendOutcome::kFatal);
  // 4xx: the request itself is wrong (or an XHR policy block's 403).
  EXPECT_EQ(classifyResponse(403, "blocked by BrowserFlow"),
            SendOutcome::kFatal);
  EXPECT_EQ(classifyResponse(400, "bad request"), SendOutcome::kFatal);
}

// ---- scheduled faults --------------------------------------------------------

TEST(FaultInjector, FailNextSchedulesExactSequence) {
  RecordingSink sink;
  FaultInjector injector(&sink, /*seed=*/1);
  injector.failNext("https://a.example", 2, FaultKind::kHttp5xx);
  injector.failNext("https://a.example", 1, FaultKind::kRefused);

  EXPECT_EQ(injector.handle(requestTo("https://a.example")).status, 503);
  EXPECT_EQ(injector.handle(requestTo("https://a.example")).status, 503);
  const browser::HttpResponse refused =
      injector.handle(requestTo("https://a.example"));
  EXPECT_EQ(refused.status, 0);
  EXPECT_EQ(refused.body, kFaultRefusedBody);
  // Schedule drained: the healthy backend answers again.
  EXPECT_EQ(injector.handle(requestTo("https://a.example")).status, 200);
  // Pre-dispatch faults never reached the inner sink.
  EXPECT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(injector.faultCount(), 3u);
}

TEST(FaultInjector, SchedulesArePerOrigin) {
  RecordingSink sink;
  FaultInjector injector(&sink, 1);
  injector.failNext("https://a.example", 1, FaultKind::kRefused);
  EXPECT_EQ(injector.handle(requestTo("https://b.example")).status, 200);
  EXPECT_EQ(injector.handle(requestTo("https://a.example")).status, 0);
}

TEST(FaultInjector, ResetAndTimeoutDispatchBeforeLosingResponse) {
  RecordingSink sink;
  FaultInjector injector(&sink, 1);
  injector.failNext("https://a.example", 1, FaultKind::kReset);
  injector.failNext("https://a.example", 1, FaultKind::kTimeout);

  const browser::HttpResponse reset =
      injector.handle(requestTo("https://a.example"));
  EXPECT_EQ(reset.status, 0);
  EXPECT_EQ(reset.body, kFaultResetBody);
  const browser::HttpResponse timeout =
      injector.handle(requestTo("https://a.example"));
  EXPECT_EQ(timeout.status, 0);
  EXPECT_EQ(timeout.body, kFaultTimeoutBody);
  // Post-dispatch faults: the backend DID process both requests.
  EXPECT_EQ(sink.received.size(), 2u);
}

TEST(FaultInjector, TruncateHalvesBodyAndKeepsStatus) {
  RecordingSink sink;
  FaultInjector injector(&sink, 1);
  injector.failNext("https://a.example", 1, FaultKind::kTruncate);
  const browser::HttpResponse resp =
      injector.handle(requestTo("https://a.example"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, sink.body.substr(0, sink.body.size() / 2));
}

TEST(FaultInjector, CorruptFlipsBytesAndKeepsStatusAndLength) {
  RecordingSink sink;
  FaultInjector injector(&sink, 1);
  injector.failNext("https://a.example", 1, FaultKind::kCorrupt);
  const browser::HttpResponse resp =
      injector.handle(requestTo("https://a.example"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), sink.body.size());
  EXPECT_NE(resp.body, sink.body);
}

TEST(FaultInjector, Http5xxBurstKeepsFailing) {
  RecordingSink sink;
  FaultConfig config;
  config.http5xxBurst = 3;
  FaultInjector injector(&sink, 1, config);
  injector.failNext("https://a.example", 1, FaultKind::kHttp5xx);
  // The scheduled 503 opens a burst: two more requests fail before the
  // origin recovers.
  EXPECT_EQ(injector.handle(requestTo("https://a.example")).status, 503);
  EXPECT_EQ(injector.handle(requestTo("https://a.example")).status, 503);
  EXPECT_EQ(injector.handle(requestTo("https://a.example")).status, 503);
  EXPECT_EQ(injector.handle(requestTo("https://a.example")).status, 200);
}

// ---- probabilistic faults ----------------------------------------------------

TEST(FaultInjector, SeededSamplingIsDeterministic) {
  RecordingSink sinkA, sinkB;
  const FaultConfig config = FaultConfig::uniformRate(0.5);
  FaultInjector a(&sinkA, 99, config);
  FaultInjector b(&sinkB, 99, config);
  for (int i = 0; i < 50; ++i) {
    const browser::HttpResponse ra = a.handle(requestTo("https://a.example"));
    const browser::HttpResponse rb = b.handle(requestTo("https://a.example"));
    EXPECT_EQ(ra.status, rb.status) << "request " << i;
    EXPECT_EQ(ra.body, rb.body) << "request " << i;
  }
  EXPECT_EQ(a.faultCount(), b.faultCount());
  EXPECT_GT(a.faultCount(), 0u) << "a 50% rate over 50 requests must fire";
}

TEST(FaultInjector, PerOriginOverrideBeatsDefaults) {
  RecordingSink sink;
  FaultInjector injector(&sink, 7, FaultConfig::uniformRate(1.0));
  injector.setOriginFaults("https://quiet.example", FaultConfig{});
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(injector.handle(requestTo("https://quiet.example")).status, 200);
  }
  // Other origins still use the (always-faulting) defaults.
  EXPECT_NE(injector.handle(requestTo("https://loud.example")).status, 200);
}

// ---- retry loop against the injector ----------------------------------------

TEST(TransportRetry, RetriesThroughFaultBurstToSuccess) {
  RecordingSink sink;
  FaultInjector injector(&sink, 1);
  injector.failNext("https://a.example", 2, FaultKind::kHttp5xx);

  util::RetryPolicy policy;
  policy.maxAttempts = 5;
  util::Rng rng(11);
  const TransportResult result = sendWithRetry(
      [&] { return injector.handle(requestTo("https://a.example")); }, policy,
      &rng, nullptr, /*idempotent=*/true);
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_FALSE(result.exhausted);
  EXPECT_GT(result.backoffMs, 0.0);
}

TEST(TransportRetry, NonIdempotentStopsAfterPostDispatchFault) {
  RecordingSink sink;
  FaultInjector injector(&sink, 1);
  injector.failNext("https://a.example", 1, FaultKind::kReset);

  util::RetryPolicy policy;
  policy.maxAttempts = 5;
  util::Rng rng(11);
  const TransportResult result = sendWithRetry(
      [&] { return injector.handle(requestTo("https://a.example")); }, policy,
      &rng, nullptr, /*idempotent=*/false);
  // The backend may have applied the mutation; a blind replay could
  // duplicate it, so the client surfaces the fault after ONE attempt.
  EXPECT_EQ(result.response.status, 0);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST(TransportRetry, IdempotentReplaysPostDispatchFault) {
  RecordingSink sink;
  FaultInjector injector(&sink, 1);
  injector.failNext("https://a.example", 1, FaultKind::kReset);

  util::RetryPolicy policy;
  policy.maxAttempts = 5;
  util::Rng rng(11);
  const TransportResult result = sendWithRetry(
      [&] { return injector.handle(requestTo("https://a.example")); }, policy,
      &rng, nullptr, /*idempotent=*/true);
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(sink.received.size(), 2u) << "original + replay both dispatched";
}

TEST(TransportRetry, AttemptCapExhausts) {
  RecordingSink sink;
  FaultInjector injector(&sink, 1);
  injector.failNext("https://a.example", 10, FaultKind::kHttp5xx);

  util::RetryPolicy policy;
  policy.maxAttempts = 3;
  util::Rng rng(11);
  const TransportResult result = sendWithRetry(
      [&] { return injector.handle(requestTo("https://a.example")); }, policy,
      &rng, nullptr, /*idempotent=*/true);
  EXPECT_EQ(result.response.status, 503);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_TRUE(result.exhausted);
}

TEST(TransportRetry, EmptyBudgetDegradesToSingleAttempt) {
  RecordingSink sink;
  FaultInjector injector(&sink, 1);
  injector.failNext("https://a.example", 10, FaultKind::kHttp5xx);

  util::RetryPolicy policy;
  policy.maxAttempts = 5;
  util::Rng rng(11);
  util::RetryBudget budget(0.0);
  const TransportResult result = sendWithRetry(
      [&] { return injector.handle(requestTo("https://a.example")); }, policy,
      &rng, &budget, /*idempotent=*/true);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_TRUE(result.exhausted);
}

TEST(TransportRetry, DeadlineBoundsAccumulatedBackoff) {
  RecordingSink sink;
  FaultInjector injector(&sink, 1);
  injector.failNext("https://a.example", 10, FaultKind::kHttp5xx);

  util::RetryPolicy policy;
  policy.maxAttempts = 100;
  policy.baseDelayMs = 50.0;
  policy.deadlineMs = 120.0;  // room for at most two 50ms-or-more delays
  util::Rng rng(11);
  const TransportResult result = sendWithRetry(
      [&] { return injector.handle(requestTo("https://a.example")); }, policy,
      &rng, nullptr, /*idempotent=*/true);
  EXPECT_TRUE(result.exhausted);
  EXPECT_LE(result.backoffMs, policy.deadlineMs);
  EXPECT_LT(result.attempts, 5);
}

TEST(TransportRetry, MetricsAdvance) {
  const std::uint64_t before =
      obs::registry().counter("bf_retry_attempts_total").value();
  RecordingSink sink;
  FaultInjector injector(&sink, 1);
  injector.failNext("https://a.example", 1, FaultKind::kHttp5xx);
  util::RetryPolicy policy;
  util::Rng rng(11);
  sendWithRetry([&] { return injector.handle(requestTo("https://a.example")); },
                policy, &rng, nullptr, /*idempotent=*/true);
  EXPECT_EQ(obs::registry().counter("bf_retry_attempts_total").value(),
            before + 2);
}

}  // namespace
}  // namespace bf::cloud
