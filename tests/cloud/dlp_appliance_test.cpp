// Tests for the network-DLP baseline appliance.
#include <gtest/gtest.h>

#include "browser/forms.h"
#include "cloud/dlp_appliance.h"
#include "corpus/text_generator.h"

namespace bf::cloud {
namespace {

class CountingSink final : public browser::RequestSink {
 public:
  browser::HttpResponse handle(const browser::HttpRequest&) override {
    ++count;
    return {200, "ok"};
  }
  int count = 0;
};

class DlpApplianceTest : public ::testing::Test {
 protected:
  DlpApplianceTest() : rng_(5), gen_(&rng_) {}
  util::Rng rng_;
  corpus::TextGenerator gen_;
};

TEST_F(DlpApplianceTest, ExactChunksDetectVerbatim) {
  DlpAppliance::Config cfg;
  cfg.mode = DlpAppliance::Mode::kExactChunks;
  DlpAppliance dlp(nullptr, cfg);
  const std::string doc = gen_.paragraph(6, 8);
  dlp.registerSensitiveDocument(doc);
  EXPECT_TRUE(dlp.inspectText(doc));
  EXPECT_TRUE(dlp.inspectText("prefix " + doc + " suffix"));
  EXPECT_FALSE(dlp.inspectText(gen_.paragraph(6, 8)));
}

TEST_F(DlpApplianceTest, ExactChunksMatchAnyAlignment) {
  DlpAppliance::Config cfg;
  cfg.mode = DlpAppliance::Mode::kExactChunks;
  DlpAppliance dlp(nullptr, cfg);
  const std::string doc = gen_.paragraph(8, 10);
  dlp.registerSensitiveDocument(doc);
  // A mid-document excerpt, shifted arbitrarily.
  EXPECT_TRUE(dlp.inspectText("x " + doc.substr(37, 200)));
}

TEST_F(DlpApplianceTest, ExactChunksNormalize) {
  DlpAppliance::Config cfg;
  cfg.mode = DlpAppliance::Mode::kExactChunks;
  DlpAppliance dlp(nullptr, cfg);
  const std::string doc = gen_.paragraph(6, 8);
  dlp.registerSensitiveDocument(doc);
  std::string shouty = doc;
  for (char& c : shouty) c = static_cast<char>(std::toupper(c));
  EXPECT_TRUE(dlp.inspectText(shouty));
}

TEST_F(DlpApplianceTest, FingerprintModeThreshold) {
  DlpAppliance::Config cfg;
  cfg.mode = DlpAppliance::Mode::kFingerprint;
  cfg.threshold = 0.5;
  DlpAppliance dlp(nullptr, cfg);
  const std::string doc = gen_.paragraph(8, 10);
  dlp.registerSensitiveDocument(doc);
  EXPECT_TRUE(dlp.inspectText(doc));
  // A small slice stays below 50% containment.
  EXPECT_FALSE(dlp.inspectText(doc.substr(0, 70)));
  EXPECT_FALSE(dlp.inspectText(gen_.paragraph(8, 10)));
}

TEST_F(DlpApplianceTest, HandleInspectsAndForwards) {
  CountingSink sink;
  DlpAppliance::Config cfg;
  cfg.mode = DlpAppliance::Mode::kExactChunks;
  DlpAppliance dlp(&sink, cfg);
  const std::string doc = gen_.paragraph(6, 8);
  dlp.registerSensitiveDocument(doc);

  browser::HttpRequest leak;
  leak.url = "https://x.example/post";
  leak.body = "content=" + browser::urlEncodeComponent(doc);
  EXPECT_EQ(dlp.handle(leak).status, 200);
  EXPECT_EQ(sink.count, 1);  // baseline is advisory: traffic still flows
  EXPECT_EQ(dlp.flaggedCount(), 1u);

  browser::HttpRequest clean;
  clean.url = "https://x.example/post";
  clean.body = "content=" + browser::urlEncodeComponent(gen_.paragraph(6, 8));
  dlp.handle(clean);
  EXPECT_EQ(dlp.flaggedCount(), 1u);
  EXPECT_EQ(dlp.inspectedCount(), 2u);
}

TEST_F(DlpApplianceTest, TlsTrafficIsOpaque) {
  CountingSink sink;
  DlpAppliance::Config cfg;
  cfg.mode = DlpAppliance::Mode::kExactChunks;
  cfg.trafficEncrypted = true;
  DlpAppliance dlp(&sink, cfg);
  const std::string doc = gen_.paragraph(6, 8);
  dlp.registerSensitiveDocument(doc);
  browser::HttpRequest leak;
  leak.body = "content=" + browser::urlEncodeComponent(doc);
  dlp.handle(leak);
  EXPECT_EQ(dlp.flaggedCount(), 0u) << "appliance must be blind to TLS";
  EXPECT_EQ(sink.count, 1);
}

TEST_F(DlpApplianceTest, ShortDocumentsIgnoredByChunker) {
  DlpAppliance::Config cfg;
  cfg.mode = DlpAppliance::Mode::kExactChunks;
  DlpAppliance dlp(nullptr, cfg);
  dlp.registerSensitiveDocument("too short");
  EXPECT_FALSE(dlp.inspectText("too short"));
}

TEST_F(DlpApplianceTest, ResetCounters) {
  CountingSink sink;
  DlpAppliance dlp(&sink, DlpAppliance::Config{});
  browser::HttpRequest req;
  req.body = "a=b";
  dlp.handle(req);
  dlp.resetCounters();
  EXPECT_EQ(dlp.inspectedCount(), 0u);
  EXPECT_EQ(dlp.flaggedCount(), 0u);
}

}  // namespace
}  // namespace bf::cloud
