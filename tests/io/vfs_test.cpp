// Tests for the bf::io VFS seam: PosixVfs round-trips against the real
// filesystem, and FaultVfs injects exactly the faults its schedules and
// probabilities describe (the storage counterpart of
// cloud/fault_injector_test.cpp).
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "io/fault_vfs.h"
#include "io/vfs.h"
#include "obs/metrics.h"

namespace bf::io {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  VfsTest() {
    dir_ = "/tmp/bf_vfs_test_" +
           std::to_string(static_cast<long>(::getpid())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::string cmd = "rm -rf '" + dir_ + "'";
    (void)std::system(cmd.c_str());
    ::mkdir(dir_.c_str(), 0755);
  }

  ~VfsTest() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    (void)std::system(cmd.c_str());
  }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(VfsTest, PosixRoundTrip) {
  Vfs& vfs = defaultVfs();
  auto file = vfs.openForWrite(path("a.bin"));
  ASSERT_NE(file, nullptr);
  const WriteResult w = file->write("hello ");
  EXPECT_TRUE(w.ok);
  EXPECT_EQ(w.written, 6u);
  EXPECT_TRUE(file->write("world").ok);
  EXPECT_TRUE(file->sync());
  EXPECT_TRUE(file->close());
  EXPECT_TRUE(file->close());  // idempotent

  auto read = vfs.readFile(path("a.bin"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "hello world");
  EXPECT_EQ(vfs.fileSize(path("a.bin")), 11u);
}

TEST_F(VfsTest, PosixRenameRemoveListDir) {
  Vfs& vfs = defaultVfs();
  {
    auto f = vfs.openForWrite(path("from.tmp"));
    ASSERT_NE(f, nullptr);
    ASSERT_TRUE(f->write("x").ok);
    ASSERT_TRUE(f->close());
  }
  EXPECT_TRUE(vfs.rename(path("from.tmp"), path("to.bin")));
  EXPECT_FALSE(vfs.readFile(path("from.tmp")).ok());
  EXPECT_TRUE(vfs.readFile(path("to.bin")).ok());

  std::vector<std::string> names = vfs.listDir(dir_);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "to.bin");

  EXPECT_TRUE(vfs.remove(path("to.bin")));
  EXPECT_TRUE(vfs.listDir(dir_).empty());
  EXPECT_EQ(vfs.fileSize(path("to.bin")), 0u);  // missing → 0
}

TEST_F(VfsTest, PosixMkdirIsIdempotent) {
  Vfs& vfs = defaultVfs();
  const std::string sub = path("sub");
  EXPECT_TRUE(vfs.mkdir(sub));
  EXPECT_TRUE(vfs.mkdir(sub));  // EEXIST is success
  vfs.syncDir(sub);             // best-effort, must not crash
}

TEST_F(VfsTest, PosixOpenForWriteFailsOnBadPath) {
  Vfs& vfs = defaultVfs();
  EXPECT_EQ(vfs.openForWrite(path("missing-dir/f.bin")), nullptr);
  EXPECT_FALSE(vfs.readFile(path("nope.bin")).ok());
}

TEST_F(VfsTest, FaultEnospcFailsWriteWithNothingLanded) {
  FaultVfs fault(&defaultVfs(), /*seed=*/1);
  fault.failNext(".bfw", 1, StorageFaultKind::kEnospc);
  auto f = fault.openForWrite(path("seg.bfw"));
  ASSERT_NE(f, nullptr);
  const WriteResult w = f->write("0123456789");
  EXPECT_FALSE(w.ok);
  EXPECT_EQ(w.written, 0u);
  ASSERT_TRUE(f->close());
  EXPECT_EQ(defaultVfs().fileSize(path("seg.bfw")), 0u);
  // The schedule is consumed: the next write succeeds.
  auto f2 = fault.openForWrite(path("seg.bfw"));
  ASSERT_NE(f2, nullptr);
  EXPECT_TRUE(f2->write("0123456789").ok);
  EXPECT_EQ(fault.faultCount(), 1u);
}

TEST_F(VfsTest, FaultShortWriteLandsStrictPrefixAndReportsFailure) {
  FaultVfs fault(&defaultVfs(), /*seed=*/2);
  fault.failNext("seg", 1, StorageFaultKind::kShortWrite);
  auto f = fault.openForWrite(path("seg.bfw"));
  ASSERT_NE(f, nullptr);
  const std::string data(64, 'A');
  const WriteResult w = f->write(data);
  EXPECT_FALSE(w.ok);
  EXPECT_LT(w.written, data.size());
  ASSERT_TRUE(f->sync());
  const std::uint64_t onDisk = defaultVfs().fileSize(path("seg.bfw"));
  EXPECT_EQ(onDisk, w.written);  // honest about what landed
  EXPECT_LT(onDisk, data.size());
}

TEST_F(VfsTest, FaultTornWriteLandsPrefixButClaimsSuccess) {
  FaultVfs fault(&defaultVfs(), /*seed=*/3);
  fault.failNext("seg", 1, StorageFaultKind::kTornWrite);
  auto f = fault.openForWrite(path("seg.bfw"));
  ASSERT_NE(f, nullptr);
  const std::string data(64, 'B');
  const WriteResult w = f->write(data);
  EXPECT_TRUE(w.ok);                  // the lie
  EXPECT_EQ(w.written, data.size());  // claims everything
  ASSERT_TRUE(f->sync());
  EXPECT_LT(defaultVfs().fileSize(path("seg.bfw")), data.size());
}

TEST_F(VfsTest, FaultFsyncScheduleIsNotBurnedByWrites) {
  FaultVfs fault(&defaultVfs(), /*seed=*/4);
  fault.failNext("seg", 1, StorageFaultKind::kFsyncFail);
  auto f = fault.openForWrite(path("seg.bfw"));
  ASSERT_NE(f, nullptr);
  // Writes pass through untouched; the queued fsync failure waits.
  EXPECT_TRUE(f->write("abc").ok);
  EXPECT_TRUE(f->write("def").ok);
  EXPECT_FALSE(f->sync());
  EXPECT_TRUE(f->sync());  // consumed
  EXPECT_EQ(defaultVfs().fileSize(path("seg.bfw")), 6u);  // data still landed
}

TEST_F(VfsTest, FaultOpenFailReturnsNull) {
  FaultVfs fault(&defaultVfs(), /*seed=*/5);
  fault.failNext(".tmp", 1, StorageFaultKind::kOpenFail);
  EXPECT_EQ(fault.openForWrite(path("snap.tmp")), nullptr);
  // Non-matching paths are unaffected, and the schedule is consumed.
  EXPECT_NE(fault.openForWrite(path("other.bin")), nullptr);
  EXPECT_NE(fault.openForWrite(path("snap.tmp")), nullptr);
}

TEST_F(VfsTest, FaultReadCorruptFlipsExactlyOneByte) {
  Vfs& posix = defaultVfs();
  {
    auto f = posix.openForWrite(path("blob.bin"));
    ASSERT_NE(f, nullptr);
    ASSERT_TRUE(f->write(std::string(128, 'Z')).ok);
    ASSERT_TRUE(f->close());
  }
  FaultVfs fault(&posix, /*seed=*/6);
  fault.failNext("blob", 1, StorageFaultKind::kReadCorrupt);
  auto corrupted = fault.readFile(path("blob.bin"));
  ASSERT_TRUE(corrupted.ok());
  const std::string& got = corrupted.value();
  ASSERT_EQ(got.size(), 128u);
  int diffs = 0;
  for (char c : got) {
    if (c != 'Z') ++diffs;
  }
  EXPECT_EQ(diffs, 1);
  // Clean read afterwards.
  auto clean = fault.readFile(path("blob.bin"));
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value(), std::string(128, 'Z'));
}

TEST_F(VfsTest, LongestMatchingPathOverrideWins) {
  FaultVfs fault(&defaultVfs(), /*seed=*/7,
                 StorageFaultConfig::uniformRate(1.0));  // default: always
  // The more specific override makes checkpoint temp files fault-free
  // even though ".bfc" (shorter) says always-fail.
  StorageFaultConfig always;
  always.enospcProb = 1.0;
  fault.setPathFaults(".bfc", always);
  fault.setPathFaults(".bfc.tmp", StorageFaultConfig{});

  auto safe = fault.openForWrite(path("checkpoint-0.bfc.tmp"));
  ASSERT_NE(safe, nullptr);
  EXPECT_TRUE(safe->write("ok").ok);

  auto doomed = fault.openForWrite(path("checkpoint-0.bfc"));
  ASSERT_NE(doomed, nullptr);
  EXPECT_FALSE(doomed->write("ok").ok);
}

TEST_F(VfsTest, UniformRateZeroInjectsNothing) {
  FaultVfs fault(&defaultVfs(), /*seed=*/8,
                 StorageFaultConfig::uniformRate(0.0));
  auto f = fault.openForWrite(path("quiet.bin"));
  ASSERT_NE(f, nullptr);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(f->write("0123456789").ok);
  }
  ASSERT_TRUE(f->sync());
  EXPECT_EQ(fault.faultCount(), 0u);
  EXPECT_EQ(defaultVfs().fileSize(path("quiet.bin")), 2000u);
}

TEST_F(VfsTest, UniformRateInjectsRoughlyThatFraction) {
  FaultVfs fault(&defaultVfs(), /*seed=*/9,
                 StorageFaultConfig::uniformRate(0.5));
  auto f = fault.openForWrite(path("noisy.bin"));
  ASSERT_NE(f, nullptr);
  const int kWrites = 400;
  for (int i = 0; i < kWrites; ++i) (void)f->write("0123456789");
  // ~50% of writes fault; allow a generous band for the seeded stream.
  EXPECT_GT(fault.faultCount(), static_cast<std::uint64_t>(kWrites) * 3 / 10);
  EXPECT_LT(fault.faultCount(), static_cast<std::uint64_t>(kWrites) * 7 / 10);
}

TEST_F(VfsTest, FaultMetricsCountInjections) {
  const auto before = obs::registry().snapshot();
  FaultVfs fault(&defaultVfs(), /*seed=*/10);
  fault.failNext("m.bin", 1, StorageFaultKind::kEnospc);
  fault.failNext("m.bin", 1, StorageFaultKind::kFsyncFail);
  auto f = fault.openForWrite(path("m.bin"));
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->write("x").ok);
  EXPECT_FALSE(f->sync());
  const auto delta = obs::registry().snapshot().diff(before);
  EXPECT_GE(delta.counterValue("bf_storage_fault_injected_total"), 2u);
  EXPECT_GE(delta.counterValue("bf_storage_fault_enospc_total"), 1u);
  EXPECT_GE(delta.counterValue("bf_storage_fault_fsync_fail_total"), 1u);
  EXPECT_GE(delta.counterValue("bf_storage_fault_ops_total"), 3u);
}

TEST_F(VfsTest, SameSeedSameFaultSequence) {
  auto run = [this](std::uint64_t seed) {
    FaultVfs fault(&defaultVfs(), seed, StorageFaultConfig::uniformRate(0.3));
    std::string pattern;
    auto f = fault.openForWrite(path("det.bin"));
    if (f == nullptr) return std::string("openfail");
    for (int i = 0; i < 100; ++i) {
      pattern += f->write("0123456789").ok ? '.' : 'X';
    }
    return pattern;
  };
  const std::string a = run(1234);
  const std::string b = run(1234);
  const std::string c = run(4321);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide
}

}  // namespace
}  // namespace bf::io
