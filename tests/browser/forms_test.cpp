// Tests for form helpers and urlencoded body round-tripping.
#include <gtest/gtest.h>

#include "browser/forms.h"
#include "browser/html_parser.h"

namespace bf::browser {
namespace {

Node* buildForm(Document& doc) {
  parseHtml(doc, R"(
    <form id="f" method="post" action="/wiki/save">
      <input type="text" name="title" value="Page One">
      <textarea name="content" value="the body"></textarea>
      <input type="hidden" name="csrf" value="tok123">
      <input type="text" value="unnamed, skipped">
    </form>)");
  return doc.root()->byId("f");
}

TEST(Forms, FormInputsFindsInputsAndTextareas) {
  Document doc;
  Node* form = buildForm(doc);
  EXPECT_EQ(formInputs(form).size(), 4u);
}

TEST(Forms, NonHiddenInputsExcludesHidden) {
  Document doc;
  Node* form = buildForm(doc);
  const auto visible = nonHiddenInputs(form);
  EXPECT_EQ(visible.size(), 3u);
  for (Node* n : visible) {
    EXPECT_NE(n->attribute("type"), "hidden");
  }
}

TEST(Forms, EncodeFormBodySkipsUnnamed) {
  Document doc;
  Node* form = buildForm(doc);
  const std::string body = encodeFormBody(form);
  EXPECT_NE(body.find("title=Page+One"), std::string::npos);
  EXPECT_NE(body.find("csrf=tok123"), std::string::npos);
  EXPECT_EQ(body.find("unnamed"), std::string::npos);
}

TEST(Forms, BuildFormRequestResolvesAction) {
  Document doc;
  Node* form = buildForm(doc);
  const HttpRequest req = buildFormRequest(form, "https://wiki.corp");
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.url, "https://wiki.corp/wiki/save");
  EXPECT_EQ(req.headers.at("content-type"),
            "application/x-www-form-urlencoded");
}

TEST(Forms, BuildFormRequestAbsoluteActionAndGet) {
  Document doc;
  parseHtml(doc,
            R"(<form id="f" method="get" action="https://x.com/s"></form>)");
  const HttpRequest req =
      buildFormRequest(doc.root()->byId("f"), "https://other.org");
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.url, "https://x.com/s");
}

TEST(Forms, SubmitEventPreventDefault) {
  Document doc;
  Node* form = buildForm(doc);
  SubmitEvent ev(form);
  EXPECT_FALSE(ev.defaultPrevented());
  ev.preventDefault();
  EXPECT_TRUE(ev.defaultPrevented());
  EXPECT_EQ(ev.form(), form);
}

TEST(Forms, UrlEncodeDecodeRoundTrip) {
  const std::string nasty = "a b&c=d%e\nf+g\xc3\xa9";
  EXPECT_EQ(urlDecodeComponent(urlEncodeComponent(nasty)), nasty);
}

TEST(Forms, ParseFormBody) {
  const auto pairs = parseFormBody("a=1&b=two+words&c=%26%3D&empty=");
  EXPECT_EQ(pairs.at("a"), "1");
  EXPECT_EQ(pairs.at("b"), "two words");
  EXPECT_EQ(pairs.at("c"), "&=");
  EXPECT_EQ(pairs.at("empty"), "");
}

TEST(Forms, ParseFormBodyKeyOnlyPair) {
  const auto pairs = parseFormBody("justkey&x=1");
  EXPECT_EQ(pairs.at("justkey"), "");
  EXPECT_EQ(pairs.at("x"), "1");
}

TEST(Forms, EncodeFormPairsRoundTrip) {
  std::map<std::string, std::string> pairs{
      {"doc", "d 1"}, {"text", "hello & goodbye"}};
  EXPECT_EQ(parseFormBody(encodeFormPairs(pairs)), pairs);
}

}  // namespace
}  // namespace bf::browser
