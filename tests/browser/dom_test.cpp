// Tests for the simulated DOM.
#include <gtest/gtest.h>

#include "browser/dom.h"

namespace bf::browser {
namespace {

TEST(Dom, RootIsHtmlElement) {
  Document doc;
  ASSERT_NE(doc.root(), nullptr);
  EXPECT_TRUE(doc.root()->isElement());
  EXPECT_EQ(doc.root()->tag(), "html");
}

TEST(Dom, TagsAreLowercased) {
  Document doc;
  auto e = doc.createElement("DIV");
  EXPECT_EQ(e->tag(), "div");
}

TEST(Dom, AppendAndRemoveChild) {
  Document doc;
  Node* div = doc.root()->appendChild(doc.createElement("div"));
  EXPECT_EQ(div->parent(), doc.root());
  EXPECT_EQ(doc.root()->children().size(), 1u);
  auto removed = doc.root()->removeChild(div);
  EXPECT_EQ(removed.get(), div);
  EXPECT_EQ(removed->parent(), nullptr);
  EXPECT_TRUE(doc.root()->children().empty());
}

TEST(Dom, InsertChildAtIndex) {
  Document doc;
  Node* a = doc.root()->appendChild(doc.createElement("a"));
  Node* c = doc.root()->appendChild(doc.createElement("c"));
  Node* b = doc.root()->insertChild(doc.createElement("b"), 1);
  ASSERT_EQ(doc.root()->children().size(), 3u);
  EXPECT_EQ(doc.root()->children()[0].get(), a);
  EXPECT_EQ(doc.root()->children()[1].get(), b);
  EXPECT_EQ(doc.root()->children()[2].get(), c);
}

TEST(Dom, InsertChildClampsIndex) {
  Document doc;
  Node* x = doc.root()->insertChild(doc.createElement("x"), 99);
  EXPECT_EQ(doc.root()->children().back().get(), x);
}

TEST(Dom, RemoveUnknownChildReturnsNull) {
  Document doc;
  auto orphan = doc.createElement("div");
  EXPECT_EQ(doc.root()->removeChild(orphan.get()), nullptr);
}

TEST(Dom, Attributes) {
  Document doc;
  auto e = doc.createElement("div");
  e->setAttribute("ID", "main");
  e->setAttribute("class", "article body");
  EXPECT_EQ(e->attribute("id"), "main");  // names case-folded
  EXPECT_EQ(e->id(), "main");
  EXPECT_EQ(e->className(), "article body");
  EXPECT_TRUE(e->hasAttribute("id"));
  EXPECT_FALSE(e->hasAttribute("href"));
  EXPECT_EQ(e->attribute("href"), "");
}

TEST(Dom, TextContentConcatenatesDescendants) {
  Document doc;
  Node* div = doc.root()->appendChild(doc.createElement("div"));
  div->appendChild(doc.createTextNode("hello"));
  Node* span = div->appendChild(doc.createElement("span"));
  span->appendChild(doc.createTextNode("world"));
  EXPECT_EQ(div->textContent(), "hello world");
}

TEST(Dom, SetTextChangesData) {
  Document doc;
  Node* t = doc.root()->appendChild(doc.createTextNode("old"));
  t->setText("new");
  EXPECT_EQ(t->text(), "new");
}

TEST(Dom, ElementsByTag) {
  Document doc;
  Node* div = doc.root()->appendChild(doc.createElement("div"));
  div->appendChild(doc.createElement("p"));
  Node* nested = div->appendChild(doc.createElement("section"));
  nested->appendChild(doc.createElement("p"));
  EXPECT_EQ(doc.root()->elementsByTag("p").size(), 2u);
  EXPECT_EQ(doc.root()->elementsByTag("P").size(), 2u);
  EXPECT_EQ(doc.root()->elementsByTag("table").size(), 0u);
}

TEST(Dom, ById) {
  Document doc;
  Node* div = doc.root()->appendChild(doc.createElement("div"));
  div->setAttribute("id", "target");
  EXPECT_EQ(doc.root()->byId("target"), div);
  EXPECT_EQ(doc.root()->byId("missing"), nullptr);
}

TEST(Dom, MutationDispatchOnAppend) {
  Document doc;
  std::vector<MutationRecord> seen;
  doc.addMutationSink([&](const MutationRecord& r) { seen.push_back(r); });
  Node* div = doc.root()->appendChild(doc.createElement("div"));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].type, MutationType::kChildList);
  EXPECT_EQ(seen[0].target, doc.root());
  ASSERT_EQ(seen[0].addedNodes.size(), 1u);
  EXPECT_EQ(seen[0].addedNodes[0], div);
}

TEST(Dom, MutationDispatchOnRemove) {
  Document doc;
  Node* div = doc.root()->appendChild(doc.createElement("div"));
  std::vector<MutationRecord> seen;
  doc.addMutationSink([&](const MutationRecord& r) { seen.push_back(r); });
  doc.root()->removeChild(div);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].removedNodes.size(), 1u);
}

TEST(Dom, MutationDispatchOnSetTextIncludesOldText) {
  Document doc;
  Node* t = doc.root()->appendChild(doc.createTextNode("before"));
  std::vector<MutationRecord> seen;
  doc.addMutationSink([&](const MutationRecord& r) { seen.push_back(r); });
  t->setText("after");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].type, MutationType::kCharacterData);
  EXPECT_EQ(seen[0].oldText, "before");
}

TEST(Dom, RemoveMutationSink) {
  Document doc;
  int count = 0;
  const std::size_t id =
      doc.addMutationSink([&](const MutationRecord&) { ++count; });
  doc.root()->appendChild(doc.createElement("div"));
  doc.removeMutationSink(id);
  doc.root()->appendChild(doc.createElement("div"));
  EXPECT_EQ(count, 1);
}

TEST(Dom, ForEachNodeVisitsPreOrder) {
  Document doc;
  Node* a = doc.root()->appendChild(doc.createElement("a"));
  a->appendChild(doc.createElement("b"));
  std::vector<std::string> tags;
  doc.root()->forEachNode([&](Node& n) {
    if (n.isElement()) tags.push_back(n.tag());
  });
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0], "html");
  EXPECT_EQ(tags[1], "a");
  EXPECT_EQ(tags[2], "b");
}

}  // namespace
}  // namespace bf::browser
