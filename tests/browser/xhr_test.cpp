// Tests for the XHR prototype-interception mechanism (paper S5.2) and the
// Page/Browser plumbing.
#include <gtest/gtest.h>

#include "browser/browser.h"

namespace bf::browser {
namespace {

/// Sink that records every request and answers 200.
class RecordingSink final : public RequestSink {
 public:
  HttpResponse handle(const HttpRequest& req) override {
    requests.push_back(req);
    return {200, "ok"};
  }
  std::vector<HttpRequest> requests;
};

TEST(Xhr, DefaultPrototypeForwardsToSink) {
  RecordingSink sink;
  Page page("https://svc.example/doc", &sink);
  Xhr xhr = page.newXhr();
  xhr.open("POST", "https://svc.example/save");
  xhr.setRequestHeader("x-test", "1");
  const HttpResponse resp = xhr.send("payload");
  EXPECT_EQ(resp.status, 200);
  ASSERT_EQ(sink.requests.size(), 1u);
  EXPECT_EQ(sink.requests[0].method, "POST");
  EXPECT_EQ(sink.requests[0].url, "https://svc.example/save");
  EXPECT_EQ(sink.requests[0].body, "payload");
  EXPECT_EQ(sink.requests[0].headers.at("x-test"), "1");
}

TEST(Xhr, PrototypePatchInterceptsAllInstances) {
  // The paper's trick: replace prototype.send once; every XHR the page
  // script creates afterwards dispatches through the wrapper.
  RecordingSink sink;
  Page page("https://svc.example/doc", &sink);
  auto original = page.xhrPrototype().send;
  int intercepted = 0;
  page.xhrPrototype().send = [&](Xhr& xhr,
                                 const HttpRequest& req) -> HttpResponse {
    ++intercepted;
    if (req.body == "blockme") return {403, "blocked"};
    return original(xhr, req);
  };

  Xhr a = page.newXhr();
  a.open("POST", "https://svc.example/save");
  EXPECT_EQ(a.send("fine").status, 200);

  Xhr b = page.newXhr();
  b.open("POST", "https://svc.example/save");
  EXPECT_EQ(b.send("blockme").status, 403);

  EXPECT_EQ(intercepted, 2);
  EXPECT_EQ(sink.requests.size(), 1u) << "blocked request must not reach sink";
}

TEST(Xhr, WrapperCanRewriteBody) {
  RecordingSink sink;
  Page page("https://svc.example/doc", &sink);
  auto original = page.xhrPrototype().send;
  page.xhrPrototype().send = [&](Xhr& xhr,
                                 const HttpRequest& req) -> HttpResponse {
    HttpRequest copy = req;
    copy.body = "SEALED(" + req.body + ")";
    return original(xhr, copy);
  };
  Xhr xhr = page.newXhr();
  xhr.open("POST", "https://svc.example/save");
  xhr.send("secret");
  ASSERT_EQ(sink.requests.size(), 1u);
  EXPECT_EQ(sink.requests[0].body, "SEALED(secret)");
}

TEST(Page, OriginDerivedFromUrl) {
  RecordingSink sink;
  Page page("https://docs.google.com/d/abc123", &sink);
  EXPECT_EQ(page.origin(), "https://docs.google.com");
  EXPECT_EQ(originOf("https://x.org"), "https://x.org");
  EXPECT_EQ(originOf("no-scheme"), "no-scheme");
}

TEST(Page, SubmitFormDispatchesListenersInOrder) {
  RecordingSink sink;
  Page page("https://wiki.corp/edit", &sink);
  page.loadHtml(R"(<form id="f" action="/save">
                     <input name="content" value="text"></form>)");
  Node* form = page.document().root()->byId("f");
  std::vector<int> order;
  page.addSubmitListener(form, [&](SubmitEvent&) { order.push_back(1); });
  page.addSubmitListener(form, [&](SubmitEvent&) { order.push_back(2); });
  const HttpResponse resp = page.submitForm(form);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sink.requests.size(), 1u);
}

TEST(Page, PreventDefaultSuppressesSubmission) {
  RecordingSink sink;
  Page page("https://wiki.corp/edit", &sink);
  page.loadHtml(R"(<form id="f" action="/save"></form>)");
  Node* form = page.document().root()->byId("f");
  bool secondRan = false;
  page.addSubmitListener(form, [&](SubmitEvent& ev) { ev.preventDefault(); });
  page.addSubmitListener(form, [&](SubmitEvent&) { secondRan = true; });
  const HttpResponse resp = page.submitForm(form);
  EXPECT_EQ(resp.status, 0);
  EXPECT_TRUE(sink.requests.empty());
  EXPECT_FALSE(secondRan) << "listeners after preventDefault are skipped";
}

TEST(Page, BypassingListenersSubmitsDirectly) {
  RecordingSink sink;
  Page page("https://wiki.corp/edit", &sink);
  page.loadHtml(R"(<form id="f" action="/save"></form>)");
  Node* form = page.document().root()->byId("f");
  page.addSubmitListener(form, [&](SubmitEvent& ev) { ev.preventDefault(); });
  const HttpResponse resp = page.submitFormBypassingListeners(form);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(sink.requests.size(), 1u);
}

TEST(Browser, ExtensionSeesEveryNewTab) {
  class CountingExtension final : public Extension {
   public:
    void onPageCreated(Page&) override { ++created; }
    void onPageClosing(Page&) override { ++closed; }
    int created = 0;
    int closed = 0;
  };
  RecordingSink sink;
  Browser browser(&sink);
  CountingExtension ext;
  browser.addExtension(&ext);
  Page& a = browser.openTab("https://a.example/");
  browser.openTab("https://b.example/");
  EXPECT_EQ(ext.created, 2);
  browser.closeTab(a);
  EXPECT_EQ(ext.closed, 1);
  EXPECT_EQ(browser.tabs().size(), 1u);
}

TEST(Page, FlushObserversDeliversToRegistered) {
  RecordingSink sink;
  Page page("https://a.example/", &sink);
  int batches = 0;
  MutationObserver obs(
      [&](const std::vector<MutationRecord>&) { ++batches; });
  obs.observe(page.document().root());
  page.registerObserver(&obs);
  page.document().root()->appendChild(page.document().createElement("div"));
  EXPECT_EQ(batches, 0);
  page.flushObservers();
  EXPECT_EQ(batches, 1);
  page.unregisterObserver(&obs);
  page.document().root()->appendChild(page.document().createElement("div"));
  page.flushObservers();
  EXPECT_EQ(batches, 1);
}

}  // namespace
}  // namespace bf::browser
