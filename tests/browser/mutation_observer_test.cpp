// Tests for MutationObserver — subtree filtering and batched delivery.
#include <gtest/gtest.h>

#include "browser/mutation_observer.h"

namespace bf::browser {
namespace {

TEST(MutationObserver, ObservesSubtreeOnly) {
  Document doc;
  Node* watched = doc.root()->appendChild(doc.createElement("div"));
  Node* other = doc.root()->appendChild(doc.createElement("div"));

  MutationObserver obs;
  obs.observe(watched);
  watched->appendChild(doc.createElement("span"));
  other->appendChild(doc.createElement("span"));

  const auto records = obs.takeRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].target, watched);
}

TEST(MutationObserver, DeepDescendantChangesAreSeen) {
  Document doc;
  Node* watched = doc.root()->appendChild(doc.createElement("div"));
  Node* inner = watched->appendChild(doc.createElement("p"));
  Node* text = inner->appendChild(doc.createTextNode("x"));

  MutationObserver obs;
  obs.observe(watched);
  (void)obs.takeRecords();  // drop setup records (none expected)
  text->setText("y");
  const auto records = obs.takeRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, MutationType::kCharacterData);
}

TEST(MutationObserver, TakeRecordsClearsQueue) {
  Document doc;
  MutationObserver obs;
  obs.observe(doc.root());
  doc.root()->appendChild(doc.createElement("div"));
  EXPECT_TRUE(obs.hasPendingRecords());
  EXPECT_EQ(obs.takeRecords().size(), 1u);
  EXPECT_FALSE(obs.hasPendingRecords());
  EXPECT_TRUE(obs.takeRecords().empty());
}

TEST(MutationObserver, FlushDeliversBatchToCallback) {
  Document doc;
  std::vector<std::size_t> batchSizes;
  MutationObserver obs([&](const std::vector<MutationRecord>& batch) {
    batchSizes.push_back(batch.size());
  });
  obs.observe(doc.root());
  doc.root()->appendChild(doc.createElement("a"));
  doc.root()->appendChild(doc.createElement("b"));
  EXPECT_TRUE(batchSizes.empty()) << "no delivery before flush";
  obs.flush();
  ASSERT_EQ(batchSizes.size(), 1u);
  EXPECT_EQ(batchSizes[0], 2u);
  obs.flush();  // empty queue: no callback
  EXPECT_EQ(batchSizes.size(), 1u);
}

TEST(MutationObserver, DisconnectStopsObservation) {
  Document doc;
  MutationObserver obs;
  obs.observe(doc.root());
  obs.disconnect();
  doc.root()->appendChild(doc.createElement("div"));
  EXPECT_FALSE(obs.hasPendingRecords());
}

TEST(MutationObserver, MultipleTargetsOneDocument) {
  Document doc;
  Node* a = doc.root()->appendChild(doc.createElement("div"));
  Node* b = doc.root()->appendChild(doc.createElement("div"));
  MutationObserver obs;
  obs.observe(a);
  obs.observe(b);
  a->appendChild(doc.createElement("x"));
  b->appendChild(doc.createElement("y"));
  EXPECT_EQ(obs.takeRecords().size(), 2u);
}

TEST(MutationObserver, ObserverCanBeAttachedDuringDispatch) {
  // A sink that subscribes another observer mid-dispatch must not crash
  // (Document copies its sink list before dispatch).
  Document doc;
  MutationObserver outer;
  std::unique_ptr<MutationObserver> late;
  MutationObserver trigger([&](const std::vector<MutationRecord>&) {});
  outer.observe(doc.root());
  doc.addMutationSink([&](const MutationRecord&) {
    if (!late) {
      late = std::make_unique<MutationObserver>();
      late->observe(doc.root());
    }
  });
  doc.root()->appendChild(doc.createElement("div"));
  EXPECT_TRUE(outer.hasPendingRecords());
}

}  // namespace
}  // namespace bf::browser
