// Tests for the HTML parser.
#include <gtest/gtest.h>

#include "browser/html_parser.h"

namespace bf::browser {
namespace {

TEST(HtmlParser, SimpleNesting) {
  Document doc;
  parseHtml(doc, "<div><p>hello</p></div>");
  const auto ps = doc.root()->elementsByTag("p");
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0]->textContent(), "hello");
  EXPECT_EQ(ps[0]->parent()->tag(), "div");
}

TEST(HtmlParser, AttributesQuotedAndBare) {
  Document doc;
  parseHtml(doc,
            R"(<div id="main" class='article body' data-x=42 hidden></div>)");
  Node* div = doc.root()->byId("main");
  ASSERT_NE(div, nullptr);
  EXPECT_EQ(div->className(), "article body");
  EXPECT_EQ(div->attribute("data-x"), "42");
  EXPECT_TRUE(div->hasAttribute("hidden"));
}

TEST(HtmlParser, VoidElementsDoNotNest) {
  Document doc;
  parseHtml(doc, "<p>one<br>two<img src=x>three</p>");
  const auto ps = doc.root()->elementsByTag("p");
  ASSERT_EQ(ps.size(), 1u);
  // br and img are siblings of the text, not containers swallowing it.
  EXPECT_EQ(ps[0]->textContent(), "one two three");
}

TEST(HtmlParser, SelfClosingTag) {
  Document doc;
  parseHtml(doc, "<div><widget/>text</div>");
  const auto divs = doc.root()->elementsByTag("div");
  ASSERT_EQ(divs.size(), 1u);
  EXPECT_EQ(divs[0]->textContent(), "text");
}

TEST(HtmlParser, CommentsAndDoctypeSkipped) {
  Document doc;
  parseHtml(doc, "<!DOCTYPE html><!-- secret comment --><p>visible</p>");
  EXPECT_EQ(doc.root()->textContent(), "visible");
}

TEST(HtmlParser, MisnestedTagsTolerated) {
  Document doc;
  parseHtml(doc, "<b><i>text</b></i><p>after</p>");
  EXPECT_EQ(doc.root()->elementsByTag("p").size(), 1u);
}

TEST(HtmlParser, WhitespaceOnlyTextDropped) {
  Document doc;
  parseHtml(doc, "<div>   \n\t  </div>");
  EXPECT_EQ(doc.root()->elementsByTag("div")[0]->children().size(), 0u);
}

TEST(HtmlParser, ReplacesPreviousContent) {
  Document doc;
  parseHtml(doc, "<p>first</p>");
  parseHtml(doc, "<p>second</p>");
  const auto ps = doc.root()->elementsByTag("p");
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0]->textContent(), "second");
}

TEST(HtmlParser, EntitiesDecodedInTextNodes) {
  Document doc;
  parseHtml(doc, "<p>Fish &amp; Chips &lt;3 &quot;quoted&quot; &#65;&#x42;</p>");
  EXPECT_EQ(doc.root()->textContent(), "Fish & Chips <3 \"quoted\" AB");
}

TEST(HtmlParser, UnknownAndMalformedEntitiesPassThrough) {
  Document doc;
  parseHtml(doc, "<p>&notreal; tea&coffee &#xZZ; 5&6; &;</p>");
  EXPECT_EQ(doc.root()->textContent(), "&notreal; tea&coffee &#xZZ; 5&6; &;");
}

TEST(HtmlParser, TypographicEntitiesBecomeUtf8) {
  Document doc;
  parseHtml(doc, "<p>wait&hellip; it&rsquo;s &mdash; fine</p>");
  const std::string text = doc.root()->textContent();
  EXPECT_NE(text.find("\xe2\x80\xa6"), std::string::npos);   // …
  EXPECT_NE(text.find("\xe2\x80\x99"), std::string::npos);   // ’
  EXPECT_NE(text.find("\xe2\x80\x94"), std::string::npos);   // —
}

TEST(DecodeHtmlEntities, DirectApi) {
  EXPECT_EQ(decodeHtmlEntities("a &amp; b"), "a & b");
  EXPECT_EQ(decodeHtmlEntities(""), "");
  EXPECT_EQ(decodeHtmlEntities("no entities"), "no entities");
  EXPECT_EQ(decodeHtmlEntities("&#0;"), "&#0;");  // NUL rejected
  EXPECT_EQ(decodeHtmlEntities("&#x110000;"), "&#x110000;");  // > max cp
  EXPECT_EQ(decodeHtmlEntities("trailing &"), "trailing &");
}

TEST(HtmlParser, BareSlashInsideTagDoesNotHang) {
  // Regression: a '/' inside a tag that is not part of "/>" used to make
  // the attribute loop spin forever (found by FuzzSmoke).
  Document doc;
  parseHtml(doc, "<div /x>text</div>");
  EXPECT_EQ(doc.root()->textContent(), "text");
  parseHtml(doc, "<div / >more</div>");
  EXPECT_EQ(doc.root()->textContent(), "more");
  parseHtml(doc, "<div //////>ok");
  EXPECT_EQ(doc.root()->textContent(), "ok");
}

TEST(HtmlParser, FormWithInputs) {
  Document doc;
  parseHtml(doc, R"(
    <form id="f" method="post" action="/save">
      <input type="text" name="title" value="My Page">
      <textarea name="content">body text</textarea>
      <input type="hidden" name="csrf" value="tok">
    </form>)");
  Node* form = doc.root()->byId("f");
  ASSERT_NE(form, nullptr);
  EXPECT_EQ(form->elementsByTag("input").size(), 2u);
  EXPECT_EQ(form->elementsByTag("textarea").size(), 1u);
}

TEST(HtmlParser, RealisticCmsPage) {
  Document doc;
  parseHtml(doc, R"(
    <html><body>
      <div id="nav"><a href="/">Home</a><a href="/about">About</a></div>
      <div id="content">
        <p>First paragraph of the article, with some commas, here.</p>
        <p>Second paragraph continues the prose.</p>
      </div>
      <div class="footer">copyright</div>
    </body></html>)");
  EXPECT_EQ(doc.root()->elementsByTag("p").size(), 2u);
  EXPECT_NE(doc.root()->byId("content"), nullptr);
}

}  // namespace
}  // namespace bf::browser
