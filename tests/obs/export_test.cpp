// bf::obs exposition: golden Prometheus text and JSON for a fixed registry.
#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "util/json_text.h"

namespace bf::obs {
namespace {

/// Small registry with one metric of each kind and known values.
MetricsSnapshot fixtureSnapshot() {
  MetricsRegistry reg;
  reg.counter("bf_test_requests_total", "Requests handled").inc(3);
  reg.gauge("bf_test_queue_depth", "Queue depth").set(2.5);
  Histogram& h = reg.histogram("bf_test_latency_ms", "Latency", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  return reg.snapshot();
}

TEST(Export, PrometheusTextGolden) {
  const std::string expected =
      "# HELP bf_test_latency_ms Latency\n"
      "# TYPE bf_test_latency_ms histogram\n"
      "bf_test_latency_ms_bucket{le=\"1\"} 1\n"
      "bf_test_latency_ms_bucket{le=\"2\"} 2\n"
      "bf_test_latency_ms_bucket{le=\"+Inf\"} 3\n"
      "bf_test_latency_ms_sum 11\n"
      "bf_test_latency_ms_count 3\n"
      "# HELP bf_test_queue_depth Queue depth\n"
      "# TYPE bf_test_queue_depth gauge\n"
      "bf_test_queue_depth 2.5\n"
      "# HELP bf_test_requests_total Requests handled\n"
      "# TYPE bf_test_requests_total counter\n"
      "bf_test_requests_total 3\n";
  EXPECT_EQ(toPrometheusText(fixtureSnapshot()), expected);
}

TEST(Export, JsonGolden) {
  const std::string expected =
      "{\"metrics\":["
      "{\"name\":\"bf_test_latency_ms\",\"kind\":\"histogram\","
      "\"help\":\"Latency\",\"count\":3,\"sum\":11,\"min\":0.5,\"max\":9,"
      "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":2,\"count\":1}],"
      "\"overflow\":1},"
      "{\"name\":\"bf_test_queue_depth\",\"kind\":\"gauge\","
      "\"help\":\"Queue depth\",\"value\":2.5},"
      "{\"name\":\"bf_test_requests_total\",\"kind\":\"counter\","
      "\"help\":\"Requests handled\",\"value\":3}"
      "]}";
  EXPECT_EQ(toJson(fixtureSnapshot()), expected);
}

TEST(Export, JsonStringFieldsScanBack) {
  // Round-trip through the repo's JSON field scanner: every name/kind/help
  // written by the exporter must scan back out in order.
  const std::string json = toJson(fixtureSnapshot());
  const auto fields = util::scanJsonStringFields(json);
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(fields.size());
  for (const auto& f : fields) pairs.emplace_back(f.key, f.value);
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"name", "bf_test_latency_ms"},   {"kind", "histogram"},
      {"help", "Latency"},              {"name", "bf_test_queue_depth"},
      {"kind", "gauge"},                {"help", "Queue depth"},
      {"name", "bf_test_requests_total"}, {"kind", "counter"},
      {"help", "Requests handled"},
  };
  EXPECT_EQ(pairs, expected);
}

TEST(Export, HelpIsOptional) {
  MetricsRegistry reg;
  reg.counter("bf_bare_total").inc(1);
  const std::string text = toPrometheusText(reg.snapshot());
  EXPECT_EQ(text,
            "# TYPE bf_bare_total counter\n"
            "bf_bare_total 1\n");
  EXPECT_EQ(toJson(reg.snapshot()),
            "{\"metrics\":[{\"name\":\"bf_bare_total\",\"kind\":\"counter\","
            "\"value\":1}]}");
}

TEST(Export, RegistryMetricsAppearInProcessWideExposition) {
  // The wired subsystems register their metrics on first use; touching the
  // process-wide registry here must yield a parseable exposition containing
  // them (smoke check that exposition and registry stay wired together).
  registry().counter("bf_export_smoke_total", "Smoke").inc();
  const std::string text = toPrometheusText(registry().snapshot());
  EXPECT_NE(text.find("# TYPE bf_export_smoke_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("bf_export_smoke_total 1"), std::string::npos);
}

}  // namespace
}  // namespace bf::obs
