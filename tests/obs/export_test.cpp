// bf::obs exposition: golden Prometheus text and JSON for a fixed registry.
#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "util/json_text.h"

namespace bf::obs {
namespace {

/// Small registry with one metric of each kind and known values.
MetricsSnapshot fixtureSnapshot() {
  MetricsRegistry reg;
  reg.counter("bf_test_requests_total", "Requests handled").inc(3);
  reg.gauge("bf_test_queue_depth", "Queue depth").set(2.5);
  Histogram& h = reg.histogram("bf_test_latency_ms", "Latency", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  return reg.snapshot();
}

TEST(Export, PrometheusTextGolden) {
  const std::string expected =
      "# HELP bf_test_latency_ms Latency\n"
      "# TYPE bf_test_latency_ms histogram\n"
      "bf_test_latency_ms_bucket{le=\"1\"} 1\n"
      "bf_test_latency_ms_bucket{le=\"2\"} 2\n"
      "bf_test_latency_ms_bucket{le=\"+Inf\"} 3\n"
      "bf_test_latency_ms_sum 11\n"
      "bf_test_latency_ms_count 3\n"
      "# HELP bf_test_queue_depth Queue depth\n"
      "# TYPE bf_test_queue_depth gauge\n"
      "bf_test_queue_depth 2.5\n"
      "# HELP bf_test_requests_total Requests handled\n"
      "# TYPE bf_test_requests_total counter\n"
      "bf_test_requests_total 3\n";
  EXPECT_EQ(toPrometheusText(fixtureSnapshot()), expected);
}

TEST(Export, JsonGolden) {
  const std::string expected =
      "{\"metrics\":["
      "{\"name\":\"bf_test_latency_ms\",\"kind\":\"histogram\","
      "\"help\":\"Latency\",\"count\":3,\"sum\":11,\"min\":0.5,\"max\":9,"
      "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":2,\"count\":1}],"
      "\"overflow\":1},"
      "{\"name\":\"bf_test_queue_depth\",\"kind\":\"gauge\","
      "\"help\":\"Queue depth\",\"value\":2.5},"
      "{\"name\":\"bf_test_requests_total\",\"kind\":\"counter\","
      "\"help\":\"Requests handled\",\"value\":3}"
      "]}";
  EXPECT_EQ(toJson(fixtureSnapshot()), expected);
}

TEST(Export, JsonStringFieldsScanBack) {
  // Round-trip through the repo's JSON field scanner: every name/kind/help
  // written by the exporter must scan back out in order.
  const std::string json = toJson(fixtureSnapshot());
  const auto fields = util::scanJsonStringFields(json);
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(fields.size());
  for (const auto& f : fields) pairs.emplace_back(f.key, f.value);
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"name", "bf_test_latency_ms"},   {"kind", "histogram"},
      {"help", "Latency"},              {"name", "bf_test_queue_depth"},
      {"kind", "gauge"},                {"help", "Queue depth"},
      {"name", "bf_test_requests_total"}, {"kind", "counter"},
      {"help", "Requests handled"},
  };
  EXPECT_EQ(pairs, expected);
}

TEST(Export, HelpIsOptional) {
  MetricsRegistry reg;
  reg.counter("bf_bare_total").inc(1);
  const std::string text = toPrometheusText(reg.snapshot());
  EXPECT_EQ(text,
            "# TYPE bf_bare_total counter\n"
            "bf_bare_total 1\n");
  EXPECT_EQ(toJson(reg.snapshot()),
            "{\"metrics\":[{\"name\":\"bf_bare_total\",\"kind\":\"counter\","
            "\"value\":1}]}");
}

TEST(Export, RegistryMetricsAppearInProcessWideExposition) {
  // The wired subsystems register their metrics on first use; touching the
  // process-wide registry here must yield a parseable exposition containing
  // them (smoke check that exposition and registry stay wired together).
  registry().counter("bf_export_smoke_total", "Smoke").inc();
  const std::string text = toPrometheusText(registry().snapshot());
  EXPECT_NE(text.find("# TYPE bf_export_smoke_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("bf_export_smoke_total 1"), std::string::npos);
}

TEST(Export, EscapeLabelValueGolden) {
  EXPECT_EQ(escapeLabelValue("plain"), "plain");
  EXPECT_EQ(escapeLabelValue("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escapeLabelValue("quo\"te"), "quo\\\"te");
  EXPECT_EQ(escapeLabelValue("new\nline"), "new\\nline");
  EXPECT_EQ(escapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
}

TEST(Export, EscapeHelpTextGolden) {
  // HELP lines escape backslash and newline but NOT quotes (Prometheus
  // exposition format: quotes are only special inside label values).
  EXPECT_EQ(escapeHelpText("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escapeHelpText("quo\"te"), "quo\"te");
  EXPECT_EQ(escapeHelpText("new\nline"), "new\\nline");
}

TEST(Export, HelpWithNewlineAndBackslashIsEscapedInExposition) {
  MetricsSnapshot snap;
  MetricValue m;
  m.name = "bf_esc_total";
  m.help = "first line\nC:\\path";
  m.kind = MetricKind::kCounter;
  m.counterValue = 1;
  snap.metrics.push_back(std::move(m));
  EXPECT_EQ(toPrometheusText(snap),
            "# HELP bf_esc_total first line\\nC:\\\\path\n"
            "# TYPE bf_esc_total counter\n"
            "bf_esc_total 1\n");
}

TEST(Export, EmptyBoundsHistogramStillEmitsInfBucket) {
  // A histogram with no finite buckets must still expose the mandatory
  // +Inf bucket (every observation is an overflow).
  MetricsSnapshot snap;
  MetricValue m;
  m.name = "bf_unbounded_ms";
  m.kind = MetricKind::kHistogram;
  m.histogram.bounds = {};
  m.histogram.bucketCounts = {5};  // overflow slot only
  m.histogram.count = 5;
  m.histogram.sum = 50.0;
  snap.metrics.push_back(std::move(m));
  EXPECT_EQ(toPrometheusText(snap),
            "# TYPE bf_unbounded_ms histogram\n"
            "bf_unbounded_ms_bucket{le=\"+Inf\"} 5\n"
            "bf_unbounded_ms_sum 50\n"
            "bf_unbounded_ms_count 5\n");
}

TEST(Export, InfBucketClampsUpToCountOnRacySnapshot) {
  // Relaxed per-bucket adds can lag the count add in a concurrent
  // snapshot; the +Inf line must never report less than _count, or
  // Prometheus clients reject the family as non-monotonic.
  MetricsSnapshot snap;
  MetricValue m;
  m.name = "bf_racy_ms";
  m.kind = MetricKind::kHistogram;
  m.histogram.bounds = {1.0};
  m.histogram.bucketCounts = {1, 0};  // bucket adds not yet visible
  m.histogram.count = 3;
  m.histogram.sum = 3.0;
  snap.metrics.push_back(std::move(m));
  const std::string text = toPrometheusText(snap);
  EXPECT_NE(text.find("bf_racy_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("bf_racy_ms_count 3\n"), std::string::npos);
}

TEST(Export, MetricOrderingIsStableRegardlessOfRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("bf_zzz_total").inc();
  reg.counter("bf_aaa_total").inc();
  reg.counter("bf_mmm_total").inc();
  const std::string text = toPrometheusText(reg.snapshot());
  const std::size_t a = text.find("bf_aaa_total");
  const std::size_t mPos = text.find("bf_mmm_total");
  const std::size_t z = text.find("bf_zzz_total");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(mPos, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, mPos);
  EXPECT_LT(mPos, z);
  // Re-snapshotting yields byte-identical output (stable ordering).
  EXPECT_EQ(toPrometheusText(reg.snapshot()), text);
}

TEST(Export, HistogramExemplarsAppearInJson) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("bf_exemplar_ms", "", {1.0, 2.0});
  h.observe(0.5);                     // no exemplar on this bucket
  h.observeWithExemplar(1.5, 77);     // bucket le=2
  h.observeWithExemplar(9.0, 88);     // overflow bucket
  const std::string json = toJson(reg.snapshot());
  EXPECT_EQ(json.find("{\"le\":1,\"count\":1}") == std::string::npos, false)
      << json;
  EXPECT_NE(json.find("{\"le\":2,\"count\":1,\"exemplar\":77}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"overflow\":1,\"overflow_exemplar\":88"),
            std::string::npos)
      << json;
}

TEST(Export, DecisionTraceJsonCarriesFullCausalRecord) {
  DecisionTrace t;
  t.decisionId = 9;
  t.traceId = 1234;
  t.spanId = 5;
  t.sampled = true;
  t.ingress = "plugin.paragraph";
  t.segmentName = "doc#p1";
  t.documentName = "doc";
  t.serviceId = "https://itool.corp";
  t.action = "block";
  t.violation = true;
  t.bytesScanned = 64;
  t.stages.nanos[static_cast<int>(Stage::kFingerprint)] = 1500;
  t.totalMs = 0.25;
  t.hits.push_back({"hr/interview.txt", 0.82, 0.3, 11});
  t.violatingTags = {"ti"};
  t.labelsConsulted = {"segment:ti", "privilege:public"};
  t.retryAttempts = 2;
  t.retryBackoffMs = 40.0;
  t.contentPreview = "We regretâ¦decision (64 chars)";
  const std::string json = toJson(t);
  EXPECT_NE(json.find("\"decision_id\":9"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"ingress\":\"plugin.paragraph\""), std::string::npos);
  EXPECT_NE(json.find("\"action\":\"block\""), std::string::npos);
  EXPECT_NE(json.find("\"violation\":true"), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint_ns\":1500"), std::string::npos);
  EXPECT_NE(json.find("{\"source\":\"hr/interview.txt\",\"score\":0.82,"
                      "\"threshold\":0.3,\"overlap\":11}"),
            std::string::npos);
  EXPECT_NE(json.find("\"violating_tags\":[\"ti\"]"), std::string::npos);
  EXPECT_NE(
      json.find("\"retry\":{\"attempts\":2,\"backoff_ms\":40,"
                "\"exhausted\":false}"),
      std::string::npos);
  EXPECT_NE(json.find("\"durability_degraded\":false"), std::string::npos);
  // The preview field carries ONLY the redacted form (sec::redact output).
  EXPECT_NE(
      json.find("\"content_preview\":\"We regretâ¦"
                "decision (64 chars)\""),
      std::string::npos);
}

TEST(Export, DecisionTraceJsonMarksDurabilityDegradedWindow) {
  DecisionTrace t;
  t.decisionId = 10;
  t.action = "allow";
  t.durabilityDegraded = true;
  const std::string json = toJson(t);
  EXPECT_NE(json.find("\"durability_degraded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":false"), std::string::npos);
}

TEST(Export, WalHealthMetricsGolden) {
  // The durability dashboard's two load-bearing series (DESIGN.md §13):
  // the health gauge (0 healthy / 1 degraded / 2 recovering) and the
  // cumulative records-lost counter. Pin their exposition shape.
  MetricsRegistry reg;
  reg.gauge("bf_wal_health",
            "Durability health (0 healthy, 1 degraded, 2 recovering)")
      .set(1.0);
  reg.counter("bf_wal_records_lost_total",
              "WAL records dropped while storage was failing")
      .inc(7);
  const std::string expected =
      "# HELP bf_wal_health Durability health (0 healthy, 1 degraded, 2 "
      "recovering)\n"
      "# TYPE bf_wal_health gauge\n"
      "bf_wal_health 1\n"
      "# HELP bf_wal_records_lost_total WAL records dropped while storage "
      "was failing\n"
      "# TYPE bf_wal_records_lost_total counter\n"
      "bf_wal_records_lost_total 7\n";
  EXPECT_EQ(toPrometheusText(reg.snapshot()), expected);
  const std::string expectedJson =
      "{\"metrics\":["
      "{\"name\":\"bf_wal_health\",\"kind\":\"gauge\","
      "\"help\":\"Durability health (0 healthy, 1 degraded, 2 recovering)\","
      "\"value\":1},"
      "{\"name\":\"bf_wal_records_lost_total\",\"kind\":\"counter\","
      "\"help\":\"WAL records dropped while storage was failing\","
      "\"value\":7}"
      "]}";
  EXPECT_EQ(toJson(reg.snapshot()), expectedJson);
}

TEST(Export, WalHealthSeriesAppearInProcessExposition) {
  // The real series registered by flow/wal.cpp must show up in the
  // process-wide exposition once a WAL exists. Registering here is
  // idempotent with wal.cpp's registration (create-or-get by name).
  registry().gauge("bf_wal_health",
                   "Durability health (0 healthy, 1 degraded, 2 recovering)");
  registry().counter("bf_wal_records_lost_total",
                     "WAL records dropped while storage was failing");
  const std::string text = toPrometheusText(registry().snapshot());
  EXPECT_NE(text.find("bf_wal_health "), std::string::npos);
  EXPECT_NE(text.find("bf_wal_records_lost_total "), std::string::npos);
}

TEST(Export, FlightRecorderJsonHasSchemaAndDecisions) {
  FlightRecorder recorder(4);
  DecisionTrace t;
  t.traceId = 1;
  t.sampled = true;
  t.ingress = "test";
  recorder.record(std::move(t));
  const std::string json = toJson(recorder);
  EXPECT_EQ(json.rfind("{\"schema\":\"bf-flight-v1\",\"decisions\":[", 0), 0u)
      << json;
  EXPECT_NE(json.find("\"ingress\":\"test\""), std::string::npos);
}

}  // namespace
}  // namespace bf::obs
