// bf::obs metrics: bucket semantics, quantile estimation, concurrency,
// registry create-or-get, snapshot diff.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace bf::obs {
namespace {

TEST(Counter, IncrementValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Gauge, SetAddValue) {
  Gauge g;
  g.set(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketUpperBoundsAreInclusive) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(1.0);  // exactly on a bound -> that bucket (le semantics)
  h.observe(1.5);
  h.observe(2.0);
  h.observe(5.0);
  h.observe(7.0);  // beyond the last bound -> overflow bucket
  const HistogramData d = h.data();
  ASSERT_EQ(d.bucketCounts.size(), 4u);
  EXPECT_EQ(d.bucketCounts[0], 1u);
  EXPECT_EQ(d.bucketCounts[1], 2u);
  EXPECT_EQ(d.bucketCounts[2], 1u);
  EXPECT_EQ(d.bucketCounts[3], 1u);
  EXPECT_EQ(d.count, 5u);
  EXPECT_DOUBLE_EQ(d.sum, 16.5);
  EXPECT_DOUBLE_EQ(d.min, 1.0);
  EXPECT_DOUBLE_EQ(d.max, 7.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.3);
}

TEST(HistogramTest, EmptyHistogramIsZeroEverywhere) {
  Histogram h({1.0});
  const HistogramData d = h.data();
  EXPECT_EQ(d.count, 0u);
  EXPECT_DOUBLE_EQ(d.min, 0.0);
  EXPECT_DOUBLE_EQ(d.max, 0.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(d.fractionBelow(1.0), 0.0);
}

TEST(HistogramTest, PercentileInterpolatesInsideBucket) {
  Histogram h({1.0, 2.0, 5.0});
  for (int i = 0; i < 10; ++i) h.observe(1.5);  // all land in (1, 2]
  const HistogramData d = h.data();
  // Rank interpolation inside the (1, 2] bucket: p50 at half the bucket.
  EXPECT_DOUBLE_EQ(d.percentile(50.0), 1.5);
  EXPECT_DOUBLE_EQ(d.percentile(100.0), 2.0);
  // All mass is <= 2, none strictly below 1.
  EXPECT_DOUBLE_EQ(d.fractionBelow(2.0), 1.0);
  EXPECT_DOUBLE_EQ(d.fractionBelow(1.0), 0.0);
}

TEST(HistogramTest, OverflowBucketReportsObservedMax) {
  Histogram h({1.0});
  h.observe(10.0);
  h.observe(20.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 20.0);
}

TEST(HistogramTest, FractionBelowWalksCumulativeBuckets) {
  Histogram h({1.0, 2.0, 5.0});
  for (int i = 0; i < 5; ++i) h.observe(0.5);
  for (int i = 0; i < 5; ++i) h.observe(3.0);
  const HistogramData d = h.data();
  EXPECT_DOUBLE_EQ(d.fractionBelow(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.fractionBelow(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.fractionBelow(5.0), 1.0);
  EXPECT_DOUBLE_EQ(d.fractionBelow(100.0), 1.0);
}

TEST(HistogramTest, ConcurrentObservesKeepExactCount) {
  Histogram h(Histogram::defaultLatencyBucketsMs());
  constexpr int kThreads = 8;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObservations; ++i) {
        h.observe(0.001 * ((t * kObservations + i) % 1000));
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramData d = h.data();
  EXPECT_EQ(d.count, static_cast<std::uint64_t>(kThreads) * kObservations);
  std::uint64_t inBuckets = 0;
  for (std::uint64_t b : d.bucketCounts) inBuckets += b;
  EXPECT_EQ(inBuckets, d.count);
}

TEST(Registry, CreateOrGetReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("bf_x_total", "first help wins");
  Counter& b = reg.counter("bf_x_total", "ignored");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  Histogram& h1 = reg.histogram("bf_x_ms", "", {1.0, 2.0});
  Histogram& h2 = reg.histogram("bf_x_ms");  // bounds ignored on re-get
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(Registry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("bf_x_total");
  EXPECT_THROW(reg.gauge("bf_x_total"), std::logic_error);
  EXPECT_THROW(reg.histogram("bf_x_total"), std::logic_error);
}

TEST(Registry, SnapshotIsNameSortedAndQueryable) {
  MetricsRegistry reg;
  reg.counter("bf_zz_total").inc(7);
  reg.gauge("bf_aa_depth").set(3.0);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  EXPECT_EQ(snap.metrics[0].name, "bf_aa_depth");
  EXPECT_EQ(snap.metrics[1].name, "bf_zz_total");
  EXPECT_EQ(snap.counterValue("bf_zz_total"), 7u);
  EXPECT_EQ(snap.counterValue("bf_missing"), 0u);
  ASSERT_NE(snap.find("bf_aa_depth"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("bf_aa_depth")->gaugeValue, 3.0);
  EXPECT_EQ(snap.find("bf_missing"), nullptr);
}

TEST(Registry, DiffSubtractsCountersAndHistogramsKeepsGauges) {
  MetricsRegistry reg;
  Counter& c = reg.counter("bf_c_total");
  Gauge& g = reg.gauge("bf_g_depth");
  Histogram& h = reg.histogram("bf_h_ms", "", {1.0, 10.0});
  c.inc(5);
  g.set(2.0);
  h.observe(0.5);
  const MetricsSnapshot before = reg.snapshot();
  c.inc(3);
  g.set(9.0);
  h.observe(0.5);
  h.observe(5.0);
  const MetricsSnapshot delta = reg.snapshot().diff(before);
  EXPECT_EQ(delta.counterValue("bf_c_total"), 3u);
  EXPECT_DOUBLE_EQ(delta.find("bf_g_depth")->gaugeValue, 9.0);  // level, not rate
  const HistogramData& hd = delta.find("bf_h_ms")->histogram;
  EXPECT_EQ(hd.count, 2u);
  EXPECT_EQ(hd.bucketCounts[0], 1u);
  EXPECT_EQ(hd.bucketCounts[1], 1u);
  EXPECT_DOUBLE_EQ(hd.sum, 5.5);
}

TEST(Registry, ResetAllZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("bf_c_total");
  Histogram& h = reg.histogram("bf_h_ms", "", {1.0});
  c.inc(10);
  h.observe(0.5);
  reg.resetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&c, &reg.counter("bf_c_total"));  // same object after reset
  h.observe(2.0);
  EXPECT_DOUBLE_EQ(h.data().max, 2.0);  // min/max re-arm after reset
  EXPECT_DOUBLE_EQ(h.data().min, 2.0);
}

TEST(Registry, ProcessWideRegistryIsASingleton) {
  EXPECT_EQ(&registry(), &registry());
}

}  // namespace
}  // namespace bf::obs
