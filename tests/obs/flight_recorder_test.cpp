#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "obs/trace_context.h"

namespace bf::obs {
namespace {

DecisionTrace makeTrace(std::uint64_t traceId, bool sampled,
                        bool violation = false, bool degraded = false) {
  DecisionTrace t;
  t.traceId = traceId;
  t.sampled = sampled;
  t.violation = violation;
  t.degraded = degraded;
  t.ingress = "test.ingress";
  t.segmentName = "doc#p1";
  t.documentName = "doc";
  t.serviceId = "svc";
  return t;
}

TEST(FlightRecorderTest, AssignsMonotonicDecisionIds) {
  FlightRecorder recorder(8);
  const std::uint64_t a = recorder.nextDecisionId();
  const std::uint64_t b = recorder.nextDecisionId();
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(recorder.lastDecisionId(), b);
}

TEST(FlightRecorderTest, RetainsSampledViolationAndDegraded) {
  FlightRecorder recorder(8);
  const std::uint64_t sampledId = recorder.record(makeTrace(1, true));
  const std::uint64_t violationId =
      recorder.record(makeTrace(2, false, /*violation=*/true));
  const std::uint64_t degradedId =
      recorder.record(makeTrace(3, false, false, /*degraded=*/true));
  EXPECT_TRUE(recorder.explain(sampledId).has_value());
  EXPECT_TRUE(recorder.explain(violationId).has_value());
  EXPECT_TRUE(recorder.explain(degradedId).has_value());
  EXPECT_EQ(recorder.retainedTotal(), 3u);
}

TEST(FlightRecorderTest, UnsampledCleanDecisionsConsumeIdOnly) {
  FlightRecorder recorder(8);
  const std::uint64_t id = recorder.record(makeTrace(1, false));
  EXPECT_NE(id, 0u);
  EXPECT_FALSE(recorder.explain(id).has_value());
  EXPECT_EQ(recorder.retainedTotal(), 0u);
  // The id was still consumed: the next decision gets a later id.
  EXPECT_GT(recorder.record(makeTrace(2, true)), id);
}

TEST(FlightRecorderTest, ExplainReturnsCompleteRecord) {
  FlightRecorder recorder(8);
  DecisionTrace t = makeTrace(42, true, true);
  t.action = "block";
  t.bytesScanned = 1234;
  t.hits.push_back({"source-doc", 0.8, 0.3, 17});
  t.violatingTags.push_back("ti");
  t.labelsConsulted.push_back("segment:ti");
  t.stages.nanos[static_cast<int>(Stage::kFingerprint)] = 5000;
  const std::uint64_t id = recorder.record(std::move(t));

  const std::optional<DecisionTrace> got = recorder.explain(id);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->decisionId, id);
  EXPECT_EQ(got->traceId, 42u);
  EXPECT_EQ(got->action, "block");
  EXPECT_EQ(got->bytesScanned, 1234u);
  ASSERT_EQ(got->hits.size(), 1u);
  EXPECT_EQ(got->hits[0].sourceName, "source-doc");
  EXPECT_DOUBLE_EQ(got->hits[0].score, 0.8);
  EXPECT_DOUBLE_EQ(got->hits[0].threshold, 0.3);
  EXPECT_EQ(got->violatingTags, std::vector<std::string>{"ti"});
  EXPECT_EQ(got->stages.nanos[static_cast<int>(Stage::kFingerprint)], 5000u);
}

TEST(FlightRecorderTest, ExplainByTraceReturnsNewestForTrace) {
  FlightRecorder recorder(8);
  DecisionTrace first = makeTrace(7, true);
  first.segmentName = "doc#p1";
  recorder.record(std::move(first));
  DecisionTrace second = makeTrace(7, true);
  second.segmentName = "doc#p2";
  const std::uint64_t newestId = recorder.record(std::move(second));

  const std::optional<DecisionTrace> got = recorder.explainByTrace(7);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->decisionId, newestId);
  EXPECT_EQ(got->segmentName, "doc#p2");
  EXPECT_FALSE(recorder.explainByTrace(999).has_value());
}

TEST(FlightRecorderTest, AnnotateRetryUpdatesEveryRecordOfTrace) {
  FlightRecorder recorder(8);
  const std::uint64_t a = recorder.record(makeTrace(5, true));
  const std::uint64_t b = recorder.record(makeTrace(5, true));
  recorder.record(makeTrace(6, true));  // different trace, untouched

  recorder.annotateRetry(5, 3, 120.5, true);
  for (const std::uint64_t id : {a, b}) {
    const std::optional<DecisionTrace> got = recorder.explain(id);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->retryAttempts, 3u);
    EXPECT_DOUBLE_EQ(got->retryBackoffMs, 120.5);
    EXPECT_TRUE(got->retryExhausted);
  }
  const std::optional<DecisionTrace> other = recorder.explainByTrace(6);
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(other->retryAttempts, 0u);
}

TEST(FlightRecorderTest, RingEvictsOldestWhenFull) {
  FlightRecorder recorder(4);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(recorder.record(makeTrace(100 + i, true)));
  }
  // Oldest two fell off; newest four survive oldest-first.
  EXPECT_FALSE(recorder.explain(ids[0]).has_value());
  EXPECT_FALSE(recorder.explain(ids[1]).has_value());
  for (int i = 2; i < 6; ++i) {
    EXPECT_TRUE(recorder.explain(ids[i]).has_value()) << i;
  }
  const std::vector<DecisionTrace> recent = recorder.recent();
  ASSERT_EQ(recent.size(), 4u);
  for (std::size_t i = 1; i < recent.size(); ++i) {
    EXPECT_GT(recent[i].decisionId, recent[i - 1].decisionId);
  }
  EXPECT_EQ(recorder.retainedTotal(), 6u);
}

TEST(FlightRecorderTest, SetCapacityAndClearResetTheRing) {
  FlightRecorder recorder(2);
  recorder.record(makeTrace(1, true));
  recorder.setCapacity(8);
  EXPECT_TRUE(recorder.recent().empty());
  for (int i = 0; i < 8; ++i) recorder.record(makeTrace(10 + i, true));
  EXPECT_EQ(recorder.recent().size(), 8u);
  recorder.clear();
  EXPECT_TRUE(recorder.recent().empty());
}

TEST(FlightRecorderTest, ConcurrentRecordersKeepIdsUniqueAndOrdered) {
  FlightRecorder recorder(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.record(
            makeTrace(static_cast<std::uint64_t>(t) * 1000 + i, true));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(recorder.lastDecisionId(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const std::vector<DecisionTrace> recent = recorder.recent();
  ASSERT_EQ(recent.size(), 64u);
  for (std::size_t i = 1; i < recent.size(); ++i) {
    EXPECT_NE(recent[i].decisionId, recent[i - 1].decisionId);
  }
}

TEST(TraceContextTest, StartAssignsDistinctIdsAndChildKeepsTrace) {
  const TraceContext a = TraceContext::start();
  const TraceContext b = TraceContext::start();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a.traceId, b.traceId);

  const TraceContext childOfA = a.child();
  EXPECT_EQ(childOfA.traceId, a.traceId);
  EXPECT_EQ(childOfA.sampled, a.sampled);
  EXPECT_NE(childOfA.spanId, a.spanId);
}

TEST(TraceContextTest, SampleEveryControlsHeadSampling) {
  const std::uint32_t saved = traceSampleEvery();
  setTraceSampleEvery(1);
  EXPECT_TRUE(TraceContext::start().sampled);
  setTraceSampleEvery(0);
  EXPECT_FALSE(TraceContext::start().sampled);
  setTraceSampleEvery(saved);
}

TEST(TraceContextTest, ScopedContextInstallsAndRestores) {
  EXPECT_FALSE(currentTrace().valid());
  const TraceContext root = TraceContext::start();
  {
    ScopedTraceContext scope(root);
    EXPECT_EQ(currentTrace().traceId, root.traceId);
    // An ingress inside an active trace continues it as a child.
    const TraceContext nested = ingressTrace();
    EXPECT_EQ(nested.traceId, root.traceId);
    EXPECT_NE(nested.spanId, root.spanId);
  }
  EXPECT_FALSE(currentTrace().valid());
  // With no ambient trace, an ingress starts a fresh root.
  EXPECT_TRUE(ingressTrace().valid());
}

}  // namespace
}  // namespace bf::obs
