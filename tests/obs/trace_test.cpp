// bf::obs tracing: span nesting, ring-buffer wraparound, enable gating.
#include <gtest/gtest.h>

#include <string>

#include "obs/trace.h"

namespace bf::obs {
namespace {

TEST(TraceLogTest, RingBufferKeepsNewestAndCountsDrops) {
  TraceLog log(3);
  for (std::uint64_t i = 1; i <= 7; ++i) {
    SpanRecord s;
    s.id = i;
    log.record(s);
  }
  EXPECT_EQ(log.totalRecorded(), 7u);
  EXPECT_EQ(log.droppedCount(), 4u);
  const auto events = log.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].id, 5u);  // oldest survivor first
  EXPECT_EQ(events[1].id, 6u);
  EXPECT_EQ(events[2].id, 7u);
}

TEST(TraceLogTest, ClearAndSetCapacityResetTheRing) {
  TraceLog log(4);
  for (int i = 0; i < 10; ++i) log.record(SpanRecord{});
  log.clear();
  EXPECT_EQ(log.totalRecorded(), 0u);
  EXPECT_EQ(log.droppedCount(), 0u);
  EXPECT_TRUE(log.events().empty());
  log.record(SpanRecord{});
  log.setCapacity(2);
  EXPECT_EQ(log.totalRecorded(), 0u);
  EXPECT_TRUE(log.events().empty());
}

/// ScopedSpan always records into TraceLog::instance(), so these tests
/// drive the process-wide log and restore it afterwards.
class ScopedSpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceLog::instance().setCapacity(64);
    TraceLog::instance().setEnabled(true);
  }
  void TearDown() override {
    TraceLog::instance().setEnabled(false);
    TraceLog::instance().setCapacity(TraceLog::kDefaultCapacity);
  }
};

TEST_F(ScopedSpanTest, DisabledSpansRecordNothing) {
  TraceLog::instance().setEnabled(false);
  { BF_SPAN("invisible"); }
  EXPECT_EQ(TraceLog::instance().totalRecorded(), 0u);
}

TEST_F(ScopedSpanTest, SpanRecordsOnScopeExit) {
  {
    BF_SPAN("outer");
    EXPECT_EQ(TraceLog::instance().totalRecorded(), 0u);  // still open
  }
  const auto events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[0].parentId, 0u);
  EXPECT_GT(events[0].id, 0u);
  EXPECT_GT(events[0].threadId, 0u);
}

TEST_F(ScopedSpanTest, NestedSpansCarryParentAndDepth) {
  {
    BF_SPAN("outer");
    { BF_SPAN("inner"); }
  }
  // Spans record on close, so the child precedes its parent in the ring.
  const auto events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 2u);
  const SpanRecord& inner = events[0];
  const SpanRecord& outer = events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.parentId, outer.id);
  EXPECT_EQ(outer.parentId, 0u);
  EXPECT_GE(inner.startNanos, outer.startNanos);
  EXPECT_LE(inner.durationNanos, outer.durationNanos);
}

TEST_F(ScopedSpanTest, SiblingsShareAParentAfterRestore) {
  {
    BF_SPAN("outer");
    { BF_SPAN("first"); }
    { BF_SPAN("second"); }
  }
  const auto events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "first");
  EXPECT_STREQ(events[1].name, "second");
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[0].parentId, events[2].id);
  EXPECT_EQ(events[1].parentId, events[2].id);
  EXPECT_EQ(events[1].depth, 1u);
}

TEST_F(ScopedSpanTest, WraparoundKeepsMostRecentSpans) {
  TraceLog::instance().setCapacity(4);
  for (int i = 0; i < 10; ++i) {
    BF_SPAN("loop");
  }
  EXPECT_EQ(TraceLog::instance().totalRecorded(), 10u);
  EXPECT_EQ(TraceLog::instance().droppedCount(), 6u);
  const auto events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, events[i - 1].id + 1);  // consecutive, newest kept
  }
}

TEST_F(ScopedSpanTest, DumpRendersIndentedTree) {
  {
    BF_SPAN("root");
    { BF_SPAN("child"); }
  }
  const std::string dump = TraceLog::instance().dump();
  EXPECT_NE(dump.find("root"), std::string::npos);
  EXPECT_NE(dump.find("  child"), std::string::npos);  // depth-1 indent
  EXPECT_NE(dump.find("parent="), std::string::npos);
}

}  // namespace
}  // namespace bf::obs
