// bf::obs tracing: span nesting, ring-buffer wraparound, enable gating.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "obs/trace_context.h"

namespace bf::obs {
namespace {

TEST(TraceLogTest, RingBufferKeepsNewestAndCountsDrops) {
  TraceLog log(3);
  for (std::uint64_t i = 1; i <= 7; ++i) {
    SpanRecord s;
    s.id = i;
    log.record(s);
  }
  EXPECT_EQ(log.totalRecorded(), 7u);
  EXPECT_EQ(log.droppedCount(), 4u);
  const auto events = log.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].id, 5u);  // oldest survivor first
  EXPECT_EQ(events[1].id, 6u);
  EXPECT_EQ(events[2].id, 7u);
}

TEST(TraceLogTest, ClearAndSetCapacityResetTheRing) {
  TraceLog log(4);
  for (int i = 0; i < 10; ++i) log.record(SpanRecord{});
  log.clear();
  EXPECT_EQ(log.totalRecorded(), 0u);
  EXPECT_EQ(log.droppedCount(), 0u);
  EXPECT_TRUE(log.events().empty());
  log.record(SpanRecord{});
  log.setCapacity(2);
  EXPECT_EQ(log.totalRecorded(), 0u);
  EXPECT_TRUE(log.events().empty());
}

/// ScopedSpan always records into TraceLog::instance(), so these tests
/// drive the process-wide log and restore it afterwards.
class ScopedSpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceLog::instance().setCapacity(64);
    TraceLog::instance().setEnabled(true);
  }
  void TearDown() override {
    TraceLog::instance().setEnabled(false);
    TraceLog::instance().setCapacity(TraceLog::kDefaultCapacity);
  }
};

TEST_F(ScopedSpanTest, DisabledSpansRecordNothing) {
  TraceLog::instance().setEnabled(false);
  { BF_SPAN("invisible"); }
  EXPECT_EQ(TraceLog::instance().totalRecorded(), 0u);
}

TEST_F(ScopedSpanTest, SpanRecordsOnScopeExit) {
  {
    BF_SPAN("outer");
    EXPECT_EQ(TraceLog::instance().totalRecorded(), 0u);  // still open
  }
  const auto events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[0].parentId, 0u);
  EXPECT_GT(events[0].id, 0u);
  EXPECT_GT(events[0].threadId, 0u);
}

TEST_F(ScopedSpanTest, NestedSpansCarryParentAndDepth) {
  {
    BF_SPAN("outer");
    { BF_SPAN("inner"); }
  }
  // Spans record on close, so the child precedes its parent in the ring.
  const auto events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 2u);
  const SpanRecord& inner = events[0];
  const SpanRecord& outer = events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.parentId, outer.id);
  EXPECT_EQ(outer.parentId, 0u);
  EXPECT_GE(inner.startNanos, outer.startNanos);
  EXPECT_LE(inner.durationNanos, outer.durationNanos);
}

TEST_F(ScopedSpanTest, SiblingsShareAParentAfterRestore) {
  {
    BF_SPAN("outer");
    { BF_SPAN("first"); }
    { BF_SPAN("second"); }
  }
  const auto events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "first");
  EXPECT_STREQ(events[1].name, "second");
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[0].parentId, events[2].id);
  EXPECT_EQ(events[1].parentId, events[2].id);
  EXPECT_EQ(events[1].depth, 1u);
}

TEST_F(ScopedSpanTest, WraparoundKeepsMostRecentSpans) {
  TraceLog::instance().setCapacity(4);
  for (int i = 0; i < 10; ++i) {
    BF_SPAN("loop");
  }
  EXPECT_EQ(TraceLog::instance().totalRecorded(), 10u);
  EXPECT_EQ(TraceLog::instance().droppedCount(), 6u);
  const auto events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, events[i - 1].id + 1);  // consecutive, newest kept
  }
}

TEST(TraceLogTest, SeqIsAssignedInRecordOrder) {
  TraceLog log(8);
  for (int i = 0; i < 5; ++i) log.record(SpanRecord{});
  const auto events = log.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1);  // 1-based, gap-free
  }
}

TEST(TraceLogTest, SeqSurvivesWraparoundUnderConcurrentWriters) {
  constexpr std::size_t kCapacity = 64;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  TraceLog log(kCapacity);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) log.record(SpanRecord{});
    });
  }
  for (auto& th : threads) th.join();

  const std::uint64_t total = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(log.totalRecorded(), total);
  EXPECT_EQ(log.droppedCount(), total - kCapacity);
  const auto events = log.events();
  ASSERT_EQ(events.size(), kCapacity);
  // The survivors are exactly the newest kCapacity records: seq ascending
  // with no gaps, ending at the global total. A seq assigned outside the
  // ring-write critical section would leave holes or duplicates here.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, total - kCapacity + 1 + i);
  }
}

TEST_F(ScopedSpanTest, SpanPicksUpAmbientTraceId) {
  const TraceContext root = TraceContext::start();
  {
    ScopedTraceContext scope(root);
    BF_SPAN("traced");
  }
  { BF_SPAN("untraced"); }
  const auto events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].traceId, root.traceId);
  EXPECT_EQ(events[1].traceId, 0u);
}

TEST_F(ScopedSpanTest, RootSpanParentLinksToContextSpanAcrossThreads) {
  const TraceContext ingress = TraceContext::start();
  std::thread worker([&ingress] {
    ScopedTraceContext scope(ingress);
    BF_SPAN("worker.decide");
  });
  worker.join();
  const auto events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 1u);
  // The worker's depth-0 span stitched itself under the ingress span even
  // though the ingress ran on another thread.
  EXPECT_EQ(events[0].parentId, ingress.spanId);
  EXPECT_EQ(events[0].traceId, ingress.traceId);
}

TEST_F(ScopedSpanTest, AttributesAreRecordedAndCapped) {
  {
    ScopedSpan span("attrs");
    span.addAttr("bytes", 128);
    span.addAttr("segments", 3);
    span.addAttr("c", 1);
    span.addAttr("d", 2);
    span.addAttr("overflow", 99);  // fifth attr: dropped
  }
  const auto events = TraceLog::instance().events();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].attrCount, SpanRecord::kMaxAttrs);
  EXPECT_STREQ(events[0].attrs[0].key, "bytes");
  EXPECT_EQ(events[0].attrs[0].value, 128u);
  EXPECT_STREQ(events[0].attrs[1].key, "segments");
  EXPECT_EQ(events[0].attrs[1].value, 3u);
  const std::string dump = TraceLog::instance().dump();
  EXPECT_NE(dump.find("bytes=128"), std::string::npos);
  EXPECT_EQ(dump.find("overflow"), std::string::npos);
}

TEST_F(ScopedSpanTest, DumpRendersIndentedTree) {
  {
    BF_SPAN("root");
    { BF_SPAN("child"); }
  }
  const std::string dump = TraceLog::instance().dump();
  EXPECT_NE(dump.find("root"), std::string::npos);
  EXPECT_NE(dump.find("  child"), std::string::npos);  // depth-1 indent
  EXPECT_NE(dump.find("parent="), std::string::npos);
}

}  // namespace
}  // namespace bf::obs
