// Enforces the provenance cost budget: the decision path with trace
// contexts, stage timers, and flight-recorder ids enabled must stay within
// 3% of the same path with provenance disabled (ISSUE acceptance bar; the
// full-scale measurement lands in BENCH_PR6.json via scripts/bench_gate.py).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/decision_engine.h"
#include "corpus/text_generator.h"
#include "flow/tracker.h"
#include "obs/stage.h"
#include "tdm/policy.h"
#include "util/stopwatch.h"

namespace bf {
namespace {

constexpr bool kUnderSanitizer =
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

/// One synchronous decision loop (keystroke edits + periodic pastes, the
/// bench_stress workload shape) against a fresh engine. Returns elapsed ms.
double runDecisionLoop(std::size_t decisions,
                       const std::vector<std::string>& pastes) {
  util::LogicalClock clock;
  flow::FlowTracker tracker(flow::TrackerConfig{}, &clock);
  tdm::TdmPolicy policy(&clock);
  policy.services().upsert(
      {"internal", "Internal", tdm::TagSet{"in"}, tdm::TagSet{"in"}});
  core::BrowserFlowConfig config;
  core::DecisionEngine engine(config, &tracker, &policy);

  util::Stopwatch watch;
  std::string text;
  for (std::size_t i = 0; i < decisions; ++i) {
    if (i % 50 == 0) {
      text = pastes[(i / 50) % pastes.size()];
    } else {
      text += static_cast<char>('a' + (i % 26));
    }
    core::DecisionRequest req;
    req.segmentName = "prov/d" + std::to_string(i / 50) + "#p0";
    req.documentName = "prov/d" + std::to_string(i / 50);
    req.serviceId = "https://ext.example";
    req.text = text;
    (void)engine.decide(req);
  }
  return watch.elapsedMillis();
}

TEST(ProvenanceOverheadTest, DecisionPathStaysWithinThreePercent) {
  if (kUnderSanitizer) {
    GTEST_SKIP() << "timing assertion is meaningless under sanitizers";
  }
  constexpr std::size_t kDecisions = 1500;
  std::vector<std::string> pastes;
  {
    util::Rng rng(17);
    corpus::TextGenerator gen(&rng);
    for (int i = 0; i < 20; ++i) pastes.push_back(gen.paragraph(4, 6));
  }

  auto timed = [&](bool enabled) {
    obs::setProvenanceEnabled(enabled);
    const double ms = runDecisionLoop(kDecisions, pastes);
    obs::setProvenanceEnabled(true);
    return ms;
  };

  // Warm-up, then interleaved min-of-N: the minimum discards scheduler
  // spikes, which on a small container dwarf the effect being measured.
  // Noise only ever inflates the min-based estimate, so the loop may stop
  // as soon as the estimate is under budget; unlucky runs take more reps.
  (void)timed(true);
  double offMs = 1e100;
  double onMs = 1e100;
  double overheadPct = 1e100;
  for (int rep = 0; rep < 10; ++rep) {
    offMs = std::min(offMs, timed(false));
    onMs = std::min(onMs, timed(true));
    overheadPct = (onMs - offMs) / offMs * 100.0;
    if (rep >= 2 && overheadPct < 3.0) break;
  }
  std::printf("provenance off: %.2f ms  on: %.2f ms  overhead: %+.2f%%\n",
              offMs, onMs, overheadPct);
  EXPECT_LT(overheadPct, 3.0)
      << "provenance instrumentation exceeds its 3% decision-path budget";
}

}  // namespace
}  // namespace bf
