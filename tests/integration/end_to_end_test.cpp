// End-to-end integration tests: the paper's running example (Fig. 1) driven
// through the full stack — browser tabs, simulated services, the plug-in's
// interception, the flow tracker and the TDM policy.
#include <gtest/gtest.h>

#include "cloud/docs_backend.h"
#include "cloud/docs_client.h"
#include "cloud/form_backend.h"
#include "cloud/network.h"
#include "cloud/wiki_client.h"
#include "core/plugin.h"
#include "corpus/text_generator.h"

namespace bf {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  explicit EndToEndTest(
      core::BrowserFlowConfig config = core::BrowserFlowConfig{})
      : rng_(99),
        gen_(&rng_),
        network_(&rng_),
        plugin_(config, &clock_),
        browser_(&network_) {
    network_.registerService("https://docs.google.com", &docsBackend_);
    network_.registerService("https://wiki.corp", &wikiBackend_);
    network_.registerService("https://itool.corp", &itoolBackend_);
    // Fig. 3 policy: unique tags keep the two internal services apart;
    // Google Docs is external/untrusted (unregistered, Lp = {}).
    plugin_.policy().services().upsert({"https://itool.corp",
                                        "Interview Tool", tdm::TagSet{"ti"},
                                        tdm::TagSet{"ti"}});
    plugin_.policy().services().upsert({"https://wiki.corp", "Internal Wiki",
                                        tdm::TagSet{"tw"},
                                        tdm::TagSet{"tw"}});
    browser_.addExtension(&plugin_);
  }

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  cloud::SimNetwork network_;
  cloud::DocsBackend docsBackend_;
  cloud::FormBackend wikiBackend_;
  cloud::FormBackend itoolBackend_;
  core::BrowserFlowPlugin plugin_;
  browser::Browser browser_;
};

class EndToEndBlockTest : public EndToEndTest {
 protected:
  EndToEndBlockTest() : EndToEndTest([] {
    core::BrowserFlowConfig c;
    c.mode = core::EnforcementMode::kBlock;
    return c;
  }()) {}
};

TEST_F(EndToEndBlockTest, InterviewWorkflowScenario) {
  // 1. An interviewer reads a candidate evaluation in the Interview Tool.
  browser::Page& itoolTab = browser_.openTab("https://itool.corp/eval/101");
  const std::string evaluation = gen_.paragraph(7, 9);
  itoolTab.loadHtml("<div id=\"content\"><p>" + evaluation + "</p></div>");
  plugin_.scanPage(itoolTab);

  // 2. They paste it into the internal Wiki: {ti} ⊄ {tw} — blocked.
  browser::Page& wikiTab = browser_.openTab("https://wiki.corp/edit/howto");
  cloud::WikiClient wiki(wikiTab, "howto");
  wiki.openEditor();
  wiki.setContent(evaluation);
  EXPECT_EQ(wiki.save(), 0);
  EXPECT_EQ(wikiBackend_.postCount(), 0u);

  // 3. They paste it into Google Docs: {ti} ⊄ {} — blocked too.
  browser::Page& docsTab = browser_.openTab("https://docs.google.com/d/X");
  cloud::DocsClient docs(docsTab, "X");
  docs.openDocument();
  EXPECT_EQ(docs.insertParagraph(0, evaluation), 403);
  EXPECT_TRUE(docsBackend_.paragraphsOf("X").empty());
  // The flagged text still sits in the tab; while it does, the document
  // as a whole keeps violating, so the user deletes it...
  docs.deleteParagraph(0);

  // 4. ...and unrelated notes sail through everywhere.
  EXPECT_EQ(docs.insertParagraph(0, gen_.paragraph(7, 9)), 200);
  wiki.setContent(gen_.paragraph(7, 9));
  EXPECT_EQ(wiki.save(), 200);
}

TEST_F(EndToEndBlockTest, WikiToItoolAllowedWhenPrivileged) {
  // The admin trusts the Interview Tool with Wiki data (Fig. 5 setup).
  plugin_.policy().services().upsert({"https://itool.corp", "Interview Tool",
                                      tdm::TagSet{"ti", "tw"},
                                      tdm::TagSet{"ti"}});
  const std::string guidelines = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://wiki.corp",
                                 "https://wiki.corp/page/guide", guidelines);

  browser::Page& itoolTab = browser_.openTab("https://itool.corp/notes");
  itoolTab.loadHtml(R"(<form id="f" action="/notes/save">
      <input type="text" name="content" value=""></form>)");
  browser::Node* form = itoolTab.document().root()->byId("f");
  form->elementsByTag("input")[0]->setAttribute("value", guidelines);
  EXPECT_EQ(itoolTab.submitForm(form).status, 200);
  EXPECT_EQ(itoolBackend_.postCount(), 1u);
}

TEST_F(EndToEndBlockTest, SuppressionUnblocksUploadWithAuditTrail) {
  const std::string evaluation = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/eval/7", evaluation);

  browser::Page& docsTab = browser_.openTab("https://docs.google.com/d/Y");
  cloud::DocsClient docs(docsTab, "Y");
  docs.openDocument();
  ASSERT_EQ(docs.insertParagraph(0, evaluation), 403);

  // The user reviews the warning and declassifies this copy.
  const std::string segName = plugin_.segmentNameOf(docs.paragraphNode(0));
  ASSERT_FALSE(segName.empty());
  ASSERT_TRUE(plugin_
                  .suppressTag("alice", segName, "ti",
                               "evaluation anonymised before sharing")
                  .ok());
  // Retyping the final character re-runs the pipeline; upload now passes.
  EXPECT_EQ(docs.typeChar(0, '.'), 200);
  EXPECT_EQ(docsBackend_.paragraphsOf("Y").size(), 1u);

  // Paragraph + containing document granularities are both audited.
  const auto records =
      plugin_.policy().audit().byKind(tdm::AuditRecord::Kind::kTagSuppressed);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].user, "alice");
}

TEST_F(EndToEndBlockTest, ModifiedBeyondRecognitionIsFreeToShare) {
  const std::string evaluation = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/eval/8", evaluation);
  browser::Page& docsTab = browser_.openTab("https://docs.google.com/d/Z");
  cloud::DocsClient docs(docsTab, "Z");
  docs.openDocument();
  // A complete rewrite of the idea in fresh words: no similarity, no block.
  EXPECT_EQ(docs.insertParagraph(0, gen_.paragraph(7, 9)), 200);
}

TEST_F(EndToEndTest, Figure6TransitiveStaleTaintDoesNotPropagate) {
  // Services as in Fig. 6: Wiki may hold Interview Tool data; Google Docs
  // may hold Wiki data (tw in Lp) but not Interview Tool data.
  plugin_.policy().services().upsert({"https://wiki.corp", "Internal Wiki",
                                      tdm::TagSet{"tw", "ti"},
                                      tdm::TagSet{"tw"}});
  // Register gdocs as a service whose Lp includes tw.
  plugin_.policy().services().upsert({"https://docs.google.com",
                                      "Google Docs", tdm::TagSet{"tw"},
                                      tdm::TagSet{}});

  // Segment A in the Interview Tool, segment B in the Wiki.
  const std::string textA = gen_.paragraph(7, 9);
  const std::string textB = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/A", textA);
  plugin_.observeServiceDocument("https://wiki.corp", "https://wiki.corp/B",
                                 textB);

  // Step 1: the user appends A's text to B (in the Wiki, which is allowed
  // to receive ti). B now discloses A; its label gains implicit ti.
  const std::string textB1 = textB + " " + textA;
  plugin_.observeServiceDocument("https://wiki.corp",
                                 "https://wiki.corp/B", textB1);
  core::DecisionRequest reqB;
  reqB.segmentName = "https://wiki.corp/B#p0";
  reqB.documentName = "https://wiki.corp/B";
  reqB.serviceId = "https://wiki.corp";
  reqB.text = textB1;
  auto d1 = plugin_.engine().decide(reqB);
  EXPECT_FALSE(d1.violation()) << "Wiki holds ti in Lp";
  const tdm::Label* labelB = plugin_.policy().labelOf("https://wiki.corp/B#p0");
  ASSERT_NE(labelB, nullptr);
  EXPECT_TRUE(labelB->implicitTags().contains("ti"));

  // While B still resembles A, copying B's A-part to Google Docs violates.
  browser::Page& docsTab = browser_.openTab("https://docs.google.com/d/C");
  cloud::DocsClient docs(docsTab, "C");
  docs.openDocument();
  docs.insertParagraph(0, textA);
  EXPECT_EQ(docs.paragraphNode(0)->attribute(core::BrowserFlowPlugin::kStateAttr),
            core::BrowserFlowPlugin::kViolation);
  docs.deleteParagraph(0);

  // Step 2: A is edited until it bears no resemblance to its old content.
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/A", gen_.paragraph(9, 11));

  // Step 3: copying B's text (including the part that CAME from A) to
  // Google Docs now only carries B's explicit {tw} — allowed, because the
  // current Interview Tool content is no longer disclosed. Implicit ti on
  // B must NOT propagate.
  docs.insertParagraph(0, textB1);
  EXPECT_EQ(docs.paragraphNode(0)->attribute(core::BrowserFlowPlugin::kStateAttr),
            core::BrowserFlowPlugin::kClean)
      << "stale taint propagated transitively";
}

TEST_F(EndToEndTest, CustomTagRestrictsPreviouslyAllowedFlow) {
  // Wiki data is allowed into the Interview Tool via admin policy.
  plugin_.policy().services().upsert({"https://itool.corp", "Interview Tool",
                                      tdm::TagSet{"ti", "tw"},
                                      tdm::TagSet{"ti"}});
  const std::string secret = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://wiki.corp",
                                 "https://wiki.corp/S", secret);
  // Flow allowed before the custom tag...
  EXPECT_TRUE(plugin_.policy()
                  .checkUpload("https://wiki.corp/S#p0", "https://itool.corp")
                  .allowed);
  // ...the author protects it with tn (Fig. 5).
  ASSERT_TRUE(plugin_.policy().allocateCustomTag("bob", "tn").ok());
  ASSERT_TRUE(plugin_.policy()
                  .addCustomTagToSegment("bob", "https://wiki.corp/S#p0", "tn")
                  .ok());
  EXPECT_FALSE(plugin_.policy()
                   .checkUpload("https://wiki.corp/S#p0", "https://itool.corp")
                   .allowed);
  // The Wiki itself got tn auto-granted (it already stores the segment).
  EXPECT_TRUE(plugin_.policy()
                  .checkUpload("https://wiki.corp/S#p0", "https://wiki.corp")
                  .allowed);
}

TEST_F(EndToEndBlockTest, DirectionalPolicyBetweenInternalServices) {
  // Paper S2: "transferring text from the internal Wiki to the Interview
  // Tool is permitted, but not the reverse". Achieved with
  // Lp(itool) = {ti, tw}, Lp(wiki) = {tw}.
  plugin_.policy().services().upsert({"https://itool.corp", "Interview Tool",
                                      tdm::TagSet{"ti", "tw"},
                                      tdm::TagSet{"ti"}});
  const std::string wikiText = gen_.paragraph(7, 9);
  const std::string itoolText = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://wiki.corp", "https://wiki.corp/w",
                                 wikiText);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/i", itoolText);

  // Wiki -> Interview Tool: permitted.
  browser::Page& itoolTab = browser_.openTab("https://itool.corp/notes");
  itoolTab.loadHtml(R"(<form id="f" action="/notes/save">
      <textarea name="content" value=""></textarea></form>)");
  browser::Node* itoolForm = itoolTab.document().root()->byId("f");
  itoolForm->elementsByTag("textarea")[0]->setAttribute("value", wikiText);
  EXPECT_EQ(itoolTab.submitForm(itoolForm).status, 200);

  // Interview Tool -> Wiki: blocked.
  browser::Page& wikiTab = browser_.openTab("https://wiki.corp/edit/x");
  cloud::WikiClient wiki(wikiTab, "x");
  wiki.openEditor();
  wiki.setContent(itoolText);
  EXPECT_EQ(wiki.save(), 0);
}

TEST_F(EndToEndBlockTest, EvictionForgetsOldContent) {
  // The paper recommends "periodic removal of old fingerprints" (S4.4);
  // after eviction, stale content no longer blocks uploads.
  const std::string oldSecret = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/old", oldSecret);
  const util::Timestamp cutoff = clock_.now();
  const std::string newSecret = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/new", newSecret);

  browser::Page& docsTab = browser_.openTab("https://docs.google.com/d/E");
  cloud::DocsClient docs(docsTab, "E");
  docs.openDocument();
  ASSERT_EQ(docs.insertParagraph(0, oldSecret), 403);
  docs.deleteParagraph(0);

  plugin_.tracker().evictAssociationsOlderThan(cutoff);

  EXPECT_EQ(docs.insertParagraph(0, oldSecret), 200)
      << "evicted fingerprints must stop blocking";
  EXPECT_EQ(docs.insertParagraph(1, newSecret), 403)
      << "recent fingerprints must survive eviction";
}

TEST_F(EndToEndTest, NetworkLogShowsOnlyPermittedPlaintext) {
  // In warn (advisory) mode everything flows, but warnings accumulate; the
  // network log lets an auditor reconstruct what left the browser.
  const std::string evaluation = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/eval", evaluation);
  browser::Page& docsTab = browser_.openTab("https://docs.google.com/d/W");
  cloud::DocsClient docs(docsTab, "W");
  docs.openDocument();
  EXPECT_EQ(docs.insertParagraph(0, evaluation), 200);  // warn mode
  EXPECT_FALSE(plugin_.warnings().empty());
  EXPECT_FALSE(network_.requestsTo("https://docs.google.com").empty());
}

}  // namespace
}  // namespace bf
