// Chaos end-to-end test: the full stack (browser + plug-in + clients) runs
// against a FaultInjector-wrapped SimNetwork at a >= 20% fault rate, with
// retries enabled. Two invariants must hold:
//
//  1. Goodput: every upload the policy ALLOWS eventually lands on the
//     backend despite the faults (the retry discipline absorbs them);
//  2. Safety: uploads the policy BLOCKS never reach the network — the
//     plug-in intercepts before the injector/network see the request, and
//     faults never shake sensitive payloads loose.
//
// A third phase trips the decision engine's circuit breaker and checks the
// degradation accounting: the bf_decision_degraded_total delta matches the
// kDecisionDegraded audit records exactly.
//
// Provenance acceptance rides on this file: every blocked and degraded
// decision produced under chaos must resolve to a complete causal record in
// the flight recorder (ingress → stages → verdict).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cloud/fault_injector.h"
#include "cloud/network.h"
#include "cloud/notes_client.h"
#include "core/plugin.h"
#include "corpus/text_generator.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace bf {
namespace {

constexpr double kFaultRate = 0.24;  // >= 20%, spread over 4 fault kinds
constexpr char kNotesOrigin[] = "https://notes.corp";

class ChaosTest : public ::testing::Test {
 protected:
  ChaosTest()
      : rng_(99),
        gen_(&rng_),
        network_(&rng_),
        faultNet_(&network_, /*seed=*/4242,
                  cloud::FaultConfig::uniformRate(kFaultRate)),
        plugin_(blockConfig(), &clock_),
        browser_(&faultNet_) {
    network_.registerService(kNotesOrigin, &notesBackend_);
    // The notes service is external/unregistered: Lp = {}, so anything
    // carrying the interview tag is blocked there.
    plugin_.policy().services().upsert({"https://itool.corp",
                                        "Interview Tool", tdm::TagSet{"ti"},
                                        tdm::TagSet{"ti"}});
    browser_.addExtension(&plugin_);
    // Provenance acceptance: sample every trace and widen the ring so the
    // explainability sweeps below can demand 100% of blocked/degraded
    // decisions resolve, even with other suites sharing the process ring.
    savedSampleEvery_ = obs::traceSampleEvery();
    obs::setTraceSampleEvery(1);
    obs::FlightRecorder::instance().setCapacity(4096);
  }

  ~ChaosTest() override {
    obs::setTraceSampleEvery(savedSampleEvery_);
    obs::FlightRecorder::instance().setCapacity(
        obs::FlightRecorder::kDefaultCapacity);
  }

  static core::BrowserFlowConfig blockConfig() {
    core::BrowserFlowConfig c;
    c.mode = core::EnforcementMode::kBlock;
    return c;
  }

  /// Flight-recorder records appended after `sinceDecisionId`, oldest first.
  static std::vector<obs::DecisionTrace> recordsSince(
      std::uint64_t sinceDecisionId) {
    std::vector<obs::DecisionTrace> out;
    for (auto& record : obs::FlightRecorder::instance().recent()) {
      if (record.decisionId > sinceDecisionId) out.push_back(std::move(record));
    }
    return out;
  }

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  cloud::SimNetwork network_;
  cloud::FaultInjector faultNet_;
  cloud::NotesBackend notesBackend_;
  core::BrowserFlowPlugin plugin_;
  browser::Browser browser_;
  std::uint32_t savedSampleEvery_ = 16;
};

TEST_F(ChaosTest, AllowedUploadsLandBlockedUploadsNever) {
  browser::Page& tab = browser_.openTab(std::string(kNotesOrigin) + "/n/1");
  cloud::NotesClient notes(tab, "n1");
  notes.openNote();

  util::RetryPolicy retry;
  retry.maxAttempts = 8;
  retry.deadlineMs = 0.0;  // the attempt cap bounds the loop
  notes.enableRetries(retry, /*seed=*/7, /*budgetCapacity=*/50.0);

  // Phase 1 — goodput: 30 clean paragraph edits, each auto-saving the whole
  // note through the faulty network. Every save must eventually succeed.
  const std::uint64_t faultsBefore = faultNet_.faultCount();
  const std::uint64_t idsBefore =
      obs::FlightRecorder::instance().lastDecisionId();
  for (int i = 0; i < 30; ++i) {
    const int status = notes.appendParagraph(gen_.paragraph(4, 6));
    ASSERT_EQ(status, 200) << "allowed save " << i
                           << " must land despite faults";
  }
  EXPECT_EQ(notesBackend_.noteText("n1"), notes.noteText())
      << "backend state converged to the editor state";
  EXPECT_GT(faultNet_.faultCount(), faultsBefore)
      << "a 24% fault rate over 30+ uploads must actually inject faults";

  // Phase 2 — safety: text tainted by the Interview Tool is blocked at the
  // notes service, and no fault/retry combination leaks it to the network.
  const std::string evaluation = gen_.paragraph(7, 9);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/eval/9", evaluation);
  const std::string beforeBlocked = notesBackend_.noteText("n1");
  const int blockedStatus = notes.appendParagraph(evaluation);
  EXPECT_EQ(blockedStatus, 403) << "policy block, not a transport fault";
  EXPECT_EQ(notesBackend_.noteText("n1"), beforeBlocked)
      << "blocked content never reached the backend";

  // The sensitive text appears in NO request body the network ever saw
  // (the injector sits behind the plug-in, so even faulted/retried
  // requests are policy-clean). Match on a marker substring to sidestep
  // JSON escaping of the full paragraph.
  const std::string marker = evaluation.substr(0, 24);
  for (const auto& entry : network_.log()) {
    EXPECT_EQ(entry.request.body.find(marker), std::string::npos)
        << "sensitive text leaked into the network log";
  }

  // Phase 3 — explainability: every blocked decision from phase 2 resolves
  // in the flight recorder to a complete causal record, and the retried
  // phase-1 saves left their retry history on the retained traces.
  const std::vector<obs::DecisionTrace> records = recordsSince(idsBefore);
  std::size_t blocked = 0;
  bool sawRetries = false;
  for (const auto& record : records) {
    if (record.retryAttempts > 1) sawRetries = true;
    if (!record.violation) continue;
    ++blocked;
    const auto explained =
        obs::FlightRecorder::instance().explain(record.decisionId);
    ASSERT_TRUE(explained.has_value());
    EXPECT_NE(explained->traceId, 0u) << "blocked decision missing its trace";
    EXPECT_FALSE(explained->ingress.empty());
    EXPECT_EQ(explained->action, "block");
    EXPECT_GT(explained->stages.total(), 0u)
        << "blocked decision carries no per-stage attribution";
    EXPECT_FALSE(explained->hits.empty() && explained->violatingTags.empty())
        << "a block must name what it matched";
    EXPECT_EQ(obs::FlightRecorder::instance()
                  .explainByTrace(explained->traceId)
                  ->traceId,
              explained->traceId);
  }
  EXPECT_GE(blocked, 1u) << "the phase-2 block must be in the recorder";
  EXPECT_TRUE(sawRetries)
      << "24% faults over 30 saves must leave retry annotations";
}

TEST_F(ChaosTest, DegradedDecisionsMatchAuditTrail) {
  // Trip the engine's circuit breaker: a ~zero latency budget makes every
  // disclosure lookup count as slow.
  core::ResilienceConfig res;
  res.breakerLatencyBudgetMs = 1e-12;
  res.breakerTripThreshold = 2;
  res.breakerOpenDecisions = 100;
  res.degradedMode = core::DegradedMode::kFailOpen;
  plugin_.engine().setResilience(res);

  const std::uint64_t degradedBefore =
      obs::registry().counter("bf_decision_degraded_total").value();
  const std::size_t auditBefore =
      plugin_.policy()
          .audit()
          .byKind(tdm::AuditRecord::Kind::kDecisionDegraded)
          .size();
  const std::uint64_t idsBefore =
      obs::FlightRecorder::instance().lastDecisionId();

  browser::Page& tab = browser_.openTab(std::string(kNotesOrigin) + "/n/2");
  cloud::NotesClient notes(tab, "n2");
  notes.openNote();
  for (int i = 0; i < 10; ++i) {
    notes.appendParagraph(gen_.paragraph(3, 5));
  }

  const std::uint64_t degradedDelta =
      obs::registry().counter("bf_decision_degraded_total").value() -
      degradedBefore;
  const std::size_t auditDelta =
      plugin_.policy()
          .audit()
          .byKind(tdm::AuditRecord::Kind::kDecisionDegraded)
          .size() -
      auditBefore;
  EXPECT_GT(degradedDelta, 0u) << "the tripped breaker must degrade decisions";
  EXPECT_EQ(degradedDelta, auditDelta)
      << "every degraded decision appears in the TDM audit log";

  // 100% explainability: one flight-recorder record per degraded decision,
  // each resolving to a causal record that names the breaker.
  std::size_t degradedRecords = 0;
  for (const auto& record : recordsSince(idsBefore)) {
    if (!record.degraded) continue;
    ++degradedRecords;
    const auto explained =
        obs::FlightRecorder::instance().explain(record.decisionId);
    ASSERT_TRUE(explained.has_value());
    EXPECT_NE(explained->traceId, 0u);
    EXPECT_FALSE(explained->ingress.empty());
    EXPECT_NE(explained->degradedReason.find("breaker"), std::string::npos);
  }
  EXPECT_EQ(degradedRecords, degradedDelta)
      << "every degraded decision must be retained, not just counted";
}

TEST_F(ChaosTest, ExportsCarryNoCorpusPlaintext) {
  // Full run: clean edits land, a sensitive upload is blocked — then every
  // observability export (Prometheus text, metrics JSON, flight-recorder
  // JSON) is swept for corpus plaintext. The sec type layer plus
  // scripts/bftaint.py claim raw content cannot reach these sinks; this
  // test is the runtime witness of that claim.
  browser::Page& tab = browser_.openTab(std::string(kNotesOrigin) + "/n/3");
  cloud::NotesClient notes(tab, "n3");
  notes.openNote();
  util::RetryPolicy retry;
  retry.maxAttempts = 8;
  retry.deadlineMs = 0.0;
  notes.enableRetries(retry, /*seed=*/13, /*budgetCapacity=*/50.0);

  std::vector<std::string> corpusTexts;
  for (int i = 0; i < 8; ++i) {
    corpusTexts.push_back(gen_.paragraph(5, 7));
    ASSERT_EQ(notes.appendParagraph(corpusTexts.back()), 200);
  }
  const std::string evaluation = gen_.paragraph(7, 9);
  corpusTexts.push_back(evaluation);
  plugin_.observeServiceDocument("https://itool.corp",
                                 "https://itool.corp/eval/3", evaluation);
  EXPECT_EQ(notes.appendParagraph(evaluation), 403);

  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  const std::string exports[] = {
      obs::toPrometheusText(snap),
      obs::toJson(snap),
      obs::toJson(obs::FlightRecorder::instance()),
  };
  // No 24-char window of any corpus paragraph may appear in any export.
  // Windows step by 8 so a leak of any aligned or unaligned substring of
  // meaningful length is caught.
  for (const std::string& text : corpusTexts) {
    for (std::size_t off = 0; off + 24 <= text.size(); off += 8) {
      const std::string window = text.substr(off, 24);
      for (const std::string& out : exports) {
        ASSERT_EQ(out.find(window), std::string::npos)
            << "corpus plaintext leaked into an export: \"" << window
            << "\"";
      }
    }
  }

  // Positive check: the blocked decision's flight record carries a
  // REDACTED preview (ellipsis + char count), so the exports are scrubbed
  // because of redaction, not because previews are missing entirely.
  const std::string& flightJson = exports[2];
  EXPECT_NE(flightJson.find("content_preview"), std::string::npos);
  EXPECT_NE(flightJson.find("chars)"), std::string::npos);
}

}  // namespace
}  // namespace bf
