// Fuzz-style robustness smoke tests: seeded random and adversarial inputs
// into every parser/deserializer. The contract everywhere is "reject with
// an error, never crash or hang".
#include <gtest/gtest.h>

#include "browser/html_parser.h"
#include "browser/readability.h"
#include "flow/snapshot.h"
#include "text/winnower.h"
#include "util/json_text.h"
#include "util/rng.h"

namespace bf {
namespace {

std::string randomBytes(util::Rng& rng, std::size_t n) {
  std::string s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng.uniform(0, 255)));
  }
  return s;
}

std::string randomHtmlish(util::Rng& rng, std::size_t n) {
  static const char* kPieces[] = {"<",    ">",     "</",   "/>",  "<div",
                                  "<p>",  "</p>",  "=",    "\"",  "'",
                                  "<!--", "-->",   "<!",   "a b", "name=",
                                  "<form","<input"};
  std::string s;
  while (s.size() < n) {
    s += kPieces[rng.uniform(0, std::size(kPieces) - 1)];
    if (rng.chance(0.3)) s += randomBytes(rng, rng.uniform(1, 5));
  }
  return s;
}

TEST(FuzzSmoke, HtmlParserSurvivesGarbage) {
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    browser::Document doc;
    browser::parseHtml(doc, randomBytes(rng, 500));
    browser::parseHtml(doc, randomHtmlish(rng, 500));
    // The resulting tree must still be walkable.
    (void)doc.root()->textContent();
    (void)browser::extractMainText(*doc.root());
  }
}

TEST(FuzzSmoke, HtmlParserPathologicalNesting) {
  browser::Document doc;
  std::string deep;
  for (int i = 0; i < 500; ++i) deep += "<div>";
  deep += "core";
  browser::parseHtml(doc, deep);  // unclosed 500-deep nesting
  EXPECT_NE(doc.root()->textContent().find("core"), std::string::npos);
}

TEST(FuzzSmoke, JsonScannerSurvivesGarbage) {
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    (void)util::scanJsonStringFields(randomBytes(rng, 300));
    (void)util::unescapeJsonString(randomBytes(rng, 100));
  }
  // Adversarial backslash runs.
  (void)util::scanJsonStringFields("{\"k\": \"\\\\\\\\\\\"}");
  (void)util::unescapeJsonString("\\\\\\u12");
  (void)util::unescapeJsonString("\\");
}

TEST(FuzzSmoke, FingerprintingSurvivesArbitraryBytes) {
  util::Rng rng(3);
  const text::FingerprintConfig config;
  for (int i = 0; i < 30; ++i) {
    const auto fp = text::fingerprintText(randomBytes(rng, 2000), config);
    for (const auto& g : fp.grams()) {
      EXPECT_LE(g.hash, 0xffffffffULL);  // 32-bit config respected
    }
  }
}

TEST(FuzzSmoke, SnapshotImportSurvivesCorruption) {
  util::Rng rng(4);
  util::LogicalClock clock;
  flow::FlowTracker tracker(flow::TrackerConfig{}, &clock);
  tracker.observeSegment(flow::SegmentKind::kParagraph, "a#p0", "a", "s",
                         std::string(200, 'x') + "varied content here with "
                         "enough length to produce a fingerprint for sure");
  std::string blob = flow::exportState(tracker);

  // Random single-byte corruptions: each import must either succeed (the
  // byte was in unused padding — impossible here, so: ) or fail cleanly.
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupted = blob;
    const std::size_t pos =
        static_cast<std::size_t>(rng.uniform(0, corrupted.size() - 1));
    corrupted[pos] = static_cast<char>(rng.uniform(0, 255));
    util::LogicalClock clock2;
    flow::FlowTracker restored(flow::TrackerConfig{}, &clock2);
    (void)flow::importState(restored, corrupted);  // must not crash
  }
  // Random truncations.
  for (int trial = 0; trial < 30; ++trial) {
    std::string truncated = blob.substr(
        0, static_cast<std::size_t>(rng.uniform(0, blob.size())));
    util::LogicalClock clock2;
    flow::FlowTracker restored(flow::TrackerConfig{}, &clock2);
    (void)flow::importState(restored, truncated);
  }
  // Pure noise.
  for (int trial = 0; trial < 30; ++trial) {
    util::LogicalClock clock2;
    flow::FlowTracker restored(flow::TrackerConfig{}, &clock2);
    EXPECT_FALSE(
        flow::importState(restored, randomBytes(rng, 400)).ok());
  }
}

TEST(FuzzSmoke, NormalizerIdentityOnRandomAscii) {
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    std::string s;
    for (int k = 0; k < 200; ++k) {
      s.push_back(static_cast<char>(rng.uniform(32, 126)));
    }
    const auto norm = text::normalize(s);
    // Every kept byte maps back into the source.
    for (std::size_t k = 0; k < norm.size(); ++k) {
      ASSERT_LT(norm.originalOffset[k], s.size());
    }
  }
}

}  // namespace
}  // namespace bf
