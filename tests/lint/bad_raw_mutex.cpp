// Fixture: raw standard-library locking outside src/util must be flagged.
// Not compiled; consumed by `scripts/bflint.py --selftest`.
// bflint-expect: raw-mutex
#include <mutex>

namespace bf::lintfixture {

std::mutex g_bad;  // should be bf::util::Mutex

int lockedIncrement(int value) {
  std::lock_guard<std::mutex> lock(g_bad);  // should be bf::util::MutexLock
  return value + 1;
}

}  // namespace bf::lintfixture
