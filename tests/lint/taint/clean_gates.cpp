// bftaint fixture: every declassification gate in one file — all of these
// emissions are safe by construction, so the file must be CLEAN.
// (No bftaint-expect line: the selftest asserts zero findings.)
#include <cstdio>
#include <string>

#include "crypto/sealer.h"
#include "sec/sensitive.h"
#include "text/winnower.h"
#include "util/hashing.h"
#include "util/logging.h"

namespace bf {

void emitSafely(sec::SensitiveText doc, crypto::Sealer& sealer) {
  // Length/emptiness are harmless scalars.
  BF_LOG(util::LogLevel::kInfo, "demo")
      << "bytes=" << doc.size() << " empty=" << doc.empty();

  // redact(): a few edge characters plus the length.
  BF_LOG(util::LogLevel::kInfo, "demo")
      << "preview=" << sec::redact(doc).text;

  // One-way hashes.
  std::printf("hash=%llu fnv=%llu\n",
              static_cast<unsigned long long>(sec::contentHash(doc)),
              static_cast<unsigned long long>(util::fnv1a64(doc.raw())));

  // Winnowed fingerprints are hash sets, not text.
  text::FingerprintConfig cfg;
  const text::Fingerprint fp = text::fingerprintText(doc, cfg);
  std::printf("fingerprints=%zu\n", fp.size());

  // Ciphertext envelope.
  const std::string envelope = sealer.seal(doc);
  std::printf("sealed=%s\n", envelope.c_str());
}

}  // namespace bf
