// bftaint fixture: raw content lands in a span attribute and an audit
// record literal — the two structured sinks the pipeline exports.
// bftaint-expect: taint-to-sink
#include <string>

#include "obs/trace.h"
#include "sec/sensitive.h"
#include "tdm/audit.h"

namespace bf {

void leakToAttr(sec::SensitiveView para) {
  obs::ScopedSpan span("demo");
  span.addAttr("content", para.raw().size() + 0);
  std::string captured(para.raw());
  span.addAttr("body", captured.length() + 1);
  // The scalar observers above are fine; this one is not:
  tdm::AuditRecord rec{tdm::AuditRecord::Kind::kViolationWarned,
                       0, "", tdm::Tag{}, std::string(para.raw()), "", ""};
}

}  // namespace bf
