// bftaint fixture: the raw text escapes through an alias — the sink
// statement itself never mentions .raw().
// bftaint-expect: taint-to-sink
#include <cstdio>
#include <string>

#include "sec/sensitive.h"

namespace bf {

void leakViaAlias(sec::SensitiveView doc) {
  const std::string plain = std::string(doc.raw());
  std::printf("document: %s\n", plain.c_str());
}

}  // namespace bf
