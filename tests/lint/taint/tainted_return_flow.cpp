// bftaint fixture: a Sensitive-returning function taints its call site
// even with no visible .raw() in the leaking function.
// bftaint-expect: taint-to-sink
#include <cstdio>
#include <string>

#include "sec/sensitive.h"

namespace bf {

sec::SensitiveText loadDocument();

void leakFromReturn() {
  auto doc = loadDocument();
  std::printf("%zu %s\n", doc.size(), doc.raw().data());
}

}  // namespace bf
