// bftaint fixture: taint survives concatenation and a second hop before
// reaching a std::cout stream.
// bftaint-expect: taint-to-sink
#include <iostream>
#include <string>

#include "sec/sensitive.h"

namespace bf {

void leakViaConcat(sec::SensitiveText doc) {
  std::string prefix = "payload: ";
  std::string merged = prefix + std::string(doc.raw());
  std::string hop = merged;
  std::cout << hop << "\n";
}

}  // namespace bf
