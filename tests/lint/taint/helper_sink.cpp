// bftaint fixture: a local helper forwards its argument to BF_LOG, so the
// helper is a sink at its call sites (per-function summaries).
// bftaint-expect: taint-to-sink
#include <string>

#include "sec/sensitive.h"
#include "util/logging.h"

namespace bf {

namespace {

void logMessage(const std::string& message) {
  BF_LOG(util::LogLevel::kInfo, "demo") << message;
}

}  // namespace

void leakViaHelper(sec::SensitiveText doc) {
  logMessage(std::string(doc.raw()));
}

}  // namespace bf
