// bftaint fixture: the simplest leak — unwrapped content streamed into a
// log line. Not compiled; analyzed by scripts/bftaint.py --selftest.
// bftaint-expect: taint-to-sink
#include "sec/sensitive.h"
#include "util/logging.h"

namespace bf {

void leakDirect(sec::SensitiveText doc) {
  BF_LOG(util::LogLevel::kInfo, "demo") << "content: " << doc.raw();
}

}  // namespace bf
