// bftaint fixture: legitimate pipeline use of .raw() — the unwrapped text
// feeds fingerprinting and stays inside the process. Must be CLEAN: the
// sink statements only carry declassified values.
#include <cstdio>
#include <string>
#include <vector>

#include "sec/sensitive.h"
#include "text/segmenter.h"
#include "text/winnower.h"
#include "util/logging.h"

namespace bf {

void trackDocument(sec::SensitiveView fullText) {
  // Unwrapping for the kernel is what .raw() is FOR; segment text remains
  // tainted but never reaches a sink here.
  const auto paragraphs = text::segmentParagraphs(fullText.raw());
  text::FingerprintConfig cfg;
  std::size_t hashes = 0;
  for (const auto& para : paragraphs) {
    hashes += text::fingerprintText(para.text, cfg).size();
  }
  BF_LOG(util::LogLevel::kInfo, "demo")
      << "paragraphs=" << paragraphs.size() << " hashes=" << hashes;
}

}  // namespace bf
