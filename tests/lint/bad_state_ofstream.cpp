// bflint fixture: durable disclosure state has exactly two writers —
// flow/snapshot.cpp (checksummed checkpoints) and flow/wal.cpp (CRC-framed
// log appends). A bare std::ofstream in src/flow would write state bytes
// no recovery path can validate.
// bflint-expect: state-file-io
#include <fstream>
#include <string>

namespace bf::flow {

inline void rogueStateWriter(const std::string& path,
                             const std::string& state) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(state.data(), static_cast<std::streamsize>(state.size()));
}

}  // namespace bf::flow
