// bflint fixture: all durable-state I/O in src/flow goes through the
// bf::io VFS seam (src/io/vfs.h). A bare std::ofstream would write state
// bytes no recovery path can validate and no fault injector can reach.
// bflint-expect: state-file-io
#include <fstream>
#include <string>

namespace bf::flow {

inline void rogueStateWriter(const std::string& path,
                             const std::string& state) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(state.data(), static_cast<std::streamsize>(state.size()));
}

}  // namespace bf::flow
