// bflint fixture: raw POSIX file syscalls in src/flow bypass the bf::io
// VFS seam (src/io/vfs.h), so storage-chaos runs could never inject
// ENOSPC / torn writes / fsync failures into them. Note the rule must NOT
// fire on class-qualified method names like `WriteAheadLog::open(...)` —
// only on bare global-namespace calls.
// bflint-expect: state-file-io
#include <fcntl.h>
#include <unistd.h>

#include <string>

namespace bf::flow {

class NotTheWal {
 public:
  // Class-qualified declaration: must not trip the bare-`::open` pattern.
  bool open(const std::string& path);
};

inline bool NotTheWal::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const char byte = 'x';
  (void)::write(fd, &byte, 1);
  (void)::fsync(fd);
  ::close(fd);
  return true;
}

}  // namespace bf::flow
