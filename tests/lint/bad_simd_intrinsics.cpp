// bflint fixture: raw SIMD intrinsics are banned outside src/text/simd/
// and src/util/crc32c.cpp — ad-hoc vector code bypasses the cpuid runtime
// dispatcher (text/simd/kernel.h), the BF_FORCE_SCALAR_KERNEL override,
// and the scalar-fallback guarantee.
// bflint-expect: simd-intrinsics
#include <immintrin.h>

namespace bf::flow {

inline int sneakyVectorSum(const int* p) {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m128i lo = _mm256_castsi256_si128(v);
  return _mm_cvtsi128_si32(lo);
}

}  // namespace bf::flow
