// bflint fixture: std::deque is banned in src/text — the fingerprint
// kernel's scratch must be flat (FingerprintWorkspace ring buffers), not a
// chunked node container.
// bflint-expect: deque-scratch
#include <deque>

namespace bf::text {

inline int slowMonotonicQueue() {
  std::deque<int> q;
  q.push_back(1);
  return q.front();
}

}  // namespace bf::text
