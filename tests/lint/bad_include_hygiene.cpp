// Fixture: path-escaping, internal, and unresolvable includes must be
// flagged. Not compiled; selftest input only.
// bflint-expect: include-hygiene
#include "../src/util/mutex.h"
#include <bits/stdc++.h>
#include "no/such/header.h"

namespace bf::lintfixture {
int placeholder() { return 0; }
}  // namespace bf::lintfixture
