// Fixture: direct TraceLog access and raw std::chrono timing in pipeline
// code (src/core, src/flow) must be flagged — spans go through
// obs::ScopedSpan and stage time through obs::StageTimer. Not compiled;
// selftest input only.
// bflint-expect: raw-timing
#include "obs/trace.h"

namespace bf::lintfixture {

void emitSpanBehindTheTraceContextsBack() {
  obs::TraceLog::instance();  // bypasses parent-linking via ScopedSpan
}

long timeAStageByHand() {
  // steady_clock passes wall-clock, but raw chrono in the pipeline evades
  // stage attribution; use obs::StageTimer on util::fastTicks.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace bf::lintfixture
