// Fixture: wall-clock time and unseeded randomness outside util/clock.* /
// util/rng.* must be flagged. Not compiled; selftest input only.
// (The <chrono> include also trips raw-timing: fixture mode applies every
// rule with path exemptions off.)
// bflint-expect: wall-clock, raw-timing
#include <chrono>
#include <cstdlib>

namespace bf::lintfixture {

long wallClockNow() {
  // Non-monotonic and non-deterministic: breaks simulation replay.
  return std::chrono::system_clock::now().time_since_epoch().count();
}

int unseededNoise() { return rand() % 6; }

}  // namespace bf::lintfixture
