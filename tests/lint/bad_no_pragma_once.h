// Fixture: a header without `#pragma once`. Not compiled; selftest input.
// bflint-expect: missing-pragma-once

namespace bf::lintfixture {
inline int answer() { return 42; }
}  // namespace bf::lintfixture
