// Fixture: a header every bflint rule should pass. Mentions of banned
// tokens inside comments and string literals must NOT fire: std::mutex,
// std::lock_guard, system_clock, rand().
#pragma once

#include <string>

#include "util/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace bf::lintfixture {

/// Monotonic measurement time through the project clock shim: raw
/// std::chrono would trip raw-timing in fixture mode.
inline unsigned long long monotonicTicks() { return util::fastTicks(); }

inline std::string bannedTokensInStrings() {
  return "std::mutex, std::condition_variable, rand(, system_clock, "
         "std::chrono, TraceLog::instance";
}

class Guarded {
 public:
  void bump() BF_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    ++count_;
  }

 private:
  util::Mutex mutex_;
  int count_ BF_GUARDED_BY(mutex_) = 0;
};

}  // namespace bf::lintfixture
