// Fixture: a header every bflint rule should pass. Mentions of banned
// tokens inside comments and string literals must NOT fire: std::mutex,
// std::lock_guard, system_clock, rand().
#pragma once

#include <chrono>
#include <string>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace bf::lintfixture {

/// steady_clock is monotonic measurement time and explicitly allowed.
inline long monotonicNanos() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

inline std::string bannedTokensInStrings() {
  return "std::mutex, std::condition_variable, rand(, system_clock";
}

class Guarded {
 public:
  void bump() BF_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    ++count_;
  }

 private:
  util::Mutex mutex_;
  int count_ BF_GUARDED_BY(mutex_) = 0;
};

}  // namespace bf::lintfixture
