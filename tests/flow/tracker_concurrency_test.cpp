// Concurrency tests for the FlowTracker's internal synchronisation.
//
// Before the thread-safety migration the tracker was only safe when
// externally serialised (the engine's stateMutex_); it then carried its
// own ranked reader-writer lock, and now uses left-right replication
// (util/left_right.h, DESIGN.md §15): queries are lock-free reads of a
// quiescent store replica, mutations serialise on a writer mutex and
// double-apply. These tests are the regression suite for that contract —
// concurrent observe/query/remove coherence, no torn reads, and a reader
// path that provably never takes the rank-40 tracker mutex — and run
// under the tsan preset.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "corpus/text_generator.h"
#include "flow/tracker.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace bf::flow {
namespace {

class TrackerConcurrencyTest : public ::testing::Test {
 protected:
  TrackerConcurrencyTest() : tracker_(TrackerConfig{}, &clock_) {}

  util::LogicalClock clock_;
  FlowTracker tracker_;
};

TEST_F(TrackerConcurrencyTest, ConcurrentObserversKeepAttributionIntact) {
  // Seed a sensitive corpus, then let writer threads observe fresh edits
  // while reader threads run disclosure queries against the same stores.
  util::Rng seedRng(5);
  corpus::TextGenerator seedGen(&seedRng);
  std::vector<std::string> secrets;
  for (int i = 0; i < 16; ++i) {
    secrets.push_back(seedGen.paragraph(6, 8));
    tracker_.observeSegment(SegmentKind::kParagraph,
                            "secret" + std::to_string(i) + "#p0",
                            "secret" + std::to_string(i), "internal",
                            secrets.back());
  }

  constexpr int kWriters = 3;
  constexpr int kEditsPerWriter = 120;
  std::atomic<bool> stop{false};
  std::atomic<int> queriesRun{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& secret = secrets[static_cast<std::size_t>(r) * 7 %
                                     secrets.size()];
        const auto hits = tracker_.checkText(secret, "probe");
        EXPECT_FALSE(hits.empty());
        queriesRun.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      util::Rng rng(static_cast<std::uint64_t>(w) * 31 + 1);
      corpus::TextGenerator gen(&rng);
      for (int i = 0; i < kEditsPerWriter; ++i) {
        const std::string name = "w" + std::to_string(w) + "/d" +
                                 std::to_string(i % 10) + "#p0";
        const SegmentId id = tracker_.observeSegment(
            SegmentKind::kParagraph, name, "w" + std::to_string(w), "ext",
            i % 3 == 0 ? secrets[static_cast<std::size_t>(i) % secrets.size()]
                       : gen.paragraph(4, 6));
        // Exercise the cached query path concurrently with other writers.
        (void)tracker_.sourcesForSegment(id);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_GT(queriesRun.load(), 0);
  // Post-stress coherence: every secret still attributes to its source.
  for (std::size_t i = 0; i < secrets.size(); ++i) {
    const auto hits = tracker_.checkText(secrets[i], "probe");
    ASSERT_FALSE(hits.empty()) << "secret " << i << " lost";
    EXPECT_EQ(hits[0].sourceName, "secret" + std::to_string(i) + "#p0");
  }
}

TEST_F(TrackerConcurrencyTest, RemovalsRaceQueriesWithoutCorruption) {
  util::Rng seedRng(9);
  corpus::TextGenerator seedGen(&seedRng);
  const std::string keeper = seedGen.paragraph(6, 8);
  tracker_.observeSegment(SegmentKind::kParagraph, "keeper#p0", "keeper",
                          "internal", keeper);
  std::vector<std::string> doomed;
  for (int i = 0; i < 64; ++i) {
    doomed.push_back("doomed" + std::to_string(i) + "#p0");
    tracker_.observeSegment(SegmentKind::kParagraph, doomed.back(),
                            "doomed" + std::to_string(i), "internal",
                            seedGen.paragraph(4, 6));
  }

  std::thread remover([&] {
    for (const auto& name : doomed) tracker_.removeSegmentByName(name);
  });
  std::thread querier([&] {
    for (int i = 0; i < 200; ++i) {
      const auto hits = tracker_.checkText(keeper, "probe");
      ASSERT_FALSE(hits.empty());
      EXPECT_EQ(hits[0].sourceName, "keeper#p0");
    }
  });
  remover.join();
  querier.join();

  // All doomed segments are gone; the keeper attribution survived.
  for (const auto& name : doomed) {
    EXPECT_EQ(tracker_.segmentByName(name), nullptr);
  }
  EXPECT_NE(tracker_.segmentByName("keeper#p0"), nullptr);
}

TEST_F(TrackerConcurrencyTest, DocumentObserversRaceReadersCoherently) {
  // observeDocument's batched path (fingerprints outside the lock, one
  // exclusive apply) racing shared-mode readers: queries must never see a
  // half-applied document, and every document must land intact.
  util::Rng seedRng(11);
  corpus::TextGenerator seedGen(&seedRng);
  const std::string secret = seedGen.paragraph(7, 8);
  tracker_.observeSegment(SegmentKind::kParagraph, "secret#p0", "secret",
                          "internal", secret);
  const text::Fingerprint secretFp = tracker_.fingerprintOf(secret);

  constexpr int kWriters = 2;
  constexpr int kDocsPerWriter = 12;
  constexpr int kQueriesPerReader = 150;

  // Readers run a BOUNDED number of queries rather than spinning until the
  // writers finish: a precomputed-fingerprint query spends its whole
  // iteration inside the shared hold, and pthread's reader-preferring
  // rwlock would let an unbounded reader stream starve the writers'
  // exclusive acquisitions (pathological on one core).
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int q = 0; q < kQueriesPerReader; ++q) {
        // Shared-mode query with a precomputed fingerprint: pure read.
        const auto hits = tracker_.disclosedSources(
            secretFp, SegmentKind::kParagraph, kInvalidSegment, "probe");
        ASSERT_FALSE(hits.empty());
        EXPECT_EQ(hits[0].sourceName, "secret#p0");
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      util::Rng rng(static_cast<std::uint64_t>(w) * 97 + 13);
      corpus::TextGenerator gen(&rng);
      for (int d = 0; d < kDocsPerWriter; ++d) {
        std::string doc = secret;  // every document embeds the secret...
        for (int p = 0; p < 8; ++p) {  // ...plus fresh paragraphs
          doc += "\n\n" + gen.paragraph(3, 6);
        }
        const std::string name =
            "w" + std::to_string(w) + "/doc" + std::to_string(d);
        const auto obs = tracker_.observeDocument(name, "ext", doc);
        EXPECT_EQ(obs.paragraphs.size(), 9u);
      }
    });
  }
  for (auto& t : writers) t.join();
  for (auto& t : readers) t.join();

  // Every document landed whole: document segment plus all 9 paragraphs.
  for (int w = 0; w < kWriters; ++w) {
    for (int d = 0; d < kDocsPerWriter; ++d) {
      const std::string name =
          "w" + std::to_string(w) + "/doc" + std::to_string(d);
      ASSERT_NE(tracker_.segmentByName(name), nullptr) << name;
      for (int p = 0; p < 9; ++p) {
        EXPECT_NE(
            tracker_.segmentByName(name + "#p" + std::to_string(p)),
            nullptr)
            << name << "#p" << p;
      }
    }
  }
  // The embedded secret still attributes to the original source (it is the
  // oldest observer of those hashes).
  const auto hits = tracker_.checkText(secret, "probe");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].sourceName, "secret#p0");
}

TEST_F(TrackerConcurrencyTest, SourcesForSegmentReturnsStableCopies) {
  util::Rng rng(3);
  corpus::TextGenerator gen(&rng);
  const std::string secret = gen.paragraph(6, 8);
  tracker_.observeSegment(SegmentKind::kParagraph, "src#p0", "src",
                          "internal", secret);
  const SegmentId copy = tracker_.observeSegment(
      SegmentKind::kParagraph, "copy#p0", "copy", "ext", secret);

  // The returned vector is a copy: invalidating the cache entry (new
  // observation of the same segment) must not mutate what we already hold.
  const std::vector<DisclosureHit> before = tracker_.sourcesForSegment(copy);
  ASSERT_FALSE(before.empty());
  tracker_.observeSegment(SegmentKind::kParagraph, "copy#p0", "copy", "ext",
                          gen.paragraph(4, 6));
  EXPECT_FALSE(before.empty());
  EXPECT_EQ(before[0].sourceName, "src#p0");
}

TEST_F(TrackerConcurrencyTest, CheckTextRacesChurnWithoutTornResults) {
  // The lock-free read path under full churn: N readers hammer checkText
  // while writers interleave observeDocument and removeSegment. Every
  // returned hit must correspond to a state that actually existed — a hit
  // can only name the permanent secret or one of the churned documents'
  // paragraphs — and the permanent secret must never drop out (it is the
  // oldest owner of its hashes, so no later document can steal authority).
  util::Rng seedRng(17);
  corpus::TextGenerator seedGen(&seedRng);
  const std::string secret = seedGen.paragraph(7, 8);
  tracker_.observeSegment(SegmentKind::kParagraph, "secret#p0", "secret",
                          "internal", secret);

  constexpr int kReaders = 4;
  constexpr int kChurnRounds = 40;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto hits = tracker_.checkText(secret, "probe");
        // No torn result: the secret is always present, and every hit
        // names a segment some state actually contained.
        ASSERT_FALSE(hits.empty());
        bool sawSecret = false;
        for (const auto& h : hits) {
          ASSERT_GE(h.score, 0.0);
          ASSERT_LE(h.score, 1.0);
          ASSERT_GT(h.sourceFingerprintSize, 0u);
          ASSERT_LE(h.overlap, h.sourceFingerprintSize);
          if (h.sourceName == "secret#p0") sawSecret = true;
          ASSERT_TRUE(h.sourceName == "secret#p0" ||
                      h.sourceName.rfind("churn/", 0) == 0)
              << "hit names a segment that never existed: " << h.sourceName;
        }
        ASSERT_TRUE(sawSecret);
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread churn([&] {
    util::Rng rng(23);
    corpus::TextGenerator gen(&rng);
    for (int i = 0; i < kChurnRounds; ++i) {
      // A document embedding the secret plus fresh paragraphs...
      std::string doc = secret;
      for (int p = 0; p < 4; ++p) doc += "\n\n" + gen.paragraph(3, 5);
      const std::string name = "churn/doc" + std::to_string(i % 5);
      const auto obs = tracker_.observeDocument(name, "ext", doc);
      ASSERT_EQ(obs.paragraphs.size(), 5u);
      // ...then tear half of it down again while readers keep querying.
      if (i % 2 == 1) {
        for (int p = 0; p < 5; ++p) {
          tracker_.removeSegmentByName(name + "#p" + std::to_string(p));
        }
        tracker_.removeSegmentByName(name);
      }
    }
  });
  churn.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_GT(queries.load(), 0u);
  const auto hits = tracker_.checkText(secret, "probe");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].sourceName, "secret#p0");
}

TEST_F(TrackerConcurrencyTest, ReadPathsNeverAcquireTrackerLockRank) {
  // The acceptance check for the lock-free read path: with lock-rank
  // bookkeeping compiled in, the process-wide acquisition counter for
  // rank kRankTracker must not move across any query-path call. Writer
  // paths (observe, remove) must still move it — proving the counter is
  // live and the reader paths genuinely take no tracker mutex.
  if (!util::lockRankChecksEnabled()) {
    GTEST_SKIP() << "BF_LOCK_RANK_CHECKS disabled in this build";
  }
  util::Rng rng(29);
  corpus::TextGenerator gen(&rng);
  const std::string secret = gen.paragraph(6, 8);
  const SegmentId src = tracker_.observeSegment(
      SegmentKind::kParagraph, "src#p0", "src", "internal", secret);
  const SegmentId copy = tracker_.observeSegment(
      SegmentKind::kParagraph, "copy#p0", "copy", "ext", secret);
  const text::Fingerprint fp = tracker_.fingerprintOf(secret);
  // Warm the decision cache so sourcesForSegment takes its lock-free fast
  // path below (the first call is a miss and takes the writer mutex).
  ASSERT_FALSE(tracker_.sourcesForSegment(copy).empty());

  const std::uint64_t before =
      util::lockRankAcquireCount(util::kRankTracker);
  (void)tracker_.checkText(secret, "probe");
  (void)tracker_.disclosedSources(fp, SegmentKind::kParagraph);
  (void)tracker_.sourcesForSegment(copy);  // cached: lock-free fast path
  (void)tracker_.pairwiseDisclosure(src, copy);
  (void)tracker_.attributeDisclosure(src, fp);
  (void)tracker_.findSegmentWithFingerprint("copy", fp);
  (void)tracker_.segment(src);
  (void)tracker_.segmentByName("src#p0");
  (void)tracker_.segmentDb().size();
  (void)tracker_.hashDb().distinctHashCount();
  EXPECT_EQ(util::lockRankAcquireCount(util::kRankTracker), before)
      << "a query path acquired the rank-40 tracker mutex";

  // Control: a mutation DOES take the writer mutex, so the counter is not
  // simply dead.
  tracker_.observeSegment(SegmentKind::kParagraph, "w#p0", "w", "ext",
                          gen.paragraph(3, 5));
  EXPECT_GT(util::lockRankAcquireCount(util::kRankTracker), before);
}

}  // namespace
}  // namespace bf::flow
