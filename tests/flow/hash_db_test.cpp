// Tests for HashDb ("DBhash", paper S4.3).
#include <gtest/gtest.h>

#include "flow/hash_db.h"

namespace bf::flow {
namespace {

TEST(HashDb, OldestSegmentIsFirstObserver) {
  HashDb db;
  db.recordObservation(42, 1, 10);
  db.recordObservation(42, 2, 20);
  ASSERT_TRUE(db.oldestSegmentWith(42).has_value());
  EXPECT_EQ(*db.oldestSegmentWith(42), 1u);
}

TEST(HashDb, UnknownHash) {
  HashDb db;
  EXPECT_FALSE(db.oldestSegmentWith(99).has_value());
  EXPECT_TRUE(db.segmentsWith(99).empty());
}

TEST(HashDb, ReobservationKeepsOriginalTimestamp) {
  HashDb db;
  db.recordObservation(42, 1, 10);
  db.recordObservation(42, 1, 50);  // same (hash, segment) later
  ASSERT_TRUE(db.firstSeen(42, 1).has_value());
  EXPECT_EQ(*db.firstSeen(42, 1), 10u);
}

TEST(HashDb, SegmentsWithOrderedOldestFirst) {
  HashDb db;
  db.recordObservation(7, 3, 30);
  db.recordObservation(7, 1, 40);
  db.recordObservation(7, 2, 50);
  const auto segs = db.segmentsWith(7);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], 3u);
  EXPECT_EQ(segs[1], 1u);
  EXPECT_EQ(segs[2], 2u);
}

TEST(HashDb, OutOfOrderTimestampsSortedIn) {
  HashDb db;
  db.recordObservation(7, 1, 100);
  db.recordObservation(7, 2, 50);  // older than existing entry
  EXPECT_EQ(*db.oldestSegmentWith(7), 2u);
}

TEST(HashDb, RemovedSegmentSkippedByLookups) {
  HashDb db;
  db.recordObservation(7, 1, 10);
  db.recordObservation(7, 2, 20);
  db.removeSegment(1);
  EXPECT_EQ(*db.oldestSegmentWith(7), 2u);
  EXPECT_EQ(db.segmentsWith(7).size(), 1u);
  EXPECT_FALSE(db.firstSeen(7, 1).has_value());
}

TEST(HashDb, RemovalPromotesNextOldest) {
  // The authoritative source changes when the original is deleted —
  // provenance falls to the next-oldest copy.
  HashDb db;
  db.recordObservation(7, 1, 10);
  db.recordObservation(7, 2, 20);
  db.recordObservation(7, 3, 30);
  db.removeSegment(1);
  EXPECT_EQ(*db.oldestSegmentWith(7), 2u);
  db.removeSegment(2);
  EXPECT_EQ(*db.oldestSegmentWith(7), 3u);
  db.removeSegment(3);
  EXPECT_FALSE(db.oldestSegmentWith(7).has_value());
}

TEST(HashDb, RemovalGenerationBumps) {
  HashDb db;
  const auto g0 = db.removalGeneration();
  db.removeSegment(5);
  EXPECT_GT(db.removalGeneration(), g0);
}

TEST(HashDb, DistinctHashCount) {
  HashDb db;
  db.recordObservation(1, 1, 1);
  db.recordObservation(1, 2, 2);
  db.recordObservation(2, 1, 3);
  EXPECT_EQ(db.distinctHashCount(), 2u);
}

TEST(HashDb, EvictOlderThanDropsOldAssociations) {
  HashDb db;
  db.recordObservation(1, 1, 10);
  db.recordObservation(1, 2, 100);
  db.recordObservation(2, 1, 10);
  const std::size_t dropped = db.evictOlderThan(50);
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(db.distinctHashCount(), 1u);  // hash 2 fully evicted
  EXPECT_EQ(*db.oldestSegmentWith(1), 2u);
}

TEST(HashDb, EvictPurgesDeadAssociations) {
  HashDb db;
  db.recordObservation(1, 1, 10);
  db.removeSegment(1);
  db.evictOlderThan(0);  // cutoff 0 drops nothing by age, but purges dead
  EXPECT_EQ(db.distinctHashCount(), 0u);
}

TEST(HashDb, CompactDeadShrinksStore) {
  // The tombstone fix: physically removing a dead segment's associations
  // must shrink the store and clear the dead set, so lookups stop paying
  // the isDead probe for segments removed long ago.
  HashDb db;
  for (std::uint64_t h = 0; h < 100; ++h) {
    db.recordObservation(h, 1, 10);
    db.recordObservation(h, 2, 20);
  }
  ASSERT_EQ(db.associationCount(), 200u);
  db.setDeadCompactionThreshold(1000);  // keep removal lazy for this test
  db.removeSegment(1);
  EXPECT_EQ(db.deadSegmentCount(), 1u);
  EXPECT_EQ(db.associationCount(), 200u);  // lazy: nothing purged yet

  const std::size_t dropped = db.compactDead();
  EXPECT_EQ(dropped, 100u);
  EXPECT_EQ(db.associationCount(), 100u);  // store physically shrank
  EXPECT_EQ(db.deadSegmentCount(), 0u);    // tombstones cleared
  for (std::uint64_t h = 0; h < 100; ++h) {
    EXPECT_EQ(*db.oldestSegmentWith(h), 2u);
  }
  // Compacting an already-clean store is a no-op.
  EXPECT_EQ(db.compactDead(), 0u);
}

TEST(HashDb, RemovalAutoCompactsPastThreshold) {
  HashDb db;
  db.setDeadCompactionThreshold(2);
  for (std::uint64_t h = 0; h < 10; ++h) {
    db.recordObservation(h, 1, 10);
    db.recordObservation(h, 2, 20);
    db.recordObservation(h, 3, 30);
    db.recordObservation(h + 100, 4, 40);
  }
  db.removeSegment(1);
  db.removeSegment(2);
  EXPECT_EQ(db.deadSegmentCount(), 2u);    // at the threshold: still lazy
  EXPECT_EQ(db.associationCount(), 40u);
  db.removeSegment(3);                     // exceeds it: compacts
  EXPECT_EQ(db.deadSegmentCount(), 0u);
  EXPECT_EQ(db.associationCount(), 10u);   // only segment 4's remain
  EXPECT_EQ(db.distinctHashCount(), 10u);  // hashes 0..9 fully gone
  for (std::uint64_t h = 0; h < 10; ++h) {
    EXPECT_FALSE(db.oldestSegmentWith(h).has_value());
    EXPECT_EQ(*db.oldestSegmentWith(h + 100), 4u);
  }
}

TEST(HashDb, ZeroThresholdCompactsOnEveryRemoval) {
  HashDb db;
  db.setDeadCompactionThreshold(0);
  db.recordObservation(1, 1, 10);
  db.recordObservation(1, 2, 20);
  db.removeSegment(1);
  EXPECT_EQ(db.deadSegmentCount(), 0u);
  EXPECT_EQ(db.associationCount(), 1u);
  EXPECT_EQ(*db.oldestSegmentWith(1), 2u);
}

TEST(HashDb, ObservationAfterCompactionRebuildsHistory) {
  // A compacted-away segment can be re-observed later (e.g. restored from
  // a snapshot or re-created under the same id) without tombstone residue.
  HashDb db;
  db.setDeadCompactionThreshold(0);
  db.recordObservation(1, 1, 10);
  db.removeSegment(1);
  ASSERT_FALSE(db.oldestSegmentWith(1).has_value());
  db.recordObservation(1, 1, 99);
  EXPECT_EQ(*db.oldestSegmentWith(1), 1u);
  EXPECT_EQ(*db.firstSeen(1, 1), 99u);  // fresh observation, fresh time
}

TEST(HashDb, ManyHashesSurviveRehashing) {
  // Growth past several load-factor doublings must keep every history
  // intact (the rehash moves slots; overflow indices must stay valid).
  HashDb db;
  for (std::uint64_t h = 0; h < 5000; ++h) {
    db.recordObservation(h, (h % 7) + 1, h);
    if (h % 3 == 0) db.recordObservation(h, (h % 7) + 2, h + 1);
  }
  EXPECT_EQ(db.distinctHashCount(), 5000u);
  for (std::uint64_t h = 0; h < 5000; ++h) {
    ASSERT_TRUE(db.oldestSegmentWith(h).has_value()) << h;
    EXPECT_EQ(*db.oldestSegmentWith(h), (h % 7) + 1) << h;
    EXPECT_EQ(db.segmentsWith(h).size(), h % 3 == 0 ? 2u : 1u) << h;
  }
}

}  // namespace
}  // namespace bf::flow
