// Tests for HashDb ("DBhash", paper S4.3).
#include <gtest/gtest.h>

#include "flow/hash_db.h"

namespace bf::flow {
namespace {

TEST(HashDb, OldestSegmentIsFirstObserver) {
  HashDb db;
  db.recordObservation(42, 1, 10);
  db.recordObservation(42, 2, 20);
  ASSERT_TRUE(db.oldestSegmentWith(42).has_value());
  EXPECT_EQ(*db.oldestSegmentWith(42), 1u);
}

TEST(HashDb, UnknownHash) {
  HashDb db;
  EXPECT_FALSE(db.oldestSegmentWith(99).has_value());
  EXPECT_TRUE(db.segmentsWith(99).empty());
}

TEST(HashDb, ReobservationKeepsOriginalTimestamp) {
  HashDb db;
  db.recordObservation(42, 1, 10);
  db.recordObservation(42, 1, 50);  // same (hash, segment) later
  ASSERT_TRUE(db.firstSeen(42, 1).has_value());
  EXPECT_EQ(*db.firstSeen(42, 1), 10u);
}

TEST(HashDb, SegmentsWithOrderedOldestFirst) {
  HashDb db;
  db.recordObservation(7, 3, 30);
  db.recordObservation(7, 1, 40);
  db.recordObservation(7, 2, 50);
  const auto segs = db.segmentsWith(7);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], 3u);
  EXPECT_EQ(segs[1], 1u);
  EXPECT_EQ(segs[2], 2u);
}

TEST(HashDb, OutOfOrderTimestampsSortedIn) {
  HashDb db;
  db.recordObservation(7, 1, 100);
  db.recordObservation(7, 2, 50);  // older than existing entry
  EXPECT_EQ(*db.oldestSegmentWith(7), 2u);
}

TEST(HashDb, RemovedSegmentSkippedByLookups) {
  HashDb db;
  db.recordObservation(7, 1, 10);
  db.recordObservation(7, 2, 20);
  db.removeSegment(1);
  EXPECT_EQ(*db.oldestSegmentWith(7), 2u);
  EXPECT_EQ(db.segmentsWith(7).size(), 1u);
  EXPECT_FALSE(db.firstSeen(7, 1).has_value());
}

TEST(HashDb, RemovalPromotesNextOldest) {
  // The authoritative source changes when the original is deleted —
  // provenance falls to the next-oldest copy.
  HashDb db;
  db.recordObservation(7, 1, 10);
  db.recordObservation(7, 2, 20);
  db.recordObservation(7, 3, 30);
  db.removeSegment(1);
  EXPECT_EQ(*db.oldestSegmentWith(7), 2u);
  db.removeSegment(2);
  EXPECT_EQ(*db.oldestSegmentWith(7), 3u);
  db.removeSegment(3);
  EXPECT_FALSE(db.oldestSegmentWith(7).has_value());
}

TEST(HashDb, RemovalGenerationBumps) {
  HashDb db;
  const auto g0 = db.removalGeneration();
  db.removeSegment(5);
  EXPECT_GT(db.removalGeneration(), g0);
}

TEST(HashDb, DistinctHashCount) {
  HashDb db;
  db.recordObservation(1, 1, 1);
  db.recordObservation(1, 2, 2);
  db.recordObservation(2, 1, 3);
  EXPECT_EQ(db.distinctHashCount(), 2u);
}

TEST(HashDb, EvictOlderThanDropsOldAssociations) {
  HashDb db;
  db.recordObservation(1, 1, 10);
  db.recordObservation(1, 2, 100);
  db.recordObservation(2, 1, 10);
  const std::size_t dropped = db.evictOlderThan(50);
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(db.distinctHashCount(), 1u);  // hash 2 fully evicted
  EXPECT_EQ(*db.oldestSegmentWith(1), 2u);
}

TEST(HashDb, EvictPurgesDeadAssociations) {
  HashDb db;
  db.recordObservation(1, 1, 10);
  db.removeSegment(1);
  db.evictOlderThan(0);  // cutoff 0 drops nothing by age, but purges dead
  EXPECT_EQ(db.distinctHashCount(), 0u);
}

}  // namespace
}  // namespace bf::flow
