// Crash-recovery property test (DESIGN.md §11).
//
// Hundreds of seeded trials each run a random single-record mutation
// workload against a durability-managed tracker, remember the canonical
// exported state after EVERY WAL sequence (the oracle), then simulate a
// crash: the manager is destroyed and the on-disk files are corrupted —
// truncation at a random offset, a random bit flip, or deletion of the
// newest checkpoint. Recovery into a fresh tracker must always land on a
// PREFIX of the observed history: whatever sequence S recovery reports,
// the recovered state must byte-for-byte equal the oracle's state at S.
// There is no "partially applied" outcome — a corrupt checkpoint falls
// back to an older generation, a torn WAL frame discards the tail, and a
// broken prefix never lets later records in.
//
// Trials and seed are overridable for soak runs:
//   BF_RECOVERY_FUZZ_TRIALS (default 500)
//   BF_RECOVERY_FUZZ_SEED   (default 20260805)
#include <dirent.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "corpus/text_generator.h"
#include "flow/snapshot.h"
#include "flow/wal.h"
#include "io/fault_vfs.h"
#include "io/vfs.h"
#include "util/clock.h"
#include "util/rng.h"

namespace bf::flow {
namespace {

std::uint64_t envU64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void writeFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// Full paths of dir entries matching prefix/suffix, name-sorted (the
/// 16-hex-digit sequence makes name order == sequence order).
std::vector<std::string> listFiles(const std::string& dir,
                                   std::string_view prefix,
                                   std::string_view suffix) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (const dirent* e = ::readdir(d)) {
    const std::string_view name = e->d_name;
    if (name.size() > prefix.size() + suffix.size() &&
        name.substr(0, prefix.size()) == prefix &&
        name.substr(name.size() - suffix.size()) == suffix) {
      out.push_back(dir + "/" + std::string(name));
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

enum class Corruption {
  kNone,
  kTruncateWal,
  kFlipWalByte,
  kTruncateNewestCheckpoint,
  kFlipCheckpointByte,
  kDeleteNewestCheckpoint,
};

const char* corruptionName(Corruption c) {
  switch (c) {
    case Corruption::kNone: return "none";
    case Corruption::kTruncateWal: return "truncate-wal";
    case Corruption::kFlipWalByte: return "flip-wal-byte";
    case Corruption::kTruncateNewestCheckpoint: return "truncate-checkpoint";
    case Corruption::kFlipCheckpointByte: return "flip-checkpoint-byte";
    case Corruption::kDeleteNewestCheckpoint: return "delete-checkpoint";
  }
  return "?";
}

/// Applies one corruption to the durability directory. Returns a
/// description for failure messages.
std::string corrupt(util::Rng& rng, const std::string& dir, Corruption mode) {
  const auto pickFrom = [&rng](const std::vector<std::string>& files) {
    return files[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::uint64_t>(files.size() - 1)))];
  };
  switch (mode) {
    case Corruption::kNone:
      return "none";
    case Corruption::kTruncateWal: {
      const auto wals = listFiles(dir, "wal-", ".bfw");
      if (wals.empty()) return "none (no wal)";
      const std::string path = pickFrom(wals);
      std::string data = readFile(path);
      const std::size_t cut = static_cast<std::size_t>(
          rng.uniform(0, data.empty() ? 0 : data.size() - 1));
      data.resize(cut);
      writeFile(path, data);
      return "truncated " + path + " to " + std::to_string(cut);
    }
    case Corruption::kFlipWalByte: {
      const auto wals = listFiles(dir, "wal-", ".bfw");
      if (wals.empty()) return "none (no wal)";
      const std::string path = pickFrom(wals);
      std::string data = readFile(path);
      if (data.empty()) return "none (empty wal)";
      const std::size_t at = static_cast<std::size_t>(
          rng.uniform(0, data.size() - 1));
      data[at] = static_cast<char>(data[at] ^
                                   (1u << rng.uniform(0, 7)));
      writeFile(path, data);
      return "flipped byte " + std::to_string(at) + " of " + path;
    }
    case Corruption::kTruncateNewestCheckpoint: {
      const auto cps = listFiles(dir, "checkpoint-", ".bfc");
      if (cps.empty()) return "none (no checkpoint)";
      const std::string path = cps.back();
      std::string data = readFile(path);
      const std::size_t cut = static_cast<std::size_t>(
          rng.uniform(0, data.empty() ? 0 : data.size() - 1));
      data.resize(cut);
      writeFile(path, data);
      return "truncated " + path + " to " + std::to_string(cut);
    }
    case Corruption::kFlipCheckpointByte: {
      const auto cps = listFiles(dir, "checkpoint-", ".bfc");
      if (cps.empty()) return "none (no checkpoint)";
      const std::string path = pickFrom(cps);
      std::string data = readFile(path);
      if (data.empty()) return "none (empty checkpoint)";
      const std::size_t at = static_cast<std::size_t>(
          rng.uniform(0, data.size() - 1));
      data[at] = static_cast<char>(data[at] ^
                                   (1u << rng.uniform(0, 7)));
      writeFile(path, data);
      return "flipped byte " + std::to_string(at) + " of " + path;
    }
    case Corruption::kDeleteNewestCheckpoint: {
      const auto cps = listFiles(dir, "checkpoint-", ".bfc");
      if (cps.empty()) return "none (no checkpoint)";
      std::remove(cps.back().c_str());
      return "deleted " + cps.back();
    }
  }
  return "?";
}

/// Every association exported by the recovered tracker must point at a
/// live segment — a dangling association would mean a partially applied
/// record slipped through.
void expectNoDanglingAssociations(const FlowTracker& tracker) {
  for (SegmentKind kind : {SegmentKind::kParagraph, SegmentKind::kDocument}) {
    tracker.hashDb(kind).forEachAssociation(
        [&](std::uint64_t hash, SegmentId segment, util::Timestamp) {
          EXPECT_NE(tracker.segmentDb().find(segment), nullptr)
              << "association for hash " << hash
              << " points at missing segment " << segment;
        });
  }
}

TEST(RecoveryFuzzTest, RecoveredStateIsAlwaysAPrefixOfHistory) {
  const std::uint64_t trials = envU64("BF_RECOVERY_FUZZ_TRIALS", 500);
  const std::uint64_t baseSeed = envU64("BF_RECOVERY_FUZZ_SEED", 20260805);
  const std::string baseDir =
      "/tmp/bf_recovery_fuzz_" + std::to_string(static_cast<long>(::getpid()));

  std::uint64_t cleanTrials = 0;
  std::uint64_t corruptTrials = 0;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = baseSeed + trial;
    util::Rng rng(seed);
    corpus::TextGenerator gen(&rng, /*vocabularySize=*/2000);
    const std::string dir = baseDir + "_" + std::to_string(trial);
    (void)std::system(("rm -rf '" + dir + "'").c_str());

    DurabilityConfig cfg;
    cfg.directory = dir;
    cfg.secret = rng.chance(0.5) ? "fuzz-secret" : "";
    cfg.checkpointEveryRecords = rng.uniform(5, 14);
    cfg.keepGenerations = 0;  // keep every generation: any prefix replayable

    util::LogicalClock clock;
    FlowTracker tracker(TrackerConfig{}, &clock);
    auto mgr = std::make_unique<DurabilityManager>(cfg);
    {
      auto boot = mgr->recoverAndAttach(tracker);
      ASSERT_TRUE(boot.ok()) << boot.errorMessage() << " (trial " << trial
                             << ", seed " << seed << ")";
    }

    // Oracle: canonical state after every WAL sequence. Every op below
    // appends AT MOST ONE record, so each sequence boundary is an op
    // boundary and the oracle is total over reachable prefixes.
    std::map<std::uint64_t, std::string> oracle;
    oracle[0] = exportState(tracker);
    std::vector<std::string> liveNames;

    const std::uint64_t ops = rng.uniform(12, 30);
    for (std::uint64_t op = 0; op < ops; ++op) {
      const double dice = rng.uniform01();
      if (dice < 0.55 || liveNames.empty()) {
        const std::string name = "f#p" + std::to_string(rng.uniform(0, 9));
        tracker.observeSegment(SegmentKind::kParagraph, name, "fuzz", "svc",
                               gen.paragraph(2, 4));
        if (std::find(liveNames.begin(), liveNames.end(), name) ==
            liveNames.end()) {
          liveNames.push_back(name);
        }
      } else if (dice < 0.70) {
        const std::size_t at = static_cast<std::size_t>(
            rng.uniform(0, liveNames.size() - 1));
        tracker.removeSegmentByName(liveNames[at]);
        liveNames.erase(liveNames.begin() +
                        static_cast<std::ptrdiff_t>(at));
      } else if (dice < 0.82) {
        const std::size_t at = static_cast<std::size_t>(
            rng.uniform(0, liveNames.size() - 1));
        (void)tracker.setSegmentThreshold(liveNames[at], rng.uniform01());
      } else if (dice < 0.92) {
        (void)tracker.evictAssociationsOlderThan(rng.uniform(0, 60));
      } else {
        auto s = mgr->checkpoint(tracker);
        ASSERT_TRUE(s.ok()) << s.errorMessage();
      }
      auto due = mgr->checkpointIfDue(tracker);
      ASSERT_TRUE(due.ok()) << due.errorMessage();
      oracle[mgr->wal().nextSequence() - 1] = exportState(tracker);
    }

    // Crash: drop the manager (closes the WAL fd), then corrupt the
    // directory.
    tracker.attachWal(nullptr);
    mgr.reset();
    const Corruption mode = static_cast<Corruption>(rng.uniform(0, 5));
    const std::string what = corrupt(rng, dir, mode);
    if (mode == Corruption::kNone) ++cleanTrials;
    else ++corruptTrials;

    // Recover into a fresh tracker; whatever sequence recovery reports,
    // the state must be EXACTLY the oracle's state at that sequence.
    util::LogicalClock clock2;
    FlowTracker recovered(TrackerConfig{}, &clock2);
    DurabilityManager mgr2(cfg);
    auto stats = mgr2.recoverAndAttach(recovered);
    ASSERT_TRUE(stats.ok()) << stats.errorMessage() << " (trial " << trial
                            << ", seed " << seed << ", " << what << ")";
    const std::uint64_t s = stats.value().lastSequence;
    recovered.attachWal(nullptr);

    ASSERT_EQ(oracle.count(s), 1u)
        << "recovered to sequence " << s << " which is not an op boundary"
        << " (trial " << trial << ", seed " << seed << ", "
        << corruptionName(mode) << ": " << what << ")";
    const std::string got = exportState(recovered);
    EXPECT_TRUE(got == oracle[s])
        << "recovered state at sequence " << s << " diverges from history"
        << " (got " << got.size() << " bytes, want " << oracle[s].size()
        << "; trial " << trial << ", seed " << seed << ", "
        << corruptionName(mode) << ": " << what << ")";
    if (mode == Corruption::kNone) {
      EXPECT_EQ(s, oracle.rbegin()->first)
          << "clean recovery lost records (trial " << trial << ", seed "
          << seed << ")";
    }
    expectNoDanglingAssociations(recovered);

    if (::testing::Test::HasFailure()) {
      return;  // keep the failing trial's files for inspection
    }
    (void)std::system(("rm -rf '" + dir + "'").c_str());
  }
  // The mode draw is uniform; with >=100 trials both kinds must occur.
  if (trials >= 100) {
    EXPECT_GT(cleanTrials, 0u);
    EXPECT_GT(corruptTrials, 0u);
  }
}

// ---- Runtime storage-fault fuzz (ISSUE 7) ---------------------------------
//
// The trial above corrupts files AT REST; this one makes the storage lie
// WHILE the workload runs. Each trial opens a seeded fault window (ENOSPC,
// short writes, torn writes, fsync failures at a random rate), keeps
// mutating through it, then closes the window and drives maintain() until
// the manager self-heals. Invariants per trial:
//   * the manager returns to healthy() once storage recovers;
//   * post-heal mutations are provably durable across a crash;
//   * recovery lands byte-for-byte on the oracle state at its reported
//     sequence — never a partial import, faults or not.
//
// Trials and seed are overridable for soak runs:
//   BF_STORAGE_FUZZ_TRIALS (default 300)
//   BF_STORAGE_FUZZ_SEED   (default 20260809)
TEST(RecoveryFuzzTest, SelfHealsAfterInjectedStorageFaultWindow) {
  const std::uint64_t trials = envU64("BF_STORAGE_FUZZ_TRIALS", 300);
  const std::uint64_t baseSeed = envU64("BF_STORAGE_FUZZ_SEED", 20260809);
  const std::string baseDir =
      "/tmp/bf_storage_fuzz_" + std::to_string(static_cast<long>(::getpid()));

  std::uint64_t trialsWithFaults = 0;
  std::uint64_t trialsWithLostRecords = 0;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = baseSeed + trial;
    util::Rng rng(seed);
    corpus::TextGenerator gen(&rng, /*vocabularySize=*/2000);
    const std::string dir = baseDir + "_" + std::to_string(trial);
    (void)std::system(("rm -rf '" + dir + "'").c_str());

    io::FaultVfs fault(&io::defaultVfs(), seed ^ 0x73746f7261676521ull);
    DurabilityConfig cfg;
    cfg.directory = dir;
    cfg.vfs = &fault;
    cfg.secret = rng.chance(0.5) ? "fuzz-secret" : "";
    cfg.checkpointEveryRecords = rng.uniform(5, 14);
    cfg.keepGenerations = 0;  // keep every generation: any prefix replayable
    cfg.syncEachAppend = rng.chance(0.5);  // surface faults on appends too
    cfg.repairBaseDelayMs = 0.0;  // fuzz never waits on the backoff clock
    cfg.repairMaxDelayMs = 0.0;

    util::LogicalClock clock;
    FlowTracker tracker(TrackerConfig{}, &clock);
    auto mgr = std::make_unique<DurabilityManager>(cfg);
    {
      auto boot = mgr->recoverAndAttach(tracker);
      ASSERT_TRUE(boot.ok()) << boot.errorMessage() << " (trial " << trial
                             << ", seed " << seed << ")";
    }

    std::map<std::uint64_t, std::string> oracle;
    oracle[0] = exportState(tracker);
    std::vector<std::string> liveNames;

    const std::uint64_t ops = rng.uniform(14, 30);
    // Fault window [faultFrom, faultTo): storage misbehaves at `rate`.
    const std::uint64_t faultFrom = rng.uniform(1, ops / 2);
    const std::uint64_t faultTo = rng.uniform(faultFrom + 1, ops - 1);
    const double rates[] = {0.05, 0.15, 0.4};
    const double rate = rates[rng.uniform(0, 2)];

    for (std::uint64_t op = 0; op < ops; ++op) {
      if (op == faultFrom) {
        fault.setDefaults(io::StorageFaultConfig::uniformRate(rate));
      }
      if (op == faultTo) fault.setDefaults(io::StorageFaultConfig{});
      const double dice = rng.uniform01();
      if (dice < 0.60 || liveNames.empty()) {
        const std::string name = "f#p" + std::to_string(rng.uniform(0, 9));
        tracker.observeSegment(SegmentKind::kParagraph, name, "fuzz", "svc",
                               gen.paragraph(2, 4));
        if (std::find(liveNames.begin(), liveNames.end(), name) ==
            liveNames.end()) {
          liveNames.push_back(name);
        }
      } else if (dice < 0.75) {
        const std::size_t at = static_cast<std::size_t>(
            rng.uniform(0, liveNames.size() - 1));
        tracker.removeSegmentByName(liveNames[at]);
        liveNames.erase(liveNames.begin() + static_cast<std::ptrdiff_t>(at));
      } else if (dice < 0.88) {
        const std::size_t at = static_cast<std::size_t>(
            rng.uniform(0, liveNames.size() - 1));
        (void)tracker.setSegmentThreshold(liveNames[at], rng.uniform01());
      } else {
        (void)tracker.evictAssociationsOlderThan(rng.uniform(0, 60));
      }
      // maintain() is the production driver: due checkpoints while
      // healthy, repair attempts while degraded. Failures inside the
      // fault window are the point — never assert on its status there.
      (void)mgr->maintain(tracker);
      oracle[mgr->wal().nextSequence() - 1] = exportState(tracker);
    }

    if (fault.faultCount() > 0) ++trialsWithFaults;
    if (mgr->wal().lostRecords() > 0) ++trialsWithLostRecords;

    // The window is closed: the manager must self-heal in a few
    // maintenance rounds (notice → repair, possibly once more after a
    // straggling torn tail).
    int spins = 0;
    while (!mgr->healthy() && spins++ < 32) (void)mgr->maintain(tracker);
    ASSERT_TRUE(mgr->healthy())
        << "manager failed to self-heal after the fault window (trial "
        << trial << ", seed " << seed << ", rate " << rate << ", faults "
        << fault.faultCount() << ")";

    // Post-heal mutations must be durable across a crash.
    for (int extra = 0; extra < 3; ++extra) {
      tracker.observeSegment(SegmentKind::kParagraph,
                             "heal#p" + std::to_string(extra), "fuzz", "svc",
                             gen.paragraph(2, 4));
      oracle[mgr->wal().nextSequence() - 1] = exportState(tracker);
    }
    {
      auto final = mgr->checkpoint(tracker);
      ASSERT_TRUE(final.ok()) << final.errorMessage() << " (trial " << trial
                              << ", seed " << seed << ")";
    }
    const std::uint64_t durableSeq = mgr->wal().nextSequence() - 1;

    // Crash, then recover with a CLEAN vfs (the process restarts on a
    // machine whose disk behaves again).
    tracker.attachWal(nullptr);
    mgr.reset();
    DurabilityConfig cleanCfg = cfg;
    cleanCfg.vfs = nullptr;
    util::LogicalClock clock2;
    FlowTracker recovered(TrackerConfig{}, &clock2);
    DurabilityManager mgr2(cleanCfg);
    auto stats = mgr2.recoverAndAttach(recovered);
    ASSERT_TRUE(stats.ok()) << stats.errorMessage() << " (trial " << trial
                            << ", seed " << seed << ")";
    const std::uint64_t s = stats.value().lastSequence;
    recovered.attachWal(nullptr);

    ASSERT_EQ(s, durableSeq)
        << "post-heal checkpoint did not stick (trial " << trial << ", seed "
        << seed << ", rate " << rate << ")";
    ASSERT_EQ(oracle.count(s), 1u)
        << "recovered to sequence " << s << " which is not an op boundary"
        << " (trial " << trial << ", seed " << seed << ")";
    EXPECT_TRUE(exportState(recovered) == oracle[s])
        << "recovered state at sequence " << s << " diverges from history"
        << " (trial " << trial << ", seed " << seed << ", rate " << rate
        << ", faults " << fault.faultCount() << ")";
    expectNoDanglingAssociations(recovered);

    if (::testing::Test::HasFailure()) {
      return;  // keep the failing trial's files for inspection
    }
    (void)std::system(("rm -rf '" + dir + "'").c_str());
  }
  // The fault rates are high enough that a run of this size must actually
  // have exercised the machinery, including real record loss.
  if (trials >= 100) {
    EXPECT_GT(trialsWithFaults, trials / 3);
    EXPECT_GT(trialsWithLostRecords, 0u);
  }
}

}  // namespace
}  // namespace bf::flow
