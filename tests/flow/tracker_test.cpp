// Tests for FlowTracker — Algorithm 1, caching, incremental updates,
// threshold semantics, and the paper's motivating copy/edit scenarios.
#include <gtest/gtest.h>

#include "corpus/text_generator.h"
#include "flow/tracker.h"
#include "util/clock.h"

namespace bf::flow {
namespace {

class TrackerTest : public ::testing::Test {
 protected:
  TrackerTest() : rng_(12345), gen_(&rng_), tracker_(TrackerConfig{}, &clock_) {}

  std::string paragraph() { return gen_.paragraph(5, 8); }

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  FlowTracker tracker_;
};

TEST_F(TrackerTest, VerbatimCopyIsDetected) {
  const std::string secret = paragraph();
  tracker_.observeSegment(SegmentKind::kParagraph, "itool/doc#p0",
                          "itool/doc", "itool", secret);
  const auto hits = tracker_.checkText(secret, "gdocs/doc");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].sourceName, "itool/doc#p0");
  EXPECT_DOUBLE_EQ(hits[0].score, 1.0);
}

TEST_F(TrackerTest, UnrelatedTextIsNotDetected) {
  tracker_.observeSegment(SegmentKind::kParagraph, "a#p0", "a", "svc",
                          paragraph());
  EXPECT_TRUE(tracker_.checkText(paragraph(), "b").empty());
}

TEST_F(TrackerTest, PartialCopyAboveThresholdDetected) {
  // Copy a paragraph and append fresh text: the source's hashes are still
  // all present, so D(source, target) stays 1.
  const std::string secret = paragraph();
  tracker_.observeSegment(SegmentKind::kParagraph, "src#p0", "src", "svc",
                          secret);
  const std::string target = secret + " " + paragraph();
  const auto hits = tracker_.checkText(target, "dst");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_GE(hits[0].score, 0.9);
}

TEST_F(TrackerTest, HeavilyRewrittenTextDropsBelowThreshold) {
  // "if text is modified to the point at which it bears no resemblance to
  //  the source text, it becomes safe to disclose" (S1).
  tracker_.observeSegment(SegmentKind::kParagraph, "src#p0", "src", "svc",
                          paragraph());
  EXPECT_TRUE(tracker_.checkText(paragraph(), "dst").empty());
}

TEST_F(TrackerTest, HalfCopyHoversAroundThreshold) {
  const std::string firstHalf = gen_.paragraph(6, 6);
  const std::string secondHalf = gen_.paragraph(6, 6);
  tracker_.observeSegment(SegmentKind::kParagraph, "src#p0", "src", "svc",
                          firstHalf + " " + secondHalf);
  // Exposing only the first half: D ≈ 0.5 of the source fingerprint.
  const auto hits = tracker_.checkText(firstHalf, "dst");
  if (!hits.empty()) {
    EXPECT_GE(hits[0].score, 0.3);
    EXPECT_LE(hits[0].score, 0.75);
  }
}

TEST_F(TrackerTest, SameDocumentSourcesExcluded) {
  const std::string text = paragraph();
  tracker_.observeSegment(SegmentKind::kParagraph, "doc#p0", "doc", "svc",
                          text);
  EXPECT_TRUE(tracker_.checkText(text, "doc").empty());
  EXPECT_FALSE(tracker_.checkText(text, "otherdoc").empty());
}

TEST_F(TrackerTest, SelfSegmentExcluded) {
  const std::string text = paragraph();
  const SegmentId id = tracker_.observeSegment(
      SegmentKind::kParagraph, "doc#p0", "doc", "svc", text);
  // Algorithm 1: "if p = P then continue".
  const auto& hits = tracker_.sourcesForSegment(id);
  EXPECT_TRUE(hits.empty());
}

TEST_F(TrackerTest, CopyBetweenDocumentsFoundBySegmentQuery) {
  const std::string secret = paragraph();
  tracker_.observeSegment(SegmentKind::kParagraph, "wiki/a#p0", "wiki/a",
                          "wiki", secret);
  const SegmentId dest = tracker_.observeSegment(
      SegmentKind::kParagraph, "gdocs/b#p0", "gdocs/b", "gdocs", secret);
  const auto& hits = tracker_.sourcesForSegment(dest);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].sourceName, "wiki/a#p0");
  EXPECT_EQ(hits[0].sourceService, "wiki");
}

TEST_F(TrackerTest, UnchangedFingerprintServedFromCache) {
  const std::string secret = paragraph();
  tracker_.observeSegment(SegmentKind::kParagraph, "src#p0", "src", "svc",
                          secret);
  const SegmentId dest = tracker_.observeSegment(
      SegmentKind::kParagraph, "dst#p0", "dst", "svc", secret);
  tracker_.resetStats();
  (void)tracker_.sourcesForSegment(dest);
  EXPECT_EQ(tracker_.stats().cacheHits, 0u);
  (void)tracker_.sourcesForSegment(dest);
  (void)tracker_.sourcesForSegment(dest);
  EXPECT_EQ(tracker_.stats().cacheHits, 2u);
  // Only the first call actually ran Algorithm 1.
  EXPECT_EQ(tracker_.stats().queries, 1u);
}

TEST_F(TrackerTest, KeystrokeRarelyInvalidatesCache) {
  // "one keystroke typically does not alter the winnowing fingerprint of a
  //  paragraph, permitting BrowserFlow to reuse its previous response".
  const std::string base = gen_.paragraph(8, 8);
  const SegmentId id = tracker_.observeSegment(
      SegmentKind::kParagraph, "doc#p0", "doc", "svc", base);
  (void)tracker_.sourcesForSegment(id);
  tracker_.resetStats();
  std::string text = base;
  std::size_t hits = 0;
  const std::string suffix = " and so it continues onward";
  for (char c : suffix) {
    text += c;
    tracker_.observeSegment(SegmentKind::kParagraph, "doc#p0", "doc", "svc",
                            text);
    const auto before = tracker_.stats().cacheHits;
    (void)tracker_.sourcesForSegment(id);
    if (tracker_.stats().cacheHits > before) ++hits;
  }
  // Most keystrokes must be served from cache.
  EXPECT_GT(hits, suffix.size() / 2);
}

TEST_F(TrackerTest, EditedSegmentRecomputesAfterFingerprintChange) {
  const std::string secret = paragraph();
  tracker_.observeSegment(SegmentKind::kParagraph, "src#p0", "src", "svc",
                          secret);
  const SegmentId dest = tracker_.observeSegment(
      SegmentKind::kParagraph, "dst#p0", "dst", "svc", paragraph());
  EXPECT_TRUE(tracker_.sourcesForSegment(dest).empty());
  // Paste the secret into the destination paragraph.
  tracker_.observeSegment(SegmentKind::kParagraph, "dst#p0", "dst", "svc",
                          secret);
  EXPECT_FALSE(tracker_.sourcesForSegment(dest).empty());
}

TEST_F(TrackerTest, RemovedSegmentNoLongerReported) {
  const std::string secret = paragraph();
  tracker_.observeSegment(SegmentKind::kParagraph, "src#p0", "src", "svc",
                          secret);
  tracker_.removeSegmentByName("src#p0");
  EXPECT_TRUE(tracker_.checkText(secret, "dst").empty());
}

TEST_F(TrackerTest, ThresholdZeroDetectsAnyLeakedHash) {
  TrackerConfig config;
  config.defaultParagraphThreshold = 0.0;
  FlowTracker tracker(config, &clock_);
  const std::string sensitive = gen_.paragraph(8, 8);
  tracker.observeSegment(SegmentKind::kParagraph, "src#p0", "src", "svc",
                         sensitive);
  // Take a slice of the source — far below 50% but above one window.
  const std::string slice = sensitive.substr(0, 60);
  const auto hits = tracker.checkText(slice + " " + gen_.paragraph(8, 8),
                                      "dst");
  ASSERT_FALSE(hits.empty());
  EXPECT_LT(hits[0].score, 0.5);
}

TEST_F(TrackerTest, HighThresholdSuppressesPartialMatches) {
  TrackerConfig config;
  config.defaultParagraphThreshold = 0.95;
  FlowTracker tracker(config, &clock_);
  const std::string sensitive = gen_.paragraph(8, 8);
  tracker.observeSegment(SegmentKind::kParagraph, "src#p0", "src", "svc",
                         sensitive);
  const std::string half = sensitive.substr(0, sensitive.size() / 2);
  EXPECT_TRUE(tracker.checkText(half, "dst").empty());
  EXPECT_FALSE(tracker.checkText(sensitive, "dst").empty());
}

TEST_F(TrackerTest, PerSegmentThresholdOverridesDefault) {
  const std::string a = gen_.paragraph(8, 8);
  const std::string b = gen_.paragraph(8, 8);
  tracker_.observeSegment(SegmentKind::kParagraph, "strict#p0", "strict",
                          "svc", a, 0.0);
  tracker_.observeSegment(SegmentKind::kParagraph, "lax#p0", "lax", "svc", b,
                          0.9);
  // A small slice of each: only the strict (T=0) paragraph reports.
  const auto hitsA = tracker_.checkText(a.substr(0, 60), "dst");
  const auto hitsB = tracker_.checkText(b.substr(0, 60), "dst");
  EXPECT_FALSE(hitsA.empty());
  EXPECT_TRUE(hitsB.empty());
}

TEST_F(TrackerTest, DocumentGranularityTrackedIndependently) {
  const std::string doc = paragraph() + "\n\n" + paragraph() + "\n\n" +
                          paragraph();
  const auto obs = tracker_.observeDocument("wiki/page", "wiki", doc);
  EXPECT_EQ(obs.paragraphs.size(), 3u);
  ASSERT_NE(tracker_.segment(obs.document), nullptr);
  EXPECT_EQ(tracker_.segment(obs.document)->kind, SegmentKind::kDocument);

  // Document-kind query sees the document; paragraph query sees paragraphs.
  const auto fp = tracker_.fingerprintOf(doc);
  const auto docHits =
      tracker_.disclosedSources(fp, SegmentKind::kDocument, kInvalidSegment,
                                "elsewhere");
  ASSERT_FALSE(docHits.empty());
  EXPECT_EQ(docHits[0].sourceName, "wiki/page");
}

TEST_F(TrackerTest, OneSentencePerParagraphDisclosesDocumentNotParagraphs) {
  // The paper's rationale for two granularities (S4.1): leaking one
  // sentence from each paragraph discloses the document while individual
  // paragraph disclosure stays low.
  std::vector<std::string> sentences;
  std::string doc;
  for (int i = 0; i < 6; ++i) {
    std::string s1 = gen_.sentence(12, 14);
    std::string rest = gen_.paragraph(6, 6);
    sentences.push_back(s1);
    if (!doc.empty()) doc += "\n\n";
    doc += s1 + " " + rest;
  }
  // Paragraph authors demand 60% overlap; the document author set a low
  // document threshold because any broad sampling is sensitive.
  tracker_.observeDocument("wiki/page", "wiki", doc, 0.6, 0.08);

  std::string leak;
  for (const auto& s : sentences) leak += s + " ";
  const auto fp = tracker_.fingerprintOf(leak);
  const auto docHits = tracker_.disclosedSources(
      fp, SegmentKind::kDocument, kInvalidSegment, "other");
  const auto paraHits = tracker_.disclosedSources(
      fp, SegmentKind::kParagraph, kInvalidSegment, "other");
  EXPECT_FALSE(docHits.empty()) << "document-level leak missed";
  EXPECT_TRUE(paraHits.empty()) << "paragraph-level should stay quiet";
}

TEST_F(TrackerTest, HitsSortedByScoreDescending) {
  // Two sources with distinct content; the probe contains all of the first
  // and a sliver of the second, so both report with different scores.
  const std::string first = gen_.paragraph(8, 8);
  const std::string second = gen_.paragraph(12, 12);
  tracker_.observeSegment(SegmentKind::kParagraph, "full#p0", "full", "svc",
                          first, 0.0);
  tracker_.observeSegment(SegmentKind::kParagraph, "partial#p0", "partial",
                          "svc", second, 0.0);
  const auto hits =
      tracker_.checkText(first + " " + second.substr(0, 80), "dst");
  ASSERT_GE(hits.size(), 2u);
  EXPECT_GE(hits[0].score, hits[1].score);
  EXPECT_EQ(hits[0].sourceName, "full#p0");
}

TEST_F(TrackerTest, AuthoritativeOffReportsOverlapCopies) {
  // Ablation: without authoritative fingerprints, the Fig. 7 false
  // positive reappears.
  TrackerConfig config;
  config.useAuthoritative = false;
  FlowTracker naive(config, &clock_);

  const std::string a = gen_.paragraph(8, 8);
  // Keep the superset's extra text short so naive containment of B stays
  // above the 0.5 threshold (B = a + extra, D_naive(B) = |F(a)|/|F(B)|).
  const std::string extra = gen_.sentence(8, 10);
  naive.observeSegment(SegmentKind::kParagraph, "A#p0", "A", "svc", a);
  naive.observeSegment(SegmentKind::kParagraph, "B#p0", "B", "svc",
                       a + " " + extra);
  const auto hits = naive.checkText(a, "C");
  // Naive containment blames both A and B.
  EXPECT_EQ(hits.size(), 2u);

  tracker_.observeSegment(SegmentKind::kParagraph, "A#p0", "A", "svc", a);
  tracker_.observeSegment(SegmentKind::kParagraph, "B#p0", "B", "svc",
                          a + " " + extra);
  const auto authHits = tracker_.checkText(a, "C");
  ASSERT_EQ(authHits.size(), 1u);
  EXPECT_EQ(authHits[0].sourceName, "A#p0");
}

TEST_F(TrackerTest, IncrementalMatchesBatchRebuild) {
  // Observing texts incrementally (with edits) must agree with a fresh
  // tracker that only ever saw the final state.
  std::vector<std::string> texts;
  for (int i = 0; i < 6; ++i) texts.push_back(paragraph());

  // Incremental: observe, edit twice, settle on final text.
  for (int i = 0; i < 6; ++i) {
    const std::string name = "doc" + std::to_string(i) + "#p0";
    const std::string docName = "doc" + std::to_string(i);
    tracker_.observeSegment(SegmentKind::kParagraph, name, docName, "svc",
                            texts[static_cast<std::size_t>(i)] + " draft");
    tracker_.observeSegment(SegmentKind::kParagraph, name, docName, "svc",
                            texts[static_cast<std::size_t>(i)]);
  }

  util::LogicalClock freshClock;
  FlowTracker fresh(TrackerConfig{}, &freshClock);
  for (int i = 0; i < 6; ++i) {
    fresh.observeSegment(SegmentKind::kParagraph,
                         "doc" + std::to_string(i) + "#p0",
                         "doc" + std::to_string(i), "svc",
                         texts[static_cast<std::size_t>(i)]);
  }

  // Query both with a paste combining texts[0] and fresh text.
  const std::string probe = texts[0] + " " + paragraph();
  const auto a = tracker_.checkText(probe, "elsewhere");
  const auto b = fresh.checkText(probe, "elsewhere");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sourceName, b[i].sourceName);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST_F(TrackerTest, PairwiseDisclosure) {
  const std::string a = paragraph();
  const SegmentId src = tracker_.observeSegment(SegmentKind::kParagraph,
                                                "a#p0", "a", "svc", a);
  const SegmentId full = tracker_.observeSegment(
      SegmentKind::kParagraph, "b#p0", "b", "svc", a + " " + paragraph());
  const SegmentId none = tracker_.observeSegment(SegmentKind::kParagraph,
                                                 "c#p0", "c", "svc",
                                                 paragraph());
  EXPECT_DOUBLE_EQ(tracker_.pairwiseDisclosure(src, full), 1.0);
  // Unrelated text from the same Zipf vocabulary can share the odd popular
  // passage; the score stays far below any useful threshold.
  EXPECT_LT(tracker_.pairwiseDisclosure(src, none), 0.2);
}

TEST_F(TrackerTest, EmptyTargetFingerprintsNeverMatch) {
  tracker_.observeSegment(SegmentKind::kParagraph, "src#p0", "src", "svc",
                          paragraph());
  EXPECT_TRUE(tracker_.checkText("tiny", "dst").empty());
  EXPECT_TRUE(tracker_.checkText("", "dst").empty());
}

TEST_F(TrackerTest, StatsCountFingerprints) {
  tracker_.resetStats();
  tracker_.observeSegment(SegmentKind::kParagraph, "a#p0", "a", "svc",
                          paragraph());
  (void)tracker_.checkText(paragraph(), "b");
  EXPECT_EQ(tracker_.stats().fingerprintsComputed, 2u);
}

}  // namespace
}  // namespace bf::flow
