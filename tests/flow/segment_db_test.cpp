// Tests for SegmentDb ("DBpar", paper S4.3).
#include <gtest/gtest.h>

#include "flow/segment_db.h"

namespace bf::flow {
namespace {

text::Fingerprint fpOf(std::initializer_list<std::uint64_t> hashes) {
  std::vector<text::HashedGram> grams;
  std::uint32_t pos = 0;
  for (auto h : hashes) grams.push_back({h, pos++});
  return text::Fingerprint::fromSelected(std::move(grams));
}

TEST(SegmentDb, CreateAndFind) {
  SegmentDb db;
  const SegmentId id = db.create(SegmentKind::kParagraph, "doc#p0", "doc",
                                 "svc", 0.5, 1);
  const SegmentRecord* rec = db.find(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->name, "doc#p0");
  EXPECT_EQ(rec->document, "doc");
  EXPECT_EQ(rec->service, "svc");
  EXPECT_DOUBLE_EQ(rec->threshold, 0.5);
  EXPECT_EQ(rec->kind, SegmentKind::kParagraph);
}

TEST(SegmentDb, IdsAreUniqueAndNonZero) {
  SegmentDb db;
  const SegmentId a = db.create(SegmentKind::kParagraph, "a", "d", "s", 0.5, 1);
  const SegmentId b = db.create(SegmentKind::kParagraph, "b", "d", "s", 0.5, 1);
  EXPECT_NE(a, kInvalidSegment);
  EXPECT_NE(a, b);
}

TEST(SegmentDb, FindByName) {
  SegmentDb db;
  db.create(SegmentKind::kDocument, "mydoc", "mydoc", "svc", 0.4, 1);
  const SegmentRecord* rec = db.findByName("mydoc");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->kind, SegmentKind::kDocument);
  EXPECT_EQ(db.findByName("nope"), nullptr);
}

TEST(SegmentDb, UpdateFingerprintStoresLatest) {
  SegmentDb db;
  const SegmentId id =
      db.create(SegmentKind::kParagraph, "p", "d", "s", 0.5, 1);
  db.updateFingerprint(id, fpOf({1, 2, 3}), 2);
  EXPECT_EQ(db.find(id)->fingerprint.size(), 3u);
  db.updateFingerprint(id, fpOf({9}), 3);
  EXPECT_EQ(db.find(id)->fingerprint.size(), 1u);  // only the last one
  EXPECT_EQ(db.find(id)->updatedAt, 3u);
}

TEST(SegmentDb, SetThreshold) {
  SegmentDb db;
  const SegmentId id =
      db.create(SegmentKind::kParagraph, "p", "d", "s", 0.5, 1);
  db.setThreshold(id, 0.8);
  EXPECT_DOUBLE_EQ(db.find(id)->threshold, 0.8);
}

TEST(SegmentDb, RemoveFreesName) {
  SegmentDb db;
  const SegmentId id =
      db.create(SegmentKind::kParagraph, "p", "d", "s", 0.5, 1);
  db.remove(id);
  EXPECT_EQ(db.find(id), nullptr);
  EXPECT_EQ(db.findByName("p"), nullptr);
  // The name can be reused with a fresh id.
  const SegmentId id2 =
      db.create(SegmentKind::kParagraph, "p", "d", "s", 0.5, 2);
  EXPECT_NE(id2, id);
}

TEST(SegmentDb, ForEachVisitsAllLive) {
  SegmentDb db;
  db.create(SegmentKind::kParagraph, "a", "d", "s", 0.5, 1);
  const SegmentId b =
      db.create(SegmentKind::kParagraph, "b", "d", "s", 0.5, 1);
  db.remove(b);
  std::size_t count = 0;
  db.forEach([&](const SegmentRecord&) { ++count; });
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(db.size(), 1u);
}

}  // namespace
}  // namespace bf::flow
