// Tests for snapshot export/import and encrypted persistence (paper S4.4).
#include <dirent.h>
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <thread>
#include <vector>

#include "corpus/text_generator.h"
#include "crypto/chacha20.h"
#include "flow/snapshot.h"
#include "io/fault_vfs.h"
#include "io/vfs.h"
#include "util/binary_io.h"
#include "util/hashing.h"

namespace bf::flow {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() : rng_(31), gen_(&rng_), tracker_(TrackerConfig{}, &clock_) {}

  ~SnapshotTest() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }

  /// Populates the tracker with a few documents and returns one secret
  /// paragraph to probe with.
  std::string populate() {
    std::string probe;
    for (int i = 0; i < 5; ++i) {
      const std::string text = gen_.paragraph(6, 8) + "\n\n" +
                               gen_.paragraph(6, 8);
      if (i == 2) probe = std::string(text.substr(0, text.find("\n\n")));
      tracker_.observeDocument("doc" + std::to_string(i), "svc", text);
    }
    return probe;
  }

  std::string tempPath(const char* name) {
    path_ = std::string("/tmp/bf_snapshot_test_") + name;
    return path_;
  }

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  FlowTracker tracker_;
  std::string path_;
};

TEST_F(SnapshotTest, ExportImportRoundTripPreservesQueries) {
  const std::string probe = populate();
  const auto before = tracker_.checkText(probe, "elsewhere");
  ASSERT_FALSE(before.empty());

  const std::string blob = exportState(tracker_);
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto maxTs = importState(restored, blob);
  ASSERT_TRUE(maxTs.ok()) << maxTs.errorMessage();
  clock2.advanceTo(maxTs.value() + 1);

  const auto after = restored.checkText(probe, "elsewhere");
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].sourceName, before[i].sourceName);
    EXPECT_DOUBLE_EQ(after[i].score, before[i].score);
  }
  EXPECT_EQ(restored.segmentDb().size(), tracker_.segmentDb().size());
  EXPECT_EQ(restored.hashDb().distinctHashCount(),
            tracker_.hashDb().distinctHashCount());
}

TEST_F(SnapshotTest, ExportIsDeterministic) {
  populate();
  EXPECT_EQ(exportState(tracker_), exportState(tracker_));
}

TEST_F(SnapshotTest, AuthorityOrderSurvivesRoundTrip) {
  // The older owner must stay authoritative after restore.
  const std::string shared = gen_.paragraph(8, 8);
  tracker_.observeSegment(SegmentKind::kParagraph, "old#p0", "old", "svc",
                          shared);
  tracker_.observeSegment(SegmentKind::kParagraph, "new#p0", "new", "svc",
                          shared + " " + gen_.sentence());

  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto maxTs = importState(restored, exportState(tracker_));
  ASSERT_TRUE(maxTs.ok());
  clock2.advanceTo(maxTs.value() + 1);

  const auto hits = restored.checkText(shared, "probe");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].sourceName, "old#p0");
}

TEST_F(SnapshotTest, NewObservationsAfterImportSortAfterRestored) {
  const std::string shared = gen_.paragraph(8, 8);
  tracker_.observeSegment(SegmentKind::kParagraph, "old#p0", "old", "svc",
                          shared);

  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto maxTs = importState(restored, exportState(tracker_));
  ASSERT_TRUE(maxTs.ok());
  clock2.advanceTo(maxTs.value() + 1);

  // A new copy of the text must NOT steal authority from the restored one.
  restored.observeSegment(SegmentKind::kParagraph, "copy#p0", "copy", "svc",
                          shared);
  const auto hits = restored.checkText(shared, "probe");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].sourceName, "old#p0");
}

TEST_F(SnapshotTest, ImportRequiresEmptyTracker) {
  populate();
  const std::string blob = exportState(tracker_);
  EXPECT_FALSE(importState(tracker_, blob).ok());
}

TEST_F(SnapshotTest, ImportRejectsGarbage) {
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  EXPECT_FALSE(importState(restored, "not a snapshot").ok());
  EXPECT_FALSE(importState(restored, "").ok());
}

TEST_F(SnapshotTest, ImportRejectsTruncatedBlob) {
  populate();
  std::string blob = exportState(tracker_);
  blob.resize(blob.size() / 2);
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  EXPECT_FALSE(importState(restored, blob).ok());
}

TEST_F(SnapshotTest, EncryptedFileRoundTrip) {
  const std::string probe = populate();
  const std::string path = tempPath("enc");
  ASSERT_TRUE(saveSnapshot(tracker_, path, "org-secret").ok());

  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto maxTs = loadSnapshot(restored, path, "org-secret");
  ASSERT_TRUE(maxTs.ok()) << maxTs.errorMessage();
  clock2.advanceTo(maxTs.value() + 1);
  EXPECT_FALSE(restored.checkText(probe, "elsewhere").empty());
}

TEST_F(SnapshotTest, EncryptedFileDoesNotLeakPlaintextStructure) {
  populate();
  const std::string path = tempPath("leak");
  ASSERT_TRUE(saveSnapshot(tracker_, path, "org-secret").ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  // Segment names like "doc0#p0" must not appear in the ciphertext.
  EXPECT_EQ(data.find("doc0"), std::string::npos);
  EXPECT_EQ(data.find("svc"), std::string::npos);
}

TEST_F(SnapshotTest, WrongSecretFailsToLoad) {
  populate();
  const std::string path = tempPath("wrong");
  ASSERT_TRUE(saveSnapshot(tracker_, path, "right-secret").ok());
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  EXPECT_FALSE(loadSnapshot(restored, path, "wrong-secret").ok());
}

TEST_F(SnapshotTest, EncryptedSnapshotNeedsSecret) {
  populate();
  const std::string path = tempPath("nosecret");
  ASSERT_TRUE(saveSnapshot(tracker_, path, "s").ok());
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  EXPECT_FALSE(loadSnapshot(restored, path, "").ok());
}

TEST_F(SnapshotTest, PlaintextSnapshotWorksWithoutSecret) {
  const std::string probe = populate();
  const std::string path = tempPath("plain");
  ASSERT_TRUE(saveSnapshot(tracker_, path, "").ok());
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto maxTs = loadSnapshot(restored, path, "");
  ASSERT_TRUE(maxTs.ok());
  clock2.advanceTo(maxTs.value() + 1);
  EXPECT_FALSE(restored.checkText(probe, "elsewhere").empty());
}

TEST_F(SnapshotTest, LoadMissingFileFails) {
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  EXPECT_FALSE(loadSnapshot(restored, "/tmp/definitely-missing-bf", "").ok());
}

TEST_F(SnapshotTest, FailedImportLeavesTrackerEmpty) {
  // Transactional import: a blob that validates only partway must leave
  // the tracker untouched (empty), not half-restored.
  populate();
  std::string blob = exportState(tracker_);
  blob.resize(blob.size() - 3);  // clip mid-record
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  ASSERT_FALSE(importState(restored, blob).ok());
  EXPECT_EQ(restored.segmentDb().size(), 0u);
  EXPECT_EQ(restored.hashDb().distinctHashCount(), 0u);
}

TEST_F(SnapshotTest, TruncatedSnapshotFileRejectedAndTrackerEmpty) {
  populate();
  const std::string path = tempPath("truncfile");
  ASSERT_TRUE(saveSnapshot(tracker_, path, "").ok());

  // Simulate a crash mid-write: chop the file roughly in half.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data.resize(data.size() / 2);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();

  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  EXPECT_FALSE(loadSnapshot(restored, path, "").ok());
  EXPECT_EQ(restored.segmentDb().size(), 0u);
}

TEST_F(SnapshotTest, CorruptedSnapshotFileRejectedAndTrackerEmpty) {
  populate();
  const std::string path = tempPath("corruptfile");
  ASSERT_TRUE(saveSnapshot(tracker_, path, "").ok());

  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  // Flip bytes in the length-prefixed middle of the blob so counts and
  // strings go inconsistent.
  for (std::size_t i = data.size() / 3; i < data.size() / 2; i += 7) {
    data[i] = static_cast<char>(data[i] ^ 0x5a);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();

  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto result = loadSnapshot(restored, path, "");
  if (!result.ok()) {
    EXPECT_EQ(restored.segmentDb().size(), 0u)
        << "rejected imports must be all-or-nothing";
  }
  // (If the flipped bytes happened to stay structurally valid the import
  // may succeed; the guarantee under test is only no-partial-state.)
}

/// Names in /tmp starting with the snapshot's basename + ".tmp" — the
/// sibling temp files saveSnapshot() must rename away or clean up.
std::vector<std::string> leftoverTempFiles(const std::string& path) {
  const std::string prefix =
      path.substr(path.find_last_of('/') + 1) + ".tmp";
  std::vector<std::string> found;
  DIR* dir = opendir("/tmp");
  if (dir == nullptr) return found;
  while (dirent* e = readdir(dir)) {
    if (std::strncmp(e->d_name, prefix.c_str(), prefix.size()) == 0) {
      found.emplace_back(e->d_name);
    }
  }
  closedir(dir);
  return found;
}

TEST_F(SnapshotTest, SaveLeavesNoTempFileBehind) {
  populate();
  const std::string path = tempPath("atomic");
  ASSERT_TRUE(saveSnapshot(tracker_, path, "").ok());
  EXPECT_TRUE(leftoverTempFiles(path).empty())
      << "temp file must be renamed away";
  std::ifstream fin(path);
  EXPECT_TRUE(fin.good());
}

TEST_F(SnapshotTest, ConcurrentSavesToSamePathStayIntact) {
  populate();
  const std::string path = tempPath("concurrent");
  // Racing saves of the SAME state must never rename interleaved content
  // over the target: each writer uses its own temp file, so whichever
  // rename lands last leaves a complete, loadable snapshot.
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int i = 0; i < 4; ++i) {
    writers.emplace_back(
        [&] { EXPECT_TRUE(saveSnapshot(tracker_, path, "").ok()); });
  }
  for (auto& t : writers) t.join();
  EXPECT_TRUE(leftoverTempFiles(path).empty());

  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto maxTs = loadSnapshot(restored, path, "");
  ASSERT_TRUE(maxTs.ok()) << maxTs.errorMessage();
  EXPECT_GT(restored.segmentDb().size(), 0u);
}

TEST_F(SnapshotTest, SaveOverwritesExistingSnapshotAtomically) {
  const std::string probe = populate();
  const std::string path = tempPath("rewrite");
  ASSERT_TRUE(saveSnapshot(tracker_, path, "").ok());

  // Grow the tracker, save again over the same path, reload: the new
  // content must be visible (rename replaced the old file).
  const std::string extra = gen_.paragraph(8, 8);
  tracker_.observeSegment(SegmentKind::kParagraph, "late#p0", "late", "svc",
                          extra);
  ASSERT_TRUE(saveSnapshot(tracker_, path, "").ok());

  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto maxTs = loadSnapshot(restored, path, "");
  ASSERT_TRUE(maxTs.ok());
  clock2.advanceTo(maxTs.value() + 1);
  EXPECT_FALSE(restored.checkText(extra, "probe").empty());
}

TEST_F(SnapshotTest, V2BlobCarriesSequenceAndRoundTrips) {
  const std::string probe = populate();
  const std::string blob = exportStateV2(tracker_, /*sequence=*/42);

  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto info = importStateEx(restored, blob);
  ASSERT_TRUE(info.ok()) << info.errorMessage();
  EXPECT_EQ(info.value().sequence, 42u);
  clock2.advanceTo(info.value().maxTimestamp + 1);
  EXPECT_FALSE(restored.checkText(probe, "elsewhere").empty());
  // Same logical state regardless of the container version.
  EXPECT_EQ(exportState(restored), exportState(tracker_));
}

TEST_F(SnapshotTest, V2BlobBitFlipFailsCrc) {
  populate();
  std::string blob = exportStateV2(tracker_, 7);
  // Any single flipped bit anywhere in the blob must trip the trailer CRC.
  blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x01);
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto info = importStateEx(restored, blob);
  ASSERT_FALSE(info.ok());
  EXPECT_NE(info.errorMessage().find("CRC"), std::string::npos);
  EXPECT_EQ(restored.segmentDb().size(), 0u);
}

TEST_F(SnapshotTest, EncryptedSnapshotBitFlipFailsAuthentication) {
  // ChaCha20 is malleable: without the keyed tag, a flipped ciphertext bit
  // decrypts to a blob with one flipped plaintext bit, which can slip past
  // a structural parse as a wrong hash. The tag must reject it up front.
  populate();
  const std::string path = tempPath("bitflip");
  ASSERT_TRUE(saveSnapshot(tracker_, path, "org-secret").ok());

  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x01);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();

  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto result = loadSnapshotEx(restored, path, "org-secret");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errorMessage().find("authentication"), std::string::npos);
  EXPECT_EQ(restored.segmentDb().size(), 0u);
}

/// Hand-builds a v1 blob holding one segment with the given kind byte and
/// threshold (no grams, no associations).
std::string blobWithSegment(std::uint8_t kindByte, double threshold) {
  std::string blob = "BFSNAPP1";
  util::putU64(blob, 1);  // segment count
  util::putU64(blob, 1);  // id
  util::putU8(blob, kindByte);
  util::putStr(blob, "x#p0");
  util::putStr(blob, "x");
  util::putStr(blob, "svc");
  util::putF64(blob, threshold);
  util::putU64(blob, 1);  // createdAt
  util::putU64(blob, 1);  // updatedAt
  util::putU64(blob, 0);  // gram count
  util::putU64(blob, 0);  // paragraph associations
  util::putU64(blob, 0);  // document associations
  return blob;
}

TEST_F(SnapshotTest, ImportRejectsUnknownSegmentKindByte) {
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto result = importStateEx(restored, blobWithSegment(7, 0.5));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errorMessage().find("SegmentKind"), std::string::npos);
  EXPECT_EQ(restored.segmentDb().size(), 0u);
}

TEST_F(SnapshotTest, ImportRejectsOutOfRangeThresholds) {
  util::LogicalClock clock2;
  for (double bad : {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity(), 2.0, -0.25}) {
    FlowTracker restored(TrackerConfig{}, &clock2);
    const auto result = importStateEx(restored, blobWithSegment(0, bad));
    ASSERT_FALSE(result.ok()) << "threshold " << bad << " must be rejected";
    EXPECT_NE(result.errorMessage().find("threshold"), std::string::npos);
    EXPECT_EQ(restored.segmentDb().size(), 0u);
  }
  // Sanity: the same blob with a legal threshold imports fine.
  FlowTracker restored(TrackerConfig{}, &clock2);
  EXPECT_TRUE(importStateEx(restored, blobWithSegment(0, 0.5)).ok());
}

TEST_F(SnapshotTest, LegacyV1PlainFileStillLoads) {
  const std::string probe = populate();
  const std::string path = tempPath("v1plain");
  {  // A pre-durability deployment wrote the bare v1 blob to disk.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::string blob = exportState(tracker_);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto info = loadSnapshotEx(restored, path, "");
  ASSERT_TRUE(info.ok()) << info.errorMessage();
  EXPECT_EQ(info.value().sequence, 0u);  // v1 has no sequence
  clock2.advanceTo(info.value().maxTimestamp + 1);
  EXPECT_FALSE(restored.checkText(probe, "elsewhere").empty());
}

TEST_F(SnapshotTest, LegacyV1EncryptedFileStillLoads) {
  // Byte-for-byte replica of the retired v1 encrypted writer ("BFSNAPE1" +
  // nonce + ChaCha20(v1 blob), no tag), using the same frozen key
  // derivation. Migration contract: these files must keep loading.
  const std::string probe = populate();
  const std::string_view secret = "org-secret";

  crypto::Key256 key{};
  std::uint64_t h = util::fnv1a64(secret);
  for (int i = 0; i < 4; ++i) {
    h = util::mix64(h + static_cast<std::uint64_t>(i) + 0xB0F1ULL);
    for (int b = 0; b < 8; ++b) {
      key[static_cast<std::size_t>(i * 8 + b)] =
          static_cast<std::uint8_t>(h >> (8 * b));
    }
  }
  crypto::Nonce96 nonce{};
  for (std::size_t i = 0; i < nonce.size(); ++i) {
    nonce[i] = static_cast<std::uint8_t>(0x30 + i);
  }
  const std::string blob = exportState(tracker_);
  std::string fileData = "BFSNAPE1";
  fileData.append(reinterpret_cast<const char*>(nonce.data()), nonce.size());
  fileData += crypto::chacha20Xor(blob, key, nonce);

  const std::string path = tempPath("v1enc");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(fileData.data(), static_cast<std::streamsize>(fileData.size()));
  }
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto info = loadSnapshotEx(restored, path, std::string(secret));
  ASSERT_TRUE(info.ok()) << info.errorMessage();
  clock2.advanceTo(info.value().maxTimestamp + 1);
  EXPECT_FALSE(restored.checkText(probe, "elsewhere").empty());
}

TEST_F(SnapshotTest, EvictionDropsOldAssociations) {
  const std::string oldText = gen_.paragraph(8, 8);
  tracker_.observeSegment(SegmentKind::kParagraph, "old#p0", "old", "svc",
                          oldText);
  const util::Timestamp cutoff = clock_.now();
  const std::string newText = gen_.paragraph(8, 8);
  tracker_.observeSegment(SegmentKind::kParagraph, "new#p0", "new", "svc",
                          newText);

  ASSERT_FALSE(tracker_.checkText(oldText, "probe").empty());
  const std::size_t dropped = tracker_.evictAssociationsOlderThan(cutoff);
  EXPECT_GT(dropped, 0u);
  // The old paragraph's hashes are gone; the new one's survive.
  EXPECT_TRUE(tracker_.checkText(oldText, "probe").empty());
  EXPECT_FALSE(tracker_.checkText(newText, "probe").empty());
}

// ---- Injected storage faults (ISSUE 7 regression) -------------------------
// saveSnapshot under a failing disk must behave like the failure never
// started: no orphan .tmp sibling, previous good snapshot untouched.

TEST_F(SnapshotTest, SaveUnderEnospcLeavesNoOrphanAndKeepsOldSnapshot) {
  const std::string probe = populate();
  const std::string path = tempPath("enospc");
  ASSERT_TRUE(saveSnapshot(tracker_, path, "").ok());

  tracker_.observeSegment(SegmentKind::kParagraph, "late#p0", "late", "svc",
                          gen_.paragraph(8, 8));
  io::FaultVfs fault(&io::defaultVfs(), /*seed=*/11);
  fault.failNext(".tmp", 1, io::StorageFaultKind::kEnospc);
  EXPECT_FALSE(saveSnapshot(tracker_, path, "", 0, &fault).ok());

  EXPECT_TRUE(leftoverTempFiles(path).empty())
      << "failed save must unlink its temp file";
  // The previous snapshot still loads and reflects the OLD state.
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  const auto maxTs = loadSnapshot(restored, path, "");
  ASSERT_TRUE(maxTs.ok()) << maxTs.errorMessage();
  clock2.advanceTo(maxTs.value() + 1);
  EXPECT_FALSE(restored.checkText(probe, "probe").empty());
  EXPECT_EQ(restored.segmentDb().findByName("late#p0"), nullptr);
}

TEST_F(SnapshotTest, SaveUnderShortWriteLeavesNoOrphanAndKeepsOldSnapshot) {
  populate();
  const std::string path = tempPath("shortwrite");
  ASSERT_TRUE(saveSnapshot(tracker_, path, "sekrit").ok());
  const std::string before = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }();

  io::FaultVfs fault(&io::defaultVfs(), /*seed=*/12);
  fault.failNext(".tmp", 1, io::StorageFaultKind::kShortWrite);
  EXPECT_FALSE(saveSnapshot(tracker_, path, "sekrit", 7, &fault).ok());

  EXPECT_TRUE(leftoverTempFiles(path).empty());
  const std::string after = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }();
  EXPECT_EQ(before, after) << "previous snapshot bytes must be untouched";
}

TEST_F(SnapshotTest, SaveUnderFsyncFailureLeavesNoOrphan) {
  populate();
  const std::string path = tempPath("fsyncfail");
  io::FaultVfs fault(&io::defaultVfs(), /*seed=*/13);
  fault.failNext(".tmp", 1, io::StorageFaultKind::kFsyncFail);
  // No previous snapshot: the failed save must not materialise one either.
  EXPECT_FALSE(saveSnapshot(tracker_, path, "", 0, &fault).ok());
  EXPECT_TRUE(leftoverTempFiles(path).empty());
  std::ifstream fin(path);
  EXPECT_FALSE(fin.good()) << "no target file may appear on failure";
}

TEST_F(SnapshotTest, SaveUnderOpenFailureReportsErrorCleanly) {
  populate();
  const std::string path = tempPath("openfail");
  io::FaultVfs fault(&io::defaultVfs(), /*seed=*/14);
  fault.failNext(".tmp", 1, io::StorageFaultKind::kOpenFail);
  EXPECT_FALSE(saveSnapshot(tracker_, path, "", 0, &fault).ok());
  EXPECT_TRUE(leftoverTempFiles(path).empty());
  // Retry with the schedule drained succeeds.
  EXPECT_TRUE(saveSnapshot(tracker_, path, "", 0, &fault).ok());
}

TEST_F(SnapshotTest, LoadDetectsReadCorruptionViaVfs) {
  populate();
  const std::string path = tempPath("readcorrupt");
  ASSERT_TRUE(saveSnapshot(tracker_, path, "sekrit", 3).ok());
  io::FaultVfs fault(&io::defaultVfs(), /*seed=*/15);
  fault.failNext("readcorrupt", 1, io::StorageFaultKind::kReadCorrupt);
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  // Encrypt-then-MAC: the flipped byte fails authentication outright.
  EXPECT_FALSE(loadSnapshotEx(restored, path, "sekrit", &fault).ok());
  EXPECT_EQ(restored.segmentDb().size(), 0u);
  // A clean read still round-trips.
  EXPECT_TRUE(loadSnapshotEx(restored, path, "sekrit", &fault).ok());
}

}  // namespace
}  // namespace bf::flow
