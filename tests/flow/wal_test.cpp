// Tests for the write-ahead log and the durability manager (DESIGN.md §11):
// replay fidelity, torn-tail discard, checkpoint rotation and fallback.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/text_generator.h"
#include "flow/snapshot.h"
#include "flow/wal.h"
#include "io/fault_vfs.h"
#include "io/vfs.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/rng.h"

namespace bf::flow {
namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void writeFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

class WalTest : public ::testing::Test {
 protected:
  WalTest() : rng_(7), gen_(&rng_), tracker_(TrackerConfig{}, &clock_) {
    dir_ = "/tmp/bf_wal_test_" +
           std::to_string(static_cast<long>(::getpid())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::string cmd = "rm -rf '" + dir_ + "'";
    (void)std::system(cmd.c_str());
    ::mkdir(dir_.c_str(), 0755);
  }

  ~WalTest() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    (void)std::system(cmd.c_str());
  }

  /// Canonical state for equality checks.
  static std::string canon(const FlowTracker& t) { return exportState(t); }

  DurabilityConfig configFor(std::uint64_t checkpointEvery = 1u << 30) {
    DurabilityConfig cfg;
    cfg.directory = dir_;
    cfg.checkpointEveryRecords = checkpointEvery;
    return cfg;
  }

  /// Runs a small mutation workload through the tracker.
  void workload() {
    for (int i = 0; i < 6; ++i) {
      tracker_.observeSegment(SegmentKind::kParagraph,
                              "w#p" + std::to_string(i), "w", "svc",
                              gen_.paragraph(5, 8));
    }
    tracker_.removeSegmentByName("w#p3");
    ASSERT_TRUE(tracker_.setSegmentThreshold("w#p1", 0.7));
  }

  /// Recovers a fresh tracker from `dir_` with a fresh manager; returns its
  /// canonical state.
  std::string recoverFresh(RecoveryStats* statsOut = nullptr) {
    util::LogicalClock clock2;
    FlowTracker restored(TrackerConfig{}, &clock2);
    DurabilityManager mgr(configFor());
    auto stats = mgr.recoverAndAttach(restored);
    EXPECT_TRUE(stats.ok()) << stats.errorMessage();
    if (!stats.ok()) return {};
    if (statsOut != nullptr) *statsOut = stats.value();
    clock2.advanceTo(stats.value().maxTimestamp + 1);
    restored.attachWal(nullptr);  // comparisons only; stop logging
    return canon(restored);
  }

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  FlowTracker tracker_;
  std::string dir_;
};

TEST_F(WalTest, RecoverReplaysEveryMutationKind) {
  DurabilityManager mgr(configFor());
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  workload();
  const util::Timestamp cutoff = clock_.now();
  tracker_.observeSegment(SegmentKind::kParagraph, "late#p0", "late", "svc",
                          gen_.paragraph(5, 8));
  tracker_.evictAssociationsOlderThan(cutoff);
  const std::string live = canon(tracker_);
  // Recovery runs against the directory while this manager is live:
  // materialise the buffered tail first (a crash would do it via close()).
  ASSERT_TRUE(mgr.wal().sync().ok());

  RecoveryStats stats;
  EXPECT_EQ(recoverFresh(&stats), live);
  EXPECT_GT(stats.replayedRecords, 0u);
  EXPECT_EQ(stats.discardedBytes, 0u);
}

TEST_F(WalTest, RecoveredStateAnswersSameQueries) {
  DurabilityManager mgr(configFor());
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  const std::string secretText = gen_.paragraph(8, 8);
  tracker_.observeSegment(SegmentKind::kParagraph, "s#p0", "s", "svc",
                          secretText);
  ASSERT_TRUE(mgr.wal().sync().ok());

  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  DurabilityManager mgr2(configFor());
  auto stats = mgr2.recoverAndAttach(restored);
  ASSERT_TRUE(stats.ok());
  clock2.advanceTo(stats.value().maxTimestamp + 1);
  const auto hits = restored.checkText(secretText, "probe");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].sourceName, "s#p0");
}

TEST_F(WalTest, TornTailIsDiscardedPrefixSurvives) {
  {
    DurabilityManager mgr(configFor());
    ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
    workload();
  }
  // State after only the first observation (sequence 1): replay of a log
  // truncated inside record 2 must land exactly there.
  const std::string walFile = dir_ + "/wal-0000000000000000.bfw";
  std::string data = readFile(walFile);
  ASSERT_GT(data.size(), 40u);
  // Find the end of frame 1: header(16) + 8 + len1.
  std::uint32_t len1 = 0;
  for (int i = 0; i < 4; ++i) {
    len1 |= static_cast<std::uint32_t>(
                static_cast<unsigned char>(data[16 + static_cast<size_t>(i)]))
            << (8 * i);
  }
  const std::size_t endOfFirst = 16 + 8 + len1;
  ASSERT_LT(endOfFirst, data.size());
  data.resize(endOfFirst + 5);  // tear frame 2 mid-header/payload
  writeFile(walFile, data);
  // Remove the post-recovery checkpoint so replay must come from the WAL.
  std::remove((dir_ + "/checkpoint-0000000000000000.bfc").c_str());

  RecoveryStats stats;
  const std::string recovered = recoverFresh(&stats);
  EXPECT_EQ(stats.lastSequence, 1u);
  EXPECT_EQ(stats.replayedRecords, 1u);
  EXPECT_GT(stats.discardedBytes, 0u);

  // Oracle: one observation applied to a fresh tracker.
  util::LogicalClock clock3;
  util::Rng rng3(7);
  corpus::TextGenerator gen3(&rng3);
  FlowTracker oracle(TrackerConfig{}, &clock3);
  oracle.observeSegment(SegmentKind::kParagraph, "w#p0", "w", "svc",
                        gen3.paragraph(5, 8));
  EXPECT_EQ(recovered, canon(oracle));
}

TEST_F(WalTest, CorruptFrameStopsReplayAtPrefix) {
  {
    DurabilityManager mgr(configFor());
    ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
    workload();
  }
  const std::string walFile = dir_ + "/wal-0000000000000000.bfw";
  std::string data = readFile(walFile);
  // Flip one byte in the middle of the log: every record after the broken
  // frame is unreachable even if its own CRC is fine.
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x40);
  writeFile(walFile, data);
  std::remove((dir_ + "/checkpoint-0000000000000000.bfc").c_str());

  RecoveryStats stats;
  const std::string recovered = recoverFresh(&stats);
  EXPECT_FALSE(recovered.empty());
  EXPECT_GT(stats.discardedBytes, 0u);
  EXPECT_LT(stats.lastSequence, 8u);  // workload appended 8 records
}

TEST_F(WalTest, CheckpointRotatesAndRecovers) {
  DurabilityManager mgr(configFor());
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  workload();
  ASSERT_TRUE(mgr.checkpoint(tracker_).ok());
  // Post-checkpoint mutations land in the rotated log.
  tracker_.observeSegment(SegmentKind::kParagraph, "post#p0", "post", "svc",
                          gen_.paragraph(5, 8));
  const std::string live = canon(tracker_);
  ASSERT_TRUE(mgr.wal().sync().ok());

  RecoveryStats stats;
  EXPECT_EQ(recoverFresh(&stats), live);
  EXPECT_GT(stats.checkpointSequence, 0u);
  EXPECT_EQ(stats.replayedRecords, 1u);  // only the post-checkpoint record
}

TEST_F(WalTest, CheckpointEveryNRecordsTriggersViaIfDue) {
  DurabilityManager mgr(configFor(/*checkpointEvery=*/4));
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  const auto before = obs::registry().snapshot();
  for (int i = 0; i < 9; ++i) {
    tracker_.observeSegment(SegmentKind::kParagraph,
                            "d#p" + std::to_string(i), "d", "svc",
                            gen_.paragraph(4, 6));
    ASSERT_TRUE(mgr.checkpointIfDue(tracker_).ok());
  }
  const auto delta = obs::registry().snapshot().diff(before);
  EXPECT_GE(delta.counterValue("bf_checkpoints_total"), 2u);
  ASSERT_TRUE(mgr.wal().sync().ok());
  EXPECT_EQ(recoverFresh(), canon(tracker_));
}

TEST_F(WalTest, CorruptNewestCheckpointFallsBackToOlderGeneration) {
  DurabilityManager mgr(configFor());
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  workload();
  ASSERT_TRUE(mgr.checkpoint(tracker_).ok());
  tracker_.observeSegment(SegmentKind::kParagraph, "tail#p0", "tail", "svc",
                          gen_.paragraph(5, 8));
  const std::string live = canon(tracker_);
  ASSERT_TRUE(mgr.wal().sync().ok());

  // Corrupt the NEWEST checkpoint; the previous generation plus the full
  // log chain must reproduce the same state (keepGenerations = 2).
  std::uint64_t newest = 0;
  std::string newestPath;
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(seq));
    const std::string p = dir_ + "/checkpoint-" + hex + ".bfc";
    std::ifstream probe(p);
    if (probe.good() && seq >= newest) {
      newest = seq;
      newestPath = p;
    }
  }
  ASSERT_FALSE(newestPath.empty());
  ASSERT_GT(newest, 0u);
  std::string data = readFile(newestPath);
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x01);
  writeFile(newestPath, data);

  RecoveryStats stats;
  EXPECT_EQ(recoverFresh(&stats), live);
  EXPECT_TRUE(stats.usedFallbackCheckpoint);
}

TEST_F(WalTest, AppendFailureLatchesUnhealthyButMutationsSucceed) {
  DurabilityManager mgr(configFor());
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  EXPECT_TRUE(mgr.healthy());
  const auto before = obs::registry().snapshot();
  mgr.wal().failNextAppends(2);
  const SegmentId id = tracker_.observeSegment(
      SegmentKind::kParagraph, "x#p0", "x", "svc", gen_.paragraph(5, 8));
  EXPECT_NE(id, kInvalidSegment);  // the mutation itself never fails
  EXPECT_FALSE(mgr.healthy());
  const auto delta = obs::registry().snapshot().diff(before);
  EXPECT_GE(delta.counterValue("bf_wal_append_failures_total"), 1u);
  // A checkpoint rotation restores health.
  ASSERT_TRUE(mgr.checkpoint(tracker_).ok());
  EXPECT_TRUE(mgr.healthy());
  EXPECT_EQ(recoverFresh(), canon(tracker_));
}

TEST_F(WalTest, PruneKeepsConfiguredGenerations) {
  DurabilityManager mgr(configFor());
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  for (int round = 0; round < 5; ++round) {
    tracker_.observeSegment(SegmentKind::kParagraph,
                            "r#p" + std::to_string(round), "r", "svc",
                            gen_.paragraph(4, 6));
    ASSERT_TRUE(mgr.checkpoint(tracker_).ok());
  }
  int checkpoints = 0;
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(seq));
    std::ifstream probe(dir_ + "/checkpoint-" + hex + ".bfc");
    if (probe.good()) ++checkpoints;
  }
  EXPECT_EQ(checkpoints, 2);  // keepGenerations default
  EXPECT_EQ(recoverFresh(), canon(tracker_));
}

TEST_F(WalTest, EncryptedCheckpointsRoundTrip) {
  DurabilityConfig cfg = configFor();
  cfg.secret = "org-secret";
  {
    DurabilityManager mgr(cfg);
    ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
    workload();
    ASSERT_TRUE(mgr.checkpoint(tracker_).ok());
  }
  util::LogicalClock clock2;
  FlowTracker restored(TrackerConfig{}, &clock2);
  DurabilityManager mgr2(cfg);
  auto stats = mgr2.recoverAndAttach(restored);
  ASSERT_TRUE(stats.ok()) << stats.errorMessage();
  restored.attachWal(nullptr);
  EXPECT_EQ(canon(restored), canon(tracker_));
}

TEST_F(WalTest, ReplaySkipsRecordsCoveredByCheckpoint) {
  DurabilityManager mgr(configFor());
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  workload();
  ASSERT_TRUE(mgr.checkpoint(tracker_).ok());

  // Recovery must not double-apply pre-checkpoint records even when the
  // old log generation is still on disk (keepGenerations includes it).
  RecoveryStats stats;
  EXPECT_EQ(recoverFresh(&stats), canon(tracker_));
  EXPECT_EQ(stats.replayedRecords, 0u);
}

TEST_F(WalTest, RecoveryMetricsAreRecorded) {
  {
    DurabilityManager mgr(configFor());
    ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
    workload();
  }
  const auto before = obs::registry().snapshot();
  RecoveryStats stats;
  (void)recoverFresh(&stats);
  const auto now = obs::registry().snapshot();
  const auto delta = now.diff(before);
  EXPECT_GE(delta.counterValue("bf_recovery_runs_total"), 1u);
  EXPECT_GE(delta.counterValue("bf_recovery_replayed_records_total"),
            stats.replayedRecords);
  EXPECT_GE(now.gaugeValue("bf_recovery_last_replay_ms"), 0.0);
}

TEST_F(WalTest, WalFileWithBadMagicIsDiscardedEntirely) {
  {
    DurabilityManager mgr(configFor());
    ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
    workload();
  }
  const std::string walFile = dir_ + "/wal-0000000000000000.bfw";
  std::string data = readFile(walFile);
  data[0] = 'X';
  writeFile(walFile, data);
  std::remove((dir_ + "/checkpoint-0000000000000000.bfc").c_str());

  RecoveryStats stats;
  const std::string recovered = recoverFresh(&stats);
  EXPECT_EQ(stats.replayedRecords, 0u);
  EXPECT_EQ(stats.discardedBytes, data.size());
  // Nothing replayable: recovery lands on the empty state.
  util::LogicalClock clock3;
  FlowTracker empty(TrackerConfig{}, &clock3);
  EXPECT_EQ(recovered, canon(empty));
}

// ---- Fault injection + self-healing (ISSUE 7) -----------------------------

TEST_F(WalTest, DroppedAppendsConsumeSequencesAndCountLost) {
  DurabilityManager mgr(configFor());
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  const std::uint64_t seqBefore = mgr.wal().nextSequence();
  mgr.wal().failNextAppends(1);
  // The first append drops and latches unhealthy; the two after it drop
  // too (no sequence gap can ever appear inside one segment file).
  for (int i = 0; i < 3; ++i) {
    tracker_.observeSegment(SegmentKind::kParagraph,
                            "l#p" + std::to_string(i), "l", "svc",
                            gen_.paragraph(4, 6));
  }
  EXPECT_EQ(mgr.wal().lostRecords(), 3u);
  EXPECT_EQ(mgr.wal().nextSequence(), seqBefore + 3);  // monotonic
  EXPECT_FALSE(mgr.wal().healthy());
  // The repair checkpoint at nextSequence-1 provably covers the lost
  // records: recovery reproduces the full in-memory state.
  ASSERT_TRUE(mgr.checkpoint(tracker_).ok());
  EXPECT_TRUE(mgr.healthy());
  EXPECT_EQ(mgr.wal().lostRecords(), 3u);  // durability debt is never reset
  EXPECT_EQ(recoverFresh(), canon(tracker_));
}

TEST_F(WalTest, InjectedWriteFaultDegradesAndMaintainSelfHeals) {
  io::FaultVfs fault(&io::defaultVfs(), /*seed=*/41);
  DurabilityConfig cfg = configFor();
  cfg.vfs = &fault;
  cfg.syncEachAppend = true;  // surface the write fault on the append itself
  cfg.repairBaseDelayMs = 0.0;  // tests never wait on the backoff clock
  cfg.repairMaxDelayMs = 0.0;
  DurabilityManager mgr(cfg);
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  EXPECT_EQ(mgr.health(), DurabilityHealth::kHealthy);

  fault.failNext(".bfw", 1, io::StorageFaultKind::kEnospc);
  tracker_.observeSegment(SegmentKind::kParagraph, "f#p0", "f", "svc",
                          gen_.paragraph(5, 8));
  EXPECT_GE(mgr.wal().lostRecords(), 1u);
  // maintain() first notices the degradation, then (backoff elapsed,
  // delay 0) repairs with an emergency checkpoint + rotation.
  int spins = 0;
  while (!mgr.healthy() && spins++ < 16) (void)mgr.maintain(tracker_);
  EXPECT_TRUE(mgr.healthy());
  EXPECT_EQ(mgr.health(), DurabilityHealth::kHealthy);
  EXPECT_EQ(mgr.repairAttempts(), 0u);  // reset on successful repair

  // Post-heal mutations are durable again across a clean recovery.
  tracker_.observeSegment(SegmentKind::kParagraph, "post#p0", "post", "svc",
                          gen_.paragraph(5, 8));
  ASSERT_TRUE(mgr.wal().sync().ok());
  EXPECT_EQ(recoverFresh(), canon(tracker_));
}

TEST_F(WalTest, RepairKeepsRetryingWhileStorageStaysBroken) {
  io::FaultVfs fault(&io::defaultVfs(), /*seed=*/42);
  DurabilityConfig cfg = configFor();
  cfg.vfs = &fault;
  cfg.syncEachAppend = true;  // append failures surface immediately
  cfg.repairBaseDelayMs = 0.0;
  cfg.repairMaxDelayMs = 0.0;
  DurabilityManager mgr(cfg);
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());

  // Break every write: appends drop AND repair checkpoints fail.
  io::StorageFaultConfig broken;
  broken.enospcProb = 1.0;
  fault.setDefaults(broken);
  tracker_.observeSegment(SegmentKind::kParagraph, "b#p0", "b", "svc",
                          gen_.paragraph(5, 8));
  const auto before = obs::registry().snapshot();
  for (int i = 0; i < 4; ++i) (void)mgr.maintain(tracker_);
  EXPECT_FALSE(mgr.healthy());
  EXPECT_GE(mgr.repairAttempts(), 2u);
  const auto delta = obs::registry().snapshot().diff(before);
  EXPECT_GE(delta.counterValue("bf_wal_repair_failures_total"), 2u);

  // Mutations keep succeeding the whole time (availability contract).
  const SegmentId id = tracker_.observeSegment(
      SegmentKind::kParagraph, "b#p1", "b", "svc", gen_.paragraph(5, 8));
  EXPECT_NE(id, kInvalidSegment);

  // Storage comes back: the next maintain() heals.
  fault.setDefaults(io::StorageFaultConfig{});
  int spins = 0;
  while (!mgr.healthy() && spins++ < 16) (void)mgr.maintain(tracker_);
  EXPECT_TRUE(mgr.healthy());
  ASSERT_TRUE(mgr.wal().sync().ok());
  EXPECT_EQ(recoverFresh(), canon(tracker_));
}

TEST_F(WalTest, RepairWaitsForBackoffBeforeRetrying) {
  io::FaultVfs fault(&io::defaultVfs(), /*seed=*/43);
  DurabilityConfig cfg = configFor();
  cfg.vfs = &fault;
  cfg.syncEachAppend = true;
  cfg.repairBaseDelayMs = 3600000.0;  // an hour: no test-time retry
  cfg.repairMaxDelayMs = 3600000.0;
  DurabilityManager mgr(cfg);
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  fault.failNext(".bfw", 1, io::StorageFaultKind::kEnospc);
  tracker_.observeSegment(SegmentKind::kParagraph, "w#p0", "w", "svc",
                          gen_.paragraph(5, 8));
  for (int i = 0; i < 4; ++i) (void)mgr.maintain(tracker_);
  // Degraded was noticed, but the hour-long backoff gates the attempt.
  EXPECT_EQ(mgr.health(), DurabilityHealth::kDegraded);
  EXPECT_EQ(mgr.repairAttempts(), 0u);
}

TEST_F(WalTest, HealthGaugeAndLostCounterTrackTheStateMachine) {
  io::FaultVfs fault(&io::defaultVfs(), /*seed=*/44);
  DurabilityConfig cfg = configFor();
  cfg.vfs = &fault;
  cfg.repairBaseDelayMs = 0.0;
  cfg.repairMaxDelayMs = 0.0;
  DurabilityManager mgr(cfg);
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  EXPECT_EQ(obs::registry().snapshot().gaugeValue("bf_wal_health"), 0.0);

  const auto before = obs::registry().snapshot();
  mgr.wal().failNextAppends(1);
  tracker_.observeSegment(SegmentKind::kParagraph, "g#p0", "g", "svc",
                          gen_.paragraph(5, 8));
  (void)mgr.maintain(tracker_);  // notices → kDegraded
  EXPECT_EQ(obs::registry().snapshot().gaugeValue("bf_wal_health"), 1.0);
  int spins = 0;
  while (!mgr.healthy() && spins++ < 16) (void)mgr.maintain(tracker_);
  EXPECT_EQ(obs::registry().snapshot().gaugeValue("bf_wal_health"), 0.0);
  const auto delta = obs::registry().snapshot().diff(before);
  EXPECT_GE(delta.counterValue("bf_wal_records_lost_total"), 1u);
  EXPECT_GE(delta.counterValue("bf_wal_repairs_total"), 1u);
}

TEST_F(WalTest, StorageQuotaPrunesToNewestGenerationUnderPressure) {
  DurabilityConfig cfg = configFor();
  cfg.keepGenerations = 0;  // keep everything...
  cfg.maxStorageBytes = 1;  // ...but the quota forces aggressive pruning
  DurabilityManager mgr(cfg);
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  const auto before = obs::registry().snapshot();
  for (int round = 0; round < 4; ++round) {
    tracker_.observeSegment(SegmentKind::kParagraph,
                            "q#p" + std::to_string(round), "q", "svc",
                            gen_.paragraph(4, 6));
    ASSERT_TRUE(mgr.checkpoint(tracker_).ok());
  }
  int checkpoints = 0;
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(seq));
    std::ifstream probe(dir_ + "/checkpoint-" + hex + ".bfc");
    if (probe.good()) ++checkpoints;
  }
  EXPECT_EQ(checkpoints, 1);  // only the newest generation survives
  const auto delta = obs::registry().snapshot().diff(before);
  EXPECT_GE(delta.counterValue("bf_storage_pressure_prunes_total"), 1u);
  EXPECT_GT(obs::registry().snapshot().gaugeValue("bf_storage_bytes"), 0.0);
  EXPECT_EQ(recoverFresh(), canon(tracker_));
}

TEST_F(WalTest, TornAppendWriteIsCaughtByRecoveryCrc) {
  io::FaultVfs fault(&io::defaultVfs(), /*seed=*/45);
  DurabilityConfig cfg = configFor();
  cfg.vfs = &fault;
  cfg.syncEachAppend = true;
  DurabilityManager mgr(cfg);
  ASSERT_TRUE(mgr.recoverAndAttach(tracker_).ok());
  tracker_.observeSegment(SegmentKind::kParagraph, "t#p0", "t", "svc",
                          gen_.paragraph(5, 8));
  const std::string durablePrefix = canon(tracker_);
  // The NEXT append is torn: a prefix lands, success is reported, the WAL
  // believes the record is durable. Only recovery-time CRC can catch it.
  fault.failNext(".bfw", 1, io::StorageFaultKind::kTornWrite);
  tracker_.observeSegment(SegmentKind::kParagraph, "t#p1", "t", "svc",
                          gen_.paragraph(5, 8));
  EXPECT_TRUE(mgr.wal().healthy());  // the lie holds in-process

  // Crash now (no checkpoint): recovery lands on the durable prefix.
  tracker_.attachWal(nullptr);
  RecoveryStats stats;
  const std::string recovered = recoverFresh(&stats);
  EXPECT_EQ(recovered, durablePrefix);
}

}  // namespace
}  // namespace bf::flow
