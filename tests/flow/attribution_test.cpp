// Tests for disclosure attribution (paper S4.1): mapping a detected
// disclosure back to the source passages that caused it.
#include <gtest/gtest.h>

#include "corpus/text_generator.h"
#include "flow/tracker.h"
#include "util/clock.h"

namespace bf::flow {
namespace {

class AttributionTest : public ::testing::Test {
 protected:
  AttributionTest()
      : rng_(8), gen_(&rng_), tracker_(TrackerConfig{}, &clock_) {}

  util::LogicalClock clock_;
  util::Rng rng_;
  corpus::TextGenerator gen_;
  FlowTracker tracker_;
};

TEST_F(AttributionTest, FullCopyAttributesMostOfTheSource) {
  const std::string secret = gen_.paragraph(7, 9);
  const SegmentId src = tracker_.observeSegment(
      SegmentKind::kParagraph, "src#p0", "src", "svc", secret);
  const auto ranges =
      tracker_.attributeDisclosure(src, tracker_.fingerprintOf(secret));
  ASSERT_FALSE(ranges.empty());
  std::size_t covered = 0;
  for (const auto& [b, e] : ranges) {
    ASSERT_LT(b, e);
    ASSERT_LE(e, secret.size() + 15);  // ranges stay within the source
    covered += e - b;
  }
  // A verbatim copy implicates the bulk of the source text.
  EXPECT_GT(static_cast<double>(covered),
            0.5 * static_cast<double>(secret.size()));
}

TEST_F(AttributionTest, PartialCopyPointsAtTheCopiedHalf) {
  const std::string first = gen_.paragraph(6, 6);
  const std::string second = gen_.paragraph(6, 6);
  const std::string source = first + " " + second;
  const SegmentId src = tracker_.observeSegment(
      SegmentKind::kParagraph, "src#p0", "src", "svc", source);

  // Leak only the SECOND half.
  const auto ranges =
      tracker_.attributeDisclosure(src, tracker_.fingerprintOf(second));
  ASSERT_FALSE(ranges.empty());
  // Every attributed byte lies in the second half (with n-gram slack).
  for (const auto& [b, e] : ranges) {
    EXPECT_GT(e, first.size() / 2) << "attribution fell in the wrong half";
    EXPECT_GE(b + 45, first.size())
        << "range [" << b << "," << e << ") starts deep in the first half";
  }
}

TEST_F(AttributionTest, NoOverlapNoRanges) {
  const SegmentId src = tracker_.observeSegment(
      SegmentKind::kParagraph, "src#p0", "src", "svc", gen_.paragraph(7, 9));
  EXPECT_TRUE(
      tracker_
          .attributeDisclosure(src,
                               tracker_.fingerprintOf(gen_.paragraph(7, 9)))
          .empty());
}

TEST_F(AttributionTest, UnknownSegmentOrEmptyTarget) {
  EXPECT_TRUE(tracker_.attributeDisclosure(999, tracker_.fingerprintOf("x"))
                  .empty());
  const SegmentId src = tracker_.observeSegment(
      SegmentKind::kParagraph, "src#p0", "src", "svc", gen_.paragraph(7, 9));
  EXPECT_TRUE(
      tracker_.attributeDisclosure(src, text::Fingerprint{}).empty());
}

TEST_F(AttributionTest, RangesAreSortedAndDisjoint) {
  const std::string a = gen_.paragraph(5, 5);
  const std::string b = gen_.paragraph(5, 5);
  const std::string c = gen_.paragraph(5, 5);
  const std::string source = a + " " + b + " " + c;
  const SegmentId src = tracker_.observeSegment(
      SegmentKind::kParagraph, "src#p0", "src", "svc", source);
  // Leak the first and last thirds.
  const auto ranges = tracker_.attributeDisclosure(
      src, tracker_.fingerprintOf(a + " " + c));
  ASSERT_FALSE(ranges.empty());
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_GT(ranges[i].first, ranges[i - 1].second);
  }
}

TEST_F(AttributionTest, AuthoritativeFilteringApplies) {
  // A second copy of the same text owns nothing: attribution on it is
  // empty, pointing auditors at the true origin instead.
  const std::string secret = gen_.paragraph(7, 9);
  tracker_.observeSegment(SegmentKind::kParagraph, "orig#p0", "orig", "svc",
                          secret);
  const SegmentId copy = tracker_.observeSegment(
      SegmentKind::kParagraph, "copy#p0", "copy", "svc", secret);
  EXPECT_TRUE(
      tracker_.attributeDisclosure(copy, tracker_.fingerprintOf(secret))
          .empty());
}

TEST_F(AttributionTest, PositionsSurviveNormalization) {
  // Punctuation/case in the source must not skew attribution offsets.
  const std::string noise = gen_.paragraph(6, 6);
  const std::string sensitive =
      "THE, SECRET!!! Launch--Date is: March the third, twenty twenty six, "
      "and the code name is Operation Blue Harvest, as decided last week.";
  const std::string source = noise + " " + sensitive;
  const SegmentId src = tracker_.observeSegment(
      SegmentKind::kParagraph, "src#p0", "src", "svc", source);
  const auto ranges = tracker_.attributeDisclosure(
      src, tracker_.fingerprintOf(sensitive));
  ASSERT_FALSE(ranges.empty());
  for (const auto& [b, e] : ranges) {
    EXPECT_GE(b + 45, noise.size()) << "attribution leaked into the noise";
    EXPECT_LE(e, source.size() + 15);
  }
}

}  // namespace
}  // namespace bf::flow
