// Property-style tests on FlowTracker invariants, parameterized over
// fingerprint configurations and thresholds (TEST_P sweeps).
#include <gtest/gtest.h>

#include "corpus/text_generator.h"
#include "flow/tracker.h"
#include "text/segmenter.h"
#include "util/clock.h"

namespace bf::flow {
namespace {

// ---- Verbatim copies are detected under every sane configuration -------------

class VerbatimDetection
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, double>> {};

TEST_P(VerbatimDetection, CopyOfTrackedParagraphAlwaysReported) {
  const auto [ngram, window, tpar] = GetParam();
  TrackerConfig config;
  config.fingerprint.ngramChars = ngram;
  config.fingerprint.windowChars = window;
  config.defaultParagraphThreshold = tpar;

  util::Rng rng(ngram * 1000 + window * 10 + static_cast<int>(tpar * 10));
  corpus::TextGenerator gen(&rng);
  for (int trial = 0; trial < 5; ++trial) {
    // Fresh tracker per trial: with a single source, the authoritative
    // fingerprint is the full fingerprint, so a verbatim copy scores
    // exactly 1 under every configuration. (With many sources, popular
    // passages shift authority to older segments — covered elsewhere.)
    util::LogicalClock clock;
    FlowTracker tracker(config, &clock);
    const std::string text = gen.paragraph(6, 9);
    const std::string name = "src" + std::to_string(trial) + "#p0";
    tracker.observeSegment(SegmentKind::kParagraph, name,
                           "srcdoc" + std::to_string(trial), "svc", text);
    const auto hits = tracker.checkText(text, "probe");
    ASSERT_FALSE(hits.empty()) << "verbatim copy missed, trial " << trial;
    EXPECT_EQ(hits[0].sourceName, name);
    EXPECT_DOUBLE_EQ(hits[0].score, 1.0);
  }
}

TEST(TrackerProperties, PopularTextShiftsAuthorityToOldestSegment) {
  // The inherent recall limit of authoritative fingerprints (paper S6.2's
  // "popular text passages" remark): a paragraph whose hashes were all
  // seen earlier elsewhere scores below 1 — authority belongs to history.
  util::LogicalClock clock;
  FlowTracker tracker(TrackerConfig{}, &clock);
  util::Rng rng(123);
  corpus::TextGenerator gen(&rng);
  const std::string shared = gen.paragraph(8, 8);
  tracker.observeSegment(SegmentKind::kParagraph, "first#p0", "first", "svc",
                         shared);
  tracker.observeSegment(SegmentKind::kParagraph, "second#p0", "second",
                         "svc", shared);
  const SegmentId second = tracker.segmentByName("second#p0")->id;
  const SegmentId probe = tracker.observeSegment(
      SegmentKind::kParagraph, "probe#p0", "probe", "svc", shared);
  // The probe's disclosure is attributed to "first", never "second".
  const auto& hits = tracker.sourcesForSegment(probe);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].sourceName, "first#p0");
  EXPECT_DOUBLE_EQ(tracker.pairwiseDisclosure(second, probe), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, VerbatimDetection,
    ::testing::Values(std::make_tuple(8, 16, 0.5),
                      std::make_tuple(15, 30, 0.0),
                      std::make_tuple(15, 30, 0.5),
                      std::make_tuple(15, 30, 1.0),
                      std::make_tuple(15, 45, 0.5),
                      std::make_tuple(25, 50, 0.8)));

// ---- Scores are well-formed ----------------------------------------------------

class ScoreBounds : public ::testing::TestWithParam<double> {};

TEST_P(ScoreBounds, ScoresAlwaysInUnitIntervalAndAboveThreshold) {
  const double tpar = GetParam();
  util::LogicalClock clock;
  TrackerConfig config;
  config.defaultParagraphThreshold = tpar;
  FlowTracker tracker(config, &clock);
  util::Rng rng(static_cast<std::uint64_t>(tpar * 100) + 7);
  corpus::TextGenerator gen(&rng);

  std::vector<std::string> sources;
  for (int i = 0; i < 10; ++i) {
    sources.push_back(gen.paragraph(5, 8));
    tracker.observeSegment(SegmentKind::kParagraph,
                           "s" + std::to_string(i) + "#p0",
                           "d" + std::to_string(i), "svc", sources.back());
  }
  // Probes mixing slices of several sources.
  for (int t = 0; t < 10; ++t) {
    std::string probe = sources[static_cast<std::size_t>(t) % 10].substr(
        0, 40 + 15 * static_cast<std::size_t>(t));
    probe += " " + gen.sentence();
    for (const auto& hit : tracker.checkText(probe, "probe")) {
      EXPECT_GE(hit.score, 0.0);
      EXPECT_LE(hit.score, 1.0);
      EXPECT_GE(hit.score, hit.threshold);
      EXPECT_GT(hit.overlap, 0u);
      EXPECT_LE(hit.overlap, hit.sourceFingerprintSize);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThresholdSweep, ScoreBounds,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

// ---- Growing a probe never loses an established full-disclosure source --------

TEST(TrackerProperties, AppendingTextKeepsFullDisclosureApproximately) {
  util::LogicalClock clock;
  FlowTracker tracker(TrackerConfig{}, &clock);
  util::Rng rng(99);
  corpus::TextGenerator gen(&rng);
  const std::string secret = gen.paragraph(8, 10);
  tracker.observeSegment(SegmentKind::kParagraph, "src#p0", "src", "svc",
                         secret);
  std::string probe = secret;
  for (int i = 0; i < 6; ++i) {
    probe += " " + gen.sentence();
    const auto hits = tracker.checkText(probe, "probe");
    ASSERT_FALSE(hits.empty()) << "after " << i << " appended sentences";
    // Winnowing selections near the splice can shift; tolerate a small dip.
    EXPECT_GE(hits[0].score, 0.9);
  }
}

// ---- Removing then re-observing keeps the tracker consistent -------------------

TEST(TrackerProperties, RemoveReobserveCycleStable) {
  util::LogicalClock clock;
  FlowTracker tracker(TrackerConfig{}, &clock);
  util::Rng rng(3);
  corpus::TextGenerator gen(&rng);
  const std::string text = gen.paragraph(7, 9);
  for (int cycle = 0; cycle < 5; ++cycle) {
    tracker.observeSegment(SegmentKind::kParagraph, "s#p0", "s", "svc", text);
    ASSERT_FALSE(tracker.checkText(text, "probe").empty()) << cycle;
    tracker.removeSegmentByName("s#p0");
    ASSERT_TRUE(tracker.checkText(text, "probe").empty()) << cycle;
  }
}

// ---- findSegmentWithFingerprint --------------------------------------------------

TEST(TrackerProperties, FindSegmentWithFingerprintMatchesExactly) {
  util::LogicalClock clock;
  FlowTracker tracker(TrackerConfig{}, &clock);
  util::Rng rng(4);
  corpus::TextGenerator gen(&rng);
  const std::string a = gen.paragraph(6, 8);
  const std::string b = gen.paragraph(6, 8);
  tracker.observeSegment(SegmentKind::kParagraph, "doc#p0", "doc", "svc", a);
  tracker.observeSegment(SegmentKind::kParagraph, "doc#p1", "doc", "svc", b);

  const std::optional<SegmentRecord> hit =
      tracker.findSegmentWithFingerprint("doc", tracker.fingerprintOf(a));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name, "doc#p0");
  // Different document: no match.
  EXPECT_FALSE(tracker
                   .findSegmentWithFingerprint("other",
                                               tracker.fingerprintOf(a))
                   .has_value());
  // Unrelated text: no match.
  EXPECT_FALSE(tracker
                   .findSegmentWithFingerprint(
                       "doc", tracker.fingerprintOf(gen.paragraph(6, 8)))
                   .has_value());
  // Empty fingerprint never matches.
  EXPECT_FALSE(tracker
                   .findSegmentWithFingerprint("doc",
                                               tracker.fingerprintOf("x"))
                   .has_value());
}

TEST(TrackerProperties, ObserveDocumentAppliesThresholdOverrides) {
  util::LogicalClock clock;
  FlowTracker tracker(TrackerConfig{}, &clock);
  util::Rng rng(5);
  corpus::TextGenerator gen(&rng);
  const std::string text = gen.paragraph(5, 7) + "\n\n" + gen.paragraph(5, 7);
  const auto obs = tracker.observeDocument("doc", "svc", text, 0.2, 0.9);
  EXPECT_DOUBLE_EQ(tracker.segment(obs.document)->threshold, 0.9);
  for (SegmentId pid : obs.paragraphs) {
    EXPECT_DOUBLE_EQ(tracker.segment(pid)->threshold, 0.2);
  }
}

TEST(TrackerProperties, ObserveDocumentEquivalentToSegmentLoop) {
  // The batched path (fingerprints outside the lock, possibly in parallel,
  // one exclusive apply) must produce exactly the state the old
  // one-observeSegment-per-segment loop produced: same names, kinds,
  // thresholds, fingerprints, and query answers.
  util::Rng rng(17);
  corpus::TextGenerator gen(&rng);
  std::string doc;
  for (int p = 0; p < 10; ++p) {  // 10 paragraphs: enough to fan out on
    if (!doc.empty()) doc += "\n\n";  // multicore machines
    doc += gen.paragraph(3 + p % 4, 8);
  }

  util::LogicalClock clockA;
  FlowTracker batched(TrackerConfig{}, &clockA);
  const auto obs = batched.observeDocument("doc", "svc", doc, 0.3, 0.1);

  util::LogicalClock clockB;
  FlowTracker looped(TrackerConfig{}, &clockB);
  looped.observeSegment(SegmentKind::kDocument, "doc", "doc", "svc", doc,
                        0.1);
  const auto paras = text::segmentParagraphs(doc);
  ASSERT_EQ(obs.paragraphs.size(), paras.size());
  for (const auto& para : paras) {
    looped.observeSegment(SegmentKind::kParagraph,
                          "doc#p" + std::to_string(para.index), "doc", "svc",
                          para.text, 0.3);
  }

  // Identical per-segment state...
  for (std::size_t i = 0; i <= paras.size(); ++i) {
    const SegmentId id = i == 0 ? obs.document : obs.paragraphs[i - 1];
    const SegmentRecord* a = batched.segment(id);
    ASSERT_NE(a, nullptr);
    const SegmentRecord* b = looped.segmentByName(a->name);
    ASSERT_NE(b, nullptr) << a->name;
    EXPECT_EQ(a->kind, b->kind);
    EXPECT_EQ(a->document, b->document);
    EXPECT_EQ(a->service, b->service);
    EXPECT_DOUBLE_EQ(a->threshold, b->threshold);
    EXPECT_TRUE(a->fingerprint.sameHashes(b->fingerprint)) << a->name;
  }
  EXPECT_EQ(batched.stats().fingerprintsComputed,
            looped.stats().fingerprintsComputed);

  // ...and identical query answers for a probe against each paragraph.
  for (const auto& para : paras) {
    const auto hitsA = batched.checkText(para.text, "probe");
    const auto hitsB = looped.checkText(para.text, "probe");
    ASSERT_EQ(hitsA.size(), hitsB.size());
    for (std::size_t i = 0; i < hitsA.size(); ++i) {
      EXPECT_EQ(hitsA[i].sourceName, hitsB[i].sourceName);
      EXPECT_DOUBLE_EQ(hitsA[i].score, hitsB[i].score);
    }
  }
}

TEST(TrackerProperties, SetSegmentThresholdChangesDetectionAndDropsCache) {
  util::LogicalClock clock;
  FlowTracker tracker(TrackerConfig{}, &clock);
  util::Rng rng(21);
  corpus::TextGenerator gen(&rng);
  const std::string sensitive = gen.paragraph(8, 8);
  tracker.observeSegment(SegmentKind::kParagraph, "src#p0", "src", "svc",
                         sensitive);
  const SegmentId probe = tracker.observeSegment(
      SegmentKind::kParagraph, "probe#p0", "probe", "svc",
      sensitive.substr(0, sensitive.size() / 3) + " " + gen.paragraph(8, 8));

  // A one-third slice is below the default 0.5 threshold.
  EXPECT_TRUE(tracker.sourcesForSegment(probe).empty());
  // The author tightens the source's threshold to "any leak".
  ASSERT_TRUE(tracker.setSegmentThreshold("src#p0", 0.0));
  EXPECT_FALSE(tracker.sourcesForSegment(probe).empty())
      << "cached empty answer must not survive the threshold change";
  // And relaxes it again.
  ASSERT_TRUE(tracker.setSegmentThreshold("src#p0", 0.99));
  EXPECT_TRUE(tracker.sourcesForSegment(probe).empty());
  EXPECT_FALSE(tracker.setSegmentThreshold("ghost", 0.5));
}

TEST(TrackerProperties, CacheDisabledStillCorrect) {
  util::LogicalClock clock;
  TrackerConfig config;
  config.enableCache = false;
  FlowTracker tracker(config, &clock);
  util::Rng rng(6);
  corpus::TextGenerator gen(&rng);
  const std::string secret = gen.paragraph(7, 9);
  tracker.observeSegment(SegmentKind::kParagraph, "src#p0", "src", "svc",
                         secret);
  const SegmentId dst = tracker.observeSegment(SegmentKind::kParagraph,
                                               "dst#p0", "dst", "svc", secret);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(tracker.sourcesForSegment(dst).size(), 1u);
  }
  EXPECT_EQ(tracker.stats().cacheHits, 0u);
}

}  // namespace
}  // namespace bf::flow
