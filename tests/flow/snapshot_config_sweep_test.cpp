// Property sweep: snapshot round-trips must preserve query behaviour under
// every fingerprint configuration (the blob embeds raw grams, so config
// mismatches would silently corrupt results — the tracker must be
// reconstructed with the same config, and with it, agree exactly).
#include <gtest/gtest.h>

#include "corpus/text_generator.h"
#include "flow/snapshot.h"

namespace bf::flow {
namespace {

class SnapshotConfigSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 double>> {};

TEST_P(SnapshotConfigSweep, RoundTripAgreesUnderConfig) {
  const auto [ngram, window, tpar] = GetParam();
  TrackerConfig config;
  config.fingerprint.ngramChars = ngram;
  config.fingerprint.windowChars = window;
  config.defaultParagraphThreshold = tpar;

  util::LogicalClock clock;
  FlowTracker tracker(config, &clock);
  util::Rng rng(ngram + window * 3 + static_cast<std::uint64_t>(tpar * 7));
  corpus::TextGenerator gen(&rng);

  std::vector<std::string> texts;
  for (int i = 0; i < 8; ++i) {
    texts.push_back(gen.paragraph(6, 8));
    tracker.observeSegment(SegmentKind::kParagraph,
                           "s" + std::to_string(i) + "#p0",
                           "d" + std::to_string(i), "svc", texts.back());
  }

  util::LogicalClock clock2;
  FlowTracker restored(config, &clock2);
  const auto maxTs = importState(restored, exportState(tracker));
  ASSERT_TRUE(maxTs.ok()) << maxTs.errorMessage();
  clock2.advanceTo(maxTs.value() + 1);

  for (const auto& probe : texts) {
    const auto a = tracker.checkText(probe, "elsewhere");
    const auto b = restored.checkText(probe, "elsewhere");
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].sourceName, b[k].sourceName);
      EXPECT_DOUBLE_EQ(a[k].score, b[k].score);
      EXPECT_EQ(a[k].overlap, b[k].overlap);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, SnapshotConfigSweep,
    ::testing::Values(std::make_tuple(8, 16, 0.5),
                      std::make_tuple(15, 30, 0.0),
                      std::make_tuple(15, 30, 0.5),
                      std::make_tuple(15, 45, 0.8),
                      std::make_tuple(25, 50, 0.5)));

}  // namespace
}  // namespace bf::flow
