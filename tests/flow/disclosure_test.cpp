// Tests for disclosure metrics and authoritative fingerprints (paper
// S4.2-S4.3), including the overlapping-documents scenario of Fig. 7.
#include <gtest/gtest.h>

#include "flow/disclosure.h"

namespace bf::flow {
namespace {

text::Fingerprint fpOf(std::initializer_list<std::uint64_t> hashes) {
  std::vector<text::HashedGram> grams;
  std::uint32_t pos = 0;
  for (auto h : hashes) grams.push_back({h, pos++});
  return text::Fingerprint::fromSelected(std::move(grams));
}

/// Registers a segment with the given hashes at time `ts` in both stores.
SegmentId addSegment(SegmentDb& segs, HashDb& hashes, const char* name,
                     std::initializer_list<std::uint64_t> hs,
                     util::Timestamp ts, double threshold = 0.5) {
  const SegmentId id =
      segs.create(SegmentKind::kParagraph, name, name, "svc", threshold, ts);
  segs.updateFingerprint(id, fpOf(hs), ts);
  for (auto h : hs) hashes.recordObservation(h, id, ts);
  return id;
}

TEST(Disclosure, FullOverlapScoresOne) {
  SegmentDb segs;
  HashDb hashes;
  const SegmentId a = addSegment(segs, hashes, "A", {1, 2, 3}, 10);
  const auto target = fpOf({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(disclosureScore(*segs.find(a), target, hashes), 1.0);
}

TEST(Disclosure, PartialOverlap) {
  SegmentDb segs;
  HashDb hashes;
  const SegmentId a = addSegment(segs, hashes, "A", {1, 2, 3, 4}, 10);
  const auto target = fpOf({1, 2, 99});
  EXPECT_DOUBLE_EQ(disclosureScore(*segs.find(a), target, hashes), 0.5);
}

TEST(Disclosure, NoOverlapScoresZero) {
  SegmentDb segs;
  HashDb hashes;
  const SegmentId a = addSegment(segs, hashes, "A", {1, 2}, 10);
  EXPECT_DOUBLE_EQ(disclosureScore(*segs.find(a), fpOf({8, 9}), hashes), 0.0);
}

TEST(Disclosure, EmptySourceFingerprintScoresZero) {
  SegmentDb segs;
  HashDb hashes;
  const SegmentId a = addSegment(segs, hashes, "A", {}, 10);
  EXPECT_DOUBLE_EQ(disclosureScore(*segs.find(a), fpOf({1}), hashes), 0.0);
}

TEST(Disclosure, AuthoritativeHashesExcludeOlderOwners) {
  SegmentDb segs;
  HashDb hashes;
  const SegmentId a = addSegment(segs, hashes, "A", {1, 2}, 10);
  const SegmentId b = addSegment(segs, hashes, "B", {1, 2, 3, 4}, 20);
  // B's hashes 1,2 were first seen in A: only 3,4 are authoritative to B.
  const auto authB = authoritativeHashes(*segs.find(b), hashes);
  EXPECT_EQ(authB, (std::vector<std::uint64_t>{3, 4}));
  // A is the oldest owner of everything it has.
  const auto authA = authoritativeHashes(*segs.find(a), hashes);
  EXPECT_EQ(authA, (std::vector<std::uint64_t>{1, 2}));
}

TEST(Disclosure, Figure7OverlappingDocuments) {
  // Paper Fig. 7: B is a superset of A (with extra text). A's content is
  // copied to C. Naive containment would report BOTH A and B as disclosed
  // by C; the authoritative fingerprint confines the report to A.
  SegmentDb segs;
  HashDb hashes;
  // A has hashes {1..4}; B contains A plus its own {5..8} (threshold 0.5).
  const SegmentId a = addSegment(segs, hashes, "A", {1, 2, 3, 4}, 10);
  const SegmentId b =
      addSegment(segs, hashes, "B", {1, 2, 3, 4, 5, 6, 7, 8}, 20);
  // C receives the overlapping (A-origin) text only.
  const auto c = fpOf({1, 2, 3, 4});

  // Naive pairwise disclosure would flag both:
  const auto& recA = *segs.find(a);
  const auto& recB = *segs.find(b);
  EXPECT_GE(static_cast<double>(text::Fingerprint::intersectionSize(
                recB.fingerprint, c)) /
                static_cast<double>(recB.fingerprint.size()),
            0.5);

  // Authoritative disclosure flags A only.
  EXPECT_DOUBLE_EQ(disclosureScore(recA, c, hashes), 1.0);
  EXPECT_LT(disclosureScore(recB, c, hashes), 0.5);
}

TEST(Disclosure, DenominatorIsFullFingerprintNotAuthoritative) {
  // D = |F_auth(A) ∩ F(B)| / |F(A)| — the denominator stays |F(A)|.
  SegmentDb segs;
  HashDb hashes;
  addSegment(segs, hashes, "older", {1, 2}, 10);
  const SegmentId b = addSegment(segs, hashes, "B", {1, 2, 3, 4}, 20);
  // F_auth(B) = {3,4}; target holds all four.
  const auto target = fpOf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(disclosureScore(*segs.find(b), target, hashes), 0.5);
}

TEST(Disclosure, IsDisclosedRequiresNonEmptyOverlap) {
  // Threshold 0 means "any leaked hash" (paper S4.2), not "always".
  EXPECT_FALSE(isDisclosed(0.0, 0, 0.0));
  EXPECT_TRUE(isDisclosed(0.01, 1, 0.0));
}

TEST(Disclosure, IsDisclosedAtThresholdBoundary) {
  EXPECT_TRUE(isDisclosed(0.5, 3, 0.5));
  EXPECT_FALSE(isDisclosed(0.49, 3, 0.5));
  EXPECT_TRUE(isDisclosed(1.0, 5, 1.0));
}

TEST(Disclosure, RemovingOlderOwnerPromotesAuthority) {
  SegmentDb segs;
  HashDb hashes;
  const SegmentId a = addSegment(segs, hashes, "A", {1, 2}, 10);
  const SegmentId b = addSegment(segs, hashes, "B", {1, 2, 3}, 20);
  EXPECT_EQ(authoritativeHashes(*segs.find(b), hashes).size(), 1u);
  hashes.removeSegment(a);
  segs.remove(a);
  EXPECT_EQ(authoritativeHashes(*segs.find(b), hashes).size(), 3u);
}

}  // namespace
}  // namespace bf::flow
