// Leak shape 1: streaming sensitive content into a log line. There is no
// operator<< for SensitiveText/SensitiveView, so the LogStream template
// fails to instantiate. Control: log the redacted preview instead.
#include "sec/sensitive.h"
#include "util/logging.h"

namespace bf {

void logDocument(const sec::SensitiveText& doc) {
#ifdef BF_NC_CONTROL
  BF_LOG(util::LogLevel::kInfo, "demo") << sec::redact(doc).text;
#else
  BF_LOG(util::LogLevel::kInfo, "demo") << doc;
#endif
}

}  // namespace bf
