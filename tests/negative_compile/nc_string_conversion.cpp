// Leak shape 3: materializing sensitive text as an ordinary std::string.
// SensitiveText has no conversion to std::string. Control: keep the
// value in the sensitive domain.
#include <string>

#include "sec/sensitive.h"

namespace bf {

void copyOut(const sec::SensitiveText& doc) {
#ifdef BF_NC_CONTROL
  sec::SensitiveText copy = doc;
  (void)copy;
#else
  std::string copy = doc;
  (void)copy;
#endif
}

}  // namespace bf
