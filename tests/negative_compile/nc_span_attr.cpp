// Leak shape 5: attaching sensitive content to a trace span attribute.
// addAttr takes only numeric values; a SensitiveView does not convert.
// Control: attach the one-way content hash.
#include "obs/trace.h"
#include "sec/sensitive.h"

namespace bf {

void annotateSpan(obs::ScopedSpan& span, sec::SensitiveView para) {
#ifdef BF_NC_CONTROL
  span.addAttr("content", sec::contentHash(para));
#else
  span.addAttr("content", para);
#endif
}

}  // namespace bf
