// Leak shape 4: dropping raw content into an audit-record field. The
// justification field is a std::string, so sensitive text cannot be
// assigned. Control: audits carry the redact() preview.
#include "sec/sensitive.h"
#include "tdm/audit.h"

namespace bf {

void annotate(tdm::AuditRecord& rec, const sec::SensitiveText& content) {
#ifdef BF_NC_CONTROL
  rec.justification = sec::redact(content).text;
#else
  rec.justification = content;
#endif
}

}  // namespace bf
