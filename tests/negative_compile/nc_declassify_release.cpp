// Leak shape 6: calling the test-only total declassifier from production
// code. The symbol only exists under BF_SEC_ENABLE_TEST_DECLASSIFY, which
// only the tests/ and bench/ targets define — so this fixture's control
// flag is that define itself, not BF_NC_CONTROL.
// nc-control-flags: -DBF_SEC_ENABLE_TEST_DECLASSIFY
#include <string>

#include "sec/sensitive.h"

namespace bf {

std::string exfiltrate(const sec::SensitiveText& doc) {
  return sec::declassifyForTest(doc);
}

}  // namespace bf
