// Leak shape 2: silently converting a SensitiveView back into a
// std::string_view — the conversion taint-out must not exist. Control:
// the plumbing escape hatch is an explicit, lint-tracked raw() call.
#include <string_view>

#include "sec/sensitive.h"

namespace bf {

std::string_view peek(sec::SensitiveView view) {
#ifdef BF_NC_CONTROL
  return view.raw();
#else
  return view;
#endif
}

}  // namespace bf
