// Tests for TdmPolicy: the scenarios of paper Figs. 3, 4, 5 and 6, plus
// audit-trail and custom-tag mechanics.
#include <gtest/gtest.h>

#include "tdm/policy.h"
#include "util/clock.h"

namespace bf::tdm {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest() : policy_(&clock_) {
    // The running example's three services (Fig. 3).
    policy_.services().upsert(
        {"itool", "Interview Tool", TagSet{"ti"}, TagSet{"ti"}});
    policy_.services().upsert(
        {"wiki", "Internal Wiki", TagSet{"tw"}, TagSet{"tw"}});
    policy_.services().upsert({"gdocs", "Google Docs", TagSet{}, TagSet{}});
  }

  util::LogicalClock clock_;
  TdmPolicy policy_;
};

TEST_F(PolicyTest, Figure3DefaultTagAssignment) {
  // Step 1: text created in the Interview Tool gets Lc = {ti}.
  const Label& l1 = policy_.onSegmentObserved("itool/doc#p0", "itool");
  EXPECT_TRUE(l1.explicitTags().contains("ti"));

  // Step 2: {ti} ⊄ {tw}: Wiki upload blocked.
  const UploadDecision toWiki = policy_.checkUpload("itool/doc#p0", "wiki");
  EXPECT_FALSE(toWiki.allowed);
  ASSERT_EQ(toWiki.violatingTags.size(), 1u);
  EXPECT_EQ(toWiki.violatingTags[0], "ti");

  // Step 3: text from Google Docs (Lc = {}) may flow to the Wiki.
  policy_.onSegmentObserved("gdocs/doc#p0", "gdocs");
  EXPECT_TRUE(policy_.checkUpload("gdocs/doc#p0", "wiki").allowed);
}

TEST_F(PolicyTest, Figure4TagSuppression) {
  policy_.onSegmentObserved("itool/doc#p0", "itool");
  ASSERT_FALSE(policy_.checkUpload("itool/doc#p0", "wiki").allowed);

  // The user suppresses ti with a justification; the upload then succeeds.
  const auto st = policy_.suppressTag("alice", "itool/doc#p0", "ti",
                                      "sharing interview guidelines");
  ASSERT_TRUE(st.ok()) << st.errorMessage();
  EXPECT_TRUE(policy_.checkUpload("itool/doc#p0", "wiki").allowed);

  // The suppression left an audit record with user and justification.
  const auto records =
      policy_.audit().byKind(AuditRecord::Kind::kTagSuppressed);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].user, "alice");
  EXPECT_EQ(records[0].tag, "ti");
  EXPECT_EQ(records[0].justification, "sharing interview guidelines");

  // The tag remains attached to the label.
  EXPECT_TRUE(policy_.labelOf("itool/doc#p0")->suppressedTags().contains("ti"));
}

TEST_F(PolicyTest, SuppressionIsPerSegment) {
  // "each time a user wishes to declassify the same text segment, they need
  //  to explicitly perform a tag suppression" — other segments with the
  //  same tag remain restricted.
  policy_.onSegmentObserved("itool/a#p0", "itool");
  policy_.onSegmentObserved("itool/b#p0", "itool");
  ASSERT_TRUE(policy_.suppressTag("alice", "itool/a#p0", "ti", "ok").ok());
  EXPECT_TRUE(policy_.checkUpload("itool/a#p0", "wiki").allowed);
  EXPECT_FALSE(policy_.checkUpload("itool/b#p0", "wiki").allowed);
}

TEST_F(PolicyTest, SuppressUnknownSegmentFails) {
  EXPECT_FALSE(policy_.suppressTag("alice", "nope", "ti", "x").ok());
}

TEST_F(PolicyTest, SuppressInactiveTagFails) {
  policy_.onSegmentObserved("wiki/p#p0", "wiki");
  EXPECT_FALSE(policy_.suppressTag("alice", "wiki/p#p0", "ti", "x").ok());
}

TEST_F(PolicyTest, Figure5CustomTags) {
  // Admin extended the Interview Tool's privileges with tw.
  policy_.services().addPrivilegeTag("itool", "tw");
  policy_.onSegmentObserved("wiki/secret#p0", "wiki");
  // Wiki data may now reach the Interview Tool...
  ASSERT_TRUE(policy_.checkUpload("wiki/secret#p0", "itool").allowed);

  // ...until a user protects the segment with a custom tag tn.
  ASSERT_TRUE(policy_.allocateCustomTag("bob", "tn").ok());
  ASSERT_TRUE(policy_.addCustomTagToSegment("bob", "wiki/secret#p0", "tn").ok());

  // The Wiki already stores the segment, so its Lp gained tn automatically
  // (step 2 of Fig. 5) — the segment still lives happily where it is.
  EXPECT_TRUE(policy_.checkUpload("wiki/secret#p0", "wiki").allowed);
  // But the Interview Tool did not get tn: flow now denied (step 3).
  EXPECT_FALSE(policy_.checkUpload("wiki/secret#p0", "itool").allowed);

  // The owner can later grant the Interview Tool the privilege.
  ASSERT_TRUE(policy_.setServicePrivilege("bob", "itool", "tn", true).ok());
  EXPECT_TRUE(policy_.checkUpload("wiki/secret#p0", "itool").allowed);
}

TEST_F(PolicyTest, CustomTagOwnershipEnforced) {
  ASSERT_TRUE(policy_.allocateCustomTag("bob", "tn").ok());
  EXPECT_FALSE(policy_.allocateCustomTag("eve", "tn").ok());  // taken
  policy_.onSegmentObserved("wiki/x#p0", "wiki");
  EXPECT_FALSE(policy_.addCustomTagToSegment("eve", "wiki/x#p0", "tn").ok());
  EXPECT_FALSE(policy_.setServicePrivilege("eve", "wiki", "tn", true).ok());
  EXPECT_EQ(policy_.customTagOwner("tn"), "bob");
  EXPECT_EQ(policy_.customTagOwner("other"), "");
}

TEST_F(PolicyTest, NonCustomTagCannotBeManaged) {
  policy_.onSegmentObserved("wiki/x#p0", "wiki");
  EXPECT_FALSE(policy_.addCustomTagToSegment("bob", "wiki/x#p0", "ti").ok());
  EXPECT_FALSE(policy_.setServicePrivilege("bob", "wiki", "ti", true).ok());
}

TEST_F(PolicyTest, Figure6ImplicitTagsRetireStaleTaint) {
  // Wiki may receive Interview Tool data; Google Docs may receive Wiki
  // data but NOT Interview Tool data.
  policy_.services().upsert(
      {"wiki", "Internal Wiki", TagSet{"tw", "ti"}, TagSet{"tw"}});
  policy_.services().upsert(
      {"gdocs", "Google Docs", TagSet{"tw"}, TagSet{}});

  // Segment A in the Interview Tool; B in the Wiki.
  policy_.onSegmentObserved("itool/A#p0", "itool");
  policy_.onSegmentObserved("wiki/B#p0", "wiki");

  // Step 1: B is edited to disclose A — A's explicit {ti} becomes implicit
  // on B. B's label is now {tw, (ti)}.
  policy_.propagateDisclosure("itool/A#p0", "wiki/B#p0");
  const Label* b = policy_.labelOf("wiki/B#p0");
  EXPECT_TRUE(b->implicitTags().contains("ti"));

  // While similar, B cannot flow to Google Docs ({tw,ti} ⊄ {tw}).
  EXPECT_FALSE(policy_.checkUpload("wiki/B#p0", "gdocs").allowed);

  // Step 3: text copied from B to segment C in Google Docs AFTER A lost
  // all resemblance — the tracker then reports only B as a source, and
  // only B's EXPLICIT tags propagate. C gets {tw} implicit, not ti.
  policy_.onSegmentObserved("gdocs/C#p0", "gdocs");
  policy_.propagateDisclosure("wiki/B#p0", "gdocs/C#p0");
  const Label* c = policy_.labelOf("gdocs/C#p0");
  EXPECT_TRUE(c->implicitTags().contains("tw"));
  EXPECT_FALSE(c->implicitTags().contains("ti"))
      << "outdated taint must not propagate transitively";
  // C with {tw} may flow to Google Docs, whose Lp is {tw}.
  EXPECT_TRUE(policy_.checkUpload("gdocs/C#p0", "gdocs").allowed);
}

TEST_F(PolicyTest, UnknownServiceTreatedAsUntrusted) {
  policy_.onSegmentObserved("itool/doc#p0", "itool");
  // Uploading tagged data to a service nobody registered: Lp = {} — denied.
  EXPECT_FALSE(policy_.checkUpload("itool/doc#p0", "evil.example").allowed);
  // Text created in an unknown service carries no tags.
  const Label& l = policy_.onSegmentObserved("unknown/x#p0", "unknown.example");
  EXPECT_TRUE(l.effectiveTags().empty());
}

TEST_F(PolicyTest, NeverObservedSegmentIsPublic) {
  EXPECT_TRUE(policy_.checkUpload("ghost#p0", "gdocs").allowed);
}

TEST_F(PolicyTest, FirstObservationWins) {
  // A segment observed first in the Interview Tool keeps {ti} even when
  // later seen in the Wiki; only presence is added.
  policy_.onSegmentObserved("seg#p0", "itool");
  policy_.onSegmentObserved("seg#p0", "wiki");
  const Label* l = policy_.labelOf("seg#p0");
  EXPECT_TRUE(l->explicitTags().contains("ti"));
  EXPECT_FALSE(l->explicitTags().contains("tw"));
  const auto where = policy_.servicesStoring("seg#p0");
  EXPECT_EQ(where.size(), 2u);
}

TEST_F(PolicyTest, ForgetSegment) {
  policy_.onSegmentObserved("seg#p0", "itool");
  policy_.forgetSegment("seg#p0");
  EXPECT_EQ(policy_.labelOf("seg#p0"), nullptr);
  EXPECT_TRUE(policy_.servicesStoring("seg#p0").empty());
}

TEST_F(PolicyTest, AuditQueriesByUserAndKind) {
  policy_.onSegmentObserved("itool/a#p0", "itool");
  ASSERT_TRUE(policy_.suppressTag("alice", "itool/a#p0", "ti", "j1").ok());
  ASSERT_TRUE(policy_.allocateCustomTag("bob", "tn").ok());
  EXPECT_EQ(policy_.audit().byUser("alice").size(), 1u);
  EXPECT_EQ(policy_.audit().byUser("bob").size(), 1u);
  EXPECT_EQ(
      policy_.audit().byKind(AuditRecord::Kind::kCustomTagAllocated).size(),
      1u);
  EXPECT_EQ(policy_.audit().size(), 2u);
}

TEST_F(PolicyTest, PropagateFromUnlabelledSourceIsNoop) {
  policy_.onSegmentObserved("gdocs/C#p0", "gdocs");
  policy_.propagateDisclosure("never-seen", "gdocs/C#p0");
  EXPECT_TRUE(policy_.labelOf("gdocs/C#p0")->implicitTags().empty());
}

}  // namespace
}  // namespace bf::tdm
