// Tests for implicit-tag refresh semantics and their interaction with
// suppression — the label lifecycle under editing (paper S3.2 / Fig. 6).
#include <gtest/gtest.h>

#include "tdm/policy.h"
#include "util/clock.h"

namespace bf::tdm {
namespace {

class RefreshTest : public ::testing::Test {
 protected:
  RefreshTest() : policy_(&clock_) {
    policy_.services().upsert({"itool", "Interview Tool", TagSet{"ti"},
                               TagSet{"ti"}});
    policy_.services().upsert({"hr", "HR", TagSet{"hr"}, TagSet{"hr"}});
    policy_.services().upsert({"gdocs", "Google Docs", TagSet{}, TagSet{}});
    policy_.onSegmentObserved("itool/a#p0", "itool");
    policy_.onSegmentObserved("hr/b#p0", "hr");
    policy_.onSegmentObserved("gdocs/c#p0", "gdocs");
  }

  util::LogicalClock clock_;
  TdmPolicy policy_;
};

TEST_F(RefreshTest, RefreshSetsImplicitToCurrentSources) {
  policy_.refreshImplicitTags("gdocs/c#p0", {"itool/a#p0", "hr/b#p0"});
  const Label* l = policy_.labelOf("gdocs/c#p0");
  EXPECT_TRUE(l->implicitTags().contains("ti"));
  EXPECT_TRUE(l->implicitTags().contains("hr"));
}

TEST_F(RefreshTest, RefreshDropsStaleImplicitTags) {
  policy_.refreshImplicitTags("gdocs/c#p0", {"itool/a#p0"});
  ASSERT_TRUE(policy_.labelOf("gdocs/c#p0")->implicitTags().contains("ti"));
  // The edit removed all resemblance to the Interview Tool text but now
  // matches HR content.
  policy_.refreshImplicitTags("gdocs/c#p0", {"hr/b#p0"});
  const Label* l = policy_.labelOf("gdocs/c#p0");
  EXPECT_FALSE(l->implicitTags().contains("ti"));
  EXPECT_TRUE(l->implicitTags().contains("hr"));
}

TEST_F(RefreshTest, RefreshToNothingClearsAllImplicit) {
  policy_.refreshImplicitTags("gdocs/c#p0", {"itool/a#p0", "hr/b#p0"});
  policy_.refreshImplicitTags("gdocs/c#p0", {});
  EXPECT_TRUE(policy_.labelOf("gdocs/c#p0")->implicitTags().empty());
  EXPECT_TRUE(policy_.checkUpload("gdocs/c#p0", "gdocs").allowed);
}

TEST_F(RefreshTest, RefreshKeepsExplicitTags) {
  // hr/b's explicit {hr} must survive any number of refreshes.
  policy_.refreshImplicitTags("hr/b#p0", {"itool/a#p0"});
  policy_.refreshImplicitTags("hr/b#p0", {});
  const Label* l = policy_.labelOf("hr/b#p0");
  EXPECT_TRUE(l->explicitTags().contains("hr"));
}

TEST_F(RefreshTest, SuppressionSurvivesRefresh) {
  // The user declassified ti on this copy; later edits that still disclose
  // the same source must not resurrect the restriction.
  policy_.refreshImplicitTags("gdocs/c#p0", {"itool/a#p0"});
  ASSERT_FALSE(policy_.checkUpload("gdocs/c#p0", "gdocs").allowed);
  ASSERT_TRUE(policy_.suppressTag("alice", "gdocs/c#p0", "ti", "ok").ok());
  ASSERT_TRUE(policy_.checkUpload("gdocs/c#p0", "gdocs").allowed);

  policy_.refreshImplicitTags("gdocs/c#p0", {"itool/a#p0"});  // re-detected
  EXPECT_TRUE(policy_.checkUpload("gdocs/c#p0", "gdocs").allowed)
      << "suppression must persist across implicit refreshes";
}

TEST_F(RefreshTest, RefreshOnUnknownDestCreatesLabel) {
  policy_.refreshImplicitTags("brand-new#p0", {"itool/a#p0"});
  const Label* l = policy_.labelOf("brand-new#p0");
  ASSERT_NE(l, nullptr);
  EXPECT_TRUE(l->implicitTags().contains("ti"));
}

TEST_F(RefreshTest, UnknownSourcesContributeNothing) {
  policy_.refreshImplicitTags("gdocs/c#p0", {"ghost#p0"});
  EXPECT_TRUE(policy_.labelOf("gdocs/c#p0")->implicitTags().empty());
}

TEST_F(RefreshTest, ImplicitTagsDoNotChainAcrossRefreshes) {
  // c discloses b (which itself carries implicit ti): only b's EXPLICIT
  // {hr} reaches c.
  policy_.refreshImplicitTags("hr/b#p0", {"itool/a#p0"});
  ASSERT_TRUE(policy_.labelOf("hr/b#p0")->implicitTags().contains("ti"));
  policy_.refreshImplicitTags("gdocs/c#p0", {"hr/b#p0"});
  const Label* c = policy_.labelOf("gdocs/c#p0");
  EXPECT_TRUE(c->implicitTags().contains("hr"));
  EXPECT_FALSE(c->implicitTags().contains("ti"));
}

}  // namespace
}  // namespace bf::tdm
