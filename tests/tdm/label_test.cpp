// Tests for Label — explicit/implicit/suppressed tag partitions (S3.1-3.2).
#include <gtest/gtest.h>

#include "tdm/label.h"

namespace bf::tdm {
namespace {

TEST(Label, FromExplicit) {
  const Label l = Label::fromExplicit({"ti"});
  EXPECT_TRUE(l.explicitTags().contains("ti"));
  EXPECT_TRUE(l.implicitTags().empty());
  EXPECT_TRUE(l.effectiveTags().contains("ti"));
}

TEST(Label, EffectiveIsUnionOfExplicitAndImplicit) {
  Label l = Label::fromExplicit({"a"});
  l.addImplicit("b");
  const TagSet eff = l.effectiveTags();
  EXPECT_TRUE(eff.contains("a"));
  EXPECT_TRUE(eff.contains("b"));
}

TEST(Label, SuppressedTagIgnoredInFlowCheck) {
  // "A suppressed tag is ignored when doing a subset comparison between
  //  labels, thereby allowing the data to propagate."
  Label l = Label::fromExplicit({"ti"});
  EXPECT_FALSE(l.flowsTo(TagSet{"tw"}));
  l.suppress("ti");
  EXPECT_TRUE(l.flowsTo(TagSet{"tw"}));
  // ...but remains attached for auditability.
  EXPECT_TRUE(l.explicitTags().contains("ti"));
  EXPECT_TRUE(l.suppressedTags().contains("ti"));
}

TEST(Label, UnsuppressRestoresRestriction) {
  Label l = Label::fromExplicit({"ti"});
  l.suppress("ti");
  l.unsuppress("ti");
  EXPECT_FALSE(l.flowsTo(TagSet{}));
}

TEST(Label, OnlyExplicitTagsPropagate) {
  // Implicit tags mark non-authoritative provenance and do not propagate
  // onward (the Fig. 6 fix).
  Label l = Label::fromExplicit({"tw"});
  l.addImplicit("ti");
  const TagSet& prop = l.propagatableTags();
  EXPECT_TRUE(prop.contains("tw"));
  EXPECT_FALSE(prop.contains("ti"));
}

TEST(Label, ExplicitWinsOverImplicit) {
  Label l = Label::fromExplicit({"t"});
  l.addImplicit("t");  // no-op: already explicit
  EXPECT_TRUE(l.explicitTags().contains("t"));
  EXPECT_FALSE(l.implicitTags().contains("t"));
  // Still propagates (it is explicit).
  EXPECT_TRUE(l.propagatableTags().contains("t"));
}

TEST(Label, SuppressedExplicitStillPropagates) {
  // Suppression is per-copy, not a permanent downgrade: future copies of
  // the source still carry the tag.
  Label l = Label::fromExplicit({"ti"});
  l.suppress("ti");
  EXPECT_TRUE(l.propagatableTags().contains("ti"));
}

TEST(Label, FlowToEmptyPrivilege) {
  Label clean;
  EXPECT_TRUE(clean.flowsTo(TagSet{}));
  Label tagged = Label::fromExplicit({"x"});
  EXPECT_FALSE(tagged.flowsTo(TagSet{}));
}

TEST(Label, AddImplicitAll) {
  Label l;
  l.addImplicitAll(TagSet{"a", "b"});
  EXPECT_EQ(l.implicitTags().size(), 2u);
}

TEST(Label, ToStringShowsPartitions) {
  Label l = Label::fromExplicit({"a"});
  l.addImplicit("b");
  l.suppress("a");
  const std::string s = l.toString();
  EXPECT_NE(s.find("explicit{a}"), std::string::npos);
  EXPECT_NE(s.find("implicit{b}"), std::string::npos);
  EXPECT_NE(s.find("suppressed{a}"), std::string::npos);
}

}  // namespace
}  // namespace bf::tdm
