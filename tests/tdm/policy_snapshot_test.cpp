// Tests for TDM policy snapshot persistence.
#include <gtest/gtest.h>

#include "tdm/policy_snapshot.h"
#include "util/clock.h"

namespace bf::tdm {
namespace {

class PolicySnapshotTest : public ::testing::Test {
 protected:
  PolicySnapshotTest() : policy_(&clock_) {}

  /// Builds a policy exercising every serialized feature.
  void populate() {
    policy_.services().upsert({"itool", "Interview Tool", TagSet{"ti"},
                               TagSet{"ti"}});
    policy_.services().upsert({"wiki", "Internal Wiki", TagSet{"tw", "ti"},
                               TagSet{"tw"}});
    policy_.onSegmentObserved("itool/a#p0", "itool");
    policy_.onSegmentObserved("wiki/b#p0", "wiki");
    policy_.onSegmentObserved("wiki/b#p0", "itool");  // stored in two places
    policy_.refreshImplicitTags("wiki/b#p0", {"itool/a#p0"});
    ASSERT_TRUE(
        policy_.suppressTag("alice", "wiki/b#p0", "ti", "cleared").ok());
    ASSERT_TRUE(policy_.allocateCustomTag("bob", "tn").ok());
    ASSERT_TRUE(policy_.addCustomTagToSegment("bob", "wiki/b#p0", "tn").ok());
  }

  util::LogicalClock clock_;
  TdmPolicy policy_;
};

TEST_F(PolicySnapshotTest, RoundTripPreservesEverything) {
  populate();
  const std::string blob = exportPolicy(policy_);

  util::LogicalClock clock2;
  TdmPolicy restored(&clock2);
  const auto st = importPolicy(restored, blob);
  ASSERT_TRUE(st.ok()) << st.errorMessage();

  // Services.
  const ServiceInfo* wiki = restored.services().find("wiki");
  ASSERT_NE(wiki, nullptr);
  EXPECT_EQ(wiki->displayName, "Internal Wiki");
  EXPECT_TRUE(wiki->privilege.contains("ti"));
  EXPECT_TRUE(wiki->privilege.contains("tn")) << "auto-granted tag restored";

  // Labels with all three partitions.
  const Label* b = restored.labelOf("wiki/b#p0");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->explicitTags().contains("tw"));
  EXPECT_TRUE(b->explicitTags().contains("tn"));
  EXPECT_TRUE(b->implicitTags().contains("ti"));
  EXPECT_TRUE(b->suppressedTags().contains("ti"));

  // The restored label behaves identically in flow checks.
  EXPECT_EQ(restored.checkUpload("wiki/b#p0", "wiki").allowed,
            policy_.checkUpload("wiki/b#p0", "wiki").allowed);
  EXPECT_EQ(restored.checkUpload("itool/a#p0", "wiki").allowed,
            policy_.checkUpload("itool/a#p0", "wiki").allowed);

  // Presence.
  EXPECT_EQ(restored.servicesStoring("wiki/b#p0").size(), 2u);

  // Custom-tag ownership.
  EXPECT_EQ(restored.customTagOwner("tn"), "bob");

  // Audit log.
  EXPECT_EQ(restored.audit().size(), policy_.audit().size());
  EXPECT_EQ(restored.audit().byUser("alice").size(), 1u);
}

TEST_F(PolicySnapshotTest, ExportIsDeterministic) {
  populate();
  EXPECT_EQ(exportPolicy(policy_), exportPolicy(policy_));
}

TEST_F(PolicySnapshotTest, ImportRequiresEmptyPolicy) {
  populate();
  const std::string blob = exportPolicy(policy_);
  EXPECT_FALSE(importPolicy(policy_, blob).ok());
}

TEST_F(PolicySnapshotTest, ImportRejectsGarbageAndTruncation) {
  util::LogicalClock clock2;
  TdmPolicy restored(&clock2);
  EXPECT_FALSE(importPolicy(restored, "junk").ok());
  populate();
  std::string blob = exportPolicy(policy_);
  blob.resize(blob.size() - 5);
  util::LogicalClock clock3;
  TdmPolicy restored2(&clock3);
  EXPECT_FALSE(importPolicy(restored2, blob).ok());
}

TEST_F(PolicySnapshotTest, EmptyPolicyRoundTrips) {
  const std::string blob = exportPolicy(policy_);
  util::LogicalClock clock2;
  TdmPolicy restored(&clock2);
  EXPECT_TRUE(importPolicy(restored, blob).ok());
  EXPECT_EQ(restored.audit().size(), 0u);
}

}  // namespace
}  // namespace bf::tdm
