// Tests for TagSet — the label lattice primitive of the TDM.
#include <gtest/gtest.h>

#include "tdm/tag_set.h"

namespace bf::tdm {
namespace {

TEST(TagSet, EmptyIsSubsetOfEverything) {
  TagSet empty;
  EXPECT_TRUE(empty.isSubsetOf(TagSet{}));
  EXPECT_TRUE(empty.isSubsetOf(TagSet{"a", "b"}));
}

TEST(TagSet, SubsetSemantics) {
  TagSet small{"a"};
  TagSet big{"a", "b"};
  EXPECT_TRUE(small.isSubsetOf(big));
  EXPECT_FALSE(big.isSubsetOf(small));
  EXPECT_TRUE(big.isSubsetOf(big));  // reflexive
}

TEST(TagSet, PaperFlowExample) {
  // Fig. 3: {ti} ⊄ {tw} — Interview Tool data may not reach the Wiki.
  TagSet li{"ti"};
  TagSet lp{"tw"};
  EXPECT_FALSE(li.isSubsetOf(lp));
  // And {} ⊆ {tw} — Google Docs (public) data may.
  EXPECT_TRUE(TagSet{}.isSubsetOf(lp));
}

TEST(TagSet, InsertEraseContains) {
  TagSet s;
  s.insert("x");
  EXPECT_TRUE(s.contains("x"));
  EXPECT_EQ(s.size(), 1u);
  s.insert("x");  // idempotent
  EXPECT_EQ(s.size(), 1u);
  s.erase("x");
  EXPECT_FALSE(s.contains("x"));
  EXPECT_TRUE(s.empty());
}

TEST(TagSet, UnionWith) {
  TagSet a{"x", "y"};
  TagSet b{"y", "z"};
  const TagSet u = a.unionWith(b);
  EXPECT_EQ(u.size(), 3u);
  EXPECT_TRUE(a.isSubsetOf(u));
  EXPECT_TRUE(b.isSubsetOf(u));
}

TEST(TagSet, Minus) {
  TagSet a{"x", "y", "z"};
  const TagSet d = a.minus(TagSet{"y"});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_FALSE(d.contains("y"));
}

TEST(TagSet, MissingFrom) {
  TagSet li{"a", "b", "c"};
  const auto missing = li.missingFrom(TagSet{"b"});
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0], "a");
  EXPECT_EQ(missing[1], "c");
}

TEST(TagSet, SubsetLatticeProperties) {
  // Transitivity over a small sweep of generated sets.
  const TagSet a{"1"};
  const TagSet b{"1", "2"};
  const TagSet c{"1", "2", "3"};
  EXPECT_TRUE(a.isSubsetOf(b));
  EXPECT_TRUE(b.isSubsetOf(c));
  EXPECT_TRUE(a.isSubsetOf(c));
  // Union is an upper bound.
  EXPECT_TRUE(a.isSubsetOf(a.unionWith(c)));
}

TEST(TagSet, ToString) {
  EXPECT_EQ(TagSet{}.toString(), "{}");
  EXPECT_EQ((TagSet{"b", "a"}).toString(), "{a, b}");  // sorted
}

// Randomised lattice-law sweep over generated tag sets.
class TagSetLattice : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static TagSet randomSet(std::uint64_t seed, int salt) {
    TagSet s;
    std::uint64_t x = seed * 1315423911u + static_cast<std::uint64_t>(salt);
    const int n = static_cast<int>(x % 6);
    for (int i = 0; i < n; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      s.insert("t" + std::to_string(x % 8));
    }
    return s;
  }
};

TEST_P(TagSetLattice, UnionAndDifferenceLaws) {
  const std::uint64_t seed = GetParam();
  const TagSet a = randomSet(seed, 1);
  const TagSet b = randomSet(seed, 2);
  const TagSet c = randomSet(seed, 3);

  // Union: commutative, idempotent, upper bound.
  EXPECT_EQ(a.unionWith(b), b.unionWith(a));
  EXPECT_EQ(a.unionWith(a), a);
  EXPECT_TRUE(a.isSubsetOf(a.unionWith(b)));
  // Associativity.
  EXPECT_EQ(a.unionWith(b).unionWith(c), a.unionWith(b.unionWith(c)));
  // Difference: (a − b) ⊆ a and disjoint from b.
  const TagSet d = a.minus(b);
  EXPECT_TRUE(d.isSubsetOf(a));
  for (const Tag& t : d) EXPECT_FALSE(b.contains(t));
  // (a − b) ∪ (a ∩ b-ish): a − b plus b covers a.
  EXPECT_TRUE(a.isSubsetOf(d.unionWith(b)));
  // Subset antisymmetry.
  if (a.isSubsetOf(b) && b.isSubsetOf(a)) EXPECT_EQ(a, b);
  // missingFrom agrees with minus.
  const auto missing = a.missingFrom(b);
  EXPECT_EQ(missing.size(), a.minus(b).size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TagSetLattice,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace bf::tdm
