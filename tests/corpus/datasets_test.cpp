// Tests for the dataset builders (paper Table 1).
#include <gtest/gtest.h>

#include "corpus/datasets.h"

namespace bf::corpus {
namespace {

TEST(WikipediaDataset, QuickScaleShape) {
  const auto ds = buildWikipedia(WikipediaConfig::quickScale());
  EXPECT_EQ(ds.articles.size(), 12u);
  for (const auto& a : ds.articles) {
    ASSERT_FALSE(a.checkpoints.empty());
    EXPECT_EQ(a.checkpointRevision.front(), 0u);
    EXPECT_EQ(a.checkpointRevision.back(), 200u);
    EXPECT_EQ(a.checkpoints.size(), a.checkpointRevision.size());
    // Checkpoint revisions strictly increase.
    for (std::size_t i = 1; i < a.checkpointRevision.size(); ++i) {
      EXPECT_GT(a.checkpointRevision[i], a.checkpointRevision[i - 1]);
    }
  }
}

TEST(WikipediaDataset, DeterministicForSeed) {
  auto cfg = WikipediaConfig::quickScale();
  cfg.articles = 2;
  const auto a = buildWikipedia(cfg);
  const auto b = buildWikipedia(cfg);
  ASSERT_EQ(a.articles.size(), b.articles.size());
  EXPECT_EQ(a.articles[0].checkpoints.back().render(),
            b.articles[0].checkpoints.back().render());
}

TEST(WikipediaDataset, MixesStableAndVolatileArticles) {
  const auto ds = buildWikipedia(WikipediaConfig::quickScale());
  std::size_t volatileCount = 0;
  for (const auto& a : ds.articles) {
    if (a.isVolatile) ++volatileCount;
  }
  EXPECT_GT(volatileCount, 0u);
  EXPECT_LT(volatileCount, ds.articles.size());
}

TEST(WikipediaDataset, VolatileArticlesChangeMoreInLength) {
  auto cfg = WikipediaConfig::quickScale();
  cfg.articles = 20;
  const auto ds = buildWikipedia(cfg);
  double stableDelta = 0, volatileDelta = 0;
  std::size_t stableN = 0, volatileN = 0;
  for (const auto& a : ds.articles) {
    const double base = static_cast<double>(a.checkpoints.front().renderedSize());
    const double last = static_cast<double>(a.checkpoints.back().renderedSize());
    const double delta = std::abs(last - base) / base;
    if (a.isVolatile) {
      volatileDelta += delta;
      ++volatileN;
    } else {
      stableDelta += delta;
      ++stableN;
    }
  }
  ASSERT_GT(stableN, 0u);
  ASSERT_GT(volatileN, 0u);
  EXPECT_GT(volatileDelta / static_cast<double>(volatileN),
            stableDelta / static_cast<double>(stableN));
}

TEST(ManualsDataset, FourChaptersFourVersions) {
  const auto ds = buildManuals();
  ASSERT_EQ(ds.chapters.size(), 4u);
  for (const auto& ch : ds.chapters) {
    EXPECT_EQ(ch.versions.size(), 4u);
    EXPECT_EQ(ch.versionNames.size(), 4u);
  }
  EXPECT_EQ(ds.chapters[0].name, "IPhone Camera");
  EXPECT_EQ(ds.chapters[3].name, "MySQL What's MySQL");
}

TEST(ManualsDataset, StableChapterKeepsContent) {
  const auto ds = buildManuals();
  const auto& whats = ds.chapters[3];  // "What's MySQL"
  double total = 0;
  std::size_t n = 0;
  for (const auto& p : whats.versions.front().paragraphs) {
    total += conceptSurvival(p, whats.versions.back());
    ++n;
  }
  EXPECT_GT(total / static_cast<double>(n), 0.9);
}

TEST(ManualsDataset, VolatileChapterLosesContent) {
  const auto ds = buildManuals();
  const auto& message = ds.chapters[1];  // "IPhone Message"
  double total = 0;
  std::size_t n = 0;
  for (const auto& p : message.versions.front().paragraphs) {
    total += conceptSurvival(p, message.versions.back());
    ++n;
  }
  EXPECT_LT(total / static_cast<double>(n), 0.35);
}

TEST(ManualsDataset, NewFeaturesDropsAfterSecondVersion) {
  const auto ds = buildManuals();
  const auto& nf = ds.chapters[2];  // "MySQL New Features"
  auto meanSurvival = [&](const VersionedDoc& v) {
    double total = 0;
    for (const auto& p : nf.versions.front().paragraphs) {
      total += conceptSurvival(p, v);
    }
    return total / static_cast<double>(nf.versions.front().paragraphs.size());
  };
  EXPECT_GT(meanSurvival(nf.versions[1]), 0.9);   // 4.0 -> 4.1 stable
  EXPECT_LT(meanSurvival(nf.versions[3]), 0.75);  // then reduced
}

TEST(NewsDataset, TwoArticles) {
  const auto ds = buildNews();
  ASSERT_EQ(ds.articles.size(), 2u);
  EXPECT_EQ(ds.articles[0].paragraphs.size(), 27u);
}

TEST(EbooksDataset, QuickScaleShape) {
  const auto ds = buildEbooks(EbooksConfig::quickScale());
  EXPECT_EQ(ds.books.size(), 12u);
  EXPECT_GT(ds.totalBytes, 100'000u);
  for (const auto& b : ds.books) {
    EXPECT_GE(b.paragraphs.size(), 120u);
    EXPECT_LE(b.paragraphs.size(), 260u);
  }
}

TEST(DatasetStats, Table1Columns) {
  const auto wiki = statsOf(buildWikipedia(WikipediaConfig::quickScale()));
  EXPECT_EQ(wiki.name, "Wikipedia Articles");
  EXPECT_EQ(wiki.documents, 12u);
  EXPECT_EQ(wiki.versions, 200u);
  EXPECT_GT(wiki.avgParagraphs, 0.0);
  EXPECT_GT(wiki.avgSizeKb, 0.0);

  const auto manuals = statsOf(buildManuals());
  ASSERT_EQ(manuals.size(), 4u);
  // Table 1: IPhone Camera has more paragraphs than What's MySQL.
  EXPECT_GT(manuals[0].avgParagraphs, manuals[3].avgParagraphs);

  const auto news = statsOf(buildNews());
  EXPECT_EQ(news.documents, 2u);
  EXPECT_NEAR(news.avgParagraphs, 27.0, 0.1);

  const auto books = statsOf(buildEbooks(EbooksConfig::quickScale()));
  EXPECT_EQ(books.documents, 12u);
  EXPECT_GT(books.avgSizeKb, 30.0);
}

}  // namespace
}  // namespace bf::corpus
