// Tests for the synthetic text generator.
#include <gtest/gtest.h>

#include <unordered_map>

#include "corpus/text_generator.h"
#include "util/strings.h"

namespace bf::corpus {
namespace {

TEST(TextGenerator, DeterministicForSeed) {
  util::Rng r1(5), r2(5);
  TextGenerator g1(&r1), g2(&r2);
  EXPECT_EQ(g1.document(5), g2.document(5));
}

TEST(TextGenerator, DifferentSeedsDiffer) {
  util::Rng r1(5), r2(6);
  TextGenerator g1(&r1), g2(&r2);
  EXPECT_NE(g1.document(5), g2.document(5));
}

TEST(TextGenerator, SentenceShape) {
  util::Rng rng(7);
  TextGenerator gen(&rng);
  for (int i = 0; i < 50; ++i) {
    const std::string s = gen.sentence(8, 18);
    ASSERT_FALSE(s.empty());
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(s.front()))) << s;
    EXPECT_EQ(s.back(), '.') << s;
    const auto words = util::splitWords(s);
    EXPECT_GE(words.size(), 8u);
    EXPECT_LE(words.size(), 18u);
  }
}

TEST(TextGenerator, ParagraphSentenceCount) {
  util::Rng rng(8);
  TextGenerator gen(&rng);
  const std::string p = gen.paragraph(3, 7);
  std::size_t stops = 0;
  for (char c : p) {
    if (c == '.') ++stops;
  }
  EXPECT_GE(stops, 3u);
  EXPECT_LE(stops, 7u);
}

TEST(TextGenerator, DocumentHasRequestedParagraphs) {
  util::Rng rng(9);
  TextGenerator gen(&rng);
  const std::string doc = sec::declassifyForTest(gen.document(6));
  EXPECT_EQ(util::splitParagraphs(doc).size(), 6u);
}

TEST(TextGenerator, WordFrequencyIsSkewed) {
  // Zipf sampling: the most common word appears far more often than the
  // median word, as in natural language.
  util::Rng rng(10);
  TextGenerator gen(&rng);
  std::unordered_map<std::string, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[gen.word()];
  int maxCount = 0;
  for (const auto& [w, c] : counts) maxCount = std::max(maxCount, c);
  EXPECT_GT(maxCount, 400);                 // head is heavy
  EXPECT_GT(counts.size(), 200u);           // but the tail is long
}

TEST(TextGenerator, VocabularyWordsLookLikeWords) {
  util::Rng rng(11);
  TextGenerator gen(&rng, 100);
  for (int i = 0; i < 100; ++i) {
    const std::string w = gen.word();
    EXPECT_GE(w.size(), 2u);
    for (char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << w;
    }
  }
}

}  // namespace
}  // namespace bf::corpus
