// Tests for the revision model and its ground-truth lineage.
#include <gtest/gtest.h>

#include <unordered_set>

#include "corpus/revision_model.h"

namespace bf::corpus {
namespace {

class RevisionTest : public ::testing::Test {
 protected:
  RevisionTest() : rng_(99), gen_(&rng_), model_(&gen_, &rng_) {}

  util::Rng rng_;
  TextGenerator gen_;
  RevisionModel model_;
};

TEST_F(RevisionTest, CreateDocumentShape) {
  const VersionedDoc doc = model_.createDocument("d", 10);
  EXPECT_EQ(doc.id, "d");
  EXPECT_EQ(doc.paragraphs.size(), 10u);
  for (const auto& p : doc.paragraphs) {
    EXPECT_GE(p.sentences.size(), 3u);
    EXPECT_LE(p.sentences.size(), 7u);
  }
}

TEST_F(RevisionTest, ConceptIdsAreUnique) {
  const VersionedDoc doc = model_.createDocument("d", 20);
  std::unordered_set<std::uint64_t> ids;
  for (const auto& p : doc.paragraphs) {
    for (const auto& s : p.sentences) {
      EXPECT_TRUE(ids.insert(s.conceptId).second) << "duplicate concept";
    }
  }
}

TEST_F(RevisionTest, RenderUsesBlankLineSeparators) {
  const VersionedDoc doc = model_.createDocument("d", 3);
  const std::string text = sec::declassifyForTest(doc.render());
  EXPECT_NE(text.find("\n\n"), std::string::npos);
  EXPECT_EQ(doc.renderedSize(), text.size());
}

TEST_F(RevisionTest, UnchangedDocumentFullSurvival) {
  const VersionedDoc doc = model_.createDocument("d", 5);
  for (const auto& p : doc.paragraphs) {
    EXPECT_DOUBLE_EQ(conceptSurvival(p, doc), 1.0);
    EXPECT_TRUE(groundTruthDiscloses(p, doc));
  }
}

TEST_F(RevisionTest, StableProfileKeepsConcepts) {
  VersionedDoc doc = model_.createDocument("d", 10);
  const VersionedDoc base = doc;
  model_.evolve(doc, stableProfile(), 100);
  double total = 0;
  for (const auto& p : base.paragraphs) total += conceptSurvival(p, doc);
  EXPECT_GT(total / static_cast<double>(base.paragraphs.size()), 0.85);
}

TEST_F(RevisionTest, VolatileProfileErodesConcepts) {
  VersionedDoc doc = model_.createDocument("d", 10);
  const VersionedDoc base = doc;
  model_.evolve(doc, volatileProfile(), 600);
  double total = 0;
  for (const auto& p : base.paragraphs) total += conceptSurvival(p, doc);
  EXPECT_LT(total / static_cast<double>(base.paragraphs.size()), 0.5);
}

TEST_F(RevisionTest, RephraseKeepsConceptButChangesText) {
  VersionedDoc doc = model_.createDocument("d", 4);
  const VersionedDoc base = doc;
  VolatilityProfile rephraseOnly;
  rephraseOnly.minorEditProb = 0;
  rephraseOnly.rephraseProb = 1.0;  // every sentence rewritten each step
  model_.evolve(doc, rephraseOnly);
  // Ground truth: all concepts survive.
  for (const auto& p : base.paragraphs) {
    EXPECT_DOUBLE_EQ(conceptSurvival(p, doc), 1.0);
  }
  // But the text is different — this is the paper's rephrase FN class.
  EXPECT_NE(base.render(), doc.render());
}

TEST_F(RevisionTest, MoveParagraphPreservesConcepts) {
  VersionedDoc doc = model_.createDocument("d", 6);
  const VersionedDoc base = doc;
  VolatilityProfile moveOnly;
  moveOnly.minorEditProb = 0;
  moveOnly.moveParagraphProb = 1.0;
  model_.evolve(doc, moveOnly, 10);
  for (const auto& p : base.paragraphs) {
    EXPECT_DOUBLE_EQ(conceptSurvival(p, doc), 1.0);
  }
}

TEST_F(RevisionTest, AppendGrowsDeleteShrinks) {
  VersionedDoc doc = model_.createDocument("d", 6);
  VolatilityProfile growOnly;
  growOnly.minorEditProb = 0;
  growOnly.appendParagraphProb = 1.0;
  model_.evolve(doc, growOnly, 5);
  EXPECT_EQ(doc.paragraphs.size(), 11u);

  VolatilityProfile shrinkOnly;
  shrinkOnly.minorEditProb = 0;
  shrinkOnly.deleteParagraphProb = 1.0;
  model_.evolve(doc, shrinkOnly, 5);
  EXPECT_EQ(doc.paragraphs.size(), 6u);
}

TEST_F(RevisionTest, DeleteNeverEmptiesDocument) {
  VersionedDoc doc = model_.createDocument("d", 3);
  VolatilityProfile nuke;
  nuke.minorEditProb = 0;
  nuke.deleteParagraphProb = 1.0;
  nuke.deleteSentenceProb = 1.0;
  model_.evolve(doc, nuke, 50);
  EXPECT_GE(doc.paragraphs.size(), 2u);  // floor of 2 paragraphs
  for (const auto& p : doc.paragraphs) {
    EXPECT_GE(p.sentences.size(), 1u);  // floor of 1 sentence
  }
}

TEST_F(RevisionTest, GroundTruthThresholdSemantics) {
  Paragraph p;
  p.sentences = {{1, "a"}, {2, "b"}, {3, "c"}, {4, "d"}};
  VersionedDoc doc;
  doc.paragraphs.push_back(Paragraph{{{1, "a"}, {2, "b"}}});
  EXPECT_DOUBLE_EQ(conceptSurvival(p, doc), 0.5);
  EXPECT_TRUE(groundTruthDiscloses(p, doc, 0.5));
  EXPECT_FALSE(groundTruthDiscloses(p, doc, 0.75));
}

TEST_F(RevisionTest, EmptyBaseParagraphNeverDiscloses) {
  Paragraph empty;
  VersionedDoc doc = model_.createDocument("d", 2);
  EXPECT_FALSE(groundTruthDiscloses(empty, doc, 0.0));
}

}  // namespace
}  // namespace bf::corpus
