// Tests for the sensitivity type layer and its declassification gates
// (src/sec/sensitive.h, DESIGN.md §14).
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "cloud/dlp_appliance.h"
#include "corpus/text_generator.h"
#include "flow/tracker.h"
#include "sec/sensitive.h"
#include "util/clock.h"
#include "util/hashing.h"
#include "util/rng.h"

namespace bf::sec {
namespace {

// ---- redact() ---------------------------------------------------------------

TEST(Redact, EmptyInput) {
  EXPECT_EQ(redact("").text, "(0 chars)");
}

TEST(Redact, SingleCharRevealsNothing) {
  // 1 / 4 == 0 chars per side: only the length escapes.
  EXPECT_EQ(redact("x").text, "\xE2\x80\xA6 (1 chars)");
}

TEST(Redact, ShortStringsNeverRoundTripWhole) {
  // A 10-byte secret keeps at most 2 chars per side regardless of `keep`.
  const Redacted r = redact("hunter2pwd", /*keep=*/100);
  EXPECT_EQ(r.text, "hu\xE2\x80\xA6wd (10 chars)");
}

TEST(Redact, LongStringKeepsRequestedEdges) {
  const std::string s(100, 'a');
  const Redacted r = redact(s);  // default keep = 8
  EXPECT_EQ(r.text, std::string(8, 'a') + "\xE2\x80\xA6" +
                        std::string(8, 'a') + " (100 chars)");
}

TEST(Redact, Utf8NeverSplitAtCutPoint) {
  // "aaa€€€€€€bbb" with cut points landing inside the 3-byte '€'
  // sequences: both edges must retreat to code-point boundaries.
  const std::string s = "aaa" + std::string("\xE2\x82\xAC") +
                        "\xE2\x82\xAC\xE2\x82\xAC\xE2\x82\xAC"
                        "\xE2\x82\xAC\xE2\x82\xAC" + "bbb";
  for (std::size_t keep = 1; keep <= 12; ++keep) {
    const Redacted r = redact(s, keep);
    // Re-decoding must find no dangling continuation bytes at the seams:
    // every byte with the 10xxxxxx pattern must follow a UTF-8 lead byte.
    const std::string& t = r.text;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if ((static_cast<unsigned char>(t[i]) & 0xC0u) == 0x80u) {
        ASSERT_GT(i, 0u) << "keep=" << keep << " text=" << t;
        const unsigned char prev = static_cast<unsigned char>(t[i - 1]);
        ASSERT_TRUE(prev >= 0x80u) << "keep=" << keep << " text=" << t;
      }
    }
  }
}

TEST(Redact, NeverContainsMiddleOfContent) {
  const std::string secret =
      "the merger with initech closes on friday at nine";
  const Redacted r = redact(secret);
  EXPECT_EQ(r.text.find("initech"), std::string::npos);
  EXPECT_NE(r.text.find("(48 chars)"), std::string::npos);
}

// ---- contentHash() ------------------------------------------------------------

TEST(ContentHash, StableAcrossCallsAndEqualToFnv) {
  const SensitiveText doc("quarterly revenue figures");
  EXPECT_EQ(contentHash(doc), contentHash(doc));
  EXPECT_EQ(contentHash(doc), util::fnv1a64(doc.raw()));
  EXPECT_NE(contentHash(doc), contentHash(SensitiveText("other text")));
}

// ---- wrapper semantics ---------------------------------------------------------

TEST(SensitiveText, MoveDoesNotCopyBytes) {
  SensitiveText a(std::string(1024, 'z'));
  const char* data = a.raw().data();
  SensitiveText b(std::move(a));
  EXPECT_EQ(b.raw().data(), data);  // same buffer: moved, not copied
  EXPECT_EQ(b.size(), 1024u);
}

TEST(SensitiveText, AppendStaysSensitive) {
  SensitiveText doc("alpha");
  doc += SensitiveView(" beta");
  doc += '!';
  EXPECT_EQ(doc, SensitiveView("alpha beta!"));
}

TEST(SensitiveView, EqualityComparesContent) {
  const std::string s = "same content";
  EXPECT_EQ(SensitiveView(s), SensitiveView("same content"));
  EXPECT_NE(SensitiveView(s), SensitiveView("different"));
}

TEST(DeclassifyForTest, RoundTripsUnderTestDefine) {
  // This TU compiles with BF_SEC_ENABLE_TEST_DECLASSIFY (tests/ only);
  // tests/negative_compile/nc_declassify_release.cpp proves production
  // code cannot call this.
  const SensitiveText doc("visible to tests");
  EXPECT_EQ(declassifyForTest(doc), "visible to tests");
}

// ---- annotation lock-in ---------------------------------------------------------
// These calls pass OWNING SensitiveText values straight into the two APIs
// the issue names. SensitiveText does not convert to std::string_view, so
// removing the Sensitive annotation from either signature breaks this
// compile — the type threading cannot be silently unwound.

TEST(AnnotationLockIn, TrackerCheckTextTakesSensitive) {
  util::LogicalClock clock;
  util::Rng rng(7);
  corpus::TextGenerator gen(&rng);
  flow::FlowTracker tracker(flow::TrackerConfig{}, &clock);

  const SensitiveText doc = gen.document(2);
  tracker.observeDocument("doc-a", "svc", doc);
  const auto hits = tracker.checkText(doc, "doc-b");
  EXPECT_FALSE(hits.empty());
}

TEST(AnnotationLockIn, DlpInspectTextTakesSensitive) {
  util::Rng rng(11);
  corpus::TextGenerator gen(&rng);
  cloud::DlpAppliance::Config cfg;
  cfg.mode = cloud::DlpAppliance::Mode::kFingerprint;
  cloud::DlpAppliance dlp(nullptr, cfg);

  const SensitiveText doc = gen.document(1);
  dlp.registerSensitiveDocument(doc);
  EXPECT_TRUE(dlp.inspectText(doc));
}

}  // namespace
}  // namespace bf::sec
