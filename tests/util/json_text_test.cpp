// Tests for the JSON string-field scanner/rewriter.
#include <gtest/gtest.h>

#include "util/json_text.h"

namespace bf::util {
namespace {

TEST(JsonText, ScanFlatObject) {
  const auto fields =
      scanJsonStringFields(R"({"title": "My Note", "count": 3})");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].key, "title");
  EXPECT_EQ(fields[0].value, "My Note");
}

TEST(JsonText, ScanNestedAndArrays) {
  // Keys with object/array values are not string fields; array elements
  // have no key and are skipped; nested string fields are found.
  const auto fields = scanJsonStringFields(
      R"({"note": {"body": "inner text"}, "tags": ["a", "b"],
          "meta": {"author": "alice"}})");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0].key, "body");
  EXPECT_EQ(fields[0].value, "inner text");
  EXPECT_EQ(fields[1].key, "author");
  EXPECT_EQ(fields[1].value, "alice");
}

TEST(JsonText, ObjectValuedKeysNotReported) {
  const auto fields =
      scanJsonStringFields(R"({"outer": {"inner": "v"}})");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].key, "inner");
}

TEST(JsonText, EscapedStringsRoundTrip) {
  const auto fields = scanJsonStringFields(
      R"({"text": "line1\nline2 \"quoted\" tab\there"})");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].value, "line1\nline2 \"quoted\" tab\there");
}

TEST(JsonText, UnicodeEscapeDecoded) {
  const auto fields = scanJsonStringFields(R"({"t": "café"})");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].value, "caf\xc3\xa9");
}

TEST(JsonText, SpansPointIntoOriginal) {
  const std::string json = R"({"a": "xx", "b": "yy"})";
  const auto fields = scanJsonStringFields(json);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(json.substr(fields[0].valueBegin,
                        fields[0].valueEnd - fields[0].valueBegin),
            "\"xx\"");
  EXPECT_EQ(json.substr(fields[1].valueBegin,
                        fields[1].valueEnd - fields[1].valueBegin),
            "\"yy\"");
}

TEST(JsonText, ReplaceValuesPreservesStructure) {
  const std::string json = R"({"text": "secret", "keep": "other", "n": 1})";
  const auto fields = scanJsonStringFields(json);
  ASSERT_EQ(fields.size(), 2u);
  const std::string out =
      replaceJsonStringValues(json, fields, {{0, "SEALED"}});
  EXPECT_EQ(out, R"({"text": "SEALED", "keep": "other", "n": 1})");
}

TEST(JsonText, ReplaceEscapesNewValue) {
  const std::string json = R"({"t": "x"})";
  const auto fields = scanJsonStringFields(json);
  const std::string out =
      replaceJsonStringValues(json, fields, {{0, "a\"b\nc"}});
  EXPECT_EQ(out, R"({"t": "a\"b\nc"})");
  // And the rewritten body re-scans to the same plaintext.
  const auto again = scanJsonStringFields(out);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].value, "a\"b\nc");
}

TEST(JsonText, ReplaceMultipleOutOfOrder) {
  const std::string json = R"({"a": "1", "b": "2", "c": "3"})";
  const auto fields = scanJsonStringFields(json);
  const std::string out =
      replaceJsonStringValues(json, fields, {{2, "C"}, {0, "A"}});
  EXPECT_EQ(out, R"({"a": "A", "b": "2", "c": "C"})");
}

TEST(JsonText, MalformedInputYieldsPartialFields) {
  EXPECT_TRUE(scanJsonStringFields("").empty());
  EXPECT_TRUE(scanJsonStringFields("{").empty());
  EXPECT_TRUE(scanJsonStringFields(R"({"unterminated": ")").empty());
  const auto fields = scanJsonStringFields(R"({"good": "v", "bad": ")");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].key, "good");
}

TEST(JsonText, LooksLikeJson) {
  EXPECT_TRUE(looksLikeJson(R"({"a":1})"));
  EXPECT_TRUE(looksLikeJson("  [1,2]"));
  EXPECT_FALSE(looksLikeJson("a=1&b=2"));
  EXPECT_FALSE(looksLikeJson(""));
}

TEST(JsonText, EscapeUnescapeRoundTrip) {
  const std::string nasty = "quote\" backslash\\ nl\n tab\t ctrl\x01 end";
  EXPECT_EQ(unescapeJsonString(escapeJsonString(nasty)), nasty);
}

}  // namespace
}  // namespace bf::util
