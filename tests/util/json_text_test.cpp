// Tests for the JSON string-field scanner/rewriter.
#include <gtest/gtest.h>

#include "text/winnower.h"
#include "util/json_text.h"

namespace bf::util {
namespace {

TEST(JsonText, ScanFlatObject) {
  const auto fields =
      scanJsonStringFields(R"({"title": "My Note", "count": 3})");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].key, "title");
  EXPECT_EQ(fields[0].value, "My Note");
}

TEST(JsonText, ScanNestedAndArrays) {
  // Keys with object/array values are not string fields; array elements
  // have no key and are skipped; nested string fields are found.
  const auto fields = scanJsonStringFields(
      R"({"note": {"body": "inner text"}, "tags": ["a", "b"],
          "meta": {"author": "alice"}})");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0].key, "body");
  EXPECT_EQ(fields[0].value, "inner text");
  EXPECT_EQ(fields[1].key, "author");
  EXPECT_EQ(fields[1].value, "alice");
}

TEST(JsonText, ObjectValuedKeysNotReported) {
  const auto fields =
      scanJsonStringFields(R"({"outer": {"inner": "v"}})");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].key, "inner");
}

TEST(JsonText, EscapedStringsRoundTrip) {
  const auto fields = scanJsonStringFields(
      R"({"text": "line1\nline2 \"quoted\" tab\there"})");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].value, "line1\nline2 \"quoted\" tab\there");
}

TEST(JsonText, UnicodeEscapeDecoded) {
  const auto fields = scanJsonStringFields(R"({"t": "café"})");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].value, "caf\xc3\xa9");
}

TEST(JsonText, SpansPointIntoOriginal) {
  const std::string json = R"({"a": "xx", "b": "yy"})";
  const auto fields = scanJsonStringFields(json);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(json.substr(fields[0].valueBegin,
                        fields[0].valueEnd - fields[0].valueBegin),
            "\"xx\"");
  EXPECT_EQ(json.substr(fields[1].valueBegin,
                        fields[1].valueEnd - fields[1].valueBegin),
            "\"yy\"");
}

TEST(JsonText, ReplaceValuesPreservesStructure) {
  const std::string json = R"({"text": "secret", "keep": "other", "n": 1})";
  const auto fields = scanJsonStringFields(json);
  ASSERT_EQ(fields.size(), 2u);
  const std::string out =
      replaceJsonStringValues(json, fields, {{0, "SEALED"}});
  EXPECT_EQ(out, R"({"text": "SEALED", "keep": "other", "n": 1})");
}

TEST(JsonText, ReplaceEscapesNewValue) {
  const std::string json = R"({"t": "x"})";
  const auto fields = scanJsonStringFields(json);
  const std::string out =
      replaceJsonStringValues(json, fields, {{0, "a\"b\nc"}});
  EXPECT_EQ(out, R"({"t": "a\"b\nc"})");
  // And the rewritten body re-scans to the same plaintext.
  const auto again = scanJsonStringFields(out);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].value, "a\"b\nc");
}

TEST(JsonText, ReplaceMultipleOutOfOrder) {
  const std::string json = R"({"a": "1", "b": "2", "c": "3"})";
  const auto fields = scanJsonStringFields(json);
  const std::string out =
      replaceJsonStringValues(json, fields, {{2, "C"}, {0, "A"}});
  EXPECT_EQ(out, R"({"a": "A", "b": "2", "c": "C"})");
}

TEST(JsonText, MalformedInputYieldsPartialFields) {
  EXPECT_TRUE(scanJsonStringFields("").empty());
  EXPECT_TRUE(scanJsonStringFields("{").empty());
  EXPECT_TRUE(scanJsonStringFields(R"({"unterminated": ")").empty());
  const auto fields = scanJsonStringFields(R"({"good": "v", "bad": ")");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].key, "good");
}

TEST(JsonText, LooksLikeJson) {
  EXPECT_TRUE(looksLikeJson(R"({"a":1})"));
  EXPECT_TRUE(looksLikeJson("  [1,2]"));
  EXPECT_FALSE(looksLikeJson("a=1&b=2"));
  EXPECT_FALSE(looksLikeJson(""));
}

TEST(JsonText, EscapeUnescapeRoundTrip) {
  const std::string nasty = "quote\" backslash\\ nl\n tab\t ctrl\x01 end";
  EXPECT_EQ(unescapeJsonString(escapeJsonString(nasty)), nasty);
}

TEST(JsonText, SurrogatePairDecodesToFourByteUtf8) {
  // U+1F600 arrives as the UTF-16 pair D83D DE00 and must come out as the
  // single 4-byte UTF-8 code point, not two CESU-8 triples.
  EXPECT_EQ(unescapeJsonString(R"(😀)"), "\xF0\x9F\x98\x80");
  // First and last astral plane-1 code points via their pairs.
  EXPECT_EQ(unescapeJsonString(R"(𐀀)"), "\xF0\x90\x80\x80");
  EXPECT_EQ(unescapeJsonString(R"(􏿿)"), "\xF4\x8F\xBF\xBF");
}

TEST(JsonText, LoneSurrogateKeepsHistoricalThreeByteOutput) {
  // A high surrogate with no low surrogate after it (or a bare low
  // surrogate) has no valid decoding; the historical 3-byte output stays.
  EXPECT_EQ(unescapeJsonString(R"(\ud83d)"), "\xED\xA0\xBD");
  EXPECT_EQ(unescapeJsonString(R"(\ud83dX)"), "\xED\xA0\xBDX");
  EXPECT_EQ(unescapeJsonString(R"(\ude00)"), "\xED\xB8\x80");
  // High surrogate followed by a NON-surrogate escape: both decode alone.
  EXPECT_EQ(unescapeJsonString(R"(\ud83dA)"), "\xED\xA0\xBD" "A");
}

TEST(JsonText, MalformedUnicodeEscapeKeptLiteral) {
  EXPECT_EQ(unescapeJsonString(R"(\uZZZZ)"), "uZZZZ");
  EXPECT_EQ(unescapeJsonString(R"(\u12)"), "u12");
}

TEST(JsonText, ScanDecodesSurrogatePairsInFieldValues) {
  const auto fields =
      scanJsonStringFields(R"({"t": "ok 😀 done"})");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].value, "ok \xF0\x9F\x98\x80 done");
}

TEST(JsonText, DecodedEscapesFingerprintIdenticallyToRawText) {
  // The disclosure pipeline fingerprints upload bodies after JSON
  // unescaping. The same emoji-bearing text must produce the same
  // fingerprint whether it arrives raw or \uXXXX-escaped — CESU-8 triples
  // from naive surrogate decoding would shift every n-gram and the copy
  // would sail past the tracker unrecognised.
  const std::string raw =
      "Grinning \xF0\x9F\x98\x80 faces \xF0\x9F\x98\x80 fill the meeting "
      "notes \xF0\x9F\x98\x80 before the quarterly budget review today.";
  std::string escaped;
  for (std::size_t i = 0; i < raw.size();) {
    if (raw.compare(i, 4, "\xF0\x9F\x98\x80") == 0) {
      escaped += R"(😀)";
      i += 4;
    } else {
      escaped.push_back(raw[i]);
      ++i;
    }
  }
  const std::string decoded = unescapeJsonString(escaped);
  EXPECT_EQ(decoded, raw);

  const text::FingerprintConfig cfg;
  const auto fpRaw = text::fingerprintText(raw, cfg);
  const auto fpDecoded = text::fingerprintText(decoded, cfg);
  ASSERT_FALSE(fpRaw.empty());
  EXPECT_TRUE(fpDecoded.sameHashes(fpRaw));
}

}  // namespace
}  // namespace bf::util
