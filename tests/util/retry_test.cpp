// Tests for the retry primitives: deterministic backoff sequences, delay
// bounds, and the retry-amplification budget.
#include <gtest/gtest.h>

#include "util/retry.h"

namespace bf::util {
namespace {

TEST(RetryPolicy, EnabledIffMoreThanOneAttempt) {
  RetryPolicy p;
  p.maxAttempts = 1;
  EXPECT_FALSE(p.enabled());
  p.maxAttempts = 2;
  EXPECT_TRUE(p.enabled());
}

TEST(Backoff, FirstDelayIsExactlyBase) {
  RetryPolicy p;
  p.baseDelayMs = 40.0;
  Rng rng(7);
  Backoff b(p, &rng);
  EXPECT_DOUBLE_EQ(b.nextDelayMs(), 40.0);
}

TEST(Backoff, SameSeedSameSequence) {
  RetryPolicy p;
  Rng rngA(42), rngB(42);
  Backoff a(p, &rngA), b(p, &rngB);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a.nextDelayMs(), b.nextDelayMs()) << "step " << i;
  }
}

TEST(Backoff, DelaysStayWithinDecorrelatedBounds) {
  RetryPolicy p;
  p.baseDelayMs = 10.0;
  p.maxDelayMs = 500.0;
  Rng rng(3);
  Backoff b(p, &rng);
  double prev = b.nextDelayMs();
  EXPECT_DOUBLE_EQ(prev, 10.0);
  for (int i = 0; i < 50; ++i) {
    const double d = b.nextDelayMs();
    EXPECT_GE(d, p.baseDelayMs);
    EXPECT_LE(d, std::min(std::max(prev * 3.0, p.baseDelayMs), p.maxDelayMs));
    prev = d;
  }
}

TEST(Backoff, CappedAtMaxDelay) {
  RetryPolicy p;
  p.baseDelayMs = 100.0;
  p.maxDelayMs = 150.0;
  Rng rng(9);
  Backoff b(p, &rng);
  for (int i = 0; i < 20; ++i) {
    EXPECT_LE(b.nextDelayMs(), 150.0);
  }
}

TEST(Backoff, ResetRestartsAtBase) {
  RetryPolicy p;
  p.baseDelayMs = 25.0;
  Rng rng(5);
  Backoff b(p, &rng);
  b.nextDelayMs();
  b.nextDelayMs();
  b.reset();
  EXPECT_DOUBLE_EQ(b.nextDelayMs(), 25.0);
}

TEST(RetryBudget, WithdrawUntilEmptyThenDenied) {
  RetryBudget budget(3.0, 0.5);
  EXPECT_TRUE(budget.tryWithdraw());
  EXPECT_TRUE(budget.tryWithdraw());
  EXPECT_TRUE(budget.tryWithdraw());
  EXPECT_FALSE(budget.tryWithdraw()) << "bucket exhausted";
  EXPECT_DOUBLE_EQ(budget.tokens(), 0.0);
}

TEST(RetryBudget, SuccessesRefillFractionally) {
  RetryBudget budget(2.0, 0.5);
  ASSERT_TRUE(budget.tryWithdraw());
  ASSERT_TRUE(budget.tryWithdraw());
  EXPECT_FALSE(budget.tryWithdraw());
  budget.deposit();  // 0.5 tokens: still below a full token
  EXPECT_FALSE(budget.tryWithdraw());
  budget.deposit();  // 1.0 token
  EXPECT_TRUE(budget.tryWithdraw());
}

TEST(RetryBudget, RefillCappedAtCapacity) {
  RetryBudget budget(1.0, 10.0);
  budget.deposit();
  budget.deposit();
  EXPECT_DOUBLE_EQ(budget.tokens(), 1.0);
}

}  // namespace
}  // namespace bf::util
