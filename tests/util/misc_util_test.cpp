// Coverage for the remaining util pieces: logging, stopwatch, binary IO.
#include <gtest/gtest.h>

#include <thread>

#include "util/binary_io.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace bf::util {
namespace {

TEST(Logging, LevelFilterRoundTrip) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::kError);
  EXPECT_EQ(logLevel(), LogLevel::kError);
  // Filtered messages are simply dropped (no observable side effect to
  // assert beyond not crashing).
  logMessage(LogLevel::kDebug, "test", "dropped");
  BF_LOG(LogLevel::kDebug, "test") << "also dropped " << 42;
  setLogLevel(LogLevel::kOff);
  logMessage(LogLevel::kError, "test", "dropped too");
  setLogLevel(before);
}

TEST(Logging, FilteredMessagesDoNotEvaluateOperands) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("costly");
  };
  BF_LOG(LogLevel::kDebug, "test") << "msg " << expensive();
  EXPECT_EQ(evaluations, 0);
  setLogLevel(LogLevel::kDebug);
  BF_LOG(LogLevel::kDebug, "test") << "msg " << expensive();
  EXPECT_EQ(evaluations, 1);
  setLogLevel(before);
}

TEST(Logging, MacroUsableInUnbracedIf) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::kOff);
  if (logLevel() == LogLevel::kOff)
    BF_LOG(LogLevel::kDebug, "test") << "in if";
  else
    BF_LOG(LogLevel::kDebug, "test") << "in else";
  setLogLevel(before);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double ms = watch.elapsedMillis();
  EXPECT_GE(ms, 4.0);
  EXPECT_LT(ms, 2000.0);
  EXPECT_NEAR(watch.elapsedMicros(), watch.elapsedMillis() * 1000.0,
              watch.elapsedMicros() * 0.5);
  watch.reset();
  EXPECT_LT(watch.elapsedMillis(), ms);
}

TEST(BinaryIo, PrimitivesRoundTrip) {
  std::string buf;
  putU8(buf, 0xAB);
  putU32(buf, 0xDEADBEEF);
  putU64(buf, 0x0123456789ABCDEFULL);
  putF64(buf, 3.14159);
  putStr(buf, "hello \0 world");

  BinaryReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello ");  // string literal stops at embedded NUL
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.atEnd());
}

TEST(BinaryIo, EmbeddedNulSurvivesExplicitLength) {
  std::string buf;
  putStr(buf, std::string_view("a\0b", 3));
  BinaryReader r(buf);
  const std::string s = r.str();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[1], '\0');
}

TEST(BinaryIo, UnderrunSetsErrorAndSticksThere) {
  std::string buf;
  putU32(buf, 7);
  BinaryReader r(buf);
  EXPECT_EQ(r.u64(), 0u);  // needs 8 bytes, only 4 available
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // still failed
  EXPECT_FALSE(r.ok());
}

TEST(BinaryIo, HugeStringLengthRejected) {
  std::string buf;
  putU64(buf, 1ULL << 60);  // claims an absurd length
  buf += "short";
  BinaryReader r(buf);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace bf::util
