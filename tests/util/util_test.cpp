// Tests for the util substrate: hashing, rng, strings, stats, clocks.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "util/clock.h"
#include "util/hashing.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

namespace bf::util {
namespace {

// ---- hashing ---------------------------------------------------------------

TEST(Fnv1a64, KnownVectors) {
  // Reference values for FNV-1a 64-bit.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, DistinguishesNearbyStrings) {
  EXPECT_NE(fnv1a64("hello"), fnv1a64("hellp"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("acb"));
}

TEST(Mix64, IsInjectiveOnSmallRange) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second) << "collision at " << i;
  }
}

TEST(KarpRabin, RollMatchesDirectComputation) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  const std::size_t n = 7;
  KarpRabin roller(n);
  std::uint64_t rolled = roller.init(text);
  for (std::size_t i = 0; i + n <= text.size(); ++i) {
    KarpRabin fresh(n);
    const std::uint64_t direct =
        fresh.init(std::string_view(text).substr(i));
    EXPECT_EQ(rolled, direct) << "at offset " << i;
    if (i + n < text.size()) {
      rolled = roller.roll(text[i], text[i + n]);
    }
  }
}

TEST(KarpRabin, EqualNgramsHashEqual) {
  KarpRabin a(5), b(5);
  EXPECT_EQ(a.init("abcdef"), b.init("abcdeX"));  // only first 5 chars used
}

// ---- rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ZipfFavoursLowRanks) {
  Rng rng(13);
  std::size_t low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::size_t r = rng.zipf(1000, 1.2);
    EXPECT_LT(r, 1000u);
    if (r < 10) ++low;
    if (r >= 500) ++high;
  }
  EXPECT_GT(low, high * 2);
}

TEST(Rng, GaussianMeanApproximatelyCorrect) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(50.0, 10.0);
  EXPECT_NEAR(sum / n, 50.0, 0.5);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ---- strings -----------------------------------------------------------------

TEST(Strings, ToLower) {
  EXPECT_EQ(toLower("Hello World!"), "hello world!");
  EXPECT_EQ(toLower(""), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\t\n abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, SplitKeepsEmptyPieces) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitParagraphsBasic) {
  const auto paras = splitParagraphs("first para\n\nsecond para\n\n\nthird");
  ASSERT_EQ(paras.size(), 3u);
  EXPECT_EQ(paras[0], "first para");
  EXPECT_EQ(paras[1], "second para");
  EXPECT_EQ(paras[2], "third");
}

TEST(Strings, SplitParagraphsSingleNewlineIsNotABoundary) {
  const auto paras = splitParagraphs("line one\nline two");
  ASSERT_EQ(paras.size(), 1u);
}

TEST(Strings, SplitParagraphsBlankLineWithSpaces) {
  const auto paras = splitParagraphs("a\n   \nb");
  ASSERT_EQ(paras.size(), 2u);
}

TEST(Strings, SplitParagraphsEmptyInput) {
  EXPECT_TRUE(splitParagraphs("").empty());
  EXPECT_TRUE(splitParagraphs("\n\n\n").empty());
}

TEST(Strings, SplitWords) {
  const auto words = splitWords("  the quick\tbrown\nfox ");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "the");
  EXPECT_EQ(words[3], "fox");
}

TEST(Strings, Join) {
  EXPECT_EQ(join(std::vector<std::string>{"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join(std::vector<std::string>{}, ", "), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(startsWith("https://x.com/y", "https://"));
  EXPECT_FALSE(startsWith("http://", "https://"));
  EXPECT_TRUE(endsWith("file.html", ".html"));
  EXPECT_FALSE(endsWith("html", ".html"));
}

TEST(Strings, ContainsIgnoreCase) {
  EXPECT_TRUE(containsIgnoreCase("MyArticleBody", "article"));
  EXPECT_TRUE(containsIgnoreCase("FOOTER", "footer"));
  EXPECT_FALSE(containsIgnoreCase("abc", "abcd"));
  EXPECT_TRUE(containsIgnoreCase("anything", ""));
}

// ---- stats -------------------------------------------------------------------

TEST(Stats, PercentileBounds) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

TEST(Stats, PercentileEmpty) {
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 95), 0.0);
}

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean(std::vector<int>{1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<int>{}), 0.0);
}

TEST(Stats, EmpiricalCdfReachesOne) {
  const auto cdf = empiricalCdf(std::vector<int>{3, 1, 2, 2});
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  // Duplicates collapse: 3 distinct values.
  EXPECT_EQ(cdf.size(), 3u);
}

// ---- clocks -------------------------------------------------------------------

TEST(LogicalClock, StrictlyIncreasing) {
  LogicalClock clock;
  const Timestamp a = clock.now();
  const Timestamp b = clock.now();
  EXPECT_LT(a, b);
}

TEST(LogicalClock, AdvanceTo) {
  LogicalClock clock;
  clock.advanceTo(100);
  EXPECT_GE(clock.now(), 100u);
  clock.advanceTo(50);  // no going back
  EXPECT_GT(clock.now(), 100u);
}

TEST(WallClock, MonotonicNonDecreasing) {
  WallClock clock;
  const Timestamp a = clock.now();
  const Timestamp b = clock.now();
  EXPECT_LE(a, b);
}

// ---- result -------------------------------------------------------------------

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  auto err = Result<int>::error("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.errorMessage(), "boom");
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  auto e = Status::error("nope");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.errorMessage(), "nope");
}

}  // namespace
}  // namespace bf::util
