// CRC32C framing checksum: known-answer vectors and masking round-trip.
#include <gtest/gtest.h>

#include <string>

#include "util/crc32c.h"

namespace bf::util {
namespace {

TEST(Crc32c, KnownAnswerVectors) {
  // The canonical CRC32C check value (iSCSI, RFC 3720 appendix B.4).
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  // Empty input is the identity.
  EXPECT_EQ(crc32c(""), 0u);
  // 32 zero bytes — a standard vector (RFC 3720).
  EXPECT_EQ(crc32c(std::string(32, '\x00')), 0x8A9136AAu);
  // 32 0xFF bytes.
  EXPECT_EQ(crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32c, SeedChainingEqualsOneShot) {
  const std::string data = "the disclosure state survives a crash";
  const std::uint32_t whole = crc32c(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t part = crc32c(data.substr(split),
                                      crc32c(data.substr(0, split)));
    EXPECT_EQ(part, whole) << "split at " << split;
  }
}

TEST(Crc32c, SingleBitFlipAlwaysDetected) {
  const std::string data = "wal frame payload under test";
  const std::uint32_t clean = crc32c(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(
          static_cast<unsigned char>(flipped[byte]) ^ (1u << bit));
      EXPECT_NE(crc32c(flipped), clean)
          << "undetected flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc32c, MaskUnmaskRoundTrips) {
  const std::uint32_t crcs[] = {0u, 1u, 0xE3069283u, 0xFFFFFFFFu,
                                0x8A9136AAu};
  for (const std::uint32_t c : crcs) {
    EXPECT_EQ(unmaskCrc32c(maskCrc32c(c)), c);
    // Masked value differs from the raw CRC (that is its whole point).
    EXPECT_NE(maskCrc32c(c), c);
  }
}

}  // namespace
}  // namespace bf::util
