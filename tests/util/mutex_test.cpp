// Tests for bf::util::Mutex / MutexLock / CondVar and the runtime
// lock-rank assertion (util/mutex.h).
#include "util/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

// Death tests fork + abort, which ThreadSanitizer instruments poorly
// (spurious reports in the dying child); skip them under TSan.
#if defined(__SANITIZE_THREAD__)
#define BF_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BF_UNDER_TSAN 1
#endif
#endif
#ifndef BF_UNDER_TSAN
#define BF_UNDER_TSAN 0
#endif

namespace bf::util {
namespace {

TEST(MutexTest, LockUnlockAndTryLock) {
  Mutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());  // already held by this test (non-recursive)
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexTest, MutexLockSerialisesConcurrentIncrements) {
  Mutex mu;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(MutexTest, CondVarHandsOffThroughTheMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::string payload;
  std::thread producer([&] {
    MutexLock lock(mu);
    payload = "handoff";
    ready = true;
    cv.notifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    EXPECT_EQ(payload, "handoff");
  }
  producer.join();
}

TEST(SharedMutexTest, ExclusiveLockExcludesEverything) {
  SharedMutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SharedMutexTest, ReadersRunConcurrently) {
  // Two readers must be able to hold the lock at the same time: reader A
  // blocks until reader B has ALSO acquired a shared hold, which would
  // deadlock on an exclusive-only lock.
  SharedMutex mu;
  std::atomic<int> insideReaders{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      SharedReaderLock lock(mu);
      insideReaders.fetch_add(1);
      while (insideReaders.load() < 2) std::this_thread::yield();
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(insideReaders.load(), 2);
}

TEST(SharedMutexTest, WriterSerialisesWithReadersAndWriters) {
  SharedMutex mu;
  long counter = 0;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {  // writers
      for (int i = 0; i < 5000; ++i) {
        SharedMutexLock lock(mu);
        ++counter;
      }
    });
    threads.emplace_back([&] {  // readers: consistent double-read
      for (int i = 0; i < 5000; ++i) {
        SharedReaderLock lock(mu);
        const long a = counter;
        const long b = counter;
        if (a != b) mismatch.store(true);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 10000);
  EXPECT_FALSE(mismatch.load());
}

#if BF_LOCK_RANK_CHECKS

struct CapturedViolation {
  bool fired = false;
  std::string heldName;
  int heldRank = 0;
  std::string acquiredName;
  int acquiredRank = 0;
};
CapturedViolation g_captured;

void captureViolation(const char* heldName, int heldRank,
                      const char* acquiredName, int acquiredRank) {
  g_captured.fired = true;
  g_captured.heldName = heldName;
  g_captured.heldRank = heldRank;
  g_captured.acquiredName = acquiredName;
  g_captured.acquiredRank = acquiredRank;
}

class LockRankTest : public ::testing::Test {
 protected:
  LockRankTest() {
    g_captured = {};
    previous_ = setLockRankViolationHandler(&captureViolation);
  }
  ~LockRankTest() override { setLockRankViolationHandler(previous_); }

 private:
  LockRankViolationHandler previous_;
};

TEST_F(LockRankTest, DescendingTheHierarchyIsClean) {
  Mutex outer(kRankEngineState, "outer");
  Mutex middle(kRankTracker, "middle");
  Mutex inner(kRankLogging, "inner");
  {
    MutexLock a(outer);
    MutexLock b(middle);
    MutexLock c(inner);
  }
  EXPECT_FALSE(g_captured.fired);
}

TEST_F(LockRankTest, AscendingTheHierarchyFiresTheHandler) {
  Mutex outer(kRankEngineState, "DecisionEngine.stateMutex_");
  Mutex inner(kRankMetrics, "MetricsRegistry.mutex_");
  {
    MutexLock a(inner);
    MutexLock b(outer);  // inversion: metrics (80) held, engine (10) wanted
  }
  ASSERT_TRUE(g_captured.fired);
  EXPECT_EQ(g_captured.heldName, "MetricsRegistry.mutex_");
  EXPECT_EQ(g_captured.heldRank, kRankMetrics);
  EXPECT_EQ(g_captured.acquiredName, "DecisionEngine.stateMutex_");
  EXPECT_EQ(g_captured.acquiredRank, kRankEngineState);
}

TEST_F(LockRankTest, EqualRankAlsoCountsAsInversion) {
  Mutex a(kRankTracker, "a");
  Mutex b(kRankTracker, "b");
  {
    MutexLock la(a);
    MutexLock lb(b);  // same rank: ordering between them is undefined
  }
  EXPECT_TRUE(g_captured.fired);
}

TEST_F(LockRankTest, UnrankedMutexesAreExempt) {
  Mutex ranked(kRankLogging, "ranked");
  Mutex unranked;
  {
    MutexLock a(ranked);
    MutexLock b(unranked);  // unranked after innermost rank: fine
  }
  EXPECT_FALSE(g_captured.fired);
}

TEST_F(LockRankTest, OutOfOrderReleaseKeepsBookkeepingStraight) {
  Mutex outer(kRankEngineState, "outer");
  Mutex inner(kRankTracker, "inner");
  outer.lock();
  inner.lock();
  outer.unlock();  // released before inner: not LIFO, still legal
  inner.unlock();
  // The held-set must now be empty: re-acquiring in any order is clean.
  {
    MutexLock b(inner);
  }
  {
    MutexLock a(outer);
  }
  EXPECT_FALSE(g_captured.fired);
}

TEST_F(LockRankTest, SharedAcquisitionParticipatesInTheHierarchy) {
  // A reader hold is still a hold: taking the tracker's lock shared while
  // holding an inner-ranked mutex is the same inversion as an exclusive
  // acquisition would be.
  Mutex inner(kRankMetrics, "MetricsRegistry.mutex_");
  SharedMutex tracker(kRankTracker, "FlowTracker.mutex_");
  {
    MutexLock a(inner);
    SharedReaderLock b(tracker);
  }
  ASSERT_TRUE(g_captured.fired);
  EXPECT_EQ(g_captured.acquiredName, "FlowTracker.mutex_");
}

TEST_F(LockRankTest, RecursiveSharedAcquisitionIsFlagged) {
  // lock_shared twice on one thread deadlocks the moment a writer queues
  // between the two reads; the equal-rank rule catches it.
  SharedMutex mu(kRankTracker, "FlowTracker.mutex_");
  {
    SharedReaderLock a(mu);
    SharedReaderLock b(mu);
  }
  EXPECT_TRUE(g_captured.fired);
}

TEST_F(LockRankTest, SharedThenDescendIsClean) {
  SharedMutex tracker(kRankTracker, "FlowTracker.mutex_");
  Mutex metrics(kRankMetrics, "MetricsRegistry.mutex_");
  {
    SharedReaderLock a(tracker);
    MutexLock b(metrics);  // tracker (40) -> metrics (80): descending, fine
  }
  EXPECT_FALSE(g_captured.fired);
}

TEST_F(LockRankTest, HandlerResetRestoresTheDefault) {
  // Install-and-return semantics: the previous handler comes back.
  LockRankViolationHandler mine = setLockRankViolationHandler(nullptr);
  EXPECT_EQ(mine, &captureViolation);
  setLockRankViolationHandler(mine);
}

#if GTEST_HAS_DEATH_TEST && !BF_UNDER_TSAN
TEST(LockRankDeathTest, DefaultHandlerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        Mutex inner(kRankLogging, "inner");
        Mutex outer(kRankEngineState, "outer");
        inner.lock();
        outer.lock();  // inversion with the abort handler installed
      },
      "lock-rank violation");
}
#endif  // GTEST_HAS_DEATH_TEST && !BF_UNDER_TSAN

#endif  // BF_LOCK_RANK_CHECKS

}  // namespace
}  // namespace bf::util
