// Tests for the left-right concurrency primitive (util/left_right.h):
// protocol state-machine checks single-threaded, a writer-drain blocking
// check, and a replicated-invariant stress that TSan watches for races
// (suite name matches the tsan preset's concurrency test filter).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/left_right.h"

namespace bf::util {
namespace {

TEST(LeftRightConcurrency, ReadersFollowTheActiveInstance) {
  LeftRightControl lr;
  EXPECT_EQ(lr.activeInstance(), 0);
  EXPECT_EQ(lr.inactiveInstance(), 1);
  {
    LeftRightReadGuard guard(lr);
    EXPECT_EQ(guard.instance(), 0);
  }
  lr.flipAndWait();  // no readers: returns immediately
  EXPECT_EQ(lr.activeInstance(), 1);
  EXPECT_EQ(lr.inactiveInstance(), 0);
  {
    LeftRightReadGuard guard(lr);
    EXPECT_EQ(guard.instance(), 1);
  }
  lr.flipAndWait();
  EXPECT_EQ(lr.activeInstance(), 0);
}

TEST(LeftRightConcurrency, FlipWaitsForInFlightReaders) {
  LeftRightControl lr;
  std::atomic<bool> readerIn{false};
  std::atomic<bool> releaseReader{false};
  std::atomic<bool> flipDone{false};

  std::thread reader([&] {
    LeftRightReadGuard guard(lr);
    readerIn.store(true, std::memory_order_release);
    while (!releaseReader.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!readerIn.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  std::thread writer([&] {
    lr.flipAndWait();
    flipDone.store(true, std::memory_order_release);
  });
  // The writer must not complete while the reader is registered on the
  // old version. Give it ample chance to (incorrectly) race ahead.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(flipDone.load(std::memory_order_acquire));

  releaseReader.store(true, std::memory_order_release);
  reader.join();
  writer.join();
  EXPECT_TRUE(flipDone.load(std::memory_order_acquire));
  EXPECT_EQ(lr.activeInstance(), 1);
}

TEST(LeftRightConcurrency, ReplicatedInvariantHoldsUnderChurn) {
  // The canonical left-right correctness check: two replicas of a
  // structure with an internal invariant (here a pair that must be equal),
  // a writer that breaks the invariant mid-mutation on one replica at a
  // time, and readers that must NEVER observe the broken state. A seqlock
  // without retry — or a protocol bug — fails this under TSan and by
  // assertion.
  struct Pair {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };
  Pair replicas[2];
  LeftRightControl lr;

  constexpr int kWrites = 2000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        LeftRightReadGuard guard(lr);
        const Pair& p = replicas[guard.instance()];
        const std::uint64_t a = p.a;
        const std::uint64_t b = p.b;
        ASSERT_EQ(a, b) << "torn read: replica observed mid-mutation";
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread writer([&] {
    for (int i = 1; i <= kWrites; ++i) {
      // First application: the inactive replica is transiently torn
      // (a updated before b) — no reader may be inside it.
      Pair& first = replicas[lr.inactiveInstance()];
      first.a = static_cast<std::uint64_t>(i);
      first.b = static_cast<std::uint64_t>(i);
      lr.flipAndWait();
      Pair& second = replicas[lr.inactiveInstance()];
      second.a = static_cast<std::uint64_t>(i);
      second.b = static_cast<std::uint64_t>(i);
    }
  });
  writer.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(replicas[0].a, static_cast<std::uint64_t>(kWrites));
  EXPECT_EQ(replicas[1].a, static_cast<std::uint64_t>(kWrites));
}

}  // namespace
}  // namespace bf::util
