// Tests for the Fingerprint value type.
#include <gtest/gtest.h>

#include "text/fingerprint.h"

namespace bf::text {
namespace {

TEST(Fingerprint, EmptyByDefault) {
  Fingerprint fp;
  EXPECT_TRUE(fp.empty());
  EXPECT_EQ(fp.size(), 0u);
}

TEST(Fingerprint, DeduplicatesHashes) {
  auto fp = Fingerprint::fromSelected({{5, 0}, {5, 10}, {7, 20}});
  EXPECT_EQ(fp.size(), 2u);          // distinct hashes
  EXPECT_EQ(fp.grams().size(), 3u);  // all positions kept for attribution
}

TEST(Fingerprint, GramsSortedByPosition) {
  auto fp = Fingerprint::fromSelected({{3, 20}, {1, 5}, {2, 10}});
  ASSERT_EQ(fp.grams().size(), 3u);
  EXPECT_EQ(fp.grams()[0].pos, 5u);
  EXPECT_EQ(fp.grams()[1].pos, 10u);
  EXPECT_EQ(fp.grams()[2].pos, 20u);
}

TEST(Fingerprint, Contains) {
  auto fp = Fingerprint::fromSelected({{5, 0}, {9, 1}});
  EXPECT_TRUE(fp.contains(5));
  EXPECT_TRUE(fp.contains(9));
  EXPECT_FALSE(fp.contains(7));
}

TEST(Fingerprint, IntersectionSize) {
  auto a = Fingerprint::fromSelected({{1, 0}, {2, 1}, {3, 2}});
  auto b = Fingerprint::fromSelected({{2, 0}, {3, 1}, {4, 2}});
  EXPECT_EQ(Fingerprint::intersectionSize(a, b), 2u);
  EXPECT_EQ(Fingerprint::intersectionSize(a, Fingerprint{}), 0u);
}

TEST(Fingerprint, IntersectionIsSymmetric) {
  auto a = Fingerprint::fromSelected({{1, 0}, {2, 1}});
  auto b = Fingerprint::fromSelected({{2, 0}, {9, 1}, {1, 2}});
  EXPECT_EQ(Fingerprint::intersectionSize(a, b),
            Fingerprint::intersectionSize(b, a));
}

TEST(Fingerprint, SameHashesIgnoresPositions) {
  auto a = Fingerprint::fromSelected({{1, 0}, {2, 50}});
  auto b = Fingerprint::fromSelected({{2, 3}, {1, 99}});
  EXPECT_TRUE(a.sameHashes(b));
}

TEST(FingerprintConfig, WindowHashesArithmetic) {
  FingerprintConfig c;
  c.ngramChars = 15;
  c.windowChars = 30;
  // w = t - n + 1 from the winnowing paper.
  EXPECT_EQ(c.windowHashes(), 16u);
  c.windowChars = 15;
  EXPECT_EQ(c.windowHashes(), 1u);
}

}  // namespace
}  // namespace bf::text
