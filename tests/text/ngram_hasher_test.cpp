// Tests for n-gram hashing (paper S4.1 step S2).
#include <gtest/gtest.h>

#include <unordered_set>

#include "text/ngram_hasher.h"

namespace bf::text {
namespace {

TEST(NgramHasher, CountMatchesLength) {
  const auto n = normalize("helloworld");  // 10 chars
  const auto grams = hashNgrams(n, 6, 64);
  // The paper's example: "helloworld" with 6-grams yields 5 hashes.
  EXPECT_EQ(grams.size(), 5u);
}

TEST(NgramHasher, TooShortYieldsNothing) {
  const auto n = normalize("abc");
  EXPECT_TRUE(hashNgrams(n, 6, 64).empty());
}

TEST(NgramHasher, ExactLengthYieldsOne) {
  const auto n = normalize("abcdef");
  EXPECT_EQ(hashNgrams(n, 6, 64).size(), 1u);
}

TEST(NgramHasher, PositionsAreSequential) {
  const auto n = normalize("abcdefghij");
  const auto grams = hashNgrams(n, 4, 64);
  for (std::size_t i = 0; i < grams.size(); ++i) {
    EXPECT_EQ(grams[i].pos, i);
  }
}

TEST(NgramHasher, EqualNgramsGetEqualHashes) {
  const auto a = normalize("xyzabcxyz");
  const auto grams = hashNgrams(a, 3, 64);
  // positions 0 ("xyz") and 6 ("xyz") must collide.
  EXPECT_EQ(grams[0].hash, grams[6].hash);
}

TEST(NgramHasher, HashBitsTruncation) {
  const auto n = normalize("the quick brown fox jumps over the lazy dog");
  for (const auto& g : hashNgrams(n, 5, 32)) {
    EXPECT_EQ(g.hash >> 32, 0u) << "hash wider than 32 bits";
  }
}

TEST(NgramHasher, SameTextDifferentCasePunctuationHashesEqual) {
  const auto a = hashNgrams(normalize("Hello, World!"), 5, 32);
  const auto b = hashNgrams(normalize("HELLO WORLD"), 5, 32);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].hash, b[i].hash);
  }
}

TEST(NgramHasher, FewCollisionsAcrossDistinctNgrams) {
  // mix64 post-mixing must keep 32-bit truncated hashes well spread.
  std::string text;
  for (int i = 0; i < 2000; ++i) text += static_cast<char>('a' + (i * 7) % 26);
  const auto grams = hashNgrams(normalize(text), 8, 32);
  std::unordered_set<std::uint64_t> hashes;
  std::unordered_set<std::string> distinct;
  for (const auto& g : grams) {
    hashes.insert(g.hash);
    distinct.insert(text.substr(g.pos, 8));
  }
  // At least as many hash values as distinct n-grams minus a tiny margin.
  EXPECT_GE(hashes.size() + 3, distinct.size());
}

}  // namespace
}  // namespace bf::text
