// Differential & property tests: the fused single-pass fingerprint kernel
// (text/fingerprint_kernel.h) must produce fingerprints byte-identical to
// the staged reference pipeline normalize → hashNgrams → winnow — same
// hashes AND same original-offset positions — on random texts, corpus
// samples, and adversarial inputs (equal-hash tie-breaks, inputs shorter
// than windowChars, all-punctuation text).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/text_generator.h"
#include "text/fingerprint_kernel.h"
#include "text/winnower.h"
#include "util/rng.h"

namespace bf::text {
namespace {

/// Exact equality: selected grams (hash, original offset) in order, and
/// the de-duplicated sorted hash set.
void expectIdentical(const Fingerprint& fused, const Fingerprint& ref,
                     const std::string& label) {
  EXPECT_EQ(fused.hashes(), ref.hashes()) << label;
  ASSERT_EQ(fused.grams().size(), ref.grams().size()) << label;
  for (std::size_t i = 0; i < ref.grams().size(); ++i) {
    EXPECT_EQ(fused.grams()[i].hash, ref.grams()[i].hash)
        << label << " gram " << i;
    EXPECT_EQ(fused.grams()[i].pos, ref.grams()[i].pos)
        << label << " gram " << i;
  }
}

void checkText(const std::string& input, const FingerprintConfig& config,
               const std::string& label) {
  FingerprintWorkspace ws;
  const Fingerprint fused = fingerprintTextFused(input, config, ws);
  const Fingerprint ref = fingerprintTextReference(input, config);
  expectIdentical(fused, ref, label);
  // And through the public entry point (thread-local workspace).
  expectIdentical(fingerprintText(input, config), ref, label + " (tls)");
}

FingerprintConfig paperConfig() { return FingerprintConfig{}; }

std::string randomText(util::Rng& rng, std::size_t length) {
  // Mixed alphabet: letters, digits, punctuation, whitespace, high bytes —
  // exercises every branch of the normalizer.
  static const char pool[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      " \t\n.,;:!?-_()[]{}'\"";
  std::string s;
  s.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    if (rng.uniform(0, 19) == 0) {
      s.push_back(static_cast<char>(0x80 + rng.uniform(0, 0x7e)));
    } else {
      s.push_back(pool[static_cast<std::size_t>(
          rng.uniform(0, static_cast<int>(sizeof(pool)) - 2))]);
    }
  }
  return s;
}

TEST(FusedKernel, EmptyAndShortInputs) {
  checkText("", paperConfig(), "empty");
  checkText("a", paperConfig(), "one char");
  checkText("short text", paperConfig(), "short");
  // Exactly one character below / at / above the window boundary.
  checkText(std::string(29, 'q'), paperConfig(), "window-1");
  checkText(std::string(30, 'q'), paperConfig(), "window");
  checkText(std::string(31, 'q'), paperConfig(), "window+1");
}

TEST(FusedKernel, AllPunctuationInput) {
  // Normalizes to nothing even though the raw input is long.
  checkText(std::string(500, '!'), paperConfig(), "all punctuation");
  checkText("... !!! ??? ,,, ;;; ---   \t\n", paperConfig(), "mixed punct");
  FingerprintWorkspace ws;
  EXPECT_TRUE(
      fingerprintTextFused(std::string(500, '.'), paperConfig(), ws).empty());
}

TEST(FusedKernel, EqualHashTieBreaks) {
  // Periodic text: every n-gram at the same phase hashes identically, so
  // windows are full of equal hashes and the rightmost-minimum tie-break
  // decides every selection.
  for (std::size_t period : {1u, 2u, 3u, 5u, 15u}) {
    std::string text;
    while (text.size() < 400) {
      for (std::size_t i = 0; i < period; ++i) {
        text.push_back(static_cast<char>('a' + i));
      }
    }
    checkText(text, paperConfig(), "period " + std::to_string(period));
  }
}

TEST(FusedKernel, PunctuationShiftsOriginalOffsets) {
  // Identical normalized text, very different original offsets: positions
  // must come from the ORIGINAL byte offsets in both implementations.
  const std::string plain =
      "the quick brown fox jumps over the lazy dog again and again and "
      "again until the fingerprint window is certainly full";
  std::string spaced;
  for (char c : plain) {
    spaced.push_back(c);
    spaced += "  ";
  }
  checkText(spaced, paperConfig(), "spaced");
  const Fingerprint a = fingerprintText(plain, paperConfig());
  const Fingerprint b = fingerprintText(spaced, paperConfig());
  EXPECT_TRUE(a.sameHashes(b));  // same normalized content
}

TEST(FusedKernel, RandomTextsAcrossConfigs) {
  util::Rng rng(20260805);
  const std::vector<std::pair<std::size_t, std::size_t>> configs = {
      {15, 30},  // paper defaults
      {5, 10},  {8, 16}, {15, 45}, {20, 40},
      {16, 32},  // n a power of two: outgoing char shares its ring slot
      {1, 1},    // window of one selects every distinct-run gram
      {7, 7},    // w = 1
      {10, 4},   // windowChars < ngramChars (degenerate w = 1)
  };
  for (const auto& [ngram, window] : configs) {
    FingerprintConfig config;
    config.ngramChars = ngram;
    config.windowChars = window;
    for (int trial = 0; trial < 8; ++trial) {
      const std::size_t len =
          static_cast<std::size_t>(rng.uniform(0, 3000));
      checkText(randomText(rng, len), config,
                "n=" + std::to_string(ngram) + " w=" + std::to_string(window) +
                    " trial " + std::to_string(trial));
    }
  }
}

TEST(FusedKernel, HashWidthSweep) {
  util::Rng rng(7);
  const std::string text = randomText(rng, 1500);
  for (unsigned bits : {8u, 16u, 32u, 64u}) {
    FingerprintConfig config;
    config.hashBits = bits;
    checkText(text, config, "bits " + std::to_string(bits));
  }
}

TEST(FusedKernel, CorpusParagraphs) {
  util::Rng rng(99);
  corpus::TextGenerator gen(&rng);
  for (int i = 0; i < 30; ++i) {
    checkText(gen.paragraph(1 + i % 5, 8), paperConfig(),
              "corpus paragraph " + std::to_string(i));
  }
}

TEST(FusedKernel, WorkspaceReuseAcrossConfigs) {
  // One workspace serving interleaved configurations must not leak state
  // between calls.
  util::Rng rng(5);
  FingerprintWorkspace ws;
  FingerprintConfig small;
  small.ngramChars = 4;
  small.windowChars = 8;
  const FingerprintConfig paper = paperConfig();
  for (int i = 0; i < 10; ++i) {
    const std::string text = randomText(rng, 800);
    expectIdentical(fingerprintTextFused(text, paper, ws),
                    fingerprintTextReference(text, paper),
                    "reuse paper " + std::to_string(i));
    expectIdentical(fingerprintTextFused(text, small, ws),
                    fingerprintTextReference(text, small),
                    "reuse small " + std::to_string(i));
  }
  EXPECT_GT(ws.scratchBytes(), 0u);
}

TEST(FusedKernel, ScratchDoesNotScaleWithInput) {
  // The workspace holds O(window) scratch plus the selected grams of the
  // LAST call — never the full gram sequence of a large input.
  FingerprintWorkspace ws;
  util::Rng rng(11);
  const std::string big = randomText(rng, 1 << 18);
  const Fingerprint fp = fingerprintTextFused(big, paperConfig(), ws);
  ASSERT_FALSE(fp.empty());
  // Full gram sequence would be ~16 bytes per input char (4 MiB here); the
  // scratch must stay near the selected-gram count (~2/(w+1) density).
  EXPECT_LT(ws.scratchBytes(), (big.size() / 4) * sizeof(HashedGram));
}

}  // namespace
}  // namespace bf::text
