// Tests for winnowing (paper S4.1 steps S3-S4), including the two
// properties the disclosure metrics depend on: the shared-substring
// guarantee and robustness to local edits / reordering.
#include <gtest/gtest.h>

#include <string>

#include "text/winnower.h"
#include "util/rng.h"

namespace bf::text {
namespace {

FingerprintConfig paperConfig() {
  return FingerprintConfig{};  // 15-char n-grams, 30-char window, 32-bit
}

std::string randomText(util::Rng& rng, std::size_t length) {
  std::string s;
  s.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    s.push_back(static_cast<char>('a' + rng.uniform(0, 25)));
  }
  return s;
}

TEST(Winnower, EmptyInput) {
  EXPECT_TRUE(fingerprintText("", paperConfig()).empty());
}

TEST(Winnower, ShortTextHasEmptyFingerprint) {
  // Shorter than the 30-char window: the paper reports these as systematic
  // false negatives — no fingerprint at all.
  EXPECT_TRUE(fingerprintText("too short to matter", paperConfig()).empty());
}

TEST(Winnower, LongTextHasNonEmptyFingerprint) {
  const std::string text(200, 'x');  // degenerate but long
  EXPECT_FALSE(fingerprintText(text, paperConfig()).empty());
}

TEST(Winnower, DeterministicForSameInput) {
  const std::string text =
      "The policy enforcement module ensures that this condition is "
      "satisfied for every text segment that is uploaded.";
  const auto a = fingerprintText(text, paperConfig());
  const auto b = fingerprintText(text, paperConfig());
  EXPECT_TRUE(a.sameHashes(b));
}

TEST(Winnower, InsensitiveToCaseAndPunctuation) {
  const auto a = fingerprintText(
      "Data disclosure policies are specified using a decentralised label "
      "model; policies are set by administrators.",
      paperConfig());
  const auto b = fingerprintText(
      "DATA DISCLOSURE POLICIES... are specified using a decentralised "
      "label model!!! Policies are set, by administrators.",
      paperConfig());
  EXPECT_TRUE(a.sameHashes(b));
}

TEST(Winnower, FingerprintIsSparse) {
  // Winnowing with window w selects roughly 2/(w+1) of the hashes; ensure
  // we are far below one hash per character.
  util::Rng rng(1);
  const std::string text = randomText(rng, 5000);
  const auto fp = fingerprintText(text, paperConfig());
  EXPECT_LT(fp.grams().size(), 5000u / 4);
  EXPECT_GT(fp.size(), 50u);
}

TEST(Winnower, SelectedPositionsAreSortedAndValid) {
  util::Rng rng(2);
  const std::string text = randomText(rng, 1000);
  const auto fp = fingerprintText(text, paperConfig());
  std::uint32_t prev = 0;
  for (const auto& g : fp.grams()) {
    EXPECT_GE(g.pos, prev);
    EXPECT_LE(g.pos + 15, 1000u);
    prev = g.pos;
  }
}

// The winnowing guarantee: if two texts share a substring of at least
// windowChars characters, their fingerprints share at least one hash.
class WinnowingGuarantee
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(WinnowingGuarantee, SharedSubstringYieldsSharedHash) {
  const auto [ngram, window] = GetParam();
  FingerprintConfig config;
  config.ngramChars = ngram;
  config.windowChars = window;
  util::Rng rng(ngram * 131 + window);

  for (int trial = 0; trial < 20; ++trial) {
    const std::string shared = randomText(rng, window + 5);
    const std::string a = randomText(rng, 200) + shared + randomText(rng, 200);
    const std::string b = randomText(rng, 150) + shared + randomText(rng, 250);
    const auto fa = fingerprintText(a, config);
    const auto fb = fingerprintText(b, config);
    EXPECT_GT(Fingerprint::intersectionSize(fa, fb), 0u)
        << "trial " << trial << " ngram=" << ngram << " window=" << window;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamSweep, WinnowingGuarantee,
    ::testing::Values(std::make_tuple(5, 10), std::make_tuple(8, 16),
                      std::make_tuple(15, 30), std::make_tuple(15, 45),
                      std::make_tuple(20, 40)));

TEST(Winnower, DisjointTextsShareAlmostNothing) {
  util::Rng rng(3);
  const auto fa = fingerprintText(randomText(rng, 2000), paperConfig());
  const auto fb = fingerprintText(randomText(rng, 2000), paperConfig());
  // Random 15-grams essentially never collide under a 32-bit hash.
  EXPECT_LE(Fingerprint::intersectionSize(fa, fb), 1u);
}

TEST(Winnower, RobustToParagraphShuffle) {
  // "the selected hashes are not affected strongly ... by shuffling the
  //  content of a document" (S4.1).
  util::Rng rng(4);
  std::vector<std::string> paras;
  for (int i = 0; i < 8; ++i) paras.push_back(randomText(rng, 300));
  std::string original;
  for (const auto& p : paras) original += p + " ";
  rng.shuffle(paras);
  std::string shuffled;
  for (const auto& p : paras) shuffled += p + " ";

  const auto fo = fingerprintText(original, paperConfig());
  const auto fs = fingerprintText(shuffled, paperConfig());
  const std::size_t common = Fingerprint::intersectionSize(fo, fs);
  EXPECT_GT(static_cast<double>(common) / static_cast<double>(fo.size()), 0.8);
}

TEST(Winnower, SmallEditPerturbsFingerprintLocally) {
  util::Rng rng(5);
  std::string text = randomText(rng, 2000);
  const auto before = fingerprintText(text, paperConfig());
  text[1000] = text[1000] == 'a' ? 'b' : 'a';  // single-character edit
  const auto after = fingerprintText(text, paperConfig());
  const std::size_t common = Fingerprint::intersectionSize(before, after);
  // The overwhelming majority of selections survive one edit.
  EXPECT_GT(static_cast<double>(common) / static_cast<double>(before.size()),
            0.9);
}

TEST(Winnower, WindowOfOneSelectsEveryHash) {
  FingerprintConfig config;
  config.ngramChars = 4;
  config.windowChars = 4;  // w = 1 hash per window
  const std::string text = "abcdefghijklmnop";
  const auto fp = fingerprintText(text, config);
  // Every position's n-gram is selected (all distinct here).
  EXPECT_EQ(fp.grams().size(), text.size() - 4 + 1);
}

TEST(Winnow, TieBreakSelectsRightmostMinimum) {
  // Three equal hashes in one window: robust winnowing picks the rightmost.
  std::vector<HashedGram> grams = {{7, 0}, {7, 1}, {7, 2}};
  const auto selected = winnow(grams, 3);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].pos, 2u);
}

TEST(Winnow, SameMinimumNotRecordedTwice) {
  // One global minimum spanning several windows is selected once.
  std::vector<HashedGram> grams = {{9, 0}, {1, 1}, {9, 2}, {9, 3}, {9, 4}};
  const auto selected = winnow(grams, 3);
  std::size_t countOfOne = 0;
  for (const auto& g : selected) {
    if (g.hash == 1) ++countOfOne;
  }
  EXPECT_EQ(countOfOne, 1u);
}

TEST(Winnow, FewerGramsThanWindowYieldsNothing) {
  std::vector<HashedGram> grams = {{1, 0}, {2, 1}};
  EXPECT_TRUE(winnow(grams, 3).empty());
}

}  // namespace
}  // namespace bf::text
