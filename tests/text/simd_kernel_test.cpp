// Differential sweep for the runtime-dispatched SIMD fingerprint kernels
// (text/simd/kernel.h): every dispatch tier this host supports must be
// bit-identical to fingerprintTextReference — same hashes AND same
// original-offset positions — across input lengths around the window
// boundary, all 64 input alignments, every hash width, and multi-byte
// UTF-8 content. Plus unit tests for the pure selection policy
// (chooseKernelTier) and the bf_kernel_dispatch gauge contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/text_generator.h"
#include "obs/metrics.h"
#include "text/fingerprint_kernel.h"
#include "text/simd/kernel.h"
#include "text/winnower.h"
#include "util/rng.h"

namespace bf::text {
namespace {

using simd::KernelTier;

/// Forces one dispatch tier for the scope of a test body and always
/// returns dispatch to auto on exit, even through ASSERT failures.
class ScopedTier {
 public:
  explicit ScopedTier(KernelTier tier)
      : engaged_(simd::setKernelTierOverrideForTest(tier)) {}
  ~ScopedTier() { simd::restoreAutoKernelTier(); }
  [[nodiscard]] bool engaged() const noexcept { return engaged_; }

 private:
  bool engaged_;
};

const std::vector<KernelTier>& allTiers() {
  static const std::vector<KernelTier> tiers = {
      KernelTier::kScalar, KernelTier::kSse42, KernelTier::kAvx2,
      KernelTier::kAvx512};
  return tiers;
}

void expectIdentical(const Fingerprint& got, const Fingerprint& ref,
                     const std::string& label) {
  EXPECT_EQ(got.hashes(), ref.hashes()) << label;
  ASSERT_EQ(got.grams().size(), ref.grams().size()) << label;
  for (std::size_t i = 0; i < ref.grams().size(); ++i) {
    ASSERT_EQ(got.grams()[i].hash, ref.grams()[i].hash)
        << label << " gram " << i;
    ASSERT_EQ(got.grams()[i].pos, ref.grams()[i].pos)
        << label << " gram " << i;
  }
}

/// Runs the currently-dispatched fused kernel on `input` and checks it
/// against the staged reference pipeline.
void checkAgainstReference(std::string_view input,
                           const FingerprintConfig& config,
                           const std::string& label) {
  FingerprintWorkspace ws;
  const Fingerprint got = fingerprintTextFused(input, config, ws);
  const Fingerprint ref = fingerprintTextReference(input, config);
  expectIdentical(got, ref, label);
}

std::string mixedText(util::Rng& rng, std::size_t length) {
  // Letters, digits, punctuation, whitespace, and raw high bytes: every
  // normalizer classification, including bytes the SIMD compaction drops.
  static const char pool[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      " \t\n.,;:!?-_()[]{}'\"";
  std::string s;
  s.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    if (rng.uniform(0, 19) == 0) {
      s.push_back(static_cast<char>(0x80 + rng.uniform(0, 0x7e)));
    } else {
      s.push_back(pool[static_cast<std::size_t>(
          rng.uniform(0, static_cast<int>(sizeof(pool)) - 2))]);
    }
  }
  return s;
}

std::string utf8Text() {
  // Two-, three-, and four-byte sequences interleaved with ASCII so the
  // vector normalize sees continuation bytes in every lane position.
  std::string s;
  for (int i = 0; i < 40; ++i) {
    s += "caf\xC3\xA9 na\xC3\xAFve ";          // U+00E9, U+00EF
    s += "\xE6\xBC\xA2\xE5\xAD\x97 ";          // CJK
    s += "\xF0\x9F\x94\x92 secret";            // U+1F512
    s += std::to_string(i);
    s += "\n";
  }
  return s;
}

TEST(SimdKernelDifferential, LengthSweepAroundWindowBoundary) {
  const FingerprintConfig config;  // paper defaults: 15/30, 32-bit
  util::Rng rng(101);
  // One long random text; prefixes give every length 0..3*window without
  // re-generating (prefix normalization is prefix-stable).
  const std::string text = mixedText(rng, 3 * config.windowChars + 1);
  for (KernelTier tier : allTiers()) {
    ScopedTier scoped(tier);
    if (!scoped.engaged()) {
      GTEST_LOG_(INFO) << "tier " << simd::kernelTierName(tier)
                       << " unsupported on this host; skipping";
      continue;
    }
    for (std::size_t len = 0; len <= 3 * config.windowChars; ++len) {
      checkAgainstReference(
          std::string_view(text).substr(0, len), config,
          std::string("tier ") + simd::kernelTierName(tier) + " len " +
              std::to_string(len));
    }
  }
}

TEST(SimdKernelDifferential, AllInputAlignments) {
  // The same logical text placed at every offset 0..63 of an oversized
  // buffer: catches head/tail masking bugs in the vector loads.
  const FingerprintConfig config;
  util::Rng rng(202);
  const std::string logical = mixedText(rng, 512);
  std::string buffer(64 + logical.size(), '\0');
  const Fingerprint ref = fingerprintTextReference(logical, config);
  for (KernelTier tier : allTiers()) {
    ScopedTier scoped(tier);
    if (!scoped.engaged()) continue;
    FingerprintWorkspace ws;
    for (std::size_t offset = 0; offset < 64; ++offset) {
      std::copy(logical.begin(), logical.end(), buffer.begin() + offset);
      const std::string_view view(buffer.data() + offset, logical.size());
      const Fingerprint got = fingerprintTextFused(view, config, ws);
      expectIdentical(got, ref,
                      std::string("tier ") + simd::kernelTierName(tier) +
                          " offset " + std::to_string(offset));
    }
  }
}

TEST(SimdKernelDifferential, HashWidthSweep) {
  util::Rng rng(303);
  const std::string text = mixedText(rng, 2048);
  for (KernelTier tier : allTiers()) {
    ScopedTier scoped(tier);
    if (!scoped.engaged()) continue;
    for (unsigned bits : {8u, 16u, 32u, 64u}) {
      FingerprintConfig config;
      config.hashBits = bits;
      checkAgainstReference(text, config,
                            std::string("tier ") +
                                simd::kernelTierName(tier) + " hashBits " +
                                std::to_string(bits));
    }
  }
}

TEST(SimdKernelDifferential, MultiByteUtf8Content) {
  const FingerprintConfig config;
  const std::string text = utf8Text();
  for (KernelTier tier : allTiers()) {
    ScopedTier scoped(tier);
    if (!scoped.engaged()) continue;
    checkAgainstReference(text, config, std::string("tier ") +
                                            simd::kernelTierName(tier) +
                                            " utf8");
  }
}

TEST(SimdKernelDifferential, LongCorpusTexts) {
  // Realistic corpus paragraphs at the bench's 16 KiB working size, plus a
  // chunk-boundary-straddling size (the pipeline processes 8 KiB rounds).
  const FingerprintConfig config;
  util::Rng rng(404);
  corpus::TextGenerator gen(&rng);
  std::string text;
  while (text.size() < 16384 + 37) {
    text += gen.paragraph(5, 8);
    text += "\n\n";
  }
  for (KernelTier tier : allTiers()) {
    ScopedTier scoped(tier);
    if (!scoped.engaged()) continue;
    for (std::size_t len : {8191ul, 8193ul, 16384ul, text.size()}) {
      checkAgainstReference(
          std::string_view(text).substr(0, len), config,
          std::string("tier ") + simd::kernelTierName(tier) + " long " +
              std::to_string(len));
    }
  }
}

TEST(SimdKernelDispatch, ChooseKernelTierPolicy) {
  using simd::detail::chooseKernelTier;
  // BF_FORCE_SCALAR_KERNEL beats every capability.
  EXPECT_EQ(chooseKernelTier(true, true, true, true), KernelTier::kScalar);
  EXPECT_EQ(chooseKernelTier(true, false, false, true), KernelTier::kScalar);
  // Strongest supported tier wins.
  EXPECT_EQ(chooseKernelTier(false, true, true, true), KernelTier::kAvx512);
  EXPECT_EQ(chooseKernelTier(false, false, true, true), KernelTier::kAvx2);
  EXPECT_EQ(chooseKernelTier(false, false, false, true), KernelTier::kSse42);
  EXPECT_EQ(chooseKernelTier(false, false, false, false),
            KernelTier::kScalar);
  // Tiers are independent probes: AVX-512 without the lower bits set still
  // selects AVX-512 (the cpuid helpers gate the full requirement set).
  EXPECT_EQ(chooseKernelTier(false, true, false, false), KernelTier::kAvx512);
}

TEST(SimdKernelDispatch, ScalarTierAlwaysSupported) {
  EXPECT_TRUE(simd::kernelTierSupported(KernelTier::kScalar));
  // The active tier is always a supported one.
  EXPECT_TRUE(simd::kernelTierSupported(simd::activeKernelTier()));
}

TEST(SimdKernelDispatch, GaugeTracksOverrides) {
  obs::Gauge& gauge = obs::registry().gauge(
      "bf_kernel_dispatch",
      "Fingerprint kernel tier in use (0=scalar, 1=sse42, 2=avx2, "
      "3=avx512)");
  for (KernelTier tier : allTiers()) {
    if (!simd::setKernelTierOverrideForTest(tier)) continue;
    EXPECT_EQ(gauge.value(), static_cast<double>(static_cast<int>(tier)))
        << simd::kernelTierName(tier);
    EXPECT_EQ(simd::activeKernelTier(), tier);
  }
  simd::restoreAutoKernelTier();
  EXPECT_EQ(gauge.value(),
            static_cast<double>(static_cast<int>(simd::activeKernelTier())));
}

TEST(SimdKernelDispatch, OverrideRejectsUnsupportedTiers) {
  // On hosts lacking a tier the override must refuse and leave dispatch
  // unchanged (the sweep tests rely on this to skip safely).
  const KernelTier before = simd::activeKernelTier();
  for (KernelTier tier : allTiers()) {
    if (simd::kernelTierSupported(tier)) continue;
    EXPECT_FALSE(simd::setKernelTierOverrideForTest(tier));
    EXPECT_EQ(simd::activeKernelTier(), before);
  }
  simd::restoreAutoKernelTier();
}

}  // namespace
}  // namespace bf::text
