// Tests for text normalization (paper S4.1 step S1).
#include <gtest/gtest.h>

#include "text/normalizer.h"

namespace bf::text {
namespace {

TEST(Normalizer, PaperExample) {
  // "Hello World!" is transformed to "helloworld" (S4.1).
  EXPECT_EQ(normalize("Hello World!").text, "helloworld");
}

TEST(Normalizer, DropsPunctuationAndWhitespace) {
  EXPECT_EQ(normalize("a, b; c.\td\ne").text, "abcde");
}

TEST(Normalizer, KeepsDigits) {
  EXPECT_EQ(normalize("MySQL 5.1").text, "mysql51");
}

TEST(Normalizer, EmptyInput) {
  const auto n = normalize("");
  EXPECT_TRUE(n.empty());
  EXPECT_TRUE(n.originalOffset.empty());
}

TEST(Normalizer, PunctuationOnlyInput) {
  EXPECT_TRUE(normalize("!!! ... ???").empty());
}

TEST(Normalizer, OffsetsPointToOriginalBytes) {
  const std::string input = "Ab, c!";
  const auto n = normalize(input);
  ASSERT_EQ(n.text, "abc");
  ASSERT_EQ(n.originalOffset.size(), 3u);
  EXPECT_EQ(input[n.originalOffset[0]], 'A');
  EXPECT_EQ(input[n.originalOffset[1]], 'b');
  EXPECT_EQ(input[n.originalOffset[2]], 'c');
}

TEST(Normalizer, IdempotentOnNormalizedText) {
  const auto once = normalize("The Quick, Brown Fox!");
  const auto twice = normalize(once.text);
  EXPECT_EQ(once.text, twice.text);
}

TEST(Normalizer, NonAsciiBytesPassThrough) {
  // UTF-8 text keeps its bytes so non-English content fingerprints.
  const std::string utf8 = "caf\xc3\xa9";
  const auto n = normalize(utf8);
  EXPECT_EQ(n.text, "caf\xc3\xa9");
}

TEST(Normalizer, CaseInsensitive) {
  EXPECT_EQ(normalize("ABCdef").text, normalize("abcDEF").text);
}

}  // namespace
}  // namespace bf::text
