// Tests for the Aho-Corasick multi-pattern matcher.
#include <gtest/gtest.h>

#include "text/aho_corasick.h"
#include "util/rng.h"

namespace bf::text {
namespace {

TEST(AhoCorasick, EmptyAutomatonMatchesNothing) {
  AhoCorasick ac;
  EXPECT_FALSE(ac.containsAny("anything at all"));
  EXPECT_TRUE(ac.findAll("anything").empty());
  EXPECT_EQ(ac.patternCount(), 0u);
}

TEST(AhoCorasick, SinglePattern) {
  AhoCorasick ac;
  ac.addPattern("needle", 1);
  EXPECT_TRUE(ac.containsAny("hay needle hay"));
  EXPECT_FALSE(ac.containsAny("haystack only"));
  const auto matches = ac.findAll("needle at start, needle at end needle");
  EXPECT_EQ(matches.size(), 3u);
}

TEST(AhoCorasick, MatchPositionsAndLengths) {
  AhoCorasick ac;
  ac.addPattern("abc", 7);
  const auto matches = ac.findAll("xxabcxx");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].id, 7u);
  EXPECT_EQ(matches[0].end, 5u);
  EXPECT_EQ(matches[0].length, 3u);
}

TEST(AhoCorasick, OverlappingPatterns) {
  AhoCorasick ac;
  ac.addPattern("he", 1);
  ac.addPattern("she", 2);
  ac.addPattern("hers", 3);
  ac.addPattern("his", 4);
  const auto matches = ac.findAll("ushers");
  // "ushers" contains "she" (ends 4), "he" (ends 4), "hers" (ends 6).
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].id, 2u);
  EXPECT_EQ(matches[1].id, 1u);
  EXPECT_EQ(matches[2].id, 3u);
}

TEST(AhoCorasick, PatternInsidePattern) {
  AhoCorasick ac;
  ac.addPattern("issi", 1);
  ac.addPattern("mississippi", 2);
  const auto matches = ac.findAll("mississippi");
  // "issi" at ends 5 and 8, plus the whole word.
  EXPECT_EQ(matches.size(), 3u);
}

TEST(AhoCorasick, EmptyPatternIgnored) {
  AhoCorasick ac;
  ac.addPattern("", 1);
  EXPECT_EQ(ac.patternCount(), 0u);
  EXPECT_FALSE(ac.containsAny("abc"));
}

TEST(AhoCorasick, BinaryBytesSupported) {
  AhoCorasick ac;
  const std::string pattern("\x00\xff\x80", 3);
  ac.addPattern(pattern, 9);
  const std::string hay = std::string("aa") + pattern + "bb";
  EXPECT_TRUE(ac.containsAny(hay));
}

TEST(AhoCorasick, AddAfterSearchRebuilds) {
  AhoCorasick ac;
  ac.addPattern("first", 1);
  EXPECT_TRUE(ac.containsAny("the first one"));
  ac.addPattern("second", 2);  // triggers rebuild on next search
  EXPECT_TRUE(ac.containsAny("the second one"));
  EXPECT_TRUE(ac.containsAny("the first one"));
}

TEST(AhoCorasick, ManyPatternsStressAgainstNaiveSearch) {
  util::Rng rng(17);
  std::vector<std::string> patterns;
  AhoCorasick ac;
  for (int i = 0; i < 50; ++i) {
    std::string p;
    const std::size_t len = rng.uniform(3, 8);
    for (std::size_t k = 0; k < len; ++k) {
      p.push_back(static_cast<char>('a' + rng.uniform(0, 3)));  // tiny alphabet
    }
    patterns.push_back(p);
    ac.addPattern(p, static_cast<std::uint64_t>(i));
  }
  std::string hay;
  for (int k = 0; k < 2000; ++k) {
    hay.push_back(static_cast<char>('a' + rng.uniform(0, 3)));
  }
  // Count matches naively and compare.
  std::size_t naive = 0;
  for (const auto& p : patterns) {
    for (std::size_t pos = hay.find(p); pos != std::string::npos;
         pos = hay.find(p, pos + 1)) {
      ++naive;
    }
  }
  EXPECT_EQ(ac.findAll(hay).size(), naive);
}

}  // namespace
}  // namespace bf::text
