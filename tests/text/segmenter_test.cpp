// Tests for paragraph segmentation.
#include <gtest/gtest.h>

#include "text/segmenter.h"

namespace bf::text {
namespace {

TEST(Segmenter, SplitsOnBlankLines) {
  const auto paras = segmentParagraphs("one\n\ntwo\n\nthree");
  ASSERT_EQ(paras.size(), 3u);
  EXPECT_EQ(paras[0].text, "one");
  EXPECT_EQ(paras[1].text, "two");
  EXPECT_EQ(paras[2].text, "three");
}

TEST(Segmenter, IndicesAreConsecutive) {
  const auto paras = segmentParagraphs("a\n\nb\n\nc");
  for (std::size_t i = 0; i < paras.size(); ++i) {
    EXPECT_EQ(paras[i].index, i);
  }
}

TEST(Segmenter, OffsetsPointIntoDocument) {
  const std::string doc = "alpha\n\nbeta gamma";
  const auto paras = segmentParagraphs(doc);
  ASSERT_EQ(paras.size(), 2u);
  EXPECT_EQ(doc.substr(paras[1].offset, 4), "beta");
}

TEST(Segmenter, EmptyDocument) {
  EXPECT_TRUE(segmentParagraphs("").empty());
}

TEST(Segmenter, WhitespaceOnlyBlocksDropped) {
  const auto paras = segmentParagraphs("a\n\n   \n\nb");
  EXPECT_EQ(paras.size(), 2u);
}

TEST(Segmenter, MultilineParagraphStaysTogether) {
  const auto paras = segmentParagraphs("line one\nline two\n\nnext");
  ASSERT_EQ(paras.size(), 2u);
  EXPECT_EQ(paras[0].text, "line one\nline two");
}

}  // namespace
}  // namespace bf::text
