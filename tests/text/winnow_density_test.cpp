// Property sweep: winnowing fingerprint density. The winnowing paper
// proves expected density 2/(w+1) for random input, where w is the number
// of hashes per window; the fingerprint size drives both memory and
// disclosure-metric resolution, so the implementation must stay close.
#include <gtest/gtest.h>

#include "text/winnower.h"
#include "util/rng.h"

namespace bf::text {
namespace {

class WinnowDensity
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(WinnowDensity, MatchesTheoreticalDensity) {
  const auto [ngram, window] = GetParam();
  FingerprintConfig config;
  config.ngramChars = ngram;
  config.windowChars = window;
  config.hashBits = 64;  // avoid truncation-induced duplicate collapse

  util::Rng rng(ngram * 7919 + window);
  std::string text;
  const std::size_t n = 60000;
  text.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    text.push_back(static_cast<char>('a' + rng.uniform(0, 25)));
  }

  const Fingerprint fp = fingerprintText(text, config);
  const double w = static_cast<double>(config.windowHashes());
  const double expected = 2.0 / (w + 1.0);
  const double actual = static_cast<double>(fp.grams().size()) /
                        static_cast<double>(n - ngram + 1);
  // Robust winnowing's tie-break lowers density slightly below 2/(w+1);
  // allow 25% relative slack either way.
  EXPECT_GT(actual, expected * 0.75)
      << "density " << actual << " vs expected " << expected;
  EXPECT_LT(actual, expected * 1.25)
      << "density " << actual << " vs expected " << expected;
}

INSTANTIATE_TEST_SUITE_P(
    WindowSweep, WinnowDensity,
    ::testing::Values(std::make_tuple(8, 16), std::make_tuple(15, 30),
                      std::make_tuple(15, 45), std::make_tuple(15, 60),
                      std::make_tuple(20, 80), std::make_tuple(30, 60)));

}  // namespace
}  // namespace bf::text
