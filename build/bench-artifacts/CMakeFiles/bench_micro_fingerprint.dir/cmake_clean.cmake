file(REMOVE_RECURSE
  "../bench/bench_micro_fingerprint"
  "../bench/bench_micro_fingerprint.pdb"
  "CMakeFiles/bench_micro_fingerprint.dir/bench_micro_fingerprint.cpp.o"
  "CMakeFiles/bench_micro_fingerprint.dir/bench_micro_fingerprint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
