# Empty compiler generated dependencies file for bench_micro_fingerprint.
# This may be replaced when dependencies are built.
