# Empty compiler generated dependencies file for bench_baseline_dlp.
# This may be replaced when dependencies are built.
