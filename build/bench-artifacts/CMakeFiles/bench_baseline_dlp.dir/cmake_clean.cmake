file(REMOVE_RECURSE
  "../bench/bench_baseline_dlp"
  "../bench/bench_baseline_dlp.pdb"
  "CMakeFiles/bench_baseline_dlp.dir/bench_baseline_dlp.cpp.o"
  "CMakeFiles/bench_baseline_dlp.dir/bench_baseline_dlp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_dlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
