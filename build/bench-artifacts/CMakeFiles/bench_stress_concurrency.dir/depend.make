# Empty dependencies file for bench_stress_concurrency.
# This may be replaced when dependencies are built.
