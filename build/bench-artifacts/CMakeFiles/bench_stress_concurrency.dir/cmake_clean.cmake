file(REMOVE_RECURSE
  "../bench/bench_stress_concurrency"
  "../bench/bench_stress_concurrency.pdb"
  "CMakeFiles/bench_stress_concurrency.dir/bench_stress_concurrency.cpp.o"
  "CMakeFiles/bench_stress_concurrency.dir/bench_stress_concurrency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stress_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
