file(REMOVE_RECURSE
  "../bench/bench_fig9_wikipedia"
  "../bench/bench_fig9_wikipedia.pdb"
  "CMakeFiles/bench_fig9_wikipedia.dir/bench_fig9_wikipedia.cpp.o"
  "CMakeFiles/bench_fig9_wikipedia.dir/bench_fig9_wikipedia.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_wikipedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
