# Empty dependencies file for bench_fig10_manuals.
# This may be replaced when dependencies are built.
