file(REMOVE_RECURSE
  "../bench/bench_fig10_manuals"
  "../bench/bench_fig10_manuals.pdb"
  "CMakeFiles/bench_fig10_manuals.dir/bench_fig10_manuals.cpp.o"
  "CMakeFiles/bench_fig10_manuals.dir/bench_fig10_manuals.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_manuals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
