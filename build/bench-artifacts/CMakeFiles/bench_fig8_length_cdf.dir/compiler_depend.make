# Empty compiler generated dependencies file for bench_fig8_length_cdf.
# This may be replaced when dependencies are built.
