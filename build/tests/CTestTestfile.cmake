# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/tdm_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/browser_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
