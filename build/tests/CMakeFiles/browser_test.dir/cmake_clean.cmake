file(REMOVE_RECURSE
  "CMakeFiles/browser_test.dir/browser/dom_test.cpp.o"
  "CMakeFiles/browser_test.dir/browser/dom_test.cpp.o.d"
  "CMakeFiles/browser_test.dir/browser/forms_test.cpp.o"
  "CMakeFiles/browser_test.dir/browser/forms_test.cpp.o.d"
  "CMakeFiles/browser_test.dir/browser/html_parser_test.cpp.o"
  "CMakeFiles/browser_test.dir/browser/html_parser_test.cpp.o.d"
  "CMakeFiles/browser_test.dir/browser/mutation_observer_test.cpp.o"
  "CMakeFiles/browser_test.dir/browser/mutation_observer_test.cpp.o.d"
  "CMakeFiles/browser_test.dir/browser/readability_test.cpp.o"
  "CMakeFiles/browser_test.dir/browser/readability_test.cpp.o.d"
  "CMakeFiles/browser_test.dir/browser/xhr_test.cpp.o"
  "CMakeFiles/browser_test.dir/browser/xhr_test.cpp.o.d"
  "browser_test"
  "browser_test.pdb"
  "browser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
