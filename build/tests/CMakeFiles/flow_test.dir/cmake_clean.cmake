file(REMOVE_RECURSE
  "CMakeFiles/flow_test.dir/flow/attribution_test.cpp.o"
  "CMakeFiles/flow_test.dir/flow/attribution_test.cpp.o.d"
  "CMakeFiles/flow_test.dir/flow/disclosure_test.cpp.o"
  "CMakeFiles/flow_test.dir/flow/disclosure_test.cpp.o.d"
  "CMakeFiles/flow_test.dir/flow/hash_db_test.cpp.o"
  "CMakeFiles/flow_test.dir/flow/hash_db_test.cpp.o.d"
  "CMakeFiles/flow_test.dir/flow/segment_db_test.cpp.o"
  "CMakeFiles/flow_test.dir/flow/segment_db_test.cpp.o.d"
  "CMakeFiles/flow_test.dir/flow/snapshot_config_sweep_test.cpp.o"
  "CMakeFiles/flow_test.dir/flow/snapshot_config_sweep_test.cpp.o.d"
  "CMakeFiles/flow_test.dir/flow/snapshot_test.cpp.o"
  "CMakeFiles/flow_test.dir/flow/snapshot_test.cpp.o.d"
  "CMakeFiles/flow_test.dir/flow/tracker_properties_test.cpp.o"
  "CMakeFiles/flow_test.dir/flow/tracker_properties_test.cpp.o.d"
  "CMakeFiles/flow_test.dir/flow/tracker_test.cpp.o"
  "CMakeFiles/flow_test.dir/flow/tracker_test.cpp.o.d"
  "flow_test"
  "flow_test.pdb"
  "flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
