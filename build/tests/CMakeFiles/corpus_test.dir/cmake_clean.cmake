file(REMOVE_RECURSE
  "CMakeFiles/corpus_test.dir/corpus/datasets_test.cpp.o"
  "CMakeFiles/corpus_test.dir/corpus/datasets_test.cpp.o.d"
  "CMakeFiles/corpus_test.dir/corpus/revision_model_test.cpp.o"
  "CMakeFiles/corpus_test.dir/corpus/revision_model_test.cpp.o.d"
  "CMakeFiles/corpus_test.dir/corpus/text_generator_test.cpp.o"
  "CMakeFiles/corpus_test.dir/corpus/text_generator_test.cpp.o.d"
  "corpus_test"
  "corpus_test.pdb"
  "corpus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
