file(REMOVE_RECURSE
  "CMakeFiles/tdm_test.dir/tdm/label_refresh_test.cpp.o"
  "CMakeFiles/tdm_test.dir/tdm/label_refresh_test.cpp.o.d"
  "CMakeFiles/tdm_test.dir/tdm/label_test.cpp.o"
  "CMakeFiles/tdm_test.dir/tdm/label_test.cpp.o.d"
  "CMakeFiles/tdm_test.dir/tdm/policy_snapshot_test.cpp.o"
  "CMakeFiles/tdm_test.dir/tdm/policy_snapshot_test.cpp.o.d"
  "CMakeFiles/tdm_test.dir/tdm/policy_test.cpp.o"
  "CMakeFiles/tdm_test.dir/tdm/policy_test.cpp.o.d"
  "CMakeFiles/tdm_test.dir/tdm/tag_set_test.cpp.o"
  "CMakeFiles/tdm_test.dir/tdm/tag_set_test.cpp.o.d"
  "tdm_test"
  "tdm_test.pdb"
  "tdm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
