# Empty compiler generated dependencies file for tdm_test.
# This may be replaced when dependencies are built.
