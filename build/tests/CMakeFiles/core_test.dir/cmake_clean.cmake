file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/decision_engine_test.cpp.o"
  "CMakeFiles/core_test.dir/core/decision_engine_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/deployment_test.cpp.o"
  "CMakeFiles/core_test.dir/core/deployment_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/engine_document_test.cpp.o"
  "CMakeFiles/core_test.dir/core/engine_document_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/plugin_test.cpp.o"
  "CMakeFiles/core_test.dir/core/plugin_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/policy_config_test.cpp.o"
  "CMakeFiles/core_test.dir/core/policy_config_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/secret_guard_test.cpp.o"
  "CMakeFiles/core_test.dir/core/secret_guard_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/service_adapter_test.cpp.o"
  "CMakeFiles/core_test.dir/core/service_adapter_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/upload_paths_test.cpp.o"
  "CMakeFiles/core_test.dir/core/upload_paths_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
