file(REMOVE_RECURSE
  "CMakeFiles/text_test.dir/text/aho_corasick_test.cpp.o"
  "CMakeFiles/text_test.dir/text/aho_corasick_test.cpp.o.d"
  "CMakeFiles/text_test.dir/text/fingerprint_test.cpp.o"
  "CMakeFiles/text_test.dir/text/fingerprint_test.cpp.o.d"
  "CMakeFiles/text_test.dir/text/ngram_hasher_test.cpp.o"
  "CMakeFiles/text_test.dir/text/ngram_hasher_test.cpp.o.d"
  "CMakeFiles/text_test.dir/text/normalizer_test.cpp.o"
  "CMakeFiles/text_test.dir/text/normalizer_test.cpp.o.d"
  "CMakeFiles/text_test.dir/text/segmenter_test.cpp.o"
  "CMakeFiles/text_test.dir/text/segmenter_test.cpp.o.d"
  "CMakeFiles/text_test.dir/text/winnow_density_test.cpp.o"
  "CMakeFiles/text_test.dir/text/winnow_density_test.cpp.o.d"
  "CMakeFiles/text_test.dir/text/winnower_test.cpp.o"
  "CMakeFiles/text_test.dir/text/winnower_test.cpp.o.d"
  "text_test"
  "text_test.pdb"
  "text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
