# Empty compiler generated dependencies file for interview_workflow.
# This may be replaced when dependencies are built.
