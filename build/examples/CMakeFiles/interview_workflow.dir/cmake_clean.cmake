file(REMOVE_RECURSE
  "CMakeFiles/interview_workflow.dir/interview_workflow.cpp.o"
  "CMakeFiles/interview_workflow.dir/interview_workflow.cpp.o.d"
  "interview_workflow"
  "interview_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interview_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
