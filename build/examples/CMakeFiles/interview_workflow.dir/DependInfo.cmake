
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/interview_workflow.cpp" "examples/CMakeFiles/interview_workflow.dir/interview_workflow.cpp.o" "gcc" "examples/CMakeFiles/interview_workflow.dir/interview_workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/bf_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/bf_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/bf_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/tdm/CMakeFiles/bf_tdm.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/bf_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bf_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/bf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
