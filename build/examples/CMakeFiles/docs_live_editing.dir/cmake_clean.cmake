file(REMOVE_RECURSE
  "CMakeFiles/docs_live_editing.dir/docs_live_editing.cpp.o"
  "CMakeFiles/docs_live_editing.dir/docs_live_editing.cpp.o.d"
  "docs_live_editing"
  "docs_live_editing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docs_live_editing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
