# Empty compiler generated dependencies file for docs_live_editing.
# This may be replaced when dependencies are built.
