file(REMOVE_RECURSE
  "CMakeFiles/enterprise_deployment.dir/enterprise_deployment.cpp.o"
  "CMakeFiles/enterprise_deployment.dir/enterprise_deployment.cpp.o.d"
  "enterprise_deployment"
  "enterprise_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
