# Empty dependencies file for bfscan.
# This may be replaced when dependencies are built.
