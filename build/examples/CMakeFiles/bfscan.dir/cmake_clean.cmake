file(REMOVE_RECURSE
  "CMakeFiles/bfscan.dir/bfscan.cpp.o"
  "CMakeFiles/bfscan.dir/bfscan.cpp.o.d"
  "bfscan"
  "bfscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
