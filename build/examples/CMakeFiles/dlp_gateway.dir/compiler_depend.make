# Empty compiler generated dependencies file for dlp_gateway.
# This may be replaced when dependencies are built.
