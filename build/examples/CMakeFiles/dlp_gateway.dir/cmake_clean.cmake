file(REMOVE_RECURSE
  "CMakeFiles/dlp_gateway.dir/dlp_gateway.cpp.o"
  "CMakeFiles/dlp_gateway.dir/dlp_gateway.cpp.o.d"
  "dlp_gateway"
  "dlp_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
