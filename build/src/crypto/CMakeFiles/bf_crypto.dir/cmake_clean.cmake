file(REMOVE_RECURSE
  "CMakeFiles/bf_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/bf_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/bf_crypto.dir/sealer.cpp.o"
  "CMakeFiles/bf_crypto.dir/sealer.cpp.o.d"
  "libbf_crypto.a"
  "libbf_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
