# Empty compiler generated dependencies file for bf_crypto.
# This may be replaced when dependencies are built.
