file(REMOVE_RECURSE
  "libbf_crypto.a"
)
