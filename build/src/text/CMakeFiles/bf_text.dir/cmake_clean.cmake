file(REMOVE_RECURSE
  "CMakeFiles/bf_text.dir/aho_corasick.cpp.o"
  "CMakeFiles/bf_text.dir/aho_corasick.cpp.o.d"
  "CMakeFiles/bf_text.dir/fingerprint.cpp.o"
  "CMakeFiles/bf_text.dir/fingerprint.cpp.o.d"
  "CMakeFiles/bf_text.dir/ngram_hasher.cpp.o"
  "CMakeFiles/bf_text.dir/ngram_hasher.cpp.o.d"
  "CMakeFiles/bf_text.dir/normalizer.cpp.o"
  "CMakeFiles/bf_text.dir/normalizer.cpp.o.d"
  "CMakeFiles/bf_text.dir/segmenter.cpp.o"
  "CMakeFiles/bf_text.dir/segmenter.cpp.o.d"
  "CMakeFiles/bf_text.dir/winnower.cpp.o"
  "CMakeFiles/bf_text.dir/winnower.cpp.o.d"
  "libbf_text.a"
  "libbf_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
