# Empty dependencies file for bf_text.
# This may be replaced when dependencies are built.
