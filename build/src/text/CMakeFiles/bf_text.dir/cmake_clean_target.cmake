file(REMOVE_RECURSE
  "libbf_text.a"
)
