
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/aho_corasick.cpp" "src/text/CMakeFiles/bf_text.dir/aho_corasick.cpp.o" "gcc" "src/text/CMakeFiles/bf_text.dir/aho_corasick.cpp.o.d"
  "/root/repo/src/text/fingerprint.cpp" "src/text/CMakeFiles/bf_text.dir/fingerprint.cpp.o" "gcc" "src/text/CMakeFiles/bf_text.dir/fingerprint.cpp.o.d"
  "/root/repo/src/text/ngram_hasher.cpp" "src/text/CMakeFiles/bf_text.dir/ngram_hasher.cpp.o" "gcc" "src/text/CMakeFiles/bf_text.dir/ngram_hasher.cpp.o.d"
  "/root/repo/src/text/normalizer.cpp" "src/text/CMakeFiles/bf_text.dir/normalizer.cpp.o" "gcc" "src/text/CMakeFiles/bf_text.dir/normalizer.cpp.o.d"
  "/root/repo/src/text/segmenter.cpp" "src/text/CMakeFiles/bf_text.dir/segmenter.cpp.o" "gcc" "src/text/CMakeFiles/bf_text.dir/segmenter.cpp.o.d"
  "/root/repo/src/text/winnower.cpp" "src/text/CMakeFiles/bf_text.dir/winnower.cpp.o" "gcc" "src/text/CMakeFiles/bf_text.dir/winnower.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
