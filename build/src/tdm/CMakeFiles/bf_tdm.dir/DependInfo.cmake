
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tdm/audit.cpp" "src/tdm/CMakeFiles/bf_tdm.dir/audit.cpp.o" "gcc" "src/tdm/CMakeFiles/bf_tdm.dir/audit.cpp.o.d"
  "/root/repo/src/tdm/label.cpp" "src/tdm/CMakeFiles/bf_tdm.dir/label.cpp.o" "gcc" "src/tdm/CMakeFiles/bf_tdm.dir/label.cpp.o.d"
  "/root/repo/src/tdm/policy.cpp" "src/tdm/CMakeFiles/bf_tdm.dir/policy.cpp.o" "gcc" "src/tdm/CMakeFiles/bf_tdm.dir/policy.cpp.o.d"
  "/root/repo/src/tdm/policy_snapshot.cpp" "src/tdm/CMakeFiles/bf_tdm.dir/policy_snapshot.cpp.o" "gcc" "src/tdm/CMakeFiles/bf_tdm.dir/policy_snapshot.cpp.o.d"
  "/root/repo/src/tdm/service_registry.cpp" "src/tdm/CMakeFiles/bf_tdm.dir/service_registry.cpp.o" "gcc" "src/tdm/CMakeFiles/bf_tdm.dir/service_registry.cpp.o.d"
  "/root/repo/src/tdm/tag_set.cpp" "src/tdm/CMakeFiles/bf_tdm.dir/tag_set.cpp.o" "gcc" "src/tdm/CMakeFiles/bf_tdm.dir/tag_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
