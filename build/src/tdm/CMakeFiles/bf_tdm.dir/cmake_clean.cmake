file(REMOVE_RECURSE
  "CMakeFiles/bf_tdm.dir/audit.cpp.o"
  "CMakeFiles/bf_tdm.dir/audit.cpp.o.d"
  "CMakeFiles/bf_tdm.dir/label.cpp.o"
  "CMakeFiles/bf_tdm.dir/label.cpp.o.d"
  "CMakeFiles/bf_tdm.dir/policy.cpp.o"
  "CMakeFiles/bf_tdm.dir/policy.cpp.o.d"
  "CMakeFiles/bf_tdm.dir/policy_snapshot.cpp.o"
  "CMakeFiles/bf_tdm.dir/policy_snapshot.cpp.o.d"
  "CMakeFiles/bf_tdm.dir/service_registry.cpp.o"
  "CMakeFiles/bf_tdm.dir/service_registry.cpp.o.d"
  "CMakeFiles/bf_tdm.dir/tag_set.cpp.o"
  "CMakeFiles/bf_tdm.dir/tag_set.cpp.o.d"
  "libbf_tdm.a"
  "libbf_tdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_tdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
