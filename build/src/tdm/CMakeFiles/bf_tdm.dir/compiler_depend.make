# Empty compiler generated dependencies file for bf_tdm.
# This may be replaced when dependencies are built.
