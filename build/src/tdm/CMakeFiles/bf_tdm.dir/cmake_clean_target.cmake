file(REMOVE_RECURSE
  "libbf_tdm.a"
)
