file(REMOVE_RECURSE
  "CMakeFiles/bf_cloud.dir/dlp_appliance.cpp.o"
  "CMakeFiles/bf_cloud.dir/dlp_appliance.cpp.o.d"
  "CMakeFiles/bf_cloud.dir/docs_backend.cpp.o"
  "CMakeFiles/bf_cloud.dir/docs_backend.cpp.o.d"
  "CMakeFiles/bf_cloud.dir/docs_client.cpp.o"
  "CMakeFiles/bf_cloud.dir/docs_client.cpp.o.d"
  "CMakeFiles/bf_cloud.dir/form_backend.cpp.o"
  "CMakeFiles/bf_cloud.dir/form_backend.cpp.o.d"
  "CMakeFiles/bf_cloud.dir/network.cpp.o"
  "CMakeFiles/bf_cloud.dir/network.cpp.o.d"
  "CMakeFiles/bf_cloud.dir/notes_client.cpp.o"
  "CMakeFiles/bf_cloud.dir/notes_client.cpp.o.d"
  "CMakeFiles/bf_cloud.dir/wiki_client.cpp.o"
  "CMakeFiles/bf_cloud.dir/wiki_client.cpp.o.d"
  "libbf_cloud.a"
  "libbf_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
