# Empty compiler generated dependencies file for bf_cloud.
# This may be replaced when dependencies are built.
