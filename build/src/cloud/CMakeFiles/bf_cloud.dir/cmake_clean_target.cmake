file(REMOVE_RECURSE
  "libbf_cloud.a"
)
