
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/dlp_appliance.cpp" "src/cloud/CMakeFiles/bf_cloud.dir/dlp_appliance.cpp.o" "gcc" "src/cloud/CMakeFiles/bf_cloud.dir/dlp_appliance.cpp.o.d"
  "/root/repo/src/cloud/docs_backend.cpp" "src/cloud/CMakeFiles/bf_cloud.dir/docs_backend.cpp.o" "gcc" "src/cloud/CMakeFiles/bf_cloud.dir/docs_backend.cpp.o.d"
  "/root/repo/src/cloud/docs_client.cpp" "src/cloud/CMakeFiles/bf_cloud.dir/docs_client.cpp.o" "gcc" "src/cloud/CMakeFiles/bf_cloud.dir/docs_client.cpp.o.d"
  "/root/repo/src/cloud/form_backend.cpp" "src/cloud/CMakeFiles/bf_cloud.dir/form_backend.cpp.o" "gcc" "src/cloud/CMakeFiles/bf_cloud.dir/form_backend.cpp.o.d"
  "/root/repo/src/cloud/network.cpp" "src/cloud/CMakeFiles/bf_cloud.dir/network.cpp.o" "gcc" "src/cloud/CMakeFiles/bf_cloud.dir/network.cpp.o.d"
  "/root/repo/src/cloud/notes_client.cpp" "src/cloud/CMakeFiles/bf_cloud.dir/notes_client.cpp.o" "gcc" "src/cloud/CMakeFiles/bf_cloud.dir/notes_client.cpp.o.d"
  "/root/repo/src/cloud/wiki_client.cpp" "src/cloud/CMakeFiles/bf_cloud.dir/wiki_client.cpp.o" "gcc" "src/cloud/CMakeFiles/bf_cloud.dir/wiki_client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/browser/CMakeFiles/bf_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
