file(REMOVE_RECURSE
  "CMakeFiles/bf_flow.dir/disclosure.cpp.o"
  "CMakeFiles/bf_flow.dir/disclosure.cpp.o.d"
  "CMakeFiles/bf_flow.dir/hash_db.cpp.o"
  "CMakeFiles/bf_flow.dir/hash_db.cpp.o.d"
  "CMakeFiles/bf_flow.dir/segment_db.cpp.o"
  "CMakeFiles/bf_flow.dir/segment_db.cpp.o.d"
  "CMakeFiles/bf_flow.dir/snapshot.cpp.o"
  "CMakeFiles/bf_flow.dir/snapshot.cpp.o.d"
  "CMakeFiles/bf_flow.dir/tracker.cpp.o"
  "CMakeFiles/bf_flow.dir/tracker.cpp.o.d"
  "libbf_flow.a"
  "libbf_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
