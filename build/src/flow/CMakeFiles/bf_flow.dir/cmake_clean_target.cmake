file(REMOVE_RECURSE
  "libbf_flow.a"
)
