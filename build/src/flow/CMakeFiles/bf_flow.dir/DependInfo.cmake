
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/disclosure.cpp" "src/flow/CMakeFiles/bf_flow.dir/disclosure.cpp.o" "gcc" "src/flow/CMakeFiles/bf_flow.dir/disclosure.cpp.o.d"
  "/root/repo/src/flow/hash_db.cpp" "src/flow/CMakeFiles/bf_flow.dir/hash_db.cpp.o" "gcc" "src/flow/CMakeFiles/bf_flow.dir/hash_db.cpp.o.d"
  "/root/repo/src/flow/segment_db.cpp" "src/flow/CMakeFiles/bf_flow.dir/segment_db.cpp.o" "gcc" "src/flow/CMakeFiles/bf_flow.dir/segment_db.cpp.o.d"
  "/root/repo/src/flow/snapshot.cpp" "src/flow/CMakeFiles/bf_flow.dir/snapshot.cpp.o" "gcc" "src/flow/CMakeFiles/bf_flow.dir/snapshot.cpp.o.d"
  "/root/repo/src/flow/tracker.cpp" "src/flow/CMakeFiles/bf_flow.dir/tracker.cpp.o" "gcc" "src/flow/CMakeFiles/bf_flow.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/bf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bf_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
