# Empty compiler generated dependencies file for bf_flow.
# This may be replaced when dependencies are built.
