file(REMOVE_RECURSE
  "CMakeFiles/bf_core.dir/decision_engine.cpp.o"
  "CMakeFiles/bf_core.dir/decision_engine.cpp.o.d"
  "CMakeFiles/bf_core.dir/deployment.cpp.o"
  "CMakeFiles/bf_core.dir/deployment.cpp.o.d"
  "CMakeFiles/bf_core.dir/plugin.cpp.o"
  "CMakeFiles/bf_core.dir/plugin.cpp.o.d"
  "CMakeFiles/bf_core.dir/policy_config.cpp.o"
  "CMakeFiles/bf_core.dir/policy_config.cpp.o.d"
  "CMakeFiles/bf_core.dir/secret_guard.cpp.o"
  "CMakeFiles/bf_core.dir/secret_guard.cpp.o.d"
  "CMakeFiles/bf_core.dir/service_adapter.cpp.o"
  "CMakeFiles/bf_core.dir/service_adapter.cpp.o.d"
  "libbf_core.a"
  "libbf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
