
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/decision_engine.cpp" "src/core/CMakeFiles/bf_core.dir/decision_engine.cpp.o" "gcc" "src/core/CMakeFiles/bf_core.dir/decision_engine.cpp.o.d"
  "/root/repo/src/core/deployment.cpp" "src/core/CMakeFiles/bf_core.dir/deployment.cpp.o" "gcc" "src/core/CMakeFiles/bf_core.dir/deployment.cpp.o.d"
  "/root/repo/src/core/plugin.cpp" "src/core/CMakeFiles/bf_core.dir/plugin.cpp.o" "gcc" "src/core/CMakeFiles/bf_core.dir/plugin.cpp.o.d"
  "/root/repo/src/core/policy_config.cpp" "src/core/CMakeFiles/bf_core.dir/policy_config.cpp.o" "gcc" "src/core/CMakeFiles/bf_core.dir/policy_config.cpp.o.d"
  "/root/repo/src/core/secret_guard.cpp" "src/core/CMakeFiles/bf_core.dir/secret_guard.cpp.o" "gcc" "src/core/CMakeFiles/bf_core.dir/secret_guard.cpp.o.d"
  "/root/repo/src/core/service_adapter.cpp" "src/core/CMakeFiles/bf_core.dir/service_adapter.cpp.o" "gcc" "src/core/CMakeFiles/bf_core.dir/service_adapter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/bf_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/tdm/CMakeFiles/bf_tdm.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/bf_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bf_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/bf_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
