# Empty compiler generated dependencies file for bf_core.
# This may be replaced when dependencies are built.
