file(REMOVE_RECURSE
  "CMakeFiles/bf_corpus.dir/datasets.cpp.o"
  "CMakeFiles/bf_corpus.dir/datasets.cpp.o.d"
  "CMakeFiles/bf_corpus.dir/revision_model.cpp.o"
  "CMakeFiles/bf_corpus.dir/revision_model.cpp.o.d"
  "CMakeFiles/bf_corpus.dir/text_generator.cpp.o"
  "CMakeFiles/bf_corpus.dir/text_generator.cpp.o.d"
  "libbf_corpus.a"
  "libbf_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
