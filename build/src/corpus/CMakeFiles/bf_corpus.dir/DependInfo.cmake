
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/datasets.cpp" "src/corpus/CMakeFiles/bf_corpus.dir/datasets.cpp.o" "gcc" "src/corpus/CMakeFiles/bf_corpus.dir/datasets.cpp.o.d"
  "/root/repo/src/corpus/revision_model.cpp" "src/corpus/CMakeFiles/bf_corpus.dir/revision_model.cpp.o" "gcc" "src/corpus/CMakeFiles/bf_corpus.dir/revision_model.cpp.o.d"
  "/root/repo/src/corpus/text_generator.cpp" "src/corpus/CMakeFiles/bf_corpus.dir/text_generator.cpp.o" "gcc" "src/corpus/CMakeFiles/bf_corpus.dir/text_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/bf_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
