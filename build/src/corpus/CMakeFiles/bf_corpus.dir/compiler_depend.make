# Empty compiler generated dependencies file for bf_corpus.
# This may be replaced when dependencies are built.
