file(REMOVE_RECURSE
  "libbf_corpus.a"
)
