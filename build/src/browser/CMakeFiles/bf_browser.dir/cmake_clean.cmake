file(REMOVE_RECURSE
  "CMakeFiles/bf_browser.dir/browser.cpp.o"
  "CMakeFiles/bf_browser.dir/browser.cpp.o.d"
  "CMakeFiles/bf_browser.dir/dom.cpp.o"
  "CMakeFiles/bf_browser.dir/dom.cpp.o.d"
  "CMakeFiles/bf_browser.dir/forms.cpp.o"
  "CMakeFiles/bf_browser.dir/forms.cpp.o.d"
  "CMakeFiles/bf_browser.dir/html_parser.cpp.o"
  "CMakeFiles/bf_browser.dir/html_parser.cpp.o.d"
  "CMakeFiles/bf_browser.dir/mutation_observer.cpp.o"
  "CMakeFiles/bf_browser.dir/mutation_observer.cpp.o.d"
  "CMakeFiles/bf_browser.dir/page.cpp.o"
  "CMakeFiles/bf_browser.dir/page.cpp.o.d"
  "CMakeFiles/bf_browser.dir/readability.cpp.o"
  "CMakeFiles/bf_browser.dir/readability.cpp.o.d"
  "CMakeFiles/bf_browser.dir/xhr.cpp.o"
  "CMakeFiles/bf_browser.dir/xhr.cpp.o.d"
  "libbf_browser.a"
  "libbf_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
