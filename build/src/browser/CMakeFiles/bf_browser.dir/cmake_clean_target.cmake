file(REMOVE_RECURSE
  "libbf_browser.a"
)
