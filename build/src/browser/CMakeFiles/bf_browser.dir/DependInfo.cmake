
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/browser/browser.cpp" "src/browser/CMakeFiles/bf_browser.dir/browser.cpp.o" "gcc" "src/browser/CMakeFiles/bf_browser.dir/browser.cpp.o.d"
  "/root/repo/src/browser/dom.cpp" "src/browser/CMakeFiles/bf_browser.dir/dom.cpp.o" "gcc" "src/browser/CMakeFiles/bf_browser.dir/dom.cpp.o.d"
  "/root/repo/src/browser/forms.cpp" "src/browser/CMakeFiles/bf_browser.dir/forms.cpp.o" "gcc" "src/browser/CMakeFiles/bf_browser.dir/forms.cpp.o.d"
  "/root/repo/src/browser/html_parser.cpp" "src/browser/CMakeFiles/bf_browser.dir/html_parser.cpp.o" "gcc" "src/browser/CMakeFiles/bf_browser.dir/html_parser.cpp.o.d"
  "/root/repo/src/browser/mutation_observer.cpp" "src/browser/CMakeFiles/bf_browser.dir/mutation_observer.cpp.o" "gcc" "src/browser/CMakeFiles/bf_browser.dir/mutation_observer.cpp.o.d"
  "/root/repo/src/browser/page.cpp" "src/browser/CMakeFiles/bf_browser.dir/page.cpp.o" "gcc" "src/browser/CMakeFiles/bf_browser.dir/page.cpp.o.d"
  "/root/repo/src/browser/readability.cpp" "src/browser/CMakeFiles/bf_browser.dir/readability.cpp.o" "gcc" "src/browser/CMakeFiles/bf_browser.dir/readability.cpp.o.d"
  "/root/repo/src/browser/xhr.cpp" "src/browser/CMakeFiles/bf_browser.dir/xhr.cpp.o" "gcc" "src/browser/CMakeFiles/bf_browser.dir/xhr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
