# Empty dependencies file for bf_browser.
# This may be replaced when dependencies are built.
