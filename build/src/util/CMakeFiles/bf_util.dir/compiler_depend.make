# Empty compiler generated dependencies file for bf_util.
# This may be replaced when dependencies are built.
