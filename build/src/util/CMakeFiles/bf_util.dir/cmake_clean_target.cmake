file(REMOVE_RECURSE
  "libbf_util.a"
)
