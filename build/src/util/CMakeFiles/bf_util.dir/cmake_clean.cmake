file(REMOVE_RECURSE
  "CMakeFiles/bf_util.dir/clock.cpp.o"
  "CMakeFiles/bf_util.dir/clock.cpp.o.d"
  "CMakeFiles/bf_util.dir/hashing.cpp.o"
  "CMakeFiles/bf_util.dir/hashing.cpp.o.d"
  "CMakeFiles/bf_util.dir/json_text.cpp.o"
  "CMakeFiles/bf_util.dir/json_text.cpp.o.d"
  "CMakeFiles/bf_util.dir/logging.cpp.o"
  "CMakeFiles/bf_util.dir/logging.cpp.o.d"
  "CMakeFiles/bf_util.dir/rng.cpp.o"
  "CMakeFiles/bf_util.dir/rng.cpp.o.d"
  "CMakeFiles/bf_util.dir/strings.cpp.o"
  "CMakeFiles/bf_util.dir/strings.cpp.o.d"
  "libbf_util.a"
  "libbf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
