#include "tdm/label.h"

namespace bf::tdm {

Label Label::fromExplicit(TagSet tags) {
  Label l;
  l.explicit_ = std::move(tags);
  return l;
}

TagSet Label::effectiveTags() const {
  return explicit_.unionWith(implicit_).minus(suppressed_);
}

std::string Label::toString() const {
  std::string out = "explicit" + explicit_.toString();
  if (!implicit_.empty()) out += " implicit" + implicit_.toString();
  if (!suppressed_.empty()) out += " suppressed" + suppressed_.toString();
  return out;
}

}  // namespace bf::tdm
