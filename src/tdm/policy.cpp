#include "tdm/policy.h"

namespace bf::tdm {

const Label& TdmPolicy::onSegmentObserved(std::string_view segmentName,
                                          std::string_view serviceId) {
  const std::string name(segmentName);
  presence_[name].insert(std::string(serviceId));
  auto it = labels_.find(name);
  if (it == labels_.end()) {
    const ServiceInfo* svc = services_.find(serviceId);
    Label label = Label::fromExplicit(svc != nullptr ? svc->confidentiality
                                                     : TagSet{});
    it = labels_.emplace(name, std::move(label)).first;
  }
  return it->second;
}

const Label* TdmPolicy::labelOf(std::string_view segmentName) const {
  auto it = labels_.find(std::string(segmentName));
  return it == labels_.end() ? nullptr : &it->second;
}

std::vector<std::string> TdmPolicy::servicesStoring(
    std::string_view segmentName) const {
  std::vector<std::string> out;
  auto it = presence_.find(std::string(segmentName));
  if (it == presence_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

void TdmPolicy::forgetSegment(std::string_view segmentName) {
  labels_.erase(std::string(segmentName));
  presence_.erase(std::string(segmentName));
}

void TdmPolicy::propagateDisclosure(std::string_view sourceSegment,
                                    std::string_view destSegment) {
  auto src = labels_.find(std::string(sourceSegment));
  if (src == labels_.end()) return;
  // The destination may not have a label yet (text being typed that was
  // never uploaded); create an empty one so the implicit tags stick.
  Label& dst = labels_[std::string(destSegment)];
  dst.addImplicitAll(src->second.propagatableTags());
}

void TdmPolicy::refreshImplicitTags(
    std::string_view destSegment,
    const std::vector<std::string>& sourceSegments) {
  Label& dst = labels_[std::string(destSegment)];
  dst.clearImplicit();
  for (const std::string& src : sourceSegments) {
    auto it = labels_.find(src);
    if (it != labels_.end()) dst.addImplicitAll(it->second.propagatableTags());
  }
}

void TdmPolicy::addImplicitTag(std::string_view segmentName, const Tag& tag) {
  labels_[std::string(segmentName)].addImplicit(tag);
}

TagSet TdmPolicy::privilegeOf(std::string_view serviceId) const {
  const ServiceInfo* svc = services_.find(serviceId);
  return svc != nullptr ? svc->privilege : TagSet{};
}

UploadDecision TdmPolicy::checkUpload(std::string_view segmentName,
                                      std::string_view serviceId) const {
  const Label* label = labelOf(segmentName);
  if (label == nullptr) {
    // Never-observed segments carry no tags: public data, always allowed.
    return UploadDecision{};
  }
  return checkLabel(*label, serviceId);
}

UploadDecision TdmPolicy::checkLabel(const Label& label,
                                     std::string_view serviceId) const {
  UploadDecision out;
  out.label = label;
  const TagSet privilege = privilegeOf(serviceId);
  const TagSet effective = label.effectiveTags();
  out.allowed = effective.isSubsetOf(privilege);
  if (!out.allowed) out.violatingTags = effective.missingFrom(privilege);
  return out;
}

util::Status TdmPolicy::suppressTag(std::string_view user,
                                    std::string_view segmentName,
                                    const Tag& tag,
                                    std::string_view justification) {
  auto it = labels_.find(std::string(segmentName));
  if (it == labels_.end()) {
    return util::Status::error("unknown segment: " + std::string(segmentName));
  }
  Label& label = it->second;
  const TagSet effective = label.effectiveTags();
  if (!effective.contains(tag)) {
    return util::Status::error("tag '" + tag +
                               "' is not active on segment '" +
                               std::string(segmentName) + "'");
  }
  label.suppress(tag);
  audit_.append(AuditRecord{AuditRecord::Kind::kTagSuppressed, clock_->now(),
                            std::string(user), tag, std::string(segmentName),
                            /*service=*/"", std::string(justification)});
  return {};
}

void TdmPolicy::recordDegradedDecision(std::string_view segmentName,
                                       std::string_view serviceId,
                                       std::string_view reason) {
  audit_.append(AuditRecord{AuditRecord::Kind::kDecisionDegraded,
                            clock_->now(), /*user=*/"", /*tag=*/Tag{},
                            std::string(segmentName), std::string(serviceId),
                            std::string(reason)});
}

util::Status TdmPolicy::allocateCustomTag(std::string_view user,
                                          const Tag& tag) {
  if (customTagOwners_.count(tag) != 0) {
    return util::Status::error("custom tag already allocated: " + tag);
  }
  customTagOwners_.emplace(tag, std::string(user));
  audit_.append(AuditRecord{AuditRecord::Kind::kCustomTagAllocated,
                            clock_->now(), std::string(user), tag,
                            /*segment=*/"", /*service=*/"",
                            /*justification=*/""});
  return {};
}

util::Status TdmPolicy::addCustomTagToSegment(std::string_view user,
                                              std::string_view segmentName,
                                              const Tag& tag) {
  auto owner = customTagOwners_.find(tag);
  if (owner == customTagOwners_.end()) {
    return util::Status::error("not a custom tag: " + tag);
  }
  if (owner->second != user) {
    return util::Status::error("only the owner of '" + tag +
                               "' may attach it");
  }
  auto it = labels_.find(std::string(segmentName));
  if (it == labels_.end()) {
    return util::Status::error("unknown segment: " + std::string(segmentName));
  }
  it->second.addExplicit(tag);
  // TDM rule (S3.1): services that already store the segment receive the
  // tag in Lp so the model "does not restrict its propagation" where the
  // data already lives.
  for (const std::string& svc : servicesStoring(segmentName)) {
    services_.addPrivilegeTag(svc, tag);
    audit_.append(AuditRecord{AuditRecord::Kind::kPrivilegeChanged,
                              clock_->now(), std::string(user), tag,
                              std::string(segmentName), svc,
                              "auto-grant: service already stores segment"});
  }
  return {};
}

util::Status TdmPolicy::setServicePrivilege(std::string_view user,
                                            std::string_view serviceId,
                                            const Tag& tag, bool grant) {
  auto owner = customTagOwners_.find(tag);
  if (owner == customTagOwners_.end()) {
    return util::Status::error("not a custom tag: " + tag);
  }
  if (owner->second != user) {
    return util::Status::error("only the owner of '" + tag +
                               "' may manage privileges");
  }
  if (services_.find(serviceId) == nullptr) {
    return util::Status::error("unknown service: " + std::string(serviceId));
  }
  if (grant) {
    services_.addPrivilegeTag(serviceId, tag);
  } else {
    services_.removePrivilegeTag(serviceId, tag);
  }
  audit_.append(AuditRecord{AuditRecord::Kind::kPrivilegeChanged,
                            clock_->now(), std::string(user), tag,
                            /*segment=*/"", std::string(serviceId),
                            grant ? "grant" : "revoke"});
  return {};
}

std::string TdmPolicy::customTagOwner(const Tag& tag) const {
  auto it = customTagOwners_.find(tag);
  return it == customTagOwners_.end() ? std::string{} : it->second;
}

}  // namespace bf::tdm
