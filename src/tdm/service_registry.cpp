#include "tdm/service_registry.h"

#include <algorithm>

namespace bf::tdm {

void ServiceRegistry::upsert(ServiceInfo info) {
  services_[info.id] = std::move(info);
}

const ServiceInfo* ServiceRegistry::find(std::string_view id) const {
  auto it = services_.find(std::string(id));
  return it == services_.end() ? nullptr : &it->second;
}

void ServiceRegistry::addPrivilegeTag(std::string_view serviceId,
                                      const Tag& tag) {
  auto it = services_.find(std::string(serviceId));
  if (it != services_.end()) it->second.privilege.insert(tag);
}

void ServiceRegistry::removePrivilegeTag(std::string_view serviceId,
                                         const Tag& tag) {
  auto it = services_.find(std::string(serviceId));
  if (it != services_.end()) it->second.privilege.erase(tag);
}

std::vector<std::string> ServiceRegistry::serviceIds() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [id, info] : services_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bf::tdm
