// TdmPolicy — the Text Disclosure Model policy engine (paper S3).
//
// Combines the service registry (Lp/Lc), per-segment labels, user
// declassification (tag suppression), custom tag allocation and the audit
// log. The flow rule enforced on every upload:
//
//   "A text segment with label Li should be released to a service with
//    privilege label Lp only if Li ⊆ Lp."
//
// This module is deliberately independent of the similarity tracker: it
// reasons purely over labels. The core plug-in connects the two by calling
// propagateDisclosure() whenever the FlowTracker detects that one segment
// discloses another.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tdm/audit.h"
#include "tdm/label.h"
#include "tdm/service_registry.h"
#include "util/clock.h"
#include "util/result.h"

namespace bf::tdm {

/// Result of checking a (label, destination service) pair.
struct UploadDecision {
  /// True iff effective(label) ⊆ Lp(service).
  bool allowed = true;
  /// The effective tags missing from the service's privilege label — the
  /// tags the user would have to suppress to proceed.
  std::vector<Tag> violatingTags;
  /// The label that was checked (after suppressions).
  Label label;
};

class TdmPolicy {
 public:
  /// `clock` stamps audit records; not owned.
  explicit TdmPolicy(util::Clock* clock) : clock_(clock) {}

  /// Administrator-facing service configuration.
  [[nodiscard]] ServiceRegistry& services() noexcept { return services_; }
  [[nodiscard]] const ServiceRegistry& services() const noexcept {
    return services_;
  }

  // ---- Segment label lifecycle --------------------------------------------

  /// Called when a segment is first observed in a service: assigns the
  /// service's confidentiality label Lc as the segment's explicit tags
  /// (paper S3.1, step 1 of Fig. 3) and records the segment's presence in
  /// that service. If the segment already has a label, only presence is
  /// recorded. Returns the (possibly pre-existing) label.
  const Label& onSegmentObserved(std::string_view segmentName,
                                 std::string_view serviceId);

  /// The label of a segment; nullptr if the segment was never observed.
  [[nodiscard]] const Label* labelOf(std::string_view segmentName) const;

  /// Services that have been observed storing the segment.
  [[nodiscard]] std::vector<std::string> servicesStoring(
      std::string_view segmentName) const;

  /// Drops a segment's label and presence records (e.g. after deletion).
  void forgetSegment(std::string_view segmentName);

  // ---- Disclosure-driven propagation (S3.2) --------------------------------

  /// The FlowTracker detected that `sourceSegment` is disclosed by
  /// `destSegment`: the source's EXPLICIT tags are attached to the
  /// destination as IMPLICIT tags. Implicit tags do not propagate further,
  /// which is what retires outdated taints (paper Fig. 6).
  void propagateDisclosure(std::string_view sourceSegment,
                           std::string_view destSegment);

  /// Recomputes `destSegment`'s implicit tags from the full current set of
  /// disclosing sources: previous implicit tags are dropped first, so a
  /// segment edited until it no longer discloses a source sheds that
  /// source's taint (the "decreased information disclosure" requirement of
  /// S1). Explicit and suppressed tags are untouched.
  void refreshImplicitTags(std::string_view destSegment,
                           const std::vector<std::string>& sourceSegments);

  /// Attaches one implicit tag directly (used by the secret guard, whose
  /// "sources" are registered secrets rather than segments). Subject to
  /// the same refresh lifecycle as disclosure-derived implicit tags.
  void addImplicitTag(std::string_view segmentName, const Tag& tag);

  // ---- Checks ---------------------------------------------------------------

  /// Flow check for a labelled segment uploading to `serviceId`. Unknown
  /// services are treated as untrusted externals with Lp = {}.
  [[nodiscard]] UploadDecision checkUpload(std::string_view segmentName,
                                           std::string_view serviceId) const;

  /// Flow check for an ad-hoc label (e.g. one synthesised from disclosure
  /// hits for not-yet-registered text).
  [[nodiscard]] UploadDecision checkLabel(const Label& label,
                                          std::string_view serviceId) const;

  // ---- User operations -------------------------------------------------------

  /// Declassification: suppress `tag` on one segment. The tag stays
  /// attached (audit), but is ignored in subset comparisons. Per the paper,
  /// suppression is case-by-case: it applies to this segment only, not to
  /// future copies.
  util::Status suppressTag(std::string_view user,
                           std::string_view segmentName, const Tag& tag,
                           std::string_view justification);

  /// Allocates a custom tag owned by `user` (S3.1 "Custom tag allocation").
  /// Fails if the tag already exists.
  util::Status allocateCustomTag(std::string_view user, const Tag& tag);

  /// Adds a custom tag to a segment's explicit label. Per the TDM rule,
  /// every service already storing the segment automatically receives the
  /// tag in its privilege label (so existing copies are not retroactively
  /// cut off). Only the tag's owner may do this.
  util::Status addCustomTagToSegment(std::string_view user,
                                     std::string_view segmentName,
                                     const Tag& tag);

  /// Grants/revokes a custom tag in a service's privilege label. Only the
  /// tag's owner controls which services may process data carrying it.
  util::Status setServicePrivilege(std::string_view user,
                                   std::string_view serviceId, const Tag& tag,
                                   bool grant);

  /// Owner of a custom tag, or empty if not a custom tag.
  [[nodiscard]] std::string customTagOwner(const Tag& tag) const;

  /// Appends a kDecisionDegraded audit record: the decision engine answered
  /// for `segmentName` → `serviceId` without running the full lookup
  /// pipeline (`reason` says why — shed / deadline / breaker-open). The
  /// policy owns the clock, so callers never have to timestamp.
  void recordDegradedDecision(std::string_view segmentName,
                              std::string_view serviceId,
                              std::string_view reason);

  [[nodiscard]] const AuditLog& audit() const noexcept { return audit_; }
  [[nodiscard]] AuditLog& audit() noexcept { return audit_; }

  // ---- Snapshot support (tdm/policy_snapshot.h) ------------------------------

  /// Read access to the full label / presence / custom-tag state for
  /// serialization.
  [[nodiscard]] const std::unordered_map<std::string, Label>& allLabels()
      const noexcept {
    return labels_;
  }
  [[nodiscard]] const std::unordered_map<std::string, std::set<std::string>>&
  allPresence() const noexcept {
    return presence_;
  }
  [[nodiscard]] const std::unordered_map<Tag, std::string>& allCustomTags()
      const noexcept {
    return customTagOwners_;
  }

  /// Restores serialized state (import into an empty policy).
  void restoreLabel(std::string name, Label label) {
    labels_[std::move(name)] = std::move(label);
  }
  void restorePresence(std::string name, std::set<std::string> services) {
    presence_[std::move(name)] = std::move(services);
  }
  void restoreCustomTag(Tag tag, std::string owner) {
    customTagOwners_[std::move(tag)] = std::move(owner);
  }

 private:
  [[nodiscard]] TagSet privilegeOf(std::string_view serviceId) const;

  util::Clock* clock_;
  ServiceRegistry services_;
  std::unordered_map<std::string, Label> labels_;
  std::unordered_map<std::string, std::set<std::string>> presence_;
  std::unordered_map<Tag, std::string> customTagOwners_;
  AuditLog audit_;
};

}  // namespace bf::tdm
