// Tags and tag sets (paper S3.1).
//
// "A label consists of a set of tags. Each tag is a unique, human-readable
//  string that expresses a separate concern about data disclosure."
#pragma once

#include <initializer_list>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace bf::tdm {

/// A tag: unique human-readable string, e.g. "interview-data".
using Tag = std::string;

/// An ordered set of tags with the subset test the TDM's flow rule uses:
/// a segment label Li may flow to a service with privilege Lp iff Li ⊆ Lp.
class TagSet {
 public:
  TagSet() = default;
  TagSet(std::initializer_list<Tag> tags) : tags_(tags) {}

  void insert(Tag tag) { tags_.insert(std::move(tag)); }
  void erase(const Tag& tag) { tags_.erase(tag); }
  [[nodiscard]] bool contains(const Tag& tag) const {
    return tags_.count(tag) != 0;
  }
  [[nodiscard]] bool empty() const noexcept { return tags_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return tags_.size(); }

  /// True iff every tag of *this is in `other` (⊆).
  [[nodiscard]] bool isSubsetOf(const TagSet& other) const;

  /// Set union / difference.
  [[nodiscard]] TagSet unionWith(const TagSet& other) const;
  [[nodiscard]] TagSet minus(const TagSet& other) const;

  /// Tags of *this missing from `other` — the tags that make a flow check
  /// fail, surfaced to the user in violation warnings.
  [[nodiscard]] std::vector<Tag> missingFrom(const TagSet& other) const;

  [[nodiscard]] auto begin() const { return tags_.begin(); }
  [[nodiscard]] auto end() const { return tags_.end(); }

  bool operator==(const TagSet&) const = default;

  /// "{a, b, c}" rendering for logs and audit records.
  [[nodiscard]] std::string toString() const;

 private:
  std::set<Tag> tags_;
};

}  // namespace bf::tdm
