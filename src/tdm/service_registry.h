// Cloud service registry (paper S3.1).
//
// "An administrator assigns each cloud service a pair of labels: a service
//  privilege label Lp and a service confidentiality label Lc. The privilege
//  label Lp marks the highest level of confidential data that a service is
//  trusted to receive; the confidentiality label Lc determines the default
//  confidentiality of data created within that service."
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tdm/tag_set.h"

namespace bf::tdm {

struct ServiceInfo {
  /// Stable id, conventionally the origin, e.g. "docs.google.com".
  std::string id;
  /// Human-readable name shown in warnings.
  std::string displayName;
  /// Lp: tags the service is trusted to receive.
  TagSet privilege;
  /// Lc: default explicit tags of text created in this service.
  TagSet confidentiality;
};

class ServiceRegistry {
 public:
  /// Registers or replaces a service definition.
  void upsert(ServiceInfo info);

  /// nullptr if the service is unknown. Unknown services are treated by the
  /// policy layer as untrusted externals (Lp = Lc = {}), matching the
  /// paper's Google Docs example.
  [[nodiscard]] const ServiceInfo* find(std::string_view id) const;

  /// Adds / removes a tag in a service's privilege label Lp (used by custom
  /// tag allocation, S3.1).
  void addPrivilegeTag(std::string_view serviceId, const Tag& tag);
  void removePrivilegeTag(std::string_view serviceId, const Tag& tag);

  [[nodiscard]] std::vector<std::string> serviceIds() const;
  [[nodiscard]] std::size_t size() const noexcept { return services_.size(); }

 private:
  std::unordered_map<std::string, ServiceInfo> services_;
};

}  // namespace bf::tdm
