#include "tdm/audit.h"

namespace bf::tdm {

std::vector<AuditRecord> AuditLog::byKind(AuditRecord::Kind kind) const {
  std::vector<AuditRecord> out;
  for (const auto& r : records_) {
    if (r.kind == kind) out.push_back(r);
  }
  return out;
}

std::vector<AuditRecord> AuditLog::byUser(std::string_view user) const {
  std::vector<AuditRecord> out;
  for (const auto& r : records_) {
    if (r.user == user) out.push_back(r);
  }
  return out;
}

}  // namespace bf::tdm
