// Segment labels (paper S3.1-S3.2).
//
// A text segment label partitions into:
//  - explicit tags: "those assigned by default due to the confidentiality
//    label Lc of a service and those assigned by users";
//  - implicit tags: "tags copied from a source text segment to a
//    destination text segment" after disclosure was detected. Implicit tags
//    mark the segment as NOT the authoritative source, and are not copied
//    onward (preventing the stale-taint propagation of paper Fig. 6);
//  - suppressed tags: tags a user declassified for this segment. A
//    suppressed tag "remains attached to the label" for auditability but is
//    "ignored when doing a subset comparison between labels".
#pragma once

#include "tdm/tag_set.h"

namespace bf::tdm {

class Label {
 public:
  Label() = default;

  /// Label whose explicit tags are `tags` (e.g. a service's Lc at segment
  /// creation).
  static Label fromExplicit(TagSet tags);

  /// Tags that participate in flow checks:
  /// (explicit ∪ implicit) − suppressed.
  [[nodiscard]] TagSet effectiveTags() const;

  /// Tags that propagate to a destination segment when this segment is
  /// found disclosed there: only the EXPLICIT tags (paper S3.2: "the
  /// explicit tags of the source are added to the destination as implicit
  /// tags"). Suppressed explicit tags still propagate — suppression is
  /// per-copy, not a permanent downgrade.
  [[nodiscard]] const TagSet& propagatableTags() const noexcept {
    return explicit_;
  }

  /// Flow rule: may this label's data be released to privilege label Lp?
  [[nodiscard]] bool flowsTo(const TagSet& privilege) const {
    return effectiveTags().isSubsetOf(privilege);
  }

  void addExplicit(Tag tag) { explicit_.insert(std::move(tag)); }
  void addImplicit(Tag tag) {
    // A tag that is already explicit stays explicit; implicit only marks
    // non-authoritative provenance.
    if (!explicit_.contains(tag)) implicit_.insert(std::move(tag));
  }
  void addImplicitAll(const TagSet& tags) {
    for (const Tag& t : tags) addImplicit(t);
  }

  /// Drops all implicit tags. Used when a segment's label is recomputed
  /// after an edit: implicit tags reflect *current* disclosure, so the set
  /// is rebuilt from the latest similarity hits (paper S3.2 — "BrowserFlow
  /// only updates the label of the text segment being edited").
  void clearImplicit() { implicit_ = TagSet{}; }

  /// Marks `tag` suppressed (it stays attached; see class comment).
  void suppress(Tag tag) { suppressed_.insert(std::move(tag)); }
  /// Reverts a suppression.
  void unsuppress(const Tag& tag) { suppressed_.erase(tag); }

  [[nodiscard]] const TagSet& explicitTags() const noexcept {
    return explicit_;
  }
  [[nodiscard]] const TagSet& implicitTags() const noexcept {
    return implicit_;
  }
  [[nodiscard]] const TagSet& suppressedTags() const noexcept {
    return suppressed_;
  }

  bool operator==(const Label&) const = default;

  /// "explicit{..} implicit{..} suppressed{..}" for logs.
  [[nodiscard]] std::string toString() const;

 private:
  TagSet explicit_;
  TagSet implicit_;
  TagSet suppressed_;
};

}  // namespace bf::tdm
