// Policy snapshot: persistence for the TDM policy state.
//
// Complements the flow tracker's fingerprint snapshot (flow/snapshot.h):
// together they let an enterprise deployment restart without losing
// segment labels, user suppressions, custom-tag ownership, service
// definitions or the audit trail. Serialization uses the same
// little-endian format; encryption at rest is applied by the caller (see
// core::saveDeployment), since labels alone rarely contain content.
#pragma once

#include <string>
#include <string_view>

#include "tdm/policy.h"
#include "util/result.h"

namespace bf::tdm {

/// Serialises services (Lp/Lc), segment labels (explicit/implicit/
/// suppressed), presence records, custom-tag ownership and the audit log.
/// Deterministic: equal states produce equal blobs.
[[nodiscard]] std::string exportPolicy(const TdmPolicy& policy);

/// Restores a blob from exportPolicy() into `policy`, which must be empty
/// (freshly constructed).
[[nodiscard]] util::Status importPolicy(TdmPolicy& policy,
                                        std::string_view blob);

}  // namespace bf::tdm
