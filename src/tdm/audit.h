// Audit trail (paper S3.1).
//
// "Tag suppression incurs an audit trail because it may result in sensitive
//  data disclosure. ... we also store an identifier of the user who
//  initiated the suppression and a justification to facilitate future
//  audits."
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tdm/tag_set.h"
#include "util/clock.h"

namespace bf::tdm {

/// One auditable event.
struct AuditRecord {
  enum class Kind : std::uint8_t {
    kTagSuppressed,      // user declassified a tag on a segment copy
    kCustomTagAllocated, // user allocated a new custom tag
    kPrivilegeChanged,   // Lp of a service changed
    kUploadBlocked,      // enforcement blocked an upload
    kUploadEncrypted,    // enforcement encrypted an upload
    kViolationWarned,    // advisory warning surfaced to the user
    kDecisionDegraded,   // engine answered without the full pipeline
  };

  Kind kind;
  util::Timestamp at = 0;
  std::string user;
  Tag tag;                 // involved tag, if any
  std::string segment;     // involved segment name, if any
  std::string service;     // involved service, if any
  std::string justification;
};

class AuditLog {
 public:
  void append(AuditRecord record) { records_.push_back(std::move(record)); }

  [[nodiscard]] const std::vector<AuditRecord>& records() const noexcept {
    return records_;
  }

  /// Records of one kind, in append order.
  [[nodiscard]] std::vector<AuditRecord> byKind(AuditRecord::Kind kind) const;

  /// Records initiated by one user, in append order.
  [[nodiscard]] std::vector<AuditRecord> byUser(std::string_view user) const;

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

 private:
  std::vector<AuditRecord> records_;
};

}  // namespace bf::tdm
