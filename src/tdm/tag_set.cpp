#include "tdm/tag_set.h"

#include <algorithm>

namespace bf::tdm {

bool TagSet::isSubsetOf(const TagSet& other) const {
  return std::includes(other.tags_.begin(), other.tags_.end(), tags_.begin(),
                       tags_.end());
}

TagSet TagSet::unionWith(const TagSet& other) const {
  TagSet out = *this;
  for (const Tag& t : other.tags_) out.tags_.insert(t);
  return out;
}

TagSet TagSet::minus(const TagSet& other) const {
  TagSet out;
  for (const Tag& t : tags_) {
    if (!other.contains(t)) out.tags_.insert(t);
  }
  return out;
}

std::vector<Tag> TagSet::missingFrom(const TagSet& other) const {
  std::vector<Tag> out;
  for (const Tag& t : tags_) {
    if (!other.contains(t)) out.push_back(t);
  }
  return out;
}

std::string TagSet::toString() const {
  std::string out = "{";
  bool first = true;
  for (const Tag& t : tags_) {
    if (!first) out += ", ";
    out += t;
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace bf::tdm
