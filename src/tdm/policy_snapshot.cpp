#include "tdm/policy_snapshot.h"

#include <algorithm>
#include <vector>

#include "util/binary_io.h"

namespace bf::tdm {

namespace {

constexpr std::string_view kMagic = "BFPOL1\n";

void putTagSet(std::string& out, const TagSet& tags) {
  util::putU64(out, tags.size());
  for (const Tag& t : tags) util::putStr(out, t);  // already sorted
}

TagSet readTagSet(util::BinaryReader& r) {
  TagSet tags;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) tags.insert(r.str());
  return tags;
}

template <typename Map>
std::vector<typename Map::const_pointer> sortedEntries(const Map& map) {
  std::vector<typename Map::const_pointer> out;
  out.reserve(map.size());
  for (const auto& entry : map) out.push_back(&entry);
  std::sort(out.begin(), out.end(),
            [](auto a, auto b) { return a->first < b->first; });
  return out;
}

}  // namespace

std::string exportPolicy(const TdmPolicy& policy) {
  std::string out;
  out.append(kMagic);

  // Services.
  const auto serviceIds = policy.services().serviceIds();  // sorted
  util::putU64(out, serviceIds.size());
  for (const auto& id : serviceIds) {
    const ServiceInfo* svc = policy.services().find(id);
    util::putStr(out, svc->id);
    util::putStr(out, svc->displayName);
    putTagSet(out, svc->privilege);
    putTagSet(out, svc->confidentiality);
  }

  // Segment labels.
  const auto labels = sortedEntries(policy.allLabels());
  util::putU64(out, labels.size());
  for (const auto* entry : labels) {
    util::putStr(out, entry->first);
    putTagSet(out, entry->second.explicitTags());
    putTagSet(out, entry->second.implicitTags());
    putTagSet(out, entry->second.suppressedTags());
  }

  // Presence (segment -> services storing it).
  const auto presence = sortedEntries(policy.allPresence());
  util::putU64(out, presence.size());
  for (const auto* entry : presence) {
    util::putStr(out, entry->first);
    util::putU64(out, entry->second.size());
    for (const auto& svc : entry->second) util::putStr(out, svc);
  }

  // Custom tag ownership.
  const auto customTags = sortedEntries(policy.allCustomTags());
  util::putU64(out, customTags.size());
  for (const auto* entry : customTags) {
    util::putStr(out, entry->first);
    util::putStr(out, entry->second);
  }

  // Audit log (append order preserved).
  util::putU64(out, policy.audit().records().size());
  for (const auto& rec : policy.audit().records()) {
    util::putU8(out, static_cast<std::uint8_t>(rec.kind));
    util::putU64(out, rec.at);
    util::putStr(out, rec.user);
    util::putStr(out, rec.tag);
    util::putStr(out, rec.segment);
    util::putStr(out, rec.service);
    util::putStr(out, rec.justification);
  }
  return out;
}

util::Status importPolicy(TdmPolicy& policy, std::string_view blob) {
  if (!policy.allLabels().empty() || policy.services().size() != 0 ||
      policy.audit().size() != 0) {
    return util::Status::error("importPolicy requires an empty policy");
  }
  if (blob.substr(0, kMagic.size()) != kMagic) {
    return util::Status::error("not a BrowserFlow policy snapshot");
  }
  util::BinaryReader r(blob.substr(kMagic.size()));

  const std::uint64_t serviceCount = r.u64();
  for (std::uint64_t i = 0; i < serviceCount && r.ok(); ++i) {
    ServiceInfo svc;
    svc.id = r.str();
    svc.displayName = r.str();
    svc.privilege = readTagSet(r);
    svc.confidentiality = readTagSet(r);
    if (r.ok()) policy.services().upsert(std::move(svc));
  }

  const std::uint64_t labelCount = r.u64();
  for (std::uint64_t i = 0; i < labelCount && r.ok(); ++i) {
    std::string name = r.str();
    Label label = Label::fromExplicit(readTagSet(r));
    for (const Tag& t : readTagSet(r)) label.addImplicit(t);
    for (const Tag& t : readTagSet(r)) label.suppress(t);
    if (r.ok()) policy.restoreLabel(std::move(name), std::move(label));
  }

  const std::uint64_t presenceCount = r.u64();
  for (std::uint64_t i = 0; i < presenceCount && r.ok(); ++i) {
    std::string name = r.str();
    std::set<std::string> services;
    const std::uint64_t n = r.u64();
    for (std::uint64_t k = 0; k < n && r.ok(); ++k) services.insert(r.str());
    if (r.ok()) policy.restorePresence(std::move(name), std::move(services));
  }

  const std::uint64_t customCount = r.u64();
  for (std::uint64_t i = 0; i < customCount && r.ok(); ++i) {
    std::string tag = r.str();
    std::string owner = r.str();
    if (r.ok()) policy.restoreCustomTag(std::move(tag), std::move(owner));
  }

  const std::uint64_t auditCount = r.u64();
  for (std::uint64_t i = 0; i < auditCount && r.ok(); ++i) {
    AuditRecord rec;
    rec.kind = static_cast<AuditRecord::Kind>(r.u8());
    rec.at = r.u64();
    rec.user = r.str();
    rec.tag = r.str();
    rec.segment = r.str();
    rec.service = r.str();
    rec.justification = r.str();
    if (r.ok()) policy.audit().append(std::move(rec));
  }

  if (!r.ok() || !r.atEnd()) {
    return util::Status::error("policy snapshot truncated or corrupt");
  }
  return {};
}

}  // namespace bf::tdm
