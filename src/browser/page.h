// Page: one browser tab's world — a Document, the XHR prototype, form
// submission dispatch, and observer flushing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "browser/dom.h"
#include "browser/forms.h"
#include "browser/http.h"
#include "browser/mutation_observer.h"
#include "browser/xhr.h"

namespace bf::browser {

class Page {
 public:
  /// `sink` is where un-intercepted traffic goes (the simulated network);
  /// not owned.
  Page(std::string url, RequestSink* sink);

  [[nodiscard]] const std::string& url() const noexcept { return url_; }
  /// "scheme://host" — the TDM's service identity for this tab.
  [[nodiscard]] const std::string& origin() const noexcept { return origin_; }

  [[nodiscard]] Document& document() noexcept { return document_; }

  /// Parses `html` into the document (a navigation/render).
  void loadHtml(std::string_view html);

  // ---- XHR -------------------------------------------------------------
  /// The page-wide prototype; extensions patch `prototype().send`.
  [[nodiscard]] XhrPrototype& xhrPrototype() noexcept { return xhrProto_; }
  /// Creates an XHR bound to this page's prototype.
  [[nodiscard]] Xhr newXhr() { return Xhr(&xhrProto_, origin_); }

  // ---- Forms -----------------------------------------------------------
  /// Registers a submit listener for `form` (earliest registered runs
  /// first, as with addEventListener).
  void addSubmitListener(Node* form, SubmitListener listener);

  /// Dispatches the submit event for `form`. If no listener prevents the
  /// default, performs the submission (builds the request and sends it to
  /// the sink). Returns the response, or status 0 if suppressed.
  HttpResponse submitForm(Node* form);

  /// Performs the submission without re-dispatching listeners — how an
  /// interceptor "allows the submit event to trigger the form submission"
  /// after its checks pass.
  HttpResponse submitFormBypassingListeners(Node* form);

  // ---- Observers ---------------------------------------------------------
  /// Observers registered here get their queued records delivered by
  /// flushObservers() — the page's microtask checkpoint.
  void registerObserver(MutationObserver* observer);
  void unregisterObserver(MutationObserver* observer);
  /// Delivers pending mutation records to all registered observers.
  void flushObservers();

  /// Direct access to the sink for service simulations (e.g. initial GET).
  [[nodiscard]] RequestSink* sink() const noexcept { return sink_; }

 private:
  std::string url_;
  std::string origin_;
  RequestSink* sink_;
  Document document_;
  XhrPrototype xhrProto_;
  std::vector<std::pair<Node*, std::vector<SubmitListener>>> submitListeners_;
  std::vector<MutationObserver*> observers_;
};

}  // namespace bf::browser
