#include "browser/xhr.h"

namespace bf::browser {

void Xhr::open(std::string method, std::string url) {
  method_ = std::move(method);
  url_ = std::move(url);
}

void Xhr::setRequestHeader(std::string name, std::string value) {
  headers_[std::move(name)] = std::move(value);
}

HttpResponse Xhr::send(std::string body) {
  HttpRequest req;
  req.method = method_;
  req.url = url_;
  req.headers = headers_;
  req.body = std::move(body);
  response_ = prototype_->send ? prototype_->send(*this, req)
                               : HttpResponse{0, "no transport"};
  return response_;
}

}  // namespace bf::browser
