// HTML form submission (paper S5.1, "Form-based interception").
//
// The plug-in "adds an event listener for the submit event of the <form>
// elements of web pages. When a user submits a form, the listener
// suppresses the outgoing web request, inspects all non-hidden <input>
// elements in the form and extracts their value attributes. If the action
// is not found to leak sensitive data according to the TDM, the listener
// allows the submit event to trigger the form submission."
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "browser/dom.h"
#include "browser/http.h"

namespace bf::browser {

/// Cancellable submit event, dispatched to listeners before the request.
class SubmitEvent {
 public:
  explicit SubmitEvent(Node* form) : form_(form) {}
  [[nodiscard]] Node* form() const noexcept { return form_; }
  /// Suppresses the outgoing web request.
  void preventDefault() noexcept { prevented_ = true; }
  [[nodiscard]] bool defaultPrevented() const noexcept { return prevented_; }

 private:
  Node* form_;
  bool prevented_ = false;
};

using SubmitListener = std::function<void(SubmitEvent&)>;

/// All <input> and <textarea> descendants of `form`.
[[nodiscard]] std::vector<Node*> formInputs(Node* form);

/// Inputs whose type attribute is not "hidden" (the elements the plug-in
/// inspects).
[[nodiscard]] std::vector<Node*> nonHiddenInputs(Node* form);

/// application/x-www-form-urlencoded body built from the form's inputs
/// (name=value pairs; unnamed inputs are skipped; minimal escaping).
[[nodiscard]] std::string encodeFormBody(Node* form);

/// The request a submission of `form` on a page with base origin
/// `pageOrigin` produces. Uses the form's `action` attribute (absolute, or
/// resolved against the origin) and `method` (default POST).
[[nodiscard]] HttpRequest buildFormRequest(Node* form,
                                           const std::string& pageOrigin);

/// Percent-encodes one application/x-www-form-urlencoded value.
[[nodiscard]] std::string urlEncodeComponent(std::string_view s);

/// Percent-decodes an application/x-www-form-urlencoded value.
[[nodiscard]] std::string urlDecodeComponent(std::string_view s);

/// Parses an urlencoded body into key/value pairs (later keys overwrite).
[[nodiscard]] std::map<std::string, std::string> parseFormBody(
    std::string_view body);

/// Re-encodes pairs from parseFormBody into a body (sorted key order).
[[nodiscard]] std::string encodeFormPairs(
    const std::map<std::string, std::string>& pairs);

}  // namespace bf::browser
