#include "browser/browser.h"

#include <algorithm>

namespace bf::browser {

Browser::~Browser() {
  for (const std::unique_ptr<Page>& tab : tabs_) {
    for (Extension* ext : extensions_) ext->onPageClosing(*tab);
  }
}

Page& Browser::openTab(const std::string& url) {
  tabs_.push_back(std::make_unique<Page>(url, network_));
  Page& page = *tabs_.back();
  for (Extension* ext : extensions_) ext->onPageCreated(page);
  return page;
}

void Browser::closeTab(Page& page) {
  for (Extension* ext : extensions_) ext->onPageClosing(page);
  tabs_.erase(std::remove_if(tabs_.begin(), tabs_.end(),
                             [&](const std::unique_ptr<Page>& p) {
                               return p.get() == &page;
                             }),
              tabs_.end());
}

}  // namespace bf::browser
