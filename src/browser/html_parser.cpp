#include "browser/html_parser.h"

#include <cctype>

#include "util/strings.h"

namespace bf::browser {

namespace {

bool isVoidElement(std::string_view tag) {
  static constexpr std::string_view kVoid[] = {
      "area", "base", "br",    "col",   "embed",  "hr",
      "img",  "input", "link", "meta",  "source", "track", "wbr"};
  for (auto v : kVoid) {
    if (tag == v) return true;
  }
  return false;
}

class Parser {
 public:
  Parser(Document& doc, std::string_view html) : doc_(doc), html_(html) {}

  void run(Node* root) {
    stack_.push_back(root);
    while (pos_ < html_.size()) {
      if (html_[pos_] == '<') {
        if (peekStartsWith("<!--")) {
          skipComment();
        } else if (peekStartsWith("</")) {
          closeTag();
        } else if (peekStartsWith("<!")) {
          skipDeclaration();
        } else {
          openTag();
        }
      } else {
        textRun();
      }
    }
  }

 private:
  [[nodiscard]] bool peekStartsWith(std::string_view s) const {
    return html_.substr(pos_, s.size()) == s;
  }

  void skipComment() {
    const std::size_t end = html_.find("-->", pos_);
    pos_ = end == std::string_view::npos ? html_.size() : end + 3;
  }

  void skipDeclaration() {
    const std::size_t end = html_.find('>', pos_);
    pos_ = end == std::string_view::npos ? html_.size() : end + 1;
  }

  void textRun() {
    const std::size_t end = html_.find('<', pos_);
    const std::size_t stop = end == std::string_view::npos ? html_.size() : end;
    std::string_view raw = html_.substr(pos_, stop - pos_);
    pos_ = stop;
    const std::string_view trimmed = util::trim(raw);
    if (!trimmed.empty()) {
      stack_.back()->appendChild(
          doc_.createTextNode(decodeHtmlEntities(trimmed)));
    }
  }

  void closeTag() {
    pos_ += 2;  // "</"
    const std::size_t end = html_.find('>', pos_);
    std::string tag = util::toLower(std::string(
        util::trim(html_.substr(pos_, end == std::string_view::npos
                                          ? html_.size() - pos_
                                          : end - pos_))));
    pos_ = end == std::string_view::npos ? html_.size() : end + 1;
    // Pop to the matching open element, tolerating misnesting.
    for (std::size_t i = stack_.size(); i-- > 1;) {
      if (stack_[i]->tag() == tag) {
        stack_.resize(i);
        return;
      }
    }
  }

  void openTag() {
    ++pos_;  // "<"
    // Tag name.
    std::size_t start = pos_;
    while (pos_ < html_.size() && (std::isalnum(static_cast<unsigned char>(
                                       html_[pos_])) != 0 ||
                                   html_[pos_] == '-')) {
      ++pos_;
    }
    std::string tag = util::toLower(std::string(html_.substr(start, pos_ - start)));
    if (tag.empty()) {  // stray "<": treat as text
      stack_.back()->appendChild(doc_.createTextNode("<"));
      return;
    }
    auto element = doc_.createElement(tag);

    // Attributes.
    bool selfClosing = false;
    while (pos_ < html_.size() && html_[pos_] != '>') {
      if (peekStartsWith("/>")) {
        selfClosing = true;
        pos_ += 2;
        break;
      }
      if (std::isspace(static_cast<unsigned char>(html_[pos_])) != 0) {
        ++pos_;
        continue;
      }
      // Attribute name.
      start = pos_;
      while (pos_ < html_.size() && html_[pos_] != '=' && html_[pos_] != '>' &&
             html_[pos_] != '/' &&
             std::isspace(static_cast<unsigned char>(html_[pos_])) == 0) {
        ++pos_;
      }
      std::string name(html_.substr(start, pos_ - start));
      std::string value;
      if (pos_ < html_.size() && html_[pos_] == '=') {
        ++pos_;
        if (pos_ < html_.size() && (html_[pos_] == '"' || html_[pos_] == '\'')) {
          const char quote = html_[pos_++];
          start = pos_;
          while (pos_ < html_.size() && html_[pos_] != quote) ++pos_;
          value = std::string(html_.substr(start, pos_ - start));
          if (pos_ < html_.size()) ++pos_;  // closing quote
        } else {
          start = pos_;
          while (pos_ < html_.size() && html_[pos_] != '>' &&
                 std::isspace(static_cast<unsigned char>(html_[pos_])) == 0) {
            ++pos_;
          }
          value = std::string(html_.substr(start, pos_ - start));
        }
      } else if (name.empty()) {
        // A byte the attribute grammar cannot consume (e.g. a bare '/' not
        // followed by '>'): skip it, or the loop would never advance.
        ++pos_;
        continue;
      }
      if (!name.empty()) element->setAttribute(std::move(name), std::move(value));
    }
    if (pos_ < html_.size() && html_[pos_] == '>') ++pos_;

    Node* raw = stack_.back()->appendChild(std::move(element));
    if (!selfClosing && !isVoidElement(tag)) stack_.push_back(raw);
  }

  Document& doc_;
  std::string_view html_;
  std::size_t pos_ = 0;
  std::vector<Node*> stack_;
};

}  // namespace

std::string decodeHtmlEntities(std::string_view text) {
  struct Entity {
    std::string_view name;
    std::string_view utf8;
  };
  static constexpr Entity kEntities[] = {
      {"amp", "&"},          {"lt", "<"},           {"gt", ">"},
      {"quot", "\""},        {"apos", "'"},         {"nbsp", "\xc2\xa0"},
      {"mdash", "\xe2\x80\x94"}, {"ndash", "\xe2\x80\x93"},
      {"hellip", "\xe2\x80\xa6"}, {"rsquo", "\xe2\x80\x99"},
      {"lsquo", "\xe2\x80\x98"}, {"rdquo", "\xe2\x80\x9d"},
      {"ldquo", "\xe2\x80\x9c"},
  };
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    const std::size_t semi = text.find(';', i + 1);
    // Entities are short; a distant or missing ';' means a literal '&'.
    if (semi == std::string_view::npos || semi - i > 10) {
      out.push_back(text[i++]);
      continue;
    }
    const std::string_view body = text.substr(i + 1, semi - i - 1);
    if (!body.empty() && body[0] == '#') {
      // Numeric reference: decimal "#39" or hex "#x27".
      unsigned cp = 0;
      bool ok = body.size() > 1;
      if (body.size() > 2 && (body[1] == 'x' || body[1] == 'X')) {
        for (std::size_t k = 2; k < body.size() && ok; ++k) {
          const char c = body[k];
          cp <<= 4;
          if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
          else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
          else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
          else ok = false;
        }
      } else {
        for (std::size_t k = 1; k < body.size() && ok; ++k) {
          const char c = body[k];
          if (c < '0' || c > '9') { ok = false; break; }
          cp = cp * 10 + static_cast<unsigned>(c - '0');
        }
      }
      if (ok && cp > 0 && cp <= 0x10FFFF) {
        // Encode the code point as UTF-8.
        if (cp < 0x80) {
          out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
          out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
          out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
          out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
        i = semi + 1;
        continue;
      }
    } else {
      bool matched = false;
      for (const auto& entity : kEntities) {
        if (body == entity.name) {
          out.append(entity.utf8);
          i = semi + 1;
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    out.push_back(text[i++]);  // unknown entity: keep the '&' literally
  }
  return out;
}

Node* parseHtml(Document& document, std::string_view html) {
  Node* root = document.root();
  while (!root->children().empty()) {
    root->removeChild(root->children().back().get());
  }
  Parser parser(document, html);
  parser.run(root);
  return root;
}

}  // namespace bf::browser
