// Simulated DOM tree.
//
// BrowserFlow's interception mechanisms (paper S5) operate entirely at the
// DOM/JS level: mutation observers watch paragraph elements, form submit
// listeners inspect <input> values, and the Readability-style extractor
// walks element subtrees. This DOM provides exactly those observable
// behaviours — element/text nodes, attributes, tree mutation with
// notifications — without a rendering engine.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace bf::browser {

class Document;
class Node;

enum class NodeType { kElement, kText };

/// Kinds of DOM mutation, mirroring the W3C MutationRecord types the paper
/// relies on ("childList" and "characterData").
enum class MutationType { kChildList, kCharacterData };

struct MutationRecord {
  MutationType type;
  /// For kChildList: the parent whose children changed.
  /// For kCharacterData: the text node whose data changed.
  Node* target = nullptr;
  std::vector<Node*> addedNodes;
  std::vector<Node*> removedNodes;
  std::string oldText;
};

class Node {
 public:
  /// Nodes are created through Document::createElement/createTextNode.
  Node(Document* document, NodeType type, std::string tagOrText);

  [[nodiscard]] NodeType type() const noexcept { return type_; }
  [[nodiscard]] bool isElement() const noexcept {
    return type_ == NodeType::kElement;
  }
  [[nodiscard]] bool isText() const noexcept {
    return type_ == NodeType::kText;
  }

  /// Lowercase tag name; empty for text nodes.
  [[nodiscard]] const std::string& tag() const noexcept { return tag_; }

  /// Text data of a text node; empty for elements.
  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  /// Mutates a text node's data; fires a characterData mutation.
  void setText(std::string text);

  // ---- Attributes ----
  void setAttribute(std::string name, std::string value);
  [[nodiscard]] std::string attribute(std::string_view name) const;
  [[nodiscard]] bool hasAttribute(std::string_view name) const;
  [[nodiscard]] std::string id() const { return attribute("id"); }
  [[nodiscard]] std::string className() const { return attribute("class"); }

  // ---- Tree ----
  [[nodiscard]] Node* parent() const noexcept { return parent_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& children()
      const noexcept {
    return children_;
  }
  [[nodiscard]] Document* document() const noexcept { return document_; }

  /// Appends `child` (takes ownership); fires a childList mutation.
  Node* appendChild(std::unique_ptr<Node> child);
  /// Inserts before children()[index]; fires a childList mutation.
  Node* insertChild(std::unique_ptr<Node> child, std::size_t index);
  /// Removes and returns the child; fires a childList mutation.
  std::unique_ptr<Node> removeChild(Node* child);

  // ---- Queries ----
  /// Concatenated text of all descendant text nodes.
  [[nodiscard]] std::string textContent() const;
  /// All descendant elements with the given tag (depth-first order).
  [[nodiscard]] std::vector<Node*> elementsByTag(std::string_view tag);
  /// First descendant (or self) with the given id, else nullptr.
  [[nodiscard]] Node* byId(std::string_view id);
  /// Applies fn to self and every descendant (pre-order).
  void forEachNode(const std::function<void(Node&)>& fn);

 private:
  Document* document_;
  NodeType type_;
  std::string tag_;   // element only
  std::string text_;  // text node only
  std::map<std::string, std::string, std::less<>> attributes_;
  Node* parent_ = nullptr;
  std::vector<std::unique_ptr<Node>> children_;
};

/// A document: owns the tree root and routes mutation records to observers.
class Document {
 public:
  Document();

  [[nodiscard]] Node* root() noexcept { return root_.get(); }
  [[nodiscard]] const Node* root() const noexcept { return root_.get(); }

  [[nodiscard]] std::unique_ptr<Node> createElement(std::string tag);
  [[nodiscard]] std::unique_ptr<Node> createTextNode(std::string text);

  /// Used by MutationObserver to subscribe; see mutation_observer.h.
  using MutationSink = std::function<void(const MutationRecord&)>;
  /// Returns a subscription id for unsubscribe.
  std::size_t addMutationSink(MutationSink sink);
  void removeMutationSink(std::size_t id);

  /// Called by Node mutators.
  void dispatchMutation(const MutationRecord& record);

 private:
  std::unique_ptr<Node> root_;
  std::vector<std::pair<std::size_t, MutationSink>> sinks_;
  std::size_t nextSinkId_ = 1;
};

}  // namespace bf::browser
