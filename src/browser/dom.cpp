#include "browser/dom.h"

#include <algorithm>
#include <cassert>

#include "util/strings.h"

namespace bf::browser {

Node::Node(Document* document, NodeType type, std::string tagOrText)
    : document_(document), type_(type) {
  if (type_ == NodeType::kElement) {
    tag_ = util::toLower(tagOrText);
  } else {
    text_ = std::move(tagOrText);
  }
}

void Node::setText(std::string text) {
  assert(isText());
  MutationRecord rec;
  rec.type = MutationType::kCharacterData;
  rec.target = this;
  rec.oldText = std::move(text_);
  text_ = std::move(text);
  document_->dispatchMutation(rec);
}

void Node::setAttribute(std::string name, std::string value) {
  attributes_[util::toLower(name)] = std::move(value);
}

std::string Node::attribute(std::string_view name) const {
  auto it = attributes_.find(util::toLower(name));
  return it == attributes_.end() ? std::string{} : it->second;
}

bool Node::hasAttribute(std::string_view name) const {
  return attributes_.find(util::toLower(name)) != attributes_.end();
}

Node* Node::appendChild(std::unique_ptr<Node> child) {
  return insertChild(std::move(child), children_.size());
}

Node* Node::insertChild(std::unique_ptr<Node> child, std::size_t index) {
  assert(isElement());
  assert(child->parent_ == nullptr);
  index = std::min(index, children_.size());
  child->parent_ = this;
  Node* raw = child.get();
  children_.insert(children_.begin() + static_cast<std::ptrdiff_t>(index),
                   std::move(child));
  MutationRecord rec;
  rec.type = MutationType::kChildList;
  rec.target = this;
  rec.addedNodes.push_back(raw);
  document_->dispatchMutation(rec);
  return raw;
}

std::unique_ptr<Node> Node::removeChild(Node* child) {
  auto it = std::find_if(
      children_.begin(), children_.end(),
      [child](const std::unique_ptr<Node>& c) { return c.get() == child; });
  if (it == children_.end()) return nullptr;
  std::unique_ptr<Node> out = std::move(*it);
  children_.erase(it);
  out->parent_ = nullptr;
  MutationRecord rec;
  rec.type = MutationType::kChildList;
  rec.target = this;
  rec.removedNodes.push_back(out.get());
  document_->dispatchMutation(rec);
  return out;
}

std::string Node::textContent() const {
  if (isText()) return text_;
  std::string out;
  for (const auto& c : children_) {
    const std::string t = c->textContent();
    if (!out.empty() && !t.empty()) out += ' ';
    out += t;
  }
  return out;
}

std::vector<Node*> Node::elementsByTag(std::string_view tag) {
  std::vector<Node*> out;
  const std::string lowered = util::toLower(tag);
  forEachNode([&](Node& n) {
    if (n.isElement() && n.tag() == lowered && &n != this) out.push_back(&n);
  });
  return out;
}

Node* Node::byId(std::string_view id) {
  Node* found = nullptr;
  forEachNode([&](Node& n) {
    if (found == nullptr && n.isElement() && n.id() == id) found = &n;
  });
  return found;
}

void Node::forEachNode(const std::function<void(Node&)>& fn) {
  fn(*this);
  for (const auto& c : children_) c->forEachNode(fn);
}

Document::Document() {
  root_ = std::make_unique<Node>(this, NodeType::kElement, "html");
}

std::unique_ptr<Node> Document::createElement(std::string tag) {
  return std::make_unique<Node>(this, NodeType::kElement, std::move(tag));
}

std::unique_ptr<Node> Document::createTextNode(std::string text) {
  return std::make_unique<Node>(this, NodeType::kText, std::move(text));
}

std::size_t Document::addMutationSink(MutationSink sink) {
  const std::size_t id = nextSinkId_++;
  sinks_.emplace_back(id, std::move(sink));
  return id;
}

void Document::removeMutationSink(std::size_t id) {
  sinks_.erase(std::remove_if(sinks_.begin(), sinks_.end(),
                              [id](const auto& p) { return p.first == id; }),
               sinks_.end());
}

void Document::dispatchMutation(const MutationRecord& record) {
  // Copy: a sink may subscribe/unsubscribe while handling a record.
  const auto sinks = sinks_;
  for (const auto& [id, sink] : sinks) sink(record);
}

}  // namespace bf::browser
