#include "browser/forms.h"

#include "util/strings.h"

namespace bf::browser {

std::vector<Node*> formInputs(Node* form) {
  std::vector<Node*> out;
  form->forEachNode([&](Node& n) {
    if (n.isElement() && (n.tag() == "input" || n.tag() == "textarea")) {
      out.push_back(&n);
    }
  });
  return out;
}

std::vector<Node*> nonHiddenInputs(Node* form) {
  std::vector<Node*> out;
  for (Node* input : formInputs(form)) {
    if (util::toLower(input->attribute("type")) != "hidden") {
      out.push_back(input);
    }
  }
  return out;
}

std::string urlEncodeComponent(std::string_view s) {
  std::string out;
  for (char c : s) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.') {
      out.push_back(c);
    } else if (c == ' ') {
      out.push_back('+');
    } else {
      static const char* kHex = "0123456789ABCDEF";
      out.push_back('%');
      out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
    }
  }
  return out;
}

std::string urlDecodeComponent(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = nibble(s[i + 1]);
      const int lo = nibble(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::map<std::string, std::string> parseFormBody(std::string_view body) {
  std::map<std::string, std::string> out;
  for (std::string_view pair : util::split(body, '&')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      out[urlDecodeComponent(pair)] = "";
    } else {
      out[urlDecodeComponent(pair.substr(0, eq))] =
          urlDecodeComponent(pair.substr(eq + 1));
    }
  }
  return out;
}

std::string encodeFormPairs(const std::map<std::string, std::string>& pairs) {
  std::string out;
  for (const auto& [k, v] : pairs) {
    if (!out.empty()) out += '&';
    out += urlEncodeComponent(k);
    out += '=';
    out += urlEncodeComponent(v);
  }
  return out;
}

std::string encodeFormBody(Node* form) {
  std::string out;
  for (Node* input : formInputs(form)) {
    const std::string name = input->attribute("name");
    if (name.empty()) continue;
    if (!out.empty()) out += '&';
    out += urlEncodeComponent(name);
    out += '=';
    out += urlEncodeComponent(input->attribute("value"));
  }
  return out;
}

HttpRequest buildFormRequest(Node* form, const std::string& pageOrigin) {
  HttpRequest req;
  std::string method = util::toLower(form->attribute("method"));
  req.method = method == "get" ? "GET" : "POST";
  std::string action = form->attribute("action");
  if (action.empty()) {
    req.url = pageOrigin + "/";
  } else if (action.find("://") != std::string::npos) {
    req.url = action;
  } else {
    req.url = pageOrigin + (action.front() == '/' ? "" : "/") + action;
  }
  req.headers["content-type"] = "application/x-www-form-urlencoded";
  req.body = encodeFormBody(form);
  return req;
}

}  // namespace bf::browser
