// Minimal HTML parser.
//
// Static pages (paper S5.1) arrive as HTML; the plug-in inspects the DOM
// tree "after loading". The parser covers the subset real CMS output uses:
// nested elements, attributes (quoted and bare), void elements, comments,
// and character data. It is not a spec-grade HTML5 parser — unknown
// constructs degrade to text rather than erroring.
#pragma once

#include <memory>
#include <string_view>

#include "browser/dom.h"

namespace bf::browser {

/// Parses `html` into `document`'s tree, replacing any children of the
/// root. Returns the root node.
Node* parseHtml(Document& document, std::string_view html);

/// Decodes HTML character references in text data: the named entities CMS
/// output actually uses (&amp; &lt; &gt; &quot; &apos; &nbsp; &mdash;
/// &ndash; &hellip; &rsquo; &lsquo; &rdquo; &ldquo;) plus numeric forms
/// (&#39; &#x27;). Unknown entities pass through verbatim.
[[nodiscard]] std::string decodeHtmlEntities(std::string_view text);

}  // namespace bf::browser
