#include "browser/mutation_observer.h"

#include <algorithm>

namespace bf::browser {

MutationObserver::MutationObserver(Callback callback)
    : callback_(std::move(callback)) {}

MutationObserver::~MutationObserver() { disconnect(); }

void MutationObserver::observe(Node* target) {
  targets_.push_back(target);
  Document* doc = target->document();
  // One sink per document is enough; it filters by subtree membership.
  const bool alreadySubscribed =
      std::any_of(subscriptions_.begin(), subscriptions_.end(),
                  [doc](const auto& s) { return s.first == doc; });
  if (!alreadySubscribed) {
    const std::size_t id = doc->addMutationSink([this](const MutationRecord& r) {
      if (inObservedSubtree(r.target)) queue_.push_back(r);
    });
    subscriptions_.emplace_back(doc, id);
  }
}

void MutationObserver::disconnect() {
  for (const auto& [doc, id] : subscriptions_) doc->removeMutationSink(id);
  subscriptions_.clear();
  targets_.clear();
  queue_.clear();
}

std::vector<MutationRecord> MutationObserver::takeRecords() {
  std::vector<MutationRecord> out;
  out.swap(queue_);
  return out;
}

void MutationObserver::flush() {
  if (queue_.empty() || !callback_) return;
  std::vector<MutationRecord> batch;
  batch.swap(queue_);
  callback_(batch);
}

bool MutationObserver::inObservedSubtree(const Node* node) const {
  for (const Node* n = node; n != nullptr; n = n->parent()) {
    if (std::find(targets_.begin(), targets_.end(), n) != targets_.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace bf::browser
