// MutationObserver — the W3C DOM4 observer the paper uses for dynamic
// services (S5.2):
//
// "A mutation observer is an object that can be attached to an element in
//  the DOM tree and receives notifications when any change occurs in the
//  subtree rooted at that element."
//
// Records are queued and delivered in batches via takeRecords() or a
// callback flushed by Page::flushObservers(), modelling the microtask-based
// delivery of real browsers (observers never run in the middle of a DOM
// mutation).
#pragma once

#include <functional>
#include <vector>

#include "browser/dom.h"

namespace bf::browser {

class MutationObserver {
 public:
  using Callback = std::function<void(const std::vector<MutationRecord>&)>;

  /// `callback` may be null if the owner prefers polling via takeRecords().
  explicit MutationObserver(Callback callback = nullptr);
  ~MutationObserver();

  MutationObserver(const MutationObserver&) = delete;
  MutationObserver& operator=(const MutationObserver&) = delete;

  /// Starts observing mutations in the subtree rooted at `target`
  /// (including `target` itself). Multiple targets may be observed.
  void observe(Node* target);

  /// Stops all observation.
  void disconnect();

  /// Returns queued records and clears the queue.
  [[nodiscard]] std::vector<MutationRecord> takeRecords();

  /// Delivers queued records to the callback (no-op when the queue is
  /// empty or there is no callback). Called by Page::flushObservers().
  void flush();

  [[nodiscard]] bool hasPendingRecords() const noexcept {
    return !queue_.empty();
  }

 private:
  [[nodiscard]] bool inObservedSubtree(const Node* node) const;

  Callback callback_;
  std::vector<std::pair<Document*, std::size_t>> subscriptions_;
  std::vector<Node*> targets_;
  std::vector<MutationRecord> queue_;
};

}  // namespace bf::browser
