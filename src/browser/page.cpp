#include "browser/page.h"

#include <algorithm>

#include "browser/html_parser.h"

namespace bf::browser {

std::string originOf(const std::string& url) {
  const std::size_t scheme = url.find("://");
  if (scheme == std::string::npos) return url;
  const std::size_t host = url.find('/', scheme + 3);
  return host == std::string::npos ? url : url.substr(0, host);
}

Page::Page(std::string url, RequestSink* sink)
    : url_(std::move(url)), origin_(originOf(url_)), sink_(sink) {
  xhrProto_.send = [this](Xhr&, const HttpRequest& req) -> HttpResponse {
    return sink_ != nullptr ? sink_->handle(req)
                            : HttpResponse{0, "no network"};
  };
}

void Page::loadHtml(std::string_view html) {
  parseHtml(document_, html);
  // The load is complete: deliver the parse mutations, as a browser would
  // before running extension content scripts.
  flushObservers();
}

void Page::addSubmitListener(Node* form, SubmitListener listener) {
  for (auto& [node, listeners] : submitListeners_) {
    if (node == form) {
      listeners.push_back(std::move(listener));
      return;
    }
  }
  submitListeners_.push_back({form, {std::move(listener)}});
}

HttpResponse Page::submitForm(Node* form) {
  SubmitEvent event(form);
  for (auto& [node, listeners] : submitListeners_) {
    if (node != form) continue;
    for (auto& l : listeners) {
      l(event);
      if (event.defaultPrevented()) return HttpResponse{0, "suppressed"};
    }
  }
  return submitFormBypassingListeners(form);
}

HttpResponse Page::submitFormBypassingListeners(Node* form) {
  const HttpRequest req = buildFormRequest(form, origin_);
  return sink_ != nullptr ? sink_->handle(req)
                          : HttpResponse{0, "no network"};
}

void Page::registerObserver(MutationObserver* observer) {
  observers_.push_back(observer);
}

void Page::unregisterObserver(MutationObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void Page::flushObservers() {
  for (MutationObserver* o : observers_) o->flush();
}

}  // namespace bf::browser
