// Browser: tabs plus the extension hook a plug-in installs into.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "browser/page.h"

namespace bf::browser {

/// A browser extension ("plug-in"). BrowserFlow's core module implements
/// this to install its interception into every tab as it opens.
class Extension {
 public:
  virtual ~Extension() = default;
  /// Called after a tab's Page exists but before any service script runs —
  /// the moment a Chrome content script would inject.
  virtual void onPageCreated(Page& page) = 0;
  /// Called when a tab closes, before the Page is destroyed.
  virtual void onPageClosing(Page& page) { (void)page; }
};

class Browser {
 public:
  /// `network` receives all un-intercepted traffic; not owned.
  explicit Browser(RequestSink* network) : network_(network) {}

  /// Tabs still open when the browser goes away close like any other tab:
  /// extensions hear onPageClosing while the Page is still alive, so hooks
  /// holding DOM pointers (mutation observers, form listeners) can detach.
  ~Browser();

  /// Installs an extension (not owned); applies to tabs opened afterwards.
  void addExtension(Extension* extension) {
    extensions_.push_back(extension);
  }

  /// Opens a tab at `url` and notifies extensions.
  Page& openTab(const std::string& url);

  /// Closes a tab (notifying extensions first).
  void closeTab(Page& page);

  [[nodiscard]] const std::vector<std::unique_ptr<Page>>& tabs()
      const noexcept {
    return tabs_;
  }

 private:
  RequestSink* network_;
  std::vector<Extension*> extensions_;
  std::vector<std::unique_ptr<Page>> tabs_;
};

}  // namespace bf::browser
