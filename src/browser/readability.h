// Readability-style text extraction (paper S5.1).
//
// "The BrowserFlow plug-in inspects the DOM tree of each page after
//  loading, searching for HTML elements with significant text. We apply a
//  set of heuristics to rank elements according to how much 'interesting'
//  text they contain and select the element with the highest score. These
//  heuristics reward the existence of <p> tags, text that contains commas,
//  and id attributes which have known representative values such as
//  article. Similarly, they penalise bad class attribute names such as
//  footer or meta and high number of links over text length."
#pragma once

#include "browser/dom.h"
#include "sec/sensitive.h"

namespace bf::browser {

struct ExtractionResult {
  /// The highest-scoring element, or nullptr if the page has no candidate.
  Node* element = nullptr;
  double score = 0.0;
  /// Plain text of the winning element with all HTML structure removed.
  /// This is the moment page content enters the tracking plane, so it is
  /// sensitive by type from here on (DESIGN.md §14).
  sec::SensitiveText text;
};

/// Score of a single element under the Readability-style heuristics.
/// Exposed for tests; extractMainText() picks the max over the tree.
[[nodiscard]] double scoreElement(Node& element);

/// Finds the element carrying the page's main text.
[[nodiscard]] ExtractionResult extractMainText(Node& pageRoot);

}  // namespace bf::browser
