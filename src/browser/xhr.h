// XMLHttpRequest simulation with a patchable prototype (paper S5.2).
//
// "BrowserFlow intercepts communication to the remote back-end servers by
//  redefining the send method in JavaScript's XMLHttpRequest object. ...
//  BrowserFlow sets a custom XMLHttpRequest.prototype.send method,
//  exposing an interception point to observe all HTTP requests."
//
// Xhr instances dispatch send() through their page's shared XhrPrototype —
// exactly the dynamic-dispatch structure the paper exploits. An extension
// swaps prototype.send for a wrapper that may inspect, rewrite, block, or
// forward to the original.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "browser/http.h"

namespace bf::browser {

class Xhr;

/// The shared prototype: pages create one; extensions may replace `send`.
struct XhrPrototype {
  /// Receives the request an Xhr built; returns the response the page
  /// script sees. The default implementation forwards to the page's
  /// RequestSink.
  std::function<HttpResponse(Xhr&, const HttpRequest&)> send;
};

class Xhr {
 public:
  Xhr(XhrPrototype* prototype, std::string pageOrigin)
      : prototype_(prototype), pageOrigin_(std::move(pageOrigin)) {}

  void open(std::string method, std::string url);
  void setRequestHeader(std::string name, std::string value);

  /// Dispatches through the prototype (the interception point) and stores
  /// the response.
  HttpResponse send(std::string body);

  [[nodiscard]] const HttpResponse& response() const noexcept {
    return response_;
  }
  [[nodiscard]] const std::string& pageOrigin() const noexcept {
    return pageOrigin_;
  }

 private:
  XhrPrototype* prototype_;
  std::string pageOrigin_;
  std::string method_ = "GET";
  std::string url_;
  std::map<std::string, std::string> headers_;
  HttpResponse response_;
};

}  // namespace bf::browser
