// HTTP types shared between the simulated browser and the simulated cloud.
//
// The browser module defines the interface; the cloud module's SimNetwork
// implements RequestSink. This mirrors the real layering: the plug-in sees
// requests leave the browser without knowing what network serves them.
#pragma once

#include <map>
#include <string>

namespace bf::browser {

struct HttpRequest {
  std::string method = "POST";
  /// Absolute URL, e.g. "https://docs.google.com/save".
  std::string url;
  std::map<std::string, std::string> headers;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string body;
};

/// Where outgoing requests go once the browser (and any interceptors) let
/// them through.
class RequestSink {
 public:
  virtual ~RequestSink() = default;
  virtual HttpResponse handle(const HttpRequest& request) = 0;
};

/// Extracts the origin ("scheme://host") from a URL; the TDM identifies
/// services by origin.
[[nodiscard]] std::string originOf(const std::string& url);

}  // namespace bf::browser
