#include "browser/readability.h"

#include <algorithm>

#include "util/strings.h"

namespace bf::browser {

namespace {

constexpr std::string_view kGoodNames[] = {"article", "content", "main",
                                           "post", "body", "entry", "text"};
constexpr std::string_view kBadNames[] = {"footer",  "meta",    "nav",
                                          "sidebar", "comment", "menu",
                                          "header",  "ad"};

bool nameMatchesAny(const std::string& value,
                    const std::string_view* names, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (util::containsIgnoreCase(value, names[i])) return true;
  }
  return false;
}

/// Total text length under `n` and the portion inside <a> elements.
/// Script/style bodies are invisible to readers and never count.
void linkAndTextLength(Node& n, std::size_t& total, std::size_t& inLinks,
                       bool insideLink) {
  if (n.isText()) {
    total += n.text().size();
    if (insideLink) inLinks += n.text().size();
    return;
  }
  if (n.tag() == "script" || n.tag() == "style") return;
  const bool link = insideLink || n.tag() == "a";
  for (const auto& c : n.children()) {
    linkAndTextLength(*c, total, inLinks, link);
  }
}

/// Reader-visible text under `n` (script/style excluded).
void collectProse(Node& n, std::string& out) {
  if (n.isText()) {
    if (!out.empty()) out += ' ';
    out += n.text();
    return;
  }
  if (n.tag() == "script" || n.tag() == "style") return;
  for (const auto& c : n.children()) collectProse(*c, out);
}

}  // namespace

double scoreElement(Node& element) {
  if (!element.isElement()) return 0.0;
  // Containers the main text never lives in directly.
  if (element.tag() == "a" || element.tag() == "script" ||
      element.tag() == "style") {
    return 0.0;
  }

  double score = 0.0;
  std::string text;
  collectProse(element, text);
  if (text.size() < 25) return 0.0;  // too little text to be the article

  // Reward <p> descendants.
  score += 25.0 * static_cast<double>(element.elementsByTag("p").size());

  // Reward commas (prose indicator).
  score += static_cast<double>(std::count(text.begin(), text.end(), ','));

  // Reward raw text mass, capped so one giant blob cannot dominate ids.
  score += std::min<double>(static_cast<double>(text.size()) / 100.0, 30.0);

  // Id/class name priors.
  const std::string id = element.id();
  const std::string cls = element.className();
  if (nameMatchesAny(id, kGoodNames, std::size(kGoodNames))) score += 50.0;
  if (nameMatchesAny(cls, kGoodNames, std::size(kGoodNames))) score += 25.0;
  if (nameMatchesAny(id, kBadNames, std::size(kBadNames))) score -= 50.0;
  if (nameMatchesAny(cls, kBadNames, std::size(kBadNames))) score -= 25.0;

  // Penalise link-heavy elements (navigation, boilerplate).
  std::size_t total = 0, inLinks = 0;
  linkAndTextLength(element, total, inLinks, false);
  if (total > 0) {
    const double linkDensity =
        static_cast<double>(inLinks) / static_cast<double>(total);
    score *= (1.0 - linkDensity);
  }
  return score;
}

ExtractionResult extractMainText(Node& pageRoot) {
  ExtractionResult best;
  pageRoot.forEachNode([&](Node& n) {
    if (!n.isElement()) return;
    const double s = scoreElement(n);
    // ">=" prefers the deepest element among ties (pre-order traversal
    // visits ancestors first): the tightest container around the text.
    if (s >= best.score && s > 0.0) {
      best.score = s;
      best.element = &n;
    }
  });
  if (best.element != nullptr) {
    // "BrowserFlow extracts the text from them by removing all HTML tags."
    // Paragraph boundaries are preserved as blank lines so the segmenter
    // sees the same structure a reader would.
    std::string out;
    for (const auto& child : best.element->children()) {
      const std::string t = child->textContent();
      if (util::trim(t).empty()) continue;
      if (!out.empty()) out += "\n\n";
      out += std::string(util::trim(t));
    }
    if (out.empty()) out = best.element->textContent();
    best.text = std::move(out);
  }
  return best;
}

}  // namespace bf::browser
