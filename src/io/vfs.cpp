#include "io/vfs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace bf::io {
namespace {

class PosixFile final : public File {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override { (void)close(); }

  WriteResult write(std::string_view data) override {
    WriteResult r;
    if (fd_ < 0) return r;
    while (r.written < data.size()) {
      ssize_t n =
          ::write(fd_, data.data() + r.written, data.size() - r.written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return r;  // genuine storage error; r.written is the durable prefix
      }
      r.written += static_cast<std::size_t>(n);
    }
    r.ok = true;
    return r;
  }

  bool sync() override { return fd_ >= 0 && ::fsync(fd_) == 0; }

  bool close() override {
    if (fd_ < 0) return true;
    const int fd = fd_;
    fd_ = -1;
    return ::close(fd) == 0;
  }

 private:
  int fd_;
};

}  // namespace

std::unique_ptr<File> PosixVfs::openForWrite(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return nullptr;
  return std::make_unique<PosixFile>(fd);
}

util::Result<std::string> PosixVfs::readFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Result<std::string>::error("open failed: " + path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return util::Result<std::string>::error("read failed: " + path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

bool PosixVfs::rename(const std::string& from, const std::string& to) {
  return std::rename(from.c_str(), to.c_str()) == 0;
}

bool PosixVfs::remove(const std::string& path) {
  return std::remove(path.c_str()) == 0;
}

bool PosixVfs::mkdir(const std::string& path) {
  return ::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST;
}

std::vector<std::string> PosixVfs::listDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  return names;
}

std::uint64_t PosixVfs::fileSize(const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

void PosixVfs::syncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
}

Vfs& defaultVfs() {
  static PosixVfs vfs;
  return vfs;
}

}  // namespace bf::io
