// FaultVfs: a Vfs decorator that makes storage misbehave on purpose.
//
// The storage counterpart of cloud::FaultInjector — PR 2 proved the
// network path degrades gracefully by injecting deterministic, seeded
// network faults; this class does the same for the durability path.
// It wraps any Vfs (normally the PosixVfs) and injects:
//
//   kEnospc      write fails, no bytes reach the inner file (disk full
//                detected up front);
//   kShortWrite  a prefix reaches the inner file, then the write FAILS
//                (ENOSPC mid-buffer) — detectable by the caller;
//   kTornWrite   a prefix reaches the inner file but the write reports
//                SUCCESS — the lying-disk case, detectable only by
//                recovery-time CRC validation;
//   kFsyncFail   fsync returns failure (data may or may not be durable);
//   kOpenFail    openForWrite returns null;
//   kReadCorrupt readFile succeeds but one byte is flipped.
//
// Fault selection is per-operation from a seeded Rng; per-path-substring
// FaultConfig overrides and deterministic failNext() schedules let tests
// script exact failure sequences (e.g. "the next 2 fsyncs on any .bfw
// segment fail"). Everything is metered via bf::obs (bf_storage_fault_*).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/vfs.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace bf::io {

enum class StorageFaultKind : std::uint8_t {
  kNone = 0,
  kEnospc,
  kShortWrite,
  kTornWrite,
  kFsyncFail,
  kOpenFail,
  kReadCorrupt,
};

/// Per-path-substring (or default) fault probabilities. Kinds are sampled
/// in declaration order; at most one fault fires per operation.
struct StorageFaultConfig {
  double enospcProb = 0.0;
  double shortWriteProb = 0.0;
  double tornWriteProb = 0.0;
  double fsyncFailProb = 0.0;
  double openFailProb = 0.0;
  double readCorruptProb = 0.0;

  /// Spreads `rate` evenly over the write-side kinds (enospc, short,
  /// torn, fsync-fail) — the chaos-test / bench workhorse. Open and read
  /// faults are scripted explicitly where a test wants them.
  [[nodiscard]] static StorageFaultConfig uniformRate(double rate) {
    StorageFaultConfig c;
    c.enospcProb = c.shortWriteProb = c.tornWriteProb = c.fsyncFailProb =
        rate / 4.0;
    return c;
  }
};

class FaultVfs final : public Vfs {
 public:
  /// Wraps `inner` (not owned); `seed` drives fault sampling.
  FaultVfs(Vfs* inner, std::uint64_t seed, StorageFaultConfig defaults = {});

  /// Replaces the default fault profile (applies where no path override
  /// matches).
  void setDefaults(StorageFaultConfig config) BF_EXCLUDES(mutex_);

  /// Override for any path containing `substring` (longest matching
  /// substring wins; keys like ".bfw", "checkpoint-", ".tmp"). Pass {} to
  /// make matching paths fault-free.
  void setPathFaults(const std::string& substring, StorageFaultConfig config)
      BF_EXCLUDES(mutex_);

  /// Deterministically fails the next `count` operations of `kind`'s class
  /// on paths containing `substring`, ahead of probabilistic sampling. A
  /// schedule is only consumed by operations it can apply to (write kinds
  /// by write(), kFsyncFail by sync(), kOpenFail by openForWrite(),
  /// kReadCorrupt by readFile()). Schedules queue in call order.
  void failNext(const std::string& substring, int count, StorageFaultKind kind)
      BF_EXCLUDES(mutex_);

  /// Faults injected so far (all kinds).
  [[nodiscard]] std::uint64_t faultCount() const noexcept {
    return faults_.load(std::memory_order_relaxed);
  }

  // Vfs. Fault selection runs under the decorator's mutex (rank
  // kRankStorageFault, below the WAL mutex); the inner Vfs is dispatched
  // to outside the critical section.
  [[nodiscard]] std::unique_ptr<File> openForWrite(
      const std::string& path) override BF_EXCLUDES(mutex_);
  [[nodiscard]] util::Result<std::string> readFile(
      const std::string& path) override BF_EXCLUDES(mutex_);
  [[nodiscard]] bool rename(const std::string& from,
                            const std::string& to) override;
  bool remove(const std::string& path) override;
  [[nodiscard]] bool mkdir(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> listDir(
      const std::string& dir) override;
  [[nodiscard]] std::uint64_t fileSize(const std::string& path) override;
  void syncDir(const std::string& dir) override;

 private:
  friend class FaultFile;

  /// The operation class a fault pick is being made for; schedules and
  /// probabilistic draws only yield kinds applicable to it.
  enum class OpClass : std::uint8_t { kWrite, kSync, kOpen, kRead };

  [[nodiscard]] StorageFaultKind pickFault(const std::string& path,
                                           OpClass op) BF_EXCLUDES(mutex_);
  [[nodiscard]] StorageFaultKind pickFaultLocked(const std::string& path,
                                                 OpClass op)
      BF_REQUIRES(mutex_);
  [[nodiscard]] const StorageFaultConfig& configForLocked(
      const std::string& path) const BF_REQUIRES(mutex_);
  /// Uniform draw in [lo, hi] for shaping short/torn prefixes.
  [[nodiscard]] std::uint64_t uniformBetween(std::uint64_t lo,
                                             std::uint64_t hi)
      BF_EXCLUDES(mutex_);
  void recordFault(StorageFaultKind kind);

  Vfs* inner_;
  mutable util::Mutex mutex_{util::kRankStorageFault, "FaultVfs.mutex_"};
  util::Rng rng_ BF_GUARDED_BY(mutex_);
  StorageFaultConfig defaults_ BF_GUARDED_BY(mutex_);
  std::unordered_map<std::string, StorageFaultConfig> perPath_
      BF_GUARDED_BY(mutex_);
  std::unordered_map<std::string,
                     std::deque<std::pair<StorageFaultKind, int>>>
      scheduled_ BF_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> faults_{0};
};

}  // namespace bf::io
