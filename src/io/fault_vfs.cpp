#include "io/fault_vfs.h"

#include <algorithm>

#include "obs/metrics.h"

namespace bf::io {

namespace {
struct StorageFaultMetrics {
  obs::Counter* ops;          // bf_storage_fault_ops_total
  obs::Counter* injected;     // bf_storage_fault_injected_total
  obs::Counter* enospc;       // bf_storage_fault_enospc_total
  obs::Counter* shortWrite;   // bf_storage_fault_short_write_total
  obs::Counter* tornWrite;    // bf_storage_fault_torn_write_total
  obs::Counter* fsyncFail;    // bf_storage_fault_fsync_fail_total
  obs::Counter* openFail;     // bf_storage_fault_open_fail_total
  obs::Counter* readCorrupt;  // bf_storage_fault_read_corrupt_total
};
const StorageFaultMetrics& storageFaultMetrics() {
  static const StorageFaultMetrics m = [] {
    obs::MetricsRegistry& r = obs::registry();
    return StorageFaultMetrics{
        &r.counter("bf_storage_fault_ops_total",
                   "Faultable operations that passed through FaultVfs"),
        &r.counter("bf_storage_fault_injected_total",
                   "Storage faults injected (all kinds)"),
        &r.counter("bf_storage_fault_enospc_total",
                   "Injected up-front write failures (disk full)"),
        &r.counter("bf_storage_fault_short_write_total",
                   "Injected detected short writes (prefix durable)"),
        &r.counter("bf_storage_fault_torn_write_total",
                   "Injected silent torn writes (lying disk)"),
        &r.counter("bf_storage_fault_fsync_fail_total",
                   "Injected fsync failures"),
        &r.counter("bf_storage_fault_open_fail_total",
                   "Injected file-open failures"),
        &r.counter("bf_storage_fault_read_corrupt_total",
                   "Injected read-side byte corruptions")};
  }();
  return m;
}

/// Which operation class can a fault kind fire on?
bool applicable(StorageFaultKind kind, bool isWrite, bool isSync, bool isOpen,
                bool isRead) {
  switch (kind) {
    case StorageFaultKind::kEnospc:
    case StorageFaultKind::kShortWrite:
    case StorageFaultKind::kTornWrite:
      return isWrite;
    case StorageFaultKind::kFsyncFail:
      return isSync;
    case StorageFaultKind::kOpenFail:
      return isOpen;
    case StorageFaultKind::kReadCorrupt:
      return isRead;
    case StorageFaultKind::kNone:
      return false;
  }
  return false;
}

}  // namespace

/// A write handle that consults its FaultVfs before each write/sync.
/// Lives in bf::io (not the anonymous namespace) so FaultVfs's friend
/// declaration applies.
class FaultFile final : public File {
 public:
  FaultFile(FaultVfs* owner, std::unique_ptr<File> inner, std::string path)
      : owner_(owner), inner_(std::move(inner)), path_(std::move(path)) {}

  WriteResult write(std::string_view data) override {
    const StorageFaultKind fault =
        owner_->pickFault(path_, FaultVfs::OpClass::kWrite);
    if (fault == StorageFaultKind::kNone) return inner_->write(data);
    owner_->recordFault(fault);
    if (fault == StorageFaultKind::kEnospc) return {false, 0};
    // Short and torn writes land a strict prefix on the inner file. A
    // short write is honest about the failure; a torn write lies and
    // claims the full buffer was accepted.
    const std::uint64_t prefix =
        data.empty() ? 0
                     : owner_->uniformBetween(
                           0, static_cast<std::uint64_t>(data.size()) - 1);
    const WriteResult innerResult =
        inner_->write(data.substr(0, static_cast<std::size_t>(prefix)));
    const std::size_t landed = innerResult.written;
    if (fault == StorageFaultKind::kShortWrite) return {false, landed};
    return {true, data.size()};  // kTornWrite
  }

  bool sync() override {
    const StorageFaultKind fault =
        owner_->pickFault(path_, FaultVfs::OpClass::kSync);
    if (fault == StorageFaultKind::kFsyncFail) {
      owner_->recordFault(fault);
      (void)inner_->sync();  // data may still land; the report is the lie
      return false;
    }
    return inner_->sync();
  }

  bool close() override { return inner_->close(); }

 private:
  FaultVfs* owner_;
  std::unique_ptr<File> inner_;
  std::string path_;
};

FaultVfs::FaultVfs(Vfs* inner, std::uint64_t seed,
                   StorageFaultConfig defaults)
    : inner_(inner), rng_(seed), defaults_(defaults) {}

void FaultVfs::setDefaults(StorageFaultConfig config) {
  util::MutexLock lock(mutex_);
  defaults_ = config;
}

void FaultVfs::setPathFaults(const std::string& substring,
                             StorageFaultConfig config) {
  util::MutexLock lock(mutex_);
  perPath_[substring] = config;
}

void FaultVfs::failNext(const std::string& substring, int count,
                        StorageFaultKind kind) {
  util::MutexLock lock(mutex_);
  if (count > 0) scheduled_[substring].emplace_back(kind, count);
}

const StorageFaultConfig& FaultVfs::configForLocked(
    const std::string& path) const {
  // Longest matching substring wins; ties break lexicographically so the
  // choice is deterministic across unordered_map iteration orders.
  const StorageFaultConfig* best = nullptr;
  std::size_t bestLen = 0;
  std::string bestKey;
  for (const auto& [key, cfg] : perPath_) {
    if (path.find(key) == std::string::npos) continue;
    if (best == nullptr || key.size() > bestLen ||
        (key.size() == bestLen && key < bestKey)) {
      best = &cfg;
      bestLen = key.size();
      bestKey = key;
    }
  }
  return best != nullptr ? *best : defaults_;
}

StorageFaultKind FaultVfs::pickFault(const std::string& path, OpClass op) {
  storageFaultMetrics().ops->inc();
  util::MutexLock lock(mutex_);
  return pickFaultLocked(path, op);
}

StorageFaultKind FaultVfs::pickFaultLocked(const std::string& path,
                                           OpClass op) {
  const bool isWrite = op == OpClass::kWrite;
  const bool isSync = op == OpClass::kSync;
  const bool isOpen = op == OpClass::kOpen;
  const bool isRead = op == OpClass::kRead;

  // 1. Scripted schedules beat probabilistic sampling (test determinism).
  //    A schedule is only consumed by an operation its front kind applies
  //    to — a queued fsync failure waits for the next sync(), it is never
  //    burned by an intervening write. Matching substrings are visited
  //    longest-first (ties lexicographic) for determinism.
  std::vector<std::string> keys;
  for (const auto& [key, queue] : scheduled_) {
    if (!queue.empty() && path.find(key) != std::string::npos) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end(), [](const auto& a, const auto& b) {
    return a.size() != b.size() ? a.size() > b.size() : a < b;
  });
  for (const std::string& key : keys) {
    auto& queue = scheduled_[key];
    auto& [kind, remaining] = queue.front();
    if (!applicable(kind, isWrite, isSync, isOpen, isRead)) continue;
    const StorageFaultKind k = kind;
    if (--remaining <= 0) queue.pop_front();
    return k;
  }

  // 2. Probabilistic sampling: one uniform draw partitioned into
  //    cumulative intervals over the kinds applicable to this operation
  //    class, so the per-op fault probability is exactly the sum of the
  //    applicable per-kind probabilities.
  const StorageFaultConfig& cfg = configForLocked(path);
  const double u = rng_.uniform01();
  double edge = 0.0;
  if (isWrite) {
    if (u < (edge += cfg.enospcProb)) return StorageFaultKind::kEnospc;
    if (u < (edge += cfg.shortWriteProb)) return StorageFaultKind::kShortWrite;
    if (u < (edge += cfg.tornWriteProb)) return StorageFaultKind::kTornWrite;
  } else if (isSync) {
    if (u < (edge += cfg.fsyncFailProb)) return StorageFaultKind::kFsyncFail;
  } else if (isOpen) {
    if (u < (edge += cfg.openFailProb)) return StorageFaultKind::kOpenFail;
  } else if (isRead) {
    if (u < (edge += cfg.readCorruptProb)) {
      return StorageFaultKind::kReadCorrupt;
    }
  }
  return StorageFaultKind::kNone;
}

std::uint64_t FaultVfs::uniformBetween(std::uint64_t lo, std::uint64_t hi) {
  util::MutexLock lock(mutex_);
  return rng_.uniform(lo, hi);
}

void FaultVfs::recordFault(StorageFaultKind kind) {
  const StorageFaultMetrics& m = storageFaultMetrics();
  faults_.fetch_add(1, std::memory_order_relaxed);
  m.injected->inc();
  switch (kind) {
    case StorageFaultKind::kEnospc:
      m.enospc->inc();
      break;
    case StorageFaultKind::kShortWrite:
      m.shortWrite->inc();
      break;
    case StorageFaultKind::kTornWrite:
      m.tornWrite->inc();
      break;
    case StorageFaultKind::kFsyncFail:
      m.fsyncFail->inc();
      break;
    case StorageFaultKind::kOpenFail:
      m.openFail->inc();
      break;
    case StorageFaultKind::kReadCorrupt:
      m.readCorrupt->inc();
      break;
    case StorageFaultKind::kNone:
      break;
  }
}

std::unique_ptr<File> FaultVfs::openForWrite(const std::string& path) {
  const StorageFaultKind fault = pickFault(path, OpClass::kOpen);
  if (fault == StorageFaultKind::kOpenFail) {
    recordFault(fault);
    return nullptr;
  }
  std::unique_ptr<File> inner = inner_->openForWrite(path);
  if (inner == nullptr) return nullptr;
  return std::make_unique<FaultFile>(this, std::move(inner), path);
}

util::Result<std::string> FaultVfs::readFile(const std::string& path) {
  const StorageFaultKind fault = pickFault(path, OpClass::kRead);
  util::Result<std::string> result = inner_->readFile(path);
  if (fault == StorageFaultKind::kReadCorrupt && result.ok() &&
      !result.value().empty()) {
    recordFault(fault);
    const std::uint64_t at = uniformBetween(
        0, static_cast<std::uint64_t>(result.value().size()) - 1);
    result.value()[static_cast<std::size_t>(at)] ^= 0x5a;
  }
  return result;
}

bool FaultVfs::rename(const std::string& from, const std::string& to) {
  return inner_->rename(from, to);
}

bool FaultVfs::remove(const std::string& path) { return inner_->remove(path); }

bool FaultVfs::mkdir(const std::string& path) { return inner_->mkdir(path); }

std::vector<std::string> FaultVfs::listDir(const std::string& dir) {
  return inner_->listDir(dir);
}

std::uint64_t FaultVfs::fileSize(const std::string& path) {
  return inner_->fileSize(path);
}

void FaultVfs::syncDir(const std::string& dir) { inner_->syncDir(dir); }

}  // namespace bf::io
