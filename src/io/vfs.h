// bf::io — the VFS seam every piece of durable state flows through.
//
// The WAL and snapshot code used to call ::open/::write/::fsync directly,
// which made storage failures untestable: the only way to exercise an
// ENOSPC or a failed fsync was to actually fill a disk. This interface
// pair (Vfs for path-level operations, File for an open write handle)
// is the storage counterpart of browser::RequestSink on the network
// path — a seam narrow enough to decorate. PosixVfs is the production
// implementation; FaultVfs (fault_vfs.h) wraps any Vfs and injects
// seeded storage faults for the chaos suites.
//
// Contract notes:
//   * openForWrite creates-or-truncates; a null return means open failed.
//   * File::write reports how many bytes the storage accepted. A short
//     count with ok=false is a detectable failure (ENOSPC mid-buffer); a
//     lying disk that claims success for a torn write is modelled by the
//     fault layer and only detectable by recovery-time CRC checks.
//   * PosixFile::write retries EINTR and partial writes internally, so a
//     short count from PosixVfs is a genuine storage error, not noise.
//   * All operations are thread-compatible: callers serialise access to
//     one File; distinct Files/paths may be used concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace bf::io {

/// Outcome of a File::write: `written` counts bytes the storage accepted
/// (a prefix of the input); `ok` is false on any error, including a short
/// write that could not be completed.
struct WriteResult {
  bool ok = false;
  std::size_t written = 0;
};

/// An open, writable file handle. Destruction closes (best effort) if the
/// caller did not; close() is idempotent.
class File {
 public:
  virtual ~File() = default;

  /// Appends `data` at the current offset.
  [[nodiscard]] virtual WriteResult write(std::string_view data) = 0;

  /// Durably flushes written data to the device (fsync).
  [[nodiscard]] virtual bool sync() = 0;

  /// Closes the handle; false if the close itself failed. Idempotent.
  virtual bool close() = 0;
};

/// Path-level storage operations. Implementations must be safe to share
/// across threads.
class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Create-or-truncate `path` for writing; null on failure.
  [[nodiscard]] virtual std::unique_ptr<File> openForWrite(
      const std::string& path) = 0;

  /// Whole-file read; error when the file is missing or unreadable.
  [[nodiscard]] virtual util::Result<std::string> readFile(
      const std::string& path) = 0;

  /// Atomic replace (rename(2) semantics on POSIX).
  [[nodiscard]] virtual bool rename(const std::string& from,
                                    const std::string& to) = 0;

  /// Unlink; false when the file existed but could not be removed.
  virtual bool remove(const std::string& path) = 0;

  /// Create a directory; an already-existing directory is success.
  [[nodiscard]] virtual bool mkdir(const std::string& path) = 0;

  /// Names (not paths) of regular entries in `dir`; empty on error.
  [[nodiscard]] virtual std::vector<std::string> listDir(
      const std::string& dir) = 0;

  /// Size in bytes of `path`; 0 when missing or unreadable.
  [[nodiscard]] virtual std::uint64_t fileSize(const std::string& path) = 0;

  /// Durably flushes the directory entry table (rename durability).
  /// Best-effort: failures are ignored by callers.
  virtual void syncDir(const std::string& dir) = 0;
};

/// The real filesystem, via POSIX fds.
class PosixVfs final : public Vfs {
 public:
  [[nodiscard]] std::unique_ptr<File> openForWrite(
      const std::string& path) override;
  [[nodiscard]] util::Result<std::string> readFile(
      const std::string& path) override;
  [[nodiscard]] bool rename(const std::string& from,
                            const std::string& to) override;
  bool remove(const std::string& path) override;
  [[nodiscard]] bool mkdir(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> listDir(
      const std::string& dir) override;
  [[nodiscard]] std::uint64_t fileSize(const std::string& path) override;
  void syncDir(const std::string& dir) override;
};

/// Process-wide PosixVfs; the default when callers pass no Vfs.
[[nodiscard]] Vfs& defaultVfs();

}  // namespace bf::io
