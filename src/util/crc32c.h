// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum framing every
// durable disclosure-state file uses (flow/wal.cpp frames, snapshot v2
// trailers). CRC32C is the standard choice for storage framing (iSCSI,
// ext4, LevelDB/RocksDB log records): it detects all burst errors up to 32
// bits and any odd number of bit flips, which is exactly the torn-write /
// bit-rot failure mode recovery must distinguish from a clean end-of-log.
//
// Software slicing-by-8 table implementation; deterministic across
// platforms (the tables are generated at first use from the reflected
// polynomial, not compiled in).
#pragma once

#include <cstdint>
#include <string_view>

namespace bf::util {

/// CRC32C of `data`, continuing from `seed` (pass a previous crc32c result
/// to checksum a logical stream in pieces; 0 starts a fresh checksum).
[[nodiscard]] std::uint32_t crc32c(std::string_view data,
                                   std::uint32_t seed = 0) noexcept;

/// Masked CRC in the LevelDB/RocksDB style: storing a CRC of data that
/// itself embeds CRCs would make accidental collisions more likely, so
/// stored checksums are rotated and offset. Frames store maskCrc32c(crc)
/// and verify via unmaskCrc32c.
[[nodiscard]] constexpr std::uint32_t maskCrc32c(std::uint32_t crc) noexcept {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
[[nodiscard]] constexpr std::uint32_t unmaskCrc32c(
    std::uint32_t masked) noexcept {
  const std::uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace bf::util
