// String helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bf::util {

/// Returns `s` lowercased (ASCII only; non-ASCII bytes pass through).
[[nodiscard]] std::string toLower(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Splits on a single character; empty pieces are kept.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char sep);

/// Splits text into paragraphs: blocks separated by one or more blank lines.
/// Paragraphs are trimmed; empty paragraphs are dropped.
[[nodiscard]] std::vector<std::string_view> splitParagraphs(
    std::string_view text);

/// Splits on runs of ASCII whitespace; empty tokens are dropped.
[[nodiscard]] std::vector<std::string_view> splitWords(std::string_view s);

/// Joins pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view sep);
[[nodiscard]] std::string join(const std::vector<std::string_view>& pieces,
                               std::string_view sep);

/// True if `s` starts with / ends with the given prefix/suffix.
[[nodiscard]] bool startsWith(std::string_view s,
                              std::string_view prefix) noexcept;
[[nodiscard]] bool endsWith(std::string_view s,
                            std::string_view suffix) noexcept;

/// True if `needle` occurs in `haystack` case-insensitively (ASCII).
[[nodiscard]] bool containsIgnoreCase(std::string_view haystack,
                                      std::string_view needle);

}  // namespace bf::util
