// Small statistics helpers for the bench harnesses (percentiles, CDFs).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

namespace bf::util {

/// p-th percentile (p in [0,100]) by nearest-rank on a copy of `samples`.
/// Returns 0 for an empty input.
template <typename T>
[[nodiscard]] T percentile(std::vector<T> samples, double p) {
  if (samples.empty()) return T{};
  std::sort(samples.begin(), samples.end());
  if (p <= 0) return samples.front();
  if (p >= 100) return samples.back();
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

/// Arithmetic mean; 0 for empty input.
template <typename T>
[[nodiscard]] double mean(const std::vector<T>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples.size());
}

/// Points of an empirical CDF evaluated at each sample value:
/// returns sorted (value, fraction <= value) pairs.
template <typename T>
[[nodiscard]] std::vector<std::pair<T, double>> empiricalCdf(
    std::vector<T> samples) {
  std::vector<std::pair<T, double>> out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i + 1 < samples.size() && samples[i + 1] == samples[i]) continue;
    out.emplace_back(samples[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

}  // namespace bf::util
