// Wall-clock stopwatch for latency measurement in benches and the async
// decision engine's response-time instrumentation.
#pragma once

#include <chrono>
#include <cstdint>

namespace bf::util {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = std::chrono::steady_clock::now(); }

  /// Elapsed time since construction/reset.
  [[nodiscard]] std::uint64_t elapsedNanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  [[nodiscard]] double elapsedMicros() const {
    return static_cast<double>(elapsedNanos()) / 1e3;
  }
  [[nodiscard]] double elapsedMillis() const {
    return static_cast<double>(elapsedNanos()) / 1e6;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bf::util
