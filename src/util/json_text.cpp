#include "util/json_text.h"

#include <algorithm>
#include <optional>

namespace bf::util {

namespace {

bool isJsonSpace(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Parses the four hex digits of a \uXXXX escape whose 'u' sits at index
/// `u` of `s`. Returns the code unit, or nullopt on underrun / non-hex.
std::optional<unsigned> parseHex4(std::string_view s, std::size_t u) {
  if (u + 4 >= s.size()) return std::nullopt;
  unsigned cp = 0;
  for (std::size_t k = 1; k <= 4; ++k) {
    const char c = s[u + k];
    cp <<= 4;
    if (c >= '0' && c <= '9') {
      cp |= static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      cp |= static_cast<unsigned>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      cp |= static_cast<unsigned>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return cp;
}

/// Lexes a JSON string starting at the opening quote `begin`. On success
/// sets `end` to one past the closing quote and returns true.
bool lexString(std::string_view s, std::size_t begin, std::size_t& end) {
  if (begin >= s.size() || s[begin] != '"') return false;
  std::size_t i = begin + 1;
  while (i < s.size()) {
    if (s[i] == '\\') {
      i += 2;  // skip escaped char (also covers \uXXXX's backslash-u)
      continue;
    }
    if (s[i] == '"') {
      end = i + 1;
      return true;
    }
    ++i;
  }
  return false;
}

}  // namespace

std::string escapeJsonString(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
          out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string unescapeJsonString(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\' || i + 1 >= escaped.size()) {
      out.push_back(escaped[i]);
      continue;
    }
    ++i;
    switch (escaped[i]) {
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'b':
        out.push_back('\b');
        break;
      case 'f':
        out.push_back('\f');
        break;
      case 'u': {
        // \uXXXX: decode to UTF-8. A UTF-16 high surrogate followed by a
        // \uXXXX low surrogate combines into one astral code point and is
        // emitted as proper 4-byte UTF-8 — NOT as two 3-byte CESU-8
        // triples, which would fingerprint differently from the same text
        // arriving raw and make disclosure queries miss it. A lone
        // surrogate keeps the historical 3-byte output.
        const std::optional<unsigned> first = parseHex4(escaped, i);
        if (!first) {
          out.push_back('u');  // malformed \u: keep literally
          break;
        }
        i += 4;
        unsigned cp = *first;
        if (cp >= 0xD800 && cp <= 0xDBFF && i + 2 < escaped.size() &&
            escaped[i + 1] == '\\' && escaped[i + 2] == 'u') {
          const std::optional<unsigned> second = parseHex4(escaped, i + 2);
          if (second && *second >= 0xDC00 && *second <= 0xDFFF) {
            cp = 0x10000 + ((cp - 0xD800) << 10) + (*second - 0xDC00);
            i += 6;  // consume "\uXXXX" of the low surrogate
          }
        }
        if (cp < 0x80) {
          out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
          out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
          out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
          out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
        break;
      }
      default:
        out.push_back(escaped[i]);  // covers \" \\ \/
    }
  }
  return out;
}

std::vector<JsonStringField> scanJsonStringFields(std::string_view json) {
  std::vector<JsonStringField> out;
  std::size_t i = 0;
  while (i < json.size()) {
    if (json[i] != '"') {
      ++i;
      continue;
    }
    // Candidate key string.
    std::size_t keyEnd;
    if (!lexString(json, i, keyEnd)) break;
    std::size_t j = keyEnd;
    while (j < json.size() && isJsonSpace(json[j])) ++j;
    if (j >= json.size() || json[j] != ':') {
      // Not a key — might itself be a value string; continue after it.
      i = keyEnd;
      continue;
    }
    ++j;
    while (j < json.size() && isJsonSpace(json[j])) ++j;
    if (j < json.size() && json[j] == '"') {
      std::size_t valueEnd;
      if (!lexString(json, j, valueEnd)) break;
      JsonStringField field;
      field.key = unescapeJsonString(json.substr(i + 1, keyEnd - i - 2));
      field.value = unescapeJsonString(json.substr(j + 1, valueEnd - j - 2));
      field.valueBegin = j;
      field.valueEnd = valueEnd;
      out.push_back(std::move(field));
      i = valueEnd;
    } else {
      i = j;  // non-string value; keep scanning inside it
    }
  }
  return out;
}

std::string replaceJsonStringValues(
    std::string_view json, const std::vector<JsonStringField>& fields,
    const std::vector<std::pair<std::size_t, std::string>>& replacements) {
  // Apply in ascending span order to keep offsets valid.
  std::vector<std::pair<std::size_t, std::string>> sorted = replacements;
  std::sort(sorted.begin(), sorted.end(),
            [&](const auto& a, const auto& b) {
              return fields[a.first].valueBegin < fields[b.first].valueBegin;
            });
  std::string out;
  out.reserve(json.size());
  std::size_t pos = 0;
  for (const auto& [index, newValue] : sorted) {
    const JsonStringField& f = fields[index];
    out.append(json.substr(pos, f.valueBegin - pos));
    out.push_back('"');
    out += escapeJsonString(newValue);
    out.push_back('"');
    pos = f.valueEnd;
  }
  out.append(json.substr(pos));
  return out;
}

bool looksLikeJson(std::string_view body) noexcept {
  for (char c : body) {
    if (isJsonSpace(c)) continue;
    return c == '{' || c == '[';
  }
  return false;
}

}  // namespace bf::util
