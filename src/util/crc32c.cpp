#include "util/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define BF_CRC32C_HW_X86 1
#include <nmmintrin.h>
#endif

namespace bf::util {

namespace {

/// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82f63b78u;

struct Tables {
  // t[k][b]: CRC contribution of byte value b appearing k bytes before the
  // end of an 8-byte block (slicing-by-8).
  std::array<std::array<std::uint32_t, 256>, 8> t;
};

const Tables& tables() {
  static const Tables tbl = [] {
    Tables out{};
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      out.t[0][b] = crc;
    }
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint32_t crc = out.t[0][b];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = out.t[0][crc & 0xffu] ^ (crc >> 8);
        out.t[k][b] = crc;
      }
    }
    return out;
  }();
  return tbl;
}

#if defined(BF_CRC32C_HW_X86)
/// SSE4.2 CRC32 instruction path (same Castagnoli polynomial). Compiled
/// with a per-function target attribute so the translation unit itself
/// needs no -msse4.2; selected at runtime via cpuid.
__attribute__((target("sse4.2"))) std::uint32_t crc32cHw(
    const char* p, std::size_t n, std::uint32_t crc) noexcept {
  std::uint64_t c64 = crc;
  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    c64 = _mm_crc32_u64(c64, chunk);
    p += 8;
    n -= 8;
  }
  std::uint32_t c = static_cast<std::uint32_t>(c64);
  while (n-- > 0) {
    c = _mm_crc32_u8(c, static_cast<unsigned char>(*p++));
  }
  return c;
}

bool haveHwCrc32c() noexcept { return __builtin_cpu_supports("sse4.2"); }
#endif  // BF_CRC32C_HW_X86

}  // namespace

std::uint32_t crc32c(std::string_view data, std::uint32_t seed) noexcept {
#if defined(BF_CRC32C_HW_X86)
  static const bool hw = haveHwCrc32c();
  if (hw) {
    return ~crc32cHw(data.data(), data.size(), ~seed);
  }
#endif
  const Tables& tbl = tables();
  std::uint32_t crc = ~seed;
  const char* p = data.data();
  std::size_t n = data.size();

  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);  // little-endian assumed (project-wide)
    crc ^= static_cast<std::uint32_t>(chunk);
    const std::uint32_t hi = static_cast<std::uint32_t>(chunk >> 32);
    crc = tbl.t[7][crc & 0xffu] ^ tbl.t[6][(crc >> 8) & 0xffu] ^
          tbl.t[5][(crc >> 16) & 0xffu] ^ tbl.t[4][crc >> 24] ^
          tbl.t[3][hi & 0xffu] ^ tbl.t[2][(hi >> 8) & 0xffu] ^
          tbl.t[1][(hi >> 16) & 0xffu] ^ tbl.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = tbl.t[0][(crc ^ static_cast<unsigned char>(*p++)) & 0xffu] ^
          (crc >> 8);
  }
  return ~crc;
}

}  // namespace bf::util
