// Minimal JSON string-field scanning and rewriting.
//
// Modern cloud services upload user text inside JSON request bodies. The
// service-adapter layer (paper S4.4: "a service-specific transformation of
// the service's data to text segments") needs to (a) pull the string
// values out of a JSON body and (b) substitute rewritten values back in
// place (for encrypt-before-upload). This is a span-preserving scanner for
// `"key": "value"` pairs with full escape handling — not a general JSON
// parser: non-string values and structure are left untouched, which is
// exactly what a body-rewriting interceptor wants.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace bf::util {

/// One string-valued field found in a JSON text.
struct JsonStringField {
  /// The (unescaped) key.
  std::string key;
  /// The unescaped value.
  std::string value;
  /// Byte span of the value in the original text, INCLUDING the quotes.
  std::size_t valueBegin = 0;
  std::size_t valueEnd = 0;
};

/// Scans `json` for "key": "value" pairs at any nesting depth, in order of
/// appearance. Malformed input yields the fields that could be parsed.
[[nodiscard]] std::vector<JsonStringField> scanJsonStringFields(
    std::string_view json);

/// Returns `json` with the value spans of the given fields replaced by the
/// (escaped, re-quoted) new values. `replacements` maps indexes into
/// `fields` to replacement plaintexts. Spans must come from a scan of the
/// same `json`.
[[nodiscard]] std::string replaceJsonStringValues(
    std::string_view json, const std::vector<JsonStringField>& fields,
    const std::vector<std::pair<std::size_t, std::string>>& replacements);

/// JSON string escaping/unescaping for the value payloads.
[[nodiscard]] std::string escapeJsonString(std::string_view raw);
[[nodiscard]] std::string unescapeJsonString(std::string_view escaped);

/// True if `body` plausibly is a JSON object/array (first non-space byte).
[[nodiscard]] bool looksLikeJson(std::string_view body) noexcept;

}  // namespace bf::util
