#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/mutex.h"

namespace bf::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Innermost rank: any code path may log while holding any other lock.
Mutex g_mutex{kRankLogging, "util::logging.g_mutex"};

const char* levelName(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}
}  // namespace

void setLogLevel(LogLevel level) noexcept { g_level.store(level); }
LogLevel logLevel() noexcept { return g_level.load(); }

void logMessage(LogLevel level, std::string_view module,
                std::string_view msg) {
  if (level < g_level.load()) return;
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", levelName(level),
               static_cast<int>(module.size()), module.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace bf::util
