// Retry primitives for the upload path.
//
// The paper's usability argument (Figs. 12/13) assumes uploads keep working
// while BrowserFlow interposes on them; a real deployment also has to keep
// working when the *network* misbehaves. These primitives give clients a
// deterministic, simulation-friendly retry discipline:
//
//  - RetryPolicy:  attempt cap, per-delay bounds and an overall deadline on
//                  the accumulated backoff;
//  - Backoff:      exponential backoff with decorrelated jitter (the AWS
//                  "decorrelated" scheme: next = uniform(base, prev * 3),
//                  capped), driven by an explicit seeded Rng so bench runs
//                  and tests are reproducible;
//  - RetryBudget:  a token bucket shared across a client's requests that
//                  bounds the retry amplification a fault storm can cause
//                  (every retry spends a token; successes slowly refill).
//
// Delays are *simulated* milliseconds, mirroring SimNetwork's latency
// model: callers account for them (metrics, goodput math) instead of
// sleeping, so fault-heavy benches stay fast.
#pragma once

#include <algorithm>

#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace bf::util {

struct RetryPolicy {
  /// Total tries including the first; 1 disables retries.
  int maxAttempts = 4;
  /// First backoff target and the per-delay cap.
  double baseDelayMs = 25.0;
  double maxDelayMs = 1000.0;
  /// Cap on the ACCUMULATED backoff across one call's retries; a retry
  /// whose delay would exceed it is abandoned instead. 0 = no deadline.
  double deadlineMs = 10000.0;

  [[nodiscard]] bool enabled() const noexcept { return maxAttempts > 1; }
};

/// Produces the delay sequence for one logical request. Reset between
/// requests (or construct fresh); `rng` is not owned.
class Backoff {
 public:
  Backoff(const RetryPolicy& policy, Rng* rng) noexcept
      : policy_(policy), rng_(rng) {}

  /// Next delay with decorrelated jitter: the first delay is exactly
  /// baseDelayMs, then uniform(base, prev * 3) capped at maxDelayMs.
  [[nodiscard]] double nextDelayMs() noexcept {
    double next;
    if (prevMs_ <= 0.0) {
      next = policy_.baseDelayMs;
    } else {
      const double hi = std::max(prevMs_ * 3.0, policy_.baseDelayMs);
      next = policy_.baseDelayMs +
             rng_->uniform01() * (hi - policy_.baseDelayMs);
    }
    next = std::min(next, policy_.maxDelayMs);
    prevMs_ = next;
    return next;
  }

  void reset() noexcept { prevMs_ = 0.0; }

 private:
  RetryPolicy policy_;
  Rng* rng_;
  double prevMs_ = 0.0;
};

/// Token bucket bounding retry amplification across requests. A retry
/// withdraws one token; each successful request deposits `refundPerSuccess`
/// back (capped at `capacity`). Under a sustained fault storm the bucket
/// empties and clients degrade to single attempts instead of multiplying
/// load on an already-unhealthy backend.
///
/// Thread-safe: one budget may be shared by concurrent uploads (the whole
/// point of bounding AGGREGATE amplification), so the balance is guarded by
/// an internal leaf mutex.
class RetryBudget {
 public:
  explicit RetryBudget(double capacity = 10.0,
                       double refundPerSuccess = 0.1) noexcept
      : capacity_(capacity),
        refundPerSuccess_(refundPerSuccess),
        tokens_(capacity) {}

  RetryBudget(const RetryBudget&) = delete;
  RetryBudget& operator=(const RetryBudget&) = delete;

  /// Re-arms the bucket (full again) with new parameters; replaces the old
  /// assign-a-fresh-budget idiom, which the internal mutex rules out.
  void configure(double capacity, double refundPerSuccess = 0.1) noexcept
      BF_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    capacity_ = capacity;
    refundPerSuccess_ = refundPerSuccess;
    tokens_ = capacity;
  }

  /// True (and spends a token) iff a full token is available.
  [[nodiscard]] bool tryWithdraw() noexcept BF_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  void deposit() noexcept BF_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    tokens_ = std::min(capacity_, tokens_ + refundPerSuccess_);
  }

  [[nodiscard]] double tokens() const noexcept BF_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return tokens_;
  }

 private:
  mutable Mutex mutex_{kRankRetryBudget, "RetryBudget.mutex_"};
  double capacity_ BF_GUARDED_BY(mutex_);
  double refundPerSuccess_ BF_GUARDED_BY(mutex_);
  double tokens_ BF_GUARDED_BY(mutex_);
};

}  // namespace bf::util
