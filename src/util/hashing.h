// Hash primitives used throughout BrowserFlow.
//
// The paper (S4.1) computes fingerprints from hashes of character n-grams
// using "an efficient hash function [Karp-Rabin 1987]". We provide:
//   - KarpRabin: a rolling polynomial hash that can slide over a text in
//     O(1) per character, which is what makes fingerprinting linear in the
//     segment length.
//   - fnv1a64 / mix64: general-purpose hashing for ids and containers.
#pragma once

#include <cstdint>
#include <string_view>

namespace bf::util {

/// 64-bit FNV-1a hash of a byte string. Deterministic across platforms.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Finalizer from SplitMix64; decorrelates consecutive integers.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two hashes (order-sensitive), boost::hash_combine style.
[[nodiscard]] constexpr std::uint64_t hashCombine(std::uint64_t a,
                                                  std::uint64_t b) noexcept {
  return a ^ (mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/// Rolling Karp-Rabin hash over a fixed-length window of characters.
///
/// Computes H(c0..c_{n-1}) = sum c_i * B^{n-1-i} mod 2^64 and supports
/// sliding the window one character at a time in O(1). Used by the n-gram
/// hasher (paper S4.1, step S2).
class KarpRabin {
 public:
  /// Base of the polynomial. An odd constant with good bit dispersion.
  static constexpr std::uint64_t kBase = 0x100000001b3ULL;

  /// Creates a roller for n-grams of length `n` (n >= 1).
  explicit KarpRabin(std::size_t n) noexcept;

  /// Hash of the first n-gram of `text` (text.size() >= n()).
  [[nodiscard]] std::uint64_t init(std::string_view text) noexcept;

  /// Slides the window: removes `outgoing` (the oldest character) and
  /// appends `incoming`. Returns the new hash.
  [[nodiscard]] std::uint64_t roll(char outgoing, char incoming) noexcept;

  /// Current hash value.
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

  /// Window length this roller was constructed with.
  [[nodiscard]] std::size_t n() const noexcept { return n_; }

 private:
  std::size_t n_;
  std::uint64_t topPow_;  // kBase^(n-1)
  std::uint64_t hash_ = 0;
};

}  // namespace bf::util
