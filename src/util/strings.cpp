#include "util/strings.h"

#include <algorithm>
#include <cctype>

namespace bf::util {

namespace {
bool isSpace(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
char lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

std::string toLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](char c) { return lower(c); });
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0, e = s.size();
  while (b < e && isSpace(s[b])) ++b;
  while (e > b && isSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> splitParagraphs(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    // Find the end of the current block: a newline followed (possibly after
    // spaces) by another newline, or end of text.
    std::size_t blockStart = pos;
    std::size_t blockEnd = text.size();
    std::size_t i = pos;
    while (i < text.size()) {
      if (text[i] == '\n') {
        std::size_t j = i + 1;
        while (j < text.size() && (text[j] == ' ' || text[j] == '\t' ||
                                   text[j] == '\r')) {
          ++j;
        }
        if (j < text.size() && text[j] == '\n') {
          blockEnd = i;
          pos = j + 1;
          break;
        }
      }
      ++i;
    }
    if (i >= text.size()) {
      blockEnd = text.size();
      pos = text.size();
    }
    std::string_view para = trim(text.substr(blockStart, blockEnd - blockStart));
    if (!para.empty()) out.push_back(para);
  }
  return out;
}

std::vector<std::string_view> splitWords(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && isSpace(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !isSpace(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

namespace {
template <typename V>
std::string joinImpl(const V& pieces, std::string_view sep) {
  std::string out;
  std::size_t total = 0;
  for (const auto& p : pieces) total += p.size() + sep.size();
  out.reserve(total);
  bool first = true;
  for (const auto& p : pieces) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}
}  // namespace

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  return joinImpl(pieces, sep);
}

std::string join(const std::vector<std::string_view>& pieces,
                 std::string_view sep) {
  return joinImpl(pieces, sep);
}

bool startsWith(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool containsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(haystack[i + j]) != lower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

}  // namespace bf::util
