// Annotated mutex primitives with a runtime lock-rank assertion.
//
// Every mutex in BrowserFlow outside this directory is a bf::util::Mutex
// (scripts/bflint.py bans raw std::mutex elsewhere). The wrapper adds two
// things over std::mutex:
//
//  1. Clang thread-safety capability annotations (util/thread_annotations.h)
//     so `-Wthread-safety -Werror=thread-safety` proves lock discipline at
//     compile time;
//  2. a debug-only lock-RANK assertion encoding the documented hierarchy:
//     a thread may only acquire a mutex whose rank is STRICTLY GREATER than
//     every rank it already holds (outermost = lowest rank). Violations —
//     i.e. potential lock-order inversions — abort by default, or invoke a
//     test-installable handler (see setLockRankViolationHandler).
//
// Documented hierarchy, outermost first (DESIGN.md §9):
//
//   kRankEngineState   (10)  core::DecisionEngine::stateMutex_
//   kRankEngineQueue   (20)  core::DecisionEngine::queueMutex_
//   kRankPendingAudits (30)  core::DecisionEngine::pendingAuditsMutex_
//   kRankTracker       (40)  flow::FlowTracker::mutex_
//   kRankWal           (50)  flow::WriteAheadLog::mutex_ (appends run under
//                            the tracker's exclusive sections)
//   kRankFaultInjector (60)  cloud::FaultInjector::mutex_
//   kRankStorageFault  (65)  io::FaultVfs::mutex_ (fault picks run under the
//                            WAL mutex during appends/checkpoints)
//   kRankRetryBudget   (70)  util::RetryBudget::mutex_
//   kRankMetrics       (80)  obs::MetricsRegistry::mutex_
//   kRankTrace         (85)  obs::TraceLog::mutex_ (spans close under any lock)
//   kRankFlightRecorder(88)  obs::FlightRecorder::mutex_ (decision records
//                            are retained after outer locks are released,
//                            but explain() may run under engine read locks)
//   kRankLogging       (95)  util logging sink (innermost: any code may log)
//
// Rank checking is compiled in when BF_LOCK_RANK_CHECKS is 1 (the CMake
// option of the same name, ON by default for every dev/test preset; a
// production build may configure with -DBF_LOCK_RANK_CHECKS=OFF, falling
// back to NDEBUG: checks off).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

#if !defined(BF_LOCK_RANK_CHECKS)
#if defined(NDEBUG)
#define BF_LOCK_RANK_CHECKS 0
#else
#define BF_LOCK_RANK_CHECKS 1
#endif
#endif

namespace bf::util {

// Lock ranks (outermost first; strictly increasing on one thread).
inline constexpr int kRankUnranked = -1;  ///< exempt from hierarchy checks
inline constexpr int kRankEngineState = 10;
inline constexpr int kRankEngineQueue = 20;
inline constexpr int kRankPendingAudits = 30;
inline constexpr int kRankTracker = 40;
inline constexpr int kRankWal = 50;
inline constexpr int kRankFaultInjector = 60;
inline constexpr int kRankStorageFault = 65;
inline constexpr int kRankRetryBudget = 70;
inline constexpr int kRankMetrics = 80;
inline constexpr int kRankTrace = 85;
inline constexpr int kRankFlightRecorder = 88;
inline constexpr int kRankLogging = 95;

/// Called when a thread acquires a ranked mutex while already holding one
/// of equal or greater rank. The default handler prints both mutexes and
/// aborts; tests install a capturing handler to assert on violations
/// without dying.
using LockRankViolationHandler = void (*)(const char* heldName, int heldRank,
                                          const char* acquiredName,
                                          int acquiredRank);

/// Installs `handler` (nullptr restores the abort default) and returns the
/// previous one. Test-only; not synchronised with concurrent lock traffic.
LockRankViolationHandler setLockRankViolationHandler(
    LockRankViolationHandler handler) noexcept;

/// True when the build carries lock-rank bookkeeping (BF_LOCK_RANK_CHECKS).
[[nodiscard]] constexpr bool lockRankChecksEnabled() noexcept {
  return BF_LOCK_RANK_CHECKS != 0;
}

/// Process-wide count of ranked-mutex acquisitions of `rank` (shared and
/// exclusive alike) since start-up. Always 0 when lockRankChecksEnabled()
/// is false. Test hook: proving a code path is lock-free at a given rank
/// means running it and asserting this count did not move (e.g. the
/// tracker's read path never takes kRankTracker).
[[nodiscard]] std::uint64_t lockRankAcquireCount(int rank) noexcept;

namespace detail {
/// Bookkeeping hooks behind Mutex; no-ops unless BF_LOCK_RANK_CHECKS.
void noteAcquire(const void* mutex, int rank, const char* name) noexcept;
void noteRelease(const void* mutex, int rank) noexcept;
}  // namespace detail

/// Annotated std::mutex wrapper. Construct with a rank from the hierarchy
/// above (and a name for diagnostics); default-constructed mutexes are
/// unranked and exempt from order checking.
class BF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() noexcept = default;
  explicit Mutex(int rank, const char* name = "") noexcept
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BF_ACQUIRE() {
#if BF_LOCK_RANK_CHECKS
    detail::noteAcquire(this, rank_, name_);
#endif
    m_.lock();
  }

  void unlock() BF_RELEASE() {
    m_.unlock();
#if BF_LOCK_RANK_CHECKS
    detail::noteRelease(this, rank_);
#endif
  }

  bool try_lock() BF_TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
#if BF_LOCK_RANK_CHECKS
    detail::noteAcquire(this, rank_, name_);
#endif
    return true;
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] const char* name() const noexcept { return name_; }

 private:
  std::mutex m_;
  int rank_ = kRankUnranked;
  const char* name_ = "";
};

/// RAII lock for a whole scope (the common case).
class BF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() BF_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Annotated reader-writer mutex (std::shared_mutex wrapper). Shared
/// ("reader") acquisitions run concurrently with each other; exclusive
/// ("writer") acquisitions serialise with everything. Both modes
/// participate in the rank hierarchy: acquiring a SharedMutex — shared or
/// exclusive — while holding any mutex of equal or greater rank is a
/// violation, and recursive shared acquisition on one thread (legal-looking
/// but deadlock-prone once a writer queues between the two reads) is caught
/// the same way.
class BF_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() noexcept = default;
  explicit SharedMutex(int rank, const char* name = "") noexcept
      : rank_(rank), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() BF_ACQUIRE() {
#if BF_LOCK_RANK_CHECKS
    detail::noteAcquire(this, rank_, name_);
#endif
    m_.lock();
  }

  void unlock() BF_RELEASE() {
    m_.unlock();
#if BF_LOCK_RANK_CHECKS
    detail::noteRelease(this, rank_);
#endif
  }

  void lock_shared() BF_ACQUIRE_SHARED() {
#if BF_LOCK_RANK_CHECKS
    detail::noteAcquire(this, rank_, name_);
#endif
    m_.lock_shared();
  }

  void unlock_shared() BF_RELEASE_SHARED() {
    m_.unlock_shared();
#if BF_LOCK_RANK_CHECKS
    detail::noteRelease(this, rank_);
#endif
  }

  bool try_lock() BF_TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
#if BF_LOCK_RANK_CHECKS
    detail::noteAcquire(this, rank_, name_);
#endif
    return true;
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] const char* name() const noexcept { return name_; }

 private:
  std::shared_mutex m_;
  int rank_ = kRankUnranked;
  const char* name_ = "";
};

/// RAII exclusive (writer) lock over a SharedMutex.
class BF_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) BF_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~SharedMutexLock() BF_RELEASE_GENERIC() { mu_.unlock(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class BF_SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mu) BF_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedReaderLock() BF_RELEASE_GENERIC() { mu_.unlock_shared(); }

  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable usable with Mutex. Waiting releases and re-acquires
/// the mutex through Mutex::lock/unlock, so the rank bookkeeping stays
/// consistent across the wait.
class CondVar {
 public:
  void wait(Mutex& mu) BF_REQUIRES(mu) { cv_.wait(mu); }
  void notifyOne() noexcept { cv_.notify_one(); }
  void notifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace bf::util
