#include "util/clock.h"

#include <chrono>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define BF_HAVE_RDTSC 1
#else
#define BF_HAVE_RDTSC 0
#endif

namespace bf::util {
namespace {

std::uint64_t steadyNanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if BF_HAVE_RDTSC
/// Ticks per nanosecond, measured once against the steady clock. A ~200 µs
/// window keeps the ratio stable to well under 1% — far below the precision
/// stage attribution needs — while being invisible at process start.
double ticksPerNano() noexcept {
  static const double rate = [] {
    const std::uint64_t t0 = __rdtsc();
    const std::uint64_t n0 = steadyNanos();
    while (steadyNanos() - n0 < 200'000) {
    }
    const std::uint64_t n1 = steadyNanos();
    const std::uint64_t t1 = __rdtsc();
    const double r =
        static_cast<double>(t1 - t0) / static_cast<double>(n1 - n0);
    return r > 0.0 ? r : 1.0;
  }();
  return rate;
}
#endif

}  // namespace

Timestamp WallClock::now() { return steadyNanos(); }

std::uint64_t fastTicks() noexcept {
#if BF_HAVE_RDTSC
  return __rdtsc();
#else
  return steadyNanos();
#endif
}

std::uint64_t fastTicksToNanos(std::uint64_t ticks) noexcept {
#if BF_HAVE_RDTSC
  // Multiply by the cached reciprocal: this runs twice per stage timer, and
  // a double divide costs several times a multiply.
  static const double nanosPerTick = 1.0 / ticksPerNano();
  return static_cast<std::uint64_t>(static_cast<double>(ticks) * nanosPerTick);
#else
  return ticks;
#endif
}

void warmFastTicks() noexcept { (void)fastTicksToNanos(1); }

}  // namespace bf::util
