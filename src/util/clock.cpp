#include "util/clock.h"

#include <chrono>

namespace bf::util {

Timestamp WallClock::now() {
  return static_cast<Timestamp>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace bf::util
