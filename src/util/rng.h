// Deterministic random number generation.
//
// Every stochastic component (corpus generator, revision model, latency
// model) takes an explicit seeded Rng so that datasets, ground truth and
// bench results are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bf::util {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
class Rng {
 public:
  /// Seeds the generator from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept;

  /// Zipf-distributed rank in [0, n) with exponent s (s > 0).
  /// Used for realistic word-frequency distributions in synthetic text.
  std::size_t zipf(std::size_t n, double s) noexcept;

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    return v[static_cast<std::size_t>(uniform(0, v.size() - 1))];
  }

  /// Gaussian sample (Box-Muller) with the given mean/stddev.
  double gaussian(double mean, double stddev) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool haveSpareGaussian_ = false;
  double spareGaussian_ = 0.0;
};

}  // namespace bf::util
