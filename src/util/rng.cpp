#include "util/rng.h"

#include <cmath>

#include "util/hashing.h"

namespace bf::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 expansion of the seed, as recommended by the xoshiro authors.
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = mix64(x);
  }
  // Avoid the all-zero state (astronomically unlikely but cheap to guard).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return next();  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return lo + v % range;
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept { return uniform01() < p; }

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  // Inverse-CDF via rejection (Devroye). Good enough for corpus generation.
  // For s ~ 1 and moderate n this is fast and unbiased.
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    const double u = uniform01();
    const double v = uniform01();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-12)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<std::size_t>(x) - 1;
    }
  }
}

double Rng::gaussian(double mean, double stddev) noexcept {
  if (haveSpareGaussian_) {
    haveSpareGaussian_ = false;
    return mean + stddev * spareGaussian_;
  }
  double u, v, r2;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    r2 = u * u + v * v;
  } while (r2 >= 1.0 || r2 == 0.0);
  const double f = std::sqrt(-2.0 * std::log(r2) / r2);
  spareGaussian_ = v * f;
  haveSpareGaussian_ = true;
  return mean + stddev * u * f;
}

}  // namespace bf::util
