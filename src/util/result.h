// Result<T>: a lightweight value-or-error type (std::expected is C++23).
//
// Errors are human-readable strings; BrowserFlow has no recoverable error
// taxonomy that would justify a code enum, and the messages surface directly
// in logs and test failures.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace bf::util {

template <typename T>
class Result {
 public:
  /// Implicit success construction.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Named error construction.
  static Result error(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  /// Value access; asserts ok().
  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  [[nodiscard]] const std::string& errorMessage() const noexcept {
    return error_;
  }

 private:
  Result() = default;
  std::optional<T> value_;
  std::string error_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;  // ok
  static Status error(std::string message) {
    Status s;
    s.error_ = std::move(message);
    s.ok_ = false;
    return s;
  }
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }
  [[nodiscard]] const std::string& errorMessage() const noexcept {
    return error_;
  }

 private:
  bool ok_ = true;
  std::string error_;
};

}  // namespace bf::util
