#include "util/hashing.h"

namespace bf::util {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

KarpRabin::KarpRabin(std::size_t n) noexcept : n_(n), topPow_(1) {
  for (std::size_t i = 1; i < n_; ++i) topPow_ *= kBase;
}

std::uint64_t KarpRabin::init(std::string_view text) noexcept {
  hash_ = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    hash_ = hash_ * kBase + static_cast<unsigned char>(text[i]);
  }
  return hash_;
}

std::uint64_t KarpRabin::roll(char outgoing, char incoming) noexcept {
  hash_ -= topPow_ * static_cast<unsigned char>(outgoing);
  hash_ = hash_ * kBase + static_cast<unsigned char>(incoming);
  return hash_;
}

}  // namespace bf::util
