#include "util/mutex.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace bf::util {

namespace {

void abortOnViolation(const char* heldName, int heldRank,
                      const char* acquiredName, int acquiredRank) {
  std::fprintf(stderr,
               "bf::util::Mutex lock-rank violation: acquiring '%s' (rank %d) "
               "while holding '%s' (rank %d); the hierarchy requires strictly "
               "increasing ranks (see util/mutex.h)\n",
               (acquiredName != nullptr && *acquiredName) ? acquiredName : "?",
               acquiredRank,
               (heldName != nullptr && *heldName) ? heldName : "?", heldRank);
  std::abort();
}

std::atomic<LockRankViolationHandler> g_handler{&abortOnViolation};

#if BF_LOCK_RANK_CHECKS
/// Per-thread stack of held RANKED mutexes. Small and fixed-size: the
/// hierarchy is shallow by design, and overflow degrades to not checking
/// the overflowed entries rather than misreporting.
struct HeldLocks {
  static constexpr int kMax = 16;
  struct Entry {
    const void* mutex;
    int rank;
    const char* name;
  };
  Entry entries[kMax];
  int count = 0;
};

HeldLocks& heldLocks() noexcept {
  thread_local HeldLocks held;
  return held;
}

/// Per-rank acquisition counters behind lockRankAcquireCount(). Ranks are
/// small constants (< 100, see the hierarchy in mutex.h); anything outside
/// the table is simply not counted.
constexpr int kMaxCountedRank = 128;
std::atomic<std::uint64_t> g_rankAcquires[kMaxCountedRank];
#endif  // BF_LOCK_RANK_CHECKS

}  // namespace

LockRankViolationHandler setLockRankViolationHandler(
    LockRankViolationHandler handler) noexcept {
  return g_handler.exchange(handler != nullptr ? handler : &abortOnViolation);
}

std::uint64_t lockRankAcquireCount(int rank) noexcept {
#if BF_LOCK_RANK_CHECKS
  if (rank >= 0 && rank < kMaxCountedRank) {
    return g_rankAcquires[rank].load(std::memory_order_relaxed);
  }
#else
  (void)rank;
#endif
  return 0;
}

namespace detail {

#if BF_LOCK_RANK_CHECKS

void noteAcquire(const void* mutex, int rank, const char* name) noexcept {
  if (rank == kRankUnranked) return;
  if (rank >= 0 && rank < kMaxCountedRank) {
    g_rankAcquires[rank].fetch_add(1, std::memory_order_relaxed);
  }
  HeldLocks& held = heldLocks();
  // The deepest-ranked held mutex is not necessarily the most recent entry
  // (out-of-order releases are legal), so check against all of them.
  for (int i = 0; i < held.count; ++i) {
    if (held.entries[i].rank >= rank) {
      g_handler.load(std::memory_order_relaxed)(
          held.entries[i].name, held.entries[i].rank, name, rank);
      // A non-aborting (test) handler returns; keep bookkeeping coherent.
      break;
    }
  }
  if (held.count < HeldLocks::kMax) {
    held.entries[held.count] = HeldLocks::Entry{mutex, rank, name};
    ++held.count;
  }
}

void noteRelease(const void* mutex, int rank) noexcept {
  if (rank == kRankUnranked) return;
  HeldLocks& held = heldLocks();
  for (int i = held.count - 1; i >= 0; --i) {
    if (held.entries[i].mutex == mutex) {
      for (int j = i; j + 1 < held.count; ++j) {
        held.entries[j] = held.entries[j + 1];
      }
      --held.count;
      return;
    }
  }
}

#else  // !BF_LOCK_RANK_CHECKS

void noteAcquire(const void*, int, const char*) noexcept {}
void noteRelease(const void*, int) noexcept {}

#endif  // BF_LOCK_RANK_CHECKS

}  // namespace detail

}  // namespace bf::util
