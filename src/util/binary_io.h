// Little-endian binary serialization primitives shared by the snapshot
// writers (flow tracker state, TDM policy state). Header-only.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace bf::util {

// ---- writing -----------------------------------------------------------------

inline void putU8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
inline void putU32(std::string& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.append(b, 4);
}
inline void putU64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.append(b, 8);
}
inline void putF64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  putU64(out, bits);
}
inline void putStr(std::string& out, std::string_view s) {
  putU64(out, s.size());
  out.append(s);
}

// ---- reading -----------------------------------------------------------------

/// Bounds-checked sequential reader. After any underrun, ok() is false and
/// every further read returns a zero value.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool atEnd() const noexcept { return pos_ == data_.size(); }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(
               data_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
               data_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (!need(n)) return {};
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

 private:
  bool need(std::uint64_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace bf::util
