// Minimal leveled logger.
//
// Keeps the library free of iostream noise by default; tests and examples
// can raise the level. Thread-safe: each message is written with one call
// under a mutex.
#pragma once

#include <sstream>
#include <string>

namespace bf::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level (default: kWarn).
void setLogLevel(LogLevel level) noexcept;
[[nodiscard]] LogLevel logLevel() noexcept;

/// Writes one formatted line to stderr if `level` passes the global filter.
void logMessage(LogLevel level, std::string_view module, std::string_view msg);

/// Stream-style helper: BF_LOG(kInfo, "flow") << "observed " << n;
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view module)
      : level_(level), module_(module) {}
  ~LogStream() { logMessage(level_, module_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string module_;
  std::ostringstream os_;
};

/// Swallows a LogStream so a filtered BF_LOG expands to a void expression.
/// operator& binds looser than operator<<, so the whole chain is consumed.
struct LogVoidify {
  void operator&(const LogStream&) const noexcept {}
};

}  // namespace bf::util

// The level check happens before the LogStream (and its ostringstream) is
// constructed, so filtered-out messages never format their operands. The
// ternary keeps this usable as a single statement inside un-braced ifs.
#define BF_LOG(level, module)                       \
  ((level) < ::bf::util::logLevel())                \
      ? (void)0                                     \
      : ::bf::util::LogVoidify() &                  \
            ::bf::util::LogStream(level, module)
