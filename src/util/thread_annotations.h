// Portable Clang thread-safety-analysis annotations.
//
// BrowserFlow's concurrency invariants (which field is guarded by which
// mutex, which private helper requires which lock) are encoded with these
// macros so that `clang -Wthread-safety -Werror=thread-safety` proves them
// at compile time. Under GCC (and any compiler without the capability
// attributes) every macro expands to nothing, so the annotations are pure
// documentation there — the build is identical.
//
// Conventions (see DESIGN.md "Static analysis & concurrency invariants"):
//  - every field shared between threads carries BF_GUARDED_BY(mutex);
//  - every private helper that assumes a held lock carries BF_REQUIRES and
//    is named *Locked;
//  - public entry points that must NOT be called with a lock held carry
//    BF_EXCLUDES;
//  - raw std::mutex is banned outside src/util (scripts/bflint.py enforces
//    it) — use bf::util::Mutex / MutexLock from util/mutex.h, which carry
//    these annotations and the debug lock-rank assertion.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define BF_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define BF_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

/// Marks a class as a capability (lockable type).
#define BF_CAPABILITY(x) BF_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define BF_SCOPED_CAPABILITY BF_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define BF_GUARDED_BY(x) BF_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointee may only be read/written while holding `x` (the pointer itself
/// is unguarded).
#define BF_PT_GUARDED_BY(x) BF_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Static lock-order declarations (checked under -Wthread-safety-beta; the
/// runtime rank assertion in util/mutex.h checks the same order always).
#define BF_ACQUIRED_BEFORE(...) \
  BF_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define BF_ACQUIRED_AFTER(...) \
  BF_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function may only be called while holding the listed capabilities.
#define BF_REQUIRES(...) \
  BF_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define BF_REQUIRES_SHARED(...) \
  BF_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the listed capabilities.
#define BF_ACQUIRE(...) \
  BF_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define BF_RELEASE(...) \
  BF_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define BF_TRY_ACQUIRE(...) \
  BF_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Shared (reader) acquisition/release, for util::SharedMutex. A function
/// holding the capability exclusively satisfies BF_REQUIRES_SHARED; reads
/// of BF_GUARDED_BY fields are legal under either mode, writes only under
/// exclusive.
#define BF_ACQUIRE_SHARED(...) \
  BF_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define BF_RELEASE_SHARED(...) \
  BF_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define BF_TRY_ACQUIRE_SHARED(...) \
  BF_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))
/// Generic release for BF_SCOPED_CAPABILITY destructors that may hold the
/// capability in either mode (clang's scoped analysis tracks which).
#define BF_RELEASE_GENERIC(...) \
  BF_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// Function must NOT be called while holding the listed capabilities
/// (deadlock prevention for self-locking public entry points).
#define BF_EXCLUDES(...) BF_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts (without acquiring) that the calling thread holds `x`.
#define BF_ASSERT_CAPABILITY(x) \
  BF_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the capability `x`.
#define BF_RETURN_CAPABILITY(x) BF_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Used only where a
/// reference to guarded state legitimately escapes under a documented
/// external-serialisation contract (e.g. FlowTracker::segmentDb()).
#define BF_NO_THREAD_SAFETY_ANALYSIS \
  BF_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
