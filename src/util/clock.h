// Time sources.
//
// The flow tracker orders hash observations by timestamp to compute
// authoritative fingerprints (paper S4.3). Using an injectable clock keeps
// that ordering deterministic in tests and benches while production code can
// use wall time.
#pragma once

#include <cstdint>

namespace bf::util {

/// Monotonically non-decreasing timestamp. Unit: clock-defined ticks.
using Timestamp = std::uint64_t;

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Returns the current time. Successive calls never go backwards.
  virtual Timestamp now() = 0;
};

/// Deterministic clock: every call to now() advances by one tick.
/// Guarantees strict ordering of observations, which tests rely on.
class LogicalClock final : public Clock {
 public:
  explicit LogicalClock(Timestamp start = 0) noexcept : t_(start) {}
  Timestamp now() override { return t_++; }
  /// Jumps forward; next now() returns at least `t`.
  void advanceTo(Timestamp t) noexcept {
    if (t > t_) t_ = t;
  }

 private:
  Timestamp t_;
};

/// Wall clock in nanoseconds since an unspecified epoch (steady).
class WallClock final : public Clock {
 public:
  Timestamp now() override;
};

}  // namespace bf::util
