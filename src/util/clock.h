// Time sources.
//
// The flow tracker orders hash observations by timestamp to compute
// authoritative fingerprints (paper S4.3). Using an injectable clock keeps
// that ordering deterministic in tests and benches while production code can
// use wall time.
#pragma once

#include <atomic>
#include <cstdint>

namespace bf::util {

/// Monotonically non-decreasing timestamp. Unit: clock-defined ticks.
using Timestamp = std::uint64_t;

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Returns the current time. Successive calls never go backwards.
  virtual Timestamp now() = 0;
};

/// Deterministic clock: every call to now() advances by one tick.
/// Guarantees strict ordering of observations, which tests rely on.
/// Atomic: one clock is typically shared by the tracker (internally
/// locked) and the policy (engine-locked), which run under different
/// mutexes and may tick concurrently.
class LogicalClock final : public Clock {
 public:
  explicit LogicalClock(Timestamp start = 0) noexcept : t_(start) {}
  Timestamp now() override {
    return t_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Jumps forward; next now() returns at least `t`.
  void advanceTo(Timestamp t) noexcept {
    Timestamp cur = t_.load(std::memory_order_relaxed);
    while (t > cur &&
           !t_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<Timestamp> t_;
};

/// Wall clock in nanoseconds since an unspecified epoch (steady).
class WallClock final : public Clock {
 public:
  Timestamp now() override;
};

/// Cycle-accurate monotonic tick counter for per-stage latency attribution
/// (obs/stage.h). On x86-64 this is a single rdtsc; elsewhere it falls back
/// to the steady clock. Tick units are unspecified — only deltas converted
/// through fastTicksToNanos() are meaningful.
[[nodiscard]] std::uint64_t fastTicks() noexcept;

/// Converts a fastTicks() delta to nanoseconds. The first call calibrates
/// the tick rate against the steady clock (~0.2 ms busy-wait, once per
/// process); call warmFastTicks() at startup to pay that cost eagerly.
[[nodiscard]] std::uint64_t fastTicksToNanos(std::uint64_t ticks) noexcept;

/// Forces fastTicksToNanos() calibration now, outside any lock.
void warmFastTicks() noexcept;

}  // namespace bf::util
