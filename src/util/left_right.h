// Left-right concurrency control — wait-free reads over replicated state.
//
// The pattern (Ramalhete & Correia's "left-right") keeps TWO complete
// instances of a data structure. Readers always read a fully-constructed,
// quiescent instance and never retry; the single writer (serialised by the
// caller's own mutex) applies every mutation twice:
//
//   1. mutate the INACTIVE instance (no reader can be in it),
//   2. flip the active-instance switch (new readers go to the fresh copy),
//   3. toggle the version index and wait for both read indicators to
//      drain in canonical order (old readers finish),
//   4. mutate the now-inactive old instance, re-converging the replicas.
//
// Why this over a seqlock: BrowserFlow's tracker stores are pointer-rich
// (unordered_map, vector, string). A seqlock reader that observes a torn
// snapshot dereferences freed memory before it can notice the sequence
// mismatch — undefined behaviour, and a data race ThreadSanitizer rightly
// flags. Left-right readers only ever touch an instance no writer is
// mutating, so reads are plain loads, TSan-clean, wait-free, and never
// retried. The price is 2x memory and double-applied writes — the right
// trade for read-mostly stores like DBhash/DBpar. The full memory-ordering
// argument lives in DESIGN.md §15.
//
// The protocol atomics are seq_cst on the reader's arrive/instance loads
// and the writer's flip/drain loads. The load-bearing property is the
// single total order: a reader whose instance-switch load precedes the
// writer's flip has its indicator increment visible to every subsequent
// drain scan, so the writer cannot start re-mutating the old instance
// while that reader is still inside it. depart() is a release so the
// reader's last loads happen-before the writer's next writes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

namespace bf::util {

/// Striped reader-presence counter. arrive/depart touch one cache line
/// chosen per thread, so concurrent readers do not ping-pong a single
/// counter; empty() is the writer-side drain scan.
class ReadIndicator {
 public:
  static constexpr std::size_t kStripes = 16;

  /// Registers the calling thread as reading. Returns the stripe to pass
  /// to depart(). seq_cst: the increment must precede the reader's
  /// subsequent instance-switch load in the single total order.
  std::size_t arrive() noexcept {
    const std::size_t s = threadStripe();
    stripes_[s].count.fetch_add(1, std::memory_order_seq_cst);
    return s;
  }

  /// Deregisters the reader. Release: everything the reader read
  /// happens-before the writer that observes the decrement.
  void depart(std::size_t stripe) noexcept {
    stripes_[stripe].count.fetch_sub(1, std::memory_order_release);
  }

  /// True when no reader is registered. Scanning stripe by stripe is
  /// sound: any reader endangered by the writer's next step arrived (in
  /// the seq_cst total order) before the writer's flip, hence before
  /// every load of this scan, so its increment is visible unless it
  /// already departed.
  [[nodiscard]] bool empty() const noexcept {
    for (const Stripe& s : stripes_) {
      if (s.count.load(std::memory_order_seq_cst) != 0) return false;
    }
    return true;
  }

 private:
  /// Stable per-thread stripe assignment (round-robin at first use).
  static std::size_t threadStripe() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripe;
  }

  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> count{0};
  };
  Stripe stripes_[kStripes];
};

/// The left-right switch: two read indicators (one per version), the
/// active-instance index readers consult, and the writer-side
/// flip-and-drain step. The data instances themselves live in the owner
/// (e.g. FlowTracker's Stores stores_[2]); this class only arbitrates
/// which index readers and the writer may touch.
///
/// Thread safety: any number of concurrent readers; at most ONE thread in
/// the writer protocol at a time (callers hold their own writer mutex).
class LeftRightControl {
 public:
  /// Opaque reader registration; pass back to depart().
  struct ReadTicket {
    int version;
    std::size_t stripe;
    int instance;  ///< which data instance this reader may read
  };

  /// Reader entry: registers on the current version's indicator, then
  /// loads the instance to read. Wait-free, no retry. The order matters:
  /// registering BEFORE the instance load is what lets the writer's drain
  /// scan see every reader that might be in the old instance.
  [[nodiscard]] ReadTicket arrive() const noexcept {
    ReadTicket t;
    t.version = versionIndex_.load(std::memory_order_seq_cst);
    t.stripe = indicators_[t.version].arrive();
    t.instance = activeInstance_.load(std::memory_order_seq_cst);
    return t;
  }

  /// Reader exit.
  void depart(const ReadTicket& t) const noexcept {
    indicators_[t.version].depart(t.stripe);
  }

  /// The instance the writer may currently mutate (no reader is directed
  /// at it). Writer-side only, under the caller's writer mutex.
  [[nodiscard]] int inactiveInstance() const noexcept {
    return 1 - activeInstance_.load(std::memory_order_relaxed);
  }

  /// The instance new readers are directed at. Safe to read directly only
  /// under the caller's writer mutex (or externally-serialised sections).
  [[nodiscard]] int activeInstance() const noexcept {
    return activeInstance_.load(std::memory_order_acquire);
  }

  /// Writer step between the two mutation applications: publish the
  /// freshly-mutated instance and wait until no reader remains in the old
  /// one. The two drains run in canonical left-right order — next version
  /// first, then the previous — so a reader re-registering on the new
  /// version can never extend the wait forever (no writer starvation).
  void flipAndWait() noexcept {
    activeInstance_.store(1 - activeInstance_.load(std::memory_order_relaxed),
                          std::memory_order_seq_cst);
    const int prevVersion = versionIndex_.load(std::memory_order_relaxed);
    const int nextVersion = 1 - prevVersion;
    waitForEmpty(indicators_[nextVersion]);
    versionIndex_.store(nextVersion, std::memory_order_seq_cst);
    waitForEmpty(indicators_[prevVersion]);
  }

 private:
  static void waitForEmpty(const ReadIndicator& ri) noexcept {
    // Readers hold their registration only across plain in-memory reads,
    // so the drain is expected to be short; spin briefly, then yield.
    for (int spins = 0; !ri.empty(); ++spins) {
      if (spins >= 128) std::this_thread::yield();
    }
  }

  mutable ReadIndicator indicators_[2];
  std::atomic<int> activeInstance_{0};
  std::atomic<int> versionIndex_{0};
};

/// RAII reader registration over a LeftRightControl.
class LeftRightReadGuard {
 public:
  explicit LeftRightReadGuard(const LeftRightControl& lr) noexcept
      : lr_(lr), ticket_(lr.arrive()) {}
  ~LeftRightReadGuard() { lr_.depart(ticket_); }

  LeftRightReadGuard(const LeftRightReadGuard&) = delete;
  LeftRightReadGuard& operator=(const LeftRightReadGuard&) = delete;

  /// Index of the data instance this reader may read.
  [[nodiscard]] int instance() const noexcept { return ticket_.instance; }

 private:
  const LeftRightControl& lr_;
  LeftRightControl::ReadTicket ticket_;
};

}  // namespace bf::util
