#include "text/aho_corasick.h"

namespace bf::text {

AhoCorasick::AhoCorasick() { nodes_.emplace_back(); }

void AhoCorasick::addPattern(std::string_view pattern, std::uint64_t id) {
  if (pattern.empty()) return;
  patternList_.emplace_back(std::string(pattern), id);
  ++patterns_;
  built_ = false;
}

void AhoCorasick::insertIntoTrie(std::string_view pattern, std::uint64_t id) {
  std::int32_t node = 0;
  for (unsigned char c : pattern) {
    std::int32_t& slot = nodes_[static_cast<std::size_t>(node)].next[c];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    node = slot;
  }
  nodes_[static_cast<std::size_t>(node)].outputs.emplace_back(id,
                                                              pattern.size());
}

void AhoCorasick::build() {
  // Rebuild the trie from the pattern list (the previous DFA conversion
  // overwrote absent edges, so it cannot be extended incrementally)...
  nodes_.clear();
  nodes_.emplace_back();
  for (const auto& [pattern, id] : patternList_) insertIntoTrie(pattern, id);

  // ...then the standard BFS: convert the trie into a DFA where every byte
  // transition is defined, and fold suffix outputs into each node. Every
  // node enters the queue exactly once, so a flat vector with a read
  // cursor is the whole queue — no deque chunking.
  std::vector<std::int32_t> queue;
  queue.reserve(nodes_.size());
  for (int c = 0; c < kAlphabet; ++c) {
    const std::int32_t child = nodes_[0].next[static_cast<std::size_t>(c)];
    if (child < 0) {
      nodes_[0].next[static_cast<std::size_t>(c)] = 0;
    } else {
      nodes_[static_cast<std::size_t>(child)].fail = 0;
      queue.push_back(child);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::int32_t u = queue[head];
    Node& nu = nodes_[static_cast<std::size_t>(u)];
    // Inherit outputs reachable through the failure link.
    const auto& failOutputs =
        nodes_[static_cast<std::size_t>(nu.fail)].outputs;
    nu.outputs.insert(nu.outputs.end(), failOutputs.begin(),
                      failOutputs.end());
    for (int c = 0; c < kAlphabet; ++c) {
      const std::int32_t child = nu.next[static_cast<std::size_t>(c)];
      const std::int32_t failNext =
          nodes_[static_cast<std::size_t>(nu.fail)]
              .next[static_cast<std::size_t>(c)];
      if (child < 0) {
        nu.next[static_cast<std::size_t>(c)] = failNext;
      } else {
        nodes_[static_cast<std::size_t>(child)].fail = failNext;
        queue.push_back(child);
      }
    }
  }
  built_ = true;
}

std::vector<AhoCorasick::Match> AhoCorasick::findAll(std::string_view text) {
  if (!built_) build();
  std::vector<Match> out;
  std::int32_t node = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    node = nodes_[static_cast<std::size_t>(node)]
               .next[static_cast<unsigned char>(text[i])];
    for (const auto& [id, length] :
         nodes_[static_cast<std::size_t>(node)].outputs) {
      out.push_back(Match{id, i + 1, length});
    }
  }
  return out;
}

bool AhoCorasick::containsAny(std::string_view text) {
  if (!built_) build();
  if (patterns_ == 0) return false;
  std::int32_t node = 0;
  for (unsigned char c : text) {
    node = nodes_[static_cast<std::size_t>(node)].next[c];
    if (!nodes_[static_cast<std::size_t>(node)].outputs.empty()) return true;
  }
  return false;
}

}  // namespace bf::text
