// n-gram hashing — step S2 of the fingerprinting pipeline (paper S4.1).
//
// Hashes every character n-gram of a normalized text with a Karp-Rabin
// rolling hash, so the whole pass is O(length). The paper evaluates with
// 32-bit hashes over 15-character n-grams; the hash width is configurable
// via a bit mask (see FingerprintConfig).
#pragma once

#include <cstdint>
#include <vector>

#include "text/normalizer.h"

namespace bf::text {

/// One hashed n-gram: the (possibly truncated) hash and the index of the
/// n-gram's first character in the *normalized* text.
struct HashedGram {
  std::uint64_t hash;
  std::uint32_t pos;
};

/// Hashes every n-gram of length `ngramChars` in `normalized`, truncating
/// hashes to `hashBits` bits (1..64). Returns an empty vector when the text
/// is shorter than one n-gram.
[[nodiscard]] std::vector<HashedGram> hashNgrams(
    const NormalizedText& normalized, std::size_t ngramChars,
    unsigned hashBits);

}  // namespace bf::text
