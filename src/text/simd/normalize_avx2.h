// AVX2 + BMI2 vector normalization, shared by the AVX2 and AVX-512
// kernels (the AVX-512 tier implies AVX2, and VBMI2 — which a native
// 512-bit byte compaction would need — is not part of the kAvx512
// feature set). Include ONLY from TUs compiled with -mavx2 -mbmi2.
#pragma once

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "text/fingerprint_kernel.h"

namespace bf::text::simd::detail {

/// Normalizes `len` input bytes starting at global offset `inBase`,
/// appending kept characters to outChars and their original input offsets
/// to outOffs. Both buffers need 8 bytes / 8 entries of overwrite slack
/// past the returned count (BatchPipeline reserves 32). Returns the
/// number of characters kept.
///
/// 32 input bytes per vector: classify with unsigned range compares
/// (max/min + cmpeq), fold case with OR 0x20, then compact each 8-byte
/// group with PEXT — one _pext_u64 packs the kept characters, a second
/// packs the byte-index ramp 0x0706050403020100 into the kept chars'
/// source offsets.
inline std::size_t normalizeAvx2(const unsigned char* in, std::size_t len,
                                 std::size_t inBase, unsigned char* outChars,
                                 std::uint32_t* outOffs) {
  std::size_t out = 0;
  std::size_t i = 0;
  const __m256i vA = _mm256_set1_epi8('A');
  const __m256i vZ = _mm256_set1_epi8('Z');
  const __m256i va = _mm256_set1_epi8('a');
  const __m256i vz = _mm256_set1_epi8('z');
  const __m256i v0 = _mm256_set1_epi8('0');
  const __m256i v9 = _mm256_set1_epi8('9');
  const __m256i vCase = _mm256_set1_epi8(0x20);
  const __m256i zero = _mm256_setzero_si256();
  constexpr std::uint64_t kIdxRamp = 0x0706050403020100ULL;

  for (; i + 32 <= len; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    // Unsigned range test a <= x <= b as (max(x,a) == x) & (min(x,b) == x).
    const __m256i isUpper = _mm256_and_si256(
        _mm256_cmpeq_epi8(_mm256_max_epu8(x, vA), x),
        _mm256_cmpeq_epi8(_mm256_min_epu8(x, vZ), x));
    // Case fold: only [A-Z] lanes get 0x20 OR'd in; >= 0x80 bytes fail the
    // x <= 'Z' test, so they pass through verbatim like the scalar table.
    const __m256i folded = _mm256_or_si256(x, _mm256_and_si256(isUpper, vCase));
    const __m256i isLower = _mm256_and_si256(
        _mm256_cmpeq_epi8(_mm256_max_epu8(folded, va), folded),
        _mm256_cmpeq_epi8(_mm256_min_epu8(folded, vz), folded));
    const __m256i isDigit = _mm256_and_si256(
        _mm256_cmpeq_epi8(_mm256_max_epu8(folded, v0), folded),
        _mm256_cmpeq_epi8(_mm256_min_epu8(folded, v9), folded));
    const __m256i isHigh = _mm256_cmpgt_epi8(zero, x);  // signed < 0 == >= 0x80
    const __m256i keep =
        _mm256_or_si256(_mm256_or_si256(isLower, isDigit), isHigh);

    alignas(32) std::uint64_t charsQ[4];
    alignas(32) std::uint64_t maskQ[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(charsQ), folded);
    _mm256_store_si256(reinterpret_cast<__m256i*>(maskQ), keep);
    for (int g = 0; g < 4; ++g) {
      const std::uint64_t m = maskQ[g];
      // PEXT compacts the kept characters to the low bytes; the same mask
      // applied to the index ramp yields their offsets within the group.
      const std::uint64_t packed = _pext_u64(charsQ[g], m);
      std::memcpy(outChars + out, &packed, sizeof(packed));
      const std::uint64_t idx = _pext_u64(kIdxRamp, m);
      const __m256i offs = _mm256_add_epi32(
          _mm256_cvtepu8_epi32(
              _mm_cvtsi64_si128(static_cast<long long>(idx))),
          _mm256_set1_epi32(static_cast<int>(inBase + i) + g * 8));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(outOffs + out), offs);
      out += static_cast<std::size_t>(_mm_popcnt_u64(m)) >> 3;
    }
  }

  const auto& tab = text::detail::normTable();
  for (; i < len; ++i) {
    const unsigned char keep = tab[in[i]];
    if (keep == 0) continue;
    outChars[out] = keep;
    outOffs[out] = static_cast<std::uint32_t>(inBase + i);
    ++out;
  }
  return out;
}

}  // namespace bf::text::simd::detail
