// Shared scalar machinery of the SIMD batch kernels (kernel.h).
//
// Both vector kernels decompose fingerprinting into rounds over a fixed
// chunk of input:
//
//   1. vector-normalize a chunk of input bytes, compacting the kept
//      characters (and their original byte offsets) into flat buffers;
//   2. vector-evaluate the Karp-Rabin hashes of every gram completed by
//      the chunk (block recurrence, bit-exact mod 2^64), writing masked
//      mix64 outputs to a flat hash buffer;
//   3. winnow the hash buffer with EXACTLY the scalar kernel's logic
//      (packed van Herk / Gil-Werman block minima, or the monotonic ring
//      for >32-bit hashes).
//
// Step 3 plus all the chunk/carry bookkeeping is tier-independent and
// lives here, compiled WITHOUT vector flags; the kernels only implement
// steps 1-2. Chunking bounds the flat buffers by the chunk size (not the
// input), preserving the workspace's O(n + w + chunk) scratch guarantee,
// and keeps the hash buffer hot in cache for the winnow pass.
//
// An inter-round carryover of the last n + w normalized characters keeps
// every index a later step needs addressable: the hash recurrence looks
// back n characters, and a winnow pick — up to w - 1 grams behind the
// newest — needs its gram's original start offset.
#pragma once

#include <cstdint>
#include <string_view>

#include "text/fingerprint_kernel.h"

namespace bf::text::simd {

struct BatchPipeline {
  /// Input bytes consumed per round; also bounds the normalized chars a
  /// round can append. Large enough to amortise per-round scalar work
  /// (hash-lane reseeding), small enough that chars + offsets + hashes
  /// (~13 bytes/char) stay cache-resident and scratch stays input-independent.
  static constexpr std::size_t kChunkChars = 8192;

  explicit BatchPipeline(FingerprintWorkspace& workspace) : ws(workspace) {}

  FingerprintWorkspace& ws;
  std::size_t n = 0;             ///< gram length
  std::size_t w = 0;             ///< window, in hashes
  std::uint64_t mask = 0;        ///< hash-width mask
  bool packed = true;            ///< hashBits <= 32 → packed winnow

  // Winnow state, carried across rounds (mirrors the scalar kernel).
  std::uint64_t pfx = ~0ULL;
  std::size_t r = 0;
  std::size_t lastSelected = static_cast<std::size_t>(-1);

  std::size_t gramCount = 0;   ///< grams winnowed so far (global index of next)
  std::size_t normTotal = 0;   ///< normalized chars seen so far
  std::size_t carry = 0;       ///< chars retained at the buffer front
  std::size_t carryNeed = 0;   ///< n + w
  std::size_t charBase = 0;    ///< global char index of batchChars_[0]
  std::size_t validChars = 0;  ///< carry + this round's appended chars

  /// Sizes the workspace buffers and resets per-call state. Returns false
  /// when the configuration does not fit the chunked layout (gigantic
  /// n + w) — the caller then falls back to the scalar kernel.
  bool init(const FingerprintConfig& config);

  /// Append cursors for the normalization step: the kernel writes up to
  /// kChunkChars new chars/offsets here (plus up to 32 bytes of vector
  /// overwrite slack, which the buffers reserve).
  [[nodiscard]] unsigned char* charAppend() noexcept {
    return ws.batchChars_.data() + carry;
  }
  [[nodiscard]] std::uint32_t* offAppend() noexcept {
    return ws.batchOff_.data() + carry;
  }
  /// The round's hash output buffer (capacity kChunkChars).
  [[nodiscard]] std::uint64_t* hashOut() noexcept {
    return ws.batchHashes_.data();
  }
  /// Base of the normalized-character buffer (Round::firstGramLocal
  /// indexes into this).
  [[nodiscard]] const unsigned char* charsBase() const noexcept {
    return ws.batchChars_.data();
  }

  // Winnow-state views for a kernel that vectorizes whole-block
  // winnowing itself (the AVX-512 tier) and interleaves with
  // consumeHashes. suffixMinData() has w + 1 slots (slot w is the ~0
  // sentinel); winKeyOut() holds one raw winner key per gram, worst
  // case; pushSelected appends a drained distinct pick.
  [[nodiscard]] std::uint64_t* suffixMinData() noexcept {
    return ws.suffixMin_.data();
  }
  [[nodiscard]] std::uint64_t* winKeyOut() noexcept {
    return ws.batchWinKeys_.data();
  }
  [[nodiscard]] const std::uint32_t* offsBase() const noexcept {
    return ws.batchOff_.data();
  }
  void pushSelected(std::uint64_t hash, std::uint32_t origPos) {
    ws.selected_.push_back({hash, origPos});
  }

  /// Registers `added` freshly-appended normalized chars and returns the
  /// round's hash work: how many new grams are completed, and the LOCAL
  /// index (into batchChars_) of the first one's starting character.
  struct Round {
    std::size_t grams = 0;
    std::size_t firstGramLocal = 0;
  };
  [[nodiscard]] Round beginRound(std::size_t added) noexcept;

  /// Winnows `count` hashes from hashOut() + from — they belong to grams
  /// [gramCount, gramCount + count) — with the scalar kernel's exact
  /// logic and tie-breaks. `from` lets a kernel that winnows part of a
  /// round itself (the AVX-512 tier vectorizes whole-block winnowing)
  /// hand the scalar path the head/tail remainder without copying.
  void consumeHashes(std::size_t count, std::size_t from = 0);

  /// Slides the carryover window after a round's hashes are consumed.
  void endRound() noexcept;

  /// Builds the Fingerprint (shared radix epilogue), applying the same
  /// short-input guards as the scalar kernel.
  [[nodiscard]] Fingerprint finish(const FingerprintConfig& config);
};

}  // namespace bf::text::simd
