// AVX2 + BMI2 batch fingerprint kernel (see kernel.h). This TU is
// compiled with -mavx2 -mbmi2 (per-file flags in src/text/CMakeLists.txt)
// and must only be ENTERED after dispatch.cpp's cpuid probe — nothing in
// it may run at static-initialization time on a non-AVX2 host.
//
// Round structure (BatchPipeline drives the chunk/carry bookkeeping):
//
//   normalize  32 input bytes per vector: classify with unsigned range
//              compares (max/min + cmpeq), fold case with OR 0x20, then
//              compact each 8-byte group with PEXT — one _pext_u64 packs
//              the kept characters, a second packs the byte-index ramp
//              0x0706050403020100 into the kept chars' source offsets.
//   hash       4 Karp-Rabin lanes stepped by a stride-4 block recurrence
//              (bit-exact mod 2^64, valid for n >= 4):
//                H(g+4) = H(g)*B^4
//                         - sum_i c[g+i]   * B^{n-1+4-i}
//                         + sum_i c[g+n+i] * B^{3-i}
//              followed by a 4-lane mix64 and the hash-width mask.
//   winnow     BatchPipeline::consumeHashes — the scalar kernel's exact
//              winnow, unchanged.
#include "text/simd/kernel.h"

#if defined(BF_TEXT_SIMD_X86)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "text/simd/batch_pipeline.h"
#include "text/simd/normalize_avx2.h"
#include "util/hashing.h"

namespace bf::text::simd {

namespace {

constexpr std::size_t kLanes = 4;

/// a * K mod 2^64 per 64-bit lane, with K split into 32-bit halves
/// broadcast in kLo/kHi. Three PMULUDQ: lo(a)*lo(K) + ((lo(a)*hi(K) +
/// hi(a)*lo(K)) << 32); the hi(a)*hi(K) term shifts out of 64 bits.
[[gnu::always_inline]] inline __m256i mulConst64(__m256i a, __m256i kLo, __m256i kHi) {
  const __m256i lo = _mm256_mul_epu32(a, kLo);
  const __m256i mid = _mm256_add_epi64(
      _mm256_mul_epu32(a, kHi),
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), kLo));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(mid, 32));
}

/// c * K mod 2^64 where every lane of c is a byte value (< 2^8), so the
/// hi(c) half is zero and two PMULUDQ suffice.
[[gnu::always_inline]] inline __m256i mulByteConst(__m256i c, __m256i kLo, __m256i kHi) {
  return _mm256_add_epi64(_mm256_mul_epu32(c, kLo),
                          _mm256_slli_epi64(_mm256_mul_epu32(c, kHi), 32));
}

/// Splits K for mulConst64/mulByteConst.
struct SplitConst {
  __m256i lo, hi;
  explicit SplitConst(std::uint64_t k)
      : lo(_mm256_set1_epi64x(
            static_cast<long long>(k & 0xFFFFFFFFULL))),
        hi(_mm256_set1_epi64x(static_cast<long long>(k >> 32))) {}
};

/// 4-lane util::mix64 (the SplitMix64 finalizer), bit-exact.
[[gnu::always_inline]] inline __m256i mix64x4(__m256i x, const SplitConst& m1, const SplitConst& m2) {
  x = _mm256_add_epi64(x, _mm256_set1_epi64x(
                              static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
  x = mulConst64(x, m1.lo, m1.hi);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
  x = mulConst64(x, m2.lo, m2.hi);
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

/// 4 consecutive bytes at p, zero-extended to the 4 hash lanes.
[[gnu::always_inline]] inline __m256i loadBytes4(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(v)));
}

using text::simd::detail::normalizeAvx2;  // normalize_avx2.h, shared with
                                          // the AVX-512 kernel

/// Per-call hash constants, all powers of KarpRabin::kBase mod 2^64.
struct HashConsts {
  std::uint64_t topPow;              // B^{n-1} (scalar-tail rolling)
  std::uint64_t bL;                  // B^kLanes
  std::uint64_t outP[kLanes];        // B^{n-1+kLanes-i}
  std::uint64_t inP[kLanes];         // B^{kLanes-1-i}
  explicit HashConsts(std::size_t n) {
    constexpr std::uint64_t B = util::KarpRabin::kBase;
    std::uint64_t p = 1;
    for (std::size_t i = 1; i < n; ++i) p *= B;
    topPow = p;
    std::uint64_t q = 1;
    for (std::size_t i = 0; i < kLanes; ++i) {
      inP[kLanes - 1 - i] = q;  // B^i
      q *= B;
    }
    bL = q;  // B^kLanes
    // outP[i] = B^{n-1} * B^{kLanes-i}
    q = B;
    for (std::size_t i = kLanes; i-- > 0;) {
      outP[i] = topPow * q;
      q *= B;
    }
  }
};

/// Hashes `count` grams of length n starting at chars[first], writing the
/// masked mix64 outputs to out. Bit-exact with the scalar roller.
///
/// The stride-4 recurrence is a loop-carried dependency (each advance
/// needs the previous V), so a single 4-lane chain is latency-bound on
/// the 64-bit multiply cascade. The round is therefore split into
/// kStreams independent contiguous gram ranges, each with its own
/// scalar-seeded lane vector; interleaving their advances keeps the
/// multipliers saturated instead of waiting on one chain.
void hashRoundAvx2(const unsigned char* chars, std::size_t first,
                   std::size_t count, std::size_t n, std::uint64_t mask,
                   const HashConsts& hc, std::uint64_t* out) {
  if (count == 0) return;
  const char* base = reinterpret_cast<const char*>(chars) + first;
  constexpr std::uint64_t B = util::KarpRabin::kBase;
  constexpr std::size_t kStreams = 4;

  // Grams each stream owns: equal shares rounded to whole vectors.
  const std::size_t per = (count / kStreams) & ~(kLanes - 1);
  if (n < kLanes || per < 2 * kLanes) {
    // Tiny round or n too short for the stride-4 recurrence: plain
    // scalar rolling (identical arithmetic to util::KarpRabin).
    util::KarpRabin roller(n);
    std::uint64_t h = roller.init(std::string_view(base, n));
    out[0] = util::mix64(h) & mask;
    for (std::size_t k = 1; k < count; ++k) {
      h -= hc.topPow * chars[first + k - 1];
      h = h * B + chars[first + k - 1 + n];
      out[k] = util::mix64(h) & mask;
    }
    return;
  }

  const SplitConst m1(0xbf58476d1ce4e5b9ULL);
  const SplitConst m2(0x94d049bb133111ebULL);
  const SplitConst cBL(hc.bL);
  const SplitConst cOut0(hc.outP[0]), cOut1(hc.outP[1]), cOut2(hc.outP[2]),
      cOut3(hc.outP[3]);
  const SplitConst cIn0(hc.inP[0]), cIn1(hc.inP[1]), cIn2(hc.inP[2]),
      cIn3(hc.inP[3]);
  const __m256i vMask = _mm256_set1_epi64x(static_cast<long long>(mask));

  // Seeds a stream's first 4 lanes (grams g0..g0+3) scalar and emits
  // their outputs; returns the raw lane vector.
  auto seedStream = [&](std::size_t g0) {
    util::KarpRabin roller(n);
    alignas(32) std::uint64_t lane[kLanes];
    std::uint64_t h = roller.init(std::string_view(base + g0, n));
    lane[0] = h;
    out[g0] = util::mix64(h) & mask;
    for (std::size_t j = 1; j < kLanes; ++j) {
      h = roller.roll(base[g0 + j - 1], base[g0 + j - 1 + n]);
      lane[j] = h;
      out[g0 + j] = util::mix64(h) & mask;
    }
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(lane));
  };

  // One stride-4 advance. Every 64-bit product splits into a low part
  // (pmuludq result used as-is) and a high part ((x*Khi mod 2^32) << 32).
  // Because the shift distributes over addition mod 2^64, ALL high parts
  // — the taps' and the V*B^4 cross terms' — are summed first and shifted
  // once: shifts share ports 0/1 with the multiplies, so trading 9 shifts
  // for 1 directly buys multiplier throughput. inP[3] == 1 makes the last
  // incoming tap free (the byte value joins the low sum unscaled).
  auto advance = [&](__m256i V, const unsigned char* p) __attribute__((always_inline)) {
    const __m256i o0 = loadBytes4(p), o1 = loadBytes4(p + 1),
                  o2 = loadBytes4(p + 2), o3 = loadBytes4(p + 3);
    const __m256i i0 = loadBytes4(p + n), i1 = loadBytes4(p + n + 1),
                  i2 = loadBytes4(p + n + 2), i3 = loadBytes4(p + n + 3);
    const __m256i oLo = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_mul_epu32(o0, cOut0.lo),
                         _mm256_mul_epu32(o1, cOut1.lo)),
        _mm256_add_epi64(_mm256_mul_epu32(o2, cOut2.lo),
                         _mm256_mul_epu32(o3, cOut3.lo)));
    const __m256i oHi = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_mul_epu32(o0, cOut0.hi),
                         _mm256_mul_epu32(o1, cOut1.hi)),
        _mm256_add_epi64(_mm256_mul_epu32(o2, cOut2.hi),
                         _mm256_mul_epu32(o3, cOut3.hi)));
    const __m256i iLo = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_mul_epu32(i0, cIn0.lo),
                         _mm256_mul_epu32(i1, cIn1.lo)),
        _mm256_add_epi64(_mm256_mul_epu32(i2, cIn2.lo), i3));
    const __m256i iHi = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_mul_epu32(i0, cIn0.hi),
                         _mm256_mul_epu32(i1, cIn1.hi)),
        _mm256_mul_epu32(i2, cIn2.hi));
    const __m256i lo = _mm256_add_epi64(
        _mm256_mul_epu32(V, cBL.lo), _mm256_sub_epi64(iLo, oLo));
    const __m256i hi = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_mul_epu32(V, cBL.hi),
                         _mm256_mul_epu32(_mm256_srli_epi64(V, 32), cBL.lo)),
        _mm256_sub_epi64(iHi, oHi));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32));
  };
  auto emit = [&](__m256i V, std::uint64_t* dst) __attribute__((always_inline)) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                        _mm256_and_si256(mix64x4(V, m1, m2), vMask));
  };

  __m256i V0 = seedStream(0);
  __m256i V1 = seedStream(per);
  __m256i V2 = seedStream(2 * per);
  __m256i V3 = seedStream(3 * per);
  const unsigned char* p0 = chars + first;
  const std::size_t iters = per / kLanes;
  for (std::size_t t = 1; t < iters; ++t) {
    const std::size_t k = t * kLanes;
    V0 = advance(V0, p0 + (k - kLanes));
    V1 = advance(V1, p0 + per + (k - kLanes));
    V2 = advance(V2, p0 + 2 * per + (k - kLanes));
    V3 = advance(V3, p0 + 3 * per + (k - kLanes));
    emit(V0, out + k);
    emit(V1, out + per + k);
    emit(V2, out + 2 * per + k);
    emit(V3, out + 3 * per + k);
  }

  // Tail grams [4*per, count): resume scalar rolling from stream 3's
  // newest lane (gram 4*per - 1).
  std::size_t k = kStreams * per;
  if (k < count) {
    alignas(32) std::uint64_t lane[kLanes];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), V3);
    std::uint64_t h = lane[kLanes - 1];
    for (; k < count; ++k) {
      h -= hc.topPow * chars[first + k - 1];
      h = h * B + chars[first + k - 1 + n];
      out[k] = util::mix64(h) & mask;
    }
  }
}

}  // namespace

Fingerprint fingerprintTextAvx2(std::string_view input,
                                const FingerprintConfig& config,
                                FingerprintWorkspace& ws) {
  const std::size_t n = config.ngramChars;
  if (input.size() < config.windowChars) return Fingerprint{};
  if (n == 0) return Fingerprint{};

  BatchPipeline bp(ws);
  if (!bp.init(config)) return fingerprintTextFusedScalar(input, config, ws);
  const HashConsts hc(n);

  const auto* bytes = reinterpret_cast<const unsigned char*>(input.data());
  for (std::size_t pos = 0; pos < input.size();
       pos += BatchPipeline::kChunkChars) {
    const std::size_t len =
        std::min(BatchPipeline::kChunkChars, input.size() - pos);
    const std::size_t added =
        normalizeAvx2(bytes + pos, len, pos, bp.charAppend(), bp.offAppend());
    const BatchPipeline::Round round = bp.beginRound(added);
    if (round.grams > 0) {
      hashRoundAvx2(bp.charsBase(), round.firstGramLocal, round.grams,
                    n, bp.mask, hc, bp.hashOut());
      bp.consumeHashes(round.grams);
    }
    bp.endRound();
  }
  return bp.finish(config);
}

}  // namespace bf::text::simd

#endif  // BF_TEXT_SIMD_X86
