// SSE4.2 batch fingerprint kernel (see kernel.h). Compiled with -msse4.2
// (per-file flags in src/text/CMakeLists.txt); only entered after
// dispatch.cpp's cpuid probe.
//
// Same round structure as the AVX2 kernel, scaled down:
//
//   normalize  16 input bytes per vector; compaction has no PEXT at this
//              tier, so each 8-byte half is packed with PSHUFB through a
//              256-entry LUT mapping the keep-mask byte to the indices of
//              its set bits.
//   hash       2 Karp-Rabin lanes stepped by a stride-2 block recurrence
//              (bit-exact mod 2^64, valid for n >= 2):
//                H(g+2) = H(g)*B^2
//                         - c[g]*B^{n+1} - c[g+1]*B^n
//                         + c[g+n]*B     + c[g+n+1]
//              followed by a 2-lane mix64 and the hash-width mask.
//   winnow     BatchPipeline::consumeHashes — the scalar kernel's exact
//              winnow, unchanged.
#include "text/simd/kernel.h"

#if defined(BF_TEXT_SIMD_X86)

#include <nmmintrin.h>

#include <algorithm>
#include <array>
#include <cstring>

#include "text/simd/batch_pipeline.h"
#include "util/hashing.h"

namespace bf::text::simd {

namespace {

constexpr std::size_t kLanes = 2;

/// kCompact8[m] lists the set-bit positions of the mask byte m, 0-padded
/// to 8 entries: the PSHUFB control that packs an 8-byte group's kept
/// bytes to the front. Padding lanes shuffle in garbage that the next
/// group's store overwrites (the output buffers reserve the slack).
constexpr std::array<std::array<std::uint8_t, 8>, 256> kCompact8 = [] {
  std::array<std::array<std::uint8_t, 8>, 256> t{};
  for (int m = 0; m < 256; ++m) {
    int out = 0;
    for (int b = 0; b < 8; ++b) {
      if ((m >> b) & 1) t[static_cast<std::size_t>(m)]
                         [static_cast<std::size_t>(out++)] =
          static_cast<std::uint8_t>(b);
    }
  }
  return t;
}();

/// a * K mod 2^64 per 64-bit lane (see kernel_avx2.cpp's mulConst64).
[[gnu::always_inline]] inline __m128i mulConst64(__m128i a, __m128i kLo, __m128i kHi) {
  const __m128i lo = _mm_mul_epu32(a, kLo);
  const __m128i mid = _mm_add_epi64(
      _mm_mul_epu32(a, kHi), _mm_mul_epu32(_mm_srli_epi64(a, 32), kLo));
  return _mm_add_epi64(lo, _mm_slli_epi64(mid, 32));
}

/// c * K mod 2^64 for byte-valued lanes (< 2^8): two PMULUDQ.
[[gnu::always_inline]] inline __m128i mulByteConst(__m128i c, __m128i kLo, __m128i kHi) {
  return _mm_add_epi64(_mm_mul_epu32(c, kLo),
                       _mm_slli_epi64(_mm_mul_epu32(c, kHi), 32));
}

struct SplitConst {
  __m128i lo, hi;
  explicit SplitConst(std::uint64_t k)
      : lo(_mm_set1_epi64x(static_cast<long long>(k & 0xFFFFFFFFULL))),
        hi(_mm_set1_epi64x(static_cast<long long>(k >> 32))) {}
};

/// 2-lane util::mix64, bit-exact.
[[gnu::always_inline]] inline __m128i mix64x2(__m128i x, const SplitConst& m1, const SplitConst& m2) {
  x = _mm_add_epi64(
      x, _mm_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 30));
  x = mulConst64(x, m1.lo, m1.hi);
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 27));
  x = mulConst64(x, m2.lo, m2.hi);
  return _mm_xor_si128(x, _mm_srli_epi64(x, 31));
}

/// 2 consecutive bytes at p, zero-extended to the 2 hash lanes.
[[gnu::always_inline]] inline __m128i loadBytes2(const unsigned char* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return _mm_cvtepu8_epi64(_mm_cvtsi32_si128(v));
}

/// SSE4.2 normalization; same contract as kernel_avx2.cpp's normalizeAvx2
/// (8 bytes / 8 entries of overwrite slack past the returned count).
std::size_t normalizeSse42(const unsigned char* in, std::size_t len,
                           std::size_t inBase, unsigned char* outChars,
                           std::uint32_t* outOffs) {
  std::size_t out = 0;
  std::size_t i = 0;
  const __m128i vA = _mm_set1_epi8('A');
  const __m128i vZ = _mm_set1_epi8('Z');
  const __m128i va = _mm_set1_epi8('a');
  const __m128i vz = _mm_set1_epi8('z');
  const __m128i v0 = _mm_set1_epi8('0');
  const __m128i v9 = _mm_set1_epi8('9');
  const __m128i vCase = _mm_set1_epi8(0x20);
  const __m128i zero = _mm_setzero_si128();

  for (; i + 16 <= len; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m128i isUpper =
        _mm_and_si128(_mm_cmpeq_epi8(_mm_max_epu8(x, vA), x),
                      _mm_cmpeq_epi8(_mm_min_epu8(x, vZ), x));
    const __m128i folded = _mm_or_si128(x, _mm_and_si128(isUpper, vCase));
    const __m128i isLower =
        _mm_and_si128(_mm_cmpeq_epi8(_mm_max_epu8(folded, va), folded),
                      _mm_cmpeq_epi8(_mm_min_epu8(folded, vz), folded));
    const __m128i isDigit =
        _mm_and_si128(_mm_cmpeq_epi8(_mm_max_epu8(folded, v0), folded),
                      _mm_cmpeq_epi8(_mm_min_epu8(folded, v9), folded));
    const __m128i isHigh = _mm_cmpgt_epi8(zero, x);
    const __m128i keep = _mm_or_si128(_mm_or_si128(isLower, isDigit), isHigh);

    const unsigned m = static_cast<unsigned>(_mm_movemask_epi8(keep));
    // Low 8-byte half.
    {
      const unsigned mb = m & 0xFFu;
      const __m128i idx = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(kCompact8[mb].data()));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(outChars + out),
                       _mm_shuffle_epi8(folded, idx));
      const __m128i baseV = _mm_set1_epi32(static_cast<int>(inBase + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(outOffs + out),
                       _mm_add_epi32(_mm_cvtepu8_epi32(idx), baseV));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(outOffs + out + 4),
          _mm_add_epi32(_mm_cvtepu8_epi32(_mm_srli_si128(idx, 4)), baseV));
      out += static_cast<std::size_t>(__builtin_popcount(mb));
    }
    // High 8-byte half: LUT indices shifted into 8..15; adding the shift
    // to the index vector keeps the offset math (base + idx) uniform.
    {
      const unsigned mb = (m >> 8) & 0xFFu;
      const __m128i idx = _mm_add_epi8(
          _mm_loadl_epi64(
              reinterpret_cast<const __m128i*>(kCompact8[mb].data())),
          _mm_set1_epi8(8));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(outChars + out),
                       _mm_shuffle_epi8(folded, idx));
      const __m128i baseV = _mm_set1_epi32(static_cast<int>(inBase + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(outOffs + out),
                       _mm_add_epi32(_mm_cvtepu8_epi32(idx), baseV));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(outOffs + out + 4),
          _mm_add_epi32(_mm_cvtepu8_epi32(_mm_srli_si128(idx, 4)), baseV));
      out += static_cast<std::size_t>(__builtin_popcount(mb));
    }
  }

  const auto& tab = text::detail::normTable();
  for (; i < len; ++i) {
    const unsigned char keep = tab[in[i]];
    if (keep == 0) continue;
    outChars[out] = keep;
    outOffs[out] = static_cast<std::uint32_t>(inBase + i);
    ++out;
  }
  return out;
}

/// Powers of KarpRabin::kBase for the stride-2 recurrence.
struct HashConsts {
  std::uint64_t topPow;        // B^{n-1}
  std::uint64_t bL;            // B^2
  std::uint64_t outP[kLanes];  // B^{n+1}, B^n
  std::uint64_t inP[kLanes];   // B, 1
  explicit HashConsts(std::size_t n) {
    constexpr std::uint64_t B = util::KarpRabin::kBase;
    std::uint64_t p = 1;
    for (std::size_t i = 1; i < n; ++i) p *= B;
    topPow = p;
    bL = B * B;
    outP[0] = topPow * bL;  // B^{n+1}
    outP[1] = topPow * B;   // B^n
    inP[0] = B;
    inP[1] = 1;
  }
};

void hashRoundSse42(const unsigned char* chars, std::size_t first,
                    std::size_t count, std::size_t n, std::uint64_t mask,
                    const HashConsts& hc, std::uint64_t* out) {
  if (count == 0) return;
  const char* base = reinterpret_cast<const char*>(chars) + first;

  util::KarpRabin roller(n);
  std::uint64_t h = roller.init(std::string_view(base, n));
  alignas(16) std::uint64_t lane[kLanes];
  lane[0] = h;
  out[0] = util::mix64(h) & mask;
  const std::size_t seed = std::min(count, kLanes);
  for (std::size_t k = 1; k < seed; ++k) {
    h = roller.roll(base[k - 1], base[k - 1 + n]);
    lane[k] = h;
    out[k] = util::mix64(h) & mask;
  }

  std::size_t k = seed;
  if (n >= kLanes && count > kLanes) {
    const SplitConst m1(0xbf58476d1ce4e5b9ULL);
    const SplitConst m2(0x94d049bb133111ebULL);
    const SplitConst cBL(hc.bL);
    const SplitConst cOut0(hc.outP[0]), cOut1(hc.outP[1]);
    const SplitConst cIn0(hc.inP[0]), cIn1(hc.inP[1]);
    const __m128i vMask = _mm_set1_epi64x(static_cast<long long>(mask));

    __m128i V = _mm_load_si128(reinterpret_cast<const __m128i*>(lane));
    for (; k + kLanes <= count; k += kLanes) {
      const unsigned char* p = chars + first + (k - kLanes);
      V = mulConst64(V, cBL.lo, cBL.hi);
      V = _mm_sub_epi64(V, mulByteConst(loadBytes2(p), cOut0.lo, cOut0.hi));
      V = _mm_add_epi64(V, mulByteConst(loadBytes2(p + n), cIn0.lo, cIn0.hi));
      V = _mm_sub_epi64(V, mulByteConst(loadBytes2(p + 1), cOut1.lo, cOut1.hi));
      V = _mm_add_epi64(V,
                        mulByteConst(loadBytes2(p + n + 1), cIn1.lo, cIn1.hi));
      const __m128i mixed = _mm_and_si128(mix64x2(V, m1, m2), vMask);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k), mixed);
    }
    if (k < count) {
      h = static_cast<std::uint64_t>(_mm_extract_epi64(V, 1));
    }
  }
  constexpr std::uint64_t B = util::KarpRabin::kBase;
  for (; k < count; ++k) {
    h -= hc.topPow * chars[first + k - 1];
    h = h * B + chars[first + k - 1 + n];
    out[k] = util::mix64(h) & mask;
  }
}

}  // namespace

Fingerprint fingerprintTextSse42(std::string_view input,
                                 const FingerprintConfig& config,
                                 FingerprintWorkspace& ws) {
  const std::size_t n = config.ngramChars;
  if (input.size() < config.windowChars) return Fingerprint{};
  if (n == 0) return Fingerprint{};

  BatchPipeline bp(ws);
  if (!bp.init(config)) return fingerprintTextFusedScalar(input, config, ws);
  const HashConsts hc(n);

  const auto* bytes = reinterpret_cast<const unsigned char*>(input.data());
  for (std::size_t pos = 0; pos < input.size();
       pos += BatchPipeline::kChunkChars) {
    const std::size_t len =
        std::min(BatchPipeline::kChunkChars, input.size() - pos);
    const std::size_t added =
        normalizeSse42(bytes + pos, len, pos, bp.charAppend(), bp.offAppend());
    const BatchPipeline::Round round = bp.beginRound(added);
    if (round.grams > 0) {
      hashRoundSse42(bp.charsBase(), round.firstGramLocal, round.grams,
                     n, bp.mask, hc, bp.hashOut());
      bp.consumeHashes(round.grams);
    }
    bp.endRound();
  }
  return bp.finish(config);
}

}  // namespace bf::text::simd

#endif  // BF_TEXT_SIMD_X86
