// AVX-512 batch fingerprint kernel (see kernel.h). This TU is compiled
// with -mavx512f -mavx512dq -mavx512bw -mavx512vl -mavx2 -mbmi2 (per-file
// flags in src/text/CMakeLists.txt) and must only be ENTERED after
// dispatch.cpp's cpuid probe — nothing in it may run at
// static-initialization time on a host without those features.
//
// Round structure (BatchPipeline drives the chunk/carry bookkeeping):
//
//   normalize  the shared AVX2 + PEXT path (normalize_avx2.h). A native
//              512-bit byte compaction needs VPCOMPRESSB (VBMI2), which
//              is deliberately not part of this tier's feature set.
//   hash       8 blocked Karp-Rabin lanes — lane j owns a contiguous
//              eighth of the round's grams — stepped one gram at a time
//              by the plain rolling recurrence (bit-exact mod 2^64):
//                H(g+1) = H(g)*B - c[g]*B^n + c[g+n]
//              with an 8-lane mix64 and the mask per step, and an 8x8
//              transpose per 8 steps to restore gram order on output.
//   winnow     whole w-gram blocks are winnowed in-register — VPMINUQ
//              prefix/suffix scans via VALIGNQ log-steps, dedup recorded
//              as compare-mask bytes — while the block head/tail
//              grams of a round go through BatchPipeline::consumeHashes,
//              the scalar kernel's exact winnow. The two paths interleave
//              freely because they share ALL winnow state: pfx/r/
//              lastSelected plus the previous block's suffix minima in
//              FingerprintWorkspace::suffixMin_.
#include "text/simd/kernel.h"

#if defined(BF_TEXT_SIMD_X86)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "text/simd/batch_pipeline.h"
#include "text/simd/normalize_avx2.h"
#include "util/hashing.h"

namespace bf::text::simd {

namespace {

constexpr std::size_t kLanes = 8;

using text::simd::detail::normalizeAvx2;

/// 8-lane util::mix64 (the SplitMix64 finalizer), bit-exact. VPMULLQ
/// (AVX512DQ) does the full 64x64 -> low 64 multiply in one instruction.
[[gnu::always_inline]] inline __m512i mix64x8(__m512i x, __m512i m1,
                                              __m512i m2) {
  x = _mm512_add_epi64(
      x, _mm512_set1_epi64(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 30));
  x = _mm512_mullo_epi64(x, m1);
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 27));
  x = _mm512_mullo_epi64(x, m2);
  return _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
}

/// Per-call hash constants (powers of KarpRabin::kBase mod 2^64).
struct HashConsts {
  std::uint64_t topPow;  // B^{n-1} (out-tap coefficient of the roller)
  explicit HashConsts(std::size_t n) {
    constexpr std::uint64_t B = util::KarpRabin::kBase;
    std::uint64_t p = 1;
    for (std::size_t i = 1; i < n; ++i) p *= B;
    topPow = p;
  }
};

/// x * c mod 2^64 for a full 64-bit x and a splat constant given as
/// 32-bit halves: three PMULUDQ half-products. VPMULLQ computes this in
/// one instruction but with ~15-cycle latency on the bench host — fatal
/// on the loop-carried recurrence chain; the half-product tree is ~8.
[[gnu::always_inline]] inline __m512i mulSplat64(__m512i x, __m512i cLo,
                                                 __m512i cHi) {
  return _mm512_add_epi64(
      _mm512_mul_epu32(x, cLo),
      _mm512_slli_epi64(
          _mm512_add_epi64(_mm512_mul_epu32(x, cHi),
                           _mm512_mul_epu32(_mm512_srli_epi64(x, 32), cLo)),
          32));
}

/// In-place 8x8 transpose of qwords across 8 vectors (three levels:
/// qword unpack, 128-bit block exchange twice).
[[gnu::always_inline]] inline void transpose8x8(__m512i r[kLanes]) {
  const __m512i t0 = _mm512_unpacklo_epi64(r[0], r[1]);
  const __m512i t1 = _mm512_unpackhi_epi64(r[0], r[1]);
  const __m512i t2 = _mm512_unpacklo_epi64(r[2], r[3]);
  const __m512i t3 = _mm512_unpackhi_epi64(r[2], r[3]);
  const __m512i t4 = _mm512_unpacklo_epi64(r[4], r[5]);
  const __m512i t5 = _mm512_unpackhi_epi64(r[4], r[5]);
  const __m512i t6 = _mm512_unpacklo_epi64(r[6], r[7]);
  const __m512i t7 = _mm512_unpackhi_epi64(r[6], r[7]);
  const __m512i u0 = _mm512_shuffle_i64x2(t0, t2, 0x88);
  const __m512i u1 = _mm512_shuffle_i64x2(t1, t3, 0x88);
  const __m512i u2 = _mm512_shuffle_i64x2(t0, t2, 0xdd);
  const __m512i u3 = _mm512_shuffle_i64x2(t1, t3, 0xdd);
  const __m512i u4 = _mm512_shuffle_i64x2(t4, t6, 0x88);
  const __m512i u5 = _mm512_shuffle_i64x2(t5, t7, 0x88);
  const __m512i u6 = _mm512_shuffle_i64x2(t4, t6, 0xdd);
  const __m512i u7 = _mm512_shuffle_i64x2(t5, t7, 0xdd);
  r[0] = _mm512_shuffle_i64x2(u0, u4, 0x88);
  r[1] = _mm512_shuffle_i64x2(u1, u5, 0x88);
  r[2] = _mm512_shuffle_i64x2(u2, u6, 0x88);
  r[3] = _mm512_shuffle_i64x2(u3, u7, 0x88);
  r[4] = _mm512_shuffle_i64x2(u0, u4, 0xdd);
  r[5] = _mm512_shuffle_i64x2(u1, u5, 0xdd);
  r[6] = _mm512_shuffle_i64x2(u2, u6, 0xdd);
  r[7] = _mm512_shuffle_i64x2(u3, u7, 0xdd);
}

/// Hashes `count` grams of length n starting at chars[first], writing the
/// masked mix64 outputs to out. Bit-exact with the scalar roller.
///
/// Blocked-lane decomposition: lane j owns the CONTIGUOUS gram block
/// [j*per, (j+1)*per), so each lane is its own rolling-hash stream and a
/// step advances all 8 streams by ONE gram each with the plain scalar
/// recurrence, vectorized across lanes:
///
///   H(g+1) = H(g)*B - c[g]*B^n + c[g+n]   (mod 2^64)
///
/// Consecutive-gram lane layouts (the AVX2 kernel's stride-4, or a
/// stride-8 block recurrence) pay 7+ byte-tap multiplies per vector
/// because each lane taps a DIFFERENT byte; with blocked lanes a step
/// needs exactly one in-byte and one out-byte per lane. Those bytes are
/// strided in memory, so each group of 8 steps loads one 8-byte run per
/// lane (two VPSHUFB source vectors, in-taps and out-taps) and a single
/// VPADDQ walks the selector through the group. Outputs transpose back
/// to gram order once per group via an 8x8 qword transpose.
///
/// Multiplies on the loop-carried chain use PMULUDQ half-product trees
/// (mulSplat64) — ~8 cycles of chain per step versus ~15 for VPMULLQ.
/// The out-tap product and the mix64 are off-chain.
void hashRoundAvx512(const unsigned char* chars, std::size_t first,
                     std::size_t count, std::size_t n, std::uint64_t mask,
                     const HashConsts& hc, std::uint64_t* out) {
  if (count == 0) return;
  const char* base = reinterpret_cast<const char*>(chars) + first;
  constexpr std::uint64_t B = util::KarpRabin::kBase;

  // Grams each lane owns. Tiny rounds take the plain scalar roller.
  const std::size_t per = count / kLanes;
  if (per < kLanes) {
    util::KarpRabin roller(n);
    std::uint64_t h = roller.init(std::string_view(base, n));
    out[0] = util::mix64(h) & mask;
    for (std::size_t k = 1; k < count; ++k) {
      h -= hc.topPow * chars[first + k - 1];
      h = h * B + chars[first + k - 1 + n];
      out[k] = util::mix64(h) & mask;
    }
    return;
  }

  const std::uint64_t bn = hc.topPow * B;  // B^n
  const __m512i vM1 =
      _mm512_set1_epi64(static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m512i vM2 =
      _mm512_set1_epi64(static_cast<long long>(0x94d049bb133111ebULL));
  const __m512i vBLo = _mm512_set1_epi64(static_cast<long long>(B & 0xFFFFFFFFULL));
  const __m512i vBHi = _mm512_set1_epi64(static_cast<long long>(B >> 32));
  const __m512i vBnLo =
      _mm512_set1_epi64(static_cast<long long>(bn & 0xFFFFFFFFULL));
  const __m512i vBnHi = _mm512_set1_epi64(static_cast<long long>(bn >> 32));
  const __m512i vMask = _mm512_set1_epi64(static_cast<long long>(mask));
  // VPSHUFB selector for "byte g of each qword, zero-extended": byte 0 of
  // qword j picks byte g (within the 128-bit lane: 8g for odd qwords),
  // all other bytes zero via the high bit. Adding 1 per qword advances g
  // (g stays < 8, so the add never carries into the 0x80 filler bytes).
  const __m512i vSel0 = _mm512_set_epi64(
      static_cast<long long>(0x8080808080808008ULL),
      static_cast<long long>(0x8080808080808000ULL),
      static_cast<long long>(0x8080808080808008ULL),
      static_cast<long long>(0x8080808080808000ULL),
      static_cast<long long>(0x8080808080808008ULL),
      static_cast<long long>(0x8080808080808000ULL),
      static_cast<long long>(0x8080808080808008ULL),
      static_cast<long long>(0x8080808080808000ULL));
  const __m512i vOne = _mm512_set1_epi64(1);

  const auto* ub = reinterpret_cast<const unsigned char*>(base);
  auto load8 = [](const unsigned char* p) __attribute__((always_inline)) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return static_cast<long long>(v);
  };
  // One 8-byte run per lane, lane j's bytes at p + j*per: qword j of the
  // VPSHUFB source. The last group's in-tap run reads at most 6 bytes
  // past the final gram's last character — inside batchChars_'s 32-byte
  // slack — and those bytes only reach steps past the loop bound.
  auto gather8 = [&](const unsigned char* p) __attribute__((always_inline)) {
    return _mm512_set_epi64(load8(p + 7 * per), load8(p + 6 * per),
                            load8(p + 5 * per), load8(p + 4 * per),
                            load8(p + 3 * per), load8(p + 2 * per),
                            load8(p + 1 * per), load8(p));
  };

  // Seed each lane's hash over its block's first gram, scalar.
  alignas(64) std::uint64_t seed[kLanes];
  {
    util::KarpRabin roller(n);
    for (std::size_t j = 0; j < kLanes; ++j) {
      seed[j] = roller.init(std::string_view(base + j * per, n));
    }
  }
  __m512i H = _mm512_load_si512(reinterpret_cast<const __m512i*>(seed));

  const std::size_t groups = per / kLanes;
  for (std::size_t t = 0; t < groups; ++t) {
    const unsigned char* pc = ub + t * kLanes;
    const __m512i vOut = gather8(pc);
    const __m512i vIn = gather8(pc + n);
    __m512i sel = vSel0;
    __m512i R[kLanes];
#pragma GCC unroll 8
    for (std::size_t g = 0; g < kLanes; ++g) {
      // Emit the CURRENT gram, then advance past it: step g's taps are
      // gram t*8+g's leading byte and the byte n past it.
      R[g] = _mm512_and_si512(mix64x8(H, vM1, vM2), vMask);
      const __m512i cO = _mm512_shuffle_epi8(vOut, sel);
      const __m512i cI = _mm512_shuffle_epi8(vIn, sel);
      sel = _mm512_add_epi64(sel, vOne);
      // cO < 2^8, so its out-tap product needs only the two cO*half
      // PMULUDQs; it joins the chain in one subtract.
      const __m512i tap = _mm512_sub_epi64(
          cI, _mm512_add_epi64(
                  _mm512_mul_epu32(cO, vBnLo),
                  _mm512_slli_epi64(_mm512_mul_epu32(cO, vBnHi), 32)));
      H = _mm512_add_epi64(mulSplat64(H, vBLo, vBHi), tap);
    }
    transpose8x8(R);
#pragma GCC unroll 8
    for (std::size_t j = 0; j < kLanes; ++j) {
      _mm512_storeu_si512(
          reinterpret_cast<__m512i*>(out + j * per + t * kLanes), R[j]);
    }
  }

  // Ragged block ends (per % 8 steps): finish each lane with the scalar
  // recurrence, seeded from the vector state (H holds each lane's hash
  // of gram groups*8).
  alignas(64) std::uint64_t hs[kLanes];
  _mm512_store_si512(reinterpret_cast<__m512i*>(hs), H);
  for (std::size_t j = 0; j < kLanes; ++j) {
    std::uint64_t h = hs[j];
    for (std::size_t k = groups * kLanes; k < per; ++k) {
      const std::size_t g = j * per + k;
      out[g] = util::mix64(h) & mask;
      h -= hc.topPow * chars[first + g];
      h = h * B + chars[first + g + n];
    }
  }

  // Tail grams [8*per, count): plain scalar rolling.
  std::size_t k = kLanes * per;
  if (k < count) {
    util::KarpRabin roller(n);
    std::uint64_t h = roller.init(std::string_view(base + k, n));
    out[k] = util::mix64(h) & mask;
    for (++k; k < count; ++k) {
      h -= hc.topPow * chars[first + k - 1];
      h = h * B + chars[first + k - 1 + n];
      out[k] = util::mix64(h) & mask;
    }
  }
}

/// In-register winnow of whole w-gram blocks; everything else — the head
/// grams up to the next block boundary, the tail after the last whole
/// block, non-packed configs, w not a multiple of 8 — goes through the
/// scalar consumeHashes. Bit-exact: identical packed keys
/// ((hash << 32) | ~gram), identical van Herk / Gil-Werman block
/// decomposition, identical low-half dedup.
///
/// Per block (w/8 vectors of 8 grams):
///   keys    VPSLLQ | a decrementing inverted-index ramp;
///   prefix  running block minimum per lane: three VALIGNQ+VPMINUQ
///           log-steps (shifting in ~0, the min identity) plus a
///           broadcast carry between vectors;
///   winner  VPMINUQ against the previous block's suffix minima, loaded
///           from suffixMin_[pos + 1] (slot w holds ~0, so the block's
///           last window needs no special case);
///   dedup   compare each winner's low half against its predecessor
///           (lane-shifted with a carry from the previous vector) and
///           record the compare mask; the drain walks the set bits;
///   suffix  reverse log-step scan of this block's keys, stored back to
///           suffixMin_ for the next block — the same array the scalar
///           path maintains, which is what lets the two paths interleave.
void winnowRoundAvx512(BatchPipeline& bp, std::size_t count) {
  const std::size_t w = bp.w;
  if (!bp.packed || w < kLanes || w % kLanes != 0 || w > 64) {
    bp.consumeHashes(count);
    return;
  }

  // Scalar head: to the end of the current block — or of the FIRST block,
  // whose predecessor suffix minima don't exist yet. consumeHashes leaves
  // r == 0 and pfx == ~0 at every block boundary, exactly the state the
  // vector path assumes and preserves.
  std::size_t k = 0;
  std::size_t head;
  if (bp.gramCount < w) {
    head = std::min(count, w - bp.gramCount);
  } else {
    const std::size_t r = bp.gramCount % w;
    head = r == 0 ? 0 : std::min(count, w - r);
  }
  if (head > 0) {
    bp.consumeHashes(head);
    k = head;
  }

  const std::size_t blocks =
      (bp.gramCount >= w && bp.gramCount % w == 0) ? (count - k) / w : 0;
  if (blocks > 0) {
    const std::uint64_t* hashes = bp.hashOut() + k;
    std::uint64_t* sfx = bp.suffixMinData();
    std::uint64_t* winOut = bp.winKeyOut();
    const std::size_t vb = w / kLanes;

    const __m512i vOnes = _mm512_set1_epi64(-1);
    const __m512i vSeven = _mm512_set1_epi64(7);
    const __m512i vEight = _mm512_set1_epi64(8);
    const __m512i vZero = _mm512_setzero_si512();
    // Winners are stored RAW, one vector per 8 grams, with the per-vector
    // dedup results accumulated as mask bytes; the drain walks the set
    // bits. A compress-store with a running output cursor would put a
    // kmov + popcnt + add scalar chain on every vector's store address.
    unsigned char masks[BatchPipeline::kChunkChars / kLanes];
    // Winner predecessors carry across vectors: lane 7 of prevWin is the
    // previous winner. Seeding all lanes with lastSelected's key encoding
    // puts it in lane 7.
    __m512i prevWin = _mm512_set1_epi64(static_cast<long long>(
        0xFFFFFFFFULL - static_cast<std::uint32_t>(bp.lastSelected)));
    // Inverted-index ramp for the next 8 grams; decrements by 8 per
    // vector (gram indices ascend, inverted indices descend).
    __m512i vInv = _mm512_sub_epi64(
        _mm512_set1_epi64(static_cast<long long>(
            0xFFFFFFFFULL - static_cast<std::uint32_t>(bp.gramCount))),
        _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0));

    // The block loop is templated on the vectors-per-block count so the
    // previous block's suffix minima live in registers (S[VB]); they are
    // only materialised into suffixMin_ once, after the last block, for
    // the scalar path's benefit.
    auto blockRun = [&]<std::size_t VB>() __attribute__((noinline)) {
      __m512i S[VB];
      for (std::size_t v = 0; v < VB; ++v) {
        S[v] = _mm512_loadu_si512(
            reinterpret_cast<const __m512i*>(sfx + v * kLanes));
      }
      // Running cursors: indexing by the block number left gcc with two
      // IMULs and ~40 address-arithmetic scalar ops per 16-gram block.
      const std::uint64_t* hp = hashes;
      std::uint64_t* wp = winOut;
      unsigned char* mp = masks;
      for (std::size_t b = 0; b < blocks; ++b) {
        // Keys and their per-vector inclusive prefix-min scans (shift
        // lanes up by 1/2/4 via VALIGNQ over [ones | P], the min
        // identity filling), all VB scans independent.
        __m512i K[VB], F[VB];
#pragma GCC unroll 8
        for (std::size_t v = 0; v < VB; ++v) {
          const __m512i h = _mm512_loadu_si512(
              reinterpret_cast<const __m512i*>(hp + v * kLanes));
          K[v] = _mm512_or_si512(_mm512_slli_epi64(h, 32), vInv);
          vInv = _mm512_sub_epi64(vInv, vEight);
          __m512i P = K[v];
          P = _mm512_min_epu64(P, _mm512_alignr_epi64(P, vOnes, 7));
          P = _mm512_min_epu64(P, _mm512_alignr_epi64(P, vOnes, 6));
          P = _mm512_min_epu64(P, _mm512_alignr_epi64(P, vOnes, 4));
          F[v] = P;
        }
        // Carry the running block minimum across vectors (lane 7 of the
        // previous full prefix), then the winner: min with the previous
        // block's suffix minima one lane ahead — S[VB] would be the ~0
        // sentinel, so the last window needs no special case.
#pragma GCC unroll 8
        for (std::size_t v = 1; v < VB; ++v) {
          F[v] = _mm512_min_epu64(F[v],
                                  _mm512_permutexvar_epi64(vSeven, F[v - 1]));
        }
        __m512i Wv[VB];
#pragma GCC unroll 8
        for (std::size_t v = 0; v < VB; ++v) {
          const __m512i Sn = v + 1 < VB
                                 ? _mm512_alignr_epi64(S[v + 1], S[v], 1)
                                 : _mm512_alignr_epi64(vOnes, S[v], 1);
          Wv[v] = _mm512_min_epu64(F[v], Sn);
        }
        // Dedup on the low half (gram identity): winner changed iff the
        // selected gram changed. prev[0] comes from the previous vector.
#pragma GCC unroll 8
        for (std::size_t v = 0; v < VB; ++v) {
          const __m512i prev = _mm512_alignr_epi64(
              Wv[v], v == 0 ? prevWin : Wv[v - 1], 7);
          mp[v] = _mm512_cmpneq_epu64_mask(
              _mm512_slli_epi64(Wv[v], 32), _mm512_slli_epi64(prev, 32));
          _mm512_storeu_si512(
              reinterpret_cast<__m512i*>(wp + v * kLanes), Wv[v]);
        }
        prevWin = Wv[VB - 1];
        // This block's suffix minima become the next block's lookups.
        // Reverse inclusive scan (shift lanes down by 1/2/4), with a
        // lane-0 broadcast carry from the later vector.
        __m512i carryS = vOnes;
        for (std::size_t v = VB; v-- > 0;) {
          __m512i S2 = K[v];
          S2 = _mm512_min_epu64(S2, _mm512_alignr_epi64(vOnes, S2, 1));
          S2 = _mm512_min_epu64(S2, _mm512_alignr_epi64(vOnes, S2, 2));
          S2 = _mm512_min_epu64(S2, _mm512_alignr_epi64(vOnes, S2, 4));
          S2 = _mm512_min_epu64(S2, carryS);
          S[v] = S2;
          carryS = _mm512_permutexvar_epi64(vZero, S2);
        }
        hp += w;
        wp += w;
        mp += VB;
      }
      for (std::size_t v = 0; v < VB; ++v) {
        _mm512_storeu_si512(reinterpret_cast<__m512i*>(sfx + v * kLanes),
                            S[v]);
      }
    };
    switch (vb) {
      case 1: blockRun.template operator()<1>(); break;
      case 2: blockRun.template operator()<2>(); break;
      case 3: blockRun.template operator()<3>(); break;
      case 4: blockRun.template operator()<4>(); break;
      case 5: blockRun.template operator()<5>(); break;
      case 6: blockRun.template operator()<6>(); break;
      case 7: blockRun.template operator()<7>(); break;
      default: blockRun.template operator()<8>(); break;  // w <= 64
    }

    // Write the winnow state back: blocks end exactly at a boundary, so
    // pfx == ~0 and r == 0 still hold and were never touched.
    bp.gramCount += blocks * w;
    alignas(64) std::uint64_t lastLanes[kLanes];
    _mm512_store_si512(reinterpret_cast<__m512i*>(lastLanes), prevWin);
    bp.lastSelected =
        0xFFFFFFFFULL - static_cast<std::uint32_t>(lastLanes[kLanes - 1]);

    // Drain pass, identical to consumeHashes': materialise the distinct
    // winners via the carryover offset buffer.
    const std::uint32_t* offs = bp.offsBase();
    const std::size_t base = bp.charBase;
    const std::size_t vecs = blocks * vb;
    // The mask bytes form one contiguous bitmask over the blocks' grams
    // (byte j bit i == gram j*8 + i), so drain a qword — 64 grams — per
    // load: with ~one pick per window the per-byte loop entry branch was
    // nearly always mispredicted, a qword's set-bit loop runs long
    // enough to predict.
    std::size_t j = 0;
    for (; j + 8 <= vecs; j += 8) {
      std::uint64_t m;
      std::memcpy(&m, masks + j, sizeof m);
      while (m != 0) {
        const unsigned i = static_cast<unsigned>(__builtin_ctzll(m));
        m &= m - 1;
        const std::uint64_t key = winOut[j * kLanes + i];
        const std::size_t pick =
            0xFFFFFFFFULL - static_cast<std::uint32_t>(key);
        bp.pushSelected(key >> 32, offs[pick - base]);
      }
    }
    for (; j < vecs; ++j) {
      unsigned m = masks[j];
      while (m != 0) {
        const unsigned i = static_cast<unsigned>(__builtin_ctz(m));
        m &= m - 1;
        const std::uint64_t key = winOut[j * kLanes + i];
        const std::size_t pick =
            0xFFFFFFFFULL - static_cast<std::uint32_t>(key);
        bp.pushSelected(key >> 32, offs[pick - base]);
      }
    }
    k += blocks * w;
  }

  if (k < count) bp.consumeHashes(count - k, k);
}

}  // namespace

Fingerprint fingerprintTextAvx512(std::string_view input,
                                  const FingerprintConfig& config,
                                  FingerprintWorkspace& ws) {
  const std::size_t n = config.ngramChars;
  if (input.size() < config.windowChars) return Fingerprint{};
  if (n == 0) return Fingerprint{};

  BatchPipeline bp(ws);
  if (!bp.init(config)) return fingerprintTextFusedScalar(input, config, ws);
  const HashConsts hc(n);

  const auto* bytes = reinterpret_cast<const unsigned char*>(input.data());
  for (std::size_t pos = 0; pos < input.size();
       pos += BatchPipeline::kChunkChars) {
    const std::size_t len =
        std::min(BatchPipeline::kChunkChars, input.size() - pos);
    const std::size_t added =
        normalizeAvx2(bytes + pos, len, pos, bp.charAppend(), bp.offAppend());
    const BatchPipeline::Round round = bp.beginRound(added);
    if (round.grams > 0) {
      hashRoundAvx512(bp.charsBase(), round.firstGramLocal, round.grams, n,
                      bp.mask, hc, bp.hashOut());
      winnowRoundAvx512(bp, round.grams);
    }
    bp.endRound();
  }
  return bp.finish(config);
}

}  // namespace bf::text::simd

#endif  // BF_TEXT_SIMD_X86
