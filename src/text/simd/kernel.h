// Runtime-dispatched SIMD fingerprint kernels (ROADMAP item 4).
//
// Batch implementations of the fused normalize → Karp-Rabin → winnow
// pipeline (text/fingerprint_kernel.h):
//
//   kAvx512 AVX-512 F/DQ/BW/VL (+ the AVX2 tier's normalize): 8-lane
//           block-evaluated rolling hashes, in-register block winnowing
//           (VPMINUQ scans + compare-mask dedup).
//   kAvx2   AVX2 + BMI2: 32-byte vector normalization with PEXT byte
//           compaction, 4-lane block-evaluated rolling hashes.
//   kSse42  SSE4.2: 16-byte vector normalization with PSHUFB compaction
//           (the 256-entry normalization LUT reinterpreted as
//           compare/shuffle masks), 2-lane block-evaluated hashes.
//   kScalar the portable fused kernel (fingerprintTextFusedScalar).
//
// Selection is cpuid-based and resolved once per process, modeled on
// util/crc32c's SSE4.2 dispatch. Overrides, strongest first:
//
//   1. setKernelTierOverrideForTest()      (tests/benches, reversible)
//   2. BF_FORCE_SCALAR_KERNEL=1 in the env (CI fallback coverage on any
//                                           host)
//   3. cpuid: AVX-512 → AVX2+BMI2 → SSE4.2 → scalar
//
// The resolved tier is exported as the `bf_kernel_dispatch` gauge
// (0 = scalar, 1 = sse42, 2 = avx2, 3 = avx512) so a deployment can
// verify which kernel actually dispatched (README "Troubleshooting").
//
// Every tier is bit-exact: the same normalization classification, the
// same Karp-Rabin polynomial mod 2^64, the same mix64 finalizer, the same
// robust-winnow tie-breaks. fingerprintTextReference remains the oracle
// for all of them (tests/text/simd_kernel_test.cpp sweeps tiers ×
// lengths × alignments × hash widths × UTF-8 content).
#pragma once

#include <string_view>

#include "text/fingerprint.h"

namespace bf::text {
class FingerprintWorkspace;
}  // namespace bf::text

namespace bf::text::simd {

/// Dispatch tiers, weakest to strongest. Values are stable: they are the
/// `bf_kernel_dispatch` gauge values.
enum class KernelTier : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Human-readable tier name ("scalar" / "sse42" / "avx2" / "avx512").
[[nodiscard]] const char* kernelTierName(KernelTier tier) noexcept;

/// True when this build AND this host can execute `tier` (compile-time
/// x86-64 gate plus cpuid). kScalar is always supported.
[[nodiscard]] bool kernelTierSupported(KernelTier tier) noexcept;

/// The tier fingerprintTextFused dispatches to right now: the test
/// override if set, else the once-resolved env/cpuid choice.
[[nodiscard]] KernelTier activeKernelTier() noexcept;

/// Forces dispatch to `tier` for this process (tests/benches sweeping
/// dispatch targets). Returns false — leaving dispatch unchanged — when
/// the tier is not supported here. Pass restoreAutoKernelTier() to go
/// back to env/cpuid selection.
bool setKernelTierOverrideForTest(KernelTier tier) noexcept;
void restoreAutoKernelTier() noexcept;

namespace detail {
/// Pure selection policy, unit-testable without touching cpuid or the
/// environment: BF_FORCE_SCALAR_KERNEL beats everything, then the
/// strongest supported tier wins.
[[nodiscard]] KernelTier chooseKernelTier(bool forceScalar, bool haveAvx512,
                                          bool haveAvx2,
                                          bool haveSse42) noexcept;
}  // namespace detail

#if defined(BF_TEXT_SIMD_X86)
/// The batch kernels. Only callable when the corresponding tier is
/// supported (fingerprintTextFused guarantees this via dispatch; direct
/// callers must check kernelTierSupported themselves). Compiled only on
/// x86-64 GNU/Clang builds.
[[nodiscard]] Fingerprint fingerprintTextSse42(std::string_view input,
                                               const FingerprintConfig& config,
                                               FingerprintWorkspace& ws);
[[nodiscard]] Fingerprint fingerprintTextAvx2(std::string_view input,
                                              const FingerprintConfig& config,
                                              FingerprintWorkspace& ws);
[[nodiscard]] Fingerprint fingerprintTextAvx512(std::string_view input,
                                                const FingerprintConfig& config,
                                                FingerprintWorkspace& ws);
#endif  // BF_TEXT_SIMD_X86

}  // namespace bf::text::simd
