// Runtime kernel selection (see kernel.h). Modeled on util/crc32c's
// cpuid dispatch: capability probes via __builtin_cpu_supports, resolved
// once into a function-local static, overridable for tests and via the
// BF_FORCE_SCALAR_KERNEL environment variable.
#include "text/simd/kernel.h"

#include <atomic>
#include <cstdlib>

#include "obs/metrics.h"

namespace bf::text::simd {

namespace {

/// The `bf_kernel_dispatch` gauge: which fingerprint kernel dispatches
/// (0 = scalar, 1 = sse42, 2 = avx2, 3 = avx512). Resolved once; re-set
/// whenever a test override changes the active tier.
obs::Gauge& dispatchGauge() {
  static obs::Gauge& g = obs::registry().gauge(
      "bf_kernel_dispatch",
      "Fingerprint kernel tier in use (0=scalar, 1=sse42, 2=avx2, "
      "3=avx512)");
  return g;
}

bool cpuHasAvx512() noexcept {
#if defined(BF_TEXT_SIMD_X86)
  // F: the 512-bit core ops (VPMINUQ, VALIGNQ, VPERMT2Q); DQ: VPMULLQ
  // in the hash advance and mix64; BW/VL round out the tier so future
  // kernels can mix vector widths. The AVX-512 kernel reuses the AVX2
  // tier's normalize, so its requirements apply too.
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl") &&
         __builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2");
#else
  return false;
#endif
}

bool cpuHasAvx2() noexcept {
#if defined(BF_TEXT_SIMD_X86)
  // The AVX2 kernel compacts bytes with PEXT, so BMI2 is part of the tier.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2");
#else
  return false;
#endif
}

bool cpuHasSse42() noexcept {
#if defined(BF_TEXT_SIMD_X86)
  return __builtin_cpu_supports("sse4.2");
#else
  return false;
#endif
}

bool envForcesScalar() noexcept {
  const char* v = std::getenv("BF_FORCE_SCALAR_KERNEL");
  return v != nullptr && *v != '\0' &&
         !(v[0] == '0' && v[1] == '\0');  // any value but "" and "0" forces
}

KernelTier resolveAutoTier() noexcept {
  return detail::chooseKernelTier(envForcesScalar(), cpuHasAvx512(),
                                  cpuHasAvx2(), cpuHasSse42());
}

/// Test override; -1 means "no override, use the resolved auto tier".
std::atomic<int> g_override{-1};

}  // namespace

namespace detail {

KernelTier chooseKernelTier(bool forceScalar, bool haveAvx512, bool haveAvx2,
                            bool haveSse42) noexcept {
  if (forceScalar) return KernelTier::kScalar;
  if (haveAvx512) return KernelTier::kAvx512;
  if (haveAvx2) return KernelTier::kAvx2;
  if (haveSse42) return KernelTier::kSse42;
  return KernelTier::kScalar;
}

}  // namespace detail

const char* kernelTierName(KernelTier tier) noexcept {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kSse42:
      return "sse42";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool kernelTierSupported(KernelTier tier) noexcept {
  switch (tier) {
    case KernelTier::kScalar:
      return true;
    case KernelTier::kSse42:
      return cpuHasSse42();
    case KernelTier::kAvx2:
      return cpuHasAvx2();
    case KernelTier::kAvx512:
      return cpuHasAvx512();
  }
  return false;
}

KernelTier activeKernelTier() noexcept {
  const int over = g_override.load(std::memory_order_relaxed);
  if (over >= 0) return static_cast<KernelTier>(over);
  // Resolved once per process; publishing the gauge here keeps the metric
  // truthful even if no one queries the tier explicitly.
  static const KernelTier auto_ = [] {
    const KernelTier t = resolveAutoTier();
    dispatchGauge().set(static_cast<double>(static_cast<int>(t)));
    return t;
  }();
  return auto_;
}

bool setKernelTierOverrideForTest(KernelTier tier) noexcept {
  if (!kernelTierSupported(tier)) return false;
  g_override.store(static_cast<int>(tier), std::memory_order_relaxed);
  dispatchGauge().set(static_cast<double>(static_cast<int>(tier)));
  return true;
}

void restoreAutoKernelTier() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
  dispatchGauge().set(
      static_cast<double>(static_cast<int>(activeKernelTier())));
}

}  // namespace bf::text::simd
