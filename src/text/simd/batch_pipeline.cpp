#include "text/simd/batch_pipeline.h"

#include <algorithm>
#include <cstring>

namespace bf::text::simd {

bool BatchPipeline::init(const FingerprintConfig& config) {
  n = config.ngramChars;
  w = config.windowHashes();
  mask = config.hashBits >= 64 ? ~0ULL : ((1ULL << config.hashBits) - 1);
  packed = config.hashBits <= 32;
  carryNeed = n + w;
  // A round must fit the carryover plus a useful amount of fresh work.
  if (carryNeed + 64 > kChunkChars) return false;

  ws.prepare(n, w);  // winnow scratch + selected_ reset

  // 32 bytes of tail slack: the vector compaction stores whole 8-lane
  // groups and lets the next group overwrite the invalid lanes; the final
  // group's overshoot lands in the slack.
  const std::size_t charCap = carryNeed + kChunkChars + 32;
  if (ws.batchChars_.size() < charCap) {
    ws.batchChars_.resize(charCap);
    ws.batchOff_.resize(charCap + 8);
  }
  if (ws.batchHashes_.size() < kChunkChars) {
    ws.batchHashes_.resize(kChunkChars);
    ws.batchWinKeys_.resize(kChunkChars);  // one winner slot per gram, worst case
  }
  // The packed winnow reads suffixMin_[rr + 1] unconditionally; slot w
  // holds the min identity so the block's last window (rr + 1 == w) needs
  // no branch. prepare() sized the vector to w — add the sentinel slot.
  if (ws.suffixMin_.size() < w + 1) ws.suffixMin_.resize(w + 1);
  ws.suffixMin_[w] = ~0ULL;

  pfx = ~0ULL;
  r = 0;
  lastSelected = static_cast<std::size_t>(-1);
  gramCount = 0;
  normTotal = 0;
  carry = 0;
  charBase = 0;
  validChars = 0;
  return true;
}

BatchPipeline::Round BatchPipeline::beginRound(std::size_t added) noexcept {
  validChars = carry + added;
  normTotal += added;
  Round round;
  const std::size_t target = normTotal >= n ? normTotal - n + 1 : 0;
  round.grams = target - gramCount;
  round.firstGramLocal = gramCount - charBase;
  return round;
}

void BatchPipeline::consumeHashes(std::size_t count, std::size_t from) {
  const std::uint64_t* hashes = ws.batchHashes_.data() + from;
  const std::uint32_t* offs = ws.batchOff_.data();

  if (count == 0) return;

  if (packed) {
    // Packed winnow — same key encoding and van Herk / Gil-Werman block
    // decomposition as the scalar kernel's packed path (see
    // fingerprint_kernel.cpp), restructured for batch throughput. Three
    // tricks keep the hot loop at ~17 instructions per gram, all
    // branchless:
    //   - identity sentinels kill both per-gram conditionals: pfx resets
    //     to ~0 whenever a block completes (min identity), and
    //     suffixMin_[w] holds ~0 so the last window of a block reads the
    //     sentinel instead of branching on rr + 1 == w;
    //   - the packed key's low half is a decrementing counter (~gram), so
    //     no per-gram index arithmetic survives in the loop;
    //   - each window stores only its raw 64-bit winner key; deduplication
    //     advances the length when the key's low half (the gram identity)
    //     changed, and a short drain pass afterwards materialises the
    //     ~2/(w+1) distinct picks into (hash, original offset) grams. The
    //     per-window offset lookup and struct store never happen.
    // Loop-carried state lives in locals: members are reached through
    // `this`, and the compiler cannot prove the winOut / blockKeys stores
    // don't alias them, so member accesses would put a store-forward
    // round trip on the pfx dependency chain every gram.
    std::uint64_t* blockKeys = ws.blockKeys_.data();
    const std::uint64_t* suffixMin = ws.suffixMin_.data();
    std::uint64_t* winOut = ws.batchWinKeys_.data();
    std::size_t outLen = 0;
    std::size_t k = 0;

    std::uint64_t pfxL = pfx;
    std::size_t rL = r;
    // lastSelected (a gram index) in winner-key low-half encoding.
    std::uint32_t lastWin =
        0xFFFFFFFFu - static_cast<std::uint32_t>(lastSelected);
    std::uint64_t invIdx =
        (0xFFFFFFFFULL - static_cast<std::uint32_t>(gramCount));
    const std::size_t wL = w;

    // Grams before the first full window (first rounds only): no pick yet.
    // rL < w - 1 throughout, so no block ever completes here.
    const std::size_t warm =
        gramCount + 1 >= wL ? 0 : std::min(count, wL - 1 - gramCount);
    for (; k < warm; ++k) {
      const std::uint64_t key = (hashes[k] << 32) | invIdx;
      --invIdx;
      pfxL = std::min(pfxL, key);
      blockKeys[rL] = key;
      ++rL;
    }

    while (k < count) {
      // Process up to the end of the current w-gram block so the inner
      // loop carries no block-completion test.
      const std::size_t take = std::min(count - k, wL - rL);
      for (std::size_t j = 0; j < take; ++j) {
        const std::uint64_t key = (hashes[k + j] << 32) | invIdx;
        --invIdx;
        pfxL = std::min(pfxL, key);
        blockKeys[rL + j] = key;
        const std::uint64_t winKey = std::min(suffixMin[rL + j + 1], pfxL);
        winOut[outLen] = winKey;
        outLen += static_cast<std::uint32_t>(winKey) != lastWin;
        lastWin = static_cast<std::uint32_t>(winKey);
      }
      k += take;
      rL += take;
      if (rL == wL) {
        // Backward suffix-minimum scan, split into two independent
        // half-chains (low half merged with the high half's total) to
        // halve the serial min-dependency latency.
        std::uint64_t* sfx = ws.suffixMin_.data();
        if (wL < 4) {
          sfx[wL - 1] = blockKeys[wL - 1];
          for (std::size_t j = wL - 1; j-- > 0;) {
            sfx[j] = std::min(blockKeys[j], sfx[j + 1]);
          }
        } else {
          const std::size_t h2 = wL / 2;
          sfx[wL - 1] = blockKeys[wL - 1];
          for (std::size_t j = wL - 1; j-- > h2;) {
            sfx[j] = std::min(blockKeys[j], sfx[j + 1]);
          }
          const std::uint64_t hiAll = sfx[h2];
          std::uint64_t run = blockKeys[h2 - 1];
          sfx[h2 - 1] = std::min(run, hiAll);
          for (std::size_t j = h2 - 1; j-- > 0;) {
            run = std::min(blockKeys[j], run);
            sfx[j] = std::min(run, hiAll);
          }
        }
        rL = 0;
        pfxL = ~0ULL;  // min identity: a fresh block has no prefix yet
      }
    }
    pfx = pfxL;
    r = rL;
    lastSelected = 0xFFFFFFFFULL - lastWin;

    // Drain pass: materialise the distinct winners. The carryover
    // guarantees pick >= charBase: the pick lags the newest gram by < w
    // and the buffer retains n + w characters.
    const std::size_t base = charBase;
    for (std::size_t i = 0; i < outLen; ++i) {
      const std::uint64_t key = winOut[i];
      const std::size_t pick =
          0xFFFFFFFFULL - static_cast<std::uint32_t>(key);
      ws.selected_.push_back({key >> 32, offs[pick - base]});
    }
  } else {
    // Generic path (hashBits > 32): flat monotonic-queue ring, identical
    // to the scalar kernel's.
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t gram = gramCount + k;
      const std::uint64_t h = hashes[k];
      while (ws.ringTail_ != ws.ringHead_ &&
             ws.ring_[(ws.ringTail_ - 1) & ws.ringMask_].hash >= h) {
        --ws.ringTail_;
      }
      ws.ring_[ws.ringTail_ & ws.ringMask_] = {
          h, static_cast<std::uint32_t>(gram), offs[gram - charBase]};
      ++ws.ringTail_;

      if (gram + 1 < w) continue;
      const std::size_t windowStart = gram + 1 - w;
      while (ws.ring_[ws.ringHead_ & ws.ringMask_].gramIndex < windowStart) {
        ++ws.ringHead_;
      }
      const FingerprintWorkspace::Candidate& pick =
          ws.ring_[ws.ringHead_ & ws.ringMask_];
      if (pick.gramIndex != lastSelected) {
        ws.selected_.push_back({pick.hash, pick.origPos});
        lastSelected = pick.gramIndex;
      }
    }
  }
  gramCount += count;
}

void BatchPipeline::endRound() noexcept {
  const std::size_t keep = std::min(validChars, carryNeed);
  const std::size_t dropped = validChars - keep;
  if (dropped > 0) {
    std::memmove(ws.batchChars_.data(), ws.batchChars_.data() + dropped, keep);
    std::memmove(ws.batchOff_.data(), ws.batchOff_.data() + dropped,
                 keep * sizeof(std::uint32_t));
    charBase += dropped;
  }
  carry = keep;
}

Fingerprint BatchPipeline::finish(const FingerprintConfig& config) {
  if (normTotal < config.windowChars || ws.selected_.empty()) {
    return Fingerprint{};
  }
  return detail::finalizeSelectedFingerprint(ws);
}

}  // namespace bf::text::simd
