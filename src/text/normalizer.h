// Text normalization — step S1 of the fingerprinting pipeline (paper S4.1).
//
// "It normalises the text segment by removing punctuation, whitespace and
//  character case. For example, "Hello World!" is transformed to
//  "helloworld"."
//
// Besides the normalized string we keep a map from every normalized
// character back to its offset in the original text. The paper relies on
// this to "attribute accurately which text segment passages caused
// information disclosure" (S4.1): a fingerprint hash carries the position of
// its n-gram, and the map converts that to a user-visible source range.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bf::text {

/// Result of normalizing a text segment.
struct NormalizedText {
  /// Lowercased text with punctuation and whitespace removed.
  std::string text;
  /// originalOffset[i] is the byte offset in the input of text[i].
  std::vector<std::uint32_t> originalOffset;

  [[nodiscard]] std::size_t size() const noexcept { return text.size(); }
  [[nodiscard]] bool empty() const noexcept { return text.empty(); }
};

/// Normalizes `input` per S1. Only ASCII letters and digits are kept
/// (lowercased); every other byte is dropped. Bytes >= 0x80 (non-ASCII) are
/// kept verbatim so that non-English text still fingerprints stably.
[[nodiscard]] NormalizedText normalize(std::string_view input);

}  // namespace bf::text
