// Fused fingerprint kernel — the allocation-lean fast path behind
// fingerprintText (paper S4.1, steps S1-S4 in one pass).
//
// The reference pipeline (normalizer.h → ngram_hasher.h → winnower.h)
// materialises three throwaway buffers per call: the normalized string +
// offset map, the full n-gram hash sequence (16 bytes per character), and
// the winnowing deque. The fused kernel streams the input once instead:
// each byte is normalized via a 256-entry table, rolled into the
// Karp-Rabin hash, and winnowed with a branchless block-minimum (van Herk
// / Gil-Werman over packed (hash, ~index) keys; a flat monotonic-queue
// ring serves configs whose hashes exceed 32 bits). The selected hash set
// is radix-sorted, so the only allocations that survive a call are the two
// vectors owned by the returned Fingerprint (~2/(w+1) of the input under
// winnowing). All scratch lives in a reusable FingerprintWorkspace,
// typically thread-local, so steady-state fingerprinting performs no
// scratch allocation at all.
//
// fingerprintTextFused is a runtime dispatcher: on x86-64 hosts with AVX2
// or SSE4.2 it routes to the batch SIMD kernels in src/text/simd/ (cpuid
// selection modeled on util/crc32c; see text/simd/kernel.h), falling back
// to the portable scalar kernel fingerprintTextFusedScalar everywhere
// else. Every dispatch target is differentially tested to be
// byte-identical (hashes AND original-offset positions) to the staged
// reference in tests/text/fused_kernel_test and tests/text/simd_kernel_test.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "text/fingerprint.h"

namespace bf::text {

class FingerprintWorkspace;

namespace simd {
struct BatchPipeline;
}  // namespace simd

namespace detail {
/// The 256-entry normalization table shared by the scalar and SIMD
/// kernels: 0 means "drop this byte", anything else is the normalized
/// character. Must match text::normalize exactly (lowercase letters and
/// digits kept, uppercase folded, non-ASCII bytes kept verbatim,
/// everything else dropped) — the differential tests pin this.
[[nodiscard]] const std::array<unsigned char, 256>& normTable() noexcept;

/// Shared epilogue: turns the workspace's winnow-selected grams into a
/// Fingerprint (position-ordered grams + LSD-radix-sorted deduplicated
/// hash set). Used by the scalar kernel and the SIMD batch pipeline.
[[nodiscard]] Fingerprint finalizeSelectedFingerprint(
    FingerprintWorkspace& ws);
}  // namespace detail

/// Reusable scratch for fingerprintTextFused. Buffers grow to fit the
/// largest (ngramChars, windowChars) configuration seen and are then
/// reused allocation-free; the per-call content is reset by the kernel.
/// NOT thread-safe: use one workspace per thread (see
/// threadLocalFingerprintWorkspace()).
class FingerprintWorkspace {
 public:
  FingerprintWorkspace() = default;
  FingerprintWorkspace(const FingerprintWorkspace&) = delete;
  FingerprintWorkspace& operator=(const FingerprintWorkspace&) = delete;

  /// Capacity currently held by the scratch buffers, in bytes (telemetry /
  /// tests only). The SIMD batch buffers are chunk-bounded (the batch
  /// kernels process the input in fixed-size rounds), so this stays O(n +
  /// w + chunk) — never O(input).
  [[nodiscard]] std::size_t scratchBytes() const noexcept {
    return chars_.capacity() * sizeof(char) +
           charOff_.capacity() * sizeof(std::uint32_t) +
           ring_.capacity() * sizeof(Candidate) +
           blockKeys_.capacity() * sizeof(std::uint64_t) +
           suffixMin_.capacity() * sizeof(std::uint64_t) +
           radixTmp_.capacity() * sizeof(std::uint64_t) +
           radixTmp32_.capacity() * sizeof(std::uint32_t) +
           selected_.capacity() * sizeof(HashedGram) +
           batchChars_.capacity() * sizeof(unsigned char) +
           batchOff_.capacity() * sizeof(std::uint32_t) +
           batchHashes_.capacity() * sizeof(std::uint64_t) +
           batchWinKeys_.capacity() * sizeof(std::uint64_t);
  }

 private:
  friend Fingerprint fingerprintTextFusedScalar(
      std::string_view input, const FingerprintConfig& config,
      FingerprintWorkspace& ws);
  friend Fingerprint detail::finalizeSelectedFingerprint(
      FingerprintWorkspace& ws);
  friend struct simd::BatchPipeline;

  /// One n-gram hash inside the winnowing window.
  struct Candidate {
    std::uint64_t hash;
    std::uint32_t gramIndex;  ///< index in the gram sequence (tie-breaks)
    std::uint32_t origPos;    ///< original byte offset of the gram's start
  };

  /// Ensures ring capacities for n-gram length `n` and window `w` and
  /// resets per-call state.
  void prepare(std::size_t n, std::size_t w);

  // Ring of the last n + w normalized characters (and their original byte
  // offsets), indexed by normalized position & charMask_. Sized past the
  // n-gram lookback so a winnow pick — up to w - 1 grams behind the
  // current one — can read its original start offset directly.
  std::vector<char> chars_;
  std::vector<std::uint32_t> charOff_;
  std::size_t charMask_ = 0;

  // Flat ring buffer replacing the winnowing monotonic deque (the generic
  // path, hashBits > 32). head_/tail_ are monotone counters; slots are
  // tail_ & ringMask_. Occupancy never exceeds w + 1, so the ring never
  // overflows.
  std::vector<Candidate> ring_;
  std::size_t ringMask_ = 0;
  std::size_t ringHead_ = 0;
  std::size_t ringTail_ = 0;

  // Scratch for the branchless block-minimum winnow (the packed path,
  // hashBits <= 32; see kernel comments): one w-gram block of packed
  // (hash, ~index) keys and its suffix minima.
  std::vector<std::uint64_t> blockKeys_;
  std::vector<std::uint64_t> suffixMin_;

  // Ping-pong buffers for the epilogue's LSD radix sort of the selected
  // hash set (dword pair for hashes that fit 32 bits, qword otherwise).
  std::vector<std::uint64_t> radixTmp_;
  std::vector<std::uint32_t> radixTmp32_;

  // Winnow-selected grams (original-offset positions). The only buffer
  // whose size scales with the fingerprint, not the input.
  std::vector<HashedGram> selected_;

  // SIMD batch-pipeline scratch (src/text/simd/batch_pipeline.h): one
  // chunk of normalized characters with a small inter-chunk carryover,
  // their original byte offsets, the chunk's masked gram hashes, and the
  // packed winnow's per-window winner keys.
  // Chunk-bounded, reused across rounds and calls.
  std::vector<unsigned char> batchChars_;
  std::vector<std::uint32_t> batchOff_;
  std::vector<std::uint64_t> batchHashes_;
  std::vector<std::uint64_t> batchWinKeys_;
};

/// Computes the winnowed fingerprint of `input` under `config` in a single
/// streaming pass using `ws` for all scratch. Dispatches to the best
/// kernel the host supports (AVX2 → SSE4.2 → scalar; see
/// text/simd/kernel.h for forcing and introspection). Every target
/// produces a fingerprint byte-identical to the reference
/// fingerprintTextReference (same hashes, same original-offset positions,
/// same tie-breaks).
[[nodiscard]] Fingerprint fingerprintTextFused(std::string_view input,
                                               const FingerprintConfig& config,
                                               FingerprintWorkspace& ws);

/// The portable scalar kernel — fingerprintTextFused's fallback dispatch
/// target, and the baseline the SIMD kernels are differentially tested
/// against. Exposed so tests and benches can pin the scalar path
/// regardless of host capabilities.
[[nodiscard]] Fingerprint fingerprintTextFusedScalar(
    std::string_view input, const FingerprintConfig& config,
    FingerprintWorkspace& ws);

/// The calling thread's workspace. Lets call sites that cannot thread a
/// workspace through (FlowTracker's public fingerprint paths) still reuse
/// scratch across calls.
[[nodiscard]] FingerprintWorkspace& threadLocalFingerprintWorkspace();

}  // namespace bf::text
