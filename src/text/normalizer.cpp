#include "text/normalizer.h"

namespace bf::text {

NormalizedText normalize(std::string_view input) {
  NormalizedText out;
  out.text.reserve(input.size());
  out.originalOffset.reserve(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(input[i]);
    char keep;
    if (c >= 'a' && c <= 'z') {
      keep = static_cast<char>(c);
    } else if (c >= 'A' && c <= 'Z') {
      keep = static_cast<char>(c - 'A' + 'a');
    } else if (c >= '0' && c <= '9') {
      keep = static_cast<char>(c);
    } else if (c >= 0x80) {
      keep = static_cast<char>(c);  // non-ASCII byte: keep verbatim
    } else {
      continue;  // punctuation, whitespace, control: drop
    }
    out.text.push_back(keep);
    out.originalOffset.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

}  // namespace bf::text
