#include "text/fingerprint_kernel.h"

#include <algorithm>
#include <array>
#include <bit>

#include "text/simd/kernel.h"
#include "util/hashing.h"

namespace bf::text {

namespace {

/// Smallest power of two >= max(v, 1).
std::size_t roundPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Normalization as a 256-entry table: 0 means "drop this byte", anything
/// else is the normalized character. One load + one predictable branch per
/// byte instead of a compare chain (the SIMD kernels evaluate the same
/// classification with compare/shuffle masks; detail::normTable() shares
/// this table with their scalar head/tail code).
constexpr std::array<unsigned char, 256> kNormTab = [] {
  std::array<unsigned char, 256> t{};
  for (int c = 0; c < 256; ++c) {
    if (c >= 'a' && c <= 'z') {
      t[static_cast<std::size_t>(c)] = static_cast<unsigned char>(c);
    } else if (c >= 'A' && c <= 'Z') {
      t[static_cast<std::size_t>(c)] =
          static_cast<unsigned char>(c - 'A' + 'a');
    } else if (c >= '0' && c <= '9') {
      t[static_cast<std::size_t>(c)] = static_cast<unsigned char>(c);
    } else if (c >= 0x80) {
      t[static_cast<std::size_t>(c)] = static_cast<unsigned char>(c);
    }
  }
  return t;
}();

/// Monotone bucket remap for finalizeSelectedFingerprint's MSD pass.
/// Index = top 13 bits of the (range-spread) hash; value = one of 2048
/// buckets placed along the CDF of a 16-window minimum, 1 - (1 - u)^16
/// evaluated in 0.32 fixed point (four squarings). Winnow picks ARE
/// window minima, so remapped keys land near-uniformly across buckets;
/// monotonicity keeps the bucket order a valid sort order for any input.
constexpr std::array<std::uint16_t, 8192> kMinCdfBucket = [] {
  std::array<std::uint16_t, 8192> t{};
  for (std::size_t i = 0; i < 8192; ++i) {
    std::uint64_t p = static_cast<std::uint64_t>(8192 - i) << 19;  // 1 - u
    if (p > 0xFFFFFFFFULL) p = 0xFFFFFFFFULL;
    for (int s = 0; s < 4; ++s) p = (p * p) >> 32;  // (1 - u)^16
    t[i] = static_cast<std::uint16_t>((0xFFFFFFFFULL - p) >> 21);
  }
  return t;
}();

}  // namespace

namespace detail {

const std::array<unsigned char, 256>& normTable() noexcept { return kNormTab; }

Fingerprint finalizeSelectedFingerprint(FingerprintWorkspace& ws) {
  // Winnowing emits strictly increasing pick indices, so selected_ is
  // already in position order and becomes the fingerprint's gram vector
  // wholesale — the workspace re-reserves a like-sized buffer for the
  // next call instead of copying this one out. The hash set is sorted
  // with a bucket radix (ping-ponging through the workspace scratch):
  // the selected hashes are effectively random, so a comparison sort
  // would mispredict on nearly every compare and dominate the whole
  // kernel.
  std::vector<HashedGram> grams = std::move(ws.selected_);
  ws.selected_.clear();  // moved-from: make the state definite
  ws.selected_.reserve(grams.size() + grams.size() / 8 + 64);
  std::vector<std::uint64_t> hashes;
  const std::size_t count = grams.size();
  hashes.reserve(count);
  std::uint64_t maxBits = 0;  // OR of all hashes: bounds the radix passes
  for (const auto& g : grams) {
    maxBits |= g.hash;
  }
  if (maxBits <= 0xFFFFFFFFULL) {
    if (ws.radixTmp32_.size() < 2 * count) ws.radixTmp32_.resize(2 * count);
    std::uint32_t* src = ws.radixTmp32_.data();
    std::uint32_t* dst = src + count;
    if (count <= 2048) {
      // Small sets (every default-config call: ~2 picks per window of 30
      // chars) sort with ONE MSD bucket pass + insertion repair instead
      // of three LSD passes: with at least as many buckets as elements
      // the scatter output is already globally ordered by bucket and
      // buckets average under one element, so insertion sort only fixes
      // local inversions. A third of the histogram traffic (the
      // histogram clears are the radix bottleneck at this size) and one
      // data pass instead of three. Buckets come from kMinCdfBucket so
      // window-minimum-shaped values spread evenly; the spread shift
      // widens narrow hashes (hashBits < 32) to the table's range. A
      // crafted input (or a window width far from 16) could still pile
      // picks into one bucket and make the insertion quadratic, so the
      // histogram pass tracks the fullest bucket and falls through to
      // the pass-count-oblivious LSD radix past 64.
      const auto top = static_cast<std::uint32_t>(maxBits) | 1U;
      const auto spread = static_cast<unsigned>(std::countl_zero(top));
      std::uint16_t h[2049] = {0};
      std::uint16_t maxBucket = 0;
      for (std::size_t k = 0; k < count; ++k) {
        const auto x = static_cast<std::uint32_t>(grams[k].hash);
        src[k] = x;
        maxBucket =
            std::max(maxBucket, ++h[kMinCdfBucket[(x << spread) >> 19] + 1]);
      }
      if (maxBucket <= 64) {
        for (int b = 0; b < 2048; ++b) h[b + 1] += h[b];
        for (std::size_t k = 0; k < count; ++k) {
          dst[h[kMinCdfBucket[(src[k] << spread) >> 19]]++] = src[k];
        }
        for (std::size_t k = 1; k < count; ++k) {
          const std::uint32_t x = dst[k];
          std::size_t j = k;
          while (j > 0 && dst[j - 1] > x) {
            dst[j] = dst[j - 1];
            --j;
          }
          dst[j] = x;
        }
        // Dedup while widening, branchless: duplicates are rare (random
        // 32-bit values), so always store and advance conditionally
        // instead of a per-element push_back.
        hashes.resize(count);
        std::uint64_t* out = hashes.data();
        std::size_t m = 0;
        std::uint64_t prev = ~0ULL;  // > any 32-bit hash: never matches
        for (std::size_t k = 0; k < count; ++k) {
          const std::uint32_t x = dst[k];
          out[m] = x;
          m += static_cast<std::size_t>(x != prev);
          prev = x;
        }
        hashes.resize(m);
        return Fingerprint::fromSortedParts(std::move(grams),
                                            std::move(hashes));
      }
    }
    // All three 11-bit histograms in one data pass: the counter
    // read-modify-writes are the radix bottleneck, and interleaving three
    // independent streams gives the core parallel chains to retire.
    std::uint32_t h0[2049] = {0}, h1[2049] = {0}, h2[1025] = {0};
    for (std::size_t k = 0; k < count; ++k) {
      const std::uint32_t x = static_cast<std::uint32_t>(grams[k].hash);
      src[k] = x;
      ++h0[(x & 0x7FF) + 1];
      ++h1[((x >> 11) & 0x7FF) + 1];
      ++h2[(x >> 22) + 1];
    }
    for (int b = 0; b < 2048; ++b) h0[b + 1] += h0[b];
    for (int b = 0; b < 2048; ++b) h1[b + 1] += h1[b];
    for (int b = 0; b < 1024; ++b) h2[b + 1] += h2[b];
    for (std::size_t k = 0; k < count; ++k) {
      dst[h0[src[k] & 0x7FF]++] = src[k];
    }
    std::swap(src, dst);
    for (std::size_t k = 0; k < count; ++k) {
      dst[h1[(src[k] >> 11) & 0x7FF]++] = src[k];
    }
    std::swap(src, dst);
    for (std::size_t k = 0; k < count; ++k) {
      dst[h2[src[k] >> 22]++] = src[k];
    }
    std::swap(src, dst);
    std::uint64_t prev = ~0ULL;  // > any 32-bit hash: never matches
    for (std::size_t k = 0; k < count; ++k) {  // dedup while widening
      const std::uint32_t h = src[k];
      if (h != prev) hashes.push_back(h);
      prev = h;
    }
    return Fingerprint::fromSortedParts(std::move(grams), std::move(hashes));
  }
  for (const auto& g : grams) {
    hashes.push_back(g.hash);
  }
  if (ws.radixTmp_.size() < count) ws.radixTmp_.resize(count);
  std::uint64_t* src = hashes.data();
  std::uint64_t* dst = ws.radixTmp_.data();
  for (unsigned shift = 0; shift < 64 && (maxBits >> shift) != 0;
       shift += 8) {
    std::uint32_t buckets[257] = {0};
    for (std::size_t k = 0; k < count; ++k) {
      ++buckets[((src[k] >> shift) & 0xFF) + 1];
    }
    for (int b = 0; b < 256; ++b) buckets[b + 1] += buckets[b];
    for (std::size_t k = 0; k < count; ++k) {
      dst[buckets[(src[k] >> shift) & 0xFF]++] = src[k];
    }
    std::swap(src, dst);
  }
  if (src != hashes.data()) std::copy(src, src + count, hashes.data());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  return Fingerprint::fromSortedParts(std::move(grams), std::move(hashes));
}

}  // namespace detail

void FingerprintWorkspace::prepare(std::size_t n, std::size_t w) {
  // The deepest lookback into the character ring is a winnow pick's start
  // offset: the pick lags the current gram by up to w - 1, whose first
  // character lags the newest normalized character by another n - 1.
  const std::size_t charCap = roundPow2(n + w);
  if (chars_.size() < charCap) {
    chars_.resize(charCap);
    charOff_.resize(charCap);
  }
  charMask_ = charCap - 1;
  // Occupancy of the monotonic queue peaks at w + 1: up to w candidates of
  // the current window plus one not-yet-expired candidate of the previous.
  const std::size_t ringCap = roundPow2(w + 1);
  if (ring_.size() < ringCap) ring_.resize(ringCap);
  ringMask_ = ringCap - 1;
  ringHead_ = 0;
  ringTail_ = 0;
  if (blockKeys_.size() < w) {
    blockKeys_.resize(w);
    suffixMin_.resize(w);
  }
  selected_.clear();
}

Fingerprint fingerprintTextFused(std::string_view input,
                                 const FingerprintConfig& config,
                                 FingerprintWorkspace& ws) {
#if defined(BF_TEXT_SIMD_X86)
  switch (simd::activeKernelTier()) {
    case simd::KernelTier::kAvx512:
      return simd::fingerprintTextAvx512(input, config, ws);
    case simd::KernelTier::kAvx2:
      return simd::fingerprintTextAvx2(input, config, ws);
    case simd::KernelTier::kSse42:
      return simd::fingerprintTextSse42(input, config, ws);
    case simd::KernelTier::kScalar:
      break;
  }
#endif
  return fingerprintTextFusedScalar(input, config, ws);
}

Fingerprint fingerprintTextFusedScalar(std::string_view input,
                                       const FingerprintConfig& config,
                                       FingerprintWorkspace& ws) {
  const std::size_t n = config.ngramChars;
  const std::size_t w = config.windowHashes();
  // The normalized text is never longer than the input, so a short input
  // cannot fill a window (the reference checks norm.size() < windowChars).
  if (input.size() < config.windowChars) return Fingerprint{};
  if (n == 0) return Fingerprint{};  // no grams, as in hashNgrams

  const std::uint64_t mask =
      config.hashBits >= 64 ? ~0ULL : ((1ULL << config.hashBits) - 1);
  ws.prepare(n, w);

  // Streams the input once: normalize each byte, keep the last n
  // normalized chars in a flat ring feeding the Karp-Rabin roller, and
  // hand every finished gram (index, masked hash, original byte offset of
  // its first char) to `sink`. Returns the normalized length.
  auto stream = [&](auto&& sink) -> std::size_t {
    util::KarpRabin roller(n);
    std::size_t normCount = 0;  // normalized characters consumed so far
    for (std::size_t i = 0; i < input.size(); ++i) {
      const unsigned char keep = kNormTab[static_cast<unsigned char>(input[i])];
      if (keep == 0) continue;  // punctuation, whitespace, control: drop

      // Read the character leaving the n-gram window BEFORE overwriting
      // its slot: when n is a power of two the outgoing index maps to the
      // same ring slot as the incoming one.
      const char outgoing =
          normCount >= n ? ws.chars_[(normCount - n) & ws.charMask_] : '\0';
      const std::size_t slot = normCount & ws.charMask_;
      ws.chars_[slot] = static_cast<char>(keep);
      ws.charOff_[slot] = static_cast<std::uint32_t>(i);
      ++normCount;

      if (normCount < n) continue;
      std::uint64_t kr;
      if (normCount == n) {
        // First gram: the ring has not wrapped yet (n <= capacity), so the
        // first n characters are contiguous from slot 0.
        kr = roller.init(std::string_view(ws.chars_.data(), n));
      } else {
        kr = roller.roll(outgoing, static_cast<char>(keep));
      }

      const std::size_t gram = normCount - n;  // index in the gram sequence
      sink(gram, util::mix64(kr) & mask,
           ws.charOff_[gram & ws.charMask_]);
    }
    return normCount;
  };

  // Sentinel distinct from any gram index.
  std::size_t lastSelected = static_cast<std::size_t>(-1);
  std::size_t normCount;

  if (config.hashBits <= 32) {
    // Packed branchless winnow. Each gram becomes one sortable key
    //
    //     key = (hash << 32) | (0xFFFFFFFF - gramIndex)
    //
    // whose minimum over a window IS robust winnowing's pick: the smallest
    // hash, ties broken towards the RIGHTMOST gram (larger index ==
    // smaller inverted low word). The sliding-window minimum then comes
    // from the two-scan block decomposition (van Herk / Gil-Werman):
    // grams are grouped into blocks of w; `pfx` carries the running
    // minimum of the current block and suffixMin_[j] the backward minima
    // of the previous block, so the window [s, s+w-1] minimum is
    // min(suffixMin_[s % w], pfx) — about three branchless min ops per
    // gram instead of a mispredict-prone monotonic-queue pop loop.
    std::uint64_t pfx = ~0ULL;
    std::size_t r = 0;  // gram index modulo w, maintained incrementally
    normCount = stream([&](std::size_t gram, std::uint64_t h,
                           std::uint32_t origPos) {
      const std::uint64_t key =
          (h << 32) |
          (0xFFFFFFFFULL - static_cast<std::uint32_t>(gram));
      (void)origPos;  // the pick's offset is read from charOff_ instead
      pfx = r == 0 ? key : std::min(pfx, key);
      ws.blockKeys_[r] = key;

      if (gram + 1 >= w) {
        // Window start s = gram - w + 1, s % w == (r + 1) % w.
        const std::size_t r2 = r + 1 == w ? 0 : r + 1;
        const std::uint64_t winKey =
            r2 == 0 ? pfx : std::min(ws.suffixMin_[r2], pfx);
        const std::size_t pick =
            0xFFFFFFFFULL - (winKey & 0xFFFFFFFFULL);
        if (pick != lastSelected) {
          // The char ring still holds the pick's start offset: the ring
          // covers n + w positions and the pick is at most w - 1 grams
          // behind the newest character's gram.
          ws.selected_.push_back(
              {winKey >> 32, ws.charOff_[pick & ws.charMask_]});
          lastSelected = pick;
        }
      }
      if (r + 1 == w) {
        // Block complete: backward scan fixes its suffix minima (1 min
        // per gram amortised) before the next block overwrites it.
        ws.suffixMin_[w - 1] = ws.blockKeys_[w - 1];
        for (std::size_t j = w - 1; j-- > 0;) {
          ws.suffixMin_[j] = std::min(ws.blockKeys_[j], ws.suffixMin_[j + 1]);
        }
        r = 0;
      } else {
        ++r;
      }
    });
  } else {
    // Generic path (hashBits > 32): hashes do not fit the packed key, so
    // winnow with the flat monotonic-queue ring.
    normCount = stream([&](std::size_t gram, std::uint64_t h,
                           std::uint32_t origPos) {
      // Monotonic queue push: ">=" keeps the RIGHTMOST of equal hashes
      // (robust winnowing tie-break, identical to the reference winnow()).
      while (ws.ringTail_ != ws.ringHead_ &&
             ws.ring_[(ws.ringTail_ - 1) & ws.ringMask_].hash >= h) {
        --ws.ringTail_;
      }
      ws.ring_[ws.ringTail_ & ws.ringMask_] = {
          h, static_cast<std::uint32_t>(gram), origPos};
      ++ws.ringTail_;

      if (gram + 1 < w) return;  // window not yet full
      const std::size_t windowStart = gram + 1 - w;
      while (ws.ring_[ws.ringHead_ & ws.ringMask_].gramIndex < windowStart) {
        ++ws.ringHead_;
      }
      const FingerprintWorkspace::Candidate& pick =
          ws.ring_[ws.ringHead_ & ws.ringMask_];
      if (pick.gramIndex != lastSelected) {
        ws.selected_.push_back({pick.hash, pick.origPos});
        lastSelected = pick.gramIndex;
      }
    });
  }

  if (normCount < config.windowChars || ws.selected_.empty()) {
    return Fingerprint{};
  }
  return detail::finalizeSelectedFingerprint(ws);
}

FingerprintWorkspace& threadLocalFingerprintWorkspace() {
  thread_local FingerprintWorkspace ws;
  return ws;
}

}  // namespace bf::text
