#include "text/winnower.h"

#include "text/fingerprint_kernel.h"

namespace bf::text {

std::vector<HashedGram> winnow(const std::vector<HashedGram>& grams,
                               std::size_t windowHashes) {
  std::vector<HashedGram> selected;
  if (grams.empty() || windowHashes == 0) return selected;
  const std::size_t w = windowHashes;
  if (grams.size() < w) return selected;  // cannot fill a single window

  // Monotonic queue of indices; front is the index of the rightmost minimal
  // hash in the current window. Using ">=" when popping keeps the rightmost
  // of equal hashes (robust winnowing tie-break). Backed by a vector with a
  // head cursor (pop_front = ++head) — the hot path uses the flat ring in
  // fingerprint_kernel.cpp; this reference copy stays deque-free too so the
  // std::deque ban in src/text (scripts/bflint.py) holds tree-wide.
  std::vector<std::size_t> queue;
  queue.reserve(w + 1);
  std::size_t head = 0;
  std::size_t lastSelected = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < grams.size(); ++i) {
    while (queue.size() > head && grams[queue.back()].hash >= grams[i].hash) {
      queue.pop_back();
    }
    if (head > w) {
      // Compact the dead prefix. Each compaction moves at most the w live
      // entries and reclaims > w slots, so the cost is amortised O(1) per
      // gram and the storage stays O(w).
      queue.erase(queue.begin(),
                  queue.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
    queue.push_back(i);
    if (i + 1 < w) continue;
    const std::size_t windowStart = i + 1 - w;
    while (queue[head] < windowStart) ++head;
    const std::size_t pick = queue[head];
    // The same gram is typically minimal across many consecutive windows;
    // record it once. This is what keeps fingerprints sparse.
    if (pick != lastSelected) {
      selected.push_back(grams[pick]);
      lastSelected = pick;
    }
  }
  return selected;
}

Fingerprint fingerprintText(std::string_view input,
                            const FingerprintConfig& config) {
  return fingerprintTextFused(input, config,
                              threadLocalFingerprintWorkspace());
}

Fingerprint fingerprintTextReference(std::string_view input,
                                     const FingerprintConfig& config) {
  const NormalizedText norm = normalize(input);
  if (norm.size() < config.windowChars) return Fingerprint{};
  const std::vector<HashedGram> grams =
      hashNgrams(norm, config.ngramChars, config.hashBits);
  std::vector<HashedGram> selected = winnow(grams, config.windowHashes());
  // Translate normalized positions to ORIGINAL byte offsets, so disclosure
  // can be attributed to user-visible source passages (paper S4.1:
  // "provided that the location of the corresponding source text for each
  // hash in the fingerprint is also stored").
  for (HashedGram& g : selected) {
    g.pos = norm.originalOffset[g.pos];
  }
  return Fingerprint::fromSelected(std::move(selected));
}

}  // namespace bf::text
