// Aho-Corasick multi-pattern matcher.
//
// Imprecise (fingerprint) tracking "is not effective at a finer granularity
// than paragraphs" (paper S4.4); short sensitive strings — passwords, API
// keys, account numbers — need "data equality only". The secret guard
// (src/core/secret_guard.h) uses this automaton to scan every outgoing
// text for registered short secrets in O(text + matches), independent of
// the number of secrets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bf::text {

class AhoCorasick {
 public:
  AhoCorasick();

  /// Registers a pattern with a caller-chosen id. Patterns are matched as
  /// raw byte sequences (callers normalise first if they want case/
  /// punctuation insensitivity). Empty patterns are ignored.
  void addPattern(std::string_view pattern, std::uint64_t id);

  /// Builds failure links. Called automatically by the search functions
  /// when patterns changed; exposed for explicit control.
  void build();

  struct Match {
    std::uint64_t id = 0;
    /// Byte offset one past the match's last character.
    std::size_t end = 0;
    std::size_t length = 0;
  };

  /// All matches in `text`, in order of their end positions.
  [[nodiscard]] std::vector<Match> findAll(std::string_view text);

  /// True if any registered pattern occurs in `text` (early-outs).
  [[nodiscard]] bool containsAny(std::string_view text);

  [[nodiscard]] std::size_t patternCount() const noexcept {
    return patterns_;
  }

 private:
  static constexpr int kAlphabet = 256;

  struct Node {
    // Child node index per byte; -1 = absent (goto function).
    std::vector<std::int32_t> next;
    std::int32_t fail = 0;
    // Pattern (id, length) pairs ending at this node, plus those inherited
    // through suffix (dictionary) links during build.
    std::vector<std::pair<std::uint64_t, std::size_t>> outputs;
    Node() : next(kAlphabet, -1) {}
  };

  /// Inserts one pattern into the trie (no failure links yet).
  void insertIntoTrie(std::string_view pattern, std::uint64_t id);

  std::vector<Node> nodes_;
  /// Source of truth: build() reconstructs the trie from this list, so
  /// patterns can be added after a search (the DFA conversion overwrites
  /// absent trie edges and cannot be extended in place).
  std::vector<std::pair<std::string, std::uint64_t>> patternList_;
  std::size_t patterns_ = 0;
  bool built_ = false;
};

}  // namespace bf::text
