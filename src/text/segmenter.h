// Paragraph segmentation.
//
// BrowserFlow "tracks text segments at two granularities independently,
// namely individual paragraphs and entire documents" (paper S4.1). The
// segmenter turns a document's plain text into the paragraph-level segments
// that the flow tracker fingerprints.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bf::text {

/// One paragraph of a document.
struct ParagraphSpan {
  /// 0-based index of the paragraph within the document.
  std::size_t index;
  /// Byte offset of the paragraph's first character in the document text.
  std::size_t offset;
  /// The paragraph text (owned copy, trimmed).
  std::string text;
};

/// Splits a document into paragraphs (blocks separated by blank lines).
/// Whitespace-only blocks are dropped; paragraph indices are consecutive.
[[nodiscard]] std::vector<ParagraphSpan> segmentParagraphs(
    std::string_view document);

}  // namespace bf::text
