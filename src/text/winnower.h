// Winnowing — steps S3/S4 of the fingerprinting pipeline (paper S4.1),
// following Schleimer, Wilkerson & Aiken, "Winnowing: Local Algorithms for
// Document Fingerprinting" (SIGMOD 2003).
//
// Overlapping windows of w consecutive n-gram hashes slide over the hash
// sequence; the minimum hash of each window joins the fingerprint. Two
// properties the rest of the system depends on (paper S4.1):
//   1. Any shared substring of >= windowChars characters yields at least one
//      shared fingerprint hash (the winnowing guarantee).
//   2. Small local edits perturb only nearby selections, so the fingerprint
//      changes little and is insensitive to reordering distant content.
#pragma once

#include <type_traits>

#include "sec/sensitive.h"
#include "text/fingerprint.h"

namespace bf::text {

/// Computes the winnowed fingerprint of `input` under `config`.
///
/// Texts whose normalized form is shorter than `config.windowChars` produce
/// an EMPTY fingerprint: the paper reports exactly this as "a systematic,
/// small number of false negatives for short paragraphs without enough
/// characters to fill a fingerprinting window" (S6.1).
///
/// Implemented by the fused single-pass kernel (text/fingerprint_kernel.h)
/// with the calling thread's reusable workspace; byte-identical to the
/// staged reference pipeline below.
[[nodiscard]] Fingerprint fingerprintText(std::string_view input,
                                          const FingerprintConfig& config);

/// The original three-stage pipeline (normalize → hashNgrams → winnow),
/// kept as the REFERENCE implementation: differential tests prove the
/// fused kernel produces identical fingerprints, and the perf benches use
/// it as the pre-fusion baseline.
[[nodiscard]] Fingerprint fingerprintTextReference(
    std::string_view input, const FingerprintConfig& config);

/// Declassification gates (sec/sensitive.h): a winnowed fingerprint is a
/// sparse set of 32-bit hashes — non-invertible, safe to store, compare
/// and export. These overloads are how sensitive content legitimately
/// leaves the sec type system. Constrained to the sec types only (raw
/// strings take the std::string_view overloads above), so a std::string
/// argument never sees two viable candidates.
template <typename Sensitive,
          std::enable_if_t<
              std::is_convertible_v<const Sensitive&, sec::SensitiveView> &&
                  !std::is_convertible_v<const Sensitive&, std::string_view>,
              int> = 0>
[[nodiscard]] Fingerprint fingerprintText(const Sensitive& input,
                                          const FingerprintConfig& config) {
  return fingerprintText(sec::SensitiveView(input).raw(), config);
}
template <typename Sensitive,
          std::enable_if_t<
              std::is_convertible_v<const Sensitive&, sec::SensitiveView> &&
                  !std::is_convertible_v<const Sensitive&, std::string_view>,
              int> = 0>
[[nodiscard]] Fingerprint fingerprintTextReference(
    const Sensitive& input, const FingerprintConfig& config) {
  return fingerprintTextReference(sec::SensitiveView(input).raw(), config);
}

/// Winnows an already-hashed gram sequence. Exposed for tests and for the
/// document-level pass, which reuses the paragraph gram streams.
/// Tie-breaking selects the RIGHTMOST minimal hash in each window ("robust
/// winnowing"), which minimizes fingerprint density.
[[nodiscard]] std::vector<HashedGram> winnow(
    const std::vector<HashedGram>& grams, std::size_t windowHashes);

}  // namespace bf::text
