#include "text/segmenter.h"

#include "util/strings.h"

namespace bf::text {

std::vector<ParagraphSpan> segmentParagraphs(std::string_view document) {
  std::vector<ParagraphSpan> out;
  const std::vector<std::string_view> paras =
      util::splitParagraphs(document);
  out.reserve(paras.size());
  for (std::size_t i = 0; i < paras.size(); ++i) {
    const std::size_t offset =
        static_cast<std::size_t>(paras[i].data() - document.data());
    out.push_back(ParagraphSpan{i, offset, std::string(paras[i])});
  }
  return out;
}

}  // namespace bf::text
