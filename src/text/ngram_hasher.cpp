#include "text/ngram_hasher.h"

#include "util/hashing.h"

namespace bf::text {

std::vector<HashedGram> hashNgrams(const NormalizedText& normalized,
                                   std::size_t ngramChars,
                                   unsigned hashBits) {
  std::vector<HashedGram> out;
  const std::string& t = normalized.text;
  if (ngramChars == 0 || t.size() < ngramChars) return out;

  const std::uint64_t mask =
      hashBits >= 64 ? ~0ULL : ((1ULL << hashBits) - 1);

  out.reserve(t.size() - ngramChars + 1);
  util::KarpRabin roller(ngramChars);
  std::uint64_t h = roller.init(t);
  // Post-mix the rolling hash: raw Karp-Rabin values of similar strings are
  // correlated in their low bits, which matters once truncated to 32 bits.
  out.push_back({util::mix64(h) & mask, 0});
  for (std::size_t i = ngramChars; i < t.size(); ++i) {
    h = roller.roll(t[i - ngramChars], t[i]);
    out.push_back(
        {util::mix64(h) & mask, static_cast<std::uint32_t>(i - ngramChars + 1)});
  }
  return out;
}

}  // namespace bf::text
