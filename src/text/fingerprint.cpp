#include "text/fingerprint.h"

#include <algorithm>
#include <cassert>

namespace bf::text {

Fingerprint Fingerprint::fromSelected(std::vector<HashedGram> selected) {
  Fingerprint fp;
  std::sort(selected.begin(), selected.end(),
            [](const HashedGram& a, const HashedGram& b) {
              return a.pos < b.pos;
            });
  fp.hashes_.reserve(selected.size());
  for (const auto& g : selected) fp.hashes_.push_back(g.hash);
  std::sort(fp.hashes_.begin(), fp.hashes_.end());
  fp.hashes_.erase(std::unique(fp.hashes_.begin(), fp.hashes_.end()),
                   fp.hashes_.end());
  fp.grams_ = std::move(selected);
  return fp;
}

Fingerprint Fingerprint::fromSortedParts(std::vector<HashedGram> grams,
                                         std::vector<std::uint64_t> hashes) {
  assert(std::is_sorted(grams.begin(), grams.end(),
                        [](const HashedGram& a, const HashedGram& b) {
                          return a.pos < b.pos;
                        }));
  assert(std::is_sorted(hashes.begin(), hashes.end()));
  assert(std::adjacent_find(hashes.begin(), hashes.end()) == hashes.end());
  Fingerprint fp;
  fp.grams_ = std::move(grams);
  fp.hashes_ = std::move(hashes);
  return fp;
}

bool Fingerprint::contains(std::uint64_t hash) const noexcept {
  return std::binary_search(hashes_.begin(), hashes_.end(), hash);
}

std::size_t Fingerprint::intersectionSize(const Fingerprint& a,
                                          const Fingerprint& b) noexcept {
  std::size_t count = 0;
  auto ia = a.hashes_.begin();
  auto ib = b.hashes_.begin();
  while (ia != a.hashes_.end() && ib != b.hashes_.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

}  // namespace bf::text
