// Fingerprint: the winnowed hash set of a text segment (paper S4.1).
//
// A fingerprint is "a set of hashes carefully chosen from particular
// passages in the paragraph". We store both the position-ordered selected
// grams (for disclosure attribution) and a sorted unique hash vector (for
// the set operations in the disclosure metrics, S4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "text/ngram_hasher.h"

namespace bf::text {

/// Configuration of the fingerprinting pipeline. Paper defaults (S6):
/// "32-bit hashes over n-grams of 15 characters with a window size of 30
/// characters".
struct FingerprintConfig {
  /// Noise threshold: matches shorter than this many characters are never
  /// detected.
  std::size_t ngramChars = 15;
  /// Guarantee threshold: any shared substring of at least this many
  /// characters is always detected. Must be >= ngramChars.
  std::size_t windowChars = 30;
  /// Width of stored hashes in bits (paper: 32).
  unsigned hashBits = 32;

  /// Number of consecutive n-gram hashes per winnowing window
  /// (w = t - n + 1 in the winnowing paper's notation).
  [[nodiscard]] std::size_t windowHashes() const noexcept {
    return windowChars >= ngramChars ? windowChars - ngramChars + 1 : 1;
  }
};

class Fingerprint {
 public:
  Fingerprint() = default;

  /// Builds a fingerprint from winnow-selected grams (any order, duplicates
  /// allowed; duplicates collapse in the hash set but all positions are
  /// kept for attribution).
  static Fingerprint fromSelected(std::vector<HashedGram> selected);

  /// Assembles a fingerprint from components the caller already prepared:
  /// `grams` in position order and `hashes` sorted and de-duplicated
  /// (debug-asserted). The fused kernel's epilogue: winnowing emits picks
  /// in position order and the kernel radix-sorts the hash set itself, so
  /// nothing is left for this factory to do but adopt the vectors.
  static Fingerprint fromSortedParts(std::vector<HashedGram> grams,
                                     std::vector<std::uint64_t> hashes);

  /// Selected grams in normalized-text position order.
  [[nodiscard]] const std::vector<HashedGram>& grams() const noexcept {
    return grams_;
  }

  /// Sorted, de-duplicated hash values. This is "F(A)" in the paper's
  /// disclosure equations.
  [[nodiscard]] const std::vector<std::uint64_t>& hashes() const noexcept {
    return hashes_;
  }

  /// |F(A)|: number of distinct hashes.
  [[nodiscard]] std::size_t size() const noexcept { return hashes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return hashes_.empty(); }

  /// O(log n) membership test.
  [[nodiscard]] bool contains(std::uint64_t hash) const noexcept;

  /// |F(A) ∩ F(B)|.
  [[nodiscard]] static std::size_t intersectionSize(
      const Fingerprint& a, const Fingerprint& b) noexcept;

  /// True if both fingerprints have identical hash sets (positions may
  /// differ, e.g. after shuffling paragraph content).
  [[nodiscard]] bool sameHashes(const Fingerprint& other) const noexcept {
    return hashes_ == other.hashes_;
  }

 private:
  std::vector<HashedGram> grams_;
  std::vector<std::uint64_t> hashes_;
};

}  // namespace bf::text
