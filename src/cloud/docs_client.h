// DocsClient: the in-page script of the Google-Docs-like editor.
//
// Mirrors what the paper observed of Google Docs (S5.2): user text is
// embedded "directly into the DOM tree" as custom-formatted paragraph
// <div>s (no <input>/<textarea>), and every edit triggers an AJAX request
// carrying the mutation. BrowserFlow therefore watches this client through
// mutation observers and the patched XMLHttpRequest prototype — never
// through service-specific hooks.
#pragma once

#include <cstdint>
#include <string>

#include "browser/page.h"
#include "util/retry.h"

namespace bf::cloud {

class DocsClient {
 public:
  /// Binds to a page whose origin hosts a DocsBackend; `docId` names the
  /// document being edited.
  DocsClient(browser::Page& page, std::string docId);

  /// Turns on transport retries (off by default: a plain page script).
  /// Idempotency-aware: only "set" mutations are full-state upserts that
  /// replay safely; positional "insert"s and "delete"s are only retried for
  /// faults that provably never reached the backend (a replayed delete that
  /// did land would erase whichever paragraph shifted into its index).
  void enableRetries(const util::RetryPolicy& policy, std::uint64_t seed,
                     double budgetCapacity = 10.0);

  /// Builds the editor DOM (the "document open" render).
  void openDocument();

  /// Root element containing the paragraph divs.
  [[nodiscard]] browser::Node* editorRoot();

  /// The <div class="docs-paragraph"> for paragraph `index` (nullptr if
  /// out of range).
  [[nodiscard]] browser::Node* paragraphNode(std::size_t index);
  [[nodiscard]] std::string paragraphText(std::size_t index);
  [[nodiscard]] std::size_t paragraphCount();

  // ---- Editing operations. Each mutates the DOM (observers fire), then
  // ---- uploads the mutation via XHR (the patched prototype sees it).
  // ---- Returns the HTTP status the page script saw (0 = blocked).

  /// Replaces the full text of a paragraph (e.g. a paste into it).
  int setParagraph(std::size_t index, const std::string& text);
  /// Appends one character — the per-keystroke path of S6.2.
  int typeChar(std::size_t index, char c);
  /// Types a string one character at a time. Returns the first non-2xx
  /// status any keystroke saw (200 when all succeeded), so callers notice
  /// a blocked or failed keystroke even mid-string.
  int typeText(std::size_t index, const std::string& text);
  /// Inserts a new paragraph before `index`.
  int insertParagraph(std::size_t index, const std::string& text);
  int deleteParagraph(std::size_t index);
  /// Pastes a multi-paragraph text as new paragraphs at the end. Returns
  /// the first non-2xx status (200 when every paragraph succeeded).
  int pasteDocument(const std::string& fullText);

 private:
  int uploadMutation(const std::string& op, std::size_t index,
                     const std::string& text);

  browser::Page& page_;
  std::string docId_;
  util::RetryPolicy retryPolicy_;
  util::Rng retryRng_{0};
  util::RetryBudget retryBudget_;
  bool retriesEnabled_ = false;
};

}  // namespace bf::cloud
