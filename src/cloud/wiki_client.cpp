#include "cloud/wiki_client.h"

#include "cloud/transport.h"

namespace bf::cloud {

WikiClient::WikiClient(browser::Page& page, std::string pageId)
    : page_(page), pageId_(std::move(pageId)) {}

void WikiClient::enableRetries(const util::RetryPolicy& policy,
                               std::uint64_t seed, double budgetCapacity) {
  retryPolicy_ = policy;
  retryRng_ = util::Rng(seed);
  retryBudget_.configure(budgetCapacity);
  retriesEnabled_ = policy.enabled();
}

void WikiClient::openEditor(const std::string& initialContent) {
  auto& doc = page_.document();
  auto form = doc.createElement("form");
  form->setAttribute("id", "wiki-edit");
  form->setAttribute("method", "post");
  form->setAttribute("action", "/wiki/save");

  auto title = doc.createElement("input");
  title->setAttribute("type", "text");
  title->setAttribute("name", "title");
  title->setAttribute("value", pageId_);
  form->appendChild(std::move(title));

  auto content = doc.createElement("textarea");
  content->setAttribute("name", "content");
  content->setAttribute("id", "wiki-content");
  content->setAttribute("value", initialContent);
  form->appendChild(std::move(content));

  auto token = doc.createElement("input");
  token->setAttribute("type", "hidden");
  token->setAttribute("name", "csrf");
  token->setAttribute("value", "token-123");
  form->appendChild(std::move(token));

  doc.root()->appendChild(std::move(form));
  page_.flushObservers();
}

browser::Node* WikiClient::form() {
  return page_.document().root()->byId("wiki-edit");
}

browser::Node* WikiClient::contentArea() {
  return page_.document().root()->byId("wiki-content");
}

void WikiClient::setContent(const std::string& text) {
  browser::Node* area = contentArea();
  if (area != nullptr) area->setAttribute("value", text);
  page_.flushObservers();
}

std::string WikiClient::content() {
  browser::Node* area = contentArea();
  return area == nullptr ? std::string{} : area->attribute("value");
}

int WikiClient::save() {
  browser::Node* f = form();
  if (f == nullptr) return 0;
  // Each attempt re-dispatches the submit event, so the plug-in's form
  // listener re-checks retries exactly like first submissions.
  auto send = [&] { return page_.submitForm(f); };
  if (!retriesEnabled_) return send().status;
  return sendWithRetry(send, retryPolicy_, &retryRng_, &retryBudget_,
                       /*idempotent=*/true)
      .response.status;
}

}  // namespace bf::cloud
