#include "cloud/fault_injector.h"

#include <string>

#include "cloud/transport.h"
#include "obs/metrics.h"

namespace bf::cloud {

namespace {
struct FaultMetrics {
  obs::Counter* requests;      // bf_fault_requests_total
  obs::Counter* injected;      // bf_fault_injected_total
  obs::Counter* http5xx;       // bf_fault_http5xx_total
  obs::Counter* refused;       // bf_fault_refused_total
  obs::Counter* reset;         // bf_fault_reset_total
  obs::Counter* timeout;       // bf_fault_timeout_total
  obs::Counter* truncated;     // bf_fault_truncated_total
  obs::Counter* corrupted;     // bf_fault_corrupted_total
  obs::Histogram* spikeMs;     // bf_fault_timeout_spike_ms
};
const FaultMetrics& faultMetrics() {
  static const FaultMetrics m = [] {
    obs::MetricsRegistry& r = obs::registry();
    return FaultMetrics{
        &r.counter("bf_fault_requests_total",
                   "Requests that passed through the fault injector"),
        &r.counter("bf_fault_injected_total", "Faults injected (all kinds)"),
        &r.counter("bf_fault_http5xx_total", "Injected upstream 5xx errors"),
        &r.counter("bf_fault_refused_total",
                   "Injected pre-dispatch connection refusals"),
        &r.counter("bf_fault_reset_total",
                   "Injected post-dispatch connection resets"),
        &r.counter("bf_fault_timeout_total",
                   "Injected latency spikes past the client deadline"),
        &r.counter("bf_fault_truncated_total",
                   "Injected truncated response bodies"),
        &r.counter("bf_fault_corrupted_total",
                   "Injected corrupted response bodies"),
        &r.histogram("bf_fault_timeout_spike_ms",
                     "Simulated latency attributed to timeout faults")};
  }();
  return m;
}
}  // namespace

FaultInjector::FaultInjector(browser::RequestSink* inner, std::uint64_t seed,
                             FaultConfig defaults)
    : inner_(inner), rng_(seed), defaults_(defaults) {}

void FaultInjector::setDefaults(FaultConfig config) {
  util::MutexLock lock(mutex_);
  defaults_ = config;
}

void FaultInjector::setOriginFaults(const std::string& origin,
                                    FaultConfig config) {
  util::MutexLock lock(mutex_);
  perOrigin_[origin] = config;
}

void FaultInjector::failNext(const std::string& origin, int count,
                             FaultKind kind) {
  util::MutexLock lock(mutex_);
  if (count > 0) scheduled_[origin].emplace_back(kind, count);
}

FaultKind FaultInjector::pickFaultLocked(const std::string& origin) {
  auto cit = perOrigin_.find(origin);
  const FaultConfig& cfg = cit != perOrigin_.end() ? cit->second : defaults_;

  // 1. Scripted schedules beat everything (test determinism). A scheduled
  //    5xx opens a burst just like a sampled one.
  auto sit = scheduled_.find(origin);
  if (sit != scheduled_.end() && !sit->second.empty()) {
    auto& [kind, remaining] = sit->second.front();
    const FaultKind k = kind;
    if (--remaining <= 0) sit->second.pop_front();
    if (k == FaultKind::kHttp5xx) burstRemaining_[origin] = cfg.http5xxBurst - 1;
    return k;
  }
  // 2. An active 5xx burst keeps failing the origin.
  auto bit = burstRemaining_.find(origin);
  if (bit != burstRemaining_.end() && bit->second > 0) {
    --bit->second;
    return FaultKind::kHttp5xx;
  }
  // 3. Probabilistic sampling: one uniform draw partitioned into cumulative
  //    intervals, so the overall fault probability is exactly the sum of the
  //    per-kind probabilities (uniformRate(r) faults at rate r, and a summed
  //    probability of 1.0 always faults).
  const double u = rng_.uniform01();
  double edge = cfg.http5xxProb;
  if (u < edge) {
    burstRemaining_[origin] = cfg.http5xxBurst - 1;
    return FaultKind::kHttp5xx;
  }
  if (u < (edge += cfg.refusedProb)) return FaultKind::kRefused;
  if (u < (edge += cfg.resetProb)) return FaultKind::kReset;
  if (u < (edge += cfg.timeoutProb)) return FaultKind::kTimeout;
  if (u < (edge += cfg.truncateProb)) return FaultKind::kTruncate;
  if (u < (edge += cfg.corruptProb)) return FaultKind::kCorrupt;
  return FaultKind::kNone;
}

browser::HttpResponse FaultInjector::handle(const browser::HttpRequest& req) {
  const FaultMetrics& metrics = faultMetrics();
  metrics.requests->inc();
  const std::string origin = browser::originOf(req.url);
  // Pick the fault (and copy the applicable config) under the mutex, then
  // dispatch to the inner sink WITHOUT holding it: the sink may be slow and
  // must be reachable concurrently from other client threads.
  FaultKind fault;
  FaultConfig cfg;
  {
    util::MutexLock lock(mutex_);
    fault = pickFaultLocked(origin);
    auto it = perOrigin_.find(origin);
    cfg = it != perOrigin_.end() ? it->second : defaults_;
  }
  if (fault == FaultKind::kNone) return inner_->handle(req);

  faults_.fetch_add(1, std::memory_order_relaxed);
  metrics.injected->inc();

  switch (fault) {
    case FaultKind::kHttp5xx:
      // Rejected by an upstream intermediary: the backend never sees it.
      metrics.http5xx->inc();
      return {503, std::string(kFaultBodyPrefix) + " 503 upstream unavailable"};
    case FaultKind::kRefused:
      metrics.refused->inc();
      return {0, std::string(kFaultRefusedBody)};
    case FaultKind::kReset: {
      // The backend processes the request; the response is lost in flight.
      metrics.reset->inc();
      (void)inner_->handle(req);
      return {0, std::string(kFaultResetBody)};
    }
    case FaultKind::kTimeout: {
      metrics.timeout->inc();
      metrics.spikeMs->observe(cfg.timeoutSpikeMs);
      (void)inner_->handle(req);
      return {0, std::string(kFaultTimeoutBody)};
    }
    case FaultKind::kTruncate: {
      metrics.truncated->inc();
      browser::HttpResponse resp = inner_->handle(req);
      resp.body.resize(resp.body.size() / 2);
      return resp;
    }
    case FaultKind::kCorrupt: {
      metrics.corrupted->inc();
      browser::HttpResponse resp = inner_->handle(req);
      for (std::size_t i = 0; i < resp.body.size(); i += 3) {
        resp.body[i] = static_cast<char>(resp.body[i] ^ 0x5a);
      }
      return resp;
    }
    case FaultKind::kNone:
      break;
  }
  return inner_->handle(req);
}

}  // namespace bf::cloud
