// FormBackend: a form-based cloud service's server side.
//
// Covers the paper's form-based service family — "the Facebook composer,
// forums based on vBulletin and the comments system in WordPress" as well
// as the internal Wiki of the running example. Content arrives as
// urlencoded form posts; each post's "title"/"content" fields are stored
// under the post's path.
#pragma once

#include <map>
#include <string>

#include "cloud/network.h"

namespace bf::cloud {

class FormBackend final : public Backend {
 public:
  browser::HttpResponse handle(const browser::HttpRequest& req) override;

  /// Stored content by key "path/title" (or "path" when untitled).
  [[nodiscard]] const std::map<std::string, std::string>& documents()
      const noexcept {
    return documents_;
  }

  /// Latest stored content for a key, or empty.
  [[nodiscard]] std::string contentOf(const std::string& key) const;

  [[nodiscard]] std::size_t postCount() const noexcept { return posts_; }

 private:
  std::map<std::string, std::string> documents_;
  std::size_t posts_ = 0;
};

}  // namespace bf::cloud
