// NotesClient/NotesBackend: an Evernote-like note-taking service.
//
// The paper's mechanisms "can be used to support other services with
// minimal effort" (S5.2) — Evernote is its named second dynamic service.
// This client differs from the Docs simulation in both dimensions that
// matter to the plug-in: notes are edited as plain <p> elements (not
// custom-classed divs), and saves upload the WHOLE note as a JSON body
// (not per-paragraph form mutations). The plug-in handles both through
// its generic paths: <p> paragraph containers for mutation observation,
// and the JSON body adapter for upload interception.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "browser/page.h"
#include "cloud/network.h"
#include "util/retry.h"

namespace bf::cloud {

/// Server side: stores notes keyed by id; accepts JSON posts to /api/notes
/// with string fields "note_id" and "text".
class NotesBackend final : public Backend {
 public:
  browser::HttpResponse handle(const browser::HttpRequest& req) override;

  [[nodiscard]] std::string noteText(const std::string& noteId) const;
  [[nodiscard]] std::size_t noteCount() const noexcept {
    return notes_.size();
  }
  [[nodiscard]] std::size_t saveCount() const noexcept { return saves_; }

 private:
  std::map<std::string, std::string> notes_;
  std::size_t saves_ = 0;
};

/// Client side: the in-page note editor.
class NotesClient {
 public:
  NotesClient(browser::Page& page, std::string noteId);

  /// Turns on transport retries (off by default). Note saves carry the
  /// whole note — an idempotent upsert, safe to replay after any fault.
  void enableRetries(const util::RetryPolicy& policy, std::uint64_t seed,
                     double budgetCapacity = 10.0);

  /// Builds the editor DOM: <div id="note-editor"><p>...</p>...</div>.
  void openNote();

  [[nodiscard]] browser::Node* editorRoot();
  [[nodiscard]] browser::Node* paragraphNode(std::size_t index);
  [[nodiscard]] std::size_t paragraphCount();
  /// Full note text (paragraphs joined by blank lines).
  [[nodiscard]] std::string noteText();

  /// DOM edits (observers fire); the note auto-saves after each edit, as
  /// note apps do. Returns the save's HTTP status (0/403 = intercepted).
  int setParagraph(std::size_t index, const std::string& text);
  int appendParagraph(const std::string& text);
  int deleteParagraph(std::size_t index);

  /// Uploads the whole note as JSON via XHR.
  int save();

 private:
  browser::Page& page_;
  std::string noteId_;
  util::RetryPolicy retryPolicy_;
  util::Rng retryRng_{0};
  util::RetryBudget retryBudget_;
  bool retriesEnabled_ = false;
};

}  // namespace bf::cloud
