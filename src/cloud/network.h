// SimNetwork: routes browser traffic to simulated cloud backends.
//
// Stands in for the Internet between the user's browser and the cloud
// services' servers. Latency is *modelled* (drawn from a seeded Gaussian
// and recorded per request) rather than slept, so benches can account for
// network time without wall-clock waste. The request log doubles as the
// experiment's ground truth of "what actually left the browser" — tests
// assert on it to show that blocked uploads never reach a backend.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "browser/http.h"
#include "util/rng.h"

namespace bf::cloud {

/// A cloud service's server side.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual browser::HttpResponse handle(const browser::HttpRequest& req) = 0;
};

class SimNetwork final : public browser::RequestSink {
 public:
  /// `rng` drives latency jitter; not owned.
  explicit SimNetwork(util::Rng* rng, double baseLatencyMs = 20.0,
                      double jitterMs = 6.0);

  /// Registers `backend` (not owned) for all requests whose origin matches.
  void registerService(std::string origin, Backend* backend);

  browser::HttpResponse handle(const browser::HttpRequest& req) override;

  struct LogEntry {
    browser::HttpRequest request;
    browser::HttpResponse response;
    double simulatedLatencyMs = 0.0;
  };
  [[nodiscard]] const std::vector<LogEntry>& log() const noexcept {
    return log_;
  }
  /// Requests whose parsed origin equals `origin`'s, in send order.
  [[nodiscard]] std::vector<const LogEntry*> requestsTo(
      const std::string& origin) const;
  void clearLog() { log_.clear(); }

 private:
  util::Rng* rng_;
  double baseLatencyMs_;
  double jitterMs_;
  std::unordered_map<std::string, Backend*> services_;
  std::vector<LogEntry> log_;
};

/// Percent-decodes an application/x-www-form-urlencoded value.
[[nodiscard]] std::string urlDecode(std::string_view s);

/// Parses an urlencoded body into key/value pairs (later keys overwrite).
[[nodiscard]] std::unordered_map<std::string, std::string> parseFormBody(
    std::string_view body);

}  // namespace bf::cloud
