// FaultInjector: a RequestSink decorator that makes the simulated network
// misbehave on purpose.
//
// BrowserFlow's value proposition is staying usable while interposing on
// every upload; that claim is only testable if the reproduction can serve
// the failures a real network produces. The injector sits between the
// browser (after the plug-in's interception — blocked uploads never reach
// it) and the SimNetwork, and injects deterministic, seeded faults:
//
//   kHttp5xx   an upstream 503 burst; the request is NOT dispatched to the
//              backend (the proxy rejected it), so it is always retryable;
//   kRefused   connection refused before dispatch (status 0, body
//              "bf-fault: refused"); always retryable;
//   kReset     connection reset AFTER dispatch: the backend processed the
//              request but the response was lost (status 0, "bf-fault:
//              reset"); retryable only for idempotent requests;
//   kTimeout   a latency spike past the client's deadline, also after
//              dispatch (status 0, "bf-fault: timeout");
//   kTruncate  response body cut in half (status preserved);
//   kCorrupt   response body bytes flipped (status preserved).
//
// Fault selection is per-request from a seeded Rng; per-origin FaultConfig
// overrides and deterministic failNext() schedules let tests script exact
// failure sequences. Everything is metered via bf::obs (bf_fault_*).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "browser/http.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace bf::cloud {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kHttp5xx,
  kRefused,
  kReset,
  kTimeout,
  kTruncate,
  kCorrupt,
};

/// Per-origin (or default) fault probabilities. Kinds are sampled in
/// declaration order; at most one fault fires per request.
struct FaultConfig {
  double http5xxProb = 0.0;
  double refusedProb = 0.0;
  double resetProb = 0.0;
  double timeoutProb = 0.0;
  double truncateProb = 0.0;
  double corruptProb = 0.0;
  /// Consecutive requests (to the same origin) that keep failing with 5xx
  /// once an http5xx fault fires — models an upstream outage, not a blip.
  int http5xxBurst = 1;
  /// Simulated extra latency attributed to a timeout fault.
  double timeoutSpikeMs = 1000.0;

  /// Spreads `rate` evenly over the retryable kinds (5xx, refused, reset,
  /// timeout) — the chaos-test / bench workhorse.
  [[nodiscard]] static FaultConfig uniformRate(double rate) {
    FaultConfig c;
    c.http5xxProb = c.refusedProb = c.resetProb = c.timeoutProb = rate / 4.0;
    return c;
  }
};

class FaultInjector final : public browser::RequestSink {
 public:
  /// Wraps `inner` (not owned); `seed` drives fault sampling.
  FaultInjector(browser::RequestSink* inner, std::uint64_t seed,
                FaultConfig defaults = {});

  /// Replaces the default fault profile (applies where no origin override
  /// exists).
  void setDefaults(FaultConfig config) BF_EXCLUDES(mutex_);

  /// Per-origin override; pass {} to make an origin fault-free.
  void setOriginFaults(const std::string& origin, FaultConfig config)
      BF_EXCLUDES(mutex_);

  /// Deterministically fails the next `count` requests to `origin` with
  /// `kind`, ahead of any probabilistic sampling. Schedules queue in call
  /// order.
  void failNext(const std::string& origin, int count, FaultKind kind)
      BF_EXCLUDES(mutex_);

  /// Thread-safe: fault selection (rng, schedules, burst state) runs under
  /// the injector's leaf mutex; the inner sink is dispatched to OUTSIDE the
  /// critical section, so a slow backend never serialises other requests.
  browser::HttpResponse handle(const browser::HttpRequest& req) override
      BF_EXCLUDES(mutex_);

  /// Faults injected so far (all kinds).
  [[nodiscard]] std::uint64_t faultCount() const noexcept {
    return faults_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] FaultKind pickFaultLocked(const std::string& origin)
      BF_REQUIRES(mutex_);

  browser::RequestSink* inner_;
  mutable util::Mutex mutex_{util::kRankFaultInjector, "FaultInjector.mutex_"};
  util::Rng rng_ BF_GUARDED_BY(mutex_);
  FaultConfig defaults_ BF_GUARDED_BY(mutex_);
  std::unordered_map<std::string, FaultConfig> perOrigin_
      BF_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::deque<std::pair<FaultKind, int>>>
      scheduled_ BF_GUARDED_BY(mutex_);
  std::unordered_map<std::string, int> burstRemaining_ BF_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> faults_{0};
};

}  // namespace bf::cloud
