// DlpAppliance — the network-level data-leakage-prevention baseline.
//
// The paper positions BrowserFlow against classic DLP systems that
// "protect sensitive data on client endpoints by inspecting outgoing
// network traffic" (S2.2): application-level firewalls matching known
// content, and "specialised solutions which employ text similarity
// techniques to detect information disclosure in network streams". This
// module implements both flavours as a RequestSink middlebox so the bench
// suite can compare them against browser-level tracking on the same
// workloads — including the case the paper highlights: the appliance sits
// outside the browser, so TLS payloads are opaque to it, while
// BrowserFlow intercepts before encryption.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "browser/http.h"
#include "sec/sensitive.h"
#include "text/winnower.h"

namespace bf::cloud {

class DlpAppliance final : public browser::RequestSink {
 public:
  enum class Mode {
    /// Application-firewall style: exact substring chunks of registered
    /// documents (robust to nothing but verbatim copies).
    kExactChunks,
    /// MyDLP style: winnowing-fingerprint containment against registered
    /// documents (naive, no authority/provenance, no policy model).
    kFingerprint,
  };

  struct Config {
    Mode mode = Mode::kExactChunks;
    /// kExactChunks: chunk length/stride over normalized document text.
    std::size_t chunkChars = 48;
    std::size_t chunkStride = 16;
    /// kFingerprint: containment threshold.
    double threshold = 0.5;
    /// When true, payloads are treated as TLS ciphertext: the appliance
    /// forwards everything uninspected (the deployment reality the paper
    /// contrasts with in S5.2).
    bool trafficEncrypted = false;
  };

  /// `upstream` receives all traffic (flagged or not — the baseline is
  /// measured on detection, like BrowserFlow's advisory mode). Not owned.
  DlpAppliance(browser::RequestSink* upstream, Config config);

  /// Registers a sensitive document the appliance must watch for. Only
  /// chunk hashes / fingerprints of the content are retained.
  void registerSensitiveDocument(sec::SensitiveView text);

  browser::HttpResponse handle(const browser::HttpRequest& req) override;

  /// Inspection primitive, exposed for benches that bypass HTTP: would
  /// this text trip the appliance?
  [[nodiscard]] bool inspectText(sec::SensitiveView text) const;

  [[nodiscard]] std::size_t flaggedCount() const noexcept { return flagged_; }
  [[nodiscard]] std::size_t inspectedCount() const noexcept {
    return inspected_;
  }
  void resetCounters() noexcept {
    flagged_ = 0;
    inspected_ = 0;
  }

 private:
  browser::RequestSink* upstream_;
  Config config_;
  text::FingerprintConfig fingerprintConfig_;
  // kExactChunks: FNV hashes of normalized chunks.
  std::unordered_set<std::uint64_t> chunkHashes_;
  // kFingerprint: one fingerprint per registered document.
  std::vector<text::Fingerprint> fingerprints_;
  std::size_t flagged_ = 0;
  std::size_t inspected_ = 0;
};

}  // namespace bf::cloud
