#include "cloud/notes_client.h"

#include "cloud/transport.h"
#include "util/json_text.h"

namespace bf::cloud {

browser::HttpResponse NotesBackend::handle(const browser::HttpRequest& req) {
  std::string noteId, text;
  bool haveText = false;
  for (const auto& field : util::scanJsonStringFields(req.body)) {
    if (field.key == "note_id") noteId = field.value;
    if (field.key == "text") {
      text = field.value;
      haveText = true;
    }
  }
  if (noteId.empty() || !haveText) return {400, "missing note_id or text"};
  notes_[noteId] = text;
  ++saves_;
  return {200, "ok"};
}

std::string NotesBackend::noteText(const std::string& noteId) const {
  auto it = notes_.find(noteId);
  return it == notes_.end() ? std::string{} : it->second;
}

NotesClient::NotesClient(browser::Page& page, std::string noteId)
    : page_(page), noteId_(std::move(noteId)) {}

void NotesClient::enableRetries(const util::RetryPolicy& policy,
                                std::uint64_t seed, double budgetCapacity) {
  retryPolicy_ = policy;
  retryRng_ = util::Rng(seed);
  retryBudget_.configure(budgetCapacity);
  retriesEnabled_ = policy.enabled();
}

void NotesClient::openNote() {
  auto& doc = page_.document();
  auto editor = doc.createElement("div");
  editor->setAttribute("id", "note-editor");
  editor->setAttribute("class", "note-body");
  doc.root()->appendChild(std::move(editor));
  page_.flushObservers();
}

browser::Node* NotesClient::editorRoot() {
  return page_.document().root()->byId("note-editor");
}

browser::Node* NotesClient::paragraphNode(std::size_t index) {
  browser::Node* editor = editorRoot();
  if (editor == nullptr || index >= editor->children().size()) return nullptr;
  return editor->children()[index].get();
}

std::size_t NotesClient::paragraphCount() {
  browser::Node* editor = editorRoot();
  return editor == nullptr ? 0 : editor->children().size();
}

std::string NotesClient::noteText() {
  browser::Node* editor = editorRoot();
  if (editor == nullptr) return {};
  std::string out;
  for (const auto& p : editor->children()) {
    if (!out.empty()) out += "\n\n";
    out += p->textContent();
  }
  return out;
}

int NotesClient::setParagraph(std::size_t index, const std::string& text) {
  browser::Node* p = paragraphNode(index);
  if (p == nullptr) return appendParagraph(text);
  if (p->children().empty()) {
    p->appendChild(page_.document().createTextNode(text));
  } else {
    p->children().front()->setText(text);
  }
  return save();
}

int NotesClient::appendParagraph(const std::string& text) {
  browser::Node* editor = editorRoot();
  if (editor == nullptr) return 0;
  auto para = page_.document().createElement("p");
  para->appendChild(page_.document().createTextNode(text));
  editor->appendChild(std::move(para));
  return save();
}

int NotesClient::deleteParagraph(std::size_t index) {
  browser::Node* p = paragraphNode(index);
  if (p == nullptr) return 0;
  editorRoot()->removeChild(p);
  return save();
}

int NotesClient::save() {
  page_.flushObservers();  // observers run before the request leaves
  const std::string body = std::string("{\"note_id\": \"") +
                           util::escapeJsonString(noteId_) +
                           "\", \"text\": \"" +
                           util::escapeJsonString(noteText()) + "\"}";
  auto send = [&] {
    browser::Xhr xhr = page_.newXhr();
    xhr.open("POST", page_.origin() + "/api/notes");
    xhr.setRequestHeader("content-type", "application/json");
    return xhr.send(body);
  };
  if (!retriesEnabled_) return send().status;
  return sendWithRetry(send, retryPolicy_, &retryRng_, &retryBudget_,
                       /*idempotent=*/true)
      .response.status;
}

}  // namespace bf::cloud
