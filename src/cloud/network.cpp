#include "cloud/network.h"

#include <algorithm>

#include "browser/forms.h"
#include "util/strings.h"

namespace bf::cloud {

SimNetwork::SimNetwork(util::Rng* rng, double baseLatencyMs, double jitterMs)
    : rng_(rng), baseLatencyMs_(baseLatencyMs), jitterMs_(jitterMs) {}

void SimNetwork::registerService(std::string origin, Backend* backend) {
  services_[std::move(origin)] = backend;
}

browser::HttpResponse SimNetwork::handle(const browser::HttpRequest& req) {
  browser::HttpResponse resp;
  const std::string origin = browser::originOf(req.url);
  auto it = services_.find(origin);
  if (it == services_.end()) {
    resp.status = 502;
    resp.body = "no such service: " + origin;
  } else {
    resp = it->second->handle(req);
  }
  LogEntry entry;
  entry.request = req;
  entry.response = resp;
  entry.simulatedLatencyMs =
      std::max(0.0, rng_->gaussian(baseLatencyMs_, jitterMs_));
  log_.push_back(std::move(entry));
  return resp;
}

std::vector<const SimNetwork::LogEntry*> SimNetwork::requestsTo(
    const std::string& origin) const {
  std::vector<const LogEntry*> out;
  for (const auto& e : log_) {
    if (util::startsWith(e.request.url, origin)) out.push_back(&e);
  }
  return out;
}

std::string urlDecode(std::string_view s) {
  return browser::urlDecodeComponent(s);
}

std::unordered_map<std::string, std::string> parseFormBody(
    std::string_view body) {
  std::unordered_map<std::string, std::string> out;
  for (const auto& [k, v] : browser::parseFormBody(body)) out[k] = v;
  return out;
}

}  // namespace bf::cloud
