#include "cloud/network.h"

#include <algorithm>

#include "browser/forms.h"
#include "obs/metrics.h"

namespace bf::cloud {

namespace {
struct NetworkMetrics {
  obs::Counter* requests;
  obs::Counter* unrouted;
  obs::Histogram* rttMs;
};
const NetworkMetrics& networkMetrics() {
  static const NetworkMetrics m = [] {
    obs::MetricsRegistry& r = obs::registry();
    return NetworkMetrics{
        &r.counter("bf_network_requests_total",
                   "Requests routed through the simulated network"),
        &r.counter("bf_network_unrouted_total",
                   "Requests to origins with no registered backend"),
        &r.histogram("bf_network_rtt_ms",
                     "Simulated round-trip time per request")};
  }();
  return m;
}
}  // namespace

SimNetwork::SimNetwork(util::Rng* rng, double baseLatencyMs, double jitterMs)
    : rng_(rng), baseLatencyMs_(baseLatencyMs), jitterMs_(jitterMs) {}

void SimNetwork::registerService(std::string origin, Backend* backend) {
  services_[std::move(origin)] = backend;
}

browser::HttpResponse SimNetwork::handle(const browser::HttpRequest& req) {
  const NetworkMetrics& metrics = networkMetrics();
  metrics.requests->inc();
  browser::HttpResponse resp;
  const std::string origin = browser::originOf(req.url);
  auto it = services_.find(origin);
  const bool routed = it != services_.end();
  if (!routed) {
    metrics.unrouted->inc();
    resp.status = 502;
    resp.body = "no such service: " + origin;
  } else {
    resp = it->second->handle(req);
  }
  LogEntry entry;
  entry.request = req;
  entry.response = resp;
  // An unrouted request never crossed the network: no simulated latency,
  // and it must not pollute the RTT distribution Figs. 12/13 build on.
  if (routed) {
    entry.simulatedLatencyMs =
        std::max(0.0, rng_->gaussian(baseLatencyMs_, jitterMs_));
    metrics.rttMs->observe(entry.simulatedLatencyMs);
  }
  log_.push_back(std::move(entry));
  return resp;
}

std::vector<const SimNetwork::LogEntry*> SimNetwork::requestsTo(
    const std::string& origin) const {
  // Exact origin match: a raw prefix test would let "https://docs" also
  // claim requests to "https://docs.evil.com", corrupting the log-derived
  // ground truth of what left the browser.
  const std::string wanted = browser::originOf(origin);
  std::vector<const LogEntry*> out;
  for (const auto& e : log_) {
    if (browser::originOf(e.request.url) == wanted) out.push_back(&e);
  }
  return out;
}

std::string urlDecode(std::string_view s) {
  return browser::urlDecodeComponent(s);
}

std::unordered_map<std::string, std::string> parseFormBody(
    std::string_view body) {
  std::unordered_map<std::string, std::string> out;
  for (const auto& [k, v] : browser::parseFormBody(body)) out[k] = v;
  return out;
}

}  // namespace bf::cloud
