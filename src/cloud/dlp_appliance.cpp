#include "cloud/dlp_appliance.h"

#include "browser/forms.h"
#include "obs/metrics.h"
#include "text/normalizer.h"
#include "util/hashing.h"

namespace bf::cloud {

namespace {
obs::Counter& inspectedCounter() {
  static obs::Counter& c = obs::registry().counter(
      "bf_dlp_inspected_total", "Requests inspected by the DLP appliance");
  return c;
}
obs::Counter& flaggedCounter() {
  static obs::Counter& c = obs::registry().counter(
      "bf_dlp_flagged_total", "Requests flagged by the DLP appliance");
  return c;
}
}  // namespace

DlpAppliance::DlpAppliance(browser::RequestSink* upstream, Config config)
    : upstream_(upstream), config_(config) {}

void DlpAppliance::registerSensitiveDocument(std::string_view text) {
  if (config_.mode == Mode::kExactChunks) {
    const text::NormalizedText norm = text::normalize(text);
    if (norm.size() < config_.chunkChars) return;
    for (std::size_t i = 0; i + config_.chunkChars <= norm.size();
         i += config_.chunkStride) {
      chunkHashes_.insert(util::fnv1a64(
          std::string_view(norm.text).substr(i, config_.chunkChars)));
    }
  } else {
    fingerprints_.push_back(text::fingerprintText(text, fingerprintConfig_));
  }
}

bool DlpAppliance::inspectText(std::string_view text) const {
  if (config_.mode == Mode::kExactChunks) {
    const text::NormalizedText norm = text::normalize(text);
    if (norm.size() < config_.chunkChars) return false;
    // Check every alignment: an appliance cannot assume chunk boundaries
    // survive the copy.
    for (std::size_t i = 0; i + config_.chunkChars <= norm.size(); ++i) {
      if (chunkHashes_.count(util::fnv1a64(std::string_view(norm.text)
                                               .substr(i, config_.chunkChars)))
          != 0) {
        return true;
      }
    }
    return false;
  }
  const text::Fingerprint bodyFp =
      text::fingerprintText(text, fingerprintConfig_);
  for (const auto& docFp : fingerprints_) {
    if (docFp.empty()) continue;
    const double containment =
        static_cast<double>(text::Fingerprint::intersectionSize(docFp, bodyFp)) /
        static_cast<double>(docFp.size());
    if (containment >= config_.threshold) return true;
  }
  return false;
}

browser::HttpResponse DlpAppliance::handle(const browser::HttpRequest& req) {
  ++inspected_;
  inspectedCounter().inc();
  if (!config_.trafficEncrypted) {
    // The appliance sees wire bytes; decode the urlencoded form body the
    // way commercial DLP reverse-engineers wire formats (paper S2.2).
    std::string decoded;
    for (const auto& [key, value] : browser::parseFormBody(req.body)) {
      decoded += value;
      decoded += '\n';
    }
    if (inspectText(decoded) || inspectText(req.body)) {
      ++flagged_;
      flaggedCounter().inc();
    }
  }
  return upstream_->handle(req);
}

}  // namespace bf::cloud
