#include "cloud/dlp_appliance.h"

#include "browser/forms.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/stage.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "text/normalizer.h"
#include "util/hashing.h"
#include "util/stopwatch.h"

namespace bf::cloud {

namespace {
obs::Counter& inspectedCounter() {
  static obs::Counter& c = obs::registry().counter(
      "bf_dlp_inspected_total", "Requests inspected by the DLP appliance");
  return c;
}
obs::Counter& flaggedCounter() {
  static obs::Counter& c = obs::registry().counter(
      "bf_dlp_flagged_total", "Requests flagged by the DLP appliance");
  return c;
}
}  // namespace

DlpAppliance::DlpAppliance(browser::RequestSink* upstream, Config config)
    : upstream_(upstream), config_(config) {}

void DlpAppliance::registerSensitiveDocument(sec::SensitiveView text) {
  if (config_.mode == Mode::kExactChunks) {
    const text::NormalizedText norm = text::normalize(text.raw());
    if (norm.size() < config_.chunkChars) return;
    for (std::size_t i = 0; i + config_.chunkChars <= norm.size();
         i += config_.chunkStride) {
      chunkHashes_.insert(util::fnv1a64(
          std::string_view(norm.text).substr(i, config_.chunkChars)));
    }
  } else {
    fingerprints_.push_back(
        text::fingerprintText(text.raw(), fingerprintConfig_));
  }
}

bool DlpAppliance::inspectText(sec::SensitiveView text) const {
  if (config_.mode == Mode::kExactChunks) {
    text::NormalizedText norm;
    {
      obs::StageTimer normTimer(obs::Stage::kNormalize);
      norm = text::normalize(text.raw());
    }
    if (norm.size() < config_.chunkChars) return false;
    // Check every alignment: an appliance cannot assume chunk boundaries
    // survive the copy.
    obs::StageTimer fpTimer(obs::Stage::kFingerprint);
    for (std::size_t i = 0; i + config_.chunkChars <= norm.size(); ++i) {
      if (chunkHashes_.count(util::fnv1a64(std::string_view(norm.text)
                                               .substr(i, config_.chunkChars)))
          != 0) {
        return true;
      }
    }
    return false;
  }
  text::Fingerprint bodyFp;
  {
    obs::StageTimer fpTimer(obs::Stage::kFingerprint);
    bodyFp = text::fingerprintText(text.raw(), fingerprintConfig_);
  }
  for (const auto& docFp : fingerprints_) {
    if (docFp.empty()) continue;
    const double containment =
        static_cast<double>(text::Fingerprint::intersectionSize(docFp, bodyFp)) /
        static_cast<double>(docFp.size());
    if (containment >= config_.threshold) return true;
  }
  return false;
}

browser::HttpResponse DlpAppliance::handle(const browser::HttpRequest& req) {
  ++inspected_;
  inspectedCounter().inc();
  if (!config_.trafficEncrypted) {
    // An appliance inspection is an ingress of its own: the request came
    // off the wire, not from a plug-in decision path.
    const obs::TraceContext trace = obs::ingressTrace();
    obs::ScopedTraceContext traceScope(trace);
    obs::StageBreakdown stages;
    obs::ScopedStageCollector stageScope(&stages);
    obs::ScopedSpan span("dlp.inspect");
    span.addAttr("bytes", req.body.size());
    util::Stopwatch watch;
    // The appliance sees wire bytes; decode the urlencoded form body the
    // way commercial DLP reverse-engineers wire formats (paper S2.2).
    std::string decoded;
    for (const auto& [key, value] : browser::parseFormBody(req.body)) {
      decoded += value;
      decoded += '\n';
    }
    const bool hit = inspectText(decoded) || inspectText(req.body);
    if (hit) {
      ++flagged_;
      flaggedCounter().inc();
    }
    // bf_cloud does not link the engine, so the appliance reports to the
    // flight recorder directly. Unretained inspections still consume an id
    // so decision ids stay globally ordered.
    if (obs::provenanceEnabled()) {
      obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
      if (!trace.sampled && !hit) {
        (void)recorder.nextDecisionId();
      } else {
        obs::DecisionTrace record;
        record.traceId = trace.traceId;
        record.spanId = trace.spanId;
        record.sampled = trace.sampled;
        record.ingress = "dlp.appliance";
        record.segmentName = req.url;
        record.documentName = req.url;
        record.serviceId = req.url;
        record.action = hit ? "flag" : "allow";
        record.violation = hit;
        record.bytesScanned = req.body.size();
        record.stages = stages;
        record.totalMs = watch.elapsedMillis();
        (void)recorder.record(std::move(record));
      }
    }
  }
  return upstream_->handle(req);
}

}  // namespace bf::cloud
