#include "cloud/docs_client.h"

#include "cloud/transport.h"
#include "util/strings.h"

namespace bf::cloud {

namespace {
std::string encodeComponent(std::string_view s) {
  std::string out;
  for (char c : s) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.') {
      out.push_back(c);
    } else if (c == ' ') {
      out.push_back('+');
    } else {
      static const char* kHex = "0123456789ABCDEF";
      out.push_back('%');
      out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
    }
  }
  return out;
}
}  // namespace

DocsClient::DocsClient(browser::Page& page, std::string docId)
    : page_(page), docId_(std::move(docId)) {}

void DocsClient::enableRetries(const util::RetryPolicy& policy,
                               std::uint64_t seed, double budgetCapacity) {
  retryPolicy_ = policy;
  retryRng_ = util::Rng(seed);
  retryBudget_.configure(budgetCapacity);
  retriesEnabled_ = policy.enabled();
}

void DocsClient::openDocument() {
  auto& doc = page_.document();
  auto editor = doc.createElement("div");
  editor->setAttribute("id", "editor");
  editor->setAttribute("class", "docs-editor");
  doc.root()->appendChild(std::move(editor));
  page_.flushObservers();
}

browser::Node* DocsClient::editorRoot() {
  return page_.document().root()->byId("editor");
}

browser::Node* DocsClient::paragraphNode(std::size_t index) {
  browser::Node* editor = editorRoot();
  if (editor == nullptr || index >= editor->children().size()) return nullptr;
  return editor->children()[index].get();
}

std::string DocsClient::paragraphText(std::size_t index) {
  browser::Node* p = paragraphNode(index);
  return p == nullptr ? std::string{} : p->textContent();
}

std::size_t DocsClient::paragraphCount() {
  browser::Node* editor = editorRoot();
  return editor == nullptr ? 0 : editor->children().size();
}

int DocsClient::uploadMutation(const std::string& op, std::size_t index,
                               const std::string& text) {
  page_.flushObservers();  // observers run before the request leaves
  std::string body = "doc=" + encodeComponent(docId_) + "&op=" + op +
                     "&para=" + std::to_string(index);
  if (op != "delete") body += "&text=" + encodeComponent(text);
  // Each attempt is a fresh XHR through the page prototype, so the plug-in
  // re-inspects retries exactly like first sends.
  auto send = [&] {
    browser::Xhr xhr = page_.newXhr();
    xhr.open("POST", page_.origin() + "/mutate");
    xhr.setRequestHeader("content-type", "application/x-www-form-urlencoded");
    return xhr.send(body);
  };
  if (!retriesEnabled_) return send().status;
  // Only "set" carries the paragraph's full target state; replaying one
  // that already landed is harmless. "insert" and "delete" are positional:
  // a replayed delete whose first attempt did land would erase whichever
  // paragraph shifted into that index.
  const bool idempotent = op == "set";
  return sendWithRetry(send, retryPolicy_, &retryRng_, &retryBudget_,
                       idempotent)
      .response.status;
}

int DocsClient::setParagraph(std::size_t index, const std::string& text) {
  browser::Node* p = paragraphNode(index);
  if (p == nullptr) return insertParagraph(index, text);
  if (p->children().empty()) {
    p->appendChild(page_.document().createTextNode(text));
  } else {
    p->children().front()->setText(text);
  }
  return uploadMutation("set", index, text);
}

int DocsClient::typeChar(std::size_t index, char c) {
  browser::Node* p = paragraphNode(index);
  if (p == nullptr) return insertParagraph(index, std::string(1, c));
  std::string text = p->textContent() + c;
  if (p->children().empty()) {
    p->appendChild(page_.document().createTextNode(text));
  } else {
    p->children().front()->setText(text);
  }
  return uploadMutation("set", index, text);
}

int DocsClient::typeText(std::size_t index, const std::string& text) {
  int status = 200;
  bool failed = false;
  for (char c : text) {
    const int s = typeChar(index, c);
    if (!failed && (s < 200 || s >= 300)) {
      status = s;
      failed = true;
    }
  }
  return status;
}

int DocsClient::insertParagraph(std::size_t index, const std::string& text) {
  browser::Node* editor = editorRoot();
  if (editor == nullptr) return 0;
  auto para = page_.document().createElement("div");
  para->setAttribute("class", "docs-paragraph");
  para->appendChild(page_.document().createTextNode(text));
  const std::size_t at = std::min(index, editor->children().size());
  editor->insertChild(std::move(para), at);
  return uploadMutation("insert", at, text);
}

int DocsClient::deleteParagraph(std::size_t index) {
  browser::Node* p = paragraphNode(index);
  if (p == nullptr) return 0;
  editorRoot()->removeChild(p);
  return uploadMutation("delete", index, "");
}

int DocsClient::pasteDocument(const std::string& fullText) {
  int status = 200;
  bool failed = false;
  for (std::string_view para : util::splitParagraphs(fullText)) {
    const int s = insertParagraph(paragraphCount(), std::string(para));
    if (!failed && (s < 200 || s >= 300)) {
      status = s;
      failed = true;
    }
  }
  return status;
}

}  // namespace bf::cloud
