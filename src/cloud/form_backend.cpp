#include "cloud/form_backend.h"

namespace bf::cloud {

browser::HttpResponse FormBackend::handle(const browser::HttpRequest& req) {
  if (req.method == "GET") {
    // Path after the origin is the document key.
    const std::string origin = browser::originOf(req.url);
    std::string key = req.url.substr(origin.size());
    if (!key.empty() && key.front() == '/') key.erase(key.begin());
    return {200, contentOf(key)};
  }
  const auto fields = parseFormBody(req.body);
  const std::string origin = browser::originOf(req.url);
  std::string path = req.url.substr(origin.size());
  if (!path.empty() && path.front() == '/') path.erase(path.begin());
  std::string key = path;
  if (auto it = fields.find("title"); it != fields.end() && !it->second.empty()) {
    key += key.empty() ? it->second : "/" + it->second;
  }
  auto content = fields.find("content");
  documents_[key] = content == fields.end() ? req.body : content->second;
  ++posts_;
  return {200, "ok"};
}

std::string FormBackend::contentOf(const std::string& key) const {
  auto it = documents_.find(key);
  return it == documents_.end() ? std::string{} : it->second;
}

}  // namespace bf::cloud
