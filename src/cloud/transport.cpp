#include "cloud/transport.h"

#include "util/strings.h"

namespace bf::cloud {

SendOutcome classifyResponse(int status, std::string_view body) {
  if (status >= 200 && status < 300) return SendOutcome::kSuccess;
  if (status >= 500) return SendOutcome::kRetryable;
  if (status == 0) {
    if (body == kFaultRefusedBody) return SendOutcome::kRetryable;
    if (util::startsWith(body, kFaultBodyPrefix)) {
      return SendOutcome::kRetryIfIdempotent;  // timeout / reset
    }
    // Plain status 0: a deliberately suppressed submission or a page with
    // no transport — retrying cannot change either.
    return SendOutcome::kFatal;
  }
  return SendOutcome::kFatal;
}

namespace detail {

const RetryMetrics& retryMetrics() {
  static const RetryMetrics m = [] {
    obs::MetricsRegistry& r = obs::registry();
    return RetryMetrics{
        &r.counter("bf_retry_attempts_total",
                   "Upload attempts made through the retry layer"),
        &r.counter("bf_retry_retries_total",
                   "Attempts that were retries of a failed upload"),
        &r.counter("bf_retry_exhausted_total",
                   "Uploads abandoned with the failure still retryable"),
        &r.counter("bf_retry_budget_denied_total",
                   "Retries denied by an empty retry budget"),
        &r.counter("bf_retry_deadline_total",
                   "Retries denied by the per-call backoff deadline"),
        &r.histogram("bf_retry_backoff_ms",
                     "Simulated backoff delay per retry")};
  }();
  return m;
}

}  // namespace detail
}  // namespace bf::cloud
