// WikiClient: the in-page script of a form-based internal wiki.
//
// Represents the paper's "primarily static" service class (S5.1): content
// is edited in a <textarea> inside a <form> and saved with a submit — the
// interception point is the form's submit event, not XHR.
#pragma once

#include <string>

#include "browser/page.h"

namespace bf::cloud {

class WikiClient {
 public:
  WikiClient(browser::Page& page, std::string pageId);

  /// Renders the edit form (title input + content textarea + save form).
  void openEditor(const std::string& initialContent = "");

  [[nodiscard]] browser::Node* form();
  [[nodiscard]] browser::Node* contentArea();

  /// Replaces the textarea content (a paste or rewrite).
  void setContent(const std::string& text);
  [[nodiscard]] std::string content();

  /// Submits the form; returns the HTTP status (0 if an interceptor
  /// suppressed the submission).
  int save();

 private:
  browser::Page& page_;
  std::string pageId_;
};

}  // namespace bf::cloud
