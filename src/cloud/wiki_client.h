// WikiClient: the in-page script of a form-based internal wiki.
//
// Represents the paper's "primarily static" service class (S5.1): content
// is edited in a <textarea> inside a <form> and saved with a submit — the
// interception point is the form's submit event, not XHR.
#pragma once

#include <cstdint>
#include <string>

#include "browser/page.h"
#include "util/retry.h"

namespace bf::cloud {

class WikiClient {
 public:
  WikiClient(browser::Page& page, std::string pageId);

  /// Turns on transport retries for save() (off by default). A wiki save
  /// uploads the page's full content — idempotent, safe to resubmit. A
  /// submission suppressed by an interceptor (plain status 0) is a policy
  /// decision and is never retried.
  void enableRetries(const util::RetryPolicy& policy, std::uint64_t seed,
                     double budgetCapacity = 10.0);

  /// Renders the edit form (title input + content textarea + save form).
  void openEditor(const std::string& initialContent = "");

  [[nodiscard]] browser::Node* form();
  [[nodiscard]] browser::Node* contentArea();

  /// Replaces the textarea content (a paste or rewrite).
  void setContent(const std::string& text);
  [[nodiscard]] std::string content();

  /// Submits the form; returns the HTTP status (0 if an interceptor
  /// suppressed the submission).
  int save();

 private:
  browser::Page& page_;
  std::string pageId_;
  util::RetryPolicy retryPolicy_;
  util::Rng retryRng_{0};
  util::RetryBudget retryBudget_;
  bool retriesEnabled_ = false;
};

}  // namespace bf::cloud
