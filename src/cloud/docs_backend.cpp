#include "cloud/docs_backend.h"

#include "util/strings.h"

namespace bf::cloud {

browser::HttpResponse DocsBackend::handle(const browser::HttpRequest& req) {
  const auto fields = parseFormBody(req.body);
  auto get = [&](const char* k) -> std::string {
    auto it = fields.find(k);
    return it == fields.end() ? std::string{} : it->second;
  };
  const std::string docId = get("doc");
  if (docId.empty()) return {400, "missing doc id"};
  const std::string op = get("op");
  auto& paras = docs_[docId];
  const std::size_t index =
      static_cast<std::size_t>(std::strtoull(get("para").c_str(), nullptr, 10));
  ++mutations_;
  if (op == "set") {
    if (index >= paras.size()) paras.resize(index + 1);
    paras[index] = get("text");
    return {200, "ok"};
  }
  if (op == "insert") {
    const std::size_t at = std::min(index, paras.size());
    paras.insert(paras.begin() + static_cast<std::ptrdiff_t>(at), get("text"));
    return {200, "ok"};
  }
  if (op == "delete") {
    if (index < paras.size()) {
      paras.erase(paras.begin() + static_cast<std::ptrdiff_t>(index));
      return {200, "ok"};
    }
    return {400, "bad index"};
  }
  return {400, "unknown op: " + op};
}

std::vector<std::string> DocsBackend::paragraphsOf(
    const std::string& docId) const {
  auto it = docs_.find(docId);
  return it == docs_.end() ? std::vector<std::string>{} : it->second;
}

std::string DocsBackend::textOf(const std::string& docId) const {
  auto it = docs_.find(docId);
  if (it == docs_.end()) return {};
  std::string out;
  for (const auto& p : it->second) {
    if (!out.empty()) out += "\n\n";
    out += p;
  }
  return out;
}

}  // namespace bf::cloud
