// Client-side transport resilience: response classification + retry loop.
//
// The simulated clients (docs, notes, wiki) all follow the same upload
// discipline: build a request, send it, and — when retries are enabled —
// classify the response and re-send with backoff. Classification encodes
// the fault taxonomy FaultInjector produces:
//
//   status 2xx                      success
//   status 5xx                      retryable (injected upstream errors are
//                                   pre-dispatch: the backend never saw it)
//   status 0, body "bf-fault: refused"
//                                   retryable (connection refused before
//                                   dispatch)
//   status 0, other "bf-fault: ..." retryable ONLY for idempotent requests
//                                   (timeout / reset AFTER dispatch: the
//                                   backend may have applied the mutation,
//                                   so a blind replay could duplicate it)
//   anything else                   fatal (4xx policy blocks, suppressed
//                                   form submissions, missing transport)
//
// Idempotency is declared per request by the caller: full-content upserts
// (docs "set", notes whole-note saves, wiki page saves) are safe to replay;
// positional inserts are not.
#pragma once

#include <string_view>
#include <utility>

#include "browser/http.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "util/retry.h"

namespace bf::cloud {

/// Marker prefix FaultInjector puts on the bodies of synthesised network
/// errors, so clients can tell fault flavours apart (a real client would
/// read the socket error; the simulation reads the body).
inline constexpr std::string_view kFaultBodyPrefix = "bf-fault:";
inline constexpr std::string_view kFaultRefusedBody = "bf-fault: refused";
inline constexpr std::string_view kFaultResetBody = "bf-fault: reset";
inline constexpr std::string_view kFaultTimeoutBody = "bf-fault: timeout";

enum class SendOutcome {
  kSuccess,
  kRetryable,
  kRetryIfIdempotent,
  kFatal,
};

[[nodiscard]] SendOutcome classifyResponse(int status, std::string_view body);

/// Result of one logical upload (possibly several attempts).
struct TransportResult {
  browser::HttpResponse response;
  int attempts = 1;
  /// Accumulated simulated backoff (not slept; see util/retry.h).
  double backoffMs = 0.0;
  /// True when the final response was still retryable but the policy
  /// (attempt cap, deadline, budget) stopped us.
  bool exhausted = false;
};

namespace detail {
/// bf_retry_* metrics, resolved once (see obs/metrics.h on hot paths).
struct RetryMetrics {
  obs::Counter* attempts;       // bf_retry_attempts_total
  obs::Counter* retries;        // bf_retry_retries_total
  obs::Counter* exhausted;      // bf_retry_exhausted_total
  obs::Counter* budgetDenied;   // bf_retry_budget_denied_total
  obs::Counter* deadlineHit;    // bf_retry_deadline_total
  obs::Histogram* backoffMs;    // bf_retry_backoff_ms
};
[[nodiscard]] const RetryMetrics& retryMetrics();
}  // namespace detail

/// Runs `send` (a callable returning browser::HttpResponse) under the
/// retry policy. `rng` drives backoff jitter; `budget` may be null
/// (unlimited). Non-idempotent requests are never replayed after a fault
/// that may have reached the backend.
template <typename SendFn>
TransportResult sendWithRetry(SendFn&& send, const util::RetryPolicy& policy,
                              util::Rng* rng, util::RetryBudget* budget,
                              bool idempotent) {
  // Every attempt of this logical upload — and any in-plugin decision the
  // send triggers (XHR interception) — shares one trace, so the retry
  // history can be stitched onto the decision records afterwards.
  const obs::TraceContext trace = obs::ingressTrace();
  obs::ScopedTraceContext traceScope(trace);
  const TransportResult result = [&] {
    const detail::RetryMetrics& metrics = detail::retryMetrics();
    util::Backoff backoff(policy, rng);
    TransportResult r;
    for (int attempt = 1;; ++attempt) {
      metrics.attempts->inc();
      r.response = send();
      r.attempts = attempt;
      const SendOutcome outcome =
          classifyResponse(r.response.status, r.response.body);
      if (outcome == SendOutcome::kSuccess) {
        if (budget != nullptr) budget->deposit();
        return r;
      }
      if (outcome == SendOutcome::kFatal ||
          (outcome == SendOutcome::kRetryIfIdempotent && !idempotent)) {
        return r;
      }
      if (attempt >= policy.maxAttempts) {
        r.exhausted = true;
        metrics.exhausted->inc();
        return r;
      }
      const double delayMs = backoff.nextDelayMs();
      if (policy.deadlineMs > 0.0 && r.backoffMs + delayMs > policy.deadlineMs) {
        r.exhausted = true;
        metrics.deadlineHit->inc();
        return r;
      }
      if (budget != nullptr && !budget->tryWithdraw()) {
        r.exhausted = true;
        metrics.budgetDenied->inc();
        return r;
      }
      r.backoffMs += delayMs;
      metrics.retries->inc();
      metrics.backoffMs->observe(delayMs);
    }
  }();
  if (obs::provenanceEnabled() && (result.attempts > 1 || result.exhausted)) {
    obs::FlightRecorder::instance().annotateRetry(
        trace.traceId, static_cast<std::uint32_t>(result.attempts),
        result.backoffMs, result.exhausted);
  }
  return result;
}

}  // namespace bf::cloud
