// DocsBackend: the server side of the Google-Docs-like AJAX service.
//
// The client "communicates document mutations via AJAX requests each time a
// character is added or deleted" (paper S5.2). Mutations arrive as
// urlencoded POSTs to /mutate:
//   doc=<id>&op=set|insert|delete&para=<index>[&text=<paragraph text>]
// The backend keeps each document as an ordered list of paragraphs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cloud/network.h"

namespace bf::cloud {

class DocsBackend final : public Backend {
 public:
  browser::HttpResponse handle(const browser::HttpRequest& req) override;

  /// Current paragraphs of a document (empty if unknown).
  [[nodiscard]] std::vector<std::string> paragraphsOf(
      const std::string& docId) const;

  /// Full rendered document text (paragraphs joined by blank lines).
  [[nodiscard]] std::string textOf(const std::string& docId) const;

  [[nodiscard]] std::size_t mutationCount() const noexcept {
    return mutations_;
  }

 private:
  std::map<std::string, std::vector<std::string>> docs_;
  std::size_t mutations_ = 0;
};

}  // namespace bf::cloud
