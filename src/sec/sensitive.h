// Compile-time sensitivity taint types (DESIGN.md §14).
//
// BrowserFlow's premise is that raw document content must not escape
// through unvetted channels — yet nothing used to stop a PR from dropping
// a paragraph into BF_LOG, a metrics exemplar, an AuditRecord or a wire
// payload. SensitiveText / SensitiveView make the data plane's content
// carriers distinct types that the compiler refuses to convert back into
// std::string / std::string_view.
//
// The model mirrors the paper's *imprecise* flow tracking:
//
//  - Taint IN is implicit and over-approximated: any raw string may become
//    Sensitive the moment it is passed to a content-carrying API
//    (FlowTracker::observeDocument, DecisionRequest::text, ...). Wrapping
//    costs nothing and never fails.
//  - Taint OUT is explicit and enumerable: the ONLY ways to turn sensitive
//    bytes back into ordinary data are the named declassification gates
//    below (redact, contentHash, fingerprinting, sealing, and the
//    test-only declassifyForTest). Each gate's output is safe by
//    construction: a bounded preview, a hash, a fingerprint, ciphertext.
//  - raw() is the plumbing escape hatch for src-internal processing
//    (segmentation, normalization, hashing). scripts/bftaint.py tracks
//    every raw() escape intra-TU and fails the build if a derived value
//    reaches a log / metric / audit / wire sink without passing a gate.
//
// Zero runtime cost: both wrappers are thin layout-identical shells over
// std::string / std::string_view with every accessor inline; release
// codegen is byte-for-byte the code the bare types produced
// (bench_micro_fingerprint gates the <1% budget).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace bf::sec {

class SensitiveText;

/// Non-owning view of sensitive content. The parameter currency of every
/// API that carries raw document text. Implicitly constructible from raw
/// strings (taint-in is free) and from SensitiveText; NEVER implicitly
/// convertible back to std::string_view — that is the whole point.
class SensitiveView {
 public:
  constexpr SensitiveView() noexcept = default;
  constexpr SensitiveView(std::string_view raw) noexcept  // NOLINT(google-explicit-constructor)
      : view_(raw) {}
  constexpr SensitiveView(const char* raw) noexcept  // NOLINT(google-explicit-constructor)
      : view_(raw) {}
  SensitiveView(const std::string& raw) noexcept  // NOLINT(google-explicit-constructor)
      : view_(raw) {}
  SensitiveView(const SensitiveText& text) noexcept;  // NOLINT(google-explicit-constructor)

  /// Escape hatch for src-internal plumbing (fingerprinting, segmentation,
  /// normalization). The returned view is STILL sensitive content:
  /// scripts/bftaint.py taints everything derived from it and fails the
  /// build if such a value reaches a sink outside the gate allowlist.
  [[nodiscard]] constexpr std::string_view raw() const noexcept {
    return view_;
  }

  [[nodiscard]] constexpr std::size_t size() const noexcept {
    return view_.size();
  }
  [[nodiscard]] constexpr bool empty() const noexcept { return view_.empty(); }

 private:
  std::string_view view_;
};

/// Owning sensitive content. Move-aware: moving a document through the
/// pipeline (plugin -> DecisionRequest -> engine) never copies the bytes.
class SensitiveText {
 public:
  SensitiveText() = default;
  SensitiveText(std::string raw) noexcept  // NOLINT(google-explicit-constructor)
      : text_(std::move(raw)) {}
  SensitiveText(std::string_view raw)  // NOLINT(google-explicit-constructor)
      : text_(raw) {}
  SensitiveText(const char* raw) : text_(raw) {}  // NOLINT(google-explicit-constructor)
  explicit SensitiveText(SensitiveView view) : text_(view.raw()) {}

  SensitiveText(const SensitiveText&) = default;
  SensitiveText(SensitiveText&&) noexcept = default;
  SensitiveText& operator=(const SensitiveText&) = default;
  SensitiveText& operator=(SensitiveText&&) noexcept = default;

  /// See SensitiveView::raw().
  [[nodiscard]] std::string_view raw() const noexcept { return text_; }

  [[nodiscard]] std::size_t size() const noexcept { return text_.size(); }
  [[nodiscard]] bool empty() const noexcept { return text_.empty(); }
  void clear() noexcept { text_.clear(); }

  /// Sensitive + sensitive stays sensitive (document assembly).
  SensitiveText& operator+=(SensitiveView more) {
    text_.append(more.raw());
    return *this;
  }
  SensitiveText& operator+=(char c) {
    text_.push_back(c);
    return *this;
  }

 private:
  std::string text_;
};

inline SensitiveView::SensitiveView(const SensitiveText& text) noexcept
    : view_(text.raw()) {}

/// Equality reveals one bit; tests and dedup need it, sinks cannot abuse it.
[[nodiscard]] inline bool operator==(SensitiveView a, SensitiveView b) noexcept {
  return a.raw() == b.raw();
}
[[nodiscard]] inline bool operator!=(SensitiveView a, SensitiveView b) noexcept {
  return !(a == b);
}

// ---- Declassification gates -------------------------------------------------
// Every gate is a named, auditable boundary: bftaint's allowlist is exactly
// this list (plus text::fingerprintText / FlowTracker::fingerprintOf /
// crypto::Sealer::seal / util::fnv1a64, whose outputs are equally
// non-invertible). Adding a gate means editing this header AND the lint —
// a deliberate two-touch change a reviewer cannot miss.

/// A bounded, loggable preview of sensitive content: at most the first and
/// last `keep` characters plus the byte length — the only human-readable
/// form that may reach logs, audits or the flight recorder.
struct Redacted {
  std::string text;
};

/// Builds "<prefix>…<suffix> (<n> chars)". `keep` is clamped to a quarter
/// of the input on each side so short strings never round-trip whole (a
/// 10-byte password redacts to at most 2+2 chars), and both cut points are
/// moved back to UTF-8 code-point boundaries so multi-byte sequences are
/// never split. Empty input yields "(0 chars)".
[[nodiscard]] Redacted redact(SensitiveView text, std::size_t keep = 8);

/// Stable 64-bit content digest (FNV-1a over the raw bytes). Deterministic
/// across processes and runs: equal content always hashes equal, so sinks
/// can correlate without carrying plaintext.
[[nodiscard]] std::uint64_t contentHash(SensitiveView text) noexcept;

#if defined(BF_SEC_ENABLE_TEST_DECLASSIFY)
/// Test/bench-only total declassification. Compiled out of release builds:
/// the symbol does not exist unless the build defines
/// BF_SEC_ENABLE_TEST_DECLASSIFY (tests/ and bench/ targets do; src/ never
/// does — tests/negative_compile/nc_declassify_release.cpp proves calling
/// it from production code cannot compile).
[[nodiscard]] inline std::string declassifyForTest(SensitiveView text) {
  return std::string(text.raw());
}
#endif

}  // namespace bf::sec
