#include "sec/sensitive.h"

#include "util/hashing.h"

namespace bf::sec {

namespace {

/// True for UTF-8 continuation bytes (10xxxxxx).
[[nodiscard]] constexpr bool isContinuation(unsigned char c) noexcept {
  return (c & 0xC0u) == 0x80u;
}

/// Largest prefix length <= `limit` that ends on a code-point boundary.
[[nodiscard]] std::size_t prefixBoundary(std::string_view s,
                                         std::size_t limit) noexcept {
  std::size_t n = limit;
  while (n > 0 && isContinuation(static_cast<unsigned char>(s[n]))) --n;
  return n;
}

/// Smallest suffix start >= `start` that begins on a code-point boundary.
[[nodiscard]] std::size_t suffixBoundary(std::string_view s,
                                         std::size_t start) noexcept {
  std::size_t n = start;
  while (n < s.size() && isContinuation(static_cast<unsigned char>(s[n]))) {
    ++n;
  }
  return n;
}

}  // namespace

Redacted redact(SensitiveView text, std::size_t keep) {
  const std::string_view s = text.raw();
  Redacted out;
  if (s.empty()) {
    out.text = "(0 chars)";
    return out;
  }
  // Never reveal more than half the content: clamp to a quarter per side.
  const std::size_t side = std::min(keep, s.size() / 4);
  const std::size_t head = prefixBoundary(s, side);
  // The tail must not overlap the head even after boundary adjustment.
  const std::size_t tailStart =
      suffixBoundary(s, std::max(s.size() - side, head));
  out.text.reserve(head + (s.size() - tailStart) + 24);
  out.text.append(s, 0, head);
  out.text.append("\xE2\x80\xA6");  // U+2026 HORIZONTAL ELLIPSIS
  out.text.append(s, tailStart, s.size() - tailStart);
  out.text.append(" (");
  out.text.append(std::to_string(s.size()));
  out.text.append(" chars)");
  return out;
}

std::uint64_t contentHash(SensitiveView text) noexcept {
  return util::fnv1a64(text.raw());
}

}  // namespace bf::sec
