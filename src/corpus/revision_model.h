// Revision model with ground-truth lineage.
//
// The effectiveness experiments (paper S6.1, Figs. 8-11) need "a corpus of
// documents that evolves over time while maintaining overlap between
// revisions" plus ground truth about which base paragraphs each revision
// still discloses. We model a document as paragraphs of sentences, where
// every sentence carries an immutable *concept id*. Edit operations either
// preserve the concept id (minor edit, rephrase, move) or create/destroy
// concepts (insert, delete). Ground truth is computed over concept ids —
// the mechanisable analogue of the paper's human expert, who "reports
// disclosure when similar content or concepts are mentioned, regardless of
// the actual words used". In particular a REPHRASED sentence keeps its
// concept (expert still sees disclosure) while its text changes completely
// (the fingerprint no longer matches) — reproducing the false-negative
// class the paper reports for extensively rephrased paragraphs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/text_generator.h"
#include "sec/sensitive.h"
#include "util/rng.h"

namespace bf::corpus {

/// A sentence with provenance.
struct Sentence {
  /// Immutable identity of the idea the sentence expresses.
  std::uint64_t conceptId = 0;
  std::string text;
};

/// A paragraph: ordered sentences.
struct Paragraph {
  std::vector<Sentence> sentences;
  /// Plain-text rendering (sentences joined by spaces). Rendered corpus
  /// text stands in for real user documents, so it is sensitive by type.
  [[nodiscard]] sec::SensitiveText render() const;
};

/// A document version.
struct VersionedDoc {
  std::string id;
  std::vector<Paragraph> paragraphs;
  /// Plain-text rendering (paragraphs separated by blank lines). Sensitive
  /// by type — this is the simulated user document content.
  [[nodiscard]] sec::SensitiveText render() const;
  /// Total rendered size in bytes.
  [[nodiscard]] std::size_t renderedSize() const;
};

/// Per-revision edit intensity. Probabilities are per sentence / paragraph
/// per revision step.
struct VolatilityProfile {
  double minorEditProb = 0.02;   ///< tweak one word, concept kept
  double rephraseProb = 0.0;     ///< rewrite sentence, concept kept
  double deleteSentenceProb = 0.0;
  double insertSentenceProb = 0.0;  ///< brand-new concept
  /// Replace a paragraph's entire content with new concepts — the
  /// block-coherent churn real documentation shows (a section is either
  /// rewritten for a release or left alone).
  double rewriteParagraphProb = 0.0;
  double moveParagraphProb = 0.0;   ///< reorder paragraphs
  double appendParagraphProb = 0.0; ///< grow the document
  double deleteParagraphProb = 0.0; ///< shrink the document
};

/// Canned profiles matching the two Wikipedia article classes of Fig. 9.
[[nodiscard]] VolatilityProfile stableProfile() noexcept;
[[nodiscard]] VolatilityProfile volatileProfile() noexcept;

class RevisionModel {
 public:
  /// Neither pointer is owned; both must outlive the model.
  RevisionModel(TextGenerator* gen, util::Rng* rng);

  /// A fresh base document with `paragraphs` paragraphs.
  [[nodiscard]] VersionedDoc createDocument(std::string id,
                                            std::size_t paragraphs);

  /// One revision step under `profile` (in place).
  void evolve(VersionedDoc& doc, const VolatilityProfile& profile);

  /// Applies `steps` revisions.
  void evolve(VersionedDoc& doc, const VolatilityProfile& profile,
              std::size_t steps);

 private:
  [[nodiscard]] Sentence newSentence();

  TextGenerator* gen_;
  util::Rng* rng_;
  std::uint64_t nextConcept_ = 1;
};

// ---- Ground truth ----------------------------------------------------------

/// Fraction of `base`'s concepts still present anywhere in `current`
/// (0 when `base` has no sentences).
[[nodiscard]] double conceptSurvival(const Paragraph& base,
                                     const VersionedDoc& current);

/// Ground-truth disclosure: the revision still discloses the base paragraph
/// if at least `survivalThreshold` of its concepts survive. 0.5 mirrors the
/// paper's default T_par of 0.5.
[[nodiscard]] bool groundTruthDiscloses(const Paragraph& base,
                                        const VersionedDoc& current,
                                        double survivalThreshold = 0.5);

}  // namespace bf::corpus
