#include "corpus/datasets.h"

#include <cassert>

namespace bf::corpus {

namespace {

/// Per-transition profile for manual chapters: probabilities applied once
/// per version transition (one evolve step), so values are large compared
/// to the per-revision Wikipedia profiles. Change is dominated by
/// block-coherent paragraph rewrites (`rewrite`), with light sentence-level
/// noise: small deletions/insertions both metrics see, plus a small
/// rephrase component that only the concept-level expert sees.
VolatilityProfile transitionProfile(double rewrite, double del,
                                    double insert, double rephrase = 0.04) {
  VolatilityProfile p;
  p.minorEditProb = 0.005;
  p.rephraseProb = rephrase;
  p.rewriteParagraphProb = rewrite;
  p.deleteSentenceProb = del;
  p.insertSentenceProb = insert;
  p.moveParagraphProb = 0.1;
  return p;
}

}  // namespace

WikipediaDataset buildWikipedia(const WikipediaConfig& config) {
  WikipediaDataset ds;
  ds.config = config;
  util::Rng rng(config.seed);
  TextGenerator gen(&rng);
  RevisionModel model(&gen, &rng);

  ds.articles.reserve(config.articles);
  for (std::size_t a = 0; a < config.articles; ++a) {
    WikipediaArticle art;
    art.title = "article-" + std::to_string(a);
    art.isVolatile = rng.uniform01() < config.volatileFraction;
    const VolatilityProfile profile =
        art.isVolatile ? volatileProfile() : stableProfile();

    const std::size_t paragraphs =
        rng.uniform(config.minParagraphs, config.maxParagraphs);
    VersionedDoc doc = model.createDocument(art.title, paragraphs);
    art.checkpoints.push_back(doc);
    art.checkpointRevision.push_back(0);

    std::size_t done = 0;
    while (done < config.revisions) {
      const std::size_t step =
          std::min(config.checkpointInterval, config.revisions - done);
      model.evolve(doc, profile, step);
      done += step;
      art.checkpoints.push_back(doc);
      art.checkpointRevision.push_back(done);
    }
    ds.articles.push_back(std::move(art));
  }
  return ds;
}

ManualsDataset buildManuals(std::uint64_t seed) {
  ManualsDataset ds;
  util::Rng rng(seed);
  TextGenerator gen(&rng);
  RevisionModel model(&gen, &rng);

  struct ChapterSpec {
    const char* name;
    std::size_t paragraphs;
    std::vector<std::string> versionNames;
    /// One profile per transition versionNames[i] -> versionNames[i+1].
    std::vector<VolatilityProfile> transitions;
  };

  // Change dynamics shaped like Fig. 10: both iPhone chapters "change
  // significantly over time" (the latest version disclosing almost nothing
  // from the base); "New Features" shows reduced disclosure after its
  // second version; "What's MySQL" remains unchanged across versions.
  // Edits are dominated by content replacement (delete + insert), which
  // both the expert and the fingerprint see, with a small rephrase
  // component that only the expert sees — producing the paper's small
  // systematic BrowserFlow-under-expert gap.
  const std::vector<ChapterSpec> specs = {
      {"IPhone Camera",
       40,
       {"iOS3", "iOS4", "iOS5", "iOS7"},
       {transitionProfile(0.40, 0.01, 0.012),
        transitionProfile(0.50, 0.01, 0.012),
        transitionProfile(0.83, 0.012, 0.015)}},
      {"IPhone Message",
       20,
       {"iOS3", "iOS4", "iOS5", "iOS7"},
       {transitionProfile(0.45, 0.01, 0.012),
        transitionProfile(0.55, 0.01, 0.012),
        transitionProfile(0.90, 0.012, 0.015)}},
      {"MySQL New Features",
       28,
       {"4.0", "4.1", "5.0", "5.1"},
       {transitionProfile(0.0, 0.01, 0.02),
        transitionProfile(0.45, 0.01, 0.012),
        transitionProfile(0.35, 0.01, 0.012)}},
      {"MySQL What's MySQL",
       8,
       {"4.0", "4.1", "5.0", "5.1"},
       {transitionProfile(0.0, 0.0, 0.0, 0.005),
        transitionProfile(0.0, 0.0, 0.0, 0.005),
        transitionProfile(0.0, 0.0, 0.0, 0.005)}},
  };

  for (const auto& spec : specs) {
    ManualChapter ch;
    ch.name = spec.name;
    ch.versionNames = spec.versionNames;
    VersionedDoc doc = model.createDocument(spec.name, spec.paragraphs);
    ch.versions.push_back(doc);
    for (const auto& profile : spec.transitions) {
      model.evolve(doc, profile);
      ch.versions.push_back(doc);
    }
    assert(ch.versions.size() == spec.versionNames.size());
    ds.chapters.push_back(std::move(ch));
  }
  return ds;
}

NewsDataset buildNews(std::uint64_t seed) {
  NewsDataset ds;
  util::Rng rng(seed);
  TextGenerator gen(&rng);
  RevisionModel model(&gen, &rng);
  ds.articles.push_back(model.createDocument("news-0", 27));
  ds.articles.push_back(model.createDocument("news-1", 27));
  return ds;
}

EbooksDataset buildEbooks(const EbooksConfig& config) {
  EbooksDataset ds;
  ds.config = config;
  util::Rng rng(config.seed);
  TextGenerator gen(&rng);
  RevisionModel model(&gen, &rng);
  ds.books.reserve(config.books);
  for (std::size_t b = 0; b < config.books; ++b) {
    const std::size_t paragraphs =
        rng.uniform(config.minParagraphsPerBook, config.maxParagraphsPerBook);
    VersionedDoc book =
        model.createDocument("book-" + std::to_string(b), paragraphs);
    ds.totalBytes += book.renderedSize();
    ds.books.push_back(std::move(book));
  }
  return ds;
}

DatasetStats statsOf(const WikipediaDataset& ds) {
  DatasetStats s;
  s.name = "Wikipedia Articles";
  s.documents = ds.articles.size();
  s.versions = ds.config.revisions;
  double paragraphs = 0, bytes = 0;
  std::size_t count = 0;
  for (const auto& a : ds.articles) {
    for (const auto& v : a.checkpoints) {
      paragraphs += static_cast<double>(v.paragraphs.size());
      bytes += static_cast<double>(v.renderedSize());
      ++count;
    }
  }
  if (count > 0) {
    s.avgParagraphs = paragraphs / static_cast<double>(count);
    s.avgSizeKb = bytes / static_cast<double>(count) / 1024.0;
  }
  return s;
}

std::vector<DatasetStats> statsOf(const ManualsDataset& ds) {
  std::vector<DatasetStats> out;
  for (const auto& ch : ds.chapters) {
    DatasetStats s;
    s.name = ch.name;
    s.documents = 1;
    s.versions = ch.versions.size();
    double paragraphs = 0, bytes = 0;
    for (const auto& v : ch.versions) {
      paragraphs += static_cast<double>(v.paragraphs.size());
      bytes += static_cast<double>(v.renderedSize());
    }
    const double n = static_cast<double>(ch.versions.size());
    s.avgParagraphs = paragraphs / n;
    s.avgSizeKb = bytes / n / 1024.0;
    out.push_back(std::move(s));
  }
  return out;
}

DatasetStats statsOf(const NewsDataset& ds) {
  DatasetStats s;
  s.name = "News Articles";
  s.documents = ds.articles.size();
  s.versions = 1;
  double paragraphs = 0, bytes = 0;
  for (const auto& a : ds.articles) {
    paragraphs += static_cast<double>(a.paragraphs.size());
    bytes += static_cast<double>(a.renderedSize());
  }
  const double n = static_cast<double>(ds.articles.size());
  if (n > 0) {
    s.avgParagraphs = paragraphs / n;
    s.avgSizeKb = bytes / n / 1024.0;
  }
  return s;
}

DatasetStats statsOf(const EbooksDataset& ds) {
  DatasetStats s;
  s.name = "Ebooks";
  s.documents = ds.books.size();
  s.versions = 1;
  double paragraphs = 0, bytes = 0;
  for (const auto& b : ds.books) {
    paragraphs += static_cast<double>(b.paragraphs.size());
    bytes += static_cast<double>(b.renderedSize());
  }
  const double n = static_cast<double>(ds.books.size());
  if (n > 0) {
    s.avgParagraphs = paragraphs / n;
    s.avgSizeKb = bytes / n / 1024.0;
  }
  return s;
}

}  // namespace bf::corpus
